// Figure 5.9: multiprogramming — thread counts well beyond the core count
// on a red-black tree with 64K elements and 100 no-ops between
// transactions.  The paper's point: when a lock holder can be descheduled,
// every spinning algorithm degrades while RTC's dedicated servers keep
// commits flowing.  (This container has one core, so *every* point here is
// multiprogrammed; the sweep extends further than the other figures.)
#include "stm_bench_common.h"
#include "stmds/stm_rbtree.h"

using otb::stmds::StmRbTree;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  std::vector<unsigned> threads = {2, 4, 8, 12, 16};
  const auto cols = otb::bench::thread_columns(threads);
  const std::int64_t range = 131072;

  const auto make_tree = [&] {
    auto tree = std::make_unique<StmRbTree>();
    for (std::int64_t k = 0; k < range; k += 2) tree->add_seq(k);
    return tree;
  };
  const otb::bench::StructOp<StmRbTree> op =
      [](otb::stm::Tx& tx, StmRbTree& tree, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          tree.contains(tx, key);
        } else if (rng.chance_pct(50)) {
          tree.add(tx, key);
        } else {
          tree.remove(tx, key);
        }
      };

  for (const unsigned read_pct : {50u, 98u}) {
    otb::bench::SeriesTable table(
        "Fig 5.9 multiprogramming, RB-tree 64K, " + std::to_string(read_pct) +
            "% reads",
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = read_pct;
    opt.key_range = range;
    opt.noops_between = 100;
    opt.config.max_threads = 32;
    for (const auto kind :
         {otb::stm::AlgoKind::kRingSW, otb::stm::AlgoKind::kNOrec,
          otb::stm::AlgoKind::kTL2, otb::stm::AlgoKind::kRTC}) {
      table.add_row(std::string(otb::stm::to_string(kind)),
                    otb::bench::throughputs(otb::bench::run_stm_series<StmRbTree>(
                        kind, threads, opt, make_tree, op)));
    }
    table.print("tx/s");
  }
  return 0;
}
