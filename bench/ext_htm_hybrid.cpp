// Extension bench (§7.1.1 ablation): how much does the simulated-HTM fast
// path buy?
//   (a) Hybrid NOrec vs plain NOrec on small disjoint transactions (the
//       fast path should carry nearly all commits);
//   (b) OTB set with lock-based commit vs HTM commit, plus the hardware /
//       fallback commit mix.
#include <cstdio>

#include "benchlib/driver.h"
#include "benchlib/table.h"
#include "common/rng.h"
#include "htm/hybrid_norec.h"
#include "otb/htm_commit.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"
#include "stm/stm.h"

namespace otb::bench {
namespace {

void hybrid_vs_norec() {
  const auto threads = thread_counts();
  std::vector<std::string> cols;
  for (unsigned t : threads) cols.push_back(std::to_string(t));
  SeriesTable table("Ext-HTM (a): Hybrid NOrec vs NOrec, disjoint 4-word txs",
                    "threads", cols);
  constexpr std::size_t kWords = 256;

  {  // plain NOrec
    stm::TArray<std::int64_t> mem(kWords, 0);
    stm::Runtime rt(stm::AlgoKind::kNOrec);
    std::vector<double> row;
    for (unsigned t : threads) {
      row.push_back(run_fixed_duration(
                        t, warmup_ms(), measure_ms(),
                        [&](unsigned tid, const auto& phase, ThreadResult& out) {
                          stm::TxThread th(rt);
                          Xorshift rng{tid * 3u + 1};
                          while (phase() != Phase::kDone) {
                            const std::size_t base =
                                rng.next_bounded(kWords - 4);
                            rt.atomically(th, [&](stm::Tx& tx) {
                              for (std::size_t w = 0; w < 4; ++w) {
                                tx.write(mem[base + w],
                                         tx.read(mem[base + w]) + 1);
                              }
                            });
                            if (phase() == Phase::kMeasure) ++out.ops;
                          }
                        })
                        .ops_per_sec);
    }
    table.add_row("NOrec", row);
  }
  {  // Hybrid
    stm::TArray<std::int64_t> mem(kWords, 0);
    htm::HybridNOrecRuntime rt;
    std::vector<double> row;
    std::uint64_t hw = 0, sw = 0;
    for (unsigned t : threads) {
      std::atomic<std::uint64_t> hw_c{0}, sw_c{0};
      row.push_back(run_fixed_duration(
                        t, warmup_ms(), measure_ms(),
                        [&](unsigned tid, const auto& phase, ThreadResult& out) {
                          auto th = rt.make_thread();
                          Xorshift rng{tid * 3u + 1};
                          while (phase() != Phase::kDone) {
                            const std::size_t base =
                                rng.next_bounded(kWords - 4);
                            rt.atomically(*th, [&](stm::Tx& tx) {
                              for (std::size_t w = 0; w < 4; ++w) {
                                tx.write(mem[base + w],
                                         tx.read(mem[base + w]) + 1);
                              }
                            });
                            if (phase() == Phase::kMeasure) ++out.ops;
                          }
                          hw_c += th->htm_stats.commits;
                          sw_c += th->sw.stats().commits;
                        })
                        .ops_per_sec);
      hw = hw_c;
      sw = sw_c;
    }
    table.add_row("HybridNOrec", row);
    std::printf("hybrid commit mix at %u threads: hardware=%llu software=%llu\n",
                threads.back(), (unsigned long long)hw, (unsigned long long)sw);
  }
  table.print("tx/s");
}

void otb_htm_commit() {
  const auto threads = thread_counts();
  std::vector<std::string> cols;
  for (unsigned t : threads) cols.push_back(std::to_string(t));
  SeriesTable table("Ext-HTM (b): OTB skip-list set — lock commit vs HTM commit",
                    "threads", cols);
  constexpr std::int64_t kRange = 2048;

  auto run_point = [&](unsigned t, auto&& body) {
    return run_fixed_duration(t, warmup_ms(), measure_ms(), body).ops_per_sec;
  };

  {  // lock-based commit (the Chapter 3 runtime)
    tx::OtbSkipListSet set;
    for (std::int64_t k = 0; k < kRange; k += 2) set.add_seq(k);
    std::vector<double> row;
    for (unsigned t : threads) {
      row.push_back(run_point(
          t, [&](unsigned tid, const auto& phase, ThreadResult& out) {
            Xorshift rng{tid * 7u + 5};
            while (phase() != Phase::kDone) {
              const std::int64_t key =
                  std::int64_t(rng.next_bounded(std::uint64_t(kRange)));
              tx::atomically([&](tx::Transaction& tr) {
                if (!set.add(tr, key)) set.remove(tr, key);
              });
              if (phase() == Phase::kMeasure) ++out.ops;
            }
          }));
    }
    table.add_row("OTB lock commit", row);
  }
  {  // simulated-HTM commit
    tx::OtbSkipListSet set;
    for (std::int64_t k = 0; k < kRange; k += 2) set.add_seq(k);
    tx::HtmCommitRuntime rt;
    std::vector<double> row;
    for (unsigned t : threads) {
      row.push_back(run_point(
          t, [&](unsigned tid, const auto& phase, ThreadResult& out) {
            Xorshift rng{tid * 7u + 5};
            while (phase() != Phase::kDone) {
              const std::int64_t key =
                  std::int64_t(rng.next_bounded(std::uint64_t(kRange)));
              rt.atomically([&](tx::HtmCommitRuntime::Transaction& tr) {
                if (!set.add(tr, key)) set.remove(tr, key);
              });
              if (phase() == Phase::kMeasure) ++out.ops;
            }
          }));
    }
    table.add_row("OTB HTM commit", row);
    std::printf("OTB HTM commit mix: hardware=%llu fallback=%llu aborts=%llu\n",
                (unsigned long long)rt.stats().htm_commits.load(),
                (unsigned long long)rt.stats().fallback_commits.load(),
                (unsigned long long)rt.stats().htm_aborts.load());
  }
  table.print("tx/s");
}

}  // namespace
}  // namespace otb::bench

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::hybrid_vs_norec();
  otb::bench::otb_htm_commit();
  return 0;
}
