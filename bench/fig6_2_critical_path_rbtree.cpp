// Figure 6.2: critical-path breakdown on the red-black tree — fraction of
// in-transaction time spent in validation, in commit, and elsewhere, for
// NOrec (quadratic incremental validation) vs RInval (O(1) invalidation
// reads, remote commit).  The paper's shape: NOrec's validation share grows
// with threads; RInval shifts the cost out of the clients entirely.
#include "stm_bench_common.h"
#include "stmds/stm_rbtree.h"

using otb::stmds::StmRbTree;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);
  const std::int64_t range = 131072;

  const auto make_tree = [&] {
    auto tree = std::make_unique<StmRbTree>();
    for (std::int64_t k = 0; k < range; k += 2) tree->add_seq(k);
    return tree;
  };
  const otb::bench::StructOp<StmRbTree> op =
      [](otb::stm::Tx& tx, StmRbTree& tree, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          tree.contains(tx, key);
        } else if (rng.chance_pct(50)) {
          tree.add(tx, key);
        } else {
          tree.remove(tx, key);
        }
      };

  for (const auto kind : {otb::stm::AlgoKind::kNOrec, otb::stm::AlgoKind::kRInval}) {
    otb::bench::SeriesTable table(
        std::string("Fig 6.2 critical-path shares, RB-tree — ") +
            std::string(otb::stm::to_string(kind)),
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = 50;
    opt.key_range = range;
    opt.config.collect_timing = true;
    const auto results = otb::bench::run_stm_series<StmRbTree>(
        kind, threads, opt, make_tree, op);
    std::vector<double> validation, commit, other;
    for (const auto& r : results) {
      const double total = double(r.stats.ns_total) + 1e-9;
      validation.push_back(double(r.stats.ns_validation) / total);
      commit.push_back(double(r.stats.ns_commit) / total);
      other.push_back(1.0 - (double(r.stats.ns_validation) +
                             double(r.stats.ns_commit)) /
                                total);
    }
    table.add_row("validation", validation);
    table.add_row("commit", commit);
    table.add_row("other", other);
    table.print_fractional("fraction");
  }
  return 0;
}
