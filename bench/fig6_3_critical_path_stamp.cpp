// Figure 6.3: critical-path breakdown (validation / commit / other) on the
// mini-STAMP applications under NOrec with timing collection.
#include <cstdio>

#include "ministamp/ministamp.h"
#include "stm_bench_common.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  std::printf("\n== Fig 6.3 critical-path shares, mini-STAMP under NOrec ==\n");
  std::printf("%-12s", "benchmark");
  for (const unsigned t : threads) std::printf("  %3ut: val  com  oth", t);
  std::printf("\n");

  for (const auto& app : otb::ministamp::make_all_apps()) {
    std::printf("%-12s", app->name());
    for (const unsigned t : threads) {
      otb::stm::Config cfg;
      cfg.collect_timing = true;
      cfg.max_threads = 32;
      otb::stm::Runtime rt(otb::stm::AlgoKind::kNOrec, cfg);
      const auto r = app->run(rt, t);
      const double total = double(r.stats.ns_total) + 1e-9;
      const double val = double(r.stats.ns_validation) / total;
      const double com = double(r.stats.ns_commit) / total;
      std::printf("      %4.2f %4.2f %4.2f", val, com,
                  std::max(0.0, 1.0 - val - com));
    }
    std::printf("\n");
  }
  std::printf("shape: validation+commit dominate the commit-bound apps\n");
  return 0;
}
