// Figure 5.11: effect of the dependency-detector (secondary) servers —
// RTC with 0, 1 and 2 secondaries, plus a sweep of the write-set-size
// threshold that enables dependency detection (§5.1.1's trade-off).
// Workload: disjoint-address transactions with sizeable write-sets, the
// case secondary servers exist for.
#include "stm_bench_common.h"

using otb::stm::TArray;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);
  constexpr std::size_t kSlots = 64;       // disjoint regions, one per thread mod
  constexpr std::size_t kWritesPerTx = 16;  // above the DD threshold

  struct Region {
    TArray<std::int64_t> words{kSlots * kWritesPerTx, 0};
  };

  {
    otb::bench::SeriesTable table(
        "Fig 5.11a RTC secondary servers (disjoint write-heavy txs)", "threads",
        cols);
    for (const unsigned secondaries : {0u, 1u, 2u}) {
      std::vector<double> row;
      for (const unsigned t : threads) {
        Region region;
        otb::stm::Config cfg;
        cfg.rtc_secondary_servers = secondaries;
        cfg.rtc_dd_threshold = 8;
        otb::stm::Runtime rt(otb::stm::AlgoKind::kRTC, cfg);
        row.push_back(
            otb::bench::run_fixed_duration(
                t, otb::bench::warmup_ms(), otb::bench::measure_ms(),
                [&](unsigned tid, const auto& phase,
                    otb::bench::ThreadResult& out) {
                  otb::stm::TxThread th(rt);
                  const std::size_t base = (tid % kSlots) * kWritesPerTx;
                  while (phase() != otb::bench::Phase::kDone) {
                    rt.atomically(th, [&](otb::stm::Tx& tx) {
                      for (std::size_t i = 0; i < kWritesPerTx; ++i) {
                        auto& w = region.words[base + i];
                        tx.write(w, tx.read(w) + 1);
                      }
                    });
                    if (phase() == otb::bench::Phase::kMeasure) ++out.ops;
                  }
                })
                .ops_per_sec);
      }
      table.add_row("RTC+" + std::to_string(secondaries) + "sec", row);
    }
    table.print("tx/s");
  }

  {  // Threshold sweep at the largest thread count.
    const unsigned t = threads.back();
    std::vector<std::string> th_cols;
    const std::vector<std::size_t> thresholds = {2, 8, 32, 1u << 20};
    for (const auto v : thresholds) {
      th_cols.push_back(v >= (1u << 20) ? "off" : std::to_string(v));
    }
    otb::bench::SeriesTable table(
        "Fig 5.11b DD write-set threshold sweep (" + std::to_string(t) +
            " threads)",
        "threshold", th_cols);
    std::vector<double> row;
    for (const std::size_t threshold : thresholds) {
      Region region;
      otb::stm::Config cfg;
      cfg.rtc_secondary_servers = 1;
      cfg.rtc_dd_threshold = threshold;
      otb::stm::Runtime rt(otb::stm::AlgoKind::kRTC, cfg);
      row.push_back(
          otb::bench::run_fixed_duration(
              t, otb::bench::warmup_ms(), otb::bench::measure_ms(),
              [&](unsigned tid, const auto& phase,
                  otb::bench::ThreadResult& out) {
                otb::stm::TxThread th(rt);
                const std::size_t base = (tid % kSlots) * kWritesPerTx;
                while (phase() != otb::bench::Phase::kDone) {
                  rt.atomically(th, [&](otb::stm::Tx& tx) {
                    for (std::size_t i = 0; i < kWritesPerTx; ++i) {
                      auto& w = region.words[base + i];
                      tx.write(w, tx.read(w) + 1);
                    }
                  });
                  if (phase() == otb::bench::Phase::kMeasure) ++out.ops;
                }
              })
              .ops_per_sec);
    }
    table.add_row("RTC+1sec", row);
    table.print("tx/s");
  }
  return 0;
}
