// Figure 4.3: skip-list set, 4K elements — pure-STM vs OTB-integrated.
// Logarithmic traversals shrink the false-conflict gap relative to Fig 4.2.
#include "integration_bench_common.h"
#include "otb/otb_skiplist_set.h"
#include "stmds/stm_skiplist.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_integration_figure<otb::stmds::StmSkipList,
                                     otb::tx::OtbSkipListSet>(
      "Fig 4.3 skip-list integration", 8192);
  return 0;
}
