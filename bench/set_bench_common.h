// Shared driver for the Chapter-3 set figures (3.3–3.5): runs the paper's
// four workloads over the three competitors — Lazy (non-transactional upper
// bound), PessimisticBoosted (Herlihy–Koskinen), OptimisticBoosted (OTB) —
// and prints one table per workload with thread counts as columns.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/driver.h"
#include "benchlib/table.h"
#include "boosted/boosted_runtime.h"
#include "boosted/boosted_set.h"
#include "common/rng.h"
#include "otb/runtime.h"

namespace otb::bench {

struct SetWorkload {
  const char* name;
  unsigned write_pct;   // successful-write share; rest are contains
  unsigned ops_per_tx;  // operations per transaction
};

inline constexpr SetWorkload kPaperSetWorkloads[] = {
    {"read-only", 0, 1},
    {"read-intensive", 20, 1},
    {"write-intensive", 80, 1},
    {"high-contention", 80, 5},
};

/// One random set operation: add/remove split evenly among writes so the
/// structure size stays near `range / 2` (§3.3 methodology).
template <typename DoAdd, typename DoRemove, typename DoContains>
void one_op(Xorshift& rng, std::int64_t range, unsigned write_pct,
            const DoAdd& add, const DoRemove& remove, const DoContains& contains) {
  const auto key = std::int64_t(rng.next_bounded(std::uint64_t(range)));
  if (rng.chance_pct(write_pct)) {
    if (rng.chance_pct(50)) {
      add(key);
    } else {
      remove(key);
    }
  } else {
    contains(key);
  }
}

/// Benchmark one (structure set) for all workloads and thread counts.
/// LazySet: add/remove/contains(Key).  OtbSet / BoostedSet: transactional.
template <typename LazySet, typename OtbSet, typename BoostedUnder>
void run_set_figure(const std::string& figure, std::int64_t range) {
  const auto threads = thread_counts();
  std::vector<std::string> cols;
  for (unsigned t : threads) cols.push_back(std::to_string(t));

  for (const SetWorkload& w : kPaperSetWorkloads) {
    SeriesTable table(figure + " — " + w.name + " (" +
                          std::to_string(range / 2) + " elems, " +
                          std::to_string(w.write_pct) + "% writes, " +
                          std::to_string(w.ops_per_tx) + " ops/tx)",
                      "threads", cols);

    {  // Lazy: non-transactional upper bound.
      LazySet set;
      for (std::int64_t k = 0; k < range; k += 2) set.add(k);
      std::vector<double> row;
      for (unsigned t : threads) {
        row.push_back(
            run_fixed_duration(t, warmup_ms(), measure_ms(),
                               [&](unsigned tid, const auto& phase,
                                   ThreadResult& out) {
                                 Xorshift rng{tid * 7321u + 1};
                                 while (phase() != Phase::kDone) {
                                   for (unsigned o = 0; o < w.ops_per_tx; ++o) {
                                     one_op(
                                         rng, range, w.write_pct,
                                         [&](std::int64_t k) { set.add(k); },
                                         [&](std::int64_t k) { set.remove(k); },
                                         [&](std::int64_t k) { set.contains(k); });
                                   }
                                   if (phase() == Phase::kMeasure) ++out.ops;
                                 }
                               })
                .ops_per_sec);
      }
      table.add_row("Lazy", row);
    }

    {  // Pessimistic boosting over the lazy structure.
      boosted::BoostedSet<BoostedUnder> set;
      {
        boosted::BoostedTx seed;
        for (std::int64_t k = 0; k < range; k += 2) set.add(seed, k);
        seed.commit();
      }
      std::vector<double> row;
      for (unsigned t : threads) {
        row.push_back(
            run_fixed_duration(t, warmup_ms(), measure_ms(),
                               [&](unsigned tid, const auto& phase,
                                   ThreadResult& out) {
                                 Xorshift rng{tid * 9973u + 5};
                                 while (phase() != Phase::kDone) {
                                   out.aborts += boosted::atomically(
                                       [&](boosted::BoostedTx& tx) {
                                         Xorshift ops = rng;
                                         for (unsigned o = 0; o < w.ops_per_tx;
                                              ++o) {
                                           one_op(
                                               ops, range, w.write_pct,
                                               [&](std::int64_t k) {
                                                 set.add(tx, k);
                                               },
                                               [&](std::int64_t k) {
                                                 set.remove(tx, k);
                                               },
                                               [&](std::int64_t k) {
                                                 set.contains(tx, k);
                                               });
                                         }
                                       }).aborts;
                                   rng.next();  // advance base sequence
                                   if (phase() == Phase::kMeasure) ++out.ops;
                                 }
                               })
                .ops_per_sec);
      }
      table.add_row("PessimisticBoosted", row);
    }

    {  // OTB.
      OtbSet set;
      for (std::int64_t k = 0; k < range; k += 2) set.add_seq(k);
      std::vector<double> row;
      for (unsigned t : threads) {
        row.push_back(
            run_fixed_duration(t, warmup_ms(), measure_ms(),
                               [&](unsigned tid, const auto& phase,
                                   ThreadResult& out) {
                                 Xorshift rng{tid * 4409u + 9};
                                 while (phase() != Phase::kDone) {
                                   out.aborts += tx::atomically(
                                       [&](tx::Transaction& tx) {
                                         Xorshift ops = rng;
                                         for (unsigned o = 0; o < w.ops_per_tx;
                                              ++o) {
                                           one_op(
                                               ops, range, w.write_pct,
                                               [&](std::int64_t k) {
                                                 set.add(tx, k);
                                               },
                                               [&](std::int64_t k) {
                                                 set.remove(tx, k);
                                               },
                                               [&](std::int64_t k) {
                                                 set.contains(tx, k);
                                               });
                                         }
                                       }).aborts;
                                   rng.next();
                                   if (phase() == Phase::kMeasure) ++out.ops;
                                 }
                               })
                .ops_per_sec);
      }
      table.add_row("OptimisticBoosted", row);
    }

    table.print("tx/s");
  }
}

}  // namespace otb::bench
