// Figure 4.4: the Algorithm-7 test case — every transaction performs one
// set operation (50% add/remove, 50% contains) and increments one of six
// shared outcome counters in the same transaction.  Pure-STM vs
// OTB-integrated, on both the linked list and the skip list.
#include <string>
#include <vector>

#include "benchlib/driver.h"
#include "benchlib/table.h"
#include "common/rng.h"
#include "integration/otb_stm.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "stm/stm.h"
#include "stmds/stm_list.h"
#include "stmds/stm_skiplist.h"

namespace otb::bench {
namespace {

struct Counters {
  stm::TVar<std::int64_t> ok_add{0}, fail_add{0};
  stm::TVar<std::int64_t> ok_rem{0}, fail_rem{0};
  stm::TVar<std::int64_t> ok_has{0}, fail_has{0};
};

void bump(stm::Tx& tx, Counters& c, bool write, bool is_add, bool ok) {
  stm::TVar<std::int64_t>* target;
  if (!write) {
    target = ok ? &c.ok_has : &c.fail_has;
  } else if (is_add) {
    target = ok ? &c.ok_add : &c.fail_add;
  } else {
    target = ok ? &c.ok_rem : &c.fail_rem;
  }
  tx.write(*target, tx.read(*target) + 1);
}

template <typename StmSet, typename OtbSet>
void run_mixed(const std::string& title, std::int64_t range) {
  const auto threads = thread_counts();
  std::vector<std::string> cols;
  for (unsigned t : threads) cols.push_back(std::to_string(t));
  SeriesTable table(title + " (set op + counter increments per tx)", "threads",
                    cols);

  for (const stm::AlgoKind kind : {stm::AlgoKind::kNOrec, stm::AlgoKind::kTL2}) {
    StmSet set;
    for (std::int64_t k = 0; k < range; k += 2) set.add_seq(k);
    Counters counters;
    stm::Runtime rt(kind);
    std::vector<double> row;
    for (unsigned t : threads) {
      row.push_back(
          run_fixed_duration(
              t, warmup_ms(), measure_ms(),
              [&](unsigned tid, const auto& phase, ThreadResult& out) {
                stm::TxThread th(rt);
                Xorshift rng{tid * 37u + 3};
                while (phase() != Phase::kDone) {
                  const auto key =
                      std::int64_t(rng.next_bounded(std::uint64_t(range)));
                  const bool write = rng.chance_pct(50);
                  const bool is_add = rng.chance_pct(50);
                  out.aborts += rt.atomically(th, [&](stm::Tx& tx) {
                    bool ok;
                    if (!write) {
                      ok = set.contains(tx, key);
                    } else if (is_add) {
                      ok = set.add(tx, key);
                    } else {
                      ok = set.remove(tx, key);
                    }
                    bump(tx, counters, write, is_add, ok);
                  }).aborts;
                  if (phase() == Phase::kMeasure) ++out.ops;
                }
              })
              .ops_per_sec);
    }
    table.add_row(std::string(stm::to_string(kind)), row);
  }

  for (const integration::HostAlgo host :
       {integration::HostAlgo::kOtbNOrec, integration::HostAlgo::kOtbTl2}) {
    OtbSet set;
    for (std::int64_t k = 0; k < range; k += 2) set.add_seq(k);
    Counters counters;
    integration::Runtime rt(host);
    std::vector<double> row;
    for (unsigned t : threads) {
      row.push_back(
          run_fixed_duration(
              t, warmup_ms(), measure_ms(),
              [&](unsigned tid, const auto& phase, ThreadResult& out) {
                auto ctx = rt.make_tx();
                Xorshift rng{tid * 53u + 11};
                while (phase() != Phase::kDone) {
                  const auto key =
                      std::int64_t(rng.next_bounded(std::uint64_t(range)));
                  const bool write = rng.chance_pct(50);
                  const bool is_add = rng.chance_pct(50);
                  out.aborts += rt.atomically(*ctx, [&](integration::OtbTx& tx) {
                    bool ok;
                    if (!write) {
                      ok = set.contains(tx, key);
                    } else if (is_add) {
                      ok = set.add(tx, key);
                    } else {
                      ok = set.remove(tx, key);
                    }
                    bump(tx, counters, write, is_add, ok);
                  }).aborts;
                  if (phase() == Phase::kMeasure) ++out.ops;
                }
              })
              .ops_per_sec);
    }
    table.add_row(std::string(integration::to_string(host)), row);
  }

  table.print("tx/s");
}

}  // namespace
}  // namespace otb::bench

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_mixed<otb::stmds::StmList, otb::tx::OtbListSet>(
      "Fig 4.4a linked-list mixed test case", 1024);
  otb::bench::run_mixed<otb::stmds::StmSkipList, otb::tx::OtbSkipListSet>(
      "Fig 4.4b skip-list mixed test case", 8192);
  return 0;
}
