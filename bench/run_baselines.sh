#!/usr/bin/env bash
# Record-and-compare performance baseline runner: executes the Chapter-3
# figure harnesses (fig3.3-3.7) and the micro_ops suite at fixed thread
# counts and durations, validates every --metrics-json dump with the strict
# otb.metrics/8 checker, and merges the dumps into one baseline file
# (BENCH_otb_baseline.json at the repo root by default).
#
# By default the output is a record: absolute numbers are machine-bound, so
# CI uploads the file as an artifact.  Setting OTB_BASELINE_COMPARE to a
# previous baseline additionally diffs the fresh run against it with
# `metrics_check --compare` and fails on any committed-throughput series
# regressing beyond the tolerance — noise-tolerant (30% default, low-count
# series skipped) but a real gate against order-of-magnitude slips.
# Refresh the checked-in baseline when the substrate changes materially:
#
#   bench/run_baselines.sh <build-dir> [out.json]
#
# Environment (defaults chosen so a laptop run stays under ~1 minute):
#   OTB_BASELINE_MS            measured ms per data point     (default 400)
#   OTB_BASELINE_THREADS       thread counts, space-separated (default "1 2 4")
#   OTB_BASELINE_COMPARE       old baseline to diff against   (default: none)
#   OTB_BASELINE_TOLERANCE_PCT allowed per-series drop        (default 30)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT=${2:-"$REPO_ROOT/BENCH_otb_baseline.json"}

export OTB_BENCH_MS=${OTB_BASELINE_MS:-400}
export OTB_BENCH_WARM_MS=${OTB_BENCH_WARM_MS:-50}
export OTB_BENCH_THREADS=${OTB_BASELINE_THREADS:-"1 2 4"}

BENCH_DIR="$BUILD_DIR/bench"
CHECK="$BENCH_DIR/metrics_check"
for exe in "$CHECK" "$BENCH_DIR/micro_ops"; do
  if [[ ! -x "$exe" ]]; then
    echo "error: $exe not built (build the bench targets first)" >&2
    exit 2
  fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Figure harness -> metrics domains the validator must find in its dump.
FIGURES=(
  "fig3_3_list_set:otb.tx boosted"
  "fig3_4_skiplist_set_small:otb.tx boosted"
  "fig3_5_skiplist_set_large:otb.tx boosted"
  "fig3_6_pq_heap:otb.tx boosted"
  "fig3_7_pq_skiplist:otb.tx boosted"
)

run_names=()
for entry in "${FIGURES[@]}"; do
  name=${entry%%:*}
  domains=${entry#*:}
  exe="$BENCH_DIR/$name"
  if [[ ! -x "$exe" ]]; then
    echo "error: $exe not built" >&2
    exit 2
  fi
  echo "== $name (ms=$OTB_BENCH_MS threads='$OTB_BENCH_THREADS')"
  "$exe" --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
  # shellcheck disable=SC2086
  "$CHECK" --validate "$TMP/$name.json" $domains > /dev/null
  run_names+=("$name")
done

# Service-plane closed loop at script lengths 1/2/4/8: the composition-
# overhead curve (EXPERIMENTS.md).  --script-len=1 submits the identical
# single-step requests the pre-script harness did, so load_service_s1 is
# the single-op throughput series the compare gate tracks across the API
# redesign.  Short fixed window/clients keep a laptop run quick; the
# figure-quality sweep lives in EXPERIMENTS.md's command lines.
if [[ -x "$BENCH_DIR/load_service" ]]; then
  for slen in 1 2 4 8; do
    name="load_service_s$slen"
    echo "== $name (closed loop, ms=$OTB_BENCH_MS)"
    "$BENCH_DIR/load_service" --mode=closed --script-len="$slen" \
      --duration-ms="$OTB_BENCH_MS" --clients=2 --workers=2 \
      --window=128 --batch-max=16 --key-range=256 \
      --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
    "$CHECK" --validate "$TMP/$name.json" otb.service otb.tx > /dev/null
    run_names+=("$name")
  done
else
  echo "error: $BENCH_DIR/load_service not built" >&2
  exit 2
fi

# Read-mostly (90/10) and scan-heavy closed loops: the workloads the
# multi-version snapshot-read path (OTB_MV_VERSIONS, on by default) exists
# for — read-only scripts execute inline against version chains, so these
# two series gate the snapshot route's throughput in --compare runs.  The
# mixed 60/30/10 rows above keep gating the batched write path.
for mix in "readmostly:--read-pct=90" "scan:--read-pct=40 --scan-pct=50"; do
  name="load_service_${mix%%:*}"
  args=${mix#*:}
  echo "== $name (closed loop, ms=$OTB_BENCH_MS, $args)"
  # shellcheck disable=SC2086
  "$BENCH_DIR/load_service" --mode=closed --script-len=1 $args \
    --duration-ms="$OTB_BENCH_MS" --clients=2 --workers=2 \
    --window=128 --batch-max=16 --key-range=256 \
    --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
  "$CHECK" --validate "$TMP/$name.json" otb.service otb.tx > /dev/null
  run_names+=("$name")
done

# Hot-key skew (90% of ops on 16 keys): the extreme-contention regime the
# transaction-fusion contention manager targets (src/service/fusion.h,
# ISSUE 10) — sharding cannot spread this load, so committed throughput
# rides on fusing conflicting batches instead of splitting them.  The
# fusion counters land in the same dump the validator checks.
name="load_service_hotkey"
echo "== $name (closed loop, ms=$OTB_BENCH_MS, --hot-pct=90 --hot-keys=16)"
"$BENCH_DIR/load_service" --mode=closed --script-len=1 \
  --hot-pct=90 --hot-keys=16 \
  --duration-ms="$OTB_BENCH_MS" --clients=2 --workers=2 \
  --window=128 --batch-max=16 --key-range=256 \
  --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
"$CHECK" --validate "$TMP/$name.json" otb.service otb.tx > /dev/null
run_names+=("$name")

# WAL durability overhead: the same closed-loop single-step workload with
# the write-ahead log under group commit and fsync-per-record
# (docs/DURABILITY.md); load_service_s1 above is the wal-off arm.  The
# log lives in a tmpdir that dies with the run; the s1-vs-wal_group
# delta is the group-commit cost the EXPERIMENTS.md durability row
# tracks, and wal_always bounds it from above.
for mode in group always; do
  name="load_service_wal_$mode"
  echo "== $name (closed loop, ms=$OTB_BENCH_MS, fsync=$mode)"
  "$BENCH_DIR/load_service" --mode=closed --script-len=1 \
    --duration-ms="$OTB_BENCH_MS" --clients=2 --workers=2 \
    --window=128 --batch-max=16 --key-range=256 \
    --wal-dir="$TMP/wal_$mode" --wal-fsync="$mode" \
    --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
  "$CHECK" --validate "$TMP/$name.json" otb.service otb.tx > /dev/null
  run_names+=("$name")
done

# Network front end over real loopback sockets: the epoll server with a
# forked multi-process client fleet (closed loop, pipelined v2 frames).
# load_service_net is the single-plane arm; load_service_sharded runs the
# same fleet against four independent service planes behind the key-hash
# router (docs/SERVICE.md "Network server & sharding").  The sharded dump
# must carry all four per-shard ledger domains plus the net domain; the
# validator also checks the per-shard identities and their aggregate.
name="load_service_net"
echo "== $name (net fleet, ms=$OTB_BENCH_MS)"
"$BENCH_DIR/load_service" --mode=closed --script-len=1 \
  --duration-ms="$OTB_BENCH_MS" --clients=8 --processes=2 --net-threads=1 \
  --workers=2 --window=64 --batch-max=16 --key-range=256 \
  --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
"$CHECK" --validate "$TMP/$name.json" otb.service otb.service.net otb.tx \
  > /dev/null
run_names+=("$name")

name="load_service_sharded"
echo "== $name (net fleet, 4 shards, ms=$OTB_BENCH_MS)"
"$BENCH_DIR/load_service" --mode=closed --script-len=1 --shards=4 \
  --duration-ms="$OTB_BENCH_MS" --clients=8 --processes=2 --net-threads=1 \
  --workers=2 --window=64 --batch-max=16 --key-range=256 \
  --metrics-json="$TMP/$name.json" > "$TMP/$name.out"
"$CHECK" --validate "$TMP/$name.json" otb.service.s0 otb.service.s1 \
  otb.service.s2 otb.service.s3 otb.service.net otb.tx > /dev/null
run_names+=("$name")

# micro_ops: transactional micro-latencies plus the validation-scaling
# sweep (the sweep's fast/full counters land in the otb.tx domain).
echo "== micro_ops (validation-scaling sweep + tx micro-ops)"
"$BENCH_DIR/micro_ops" \
  --benchmark_filter='BM_Otb|BM_StmReadWrite|ValidationSweep' \
  --benchmark_min_time=0.05 \
  --metrics-json="$TMP/micro_ops.json" > "$TMP/micro_ops.out"
"$CHECK" --validate "$TMP/micro_ops.json" otb.tx > /dev/null
run_names+=("micro_ops")

# Merge the per-run dumps into one self-describing baseline document.
{
  printf '{\n'
  printf '  "schema": "otb.bench_baseline/1",\n'
  printf '  "generated_by": "bench/run_baselines.sh",\n'
  printf '  "bench_ms": %s,\n' "$OTB_BENCH_MS"
  printf '  "threads": "%s",\n' "$OTB_BENCH_THREADS"
  printf '  "runs": {\n'
  for i in "${!run_names[@]}"; do
    name=${run_names[$i]}
    printf '    "%s": ' "$name"
    # Each dump is a complete otb.metrics/2 object; inline it verbatim.
    tr -d '\n' < "$TMP/$name.json"
    if (( i + 1 < ${#run_names[@]} )); then printf ',\n'; else printf '\n'; fi
  done
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "baseline written to $OUT ($(wc -c < "$OUT") bytes, ${#run_names[@]} runs)"

# Optional regression gate: diff the fresh baseline against a recorded one.
if [[ -n "${OTB_BASELINE_COMPARE:-}" ]]; then
  if [[ ! -f "$OTB_BASELINE_COMPARE" ]]; then
    echo "error: OTB_BASELINE_COMPARE=$OTB_BASELINE_COMPARE not found" >&2
    exit 2
  fi
  echo "== compare against $OTB_BASELINE_COMPARE"
  "$CHECK" --compare "$OTB_BASELINE_COMPARE" "$OUT" \
    "${OTB_BASELINE_TOLERANCE_PCT:-30}"
fi
