// Shared driver for the priority-queue figures (3.6–3.7): 50% add / 50%
// removeMin, transaction sizes 1 and 5, PessimisticBoosted vs
// OptimisticBoosted.
#pragma once

#include <string>
#include <vector>

#include "benchlib/driver.h"
#include "benchlib/table.h"
#include "boosted/boosted_pq.h"
#include "boosted/boosted_runtime.h"
#include "common/rng.h"
#include "otb/runtime.h"

namespace otb::bench {

/// OtbPq: one of the OTB queues.  Elements keep the queue near 512 entries:
/// adds draw fresh random keys, removeMin drains.
template <typename OtbPq>
void run_pq_figure(const std::string& figure) {
  const auto threads = thread_counts();
  std::vector<std::string> cols;
  for (unsigned t : threads) cols.push_back(std::to_string(t));
  constexpr std::int64_t kSeed = 512;
  constexpr std::uint64_t kKeyRange = 1u << 30;

  for (const unsigned ops_per_tx : {1u, 5u}) {
    SeriesTable table(figure + " — tx size " + std::to_string(ops_per_tx) +
                          " (512 elems, 50% add / 50% removeMin)",
                      "threads", cols);

    {  // Pessimistic boosting over the coarse concurrent heap.
      std::vector<double> row;
      for (unsigned t : threads) {
        boosted::BoostedHeapPQ pq;
        for (std::int64_t k = 0; k < kSeed; ++k) {
          pq.add_seq(std::int64_t(mix64(std::uint64_t(k)) % kKeyRange));
        }
        row.push_back(
            run_fixed_duration(t, warmup_ms(), measure_ms(),
                               [&](unsigned tid, const auto& phase,
                                   ThreadResult& out) {
                                 Xorshift rng{tid * 131u + 3};
                                 while (phase() != Phase::kDone) {
                                   out.aborts += boosted::atomically(
                                       [&](boosted::BoostedTx& tx) {
                                         Xorshift ops = rng;
                                         for (unsigned o = 0; o < ops_per_tx;
                                              ++o) {
                                           if (ops.chance_pct(50)) {
                                             pq.add(tx,
                                                    std::int64_t(ops.next_bounded(
                                                        kKeyRange)));
                                           } else {
                                             std::int64_t v;
                                             pq.remove_min(tx, &v);
                                           }
                                         }
                                       }).aborts;
                                   rng.next();
                                   if (phase() == Phase::kMeasure) ++out.ops;
                                 }
                               })
                .ops_per_sec);
      }
      table.add_row("PessimisticBoosted", row);
    }

    {  // OTB queue.
      std::vector<double> row;
      for (unsigned t : threads) {
        OtbPq pq;
        for (std::int64_t k = 0; k < kSeed; ++k) {
          pq.add_seq(std::int64_t(mix64(std::uint64_t(k)) % kKeyRange));
        }
        row.push_back(
            run_fixed_duration(t, warmup_ms(), measure_ms(),
                               [&](unsigned tid, const auto& phase,
                                   ThreadResult& out) {
                                 Xorshift rng{tid * 733u + 7};
                                 while (phase() != Phase::kDone) {
                                   out.aborts += tx::atomically(
                                       [&](tx::Transaction& tx) {
                                         Xorshift ops = rng;
                                         for (unsigned o = 0; o < ops_per_tx;
                                              ++o) {
                                           if (ops.chance_pct(50)) {
                                             pq.add(tx,
                                                    std::int64_t(ops.next_bounded(
                                                        kKeyRange)));
                                           } else {
                                             std::int64_t v;
                                             pq.remove_min(tx, &v);
                                           }
                                         }
                                       }).aborts;
                                   rng.next();
                                   if (phase() == Phase::kMeasure) ++out.ops;
                                 }
                               })
                .ops_per_sec);
      }
      table.add_row("OptimisticBoosted", row);
    }

    table.print("tx/s");
  }
}

}  // namespace otb::bench
