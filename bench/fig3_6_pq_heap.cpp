// Figure 3.6: heap-based priority queue, 512 elements, transaction sizes
// 1 and 5 — PessimisticBoosted vs the semi-optimistic OTB heap queue.
#include "otb/otb_heap_pq.h"
#include "pq_bench_common.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_pq_figure<otb::tx::OtbHeapPQ>("Fig 3.6 heap priority queue");
  return 0;
}
