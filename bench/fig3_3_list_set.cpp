// Figure 3.3: linked-list-based set, 512 elements, four workloads,
// Lazy vs PessimisticBoosted vs OptimisticBoosted throughput.
#include "set_bench_common.h"
#include "cds/lazy_list_set.h"
#include "otb/otb_list_set.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  // 512 resident elements -> key range 1024 with half populated.
  otb::bench::run_set_figure<otb::cds::LazyListSet, otb::tx::OtbListSet,
                             otb::cds::LazyListSet>("Fig 3.3 linked-list set",
                                                    1024);
  return 0;
}
