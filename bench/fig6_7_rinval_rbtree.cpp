// Figure 6.7: red-black tree, 64K elements — RInval (V1 and V2) vs NOrec
// vs InvalSTM throughput.  The paper's shape: InvalSTM trails badly (the
// committer carries the whole invalidation scan under a coarse lock),
// NOrec sits in between, RInval wins, and V2 (parallel invalidation server)
// beats V1.
#include "stm_bench_common.h"
#include "stmds/stm_rbtree.h"

using otb::stmds::StmRbTree;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);
  const std::int64_t range = 131072;

  const auto make_tree = [&] {
    auto tree = std::make_unique<StmRbTree>();
    for (std::int64_t k = 0; k < range; k += 2) tree->add_seq(k);
    return tree;
  };
  const otb::bench::StructOp<StmRbTree> op =
      [](otb::stm::Tx& tx, StmRbTree& tree, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          tree.contains(tx, key);
        } else if (rng.chance_pct(50)) {
          tree.add(tx, key);
        } else {
          tree.remove(tx, key);
        }
      };

  for (const unsigned read_pct : {50u, 80u}) {
    otb::bench::SeriesTable table(
        "Fig 6.7 RB-tree 64K, " + std::to_string(read_pct) + "% reads",
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = read_pct;
    opt.key_range = range;
    opt.noops_between = 100;

    for (const auto kind :
         {otb::stm::AlgoKind::kInvalSTM, otb::stm::AlgoKind::kNOrec}) {
      table.add_row(std::string(otb::stm::to_string(kind)),
                    otb::bench::throughputs(otb::bench::run_stm_series<StmRbTree>(
                        kind, threads, opt, make_tree, op)));
    }
    {  // RInval V1: the commit server also invalidates.
      auto v1 = opt;
      v1.config.rinval_parallel_invalidation = false;
      table.add_row("RInval-V1",
                    otb::bench::throughputs(otb::bench::run_stm_series<StmRbTree>(
                        otb::stm::AlgoKind::kRInval, threads, v1, make_tree, op)));
    }
    {  // RInval V2: invalidation runs in its own server, in parallel.
      auto v2 = opt;
      v2.config.rinval_parallel_invalidation = true;
      table.add_row("RInval-V2",
                    otb::bench::throughputs(otb::bench::run_stm_series<StmRbTree>(
                        otb::stm::AlgoKind::kRInval, threads, v2, make_tree, op)));
    }
    table.print("tx/s");
  }
  return 0;
}
