// Figure 3.7: skip-list priority queue, 512 elements, transaction sizes 1
// and 5 — PessimisticBoosted (heap black box) vs the fully optimistic OTB
// skip-list queue.
#include "otb/otb_skiplist_pq.h"
#include "pq_bench_common.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_pq_figure<otb::tx::OtbSkipListPQ>(
      "Fig 3.7 skip-list priority queue");
  return 0;
}
