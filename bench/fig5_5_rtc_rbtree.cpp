// Figure 5.5: red-black tree, 64K elements, 50% and 80% reads — RTC vs
// RingSW, NOrec, TL2 throughput.  The paper's shape: all algorithms scale
// similarly at low thread counts, RTC sustains throughput where the
// lock-spinning algorithms degrade.
#include "stm_bench_common.h"
#include "stmds/stm_rbtree.h"

using otb::stmds::StmRbTree;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);
  const std::int64_t range = 131072;  // ~64K resident

  const auto make_tree = [&] {
    auto tree = std::make_unique<StmRbTree>();
    for (std::int64_t k = 0; k < range; k += 2) tree->add_seq(k);
    return tree;
  };
  const otb::bench::StructOp<StmRbTree> op =
      [](otb::stm::Tx& tx, StmRbTree& tree, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          tree.contains(tx, key);
        } else if (rng.chance_pct(50)) {
          tree.add(tx, key);
        } else {
          tree.remove(tx, key);
        }
      };

  for (const unsigned read_pct : {50u, 80u}) {
    otb::bench::SeriesTable table(
        "Fig 5.5 RB-tree 64K, " + std::to_string(read_pct) + "% reads",
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = read_pct;
    opt.key_range = range;
    opt.noops_between = 100;
    for (const auto kind :
         {otb::stm::AlgoKind::kRingSW, otb::stm::AlgoKind::kNOrec,
          otb::stm::AlgoKind::kTL2, otb::stm::AlgoKind::kRTC}) {
      table.add_row(std::string(otb::stm::to_string(kind)),
                    otb::bench::throughputs(otb::bench::run_stm_series<StmRbTree>(
                        kind, threads, opt, make_tree, op)));
    }
    table.print("tx/s");
  }
  return 0;
}
