// Table 5.1: NOrec commit-time ratio across the mini-STAMP applications —
// %trans = commit time / in-transaction time, %total = commit time / wall
// time, per thread count.  Requires the runtime's timing collection.
#include <cstdio>

#include "ministamp/ministamp.h"
#include "stm_bench_common.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  std::printf("\n== Table 5.1 NOrec commit-time ratio (mini-STAMP) ==\n");
  std::printf("%-12s", "benchmark");
  for (const unsigned t : threads) {
    std::printf("  %4ut:%%trans %%total", t);
  }
  std::printf("\n");

  for (const auto& app : otb::ministamp::make_all_apps()) {
    std::printf("%-12s", app->name());
    for (const unsigned t : threads) {
      otb::stm::Config cfg;
      cfg.collect_timing = true;
      cfg.max_threads = 32;
      otb::stm::Runtime rt(otb::stm::AlgoKind::kNOrec, cfg);
      const auto r = app->run(rt, t);
      const double wall_ns = r.exec_ms * 1e6 * t;  // per-thread wall budget
      const double pct_trans =
          r.stats.ns_total > 0
              ? 100.0 * double(r.stats.ns_commit) / double(r.stats.ns_total)
              : 0.0;
      const double pct_total =
          wall_ns > 0 ? 100.0 * double(r.stats.ns_commit) / wall_ns : 0.0;
      std::printf("     %6.1f %6.1f", pct_trans, pct_total);
    }
    std::printf("\n");
  }
  std::printf(
      "shape: ssca2/kmeans most commit-bound, labyrinth ~0 (matches paper)\n");
  return 0;
}
