// Figure 5.8: doubly linked list with 500 elements, 100 no-ops between
// transactions, 50% and 98% reads — RTC's worst case (commit time is <1% of
// the transaction, so the server round-trip is pure overhead at 50% reads;
// at 98% reads the servers are idle and the gap closes).
#include "stm_bench_common.h"
#include "stmds/stm_dll.h"

using otb::stmds::StmDll;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);
  const std::int64_t range = 1000;  // ~500 resident

  const auto make_dll = [&] {
    auto dll = std::make_unique<StmDll>();
    for (std::int64_t k = 0; k < range; k += 2) dll->add_seq(k);
    return dll;
  };
  const otb::bench::StructOp<StmDll> op =
      [](otb::stm::Tx& tx, StmDll& dll, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          dll.contains(tx, key);
        } else if (rng.chance_pct(50)) {
          dll.add(tx, key);
        } else {
          dll.remove(tx, key);
        }
      };

  for (const unsigned read_pct : {50u, 98u}) {
    otb::bench::SeriesTable table(
        "Fig 5.8 doubly-linked list 500, " + std::to_string(read_pct) +
            "% reads, 100 no-ops between txs",
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = read_pct;
    opt.key_range = range;
    opt.noops_between = 100;
    for (const auto kind :
         {otb::stm::AlgoKind::kRingSW, otb::stm::AlgoKind::kNOrec,
          otb::stm::AlgoKind::kTL2, otb::stm::AlgoKind::kRTC}) {
      table.add_row(std::string(otb::stm::to_string(kind)),
                    otb::bench::throughputs(otb::bench::run_stm_series<StmDll>(
                        kind, threads, opt, make_dll, op)));
    }
    table.print("tx/s");
  }
  return 0;
}
