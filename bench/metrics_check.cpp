// metrics_smoke checker: runs micro_ops (path in argv[1]) with
// --metrics-json and validates the dump against the strict otb.metrics/1
// parser plus the acceptance invariants — every BM_StmReadWrite algorithm
// and the standalone OTB runtime must report attempts and commits, the
// timed domains must carry attempt-phase histograms, and every histogram's
// bucket sum must equal its sample count.  Any algorithm that stops
// reporting through otb::metrics fails this test.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/json.h"

namespace {

int g_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  g_failures += 1;
}

void check_histograms(const std::string& domain,
                      const otb::metrics::SinkSnapshot& s) {
  using otb::metrics::Phase;
  for (std::size_t i = 0; i < otb::metrics::kPhaseCount; ++i) {
    const auto& p = s.phases[i];
    std::uint64_t sum = 0;
    for (const auto b : p.log2_buckets) sum += b;
    if (sum != p.count) {
      fail(domain + "." + std::string(to_string(static_cast<Phase>(i))) +
           ": bucket sum " + std::to_string(sum) + " != count " +
           std::to_string(p.count));
    }
  }
}

void check_domain(const otb::metrics::Snapshot& snap, const std::string& name,
                  bool want_phase_timing) {
  using otb::metrics::CounterId;
  using otb::metrics::Phase;
  const otb::metrics::SinkSnapshot* s = snap.find(name);
  if (s == nullptr) {
    fail("domain missing from dump: " + name);
    return;
  }
  if (s->counter(CounterId::kAttempts) == 0) fail(name + ": attempts == 0");
  if (s->counter(CounterId::kCommits) == 0) fail(name + ": commits == 0");
  if (s->counter(CounterId::kAttempts) <
      s->counter(CounterId::kCommits) + s->aborts_total()) {
    fail(name + ": attempts < commits + aborts");
  }
  if (want_phase_timing && s->phase(Phase::kAttempt).count == 0) {
    fail(name + ": attempt-phase histogram is empty");
  }
  check_histograms(name, *s);
}

/// `metrics_check --validate <dump.json> [domain...]`: validate an existing
/// --metrics-json dump instead of spawning micro_ops.  Used by the CI
/// bench-smoke job on the figure harnesses' output.  Named domains must be
/// present and self-consistent; every domain in the dump gets the histogram
/// bucket-sum check regardless.
int validate_dump(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: metrics_check --validate <dump.json> [domain...]\n");
    return 2;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto snap = otb::metrics::from_json(buf.str());
  if (!snap.has_value()) {
    std::fprintf(stderr, "FAIL: %s does not parse as %s\n", argv[2],
                 std::string(otb::metrics::kJsonSchemaId).c_str());
    return 1;
  }
  for (int i = 3; i < argc; ++i) {
    check_domain(*snap, argv[i], /*want_phase_timing=*/false);
  }
  for (const auto& [name, s] : snap->domains) check_histograms(name, s);
  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) failed; dump:\n%s\n", g_failures,
                 snap->to_table().c_str());
    return 1;
  }
  std::printf("metrics_check OK: %zu domains\n%s", snap->domains.size(),
              snap->to_table().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--validate") {
    return validate_dump(argc, argv);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: metrics_check <path-to-micro_ops>\n"
                 "       metrics_check --validate <dump.json> [domain...]\n");
    return 2;
  }
  const std::string json_path = "metrics_smoke.json";
  std::remove(json_path.c_str());

  // Keep the run short: one repetition of the transactional benchmarks is
  // enough to populate every domain the checker asserts on.
  const std::string cmd =
      std::string(argv[1]) +
      " --benchmark_filter='BM_StmReadWrite|BM_OtbListSetTx|BM_OtbSkipListSetTx'"
      " --benchmark_min_time=0.01 --metrics-json=" +
      json_path + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "FAIL: micro_ops exited with %d\n", rc);
    return 1;
  }

  std::ifstream in(json_path);
  if (!in) {
    std::fprintf(stderr, "FAIL: %s was not written\n", json_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();

  const auto snap = otb::metrics::from_json(body);
  if (!snap.has_value()) {
    std::fprintf(stderr, "FAIL: dump does not parse as %s\n",
                 std::string(otb::metrics::kJsonSchemaId).c_str());
    return 1;
  }

  // BM_StmReadWrite runs these five with collect_timing on; NOrec and TL2
  // are the two the acceptance bar names, so their histograms must be
  // populated (TML/RingSW/InvalSTM time validation only on some paths, so
  // only counters are required of them).
  check_domain(*snap, "stm.NOrec", /*want_phase_timing=*/true);
  check_domain(*snap, "stm.TL2", /*want_phase_timing=*/true);
  check_domain(*snap, "stm.TML", /*want_phase_timing=*/false);
  check_domain(*snap, "stm.RingSW", /*want_phase_timing=*/false);
  check_domain(*snap, "stm.InvalSTM", /*want_phase_timing=*/false);
  // The OTB linked-list/skip-list set benches drive the standalone runtime
  // with set_collect_timing(true).
  check_domain(*snap, "otb.tx", /*want_phase_timing=*/true);

  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) failed; dump:\n%s\n", g_failures,
                 snap->to_table().c_str());
    return 1;
  }
  std::printf("metrics_smoke OK: %zu domains\n%s", snap->domains.size(),
              snap->to_table().c_str());
  return 0;
}
