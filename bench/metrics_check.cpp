// metrics_smoke checker: runs micro_ops (path in argv[1]) with
// --metrics-json and validates the dump against the strict otb.metrics/8
// parser plus the acceptance invariants — every BM_StmReadWrite algorithm
// and the standalone OTB runtime must report attempts and commits, the
// timed domains must carry attempt-phase histograms, and every histogram's
// bucket sum must equal its sample count.  Any algorithm that stops
// reporting through otb::metrics fails this test.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/json.h"

namespace {

int g_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  g_failures += 1;
}

void check_histograms(const std::string& domain,
                      const otb::metrics::SinkSnapshot& s) {
  using otb::metrics::Phase;
  for (std::size_t i = 0; i < otb::metrics::kPhaseCount; ++i) {
    const auto& p = s.phases[i];
    std::uint64_t sum = 0;
    for (const auto b : p.log2_buckets) sum += b;
    if (sum != p.count) {
      fail(domain + "." + std::string(to_string(static_cast<Phase>(i))) +
           ": bucket sum " + std::to_string(sum) + " != count " +
           std::to_string(p.count));
    }
  }
  std::uint64_t tsum = 0;
  for (const auto b : s.traversals.log2_buckets) tsum += b;
  if (tsum != s.traversals.count) {
    fail(domain + ".traversals: bucket sum " + std::to_string(tsum) +
         " != count " + std::to_string(s.traversals.count));
  }
  const auto check_series = [&](const char* label,
                                const otb::metrics::SeriesSnapshot& ss) {
    std::uint64_t sum = 0;
    for (const auto b : ss.log2_buckets) sum += b;
    if (sum != ss.count) {
      fail(domain + "." + label + ": bucket sum " + std::to_string(sum) +
           " != count " + std::to_string(ss.count));
    }
  };
  check_series("queue_depth", s.queue_depth);
  check_series("batch_size", s.batch_size);
  check_series("mv_chain_len", s.mv_chain_len);
  check_series("fused_set_size", s.fused_set_size);
}

/// A sink whose counters say it belongs to a service plane (shard).
bool is_service_domain(const otb::metrics::SinkSnapshot& s) {
  using otb::metrics::CounterId;
  return s.counter(CounterId::kSvcEnqueued) != 0 ||
         s.counter(CounterId::kSvcBatches) != 0 ||
         s.counter(CounterId::kSvcReadOnly) != 0;
}

/// The service-plane ledger identities, applied to one shard's sink or to
/// an aggregate sum across shards (the identities are linear, so the sum
/// must satisfy them whenever every addend does).
void check_service_ledger(const std::string& name,
                          const otb::metrics::SinkSnapshot& s) {
  using otb::metrics::CounterId;
  // A service that served only snapshot-route read-only scripts
  // legitimately enqueued and batched nothing.
  const bool read_only_only = s.counter(CounterId::kSvcEnqueued) == 0 &&
                              s.counter(CounterId::kSvcReadOnly) != 0;
  if (!read_only_only) {
    if (s.counter(CounterId::kSvcEnqueued) == 0) fail(name + ": svc_enqueued == 0");
    if (s.counter(CounterId::kSvcBatches) == 0) fail(name + ": svc_batches == 0");
  }
  if (s.counter(CounterId::kSvcEnqueued) !=
      s.batch_size.total + s.counter(CounterId::kSvcExpired)) {
    fail(name + ": enqueued " +
         std::to_string(s.counter(CounterId::kSvcEnqueued)) +
         " != batch_size total " + std::to_string(s.batch_size.total) +
         " + expired " + std::to_string(s.counter(CounterId::kSvcExpired)));
  }
  // Snapshot-route ledger: read-only scripts bypass the queue entirely,
  // and each one resolves as exactly one snapshot read or one version
  // miss (the fallback) — nothing is double-counted or dropped.
  if (s.counter(CounterId::kSvcReadOnly) !=
      s.counter(CounterId::kMvSnapshotReads) +
          s.counter(CounterId::kMvVersionMisses)) {
    fail(name + ": svc_read_only " +
         std::to_string(s.counter(CounterId::kSvcReadOnly)) +
         " != mv_snapshot_reads " +
         std::to_string(s.counter(CounterId::kMvSnapshotReads)) +
         " + mv_version_misses " +
         std::to_string(s.counter(CounterId::kMvVersionMisses)));
  }
  // Fusion ledger (src/service/fusion.h): every union records exactly one
  // merged-set-size sample, and every union adopted at least one request.
  // Requests whose ownership moved via fusion still land in the adopter's
  // batch_size totals, so the enqueued identity above already covers them.
  if (s.counter(CounterId::kFusionUnions) != s.fused_set_size.count) {
    fail(name + ": fusion_unions " +
         std::to_string(s.counter(CounterId::kFusionUnions)) +
         " != fused_set_size count " +
         std::to_string(s.fused_set_size.count));
  }
  if (s.counter(CounterId::kSvcFused) < s.counter(CounterId::kFusionUnions)) {
    fail(name + ": svc_fused " +
         std::to_string(s.counter(CounterId::kSvcFused)) +
         " < fusion_unions " +
         std::to_string(s.counter(CounterId::kFusionUnions)));
  }
  // Split-retry taxonomy: an actual split of a multi-request batch is one
  // kind of attempt-budget exhaustion, never more numerous than the
  // exhaustions themselves.
  if (s.counter(CounterId::kSvcSplitRetries) >
      s.counter(CounterId::kSvcBatchSplits)) {
    fail(name + ": svc_split_retries " +
         std::to_string(s.counter(CounterId::kSvcSplitRetries)) +
         " > svc_batch_splits " +
         std::to_string(s.counter(CounterId::kSvcBatchSplits)));
  }
}

/// A shard's own ledger domain: "otb.service" (single plane) or
/// "otb.service.s<i>" (sharded).  The adapter domains ("otb.service.net",
/// "otb.service.router") carry no svc_* ledger and stay out of the
/// aggregate.
bool is_shard_ledger_domain(const std::string& name) {
  if (name == "otb.service") return true;
  const std::string prefix = "otb.service.s";
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

void check_domain(const otb::metrics::Snapshot& snap, const std::string& name,
                  bool want_phase_timing) {
  using otb::metrics::CounterId;
  using otb::metrics::Phase;
  const otb::metrics::SinkSnapshot* s = snap.find(name);
  if (s == nullptr) {
    fail("domain missing from dump: " + name);
    return;
  }
  // Service-plane domains (otb.service*) don't run transactions themselves —
  // their tx work lands in otb.tx — so they get service invariants instead
  // of the attempts/commits ones, chief among them the no-lost-completions
  // identity: every admitted request was either executed in a committed
  // batch or expired (rejected requests are never enqueued).
  // Adapter domains carry only their own counters (net_*, svc_cross_shard):
  // no transactions, no svc_* ledger.  The net domain must at least have
  // accepted a connection to count as live; the router legitimately stays
  // all-zero when no script ever crossed a shard boundary.
  if (name == "otb.service.net") {
    if (s->counter(CounterId::kNetAccepts) == 0) {
      fail(name + ": net_accepts == 0");
    }
    check_histograms(name, *s);
    return;
  }
  if (name == "otb.service.router") {
    check_histograms(name, *s);
    return;
  }
  const bool service_domain = is_service_domain(*s);
  if (service_domain) {
    check_service_ledger(name, *s);
  } else {
    if (s->counter(CounterId::kAttempts) == 0) fail(name + ": attempts == 0");
    if (s->counter(CounterId::kCommits) == 0) fail(name + ": commits == 0");
    if (s->counter(CounterId::kAttempts) <
        s->counter(CounterId::kCommits) + s->aborts_total()) {
      fail(name + ": attempts < commits + aborts");
    }
  }
  if (want_phase_timing && !service_domain &&
      s->phase(Phase::kAttempt).count == 0) {
    fail(name + ": attempt-phase histogram is empty");
  }
  check_histograms(name, *s);
}

/// `metrics_check --validate <dump.json> [domain...]`: validate an existing
/// --metrics-json dump instead of spawning micro_ops.  Used by the CI
/// bench-smoke job on the figure harnesses' output.  Named domains must be
/// present and self-consistent; every domain in the dump gets the histogram
/// bucket-sum check regardless.
int validate_dump(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: metrics_check --validate <dump.json> [domain...]\n");
    return 2;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto snap = otb::metrics::from_json(buf.str());
  if (!snap.has_value()) {
    std::fprintf(stderr, "FAIL: %s does not parse as %s\n", argv[2],
                 std::string(otb::metrics::kJsonSchemaId).c_str());
    return 1;
  }
  for (int i = 3; i < argc; ++i) {
    check_domain(*snap, argv[i], /*want_phase_timing=*/false);
  }
  for (const auto& [name, s] : snap->domains) check_histograms(name, s);
  // Sharded runs: sum the per-shard ledger domains and hold the aggregate
  // to the same identities — a cross-shard accounting leak shows up here
  // even when every individual shard balances.
  otb::metrics::SinkSnapshot agg;
  int shard_domains = 0;
  for (const auto& [name, s] : snap->domains) {
    if (is_shard_ledger_domain(name)) {
      agg += s;
      ++shard_domains;
    }
  }
  if (shard_domains >= 2 && is_service_domain(agg)) {
    check_service_ledger("otb.service<aggregate of " +
                             std::to_string(shard_domains) + ">",
                         agg);
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) failed; dump:\n%s\n", g_failures,
                 snap->to_table().c_str());
    return 1;
  }
  std::printf("metrics_check OK: %zu domains\n%s", snap->domains.size(),
              snap->to_table().c_str());
  return 0;
}

// ---- perf-regression compare (`metrics_check --compare`) --------------------

/// One bench-baseline document: the `otb.bench_baseline/1` wrapper
/// run_baselines.sh writes, holding one otb.metrics snapshot per run.
struct BaselineDoc {
  std::uint64_t bench_ms = 0;
  std::string threads;
  std::vector<std::pair<std::string, otb::metrics::Snapshot>> runs;
};

bool parse_baseline(const std::string& text, BaselineDoc& out) {
  otb::metrics::detail::Parser p(text);
  if (!p.consume('{')) return false;
  bool got_schema = false, got_runs = false;
  do {
    std::string key;
    if (!p.parse_string(key) || !p.consume(':')) return false;
    if (key == "schema") {
      std::string id;
      if (!p.parse_string(id) || id != "otb.bench_baseline/1") return false;
      got_schema = true;
    } else if (key == "generated_by") {
      std::string ignored;
      if (!p.parse_string(ignored)) return false;
    } else if (key == "bench_ms") {
      if (!p.parse_u64(out.bench_ms)) return false;
    } else if (key == "threads") {
      if (!p.parse_string(out.threads)) return false;
    } else if (key == "runs" && !got_runs) {
      got_runs = true;
      if (!p.consume('{')) return false;
      if (!p.peek_is('}')) {
        do {
          std::string name;
          if (!p.parse_string(name) || !p.consume(':')) return false;
          otb::metrics::Snapshot snap;
          if (!otb::metrics::detail::parse_snapshot(p, snap)) return false;
          out.runs.emplace_back(std::move(name), std::move(snap));
        } while (p.consume(','));
      }
      if (!p.consume('}')) return false;
    } else {
      return false;
    }
  } while (p.consume(','));
  if (!p.consume('}') || !p.at_end()) return false;
  return got_schema && got_runs && out.bench_ms != 0;
}

bool read_baseline(const char* path, BaselineDoc& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_baseline(buf.str(), out)) {
    std::fprintf(stderr, "FAIL: %s does not parse as otb.bench_baseline/1\n",
                 path);
    return false;
  }
  return true;
}

/// `metrics_check --compare <old.json> <new.json> [tolerance_pct]`:
/// record-and-compare perf smoke.  Each (run, domain) pair present in both
/// baselines yields up to two throughput series — committed transactions,
/// and inline read-only completions (`svc_read_only`, the multi-version
/// snapshot route) — normalised by
/// that file's measured duration — and any series dropping by more than
/// tolerance_pct (default 30, chosen noise-tolerant for shared CI runners)
/// fails the check.  Low-count series (< 50 commits in the old baseline)
/// and the google-benchmark-paced micro_ops run are skipped: they measure
/// self-timed iterations, not a fixed-duration rate.  A thread-count
/// mismatch means the baselines are not comparable; warn and exit 0 rather
/// than fail on configuration drift.
int compare_baselines(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(
        stderr,
        "usage: metrics_check --compare <old.json> <new.json> [tolerance_pct]\n");
    return 2;
  }
  const double tol_pct = argc >= 5 ? std::atof(argv[4]) : 30.0;
  BaselineDoc oldb, newb;
  if (!read_baseline(argv[2], oldb) || !read_baseline(argv[3], newb)) return 1;
  if (oldb.threads != newb.threads) {
    std::fprintf(stderr,
                 "WARN: thread configs differ ('%s' vs '%s'); baselines are "
                 "not comparable, skipping\n",
                 oldb.threads.c_str(), newb.threads.c_str());
    return 0;
  }

  constexpr std::uint64_t kMinCommits = 50;
  const double floor_ratio = 1.0 - tol_pct / 100.0;
  int compared = 0;
  for (const auto& [run, old_snap] : oldb.runs) {
    if (run == "micro_ops") continue;  // self-timed, not a fixed-duration rate
    const otb::metrics::Snapshot* new_snap = nullptr;
    for (const auto& [name, snap] : newb.runs) {
      if (name == run) new_snap = &snap;
    }
    if (new_snap == nullptr) {
      fail("run missing from new baseline: " + run);
      continue;
    }
    for (const auto& [domain, old_s] : old_snap.domains) {
      const otb::metrics::SinkSnapshot* new_s = new_snap->find(domain);
      // Two rates per (run, domain), each gated only when the old series
      // is hot enough: committed transactions (the batched/validated
      // path), and inline read-only completions (the multi-version
      // snapshot route — those never commit a transaction, so kCommits
      // alone would leave the read-mostly rows ungated).
      const struct {
        otb::metrics::CounterId id;
        const char* label;
      } series[] = {
          {otb::metrics::CounterId::kCommits, "commits"},
          {otb::metrics::CounterId::kSvcReadOnly, "ro-reads"},
      };
      for (const auto& sr : series) {
        const std::uint64_t old_count = old_s.counter(sr.id);
        if (old_count < kMinCommits) continue;  // too noisy to gate on
        if (new_s == nullptr) {
          fail(run + "/" + domain + ": domain missing from new baseline");
          break;
        }
        const double old_rate = double(old_count) / double(oldb.bench_ms);
        const double new_rate =
            double(new_s->counter(sr.id)) / double(newb.bench_ms);
        const double ratio = new_rate / old_rate;
        ++compared;
        std::printf("  %-28s %-12s %10.0f -> %10.0f %s/ms-series  (%.2fx)\n",
                    run.c_str(), domain.c_str(), old_rate, new_rate, sr.label,
                    ratio);
        if (ratio < floor_ratio) {
          fail(run + "/" + domain + "/" + sr.label +
               ": throughput regressed to " + std::to_string(ratio) +
               "x of baseline (floor " + std::to_string(floor_ratio) + "x)");
        }
      }
    }
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "%d series regressed beyond %.0f%%\n", g_failures,
                 tol_pct);
    return 1;
  }
  std::printf("compare OK: %d series within %.0f%% of baseline\n", compared,
              tol_pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--validate") {
    return validate_dump(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "--compare") {
    return compare_baselines(argc, argv);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: metrics_check <path-to-micro_ops>\n"
                 "       metrics_check --validate <dump.json> [domain...]\n"
                 "       metrics_check --compare <old.json> <new.json> "
                 "[tolerance_pct]\n");
    return 2;
  }
  const std::string json_path = "metrics_smoke.json";
  std::remove(json_path.c_str());

  // Keep the run short: one repetition of the transactional benchmarks is
  // enough to populate every domain the checker asserts on.
  const std::string cmd =
      std::string(argv[1]) +
      " --benchmark_filter='BM_StmReadWrite|BM_OtbListSetTx|BM_OtbSkipListSetTx'"
      " --benchmark_min_time=0.01 --metrics-json=" +
      json_path + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "FAIL: micro_ops exited with %d\n", rc);
    return 1;
  }

  std::ifstream in(json_path);
  if (!in) {
    std::fprintf(stderr, "FAIL: %s was not written\n", json_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();

  const auto snap = otb::metrics::from_json(body);
  if (!snap.has_value()) {
    std::fprintf(stderr, "FAIL: dump does not parse as %s\n",
                 std::string(otb::metrics::kJsonSchemaId).c_str());
    return 1;
  }

  // BM_StmReadWrite runs these five with collect_timing on; NOrec and TL2
  // are the two the acceptance bar names, so their histograms must be
  // populated (TML/RingSW/InvalSTM time validation only on some paths, so
  // only counters are required of them).
  check_domain(*snap, "stm.NOrec", /*want_phase_timing=*/true);
  check_domain(*snap, "stm.TL2", /*want_phase_timing=*/true);
  check_domain(*snap, "stm.TML", /*want_phase_timing=*/false);
  check_domain(*snap, "stm.RingSW", /*want_phase_timing=*/false);
  check_domain(*snap, "stm.InvalSTM", /*want_phase_timing=*/false);
  // The OTB linked-list/skip-list set benches drive the standalone runtime
  // with set_collect_timing(true).
  check_domain(*snap, "otb.tx", /*want_phase_timing=*/true);

  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) failed; dump:\n%s\n", g_failures,
                 snap->to_table().c_str());
    return 1;
  }
  std::printf("metrics_smoke OK: %zu domains\n%s", snap->domains.size(),
              snap->to_table().c_str());
  return 0;
}
