// Figure 6.8: mini-STAMP execution time — RInval vs NOrec vs InvalSTM,
// one table per application.
#include "benchlib/table.h"
#include "ministamp/ministamp.h"
#include "stm_bench_common.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);

  for (const auto& app : otb::ministamp::make_all_apps()) {
    otb::bench::SeriesTable table(
        std::string("Fig 6.8 mini-STAMP ") + app->name() + " execution time",
        "threads", cols);
    for (const auto kind :
         {otb::stm::AlgoKind::kInvalSTM, otb::stm::AlgoKind::kNOrec,
          otb::stm::AlgoKind::kRInval}) {
      std::vector<double> row;
      for (const unsigned t : threads) {
        otb::stm::Config cfg;
        cfg.max_threads = 32;
        otb::stm::Runtime rt(kind, cfg);
        row.push_back(app->run(rt, t).exec_ms);
      }
      table.add_row(std::string(otb::stm::to_string(kind)), row);
    }
    table.print_fractional("ms");
  }
  return 0;
}
