// Figure 5.7: hash map with 10,000 elements and 256 buckets, 100 no-ops
// between transactions, 50% and 80% reads — RTC vs RingSW/NOrec/TL2.
#include "stm_bench_common.h"
#include "stmds/stm_hashmap.h"

using otb::stmds::StmHashMap;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);
  const std::int64_t range = 20000;  // ~10K resident

  const auto make_map = [&] {
    auto map = std::make_unique<StmHashMap>(256);
    for (std::int64_t k = 0; k < range; k += 2) map->put_seq(k, k);
    return map;
  };
  const otb::bench::StructOp<StmHashMap> op =
      [](otb::stm::Tx& tx, StmHashMap& map, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          std::int64_t out;
          map.get(tx, key, &out);
        } else if (rng.chance_pct(50)) {
          map.put(tx, key, key * 3);
        } else {
          map.erase(tx, key);
        }
      };

  for (const unsigned read_pct : {50u, 80u}) {
    otb::bench::SeriesTable table(
        "Fig 5.7 hash map 10K/256 buckets, " + std::to_string(read_pct) +
            "% reads, 100 no-ops between txs",
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = read_pct;
    opt.key_range = range;
    opt.noops_between = 100;
    for (const auto kind :
         {otb::stm::AlgoKind::kRingSW, otb::stm::AlgoKind::kNOrec,
          otb::stm::AlgoKind::kTL2, otb::stm::AlgoKind::kRTC}) {
      table.add_row(std::string(otb::stm::to_string(kind)),
                    otb::bench::throughputs(otb::bench::run_stm_series<StmHashMap>(
                        kind, threads, opt, make_map, op)));
    }
    table.print("tx/s");
  }
  return 0;
}
