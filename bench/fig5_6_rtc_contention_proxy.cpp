// Figure 5.6: coherence traffic per transaction, NOrec vs RTC, on a large
// (64K) and a small (64-node) red-black tree.
//
// Substitution (DESIGN.md): the paper measures hardware cache misses; this
// container exposes no PMU, so we report the *cause* the paper attributes
// them to — shared-lock CAS failures plus spin iterations on the global
// timestamp, per committed transaction.  Expected shape: NOrec's count grows
// with threads (strongly on the small tree), RTC stays near zero because
// clients spin only on their own cache-aligned request entry.
#include "stm_bench_common.h"
#include "stmds/stm_rbtree.h"

using otb::stmds::StmRbTree;

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const auto threads = otb::bench::thread_counts();
  const auto cols = otb::bench::thread_columns(threads);

  const otb::bench::StructOp<StmRbTree> op =
      [](otb::stm::Tx& tx, StmRbTree& tree, std::int64_t key, bool read,
         otb::Xorshift& rng) {
        if (read) {
          tree.contains(tx, key);
        } else if (rng.chance_pct(50)) {
          tree.add(tx, key);
        } else {
          tree.remove(tx, key);
        }
      };

  struct Case {
    const char* name;
    std::int64_t range;
  };
  for (const Case c : {Case{"large tree (64K)", 131072},
                       Case{"small tree (64)", 128}}) {
    otb::bench::SeriesTable table(
        std::string("Fig 5.6 shared-lock CAS+spins per tx — ") + c.name,
        "threads", cols);
    otb::bench::StmSeriesOptions opt;
    opt.read_pct = 50;
    opt.key_range = c.range;
    const auto make_tree = [&] {
      auto tree = std::make_unique<StmRbTree>();
      for (std::int64_t k = 0; k < c.range; k += 2) tree->add_seq(k);
      return tree;
    };
    for (const auto kind : {otb::stm::AlgoKind::kNOrec, otb::stm::AlgoKind::kRTC}) {
      const auto results = otb::bench::run_stm_series<StmRbTree>(
          kind, threads, opt, make_tree, op);
      std::vector<double> per_tx, aborts_per_tx;
      for (const auto& r : results) {
        const double commits = double(r.stats.commits) + 1e-9;
        per_tx.push_back(double(r.stats.lock_cas_failures +
                                r.stats.lock_acquisitions + r.stats.lock_spins) /
                         commits);
        aborts_per_tx.push_back(double(r.total_aborts) / commits);
      }
      table.add_row(std::string(otb::stm::to_string(kind)) + " shared-lock",
                    per_tx);
      table.add_row(std::string(otb::stm::to_string(kind)) + " aborts",
                    aborts_per_tx);
    }
    table.print_fractional("events/tx");
  }
  return 0;
}
