// Figure 4.2: linked-list set, 512 elements — pure-STM (NOrec, TL2) vs
// OTB-integrated (OTB-NOrec, OTB-TL2).  The paper reports up to an order of
// magnitude in favour of OTB: the pure-STM list logs every traversed hop.
#include "integration_bench_common.h"
#include "otb/otb_list_set.h"
#include "stmds/stm_list.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_integration_figure<otb::stmds::StmList, otb::tx::OtbListSet>(
      "Fig 4.2 linked-list integration", 1024);
  return 0;
}
