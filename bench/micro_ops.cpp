// google-benchmark micro-op latency suite: single-threaded costs of the
// substrate operations — useful for spotting regressions in the building
// blocks the figure benches are made of.
#include <benchmark/benchmark.h>

#include "benchlib/driver.h"
#include "cds/lazy_list_set.h"
#include "cds/lazy_skiplist_set.h"
#include "common/bloom_filter.h"
#include "common/rng.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"
#include "stm/stm.h"
#include "stmds/stm_rbtree.h"

namespace {

void BM_BloomAddIntersect(benchmark::State& state) {
  otb::TxFilter a, b;
  int cells[64];
  for (int i = 0; i < 64; ++i) a.add(&cells[i]);
  for (auto _ : state) {
    b.add(&cells[0]);
    benchmark::DoNotOptimize(a.intersects(b));
  }
}
BENCHMARK(BM_BloomAddIntersect);

void BM_LazyListContains(benchmark::State& state) {
  otb::cds::LazyListSet set;
  for (std::int64_t k = 0; k < state.range(0); ++k) set.add(k);
  otb::Xorshift rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(std::int64_t(rng.next_bounded(state.range(0)))));
  }
}
BENCHMARK(BM_LazyListContains)->Arg(128)->Arg(512);

void BM_LazySkipListContains(benchmark::State& state) {
  otb::cds::LazySkipListSet set;
  for (std::int64_t k = 0; k < state.range(0); ++k) set.add(k);
  otb::Xorshift rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(std::int64_t(rng.next_bounded(state.range(0)))));
  }
}
BENCHMARK(BM_LazySkipListContains)->Arg(512)->Arg(65536);

void BM_OtbListSetTxAddRemove(benchmark::State& state) {
  otb::tx::OtbListSet set;
  for (std::int64_t k = 0; k < 512; k += 2) set.add_seq(k);
  otb::Xorshift rng{3};
  for (auto _ : state) {
    const auto key = std::int64_t(rng.next_bounded(512));
    otb::tx::atomically([&](otb::tx::Transaction& tx) {
      if (!set.add(tx, key)) set.remove(tx, key);
    });
  }
}
BENCHMARK(BM_OtbListSetTxAddRemove);

void BM_OtbSkipListSetTxContains(benchmark::State& state) {
  otb::tx::OtbSkipListSet set;
  for (std::int64_t k = 0; k < 4096; k += 2) set.add_seq(k);
  otb::Xorshift rng{5};
  for (auto _ : state) {
    const auto key = std::int64_t(rng.next_bounded(4096));
    otb::tx::atomically(
        [&](otb::tx::Transaction& tx) { set.contains(tx, key); });
  }
}
BENCHMARK(BM_OtbSkipListSetTxContains);

// Validation-scaling sweep: without the commit-sequence gate, a transaction
// executing k operations post-validates O(k^2) read-set entries; with the
// gate only the first validation per quiescent window scans.  Reports the
// fast-path hit rate alongside throughput (reads the registry sink, so the
// numbers also land in the --metrics-json dump).
void validation_sweep(benchmark::State& state, unsigned write_pct) {
  const std::int64_t ops_per_tx = state.range(0);
  otb::tx::OtbListSet set;
  for (std::int64_t k = 0; k < 512; k += 2) set.add_seq(k);
  otb::Xorshift rng{11};
  const auto counter = [](const otb::metrics::SinkSnapshot& s,
                          otb::metrics::CounterId id) {
    return s.counters[static_cast<std::size_t>(id)];
  };
  const otb::metrics::SinkSnapshot before = otb::tx::metrics_sink().snapshot();
  for (auto _ : state) {
    otb::tx::atomically([&](otb::tx::Transaction& tx) {
      for (std::int64_t i = 0; i < ops_per_tx; ++i) {
        const auto key = std::int64_t(rng.next_bounded(512));
        if (write_pct != 0 && rng.chance_pct(write_pct)) {
          if (!set.add(tx, key)) set.remove(tx, key);
        } else {
          set.contains(tx, key);
        }
      }
    });
  }
  const otb::metrics::SinkSnapshot after = otb::tx::metrics_sink().snapshot();
  const double fast =
      double(counter(after, otb::metrics::CounterId::kValidationsFast) -
             counter(before, otb::metrics::CounterId::kValidationsFast));
  const double full =
      double(counter(after, otb::metrics::CounterId::kValidationsFull) -
             counter(before, otb::metrics::CounterId::kValidationsFull));
  state.counters["fast_hit_pct"] =
      fast + full > 0 ? 100.0 * fast / (fast + full) : 0.0;
  state.SetItemsProcessed(state.iterations() * ops_per_tx);
}

void BM_OtbListSetValidationSweepReadOnly(benchmark::State& state) {
  validation_sweep(state, /*write_pct=*/0);
}
BENCHMARK(BM_OtbListSetValidationSweepReadOnly)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_OtbListSetValidationSweepMixed20(benchmark::State& state) {
  validation_sweep(state, /*write_pct=*/20);
}
BENCHMARK(BM_OtbListSetValidationSweepMixed20)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Multi-version snapshot-read sweep: the same k-contains read-only
// transaction on the validated path (atomically: read-set build + per-op
// validation + commit) and on the snapshot path (snapshot_read:
// version-chain resolution at a stamp, no read-set, no validation, no
// commit).  The per-read delta is the MV layer's raw win, independent of
// the service plane's batching (DESIGN.md "Multi-version snapshot reads").
// `miss` stays 0 with OTB_MV_VERSIONS > 0 and nothing mutating.
void mv_read_sweep(benchmark::State& state, bool snapshot) {
  constexpr std::int64_t kRange = 4096;
  const std::int64_t ops_per_tx = state.range(0);
  otb::tx::OtbSkipListSet set;
  for (std::int64_t k = 0; k < kRange; k += 2) set.add_seq(k);
  otb::Xorshift rng{13};
  std::uint64_t misses = 0;
  for (auto _ : state) {
    if (snapshot) {
      const bool ok = otb::tx::snapshot_read([&](otb::tx::SnapshotTx& snap) {
        for (std::int64_t i = 0; i < ops_per_tx; ++i) {
          const auto key = std::int64_t(rng.next_bounded(kRange));
          benchmark::DoNotOptimize(set.contains_at(snap, key));
        }
      });
      if (!ok) ++misses;
    } else {
      otb::tx::atomically([&](otb::tx::Transaction& tx) {
        for (std::int64_t i = 0; i < ops_per_tx; ++i) {
          const auto key = std::int64_t(rng.next_bounded(kRange));
          set.contains(tx, key);
        }
      });
    }
  }
  state.counters["miss"] = double(misses);
  state.SetItemsProcessed(state.iterations() * ops_per_tx);
}

void BM_OtbSkipListSetMvReadValidated(benchmark::State& state) {
  mv_read_sweep(state, /*snapshot=*/false);
}
BENCHMARK(BM_OtbSkipListSetMvReadValidated)->Arg(1)->Arg(8)->Arg(64);

void BM_OtbSkipListSetMvReadSnapshot(benchmark::State& state) {
  mv_read_sweep(state, /*snapshot=*/true);
}
BENCHMARK(BM_OtbSkipListSetMvReadSnapshot)->Arg(1)->Arg(8)->Arg(64);

// Traversal-hint locality sweep: each transaction issues ops_per_tx
// operations (90% contains / 10% add-remove toggle) with keys drawn
// uniformly over the whole range, clustered in one random 64-key window per
// transaction, or Zipf(0.99)-skewed.  Each shape runs hints-on and
// hints-off (set_traversal_hints) so the pair A/Bs the layer directly;
// hit-rate and traversal-length counters come from the registry sink, so
// they also land in the --metrics-json dump.
enum class KeyMode { kUniform, kClustered, kZipf };

void hint_locality_sweep(benchmark::State& state, KeyMode mode, bool hints_on) {
  constexpr std::int64_t kRange = 8192;
  constexpr std::int64_t kCluster = 64;
  const std::int64_t ops_per_tx = state.range(0);
  const bool saved = otb::tx::traversal_hints_enabled();
  otb::tx::set_traversal_hints(hints_on);
  otb::tx::OtbListSet set;
  for (std::int64_t k = 0; k < kRange; k += 2) set.add_seq(k);
  otb::Xorshift rng{17};
  const otb::Zipf zipf(kRange);
  const auto counter = [](const otb::metrics::SinkSnapshot& s,
                          otb::metrics::CounterId id) {
    return s.counters[static_cast<std::size_t>(id)];
  };
  const otb::metrics::SinkSnapshot before = otb::tx::metrics_sink().snapshot();
  for (auto _ : state) {
    const std::int64_t base =
        mode == KeyMode::kClustered
            ? kCluster * std::int64_t(rng.next_bounded(kRange / kCluster))
            : 0;
    otb::tx::atomically([&](otb::tx::Transaction& tx) {
      for (std::int64_t i = 0; i < ops_per_tx; ++i) {
        std::int64_t key = 0;
        switch (mode) {
          case KeyMode::kUniform:
            key = std::int64_t(rng.next_bounded(kRange));
            break;
          case KeyMode::kClustered:
            key = base + std::int64_t(rng.next_bounded(kCluster));
            break;
          case KeyMode::kZipf:
            key = std::int64_t(zipf.sample(rng));
            break;
        }
        if (rng.chance_pct(10)) {
          if (!set.add(tx, key)) set.remove(tx, key);
        } else {
          set.contains(tx, key);
        }
      }
    });
  }
  const otb::metrics::SinkSnapshot after = otb::tx::metrics_sink().snapshot();
  const double local =
      double(counter(after, otb::metrics::CounterId::kHintHitLocal) -
             counter(before, otb::metrics::CounterId::kHintHitLocal));
  const double cached =
      double(counter(after, otb::metrics::CounterId::kHintHitCached) -
             counter(before, otb::metrics::CounterId::kHintHitCached));
  const double miss = double(counter(after, otb::metrics::CounterId::kHintMiss) -
                             counter(before, otb::metrics::CounterId::kHintMiss));
  const double traversals =
      double(after.traversals.count - before.traversals.count);
  const double steps =
      double(after.traversals.total_steps - before.traversals.total_steps);
  state.counters["hint_hits"] = local + cached;
  state.counters["hint_misses"] = miss;
  state.counters["hint_hit_pct"] =
      local + cached + miss > 0 ? 100.0 * (local + cached) / (local + cached + miss)
                                : 0.0;
  state.counters["avg_traversal_steps"] = traversals > 0 ? steps / traversals : 0.0;
  state.SetItemsProcessed(state.iterations() * ops_per_tx);
  otb::tx::set_traversal_hints(saved);
}

void BM_OtbListSetHintSweepUniformOn(benchmark::State& state) {
  hint_locality_sweep(state, KeyMode::kUniform, /*hints_on=*/true);
}
BENCHMARK(BM_OtbListSetHintSweepUniformOn)->Arg(1)->Arg(8)->Arg(16);

void BM_OtbListSetHintSweepUniformOff(benchmark::State& state) {
  hint_locality_sweep(state, KeyMode::kUniform, /*hints_on=*/false);
}
BENCHMARK(BM_OtbListSetHintSweepUniformOff)->Arg(1)->Arg(8)->Arg(16);

void BM_OtbListSetHintSweepClusteredOn(benchmark::State& state) {
  hint_locality_sweep(state, KeyMode::kClustered, /*hints_on=*/true);
}
BENCHMARK(BM_OtbListSetHintSweepClusteredOn)->Arg(1)->Arg(8)->Arg(16);

void BM_OtbListSetHintSweepClusteredOff(benchmark::State& state) {
  hint_locality_sweep(state, KeyMode::kClustered, /*hints_on=*/false);
}
BENCHMARK(BM_OtbListSetHintSweepClusteredOff)->Arg(1)->Arg(8)->Arg(16);

void BM_OtbListSetHintSweepZipfOn(benchmark::State& state) {
  hint_locality_sweep(state, KeyMode::kZipf, /*hints_on=*/true);
}
BENCHMARK(BM_OtbListSetHintSweepZipfOn)->Arg(1)->Arg(8)->Arg(16);

void BM_OtbListSetHintSweepZipfOff(benchmark::State& state) {
  hint_locality_sweep(state, KeyMode::kZipf, /*hints_on=*/false);
}
BENCHMARK(BM_OtbListSetHintSweepZipfOff)->Arg(1)->Arg(8)->Arg(16);

// Same clustered shape on the skip list: only bottom-level-sufficient
// outcomes can use a hint, so the win is smaller but should stay positive.
void skiplist_hint_sweep(benchmark::State& state, bool hints_on) {
  constexpr std::int64_t kRange = 8192;
  constexpr std::int64_t kCluster = 64;
  const std::int64_t ops_per_tx = state.range(0);
  const bool saved = otb::tx::traversal_hints_enabled();
  otb::tx::set_traversal_hints(hints_on);
  otb::tx::OtbSkipListSet set;
  for (std::int64_t k = 0; k < kRange; k += 2) set.add_seq(k);
  otb::Xorshift rng{23};
  for (auto _ : state) {
    const std::int64_t base =
        kCluster * std::int64_t(rng.next_bounded(kRange / kCluster));
    otb::tx::atomically([&](otb::tx::Transaction& tx) {
      for (std::int64_t i = 0; i < ops_per_tx; ++i) {
        const std::int64_t key = base + std::int64_t(rng.next_bounded(kCluster));
        if (rng.chance_pct(10)) {
          if (!set.add(tx, key)) set.remove(tx, key);
        } else {
          set.contains(tx, key);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * ops_per_tx);
  otb::tx::set_traversal_hints(saved);
}

void BM_OtbSkipListSetHintSweepClusteredOn(benchmark::State& state) {
  skiplist_hint_sweep(state, /*hints_on=*/true);
}
BENCHMARK(BM_OtbSkipListSetHintSweepClusteredOn)->Arg(1)->Arg(8)->Arg(16);

void BM_OtbSkipListSetHintSweepClusteredOff(benchmark::State& state) {
  skiplist_hint_sweep(state, /*hints_on=*/false);
}
BENCHMARK(BM_OtbSkipListSetHintSweepClusteredOff)->Arg(1)->Arg(8)->Arg(16);

void BM_StmReadWrite(benchmark::State& state) {
  const auto kind = static_cast<otb::stm::AlgoKind>(state.range(0));
  otb::stm::Config cfg;
  cfg.collect_timing = true;  // --metrics-json consumers want phase histograms
  otb::stm::Runtime rt(kind, cfg);
  otb::stm::TxThread th(rt);
  otb::stm::TVar<std::int64_t> x{0};
  for (auto _ : state) {
    rt.atomically(th, [&](otb::stm::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
}
BENCHMARK(BM_StmReadWrite)
    ->Arg(int(otb::stm::AlgoKind::kNOrec))
    ->Arg(int(otb::stm::AlgoKind::kTML))
    ->Arg(int(otb::stm::AlgoKind::kTL2))
    ->Arg(int(otb::stm::AlgoKind::kRingSW))
    ->Arg(int(otb::stm::AlgoKind::kInvalSTM));

void BM_StmRbTreeTxContains(benchmark::State& state) {
  otb::stmds::StmRbTree tree;
  for (std::int64_t k = 0; k < 65536; k += 2) tree.add_seq(k);
  otb::stm::Runtime rt(otb::stm::AlgoKind::kNOrec);
  otb::stm::TxThread th(rt);
  otb::Xorshift rng{7};
  for (auto _ : state) {
    const auto key = std::int64_t(rng.next_bounded(65536));
    rt.atomically(th, [&](otb::stm::Tx& tx) { tree.contains(tx, key); });
  }
}
BENCHMARK(BM_StmRbTreeTxContains);

}  // namespace

// Custom main: peel off --metrics-json before google-benchmark sees the
// flag, and opt the standalone OTB runtime into phase timing so its
// histograms show up in the dump.
int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::tx::set_collect_timing(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
