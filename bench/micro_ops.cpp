// google-benchmark micro-op latency suite: single-threaded costs of the
// substrate operations — useful for spotting regressions in the building
// blocks the figure benches are made of.
#include <benchmark/benchmark.h>

#include "benchlib/driver.h"
#include "cds/lazy_list_set.h"
#include "cds/lazy_skiplist_set.h"
#include "common/bloom_filter.h"
#include "common/rng.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"
#include "stm/stm.h"
#include "stmds/stm_rbtree.h"

namespace {

void BM_BloomAddIntersect(benchmark::State& state) {
  otb::TxFilter a, b;
  int cells[64];
  for (int i = 0; i < 64; ++i) a.add(&cells[i]);
  for (auto _ : state) {
    b.add(&cells[0]);
    benchmark::DoNotOptimize(a.intersects(b));
  }
}
BENCHMARK(BM_BloomAddIntersect);

void BM_LazyListContains(benchmark::State& state) {
  otb::cds::LazyListSet set;
  for (std::int64_t k = 0; k < state.range(0); ++k) set.add(k);
  otb::Xorshift rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(std::int64_t(rng.next_bounded(state.range(0)))));
  }
}
BENCHMARK(BM_LazyListContains)->Arg(128)->Arg(512);

void BM_LazySkipListContains(benchmark::State& state) {
  otb::cds::LazySkipListSet set;
  for (std::int64_t k = 0; k < state.range(0); ++k) set.add(k);
  otb::Xorshift rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(std::int64_t(rng.next_bounded(state.range(0)))));
  }
}
BENCHMARK(BM_LazySkipListContains)->Arg(512)->Arg(65536);

void BM_OtbListSetTxAddRemove(benchmark::State& state) {
  otb::tx::OtbListSet set;
  for (std::int64_t k = 0; k < 512; k += 2) set.add_seq(k);
  otb::Xorshift rng{3};
  for (auto _ : state) {
    const auto key = std::int64_t(rng.next_bounded(512));
    otb::tx::atomically([&](otb::tx::Transaction& tx) {
      if (!set.add(tx, key)) set.remove(tx, key);
    });
  }
}
BENCHMARK(BM_OtbListSetTxAddRemove);

void BM_OtbSkipListSetTxContains(benchmark::State& state) {
  otb::tx::OtbSkipListSet set;
  for (std::int64_t k = 0; k < 4096; k += 2) set.add_seq(k);
  otb::Xorshift rng{5};
  for (auto _ : state) {
    const auto key = std::int64_t(rng.next_bounded(4096));
    otb::tx::atomically(
        [&](otb::tx::Transaction& tx) { set.contains(tx, key); });
  }
}
BENCHMARK(BM_OtbSkipListSetTxContains);

void BM_StmReadWrite(benchmark::State& state) {
  const auto kind = static_cast<otb::stm::AlgoKind>(state.range(0));
  otb::stm::Config cfg;
  cfg.collect_timing = true;  // --metrics-json consumers want phase histograms
  otb::stm::Runtime rt(kind, cfg);
  otb::stm::TxThread th(rt);
  otb::stm::TVar<std::int64_t> x{0};
  for (auto _ : state) {
    rt.atomically(th, [&](otb::stm::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
}
BENCHMARK(BM_StmReadWrite)
    ->Arg(int(otb::stm::AlgoKind::kNOrec))
    ->Arg(int(otb::stm::AlgoKind::kTML))
    ->Arg(int(otb::stm::AlgoKind::kTL2))
    ->Arg(int(otb::stm::AlgoKind::kRingSW))
    ->Arg(int(otb::stm::AlgoKind::kInvalSTM));

void BM_StmRbTreeTxContains(benchmark::State& state) {
  otb::stmds::StmRbTree tree;
  for (std::int64_t k = 0; k < 65536; k += 2) tree.add_seq(k);
  otb::stm::Runtime rt(otb::stm::AlgoKind::kNOrec);
  otb::stm::TxThread th(rt);
  otb::Xorshift rng{7};
  for (auto _ : state) {
    const auto key = std::int64_t(rng.next_bounded(65536));
    rt.atomically(th, [&](otb::stm::Tx& tx) { tree.contains(tx, key); });
  }
}
BENCHMARK(BM_StmRbTreeTxContains);

}  // namespace

// Custom main: peel off --metrics-json before google-benchmark sees the
// flag, and opt the standalone OTB runtime into phase timing so its
// histograms show up in the dump.
int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::tx::set_collect_timing(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
