// Load harness for the transactional service plane (src/service).
//
// Two driving disciplines:
//
//   closed-loop (--mode=closed): each client keeps a fixed window of
//     requests outstanding (submit until full, then wait the oldest), so
//     concurrency — not rate — is the controlled variable.  This is the
//     discipline that exposes batch amortisation: with a deep window the
//     workers always find full batches, and the committed-ops/sec ratio of
//     batch_max=16 over batch_max=1 is the subsystem's headline number
//     (EXPERIMENTS.md).
//
//   open-loop (--mode=open): a Poisson arrival process at --rate req/s
//     submits regardless of completions (the "offered load" discipline, no
//     coordinated omission).  Sweeping --rate past saturation shows the
//     admission-control story: committed throughput plateaus, p99 latency
//     of ADMITTED requests stays bounded by queue depth, and the excess is
//     reported as Overloaded (reject-at-admission) or Expired (deadline
//     lapsed in queue) — never silently dropped.
//
// Output: one summary line per run (CSV-ish, stable field order) plus an
// optional --metrics-json dump of every metrics domain (otb.service +
// otb.tx), which CI's service-smoke step validates with metrics_check.
//
// Flags (all optional):
//   --mode=closed|open        default closed
//   --workers=N               service worker threads        (default 4)
//   --clients=N               client threads                (default 2)
//   --window=N                closed-loop in-flight/client  (default 256)
//   --rate=R                  open-loop offered req/s       (default 20000)
//   --duration-ms=D           measured run length           (default 2000)
//   --batch-max=B             requests per transaction      (default 16)
//   --queue-cap=C             per-shard ring capacity       (default 4096)
//   --high-water=H            per-shard admission limit     (default C)
//   --deadline-ms=D           per-request deadline, 0=none  (default 0)
//   --key-range=K             map key universe              (default 256)
//   --seed=S                  arrival/keystream seed        (default 42)
//   --metrics-json=PATH       dump metrics registry on exit
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/driver.h"
#include "common/rng.h"
#include "otb/otb_list_map.h"
#include "service/service.h"

namespace {

using otb::now_ns;
using otb::service::Op;
using otb::service::Request;
using otb::service::ResponseFuture;
using otb::service::Service;
using otb::service::ServiceConfig;
using otb::service::SvcStatus;

struct Flags {
  std::string mode = "closed";
  unsigned workers = 4;
  unsigned clients = 2;
  unsigned window = 256;
  double rate = 20000;
  unsigned duration_ms = 2000;
  unsigned batch_max = 16;
  std::size_t queue_cap = 4096;
  std::size_t high_water = 0;
  unsigned deadline_ms = 0;
  std::int64_t key_range = 256;
  std::uint64_t seed = 42;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

Flags parse(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (parse_flag(argv[i], "--mode", v)) f.mode = v;
    else if (parse_flag(argv[i], "--workers", v)) f.workers = std::stoul(v);
    else if (parse_flag(argv[i], "--clients", v)) f.clients = std::stoul(v);
    else if (parse_flag(argv[i], "--window", v)) f.window = std::stoul(v);
    else if (parse_flag(argv[i], "--rate", v)) f.rate = std::stod(v);
    else if (parse_flag(argv[i], "--duration-ms", v)) f.duration_ms = std::stoul(v);
    else if (parse_flag(argv[i], "--batch-max", v)) f.batch_max = std::stoul(v);
    else if (parse_flag(argv[i], "--queue-cap", v)) f.queue_cap = std::stoul(v);
    else if (parse_flag(argv[i], "--high-water", v)) f.high_water = std::stoul(v);
    else if (parse_flag(argv[i], "--deadline-ms", v)) f.deadline_ms = std::stoul(v);
    else if (parse_flag(argv[i], "--key-range", v)) f.key_range = std::stol(v);
    else if (parse_flag(argv[i], "--seed", v)) f.seed = std::stoull(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return f;
}

/// 60/30/10 get/put/erase over [0, key_range) — the mixed-read service mix.
Request next_request(otb::Xorshift& rng, const Flags& f) {
  Request req;
  const std::uint64_t pick = rng.next_bounded(100);
  const auto key = static_cast<std::int64_t>(
      rng.next_bounded(static_cast<std::uint64_t>(f.key_range)));
  if (pick < 60) {
    req = {Op::kMapGet, key};
  } else if (pick < 90) {
    req = {Op::kMapPut, key, key * 3 + 1};
  } else {
    req = {Op::kMapErase, key};
  }
  if (f.deadline_ms != 0) {
    req.deadline_ns = now_ns() + std::uint64_t{f.deadline_ms} * 1'000'000ull;
  }
  return req;
}

struct Tally {
  std::uint64_t ok = 0, overloaded = 0, expired = 0, failed = 0;
  std::vector<std::uint64_t> latencies_ns;  // kOk requests only

  void account(const ResponseFuture& fut) {
    switch (fut.status()) {
      case SvcStatus::kOk:
        ok += 1;
        latencies_ns.push_back(fut.latency_ns());
        break;
      case SvcStatus::kOverloaded: overloaded += 1; break;
      case SvcStatus::kExpired: expired += 1; break;
      default: failed += 1; break;
    }
  }

  void merge(Tally&& o) {
    ok += o.ok;
    overloaded += o.overloaded;
    expired += o.expired;
    failed += o.failed;
    latencies_ns.insert(latencies_ns.end(), o.latencies_ns.begin(),
                        o.latencies_ns.end());
  }
};

std::uint64_t percentile_ns(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(double(v.size()) - 1, p * double(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Closed loop: --clients threads, each with --window requests in flight.
Tally run_closed(Service& svc, const Flags& f) {
  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(f.clients);
  std::vector<std::thread> pool;
  for (unsigned c = 0; c < f.clients; ++c) {
    pool.emplace_back([&, c] {
      otb::Xorshift rng{f.seed * 977 + c + 1};
      Tally& t = tallies[c];
      std::deque<ResponseFuture> window;
      while (!stop.load(std::memory_order_acquire)) {
        while (window.size() < f.window) {
          window.push_back(svc.submit(next_request(rng, f)));
        }
        window.front().wait();
        t.account(window.front());
        window.pop_front();
      }
      for (ResponseFuture& fut : window) {
        fut.wait();
        t.account(fut);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(f.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  return total;
}

/// Open loop: Poisson arrivals at --rate across --clients submitter
/// threads (each runs an independent process at rate/clients, which
/// superposes back to a Poisson process at the full rate).
Tally run_open(Service& svc, const Flags& f) {
  std::vector<Tally> tallies(f.clients);
  std::vector<std::thread> pool;
  const double per_thread_rate = f.rate / double(f.clients);
  for (unsigned c = 0; c < f.clients; ++c) {
    pool.emplace_back([&, c] {
      otb::Xorshift rng{f.seed * 31 + c + 1};
      Tally& t = tallies[c];
      std::vector<ResponseFuture> inflight;
      const std::uint64_t t_end =
          now_ns() + std::uint64_t{f.duration_ms} * 1'000'000ull;
      double next_arrival = double(now_ns());
      while (true) {
        // Exponential inter-arrival via inverse transform; u in (0,1].
        const double u =
            (double(rng.next_bounded(1u << 30)) + 1.0) / double(1u << 30);
        next_arrival += -std::log(u) / per_thread_rate * 1e9;
        if (next_arrival > double(t_end)) break;
        while (double(now_ns()) < next_arrival) {
          // Sub-ms gaps: yield rather than sleep to keep arrival jitter
          // below the service's batching timescale.
          std::this_thread::yield();
        }
        inflight.push_back(svc.submit(next_request(rng, f)));
        // Opportunistically retire completed heads to bound memory.
        while (!inflight.empty() && inflight.front().done()) {
          t.account(inflight.front());
          inflight.erase(inflight.begin());
        }
      }
      for (ResponseFuture& fut : inflight) {
        fut.wait();
        t.account(fut);
      }
    });
  }
  for (auto& th : pool) th.join();
  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const Flags f = parse(argc, argv);

  otb::tx::OtbListMap map;
  for (std::int64_t k = 0; k < f.key_range; k += 2) map.put_seq(k, k);
  otb::service::Targets targets;
  targets.map = &map;

  ServiceConfig cfg;
  cfg.workers = f.workers;
  cfg.batch_max = f.batch_max;
  cfg.queue_capacity = f.queue_cap;
  cfg.high_water = f.high_water;
  Service svc(targets, cfg);
  svc.start();

  const std::uint64_t t0 = now_ns();
  Tally t = f.mode == "open" ? run_open(svc, f) : run_closed(svc, f);
  const double secs = double(now_ns() - t0) * 1e-9;
  svc.stop();

  const std::uint64_t total = t.ok + t.overloaded + t.expired + t.failed;
  const std::uint64_t p50 = percentile_ns(t.latencies_ns, 0.50);
  const std::uint64_t p99 = percentile_ns(t.latencies_ns, 0.99);
  std::printf(
      "mode=%s workers=%u clients=%u batch_max=%u rate=%.0f window=%u "
      "deadline_ms=%u duration_s=%.2f requests=%llu ok=%llu overloaded=%llu "
      "expired=%llu failed=%llu ok_per_sec=%.0f p50_us=%.1f p99_us=%.1f\n",
      f.mode.c_str(), f.workers, f.clients, f.batch_max, f.rate, f.window,
      f.deadline_ms, secs, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(t.ok),
      static_cast<unsigned long long>(t.overloaded),
      static_cast<unsigned long long>(t.expired),
      static_cast<unsigned long long>(t.failed),
      secs > 0 ? double(t.ok) / secs : 0.0, double(p50) * 1e-3,
      double(p99) * 1e-3);
  return t.ok == 0 ? 1 : 0;  // a load run that commits nothing is broken
}
