// Load harness for the transactional service plane (src/service).
//
// Two driving disciplines:
//
//   closed-loop (--mode=closed): each client keeps a fixed window of
//     requests outstanding (submit until full, then wait the oldest), so
//     concurrency — not rate — is the controlled variable.  This is the
//     discipline that exposes batch amortisation: with a deep window the
//     workers always find full batches, and the committed-ops/sec ratio of
//     batch_max=16 over batch_max=1 is the subsystem's headline number
//     (EXPERIMENTS.md).
//
//   open-loop (--mode=open): a Poisson arrival process at --rate req/s
//     submits regardless of completions (the "offered load" discipline, no
//     coordinated omission).  Sweeping --rate past saturation shows the
//     admission-control story: committed throughput plateaus, p99 latency
//     of ADMITTED requests stays bounded by queue depth, and the excess is
//     reported as Overloaded (reject-at-admission) or Expired (deadline
//     lapsed in queue) — never silently dropped.
//
// Output: one summary line per run (CSV-ish, stable field order) plus an
// optional --metrics-json dump of every metrics domain (otb.service +
// otb.tx), which CI's service-smoke step validates with metrics_check.
//
// Flags (all optional):
//   --mode=closed|open        default closed
//   --scenario=S              kv|scheduler|session|orderbook (default kv)
//   --script-len=N            steps per kv script            (default 1)
//   --workers=N               service worker threads        (default 4)
//   --clients=N               client threads / connections  (default 2)
//   --shards=S                independent service planes    (default 1)
//   --processes=M             fork M client processes driving the epoll
//                             server over real loopback sockets (v2 wire
//                             protocol); 0 = in-process futures (default 0)
//   --net-threads=N           epoll net threads (net mode)  (default 1)
//   --port=P                  listen port, 0 = ephemeral    (default 0)
//   --window=N                closed-loop in-flight/client  (default 256)
//   --rate=R                  open-loop offered req/s       (default 20000)
//   --duration-ms=D           measured run length           (default 2000)
//   --batch-max=B             requests per transaction      (default 16)
//   --queue-cap=C             per-shard ring capacity       (default 4096)
//   --high-water=H            per-shard admission limit     (default C)
//   --deadline-ms=D           per-request deadline, 0=none  (default 0)
//   --key-range=K             map key universe              (default 256)
//   --read-pct=N              kv get share of the mix       (default 60)
//   --scan-pct=N              kv 16-key range-scan share    (default 0)
//   --seed=S                  arrival/keystream seed        (default 42)
//   --metrics-json=PATH       dump metrics registry on exit
//   --wal-dir=PATH            durable WAL directory, empty=off (default off)
//   --wal-fsync=M             off|group|always              (default group)
//   --ckpt-ms=N               checkpoint interval, 0=never  (default 0)
//   --recover                 replay --wal-dir before serving; exits with
//                             the documented recovery code (docs/DURABILITY.md)
//                             if the log or checkpoint is corrupt
//
// The crash-recovery CI job drives the kill/restart cycle: run with
// --wal-dir under load, SIGKILL at a random point, rerun with --recover
// on the same directory, and require the replayed service to serve a
// second measured phase with a clean metrics dump.
//
// --script-len > 1 turns each kv request into an N-step atomic script over
// the same key distribution — the composition-overhead axis charted in
// EXPERIMENTS.md.  --script-len=1 submits the identical single-step request
// the PR 5 harness did, so the baseline closed-loop numbers stay directly
// comparable.  The scenario workloads drive the cross-structure scripts
// from src/service/scenarios.h under load (guard aborts there are benign
// contention outcomes, reported inside ok=).
//
// --processes=M forks a real client fleet BEFORE the service threads start
// (forking after would copy a running process's lock states): each child
// opens its share of --clients loopback connections, drives the v2 wire
// protocol through a nonblocking poll() loop (a blocking client would
// deadlock against server-side backpressure: both ends stuck in send), and
// reports its tally + a mergeable log2×linear latency histogram back over
// a pipe.  Latency is client-observed RTT — encode-to-decode — which is
// the number a network client actually experiences.
//
// --shards=S > 1 runs S independent service planes behind the key-hash
// router (src/service/sharding.h).  Sharded runs are kv-only and require
// --scan-pct=0 (range scans are cross-shard by construction and would just
// measure the router's fail-closed path); multi-step scripts draw their
// 2nd..Nth keys from the first key's shard so every script stays
// single-shard, mirroring how a sharding-aware client would batch.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "benchlib/driver.h"
#include "common/rng.h"
#include "otb/otb_list_map.h"
#include "service/net.h"
#include "service/scenarios.h"
#include "service/service.h"
#include "service/sharding.h"

namespace {

using otb::now_ns;
using otb::service::Request;
using otb::service::ResponseFuture;
using otb::service::Service;
using otb::service::ServiceConfig;
using otb::service::ShardedService;
using otb::service::SvcStatus;
using otb::service::map_erase;
using otb::service::map_get;
using otb::service::map_put;
using otb::service::shard_of_key;

struct Flags {
  std::string mode = "closed";
  std::string scenario = "kv";
  unsigned script_len = 1;
  unsigned workers = 4;
  unsigned clients = 2;
  unsigned shards = 1;
  unsigned processes = 0;  // 0 = in-process futures, >0 = socket fleet
  unsigned net_threads = 1;
  unsigned port = 0;
  unsigned window = 256;
  double rate = 20000;
  unsigned duration_ms = 2000;
  unsigned batch_max = 16;
  std::size_t queue_cap = 4096;
  std::size_t high_water = 0;
  unsigned deadline_ms = 0;
  std::int64_t key_range = 256;
  unsigned read_pct = 60;
  unsigned scan_pct = 0;
  unsigned hot_pct = 0;  // % of key draws confined to the hot set (0 = uniform)
  std::int64_t hot_keys = 16;  // hot-set size: keys [0, hot_keys)
  std::uint64_t seed = 42;
  std::string wal_dir;
  std::string wal_fsync = "group";
  unsigned ckpt_ms = 0;
  bool recover = false;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

Flags parse(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (parse_flag(argv[i], "--mode", v)) f.mode = v;
    else if (parse_flag(argv[i], "--scenario", v)) f.scenario = v;
    else if (parse_flag(argv[i], "--script-len", v)) f.script_len = std::stoul(v);
    else if (parse_flag(argv[i], "--workers", v)) f.workers = std::stoul(v);
    else if (parse_flag(argv[i], "--clients", v)) f.clients = std::stoul(v);
    else if (parse_flag(argv[i], "--shards", v)) f.shards = std::stoul(v);
    else if (parse_flag(argv[i], "--processes", v)) f.processes = std::stoul(v);
    else if (parse_flag(argv[i], "--net-threads", v)) f.net_threads = std::stoul(v);
    else if (parse_flag(argv[i], "--port", v)) f.port = std::stoul(v);
    else if (parse_flag(argv[i], "--window", v)) f.window = std::stoul(v);
    else if (parse_flag(argv[i], "--rate", v)) f.rate = std::stod(v);
    else if (parse_flag(argv[i], "--duration-ms", v)) f.duration_ms = std::stoul(v);
    else if (parse_flag(argv[i], "--batch-max", v)) f.batch_max = std::stoul(v);
    else if (parse_flag(argv[i], "--queue-cap", v)) f.queue_cap = std::stoul(v);
    else if (parse_flag(argv[i], "--high-water", v)) f.high_water = std::stoul(v);
    else if (parse_flag(argv[i], "--deadline-ms", v)) f.deadline_ms = std::stoul(v);
    else if (parse_flag(argv[i], "--key-range", v)) f.key_range = std::stol(v);
    else if (parse_flag(argv[i], "--read-pct", v)) f.read_pct = std::stoul(v);
    else if (parse_flag(argv[i], "--scan-pct", v)) f.scan_pct = std::stoul(v);
    else if (parse_flag(argv[i], "--hot-pct", v)) f.hot_pct = std::stoul(v);
    else if (parse_flag(argv[i], "--hot-keys", v)) f.hot_keys = std::stol(v);
    else if (parse_flag(argv[i], "--seed", v)) f.seed = std::stoull(v);
    else if (parse_flag(argv[i], "--wal-dir", v)) f.wal_dir = v;
    else if (parse_flag(argv[i], "--wal-fsync", v)) f.wal_fsync = v;
    else if (parse_flag(argv[i], "--ckpt-ms", v)) f.ckpt_ms = std::stoul(v);
    else if (std::strcmp(argv[i], "--recover") == 0) f.recover = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (f.read_pct + f.scan_pct > 100) {
    std::fprintf(stderr, "--read-pct + --scan-pct must be <= 100\n");
    std::exit(2);
  }
  if (f.hot_pct > 100) {
    std::fprintf(stderr, "--hot-pct must be <= 100\n");
    std::exit(2);
  }
  if (f.hot_keys < 1 || f.hot_keys > f.key_range) {
    std::fprintf(stderr, "--hot-keys must be in [1, --key-range]\n");
    std::exit(2);
  }
  if (f.shards == 0) f.shards = 1;
  if (f.shards > 1 && f.scenario != "kv") {
    std::fprintf(stderr, "--shards > 1 supports --scenario=kv only\n");
    std::exit(2);
  }
  if (f.shards > 1 && f.scan_pct != 0) {
    std::fprintf(stderr,
                 "--scan-pct requires --shards=1 (range scans are "
                 "cross-shard and fail closed at the router)\n");
    std::exit(2);
  }
  if (f.processes != 0 && f.scenario != "kv") {
    std::fprintf(stderr, "--processes supports --scenario=kv only\n");
    std::exit(2);
  }
  if (f.processes > f.clients) f.processes = f.clients;
  return f;
}

/// Request generator: per-client callable producing the next script.
using RequestGen = std::function<Request(otb::Xorshift&)>;

/// One kv step over [0, key_range): --scan-pct 16-key range scans, then
/// --read-pct gets, with the remainder split 3:1 put:erase.  The defaults
/// (scan 0, read 60) reproduce the PR 5 harness's 60/30/10 get/put/erase
/// mix exactly; --read-pct=90 is the read-mostly arm and a high --scan-pct
/// the scan-heavy arm of the multi-version sweeps (EXPERIMENTS.md).
otb::service::Step kv_verb_step(std::uint64_t pick, const Flags& f,
                                std::int64_t key) {
  if (pick < f.scan_pct) return otb::service::map_range(key, key + 15);
  if (pick < f.scan_pct + f.read_pct) return map_get(key);
  const std::uint64_t rest = pick - f.scan_pct - f.read_pct;
  const unsigned writes = 100 - f.scan_pct - f.read_pct;
  if (rest < writes - writes / 4) return map_put(key, key * 3 + 1);
  return map_erase(key);
}

/// One key draw: uniform over [0, key_range) by default; with --hot-pct,
/// that fraction of draws is confined to the hot set [0, hot_keys) — the
/// skewed regime the transaction-fusion contention manager targets (e.g.
/// --hot-pct=90 --hot-keys=16 puts 90% of ops on 16 keys; ISSUE 10).
std::int64_t kv_key(otb::Xorshift& rng, const Flags& f) {
  if (f.hot_pct != 0 && rng.next_bounded(100) < f.hot_pct) {
    return static_cast<std::int64_t>(
        rng.next_bounded(static_cast<std::uint64_t>(f.hot_keys)));
  }
  return static_cast<std::int64_t>(
      rng.next_bounded(static_cast<std::uint64_t>(f.key_range)));
}

otb::service::Step kv_step(otb::Xorshift& rng, const Flags& f) {
  const std::uint64_t pick = rng.next_bounded(100);
  return kv_verb_step(pick, f, kv_key(rng, f));
}

/// The kv workload: --script-len independent steps per atomic script.
Request next_kv_request(otb::Xorshift& rng, const Flags& f) {
  Request req{kv_step(rng, f)};
  for (unsigned i = 1; i < f.script_len; ++i) req.steps.push_back(kv_step(rng, f));
  return req;
}

/// Key pools per shard: pools[s] holds every key of [0, key_range) whose
/// hash owner is shard s.  Deterministic, so server, in-process clients,
/// and forked net clients all agree without coordination.
std::vector<std::vector<std::int64_t>> shard_key_pools(const Flags& f) {
  std::vector<std::vector<std::int64_t>> pools(f.shards);
  for (std::int64_t k = 0; k < f.key_range; ++k) {
    pools[shard_of_key(k, f.shards)].push_back(k);
  }
  return pools;
}

/// Sharded kv script: the first key picks the owner shard, the rest of the
/// script draws from that shard's pool so the script stays single-shard.
Request sharded_kv_request(otb::Xorshift& rng, const Flags& f,
                           const std::vector<std::vector<std::int64_t>>& pools) {
  if (f.shards <= 1) return next_kv_request(rng, f);
  const std::int64_t k0 = kv_key(rng, f);
  const auto& pool = pools[shard_of_key(k0, f.shards)];
  Request req{kv_verb_step(rng.next_bounded(100), f, k0)};
  for (unsigned i = 1; i < f.script_len; ++i) {
    const std::int64_t k =
        pool.empty() ? k0 : pool[rng.next_bounded(pool.size())];
    req.steps.push_back(kv_verb_step(rng.next_bounded(100), f, k));
  }
  return req;
}

/// Everything a workload needs to run: registered targets, a generator,
/// and ownership of whichever structures back them.
struct Workload {
  otb::service::Targets targets;
  RequestGen gen;
  std::function<void()> seed;  // deterministic baseline (recovery re-runs it)
  std::unique_ptr<otb::tx::OtbListMap> map;  // kv only
  std::unique_ptr<otb::service::scenarios::JobScheduler> sched;
  std::unique_ptr<otb::service::scenarios::SessionStore> store;
  std::unique_ptr<otb::service::scenarios::OrderBook> book;
};

Workload make_workload(const Flags& f) {
  Workload w;
  w.seed = [] {};
  const auto range = static_cast<std::uint64_t>(f.key_range);
  if (f.scenario == "kv") {
    w.map = std::make_unique<otb::tx::OtbListMap>();
    auto* map = w.map.get();
    w.seed = [map, &f] {
      for (std::int64_t k = 0; k < f.key_range; k += 2) map->put_seq(k, k);
    };
    w.targets = otb::service::Targets::standard(w.map.get());
    w.gen = [&f](otb::Xorshift& rng) { return next_kv_request(rng, f); };
  } else if (f.scenario == "scheduler") {
    // Claims race releases over a seeded job pool; guard aborts (empty
    // queue, job not leased) are benign contention outcomes.
    w.sched = std::make_unique<otb::service::scenarios::JobScheduler>();
    auto* sched0 = w.sched.get();
    w.seed = [sched0, &f] {
      for (std::int64_t j = 1; j <= f.key_range; ++j) sched0->seed_job(j);
    };
    w.targets = w.sched->targets();
    auto* sched = w.sched.get();
    w.gen = [sched, range](otb::Xorshift& rng) {
      const std::uint64_t pick = rng.next_bounded(100);
      if (pick < 50) {
        return sched->claim(static_cast<std::int64_t>(rng.next_bounded(64)));
      }
      const auto job = static_cast<std::int64_t>(1 + rng.next_bounded(range));
      return sched->release(job);
    };
  } else if (f.scenario == "session") {
    // rank == sid (one expiry bucket): create and expire stay symmetric, so
    // the sessions/TTL bijection holds throughout the run.
    w.store = std::make_unique<otb::service::scenarios::SessionStore>();
    w.targets = w.store->targets();
    auto* store = w.store.get();
    w.gen = [store, range](otb::Xorshift& rng) {
      const std::uint64_t pick = rng.next_bounded(100);
      const auto sid = static_cast<std::int64_t>(rng.next_bounded(range));
      if (pick < 45) return store->create(sid, sid * 7, /*expiry_rank=*/sid);
      if (pick < 90) return store->expire(/*rank=*/sid, sid);
      return store->scan_ttl(sid, sid + 16);
    };
  } else if (f.scenario == "orderbook") {
    // Makers dominate; match attempts use the optimistic expect-guarded
    // script against a guessed top of book, so most abort under drift —
    // exactly the contention profile the scenario exists to measure.
    w.book = std::make_unique<otb::service::scenarios::OrderBook>();
    w.targets = w.book->targets();
    auto* book = w.book.get();
    w.gen = [book, range](otb::Xorshift& rng) {
      const std::uint64_t pick = rng.next_bounded(100);
      const auto price = static_cast<std::int64_t>(100 + rng.next_bounded(range));
      if (pick < 35) return book->place_ask(price, /*qty=*/1);
      if (pick < 70) return book->place_bid(price, /*qty=*/1);
      if (pick < 85) return (pick & 1) ? book->best_ask() : book->best_bid();
      return book->match(price, price);
    };
  } else {
    std::fprintf(stderr, "unknown --scenario: %s\n", f.scenario.c_str());
    std::exit(2);
  }
  if (f.deadline_ms != 0) {
    RequestGen inner = std::move(w.gen);
    w.gen = [inner, &f](otb::Xorshift& rng) {
      Request req = inner(rng);
      req.deadline_ns = now_ns() + std::uint64_t{f.deadline_ms} * 1'000'000ull;
      return req;
    };
  }
  return w;
}

struct Tally {
  std::uint64_t ok = 0, overloaded = 0, expired = 0, failed = 0;
  std::vector<std::uint64_t> latencies_ns;  // kOk requests only

  void account(const ResponseFuture& fut) {
    switch (fut.status()) {
      case SvcStatus::kOk:
        ok += 1;
        latencies_ns.push_back(fut.latency_ns());
        break;
      case SvcStatus::kOverloaded: overloaded += 1; break;
      case SvcStatus::kExpired: expired += 1; break;
      default: failed += 1; break;
    }
  }

  void merge(Tally&& o) {
    ok += o.ok;
    overloaded += o.overloaded;
    expired += o.expired;
    failed += o.failed;
    latencies_ns.insert(latencies_ns.end(), o.latencies_ns.begin(),
                        o.latencies_ns.end());
  }
};

std::uint64_t percentile_ns(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(double(v.size()) - 1, p * double(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Closed loop: --clients threads, each with --window requests in flight.
/// Templated on the service type so the same driver runs a plain Service
/// or a ShardedService (router in front) with zero indirection.
template <typename Svc>
Tally run_closed(Svc& svc, const Flags& f, const RequestGen& gen) {
  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(f.clients);
  std::vector<std::thread> pool;
  for (unsigned c = 0; c < f.clients; ++c) {
    pool.emplace_back([&, c] {
      otb::Xorshift rng{f.seed * 977 + c + 1};
      Tally& t = tallies[c];
      std::deque<ResponseFuture> window;
      while (!stop.load(std::memory_order_acquire)) {
        while (window.size() < f.window) {
          window.push_back(svc.submit(gen(rng)));
        }
        window.front().wait();
        t.account(window.front());
        window.pop_front();
      }
      for (ResponseFuture& fut : window) {
        fut.wait();
        t.account(fut);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(f.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  return total;
}

/// Open loop: Poisson arrivals at --rate across --clients submitter
/// threads (each runs an independent process at rate/clients, which
/// superposes back to a Poisson process at the full rate).
template <typename Svc>
Tally run_open(Svc& svc, const Flags& f, const RequestGen& gen) {
  std::vector<Tally> tallies(f.clients);
  std::vector<std::thread> pool;
  const double per_thread_rate = f.rate / double(f.clients);
  for (unsigned c = 0; c < f.clients; ++c) {
    pool.emplace_back([&, c] {
      otb::Xorshift rng{f.seed * 31 + c + 1};
      Tally& t = tallies[c];
      std::vector<ResponseFuture> inflight;
      const std::uint64_t t_end =
          now_ns() + std::uint64_t{f.duration_ms} * 1'000'000ull;
      double next_arrival = double(now_ns());
      while (true) {
        // Exponential inter-arrival via inverse transform; u in (0,1].
        const double u =
            (double(rng.next_bounded(1u << 30)) + 1.0) / double(1u << 30);
        next_arrival += -std::log(u) / per_thread_rate * 1e9;
        if (next_arrival > double(t_end)) break;
        while (double(now_ns()) < next_arrival) {
          // Sub-ms gaps: yield rather than sleep to keep arrival jitter
          // below the service's batching timescale.
          std::this_thread::yield();
        }
        inflight.push_back(svc.submit(gen(rng)));
        // Opportunistically retire completed heads to bound memory.
        while (!inflight.empty() && inflight.front().done()) {
          t.account(inflight.front());
          inflight.erase(inflight.begin());
        }
      }
      for (ResponseFuture& fut : inflight) {
        fut.wait();
        t.account(fut);
      }
    });
  }
  for (auto& th : pool) th.join();
  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  return total;
}

// ---- multi-process socket fleet (--processes) -------------------------------

/// Mergeable latency histogram: log2 exponent × 32 linear sub-buckets
/// (~3% relative resolution).  Children ship it over a pipe as plain
/// bytes, the parent merges and reads percentiles — exact percentiles
/// across processes without shipping every sample.
struct LatHist {
  static constexpr unsigned kExp = 40;  // up to 2^40 ns ≈ 18 min
  static constexpr unsigned kSub = 32;
  std::uint64_t count = 0;
  std::uint64_t buckets[kExp][kSub] = {};

  void add(std::uint64_t ns) {
    count += 1;
    if (ns <= 1) {
      buckets[0][0] += 1;
      return;
    }
    const auto e = 64u - static_cast<unsigned>(__builtin_clzll(ns));  // 2..64
    if (e > kExp) {
      buckets[kExp - 1][kSub - 1] += 1;
      return;
    }
    const std::uint64_t lo = 1ull << (e - 1);
    const auto sub = e >= 7 ? static_cast<unsigned>((ns - lo) >> (e - 6))
                            : static_cast<unsigned>(ns - lo);
    buckets[e - 1][sub] += 1;
  }

  void merge(const LatHist& o) {
    count += o.count;
    for (unsigned e = 0; e < kExp; ++e)
      for (unsigned s = 0; s < kSub; ++s) buckets[e][s] += o.buckets[e][s];
  }

  std::uint64_t percentile(double p) const {
    if (count == 0) return 0;
    const std::uint64_t rank = std::min<std::uint64_t>(
        count - 1, static_cast<std::uint64_t>(p * double(count)));
    std::uint64_t cum = 0;
    for (unsigned e = 0; e < kExp; ++e) {
      for (unsigned s = 0; s < kSub; ++s) {
        cum += buckets[e][s];
        if (cum > rank) {
          if (e == 0) return s;
          const std::uint64_t lo = 1ull << e;
          if (e < 6) return lo + s;
          const std::uint64_t w = lo >> 5;
          return lo + s * w + w / 2;
        }
      }
    }
    return 0;
  }
};

/// What one child process reports back over its pipe (POD, fixed size).
struct NetReport {
  std::uint64_t ok = 0, overloaded = 0, expired = 0, failed = 0;
  std::uint64_t elapsed_ns = 0;
  LatHist hist;
};

void encode_request_v2(std::vector<std::uint8_t>& out, const Request& req,
                       std::uint64_t id, unsigned deadline_ms) {
  namespace wire = otb::service::wire;
  wire::put<std::uint32_t>(
      out, static_cast<std::uint32_t>(otb::service::kNetWireV2HeaderLen +
                                      req.steps.size() *
                                          otb::service::kNetWireStepLen));
  wire::put<std::uint8_t>(out, otb::service::kNetWireV2);
  wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(req.steps.size()));
  wire::put<std::uint32_t>(out, deadline_ms);
  wire::put<std::uint64_t>(out, id);
  for (const otb::service::Step& s : req.steps) {
    wire::put<std::uint8_t>(out, s.structure);
    wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(s.verb));
    wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(
                                     (s.required ? 1u : 0u) |
                                     (s.has_expect ? 2u : 0u)));
    wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(s.key_from));
    wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(s.value_from));
    wire::put<std::int64_t>(out, s.key);
    wire::put<std::int64_t>(out, s.value);
    wire::put<std::int64_t>(out, s.expect);
  }
}

/// One connection of the fleet.  `sent_ns` carries send timestamps in FIFO
/// order — the server guarantees per-connection response order, so RTT
/// matching is a pop from the front.
struct FleetConn {
  int fd = -1;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  std::vector<std::uint8_t> in;
  std::deque<std::uint64_t> sent_ns;
  double next_arrival = 0;  // open mode
  bool submitting = true;
};

/// Child-process body: drive `nconns` loopback connections through a
/// nonblocking poll() loop for --duration-ms, then drain and report.
/// Sockets must be nonblocking: under server backpressure a blocking
/// client deadlocks (client stuck in send, server not reading).
int net_child(const Flags& f, std::uint16_t port, unsigned proc,
              unsigned nconns, int pipe_fd) {
  const auto pools = shard_key_pools(f);
  otb::Xorshift rng{f.seed * 7919 + proc * 131 + 1};
  std::vector<FleetConn> conns(nconns);
  for (auto& c : conns) {
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (c.fd < 0) return 3;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    // Blocking connect completes out of the listen backlog even before the
    // server's accept loop first runs (the fleet forks pre-start).
    if (::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return 3;
    }
    int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int fl = ::fcntl(c.fd, F_GETFL);
    ::fcntl(c.fd, F_SETFL, fl | O_NONBLOCK);
  }

  NetReport rep;
  std::uint64_t next_id = 1;
  const bool open = f.mode == "open";
  const double per_conn_rate = f.rate / double(f.clients);
  const std::uint64_t t0 = now_ns();
  const std::uint64_t t_end = t0 + std::uint64_t{f.duration_ms} * 1'000'000ull;
  for (auto& c : conns) c.next_arrival = double(t0);

  const auto submit_one = [&](FleetConn& c) {
    encode_request_v2(c.out, sharded_kv_request(rng, f, pools), next_id++,
                      f.deadline_ms);
    c.sent_ns.push_back(now_ns());
  };
  const auto top_up = [&](FleetConn& c) {
    if (!c.submitting) return;
    const std::uint64_t now = now_ns();
    if (now >= t_end) {
      c.submitting = false;
      return;
    }
    if (open) {
      while (c.next_arrival <= double(now)) {
        submit_one(c);
        const double u =
            (double(rng.next_bounded(1u << 30)) + 1.0) / double(1u << 30);
        c.next_arrival += -std::log(u) / per_conn_rate * 1e9;
        if (c.next_arrival > double(t_end)) {
          c.submitting = false;
          break;
        }
      }
    } else {
      while (c.sent_ns.size() < f.window) submit_one(c);
    }
  };
  const auto flush = [&](FleetConn& c) -> bool {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (c.out_off == c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    }
    return true;
  };
  const auto drain_in = [&](FleetConn& c) -> bool {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.insert(c.in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) return false;  // server closed on us
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    namespace wire = otb::service::wire;
    std::size_t off = 0;
    while (c.in.size() - off >= 4) {
      const std::uint32_t len = wire::get<std::uint32_t>(c.in.data() + off);
      if (c.in.size() - off < 4 + len) break;
      const std::uint8_t* p = c.in.data() + off + 4;
      if (len < 16 || p[0] != otb::service::kNetWireV2) return false;
      if (!c.sent_ns.empty()) {
        const std::uint64_t rtt = now_ns() - c.sent_ns.front();
        c.sent_ns.pop_front();
        switch (static_cast<SvcStatus>(p[9])) {
          case SvcStatus::kOk:
            rep.ok += 1;
            rep.hist.add(rtt);
            break;
          case SvcStatus::kOverloaded: rep.overloaded += 1; break;
          case SvcStatus::kExpired: rep.expired += 1; break;
          default: rep.failed += 1; break;
        }
      }
      off += 4 + len;
    }
    c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(off));
    return true;
  };

  std::vector<pollfd> fds;
  for (;;) {
    bool idle = true;
    for (auto& c : conns) {
      if (c.fd < 0) continue;
      top_up(c);
      if (!flush(c)) {
        rep.failed += c.sent_ns.size();  // responses lost with the socket
        ::close(c.fd);
        c.fd = -1;
        continue;
      }
      if (c.submitting || !c.sent_ns.empty() || c.out_off < c.out.size()) {
        idle = false;
      }
    }
    if (idle) break;
    if (now_ns() > t_end + 30'000'000'000ull) break;  // shutdown safety net
    fds.clear();
    for (auto& c : conns) {
      if (c.fd < 0) continue;
      short ev = POLLIN;
      if (c.out_off < c.out.size()) ev |= POLLOUT;
      fds.push_back({c.fd, ev, 0});
    }
    int timeout_ms = 100;
    if (open) {
      // Wake for the earliest pending arrival instead of spinning.
      double next = double(t_end);
      for (const auto& c : conns) {
        if (c.fd >= 0 && c.submitting) next = std::min(next, c.next_arrival);
      }
      const double now = double(now_ns());
      timeout_ms = next <= now
                       ? 0
                       : std::min(100, static_cast<int>((next - now) / 1e6) + 1);
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    std::size_t i = 0;
    for (auto& c : conns) {
      if (c.fd < 0) continue;
      const short re = fds[i++].revents;
      if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (!drain_in(c)) {
          rep.failed += c.sent_ns.size();
          ::close(c.fd);
          c.fd = -1;
          continue;
        }
      }
      if ((re & POLLOUT) != 0) {
        if (!flush(c)) {
          rep.failed += c.sent_ns.size();
          ::close(c.fd);
          c.fd = -1;
        }
      }
    }
  }
  rep.elapsed_ns = now_ns() - t0;
  for (auto& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  std::size_t put = 0;
  const char* bytes = reinterpret_cast<const char*>(&rep);
  while (put < sizeof(rep)) {
    const ssize_t n = ::write(pipe_fd, bytes + put, sizeof(rep) - put);
    if (n <= 0) return 4;
    put += static_cast<std::size_t>(n);
  }
  return 0;
}

void print_summary(const Flags& f, const ServiceConfig& cfg,
                   const char* transport, std::uint64_t ok,
                   std::uint64_t overloaded, std::uint64_t expired,
                   std::uint64_t failed, double secs, std::uint64_t p50_ns,
                   std::uint64_t p99_ns) {
  const std::uint64_t total = ok + overloaded + expired + failed;
  std::printf(
      "mode=%s scenario=%s script_len=%u workers=%u clients=%u batch_max=%u "
      "rate=%.0f window=%u "
      "deadline_ms=%u duration_s=%.2f requests=%llu ok=%llu overloaded=%llu "
      "expired=%llu failed=%llu ok_per_sec=%.0f p50_us=%.1f p99_us=%.1f "
      "wal=%s shards=%u processes=%u net_threads=%u transport=%s\n",
      f.mode.c_str(), f.scenario.c_str(), f.script_len, f.workers, f.clients,
      f.batch_max, f.rate, f.window, f.deadline_ms, secs,
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(failed),
      secs > 0 ? double(ok) / secs : 0.0, double(p50_ns) * 1e-3,
      double(p99_ns) * 1e-3,
      f.wal_dir.empty()
          ? "off"
          : std::string(otb::service::to_string(cfg.wal_fsync)).c_str(),
      f.shards, f.processes, f.processes != 0 ? f.net_threads : 0, transport);
}

/// Net mode: bind, fork the fleet, start the service, serve, aggregate.
/// The fork MUST precede svc.start() — forking a process with running
/// threads can copy a held malloc/futex lock into the child.
template <typename Svc>
int run_net(Svc& svc, const Flags& f, const ServiceConfig& cfg) {
  otb::service::NetServerConfig ncfg = otb::service::NetServerConfig::from_env();
  ncfg.net_threads = f.net_threads;
  otb::service::BasicNetServer<Svc> server(
      svc, static_cast<std::uint16_t>(f.port), ncfg);
  if (!server.listening()) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", f.port);
    return 1;
  }
  const std::uint16_t port = server.bound_port();
  const unsigned procs = std::max(1u, f.processes);
  std::vector<pid_t> pids;
  std::vector<int> rfds;
  for (unsigned p = 0; p < procs; ++p) {
    const unsigned nconns =
        f.clients / procs + (p < f.clients % procs ? 1 : 0);
    if (nconns == 0) continue;
    int pfd[2];
    if (::pipe(pfd) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      // Drop every inherited descriptor except stdio and the report pipe:
      // the child must not keep the parent's WAL-directory flock (or its
      // listen socket) alive past a SIGKILL of the server — the crash-cycle
      // recover would find the lock still held by the orphaned fleet.
      DIR* fds = ::opendir("/proc/self/fd");
      if (fds != nullptr) {
        const int dfd = ::dirfd(fds);
        std::vector<int> doomed;  // close after the walk: closing mutates
        while (dirent* e = ::readdir(fds)) {  // the very directory iterated
          char* end = nullptr;
          const long fd = std::strtol(e->d_name, &end, 10);
          if (end == e->d_name || *end != '\0') continue;
          if (fd > 2 && fd != pfd[1] && fd != dfd) {
            doomed.push_back(static_cast<int>(fd));
          }
        }
        ::closedir(fds);
        for (const int fd : doomed) ::close(fd);
      }
      ::_exit(net_child(f, port, p, nconns, pfd[1]));
    }
    ::close(pfd[1]);
    pids.push_back(pid);
    rfds.push_back(pfd[0]);
  }
  svc.start();
  std::thread server_thread([&] { server.run(); });
  bool trouble = false;
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) trouble = true;
  }
  server.request_stop();
  server_thread.join();  // run() drains and stops the service

  NetReport agg;
  for (const int fd : rfds) {
    NetReport r;
    std::size_t got = 0;
    char* bytes = reinterpret_cast<char*>(&r);
    while (got < sizeof(r)) {
      const ssize_t n = ::read(fd, bytes + got, sizeof(r) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (got != sizeof(r)) {
      trouble = true;
      continue;
    }
    agg.ok += r.ok;
    agg.overloaded += r.overloaded;
    agg.expired += r.expired;
    agg.failed += r.failed;
    agg.elapsed_ns = std::max(agg.elapsed_ns, r.elapsed_ns);
    agg.hist.merge(r.hist);
  }
  print_summary(f, cfg, "net", agg.ok, agg.overloaded, agg.expired, agg.failed,
                double(agg.elapsed_ns) * 1e-9, agg.hist.percentile(0.50),
                agg.hist.percentile(0.99));
  if (trouble) {
    std::fprintf(stderr, "net fleet: a child process failed\n");
    return 1;
  }
  return agg.ok == 0 ? 1 : 0;
}

/// Drive one configured service (plain or sharded) to completion and print
/// the summary line.  In-process unless --processes says socket fleet.
template <typename Svc>
int drive(Svc& svc, const Flags& f, const RequestGen& gen,
          const ServiceConfig& cfg) {
  if (f.processes != 0) return run_net(svc, f, cfg);
  svc.start();
  const std::uint64_t t0 = now_ns();
  Tally t =
      f.mode == "open" ? run_open(svc, f, gen) : run_closed(svc, f, gen);
  const double secs = double(now_ns() - t0) * 1e-9;
  svc.stop();
  print_summary(f, cfg, "inproc", t.ok, t.overloaded, t.expired, t.failed,
                secs, percentile_ns(t.latencies_ns, 0.50),
                percentile_ns(t.latencies_ns, 0.99));
  return t.ok == 0 ? 1 : 0;  // a load run that commits nothing is broken
}

}  // namespace

namespace {

void print_recovery_line(const otb::service::RecoveryReport& r, int shard) {
  if (shard >= 0) std::printf("recover shard=%d ", shard);
  else std::printf("recover ");
  std::printf(
      "status=%s checkpoint_seq=%llu last_seq=%llu records=%llu "
      "ops=%llu segments=%llu truncated_tail=%d detail=\"%s\"\n",
      std::string(otb::service::to_string(r.status)).c_str(),
      static_cast<unsigned long long>(r.checkpoint_seq),
      static_cast<unsigned long long>(r.last_seq),
      static_cast<unsigned long long>(r.records_replayed),
      static_cast<unsigned long long>(r.ops_replayed),
      static_cast<unsigned long long>(r.segments_scanned),
      r.truncated_tail ? 1 : 0, r.detail.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const Flags f = parse(argc, argv);

  ServiceConfig cfg;
  cfg.workers = f.workers;
  cfg.batch_max = f.batch_max;
  cfg.queue_capacity = f.queue_cap;
  cfg.high_water = f.high_water;
  cfg.wal_dir = f.wal_dir;
  cfg.wal_checkpoint_ms = f.ckpt_ms;
  if (!otb::service::parse_wal_fsync(f.wal_fsync.c_str(), &cfg.wal_fsync)) {
    std::fprintf(stderr, "bad --wal-fsync: %s (off|group|always)\n",
                 f.wal_fsync.c_str());
    return 2;
  }

  if (f.shards > 1) {
    // Sharded planes: kv only (parse() enforces it) with every script
    // confined to one shard's key pool, so the router never rejects and
    // the run measures plane parallelism, not rejection throughput.
    std::vector<std::unique_ptr<otb::tx::OtbListMap>> maps;
    std::vector<otb::service::Targets> targets;
    for (unsigned s = 0; s < f.shards; ++s) {
      maps.push_back(std::make_unique<otb::tx::OtbListMap>());
      targets.push_back(otb::service::Targets::standard(maps.back().get()));
    }
    const auto pools = shard_key_pools(f);
    const auto seed_shard = [&](std::size_t s) {
      for (std::int64_t k = 0; k < f.key_range; k += 2) {
        if (shard_of_key(k, f.shards) == s) maps[s]->put_seq(k, k);
      }
    };
    ShardedService svc(std::move(targets), cfg);
    if (f.recover) {
      const auto reports = svc.recover(seed_shard);
      for (std::size_t i = 0; i < reports.size(); ++i) {
        print_recovery_line(reports[i], static_cast<int>(i));
      }
      for (const auto& r : reports) {
        if (!r.ok()) return otb::service::recovery_exit_code(r.status);
      }
    } else {
      for (std::size_t s = 0; s < f.shards; ++s) seed_shard(s);
    }
    const RequestGen gen = [&f, &pools](otb::Xorshift& rng) {
      Request req = sharded_kv_request(rng, f, pools);
      if (f.deadline_ms != 0) {
        req.deadline_ns =
            now_ns() + std::uint64_t{f.deadline_ms} * 1'000'000ull;
      }
      return req;
    };
    return drive(svc, f, gen, cfg);
  }

  Workload w = make_workload(f);
  Service svc(w.targets, cfg);
  if (f.recover) {
    // Structures start empty; recovery re-seeds through the same closure
    // the fresh run used, then replays the log tail on top.
    const otb::service::RecoveryReport r = svc.recover(w.seed);
    print_recovery_line(r, -1);
    if (!r.ok()) return otb::service::recovery_exit_code(r.status);
  } else {
    w.seed();
  }
  return drive(svc, f, w.gen, cfg);
}
