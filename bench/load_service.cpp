// Load harness for the transactional service plane (src/service).
//
// Two driving disciplines:
//
//   closed-loop (--mode=closed): each client keeps a fixed window of
//     requests outstanding (submit until full, then wait the oldest), so
//     concurrency — not rate — is the controlled variable.  This is the
//     discipline that exposes batch amortisation: with a deep window the
//     workers always find full batches, and the committed-ops/sec ratio of
//     batch_max=16 over batch_max=1 is the subsystem's headline number
//     (EXPERIMENTS.md).
//
//   open-loop (--mode=open): a Poisson arrival process at --rate req/s
//     submits regardless of completions (the "offered load" discipline, no
//     coordinated omission).  Sweeping --rate past saturation shows the
//     admission-control story: committed throughput plateaus, p99 latency
//     of ADMITTED requests stays bounded by queue depth, and the excess is
//     reported as Overloaded (reject-at-admission) or Expired (deadline
//     lapsed in queue) — never silently dropped.
//
// Output: one summary line per run (CSV-ish, stable field order) plus an
// optional --metrics-json dump of every metrics domain (otb.service +
// otb.tx), which CI's service-smoke step validates with metrics_check.
//
// Flags (all optional):
//   --mode=closed|open        default closed
//   --scenario=S              kv|scheduler|session|orderbook (default kv)
//   --script-len=N            steps per kv script            (default 1)
//   --workers=N               service worker threads        (default 4)
//   --clients=N               client threads                (default 2)
//   --window=N                closed-loop in-flight/client  (default 256)
//   --rate=R                  open-loop offered req/s       (default 20000)
//   --duration-ms=D           measured run length           (default 2000)
//   --batch-max=B             requests per transaction      (default 16)
//   --queue-cap=C             per-shard ring capacity       (default 4096)
//   --high-water=H            per-shard admission limit     (default C)
//   --deadline-ms=D           per-request deadline, 0=none  (default 0)
//   --key-range=K             map key universe              (default 256)
//   --read-pct=N              kv get share of the mix       (default 60)
//   --scan-pct=N              kv 16-key range-scan share    (default 0)
//   --seed=S                  arrival/keystream seed        (default 42)
//   --metrics-json=PATH       dump metrics registry on exit
//   --wal-dir=PATH            durable WAL directory, empty=off (default off)
//   --wal-fsync=M             off|group|always              (default group)
//   --ckpt-ms=N               checkpoint interval, 0=never  (default 0)
//   --recover                 replay --wal-dir before serving; exits with
//                             the documented recovery code (docs/DURABILITY.md)
//                             if the log or checkpoint is corrupt
//
// The crash-recovery CI job drives the kill/restart cycle: run with
// --wal-dir under load, SIGKILL at a random point, rerun with --recover
// on the same directory, and require the replayed service to serve a
// second measured phase with a clean metrics dump.
//
// --script-len > 1 turns each kv request into an N-step atomic script over
// the same key distribution — the composition-overhead axis charted in
// EXPERIMENTS.md.  --script-len=1 submits the identical single-step request
// the PR 5 harness did, so the baseline closed-loop numbers stay directly
// comparable.  The scenario workloads drive the cross-structure scripts
// from src/service/scenarios.h under load (guard aborts there are benign
// contention outcomes, reported inside ok=).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/driver.h"
#include "common/rng.h"
#include "otb/otb_list_map.h"
#include "service/scenarios.h"
#include "service/service.h"

namespace {

using otb::now_ns;
using otb::service::Request;
using otb::service::ResponseFuture;
using otb::service::Service;
using otb::service::ServiceConfig;
using otb::service::SvcStatus;
using otb::service::map_erase;
using otb::service::map_get;
using otb::service::map_put;

struct Flags {
  std::string mode = "closed";
  std::string scenario = "kv";
  unsigned script_len = 1;
  unsigned workers = 4;
  unsigned clients = 2;
  unsigned window = 256;
  double rate = 20000;
  unsigned duration_ms = 2000;
  unsigned batch_max = 16;
  std::size_t queue_cap = 4096;
  std::size_t high_water = 0;
  unsigned deadline_ms = 0;
  std::int64_t key_range = 256;
  unsigned read_pct = 60;
  unsigned scan_pct = 0;
  std::uint64_t seed = 42;
  std::string wal_dir;
  std::string wal_fsync = "group";
  unsigned ckpt_ms = 0;
  bool recover = false;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

Flags parse(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (parse_flag(argv[i], "--mode", v)) f.mode = v;
    else if (parse_flag(argv[i], "--scenario", v)) f.scenario = v;
    else if (parse_flag(argv[i], "--script-len", v)) f.script_len = std::stoul(v);
    else if (parse_flag(argv[i], "--workers", v)) f.workers = std::stoul(v);
    else if (parse_flag(argv[i], "--clients", v)) f.clients = std::stoul(v);
    else if (parse_flag(argv[i], "--window", v)) f.window = std::stoul(v);
    else if (parse_flag(argv[i], "--rate", v)) f.rate = std::stod(v);
    else if (parse_flag(argv[i], "--duration-ms", v)) f.duration_ms = std::stoul(v);
    else if (parse_flag(argv[i], "--batch-max", v)) f.batch_max = std::stoul(v);
    else if (parse_flag(argv[i], "--queue-cap", v)) f.queue_cap = std::stoul(v);
    else if (parse_flag(argv[i], "--high-water", v)) f.high_water = std::stoul(v);
    else if (parse_flag(argv[i], "--deadline-ms", v)) f.deadline_ms = std::stoul(v);
    else if (parse_flag(argv[i], "--key-range", v)) f.key_range = std::stol(v);
    else if (parse_flag(argv[i], "--read-pct", v)) f.read_pct = std::stoul(v);
    else if (parse_flag(argv[i], "--scan-pct", v)) f.scan_pct = std::stoul(v);
    else if (parse_flag(argv[i], "--seed", v)) f.seed = std::stoull(v);
    else if (parse_flag(argv[i], "--wal-dir", v)) f.wal_dir = v;
    else if (parse_flag(argv[i], "--wal-fsync", v)) f.wal_fsync = v;
    else if (parse_flag(argv[i], "--ckpt-ms", v)) f.ckpt_ms = std::stoul(v);
    else if (std::strcmp(argv[i], "--recover") == 0) f.recover = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (f.read_pct + f.scan_pct > 100) {
    std::fprintf(stderr, "--read-pct + --scan-pct must be <= 100\n");
    std::exit(2);
  }
  return f;
}

/// Request generator: per-client callable producing the next script.
using RequestGen = std::function<Request(otb::Xorshift&)>;

/// One kv step over [0, key_range): --scan-pct 16-key range scans, then
/// --read-pct gets, with the remainder split 3:1 put:erase.  The defaults
/// (scan 0, read 60) reproduce the PR 5 harness's 60/30/10 get/put/erase
/// mix exactly; --read-pct=90 is the read-mostly arm and a high --scan-pct
/// the scan-heavy arm of the multi-version sweeps (EXPERIMENTS.md).
otb::service::Step kv_step(otb::Xorshift& rng, const Flags& f) {
  const std::uint64_t pick = rng.next_bounded(100);
  const auto key = static_cast<std::int64_t>(
      rng.next_bounded(static_cast<std::uint64_t>(f.key_range)));
  if (pick < f.scan_pct) return otb::service::map_range(key, key + 15);
  if (pick < f.scan_pct + f.read_pct) return map_get(key);
  const std::uint64_t rest = pick - f.scan_pct - f.read_pct;
  const unsigned writes = 100 - f.scan_pct - f.read_pct;
  if (rest < writes - writes / 4) return map_put(key, key * 3 + 1);
  return map_erase(key);
}

/// The kv workload: --script-len independent steps per atomic script.
Request next_kv_request(otb::Xorshift& rng, const Flags& f) {
  Request req{kv_step(rng, f)};
  for (unsigned i = 1; i < f.script_len; ++i) req.steps.push_back(kv_step(rng, f));
  return req;
}

/// Everything a workload needs to run: registered targets, a generator,
/// and ownership of whichever structures back them.
struct Workload {
  otb::service::Targets targets;
  RequestGen gen;
  std::function<void()> seed;  // deterministic baseline (recovery re-runs it)
  std::unique_ptr<otb::tx::OtbListMap> map;  // kv only
  std::unique_ptr<otb::service::scenarios::JobScheduler> sched;
  std::unique_ptr<otb::service::scenarios::SessionStore> store;
  std::unique_ptr<otb::service::scenarios::OrderBook> book;
};

Workload make_workload(const Flags& f) {
  Workload w;
  w.seed = [] {};
  const auto range = static_cast<std::uint64_t>(f.key_range);
  if (f.scenario == "kv") {
    w.map = std::make_unique<otb::tx::OtbListMap>();
    auto* map = w.map.get();
    w.seed = [map, &f] {
      for (std::int64_t k = 0; k < f.key_range; k += 2) map->put_seq(k, k);
    };
    w.targets = otb::service::Targets::standard(w.map.get());
    w.gen = [&f](otb::Xorshift& rng) { return next_kv_request(rng, f); };
  } else if (f.scenario == "scheduler") {
    // Claims race releases over a seeded job pool; guard aborts (empty
    // queue, job not leased) are benign contention outcomes.
    w.sched = std::make_unique<otb::service::scenarios::JobScheduler>();
    auto* sched0 = w.sched.get();
    w.seed = [sched0, &f] {
      for (std::int64_t j = 1; j <= f.key_range; ++j) sched0->seed_job(j);
    };
    w.targets = w.sched->targets();
    auto* sched = w.sched.get();
    w.gen = [sched, range](otb::Xorshift& rng) {
      const std::uint64_t pick = rng.next_bounded(100);
      if (pick < 50) {
        return sched->claim(static_cast<std::int64_t>(rng.next_bounded(64)));
      }
      const auto job = static_cast<std::int64_t>(1 + rng.next_bounded(range));
      return sched->release(job);
    };
  } else if (f.scenario == "session") {
    // rank == sid (one expiry bucket): create and expire stay symmetric, so
    // the sessions/TTL bijection holds throughout the run.
    w.store = std::make_unique<otb::service::scenarios::SessionStore>();
    w.targets = w.store->targets();
    auto* store = w.store.get();
    w.gen = [store, range](otb::Xorshift& rng) {
      const std::uint64_t pick = rng.next_bounded(100);
      const auto sid = static_cast<std::int64_t>(rng.next_bounded(range));
      if (pick < 45) return store->create(sid, sid * 7, /*expiry_rank=*/sid);
      if (pick < 90) return store->expire(/*rank=*/sid, sid);
      return store->scan_ttl(sid, sid + 16);
    };
  } else if (f.scenario == "orderbook") {
    // Makers dominate; match attempts use the optimistic expect-guarded
    // script against a guessed top of book, so most abort under drift —
    // exactly the contention profile the scenario exists to measure.
    w.book = std::make_unique<otb::service::scenarios::OrderBook>();
    w.targets = w.book->targets();
    auto* book = w.book.get();
    w.gen = [book, range](otb::Xorshift& rng) {
      const std::uint64_t pick = rng.next_bounded(100);
      const auto price = static_cast<std::int64_t>(100 + rng.next_bounded(range));
      if (pick < 35) return book->place_ask(price, /*qty=*/1);
      if (pick < 70) return book->place_bid(price, /*qty=*/1);
      if (pick < 85) return (pick & 1) ? book->best_ask() : book->best_bid();
      return book->match(price, price);
    };
  } else {
    std::fprintf(stderr, "unknown --scenario: %s\n", f.scenario.c_str());
    std::exit(2);
  }
  if (f.deadline_ms != 0) {
    RequestGen inner = std::move(w.gen);
    w.gen = [inner, &f](otb::Xorshift& rng) {
      Request req = inner(rng);
      req.deadline_ns = now_ns() + std::uint64_t{f.deadline_ms} * 1'000'000ull;
      return req;
    };
  }
  return w;
}

struct Tally {
  std::uint64_t ok = 0, overloaded = 0, expired = 0, failed = 0;
  std::vector<std::uint64_t> latencies_ns;  // kOk requests only

  void account(const ResponseFuture& fut) {
    switch (fut.status()) {
      case SvcStatus::kOk:
        ok += 1;
        latencies_ns.push_back(fut.latency_ns());
        break;
      case SvcStatus::kOverloaded: overloaded += 1; break;
      case SvcStatus::kExpired: expired += 1; break;
      default: failed += 1; break;
    }
  }

  void merge(Tally&& o) {
    ok += o.ok;
    overloaded += o.overloaded;
    expired += o.expired;
    failed += o.failed;
    latencies_ns.insert(latencies_ns.end(), o.latencies_ns.begin(),
                        o.latencies_ns.end());
  }
};

std::uint64_t percentile_ns(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(double(v.size()) - 1, p * double(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Closed loop: --clients threads, each with --window requests in flight.
Tally run_closed(Service& svc, const Flags& f, const RequestGen& gen) {
  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(f.clients);
  std::vector<std::thread> pool;
  for (unsigned c = 0; c < f.clients; ++c) {
    pool.emplace_back([&, c] {
      otb::Xorshift rng{f.seed * 977 + c + 1};
      Tally& t = tallies[c];
      std::deque<ResponseFuture> window;
      while (!stop.load(std::memory_order_acquire)) {
        while (window.size() < f.window) {
          window.push_back(svc.submit(gen(rng)));
        }
        window.front().wait();
        t.account(window.front());
        window.pop_front();
      }
      for (ResponseFuture& fut : window) {
        fut.wait();
        t.account(fut);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(f.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  return total;
}

/// Open loop: Poisson arrivals at --rate across --clients submitter
/// threads (each runs an independent process at rate/clients, which
/// superposes back to a Poisson process at the full rate).
Tally run_open(Service& svc, const Flags& f, const RequestGen& gen) {
  std::vector<Tally> tallies(f.clients);
  std::vector<std::thread> pool;
  const double per_thread_rate = f.rate / double(f.clients);
  for (unsigned c = 0; c < f.clients; ++c) {
    pool.emplace_back([&, c] {
      otb::Xorshift rng{f.seed * 31 + c + 1};
      Tally& t = tallies[c];
      std::vector<ResponseFuture> inflight;
      const std::uint64_t t_end =
          now_ns() + std::uint64_t{f.duration_ms} * 1'000'000ull;
      double next_arrival = double(now_ns());
      while (true) {
        // Exponential inter-arrival via inverse transform; u in (0,1].
        const double u =
            (double(rng.next_bounded(1u << 30)) + 1.0) / double(1u << 30);
        next_arrival += -std::log(u) / per_thread_rate * 1e9;
        if (next_arrival > double(t_end)) break;
        while (double(now_ns()) < next_arrival) {
          // Sub-ms gaps: yield rather than sleep to keep arrival jitter
          // below the service's batching timescale.
          std::this_thread::yield();
        }
        inflight.push_back(svc.submit(gen(rng)));
        // Opportunistically retire completed heads to bound memory.
        while (!inflight.empty() && inflight.front().done()) {
          t.account(inflight.front());
          inflight.erase(inflight.begin());
        }
      }
      for (ResponseFuture& fut : inflight) {
        fut.wait();
        t.account(fut);
      }
    });
  }
  for (auto& th : pool) th.join();
  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  const Flags f = parse(argc, argv);

  Workload w = make_workload(f);

  ServiceConfig cfg;
  cfg.workers = f.workers;
  cfg.batch_max = f.batch_max;
  cfg.queue_capacity = f.queue_cap;
  cfg.high_water = f.high_water;
  cfg.wal_dir = f.wal_dir;
  cfg.wal_checkpoint_ms = f.ckpt_ms;
  if (!otb::service::parse_wal_fsync(f.wal_fsync.c_str(), &cfg.wal_fsync)) {
    std::fprintf(stderr, "bad --wal-fsync: %s (off|group|always)\n",
                 f.wal_fsync.c_str());
    return 2;
  }
  Service svc(w.targets, cfg);
  if (f.recover) {
    // Structures start empty; recovery re-seeds through the same closure
    // the fresh run used, then replays the log tail on top.
    const otb::service::RecoveryReport r = svc.recover(w.seed);
    std::printf(
        "recover status=%s checkpoint_seq=%llu last_seq=%llu records=%llu "
        "ops=%llu segments=%llu truncated_tail=%d detail=\"%s\"\n",
        std::string(otb::service::to_string(r.status)).c_str(),
        static_cast<unsigned long long>(r.checkpoint_seq),
        static_cast<unsigned long long>(r.last_seq),
        static_cast<unsigned long long>(r.records_replayed),
        static_cast<unsigned long long>(r.ops_replayed),
        static_cast<unsigned long long>(r.segments_scanned),
        r.truncated_tail ? 1 : 0, r.detail.c_str());
    if (!r.ok()) return otb::service::recovery_exit_code(r.status);
  } else {
    w.seed();
  }
  svc.start();

  const std::uint64_t t0 = now_ns();
  Tally t =
      f.mode == "open" ? run_open(svc, f, w.gen) : run_closed(svc, f, w.gen);
  const double secs = double(now_ns() - t0) * 1e-9;
  svc.stop();

  const std::uint64_t total = t.ok + t.overloaded + t.expired + t.failed;
  const std::uint64_t p50 = percentile_ns(t.latencies_ns, 0.50);
  const std::uint64_t p99 = percentile_ns(t.latencies_ns, 0.99);
  std::printf(
      "mode=%s scenario=%s script_len=%u workers=%u clients=%u batch_max=%u "
      "rate=%.0f window=%u "
      "deadline_ms=%u duration_s=%.2f requests=%llu ok=%llu overloaded=%llu "
      "expired=%llu failed=%llu ok_per_sec=%.0f p50_us=%.1f p99_us=%.1f "
      "wal=%s\n",
      f.mode.c_str(), f.scenario.c_str(), f.script_len, f.workers, f.clients,
      f.batch_max, f.rate, f.window,
      f.deadline_ms, secs, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(t.ok),
      static_cast<unsigned long long>(t.overloaded),
      static_cast<unsigned long long>(t.expired),
      static_cast<unsigned long long>(t.failed),
      secs > 0 ? double(t.ok) / secs : 0.0, double(p50) * 1e-3,
      double(p99) * 1e-3,
      f.wal_dir.empty()
          ? "off"
          : std::string(otb::service::to_string(cfg.wal_fsync)).c_str());
  return t.ok == 0 ? 1 : 0;  // a load run that commits nothing is broken
}
