// Shared driver for the Chapter 5/6 STM micro-benchmarks: runs a
// transactional-structure workload across STM algorithms and thread counts,
// with the paper's "no-ops between transactions" knob.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchlib/driver.h"
#include "benchlib/table.h"
#include "common/rng.h"
#include "stm/stm.h"

namespace otb::bench {

/// Busy work between transactions (the paper inserts 100 no-ops to model
/// application think time).
inline void no_ops(unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    asm volatile("" ::: "memory");  // one un-elidable no-op per iteration
  }
}

/// One transactional operation on a structure: receives the context and the
/// already-drawn key, plus whether this op is a read.
template <typename Structure>
using StructOp =
    std::function<void(stm::Tx&, Structure&, std::int64_t key, bool read, Xorshift&)>;

struct StmSeriesOptions {
  unsigned read_pct = 50;
  unsigned noops_between = 0;
  std::int64_t key_range = 1024;
  stm::Config config{};
};

/// Measure one algorithm across the thread sweep.  `make_structure` builds
/// and seeds a fresh structure per thread count.
template <typename Structure>
std::vector<RunResult> run_stm_series(
    stm::AlgoKind kind, const std::vector<unsigned>& threads,
    const StmSeriesOptions& opt,
    const std::function<std::unique_ptr<Structure>()>& make_structure,
    const StructOp<Structure>& op) {
  std::vector<RunResult> results;
  for (unsigned t : threads) {
    auto structure = make_structure();
    stm::Runtime rt(kind, opt.config);
    results.push_back(run_fixed_duration(
        t, warmup_ms(), measure_ms(),
        [&](unsigned tid, const auto& phase, ThreadResult& out) {
          stm::TxThread th(rt);
          Xorshift rng{tid * 6151u + 17};
          while (phase() != Phase::kDone) {
            const auto key =
                std::int64_t(rng.next_bounded(std::uint64_t(opt.key_range)));
            const bool read = rng.chance_pct(opt.read_pct);
            out.aborts += rt.atomically(th, [&](stm::Tx& tx) {
              Xorshift inner = rng;  // retries replay the same operation
              op(tx, *structure, key, read, inner);
            }).aborts;
            rng.next();
            if (phase() == Phase::kMeasure) ++out.ops;
            if (opt.noops_between > 0) no_ops(opt.noops_between);
          }
          out.stats = th.tx().stats();
        }));
  }
  return results;
}

inline std::vector<std::string> thread_columns(const std::vector<unsigned>& t) {
  std::vector<std::string> cols;
  for (unsigned n : t) cols.push_back(std::to_string(n));
  return cols;
}

inline std::vector<double> throughputs(const std::vector<RunResult>& rs) {
  std::vector<double> v;
  for (const auto& r : rs) v.push_back(r.ops_per_sec);
  return v;
}

}  // namespace otb::bench
