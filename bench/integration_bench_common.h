// Shared driver for the Chapter-4 integration figures (4.2–4.3): pure-STM
// sets under NOrec/TL2 versus the same sets boosted through OTB-NOrec /
// OTB-TL2 contexts.
#pragma once

#include <string>
#include <vector>

#include "benchlib/driver.h"
#include "benchlib/table.h"
#include "common/rng.h"
#include "integration/otb_stm.h"
#include "stm/stm.h"

namespace otb::bench {

/// StmSet: a stmds structure (add/remove/contains(Tx&, Key) + add_seq).
/// OtbSet: the corresponding OTB structure.
template <typename StmSet, typename OtbSet>
void run_integration_figure(const std::string& figure, std::int64_t range) {
  const auto threads = thread_counts();
  std::vector<std::string> cols;
  for (unsigned t : threads) cols.push_back(std::to_string(t));

  struct Workload {
    const char* name;
    unsigned write_pct;
  };
  constexpr Workload kWorkloads[] = {{"80% add/remove, 20% contains", 80},
                                     {"50% add/remove, 50% contains", 50}};

  for (const Workload& w : kWorkloads) {
    SeriesTable table(figure + " — " + w.name + " (" +
                          std::to_string(range / 2) + " elems)",
                      "threads", cols);

    // Pure-STM baselines.
    for (const stm::AlgoKind kind : {stm::AlgoKind::kNOrec, stm::AlgoKind::kTL2}) {
      StmSet set;
      for (std::int64_t k = 0; k < range; k += 2) set.add_seq(k);
      stm::Runtime rt(kind);
      std::vector<double> row;
      for (unsigned t : threads) {
        row.push_back(
            run_fixed_duration(
                t, warmup_ms(), measure_ms(),
                [&](unsigned tid, const auto& phase, ThreadResult& out) {
                  stm::TxThread th(rt);
                  Xorshift rng{tid * 271u + 13};
                  while (phase() != Phase::kDone) {
                    const auto key =
                        std::int64_t(rng.next_bounded(std::uint64_t(range)));
                    const bool write = rng.chance_pct(w.write_pct);
                    const bool is_add = rng.chance_pct(50);
                    out.aborts += rt.atomically(th, [&](stm::Tx& tx) {
                      if (!write) {
                        set.contains(tx, key);
                      } else if (is_add) {
                        set.add(tx, key);
                      } else {
                        set.remove(tx, key);
                      }
                    }).aborts;
                    if (phase() == Phase::kMeasure) ++out.ops;
                  }
                })
                .ops_per_sec);
      }
      table.add_row(std::string(stm::to_string(kind)), row);
    }

    // OTB-boosted versions.
    for (const integration::HostAlgo host :
         {integration::HostAlgo::kOtbNOrec, integration::HostAlgo::kOtbTl2}) {
      OtbSet set;
      for (std::int64_t k = 0; k < range; k += 2) set.add_seq(k);
      integration::Runtime rt(host);
      std::vector<double> row;
      for (unsigned t : threads) {
        row.push_back(
            run_fixed_duration(
                t, warmup_ms(), measure_ms(),
                [&](unsigned tid, const auto& phase, ThreadResult& out) {
                  auto ctx = rt.make_tx();
                  Xorshift rng{tid * 617u + 29};
                  while (phase() != Phase::kDone) {
                    const auto key =
                        std::int64_t(rng.next_bounded(std::uint64_t(range)));
                    const bool write = rng.chance_pct(w.write_pct);
                    const bool is_add = rng.chance_pct(50);
                    out.aborts +=
                        rt.atomically(*ctx, [&](integration::OtbTx& tx) {
                          if (!write) {
                            set.contains(tx, key);
                          } else if (is_add) {
                            set.add(tx, key);
                          } else {
                            set.remove(tx, key);
                          }
                        }).aborts;
                    if (phase() == Phase::kMeasure) ++out.ops;
                  }
                })
                .ops_per_sec);
      }
      table.add_row(std::string(integration::to_string(host)), row);
    }

    table.print("tx/s");
  }
}

}  // namespace otb::bench
