// Figure 3.5: skip-list-based set, 64K elements (low contention), four
// workloads — the regime where OTB is up to 2x over pessimistic boosting.
#include "set_bench_common.h"
#include "cds/lazy_skiplist_set.h"
#include "otb/otb_skiplist_set.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_set_figure<otb::cds::LazySkipListSet, otb::tx::OtbSkipListSet,
                             otb::cds::LazySkipListSet>(
      "Fig 3.5 skip-list set (64K)", 131072);
  return 0;
}
