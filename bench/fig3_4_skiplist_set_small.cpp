// Figure 3.4: skip-list-based set, 512 elements, four workloads.
#include "set_bench_common.h"
#include "cds/lazy_skiplist_set.h"
#include "otb/otb_skiplist_set.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  otb::bench::run_set_figure<otb::cds::LazySkipListSet, otb::tx::OtbSkipListSet,
                             otb::cds::LazySkipListSet>(
      "Fig 3.4 skip-list set (small)", 1024);
  return 0;
}
