// Edge-case coverage across modules: empty structures, sentinel-adjacent
// keys, extreme values, descriptor reuse, oversubscribed epoch slots, and
// other boundaries the main suites do not hit.
#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "boosted/boosted_pq.h"
#include "boosted/boosted_runtime.h"
#include "cds/binary_heap.h"
#include "cds/lazy_list_set.h"
#include "cds/skiplist_pq.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"
#include "stm/stm.h"
#include "stmds/stm_dll.h"
#include "stmds/stm_hashmap.h"
#include "stmds/stm_rbtree.h"

namespace otb {
namespace {

TEST(EdgeCases, EmptyStructuresBehave) {
  tx::OtbListSet set;
  tx::OtbSkipListPQ pq;
  tx::OtbListMap map;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_FALSE(set.contains(t, 0));
    EXPECT_FALSE(set.remove(t, 0));
    std::int64_t v;
    EXPECT_FALSE(pq.remove_min(t, &v));
    EXPECT_FALSE(pq.min(t, &v));
    EXPECT_FALSE(map.get(t, 0, &v));
    EXPECT_FALSE(map.erase(t, 0));
  });
  EXPECT_EQ(set.size_unsafe(), 0u);
}

TEST(EdgeCases, NearSentinelKeys) {
  // Keys adjacent to the sentinel min/max must work in every structure.
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min() + 1;
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max() - 1;
  tx::OtbListSet set;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.add(t, lo));
    EXPECT_TRUE(set.add(t, hi));
    EXPECT_TRUE(set.add(t, 0));
  });
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.contains(t, lo));
    EXPECT_TRUE(set.contains(t, hi));
    EXPECT_TRUE(set.remove(t, lo));
    EXPECT_TRUE(set.remove(t, hi));
  });
  EXPECT_EQ(set.size_unsafe(), 1u);
}

TEST(EdgeCases, EmptyTransactionCommits) {
  tx::atomically([](tx::Transaction&) {});  // attaches nothing
  stm::Runtime rt(stm::AlgoKind::kNOrec);
  stm::TxThread th(rt);
  rt.atomically(th, [](stm::Tx&) {});
  EXPECT_EQ(th.tx().stats().commits, 1u);
}

TEST(EdgeCases, SingleElementPqDrainRefill) {
  for (int round = 0; round < 3; ++round) {
    tx::OtbHeapPQ pq;
    tx::atomically([&](tx::Transaction& t) { pq.add(t, 42); });
    std::int64_t v = 0;
    tx::atomically([&](tx::Transaction& t) {
      ASSERT_TRUE(pq.remove_min(t, &v));
      EXPECT_FALSE(pq.remove_min(t, &v));  // drained within the same tx
      pq.add(t, 43);                       // refill within the same tx
      ASSERT_TRUE(pq.remove_min(t, &v));
      EXPECT_EQ(v, 43);
    });
    EXPECT_EQ(pq.size_unsafe(), 0u);
  }
}

TEST(EdgeCases, SkipListPqLocalThenSharedInterleave) {
  tx::OtbSkipListPQ pq;
  pq.add_seq(10);
  pq.add_seq(30);
  std::vector<std::int64_t> order;
  tx::atomically([&](tx::Transaction& t) {
    order.clear();
    ASSERT_TRUE(pq.add(t, 20));  // local, between the two shared keys
    std::int64_t v;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(pq.remove_min(t, &v));
      order.push_back(v);
    }
    EXPECT_FALSE(pq.remove_min(t, &v));
  });
  EXPECT_TRUE((order == std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_EQ(pq.size_unsafe(), 0u);
}

TEST(EdgeCases, MapPutSameKeyManyTimesInOneTx) {
  tx::OtbListMap map;
  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t v = 0; v < 20; ++v) map.put(t, 1, v);
  });
  auto snap = map.snapshot_unsafe();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second, 19);
}

TEST(EdgeCases, RbTreeDeleteRootRepeatedly) {
  stmds::StmRbTree tree;
  for (std::int64_t k = 0; k < 64; ++k) ASSERT_TRUE(tree.add_seq(k));
  // Removing ascending keys repeatedly exercises root transplants.
  for (std::int64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(tree.remove_seq(k));
    ASSERT_GT(tree.check_invariants(), 0) << "after removing " << k;
  }
  EXPECT_EQ(tree.size_unsafe(), 0u);
}

TEST(EdgeCases, HashMapCollidingBucketChains) {
  stm::Runtime rt(stm::AlgoKind::kNOrec);
  stm::TxThread th(rt);
  stmds::StmHashMap map(1);  // single bucket: worst-case chain
  for (std::int64_t k = 0; k < 100; ++k) {
    rt.atomically(th, [&](stm::Tx& tx) { EXPECT_TRUE(map.put(tx, k, k * 2)); });
  }
  EXPECT_EQ(map.size_unsafe(), 100u);
  for (std::int64_t k = 0; k < 100; ++k) {
    std::int64_t v = 0;
    rt.atomically(th, [&](stm::Tx& tx) { EXPECT_TRUE(map.get(tx, k, &v)); });
    EXPECT_EQ(v, k * 2);
  }
}

TEST(EdgeCases, DllRemoveHeadAndTailNeighbours) {
  stm::Runtime rt(stm::AlgoKind::kNOrec);
  stm::TxThread th(rt);
  stmds::StmDll dll;
  for (std::int64_t k : {1, 2, 3}) dll.add_seq(k);
  rt.atomically(th, [&](stm::Tx& tx) {
    EXPECT_TRUE(dll.remove(tx, 1));  // head-adjacent
    EXPECT_TRUE(dll.remove(tx, 3));  // tail-adjacent
  });
  EXPECT_EQ(dll.size_unsafe(), 1u);
  EXPECT_TRUE(dll.links_consistent_unsafe());
}

TEST(EdgeCases, BinaryHeapDuplicateKeys) {
  cds::BinaryHeap heap;
  for (int i = 0; i < 10; ++i) heap.add(7);
  heap.add(3);
  EXPECT_EQ(heap.remove_min(), 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(heap.remove_min(), 7);
  EXPECT_TRUE(heap.empty());
}

TEST(EdgeCases, BoostedPqMinBlocksThenObservesAdds) {
  boosted::BoostedHeapPQ pq;
  boosted::atomically([&](boosted::BoostedTx& t) {
    pq.add(t, 5);
    std::int64_t v = 0;
    ASSERT_TRUE(pq.min(t, &v));  // upgrade read->write lock path
    EXPECT_EQ(v, 5);
    pq.add(t, 2);
    ASSERT_TRUE(pq.min(t, &v));
    EXPECT_EQ(v, 2);
  });
}

TEST(EdgeCases, ManyShortLivedThreadsRecycleEpochSlots) {
  // More thread lifetimes than EBR slots: slots must recycle cleanly.
  cds::LazyListSet set;
  for (int wave = 0; wave < 8; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 24; ++t) {
      threads.emplace_back([&, t] {
        set.add(t);
        set.remove(t);
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(set.size_unsafe(), 0u);
}

TEST(EdgeCases, StmRuntimeManySequentialThreadHandles) {
  stm::Runtime rt(stm::AlgoKind::kTL2);
  stm::TVar<std::int64_t> x{0};
  for (int i = 0; i < 100; ++i) {
    stm::TxThread th(rt);
    rt.atomically(th, [&](stm::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  EXPECT_EQ(x.load_direct(), 100);
}

TEST(EdgeCases, NegativeKeysEverywhere) {
  tx::OtbSkipListSet set;
  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = -10; k <= -1; ++k) EXPECT_TRUE(set.add(t, k));
  });
  EXPECT_EQ(set.size_unsafe(), 10u);
  auto snap = set.snapshot_unsafe();
  EXPECT_EQ(snap.front(), -10);
  EXPECT_EQ(snap.back(), -1);
}

}  // namespace
}  // namespace otb
