// Tests for the simulated-HTM substrate (§7.1.1): abort taxonomy
// (capacity / conflict / spurious), Hybrid NOrec fast-path + fallback
// equivalence, and the OTB HTM-commit runtime's semantics and statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "htm/hybrid_norec.h"
#include "htm/sim_htm.h"
#include "otb/htm_commit.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"

namespace otb {
namespace {

TEST(SimHtm, ReadWriteCommitRoundTrip) {
  SeqLock clock;
  stm::TVar<std::int64_t> x{5};
  htm::HtmTx tx(clock);
  ASSERT_TRUE(tx.begin());
  stm::Word v = 0;
  ASSERT_TRUE(tx.read(&x.word(), &v));
  EXPECT_EQ(stm::from_word<std::int64_t>(v), 5);
  ASSERT_TRUE(tx.write(&x.word(), stm::to_word<std::int64_t>(6)));
  ASSERT_TRUE(tx.read(&x.word(), &v));  // read-own-write
  EXPECT_EQ(stm::from_word<std::int64_t>(v), 6);
  EXPECT_EQ(x.load_direct(), 5);  // buffered until commit
  ASSERT_TRUE(tx.commit());
  EXPECT_EQ(x.load_direct(), 6);
}

TEST(SimHtm, CapacityAbortOnOversizedFootprint) {
  SeqLock clock;
  std::vector<stm::TVar<std::int64_t>> vars(htm::HtmTx::kWriteCapacity + 1);
  htm::HtmTx tx(clock);
  ASSERT_TRUE(tx.begin());
  bool ok = true;
  for (auto& v : vars) {
    ok = tx.write(&v.word(), 1);
    if (!ok) break;
  }
  EXPECT_FALSE(ok);
  EXPECT_EQ(tx.reason(), htm::AbortReason::kCapacity);
}

TEST(SimHtm, ConflictAbortWhenClockMoves) {
  SeqLock clock;
  stm::TVar<std::int64_t> x{0};
  htm::HtmTx tx(clock);
  ASSERT_TRUE(tx.begin());
  stm::Word v;
  ASSERT_TRUE(tx.read(&x.word(), &v));
  // A concurrent committer moves the clock.
  ASSERT_TRUE(clock.try_acquire(clock.load()));
  clock.release();
  EXPECT_FALSE(tx.read(&x.word(), &v));  // eager detection on next access
  EXPECT_EQ(tx.reason(), htm::AbortReason::kConflict);
}

TEST(SimHtm, CommitFailsIntoOddClock) {
  SeqLock clock;
  stm::TVar<std::int64_t> x{0};
  htm::HtmTx tx(clock);
  ASSERT_TRUE(tx.begin());
  ASSERT_TRUE(tx.write(&x.word(), 1));
  ASSERT_TRUE(clock.try_acquire(clock.load()));  // someone is committing
  EXPECT_FALSE(tx.commit());
  EXPECT_EQ(tx.reason(), htm::AbortReason::kConflict);
  clock.release();
  EXPECT_EQ(x.load_direct(), 0);  // nothing leaked
}

TEST(HybridNOrec, CountersConservedAcrossPaths) {
  htm::HybridNOrecRuntime rt;
  stm::TVar<std::int64_t> counter{0};
  constexpr int kThreads = 4, kIters = 400;
  std::atomic<std::uint64_t> hw_commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto th = rt.make_thread();
      for (int i = 0; i < kIters; ++i) {
        rt.atomically(*th, [&](stm::Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
      hw_commits.fetch_add(th->htm_stats.commits);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load_direct(), std::int64_t(kThreads) * kIters);
  // The fast path must actually be exercised.
  EXPECT_GT(hw_commits.load(), 0u);
}

TEST(HybridNOrec, OversizedTransactionsFallBackToSoftware) {
  htm::HybridNOrecRuntime rt;
  constexpr std::size_t kWords = htm::HtmTx::kWriteCapacity * 2;
  stm::TArray<std::int64_t> mem(kWords, 0);
  auto th = rt.make_thread();
  rt.atomically(*th, [&](stm::Tx& tx) {
    for (std::size_t w = 0; w < kWords; ++w) tx.write(mem[w], std::int64_t(w));
  });
  for (std::size_t w = 0; w < kWords; ++w) {
    EXPECT_EQ(mem[w].load_direct(), std::int64_t(w));
  }
  EXPECT_EQ(th->htm_stats.commits, 0u);  // could not fit in hardware
  EXPECT_GT(th->htm_stats.capacity_aborts, 0u);
  EXPECT_EQ(th->sw.stats().commits, 1u);
}

TEST(HybridNOrec, TornSnapshotsNeverObserved) {
  htm::HybridNOrecRuntime rt;
  constexpr std::size_t kWords = 8;
  stm::TArray<std::int64_t> mem(kWords, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto th = rt.make_thread();
    for (std::int64_t g = 1; g <= 300; ++g) {
      rt.atomically(*th, [&](stm::Tx& tx) {
        for (std::size_t w = 0; w < kWords; ++w) tx.write(mem[w], g);
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    auto th = rt.make_thread();
    while (!stop.load()) {
      bool uniform = true;
      rt.atomically(*th, [&](stm::Tx& tx) {
        const std::int64_t first = tx.read(mem[0]);
        uniform = true;
        for (std::size_t w = 1; w < kWords; ++w) {
          if (tx.read(mem[w]) != first) uniform = false;
        }
      });
      EXPECT_TRUE(uniform);
    }
  });
  writer.join();
  reader.join();
}

TEST(OtbHtmCommit, SetSemanticsUnchanged) {
  tx::HtmCommitRuntime rt;
  tx::OtbListSet set;
  bool r = false;
  rt.atomically([&](tx::HtmCommitRuntime::Transaction& t) { r = set.add(t, 5); });
  EXPECT_TRUE(r);
  rt.atomically([&](tx::HtmCommitRuntime::Transaction& t) { r = set.add(t, 5); });
  EXPECT_FALSE(r);
  rt.atomically([&](tx::HtmCommitRuntime::Transaction& t) {
    EXPECT_TRUE(set.remove(t, 5));
    EXPECT_TRUE(set.add(t, 6));
  });
  EXPECT_TRUE((set.snapshot_unsafe() == std::vector<std::int64_t>{6}));
  EXPECT_GT(rt.stats().htm_commits.load(), 0u);
}

TEST(OtbHtmCommit, LargeCommitsTakeTheFallback) {
  tx::HtmCommitRuntime rt;
  tx::OtbSkipListSet set;
  rt.atomically([&](tx::HtmCommitRuntime::Transaction& t) {
    for (std::int64_t k = 0; k < 40; ++k) {  // > kWriteCapacity deferred adds
      ASSERT_TRUE(set.add(t, k));
    }
  });
  EXPECT_EQ(set.size_unsafe(), 40u);
  EXPECT_EQ(rt.stats().htm_commits.load(), 0u);
  EXPECT_EQ(rt.stats().fallback_commits.load(), 1u);
}

TEST(OtbHtmCommit, ConcurrentNetCountConserved) {
  tx::HtmCommitRuntime rt;
  tx::OtbSkipListSet set;
  constexpr int kThreads = 4, kIters = 500, kRange = 64;
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng{std::uint64_t(t) * 3 + 11};
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = std::int64_t(rng.next_bounded(kRange));
        bool ok = false;
        if (rng.chance_pct(50)) {
          rt.atomically(
              [&](tx::HtmCommitRuntime::Transaction& tr) { ok = set.add(tr, key); });
          if (ok) ++local;
        } else {
          rt.atomically([&](tx::HtmCommitRuntime::Transaction& tr) {
            ok = set.remove(tr, key);
          });
          if (ok) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), std::size_t(net.load()));
  EXPECT_GT(rt.stats().htm_commits.load(), 0u);
}

}  // namespace
}  // namespace otb
