// Tests for the Chapter-4 integration layer: transactions that mix OTB
// data-structure operations with raw STM memory reads/writes must stay
// atomic and consistent, under both host algorithms (OTB-NOrec, OTB-TL2).
// Includes the Algorithm 7 test case the paper uses to justify correctness:
// transactionally maintained success counters must match the set's state.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "integration/otb_stm.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/otb_skiplist_set.h"

namespace otb::integration {
namespace {

class IntegrationTest : public ::testing::TestWithParam<HostAlgo> {};

INSTANTIATE_TEST_SUITE_P(Hosts, IntegrationTest,
                         ::testing::Values(HostAlgo::kOtbNOrec, HostAlgo::kOtbTl2),
                         [](const auto& info) {
                           return info.param == HostAlgo::kOtbNOrec ? "OtbNOrec"
                                                                    : "OtbTl2";
                         });

TEST_P(IntegrationTest, MixedSetOpAndMemoryWrite) {
  Runtime rt(GetParam());
  tx::OtbListSet set;
  stm::TVar<std::int64_t> added{0};
  auto ctx = rt.make_tx();
  rt.atomically(*ctx, [&](OtbTx& tx) {
    if (set.add(tx, 7)) {
      tx.write(added, tx.read(added) + 1);
    }
  });
  EXPECT_EQ(set.size_unsafe(), 1u);
  EXPECT_EQ(added.load_direct(), 1);
  // Second insertion fails, counter untouched.
  rt.atomically(*ctx, [&](OtbTx& tx) {
    if (set.add(tx, 7)) {
      tx.write(added, tx.read(added) + 1);
    }
  });
  EXPECT_EQ(added.load_direct(), 1);
}

TEST_P(IntegrationTest, Algorithm7CountersMatchSetState) {
  // The paper's integration test case (§4.3.3): per-outcome counters updated
  // in the same transaction as the set operation; at quiescence the counters
  // must exactly reconcile with the set contents.
  Runtime rt(GetParam());
  tx::OtbSkipListSet set;
  stm::TVar<std::int64_t> ok_add{0}, fail_add{0}, ok_rem{0}, fail_rem{0};
  constexpr int kThreads = 4, kIters = 250, kRange = 48;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = rt.make_tx();
      Xorshift rng{std::uint64_t(t) * 7919 + 13};
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = std::int64_t(rng.next_bounded(kRange));
        if (rng.chance_pct(50)) {
          rt.atomically(*ctx, [&](OtbTx& tx) {
            if (set.add(tx, key)) {
              tx.write(ok_add, tx.read(ok_add) + 1);
            } else {
              tx.write(fail_add, tx.read(fail_add) + 1);
            }
          });
        } else {
          rt.atomically(*ctx, [&](OtbTx& tx) {
            if (set.remove(tx, key)) {
              tx.write(ok_rem, tx.read(ok_rem) + 1);
            } else {
              tx.write(fail_rem, tx.read(fail_rem) + 1);
            }
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_add.load_direct() + fail_add.load_direct() +
                ok_rem.load_direct() + fail_rem.load_direct(),
            std::int64_t(kThreads) * kIters);
  EXPECT_EQ(std::size_t(ok_add.load_direct() - ok_rem.load_direct()),
            set.size_unsafe());
}

TEST_P(IntegrationTest, SetAndMemoryAbortTogether) {
  Runtime rt(GetParam());
  tx::OtbListSet set;
  stm::TVar<std::int64_t> x{0};
  auto ctx = rt.make_tx();
  int attempts = 0;
  rt.atomically(*ctx, [&](OtbTx& tx) {
    set.add(tx, 1);
    tx.write(x, std::int64_t{99});
    if (++attempts == 1) throw TxAbort{};
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(set.size_unsafe(), 1u);
  EXPECT_EQ(x.load_direct(), 99);
}

TEST_P(IntegrationTest, TwoStructuresAndMemoryCompose) {
  // Producer/consumer over an OTB priority queue plus an OTB set plus a
  // memory counter: the whole triple must move atomically.
  Runtime rt(GetParam());
  tx::OtbSkipListPQ queue;
  tx::OtbSkipListSet done;
  stm::TVar<std::int64_t> processed{0};
  for (std::int64_t k = 1; k <= 40; ++k) queue.add_seq(k);
  constexpr int kThreads = 2;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto ctx = rt.make_tx();
      for (;;) {
        bool empty = false;
        rt.atomically(*ctx, [&](OtbTx& tx) {
          std::int64_t v;
          if (!queue.remove_min(tx, &v)) {
            empty = true;
            return;
          }
          ASSERT_TRUE(done.add(tx, v));
          tx.write(processed, tx.read(processed) + 1);
        });
        if (empty) break;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(processed.load_direct(), 40);
  EXPECT_EQ(done.size_unsafe(), 40u);
  EXPECT_EQ(queue.size_unsafe(), 0u);
}

TEST_P(IntegrationTest, ReadOnlyMixedTransactionsAreConsistent) {
  Runtime rt(GetParam());
  tx::OtbListSet set;
  stm::TVar<std::int64_t> count{0};  // invariant: count == |set|
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto ctx = rt.make_tx();
    Xorshift rng{77};
    for (int i = 0; i < 300; ++i) {
      const std::int64_t key = std::int64_t(rng.next_bounded(32));
      rt.atomically(*ctx, [&](OtbTx& tx) {
        if (set.add(tx, key)) {
          tx.write(count, tx.read(count) + 1);
        } else if (set.remove(tx, key)) {
          tx.write(count, tx.read(count) - 1);
        }
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    auto ctx = rt.make_tx();
    Xorshift rng{78};
    while (!stop.load()) {
      std::int64_t observed = -1;
      std::int64_t probe_hits = 0;
      rt.atomically(*ctx, [&](OtbTx& tx) {
        observed = tx.read(count);
        probe_hits = 0;
        for (std::int64_t k = 0; k < 32; ++k) {
          if (set.contains(tx, k)) ++probe_hits;
        }
      });
      EXPECT_EQ(observed, probe_hits) << "count/set snapshot diverged";
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(std::size_t(count.load_direct()), set.size_unsafe());
}

}  // namespace
}  // namespace otb::integration
