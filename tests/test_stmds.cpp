// Tests for the pure-STM data structures (list, skip list, red-black tree,
// hash map, doubly linked list) across representative algorithms: oracle
// equivalence single-threaded, invariants under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/stm.h"
#include "stmds/stm_dll.h"
#include "stmds/stm_hashmap.h"
#include "stmds/stm_list.h"
#include "stmds/stm_rbtree.h"
#include "stmds/stm_skiplist.h"

namespace otb::stmds {
namespace {

using stm::AlgoKind;
using stm::Runtime;
using stm::Tx;
using stm::TxThread;

class StmDsTest : public ::testing::TestWithParam<AlgoKind> {};

INSTANTIATE_TEST_SUITE_P(Algos, StmDsTest,
                         ::testing::Values(AlgoKind::kNOrec, AlgoKind::kTL2,
                                           AlgoKind::kRTC, AlgoKind::kRInval),
                         [](const auto& info) {
                           return std::string(stm::to_string(info.param));
                         });

template <typename SetT>
void set_oracle_check(Runtime& rt) {
  SetT set;
  std::set<std::int64_t> oracle;
  TxThread th(rt);
  Xorshift rng{31337};
  for (int i = 0; i < 1200; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next_bounded(128));
    bool got = false;
    switch (rng.next_bounded(3)) {
      case 0:
        rt.atomically(th, [&](Tx& tx) { got = set.add(tx, key); });
        EXPECT_EQ(got, oracle.insert(key).second);
        break;
      case 1:
        rt.atomically(th, [&](Tx& tx) { got = set.remove(tx, key); });
        EXPECT_EQ(got, oracle.erase(key) == 1);
        break;
      default:
        rt.atomically(th, [&](Tx& tx) { got = set.contains(tx, key); });
        EXPECT_EQ(got, oracle.count(key) == 1);
        break;
    }
  }
  EXPECT_EQ(set.size_unsafe(), oracle.size());
}

TEST_P(StmDsTest, ListMatchesOracle) {
  Runtime rt(GetParam());
  set_oracle_check<StmList>(rt);
}

TEST_P(StmDsTest, SkipListMatchesOracle) {
  Runtime rt(GetParam());
  set_oracle_check<StmSkipList>(rt);
}

TEST_P(StmDsTest, RbTreeMatchesOracleAndStaysBalanced) {
  Runtime rt(GetParam());
  StmRbTree tree;
  std::set<std::int64_t> oracle;
  TxThread th(rt);
  Xorshift rng{999};
  for (int i = 0; i < 1500; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next_bounded(256));
    bool got = false;
    switch (rng.next_bounded(3)) {
      case 0:
        rt.atomically(th, [&](Tx& tx) { got = tree.add(tx, key); });
        ASSERT_EQ(got, oracle.insert(key).second) << "i=" << i;
        break;
      case 1:
        rt.atomically(th, [&](Tx& tx) { got = tree.remove(tx, key); });
        ASSERT_EQ(got, oracle.erase(key) == 1) << "i=" << i;
        break;
      default:
        rt.atomically(th, [&](Tx& tx) { got = tree.contains(tx, key); });
        ASSERT_EQ(got, oracle.count(key) == 1) << "i=" << i;
        break;
    }
    if (i % 100 == 0) {
      ASSERT_GT(tree.check_invariants(), 0) << "RB violation at i=" << i;
    }
  }
  EXPECT_EQ(tree.size_unsafe(), oracle.size());
  EXPECT_GT(tree.check_invariants(), 0);
}

TEST_P(StmDsTest, RbTreeConcurrentMixKeepsInvariants) {
  Runtime rt(GetParam());
  StmRbTree tree;
  for (std::int64_t k = 0; k < 256; k += 2) ASSERT_TRUE(tree.add_seq(k));
  constexpr int kThreads = 4, kIters = 300;
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxThread th(rt);
      Xorshift rng{std::uint64_t(t) * 271 + 5};
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto key = static_cast<std::int64_t>(rng.next_bounded(256));
        bool got = false;
        if (rng.chance_pct(50)) {
          rt.atomically(th, [&](Tx& tx) { got = tree.add(tx, key); });
          if (got) ++local;
        } else {
          rt.atomically(th, [&](Tx& tx) { got = tree.remove(tx, key); });
          if (got) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size_unsafe(), std::size_t(128 + net.load()));
  EXPECT_GT(tree.check_invariants(), 0);
}

TEST_P(StmDsTest, HashMapMatchesOracle) {
  Runtime rt(GetParam());
  StmHashMap map(64);
  std::map<std::int64_t, std::int64_t> oracle;
  TxThread th(rt);
  Xorshift rng{555};
  for (int i = 0; i < 1200; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next_bounded(96));
    const auto val = static_cast<std::int64_t>(rng.next());
    bool got = false;
    std::int64_t out = 0;
    switch (rng.next_bounded(3)) {
      case 0:
        rt.atomically(th, [&](Tx& tx) { got = map.put(tx, key, val); });
        EXPECT_EQ(got, oracle.insert_or_assign(key, val).second);
        break;
      case 1:
        rt.atomically(th, [&](Tx& tx) { got = map.erase(tx, key); });
        EXPECT_EQ(got, oracle.erase(key) == 1);
        break;
      default:
        rt.atomically(th, [&](Tx& tx) { got = map.get(tx, key, &out); });
        EXPECT_EQ(got, oracle.count(key) == 1);
        if (got) {
          EXPECT_EQ(out, oracle[key]);
        }
        break;
    }
  }
  EXPECT_EQ(map.size_unsafe(), oracle.size());
}

TEST_P(StmDsTest, DllKeepsMirroredLinks) {
  Runtime rt(GetParam());
  StmDll dll;
  constexpr int kThreads = 4, kIters = 300;
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxThread th(rt);
      Xorshift rng{std::uint64_t(t) * 41 + 11};
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto key = static_cast<std::int64_t>(rng.next_bounded(64));
        bool got = false;
        if (rng.chance_pct(50)) {
          rt.atomically(th, [&](Tx& tx) { got = dll.add(tx, key); });
          if (got) ++local;
        } else {
          rt.atomically(th, [&](Tx& tx) { got = dll.remove(tx, key); });
          if (got) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(dll.size_unsafe(), std::size_t(net.load()));
  EXPECT_TRUE(dll.links_consistent_unsafe());
}

TEST(StmDsSeq, RbTreeSequentialHelpersWork) {
  StmRbTree tree;
  for (std::int64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree.add_seq(k));
  EXPECT_EQ(tree.size_unsafe(), 1000u);
  EXPECT_GT(tree.check_invariants(), 0);
  for (std::int64_t k = 0; k < 1000; k += 2) ASSERT_TRUE(tree.remove_seq(k));
  EXPECT_EQ(tree.size_unsafe(), 500u);
  EXPECT_GT(tree.check_invariants(), 0);
}

}  // namespace
}  // namespace otb::stmds
