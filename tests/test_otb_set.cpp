// Tests for the OTB sets (linked-list and skip-list): transactional
// semantics, read-own-writes, elimination, multi-op commit ordering
// (Fig 3.2 scenarios), abort/rollback, composition of two structures in one
// transaction, and concurrent oracle-checked stress.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"

namespace otb {
namespace {

template <typename SetT>
class OtbSetTest : public ::testing::Test {};

using SetTypes = ::testing::Types<tx::OtbListSet, tx::OtbSkipListSet>;
TYPED_TEST_SUITE(OtbSetTest, SetTypes);

TYPED_TEST(OtbSetTest, SingleOpTransactions) {
  TypeParam set;
  bool r = false;
  tx::atomically([&](tx::Transaction& t) { r = set.add(t, 5); });
  EXPECT_TRUE(r);
  tx::atomically([&](tx::Transaction& t) { r = set.add(t, 5); });
  EXPECT_FALSE(r);
  tx::atomically([&](tx::Transaction& t) { r = set.contains(t, 5); });
  EXPECT_TRUE(r);
  tx::atomically([&](tx::Transaction& t) { r = set.remove(t, 5); });
  EXPECT_TRUE(r);
  tx::atomically([&](tx::Transaction& t) { r = set.contains(t, 5); });
  EXPECT_FALSE(r);
  EXPECT_EQ(set.size_unsafe(), 0u);
}

TYPED_TEST(OtbSetTest, ReadOwnWrites) {
  // §3.1 Rule 2: the second add of x in one transaction must fail, a
  // contains after a pending add must succeed, and a contains after a
  // pending remove must fail — all before anything is published.
  TypeParam set;
  set.add_seq(50);
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.add(t, 10));
    EXPECT_FALSE(set.add(t, 10));
    EXPECT_TRUE(set.contains(t, 10));
    EXPECT_TRUE(set.remove(t, 50));
    EXPECT_FALSE(set.contains(t, 50));
    EXPECT_FALSE(set.remove(t, 50));
    // Nothing is published yet: the shared structure is unchanged.
    EXPECT_EQ(set.size_unsafe(), 1u);
  });
  EXPECT_TRUE(set.snapshot_unsafe() == std::vector<std::int64_t>{10});
}

TYPED_TEST(OtbSetTest, AddThenRemoveEliminates) {
  TypeParam set;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.add(t, 7));
    EXPECT_TRUE(set.remove(t, 7));  // eliminates the pending add
    EXPECT_FALSE(set.contains(t, 7));
  });
  EXPECT_EQ(set.size_unsafe(), 0u);
}

TYPED_TEST(OtbSetTest, RemoveThenAddEliminates) {
  TypeParam set;
  set.add_seq(7);
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.remove(t, 7));
    EXPECT_TRUE(set.add(t, 7));  // eliminates the pending remove
    EXPECT_TRUE(set.contains(t, 7));
  });
  EXPECT_TRUE(set.snapshot_unsafe() == std::vector<std::int64_t>{7});
}

TYPED_TEST(OtbSetTest, MultipleAddsBetweenSameNodes) {
  // Fig 3.2(a): several keys inserted between the same (pred, curr) pair in
  // one transaction; descending commit order must chain them correctly.
  TypeParam set;
  set.add_seq(1);
  set.add_seq(5);
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.add(t, 2));
    EXPECT_TRUE(set.add(t, 3));
    EXPECT_TRUE(set.add(t, 4));
  });
  EXPECT_TRUE((set.snapshot_unsafe() == std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

TYPED_TEST(OtbSetTest, AddAndRemoveAdjacentKeys) {
  // Fig 3.2(b): add 4 and remove 5 in the same transaction — 4 must link to
  // 5's successor, not to the removed node.
  TypeParam set;
  for (std::int64_t k : {1, 3, 5, 6}) set.add_seq(k);
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.add(t, 4));
    EXPECT_TRUE(set.remove(t, 5));
  });
  EXPECT_TRUE((set.snapshot_unsafe() == std::vector<std::int64_t>{1, 3, 4, 6}));
}

TYPED_TEST(OtbSetTest, AdjacentRemovesInOneTransaction) {
  TypeParam set;
  for (std::int64_t k : {1, 2, 3, 4, 5}) set.add_seq(k);
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.remove(t, 3));
    EXPECT_TRUE(set.remove(t, 4));
    EXPECT_TRUE(set.remove(t, 2));
  });
  EXPECT_TRUE((set.snapshot_unsafe() == std::vector<std::int64_t>{1, 5}));
}

TYPED_TEST(OtbSetTest, UserAbortRollsBackEverything) {
  TypeParam set;
  set.add_seq(1);
  int attempts = 0;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.add(t, 2));
    EXPECT_TRUE(set.remove(t, 1));
    if (++attempts == 1) throw TxAbort{};  // force one retry
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_TRUE((set.snapshot_unsafe() == std::vector<std::int64_t>{2}));
}

TYPED_TEST(OtbSetTest, TwoSetsComposeAtomically) {
  // Move a key between two sets; concurrent movers must never observe (or
  // produce) a state where the key is in both or neither.
  TypeParam a, b;
  a.add_seq(99);
  constexpr int kIters = 300;
  std::thread mover1([&] {
    for (int i = 0; i < kIters; ++i) {
      tx::atomically([&](tx::Transaction& t) {
        if (a.remove(t, 99)) {
          ASSERT_TRUE(b.add(t, 99));
        }
      });
    }
  });
  std::thread mover2([&] {
    for (int i = 0; i < kIters; ++i) {
      tx::atomically([&](tx::Transaction& t) {
        if (b.remove(t, 99)) {
          ASSERT_TRUE(a.add(t, 99));
        }
      });
    }
  });
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop) {
      bool in_a = false, in_b = false;
      tx::atomically([&](tx::Transaction& t) {
        in_a = a.contains(t, 99);
        in_b = b.contains(t, 99);
      });
      EXPECT_TRUE(in_a != in_b) << "key must be in exactly one set";
    }
  });
  mover1.join();
  mover2.join();
  stop = true;
  observer.join();
  EXPECT_EQ(a.size_unsafe() + b.size_unsafe(), 1u);
}

TYPED_TEST(OtbSetTest, ConcurrentStressMatchesNetCount) {
  TypeParam set;
  constexpr int kThreads = 4, kIters = 1500, kRange = 128;
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng{std::uint64_t(t) * 31 + 7};
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = std::int64_t(rng.next_bounded(kRange));
        bool ok = false;
        if (rng.chance_pct(50)) {
          tx::atomically([&](tx::Transaction& tr) { ok = set.add(tr, key); });
          if (ok) ++local;
        } else {
          tx::atomically([&](tx::Transaction& tr) { ok = set.remove(tr, key); });
          if (ok) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), std::size_t(net.load()));
}

TYPED_TEST(OtbSetTest, TransactionalOpsMatchSequentialOracle) {
  // Single-threaded property test: a random program of transactions (1–5
  // ops each) must behave exactly like the same program applied to std::set.
  TypeParam set;
  std::set<std::int64_t> oracle;
  Xorshift rng{2024};
  for (int round = 0; round < 400; ++round) {
    const unsigned ops = 1 + rng.next_bounded(5);
    std::vector<std::pair<unsigned, std::int64_t>> program;
    for (unsigned i = 0; i < ops; ++i) {
      program.emplace_back(rng.next_bounded(3),
                           static_cast<std::int64_t>(rng.next_bounded(50)));
    }
    std::vector<bool> tx_results, oracle_results;
    tx::atomically([&](tx::Transaction& t) {
      tx_results.clear();
      for (auto [op, key] : program) {
        switch (op) {
          case 0:
            tx_results.push_back(set.add(t, key));
            break;
          case 1:
            tx_results.push_back(set.remove(t, key));
            break;
          default:
            tx_results.push_back(set.contains(t, key));
            break;
        }
      }
    });
    for (auto [op, key] : program) {
      switch (op) {
        case 0:
          oracle_results.push_back(oracle.insert(key).second);
          break;
        case 1:
          oracle_results.push_back(oracle.erase(key) == 1);
          break;
        default:
          oracle_results.push_back(oracle.count(key) == 1);
          break;
      }
    }
    ASSERT_EQ(tx_results, oracle_results) << "round " << round;
    auto snap = set.snapshot_unsafe();
    ASSERT_TRUE(std::equal(snap.begin(), snap.end(), oracle.begin(), oracle.end()))
        << "round " << round;
    ASSERT_EQ(snap.size(), oracle.size());
  }
}

}  // namespace
}  // namespace otb
