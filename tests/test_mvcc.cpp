// Tests for the multi-version read layer (src/otb/mv.h): bounded version
// chains, snapshot-stamp draws, the abort-free snapshot_read entry point
// with its miss fallback contract, OTB_MV_VERSIONS=0 equivalence, EBR
// protection of superseded versions, and the service plane's inline
// read-only routing with its svc_read_only ledger identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "metrics/sink.h"
#include "otb/mv.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"
#include "service/service.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using service::Targets;

std::uint64_t counter(const metrics::MetricsSink& sink, CounterId id) {
  return sink.snapshot().counters[static_cast<std::size_t>(id)];
}

/// Fixture pinning the knob and injecting a test-local otb.tx sink, so a
/// failing assertion cannot leak either into later tests.
class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_k_ = tx::mv_versions();
    tx::set_mv_versions(4);
    tx::set_metrics_sink(&sink_);
  }
  void TearDown() override {
    tx::set_metrics_sink(nullptr);
    tx::set_mv_versions(previous_k_);
  }

  metrics::MetricsSink sink_;
  unsigned previous_k_ = 0;
};

// ---- MvChain unit behaviour ------------------------------------------------

TEST(MvChain, ResolvesNewestEntryAtOrBelowStamp) {
  tx::MvChain chain(4);
  int a = 0, b = 0, c = 0;
  chain.push(&a, 10);
  chain.push(&b, 20);
  chain.push(&c, 30);

  EXPECT_FALSE(chain.resolve_at(9).found);  // predates every version
  EXPECT_EQ(chain.resolve_at(10).ptr, &a);
  EXPECT_EQ(chain.resolve_at(19).ptr, &a);
  EXPECT_EQ(chain.resolve_at(20).ptr, &b);
  EXPECT_EQ(chain.resolve_at(29).ptr, &b);
  EXPECT_EQ(chain.resolve_at(1000).ptr, &c);
}

TEST(MvChain, BoundedRingEvictsOldestAndReportsIt) {
  tx::MvChain chain(2);
  int a = 0, b = 0, c = 0;
  EXPECT_FALSE(chain.push(&a, 10));  // fills
  EXPECT_FALSE(chain.push(&b, 20));  // fills
  EXPECT_TRUE(chain.push(&c, 30));   // evicts (a, 10)

  EXPECT_FALSE(chain.resolve_at(15).found);  // (a, 10) is gone
  EXPECT_EQ(chain.resolve_at(20).ptr, &b);
  EXPECT_EQ(chain.resolve_at(30).ptr, &c);
}

TEST(MvChain, DepthCountsEntriesInspected) {
  tx::MvChain chain(4);
  int a = 0, b = 0, c = 0;
  chain.push(&a, 10);
  chain.push(&b, 20);
  chain.push(&c, 30);
  EXPECT_EQ(chain.resolve_at(1000).depth, 1u);  // newest matched first
  EXPECT_EQ(chain.resolve_at(10).depth, 3u);    // walked past two newer
}

// ---- snapshot isolation over the structures --------------------------------

TEST_F(MvccTest, MapSnapshotIgnoresLaterCommits) {
  tx::OtbListMap map;
  map.put_seq(1, 10);
  map.put_seq(2, 20);

  tx::SnapshotTx snap;
  std::int64_t v = 0;
  ASSERT_TRUE(map.get_at(snap, 1, &v));  // draws the stamp
  EXPECT_EQ(v, 10);

  tx::atomically([&](tx::Transaction& t) {
    map.put(t, 1, 99);   // replace
    map.put(t, 3, 30);   // insert
    map.erase(t, 2);     // erase
  });

  // The open snapshot still reads the pre-commit state...
  ASSERT_TRUE(map.get_at(snap, 1, &v));
  EXPECT_EQ(v, 10);
  ASSERT_TRUE(map.get_at(snap, 2, &v));
  EXPECT_EQ(v, 20);
  EXPECT_FALSE(map.contains_at(snap, 3));

  // ...and a fresh snapshot reads the post-commit state.
  tx::SnapshotTx snap2;
  ASSERT_TRUE(map.get_at(snap2, 1, &v));
  EXPECT_EQ(v, 99);
  EXPECT_FALSE(map.contains_at(snap2, 2));
  ASSERT_TRUE(map.get_at(snap2, 3, &v));
  EXPECT_EQ(v, 30);
}

TEST_F(MvccTest, RangeScanIsStableUnderConcurrentMutation) {
  tx::OtbListMap map;
  for (std::int64_t k = 0; k < 10; k += 2) map.put_seq(k, k * 100);

  tx::SnapshotTx snap;
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  ASSERT_EQ(map.range_at(snap, 0, 9, &out), 5u);  // draws the stamp

  tx::atomically([&](tx::Transaction& t) {
    map.put(t, 3, 300);  // insert inside the scanned range
    map.erase(t, 4);     // erase inside it
  });

  // Re-scan through the SAME snapshot: identical result, no invalidation.
  out.clear();
  ASSERT_EQ(map.range_at(snap, 0, 9, &out), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, static_cast<std::int64_t>(i * 2));
    EXPECT_EQ(out[i].second, out[i].first * 100);
  }

  tx::SnapshotTx snap2;
  out.clear();
  ASSERT_EQ(map.range_at(snap2, 0, 9, &out), 5u);  // +3, -4
  EXPECT_EQ(out[1].first, 2);
  EXPECT_EQ(out[2].first, 3);
  EXPECT_EQ(out[3].first, 6);
}

TEST_F(MvccTest, ListSetAndSkipListSetSnapshotsAgree) {
  tx::OtbListSet ls;
  tx::OtbSkipListSet ss;
  for (std::int64_t k = 1; k <= 5; ++k) {
    ls.add_seq(k);
    ss.add_seq(k);
  }

  tx::SnapshotTx snap;
  EXPECT_TRUE(ls.contains_at(snap, 3));
  EXPECT_TRUE(ss.contains_at(snap, 3));

  tx::atomically([&](tx::Transaction& t) {
    ls.remove(t, 3);
    ss.remove(t, 3);
    ls.add(t, 9);
    ss.add(t, 9);
  });

  EXPECT_TRUE(ls.contains_at(snap, 3));
  EXPECT_TRUE(ss.contains_at(snap, 3));
  EXPECT_FALSE(ls.contains_at(snap, 9));
  EXPECT_FALSE(ss.contains_at(snap, 9));

  tx::SnapshotTx snap2;
  EXPECT_FALSE(ls.contains_at(snap2, 3));
  EXPECT_FALSE(ss.contains_at(snap2, 3));
  EXPECT_TRUE(ls.contains_at(snap2, 9));
  EXPECT_TRUE(ss.contains_at(snap2, 9));
}

TEST_F(MvccTest, SkipListPqMinAtReadsAsOfSnapshot) {
  tx::OtbSkipListPQ pq;
  pq.add_seq(5);
  pq.add_seq(8);

  tx::SnapshotTx snap;
  std::int64_t min = 0;
  ASSERT_TRUE(pq.min_at(snap, &min));
  EXPECT_EQ(min, 5);

  tx::atomically([&](tx::Transaction& t) {
    std::int64_t popped = 0;
    ASSERT_TRUE(pq.remove_min(t, &popped));  // pops 5
    ASSERT_TRUE(pq.add(t, 2));               // new minimum
  });

  ASSERT_TRUE(pq.min_at(snap, &min));  // the open snapshot is unmoved
  EXPECT_EQ(min, 5);
  tx::SnapshotTx snap2;
  ASSERT_TRUE(pq.min_at(snap2, &min));
  EXPECT_EQ(min, 2);

  tx::OtbSkipListPQ empty;
  tx::SnapshotTx snap3;
  EXPECT_FALSE(empty.min_at(snap3, &min));
}

// ---- bounded chains: overflow and the miss contract -------------------------

TEST_F(MvccTest, ChainOverflowRaisesSnapshotMissForOldStamps) {
  tx::set_mv_versions(2);  // tiny rings so three commits lap a chain
  tx::OtbListSet set;      // nodes created with capacity-2 chains
  set.add_seq(100);

  tx::SnapshotTx snap;
  EXPECT_TRUE(set.contains_at(snap, 100));  // stamp drawn at T0

  // Descending inserts keep head as the predecessor, so each commit pushes
  // a new HEAD-chain version; after three the ring no longer holds an entry
  // <= T0.
  for (std::int64_t k = 3; k >= 1; --k) {
    tx::atomically([&](tx::Transaction& t) { set.add(t, k); });
  }
  EXPECT_THROW(set.contains_at(snap, 100), tx::SnapshotMiss);

  // A fresh snapshot (current stamp) is served fine.
  tx::SnapshotTx snap2;
  EXPECT_TRUE(set.contains_at(snap2, 100));
  EXPECT_TRUE(set.contains_at(snap2, 3));
}

TEST_F(MvccTest, EvictionsAreAccountedAsVersionsReclaimed) {
  tx::set_mv_versions(2);
  tx::OtbListSet set;
  // Churn one key: every add/remove pair pushes head-chain versions, and
  // with capacity-2 rings most pushes evict.
  for (int i = 0; i < 8; ++i) {
    tx::atomically([&](tx::Transaction& t) { set.add(t, 42); });
    tx::atomically([&](tx::Transaction& t) { set.remove(t, 42); });
  }
  EXPECT_GT(counter(sink_, CounterId::kMvVersionsReclaimed), 0u);
}

TEST_F(MvccTest, SnapshotReadFallsBackAndCountsMissWhenKnobOff) {
  tx::set_mv_versions(0);
  tx::OtbListSet set;  // chainless nodes
  set.add_seq(1);

  bool saw = false;
  const bool snapped = tx::snapshot_read(sink_, [&](tx::SnapshotTx& snap) {
    saw = set.contains_at(snap, 1);
  });
  EXPECT_FALSE(snapped);
  EXPECT_FALSE(saw);  // fn never completed
  EXPECT_EQ(counter(sink_, CounterId::kMvSnapshotReads), 0u);
  EXPECT_EQ(counter(sink_, CounterId::kMvVersionMisses), 1u);

  // The validated path serves the same read (the caller's fallback).
  tx::atomically([&](tx::Transaction& t) { saw = set.contains(t, 1); });
  EXPECT_TRUE(saw);
}

TEST_F(MvccTest, SnapshotReadCountsSuccessAndSamplesChainDepth) {
  tx::OtbListMap map;
  for (std::int64_t k = 0; k < 8; ++k) map.put_seq(k, k);

  std::int64_t v = 0;
  const bool snapped = tx::snapshot_read(sink_, [&](tx::SnapshotTx& snap) {
    ASSERT_TRUE(map.get_at(snap, 5, &v));
  });
  EXPECT_TRUE(snapped);
  EXPECT_EQ(v, 5);
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_EQ(s.counter(CounterId::kMvSnapshotReads), 1u);
  EXPECT_EQ(s.counter(CounterId::kMvVersionMisses), 0u);
  // The walk resolved one chain per hop; every sample landed in the series.
  EXPECT_GT(s.mv_chain_len.count, 0u);
  std::uint64_t bucket_sum = 0;
  for (const auto b : s.mv_chain_len.log2_buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, s.mv_chain_len.count);
}

// ---- EBR keeps superseded versions dereferenceable ---------------------------

TEST_F(MvccTest, OpenSnapshotSurvivesHeavyRetirementChurn) {
  tx::OtbListMap map;
  for (std::int64_t k = 0; k < 32; ++k) map.put_seq(k, k + 1000);

  tx::SnapshotTx snap;
  std::int64_t v = 0;
  ASSERT_TRUE(map.get_at(snap, 0, &v));  // stamp drawn

  // Erase everything, largest key first so each erase pushes a DIFFERENT
  // predecessor's chain (no ring ever overflows past the snapshot's stamp);
  // every node the snapshot can reach is now retired.
  for (std::int64_t k = 31; k >= 0; --k) {
    tx::atomically([&](tx::Transaction& t) { map.erase(t, k); });
  }
  // The snapshot's epoch guard pins the retired nodes: every key is still
  // readable, with its value, through the old stamp (ASan would flag any
  // use-after-free here).
  for (std::int64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(map.get_at(snap, k, &v)) << "key " << k;
    EXPECT_EQ(v, k + 1000);
  }
  tx::SnapshotTx snap2;
  EXPECT_FALSE(map.contains_at(snap2, 0));
}

// ---- service-plane read-only routing ----------------------------------------

class MvccServiceTest : public MvccTest {
 protected:
  Targets targets() { return Targets::standard(&map_, &set_, &heap_, &slpq_); }

  ServiceConfig config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.batch_max = 4;
    cfg.queue_capacity = 64;
    cfg.metrics = &svc_sink_;
    return cfg;
  }

  tx::OtbListMap map_;
  tx::OtbListSet set_;
  tx::OtbHeapPQ heap_;
  tx::OtbSkipListPQ slpq_;
  metrics::MetricsSink svc_sink_;
};

TEST_F(MvccServiceTest, ReadOnlyScriptsBypassTheQueue) {
  Service svc(targets(), config());
  svc.start();
  ASSERT_EQ(svc.submit(service::map_put(1, 10)).wait(), SvcStatus::kOk);
  ASSERT_EQ(svc.submit(service::sl_push(7)).wait(), SvcStatus::kOk);
  const std::uint64_t enqueued_before =
      counter(svc_sink_, CounterId::kSvcEnqueued);

  // A pure-read script spanning three snapshot-capable structures.
  ResponseFuture ro = svc.submit(Request{service::map_get(1),
                                         service::set_contains(1),
                                         service::pq_min(3)});
  ASSERT_EQ(ro.wait(), SvcStatus::kOk);
  ASSERT_EQ(ro.step_count(), 3u);
  EXPECT_TRUE(ro.step(0).ok);
  EXPECT_EQ(ro.step(0).value, 10);
  EXPECT_FALSE(ro.step(1).ok);
  EXPECT_TRUE(ro.step(2).ok);
  EXPECT_EQ(ro.step(2).value, 7);

  ResponseFuture rg = svc.submit(service::map_range(0, 100));
  ASSERT_EQ(rg.wait(), SvcStatus::kOk);
  ASSERT_EQ(rg.range().size(), 1u);
  EXPECT_EQ(rg.range()[0].first, 1);
  svc.stop();

  const metrics::SinkSnapshot s = svc_sink_.snapshot();
  // Neither read consumed a queue slot or a batch...
  EXPECT_EQ(s.counter(CounterId::kSvcEnqueued), enqueued_before);
  // ...both took the snapshot route, and the ledger identity holds.
  EXPECT_EQ(s.counter(CounterId::kSvcReadOnly), 2u);
  EXPECT_EQ(s.counter(CounterId::kSvcReadOnly),
            s.counter(CounterId::kMvSnapshotReads) +
                s.counter(CounterId::kMvVersionMisses));
  EXPECT_GT(s.mv_chain_len.count, 0u);
}

TEST_F(MvccServiceTest, HeapPqAndWriteScriptsStayOnTheBatchPath) {
  Service svc(targets(), config());
  svc.start();
  ASSERT_EQ(svc.submit(service::heap_push(3)).wait(), SvcStatus::kOk);
  // kMin is a read verb, but the eager heap PQ grows no version chains, so
  // the script must run as an ordinary batch transaction.
  ResponseFuture hm = svc.submit(service::pq_min(2));
  ASSERT_EQ(hm.wait(), SvcStatus::kOk);
  EXPECT_TRUE(hm.ok());
  EXPECT_EQ(hm.value(), 3);
  // A read+write mix is not read-only either.
  ResponseFuture rw =
      svc.submit(Request{service::map_get(1), service::map_put(1, 2)});
  ASSERT_EQ(rw.wait(), SvcStatus::kOk);
  svc.stop();
  EXPECT_EQ(counter(svc_sink_, CounterId::kSvcReadOnly), 0u);
  EXPECT_EQ(counter(svc_sink_, CounterId::kSvcEnqueued), 3u);
}

TEST_F(MvccServiceTest, ReadOnlyGuardFailureIsACleanOkNoOp) {
  Service svc(targets(), config());
  svc.start();
  ResponseFuture fut = svc.submit(Request{service::map_get(5).require(),
                                          service::set_contains(5)});
  ASSERT_EQ(fut.wait(), SvcStatus::kOk);
  EXPECT_FALSE(fut.ok());
  ASSERT_EQ(fut.step_count(), 2u);
  EXPECT_TRUE(fut.step(0).ran);
  EXPECT_FALSE(fut.step(0).ok);   // the guard failed here...
  EXPECT_FALSE(fut.step(1).ran);  // ...and nothing after it executed
  svc.stop();
  EXPECT_EQ(counter(svc_sink_, CounterId::kSvcGuardAborts), 1u);
  EXPECT_EQ(counter(svc_sink_, CounterId::kSvcReadOnly), 1u);
}

TEST_F(MvccServiceTest, KnobOffRoutesReadsThroughTheQueueUnchanged) {
  tx::set_mv_versions(0);
  Service svc(targets(), config());
  svc.start();
  ASSERT_EQ(svc.submit(service::map_put(1, 10)).wait(), SvcStatus::kOk);
  ResponseFuture get = svc.submit(service::map_get(1));
  ASSERT_EQ(get.wait(), SvcStatus::kOk);
  EXPECT_TRUE(get.ok());
  EXPECT_EQ(get.value(), 10);
  svc.stop();
  const metrics::SinkSnapshot s = svc_sink_.snapshot();
  EXPECT_EQ(s.counter(CounterId::kSvcReadOnly), 0u);
  EXPECT_EQ(s.counter(CounterId::kSvcEnqueued), 2u);  // the get queued too
  EXPECT_EQ(s.batch_size.total + s.counter(CounterId::kSvcExpired),
            s.counter(CounterId::kSvcEnqueued));
}

TEST_F(MvccServiceTest, LapsedDeadlineReadOnlyExpiresOnTheQueuePath) {
  Service svc(targets(), config());
  svc.start();
  ASSERT_EQ(svc.submit(service::map_put(1, 10)).wait(), SvcStatus::kOk);
  // A read-only script whose deadline already passed at submit must NOT be
  // served by the inline snapshot route (which would complete it kOk) — it
  // diverts to the queue path, whose worker expires it under the normal
  // ledger.  deadline_ns = 1 is in the distant past of the now_ns clock.
  ResponseFuture late = svc.submit(Request{service::map_get(1)}.with_deadline(1));
  EXPECT_EQ(late.wait(), SvcStatus::kExpired);
  svc.stop();
  const metrics::SinkSnapshot s = svc_sink_.snapshot();
  EXPECT_EQ(s.counter(CounterId::kSvcReadOnly), 0u);
  EXPECT_EQ(s.counter(CounterId::kSvcExpired), 1u);
  EXPECT_EQ(s.counter(CounterId::kSvcEnqueued), 2u);  // the put + the late get
  EXPECT_EQ(s.batch_size.total + s.counter(CounterId::kSvcExpired),
            s.counter(CounterId::kSvcEnqueued));
}

TEST_F(MvccServiceTest, StoppedServiceRejectsReadOnlySubmits) {
  Service svc(targets(), config());
  svc.start();
  svc.stop();
  ResponseFuture probe = svc.submit(service::map_get(1));
  EXPECT_EQ(probe.status(), SvcStatus::kOverloaded);
  EXPECT_EQ(counter(svc_sink_, CounterId::kSvcReadOnly), 0u);
}

}  // namespace
}  // namespace otb
