// Tests for the traversal-hint layer (DESIGN.md, "Traversal hints and
// opacity"): transaction-local hints must hit on key-local operation
// sequences, the cross-transaction predecessor cache must seed the first
// traversal of a new transaction, stale hints (marked or epoch-aged
// entries) must fall back to a full head traversal while still answering
// correctly, retries must inherit pooled-descriptor hints, and the
// OTB_TRAVERSAL_HINTS=off path must match the pre-hint behaviour with zero
// hint counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>

#include "common/epoch.h"
#include "metrics/sink.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"
#include "otb/traversal_hints.h"

namespace otb {
namespace {

using metrics::CounterId;

struct HintCounts {
  std::uint64_t local = 0;
  std::uint64_t cached = 0;
  std::uint64_t miss = 0;
};

/// RAII sink injection + knob and thread-cache reset so hint provenance is
/// deterministic per test and failures cannot leak state forward.
class TraversalHintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tx::set_traversal_hints(true);
    tx::set_metrics_sink(&sink_);
    tx::PredCache::clear_this_thread();
  }
  void TearDown() override {
    tx::set_metrics_sink(nullptr);
    tx::set_traversal_hints(true);
  }

  HintCounts delta() {
    const metrics::SinkSnapshot s = sink_.snapshot();
    const HintCounts now{
        s.counters[static_cast<std::size_t>(CounterId::kHintHitLocal)],
        s.counters[static_cast<std::size_t>(CounterId::kHintHitCached)],
        s.counters[static_cast<std::size_t>(CounterId::kHintMiss)]};
    const HintCounts d{now.local - last_.local, now.cached - last_.cached,
                       now.miss - last_.miss};
    last_ = now;
    return d;
  }

  metrics::MetricsSink sink_;
  HintCounts last_;
};

TEST_F(TraversalHintsTest, LocalHintsHitWithinTransaction) {
  tx::OtbListSet set;
  for (std::int64_t k = 1; k <= 8; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 1; k <= 8; ++k) EXPECT_TRUE(set.contains(t, k));
  });

  // First traversal has nothing to start from; the remaining seven resume
  // from this transaction's own validated positions.
  const HintCounts d = delta();
  EXPECT_EQ(d.miss, 1u);
  EXPECT_EQ(d.local, 7u);
  EXPECT_EQ(d.cached, 0u);
}

TEST_F(TraversalHintsTest, CrossTransactionCacheSeedsFirstTraversal) {
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 32; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.contains(t, 20)); });
  const HintCounts first = delta();
  EXPECT_EQ(first.miss, 1u);

  // A brand-new transaction has no local hints (the descriptor pool is
  // dropped at commit), so this hit can only come from the thread cache.
  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.contains(t, 20)); });
  const HintCounts second = delta();
  EXPECT_EQ(second.cached, 1u);
  EXPECT_EQ(second.miss, 0u);
}

TEST_F(TraversalHintsTest, RemovedPredecessorFallsBackAndStaysCorrect) {
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 32; ++k) set.add_seq(k);
  delta();

  // Warm the thread cache with node 19 (the predecessor of key 20), then
  // have ANOTHER thread remove it — its own traversal refreshes only its
  // own thread-local cache, so this thread's entry is now a marked node.
  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.contains(t, 20)); });
  std::thread remover([&] {
    tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.remove(t, 19)); });
  });
  remover.join();
  delta();

  // The marked pre-filter rejects the stale entry; the traversal restarts
  // from the head and still answers correctly.
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.contains(t, 20));
    EXPECT_FALSE(set.contains(t, 19));
  });
  const HintCounts d = delta();
  EXPECT_EQ(d.cached, 0u);
  EXPECT_GE(d.miss, 1u);
}

TEST_F(TraversalHintsTest, EpochAgedCacheEntriesAreMisses) {
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 32; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.contains(t, 20)); });
  delta();

  // Advance the global epoch past the age gate (each collect() bumps it).
  // The cached entry's pointer may no longer be dereferenced and must read
  // as a miss before any dereference happens.
  for (int i = 0; i < 3; ++i) ebr::collect();

  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.contains(t, 20)); });
  const HintCounts d = delta();
  EXPECT_EQ(d.cached, 0u);
  EXPECT_EQ(d.miss, 1u);
}

TEST_F(TraversalHintsTest, RetryInheritsLocalHints) {
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 32; ++k) set.add_seq(k);
  delta();

  // First attempt traverses (a miss) and aborts; the pooled descriptor's
  // hints survive recycle, so the retry starts from the validated position.
  int attempt = 0;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.contains(t, 20));
    if (attempt++ == 0) throw TxAbort{metrics::AbortReason::kExplicit};
  });
  EXPECT_EQ(attempt, 2);
  const HintCounts d = delta();
  EXPECT_EQ(d.local, 1u);
  EXPECT_EQ(d.miss, 1u);
}

TEST_F(TraversalHintsTest, KnobOffMatchesNoHintPathWithZeroCounters) {
  tx::set_traversal_hints(false);
  tx::OtbListSet on_ref;  // hints-on twin for result comparison
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 64; k += 2) {
    set.add_seq(k);
    on_ref.add_seq(k);
  }
  delta();

  for (std::int64_t k = 0; k < 64; ++k) {
    bool off_result = false;
    tx::atomically([&](tx::Transaction& t) { off_result = set.contains(t, k); });
    tx::set_traversal_hints(true);
    bool on_result = false;
    tx::atomically([&](tx::Transaction& t) { on_result = on_ref.contains(t, k); });
    tx::set_traversal_hints(false);
    EXPECT_EQ(off_result, on_result) << "key " << k;
  }

  // The knob-off structure ticked no hint counters...
  const metrics::SinkSnapshot s = sink_.snapshot();
  // (the interleaved hints-on twin contributes hits/misses, so count only
  // what the off-path could have produced: re-run a clean off-only block)
  sink_.reset();
  last_ = HintCounts{};
  for (std::int64_t k = 0; k < 64; ++k) {
    tx::atomically([&](tx::Transaction& t) { set.contains(t, k); });
  }
  const metrics::SinkSnapshot off_only = sink_.snapshot();
  EXPECT_EQ(off_only.counters[static_cast<std::size_t>(CounterId::kHintHitLocal)], 0u);
  EXPECT_EQ(off_only.counters[static_cast<std::size_t>(CounterId::kHintHitCached)], 0u);
  EXPECT_EQ(off_only.counters[static_cast<std::size_t>(CounterId::kHintMiss)], 0u);
  // ...but the traversal-length instrument still records (it is the A/B
  // measurement, not part of the optimisation).
  EXPECT_EQ(off_only.traversals.count, 64u);
  (void)s;
}

TEST_F(TraversalHintsTest, TraversalHistogramCountMatchesBucketSum) {
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 32; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 0; k < 32; k += 4) set.contains(t, k);
  });

  const metrics::SinkSnapshot s = sink_.snapshot();
  const std::uint64_t bucket_sum =
      std::accumulate(s.traversals.log2_buckets.begin(),
                      s.traversals.log2_buckets.end(), std::uint64_t{0});
  EXPECT_EQ(s.traversals.count, bucket_sum);
  EXPECT_EQ(s.traversals.count, 8u);
  EXPECT_GT(s.traversals.total_steps, 0u);
}

TEST_F(TraversalHintsTest, ListMapHintsHitOnKeyLocalGets) {
  tx::OtbListMap map;
  for (std::int64_t k = 1; k <= 8; ++k) map.put_seq(k, k * 10);
  delta();

  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 1; k <= 8; ++k) {
      std::int64_t v = 0;
      EXPECT_TRUE(map.get(t, k, &v));
      EXPECT_EQ(v, k * 10);
    }
  });

  const HintCounts d = delta();
  EXPECT_EQ(d.miss, 1u);
  EXPECT_EQ(d.local, 7u);
}

TEST_F(TraversalHintsTest, SkipListLocalHintsHitOnBottomSufficientOps) {
  tx::OtbSkipListSet set;
  for (std::int64_t k = 0; k < 64; ++k) set.add_seq(k);
  delta();

  // contains is always bottom-level-sufficient, so ascending lookups hit
  // the transaction-local hints exactly like the linked list.
  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 10; k < 18; ++k) EXPECT_TRUE(set.contains(t, k));
  });

  const HintCounts d = delta();
  EXPECT_EQ(d.miss, 1u);
  EXPECT_EQ(d.local, 7u);
}

TEST_F(TraversalHintsTest, SkipListSuccessfulAddFallsBackToFullFind) {
  tx::OtbSkipListSet set;
  for (std::int64_t k = 0; k < 64; ++k) set.add_seq(k);
  delta();

  // A successful add needs the full pred/succ arrays for linking, so even
  // with a usable hint nearby the operation re-runs find() and counts as a
  // miss — and must still produce a correct structure.
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(set.contains(t, 10));
    EXPECT_TRUE(set.add(t, 1000));
  });
  const HintCounts d = delta();
  EXPECT_EQ(d.miss, 2u);
  EXPECT_EQ(d.local, 0u);

  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.contains(t, 1000)); });
}

}  // namespace
}  // namespace otb
