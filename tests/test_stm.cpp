// Parameterized correctness suite run against every STM algorithm in the
// framework (NOrec, TML, TL2, RingSW, InvalSTM, RTC, RInval): atomicity,
// isolation, snapshot consistency, read-own-writes, and conservation
// invariants under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/stm.h"

namespace otb::stm {
namespace {

class StmAlgoTest : public ::testing::TestWithParam<AlgoKind> {
 protected:
  static Config small_config() {
    Config cfg;
    cfg.max_threads = 16;
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(AllAlgos, StmAlgoTest,
                         ::testing::Values(AlgoKind::kNOrec, AlgoKind::kTML,
                                           AlgoKind::kTL2, AlgoKind::kRingSW,
                                           AlgoKind::kInvalSTM, AlgoKind::kRTC,
                                           AlgoKind::kRInval, AlgoKind::kCGL,
                                           AlgoKind::kTinySTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(StmAlgoTest, SingleThreadReadWrite) {
  Runtime rt(GetParam(), small_config());
  TVar<std::int64_t> x{10};
  TxThread th(rt);
  rt.atomically(th, [&](Tx& tx) {
    EXPECT_EQ(tx.read(x), 10);
    tx.write(x, std::int64_t{20});
    EXPECT_EQ(tx.read(x), 20);  // read-own-writes
  });
  EXPECT_EQ(x.load_direct(), 20);
}

TEST_P(StmAlgoTest, WritesInvisibleUntilCommitForLazyAlgos) {
  if (GetParam() == AlgoKind::kTML || GetParam() == AlgoKind::kCGL ||
      GetParam() == AlgoKind::kTinySTM) {
    GTEST_SKIP() << "eager algorithm";
  }
  Runtime rt(GetParam(), small_config());
  TVar<std::int64_t> x{1};
  TxThread th(rt);
  rt.atomically(th, [&](Tx& tx) {
    tx.write(x, std::int64_t{2});
    EXPECT_EQ(x.load_direct(), 1);  // redo log only
  });
  EXPECT_EQ(x.load_direct(), 2);
}

TEST_P(StmAlgoTest, ConcurrentCounterIncrements) {
  Runtime rt(GetParam(), small_config());
  TVar<std::int64_t> counter{0};
  constexpr int kThreads = 4, kIters = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TxThread th(rt);
      for (int i = 0; i < kIters; ++i) {
        rt.atomically(th, [&](Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load_direct(), std::int64_t(kThreads) * kIters);
}

TEST_P(StmAlgoTest, BankTransfersConserveTotal) {
  Runtime rt(GetParam(), small_config());
  constexpr std::size_t kAccounts = 32;
  constexpr std::int64_t kInitial = 100;
  TArray<std::int64_t> accounts(kAccounts, kInitial);
  constexpr int kThreads = 4, kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxThread th(rt);
      Xorshift rng{std::uint64_t(t) * 17 + 1};
      for (int i = 0; i < kIters; ++i) {
        const std::size_t from = rng.next_bounded(kAccounts);
        const std::size_t to = rng.next_bounded(kAccounts);
        const std::int64_t amount = 1 + std::int64_t(rng.next_bounded(5));
        rt.atomically(th, [&](Tx& tx) {
          tx.write(accounts[from], tx.read(accounts[from]) - amount);
          tx.write(accounts[to], tx.read(accounts[to]) + amount);
        });
      }
    });
  }
  // Concurrent auditors must always observe the conserved total (isolation).
  std::atomic<bool> stop{false};
  std::thread auditor([&] {
    TxThread th(rt);
    while (!stop.load()) {
      std::int64_t total = 0;
      rt.atomically(th, [&](Tx& tx) {
        total = 0;
        for (std::size_t a = 0; a < kAccounts; ++a) total += tx.read(accounts[a]);
      });
      EXPECT_EQ(total, std::int64_t(kAccounts) * kInitial);
    }
  });
  for (auto& th : threads) th.join();
  stop = true;
  auditor.join();
  std::int64_t total = 0;
  for (std::size_t a = 0; a < kAccounts; ++a) total += accounts[a].load_direct();
  EXPECT_EQ(total, std::int64_t(kAccounts) * kInitial);
}

TEST_P(StmAlgoTest, PairedVariablesNeverObservedTorn) {
  // Writers keep x == y; a reader transaction must never see them differ.
  Runtime rt(GetParam(), small_config());
  TVar<std::int64_t> x{0}, y{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    TxThread th(rt);
    for (int i = 1; i <= 400; ++i) {
      rt.atomically(th, [&](Tx& tx) {
        tx.write(x, std::int64_t{i});
        tx.write(y, std::int64_t{i});
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    TxThread th(rt);
    while (!stop.load()) {
      std::int64_t a = -1, b = -1;
      rt.atomically(th, [&](Tx& tx) {
        a = tx.read(x);
        b = tx.read(y);
      });
      EXPECT_EQ(a, b);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(x.load_direct(), 400);
  EXPECT_EQ(y.load_direct(), 400);
}

TEST_P(StmAlgoTest, WriteSkewPreventedOnOverlappingReads) {
  // Classic write-skew shape: each tx reads both vars and writes one,
  // keeping the invariant a + b <= 1 … serializable STMs must uphold it.
  Runtime rt(GetParam(), small_config());
  TVar<std::int64_t> a{0}, b{0};
  constexpr int kIters = 200;
  auto worker = [&](bool first) {
    TxThread th(rt);
    for (int i = 0; i < kIters; ++i) {
      rt.atomically(th, [&](Tx& tx) {
        const std::int64_t va = tx.read(a);
        const std::int64_t vb = tx.read(b);
        if (va + vb == 0) {
          tx.write(first ? a : b, std::int64_t{1});
        } else if (first && va == 1) {
          tx.write(a, std::int64_t{0});
        } else if (!first && vb == 1) {
          tx.write(b, std::int64_t{0});
        }
      });
      const std::int64_t sa = a.load_direct(), sb = b.load_direct();
      EXPECT_LE(sa + sb, 1) << "write skew!";
    }
  };
  std::thread t1(worker, true), t2(worker, false);
  t1.join();
  t2.join();
}

TEST_P(StmAlgoTest, AbortStatisticsAccumulate) {
  Runtime rt(GetParam(), small_config());
  TVar<std::int64_t> x{0};
  constexpr int kThreads = 4, kIters = 150;
  std::atomic<std::uint64_t> commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TxThread th(rt);
      for (int i = 0; i < kIters; ++i) {
        rt.atomically(th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
      }
      commits.fetch_add(th.tx().stats().commits);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(commits.load(), std::uint64_t(kThreads) * kIters);
  EXPECT_EQ(x.load_direct(), std::int64_t(kThreads) * kIters);
}

TEST_P(StmAlgoTest, ManySmallDisjointTransactionsScaleOut) {
  // Disjoint-address workload: no transaction should ever lose an update.
  Runtime rt(GetParam(), small_config());
  constexpr int kThreads = 4, kIters = 300;
  TArray<std::int64_t> slots(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxThread th(rt);
      for (int i = 0; i < kIters; ++i) {
        rt.atomically(th, [&](Tx& tx) {
          tx.write(slots[std::size_t(t)], tx.read(slots[std::size_t(t)]) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(slots[std::size_t(t)].load_direct(), kIters);
  }
}

TEST(StmRuntime, SlotsAreRecycled) {
  Runtime rt(AlgoKind::kNOrec);
  unsigned first;
  {
    TxThread a(rt);
    first = a.slot();
  }
  TxThread b(rt);
  EXPECT_EQ(b.slot(), first);
}

TEST(StmTVar, TypedRoundTrip) {
  TVar<double> d{3.5};
  EXPECT_DOUBLE_EQ(d.load_direct(), 3.5);
  d.store_direct(-1.25);
  EXPECT_DOUBLE_EQ(d.load_direct(), -1.25);
  TVar<std::uint32_t> u{7u};
  EXPECT_EQ(u.load_direct(), 7u);
}

TEST(StmWriteSet, OverwritesAndLookups) {
  RedoWriteSet ws;
  TWord a{1}, b{2};
  ws.put(&a, 10);
  ws.put(&b, 20);
  ws.put(&a, 11);
  Word out = 0;
  EXPECT_TRUE(ws.lookup(&a, &out));
  EXPECT_EQ(out, 11u);
  EXPECT_TRUE(ws.lookup(&b, &out));
  EXPECT_EQ(out, 20u);
  EXPECT_EQ(ws.size(), 2u);
  ws.publish();
  EXPECT_EQ(a.load(), 11u);
  EXPECT_EQ(b.load(), 20u);
  ws.clear();
  EXPECT_FALSE(ws.lookup(&a, &out));
}

TEST(StmWriteSet, GrowsPastInitialCapacity) {
  RedoWriteSet ws;
  std::vector<TWord> words(500);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.put(&words[i], Word(i));
  }
  Word out = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    ASSERT_TRUE(ws.lookup(&words[i], &out));
    EXPECT_EQ(out, Word(i));
  }
}

}  // namespace
}  // namespace otb::stm
