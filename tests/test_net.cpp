// Tier-1 tests of the epoll front end (src/service/net.h): multi-connection
// pipelined round trips across several net threads, POSIX thread naming,
// wire-codec hardening (malformed v1/v2 frames close the connection without
// taking the server down), partial I/O under deliberately tiny socket
// buffers, and the per-connection backpressure pause/resume cycle wired to
// the net_backpressure counter.
#include <gtest/gtest.h>

#if defined(__linux__)

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "metrics/sink.h"
#include "otb/otb_list_map.h"
#include "service/net.h"
#include "service/service.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::NetServer;
using service::NetServerConfig;
using service::Request;
using service::Service;
using service::ServiceConfig;
using service::Step;
using service::SvcStatus;
using service::Targets;

std::uint64_t counter(const metrics::MetricsSink& sink, CounterId id) {
  return sink.snapshot().counters[static_cast<std::size_t>(id)];
}

/// Minimal blocking loopback client speaking raw bytes, so the hardening
/// tests can send frames the well-formed helpers in test_service.cpp
/// cannot produce.  A 2 s receive timeout turns "server never answers /
/// never closes" into a test failure instead of a hang.
class RawClient {
 public:
  /// `bufsize` != 0 shrinks SO_SNDBUF/SO_RCVBUF BEFORE connect (so the
  /// window negotiation sees it) to force partial reads and writes on the
  /// server side.
  explicit RawClient(std::uint16_t port, int bufsize = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ >= 0 && bufsize != 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bufsize, sizeof(bufsize));
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bufsize, sizeof(bufsize));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ >= 0) {
      timeval tv{2, 0};
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void send_bytes(const std::vector<std::uint8_t>& b) {
    ASSERT_EQ(::send(fd_, b.data(), b.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(b.size()));
  }

  static std::vector<std::uint8_t> v1_frame(std::uint64_t id,
                                            service::LegacyWireOp op,
                                            std::int64_t key,
                                            std::int64_t value) {
    std::vector<std::uint8_t> buf;
    service::wire::put<std::uint32_t>(buf, service::kNetRequestFrameLen);
    service::wire::put<std::uint64_t>(buf, id);
    service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(op));
    service::wire::put<std::int64_t>(buf, key);
    service::wire::put<std::int64_t>(buf, value);
    service::wire::put<std::uint32_t>(buf, /*deadline_ms=*/0);
    return buf;
  }

  static std::vector<std::uint8_t> v2_frame(std::uint64_t id,
                                            const Request& req) {
    std::vector<std::uint8_t> buf;
    const std::size_t n = req.steps.size();
    service::wire::put<std::uint32_t>(
        buf, static_cast<std::uint32_t>(service::kNetWireV2HeaderLen +
                                        n * service::kNetWireStepLen));
    service::wire::put<std::uint8_t>(buf, service::kNetWireV2);
    service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(n));
    service::wire::put<std::uint32_t>(buf, /*deadline_ms=*/0);
    service::wire::put<std::uint64_t>(buf, id);
    for (const Step& s : req.steps) {
      service::wire::put<std::uint8_t>(buf, s.structure);
      service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(s.verb));
      service::wire::put<std::uint8_t>(
          buf, static_cast<std::uint8_t>((s.required ? 1 : 0) |
                                         (s.has_expect ? 2 : 0)));
      service::wire::put<std::uint8_t>(buf,
                                       static_cast<std::uint8_t>(s.key_from));
      service::wire::put<std::uint8_t>(
          buf, static_cast<std::uint8_t>(s.value_from));
      service::wire::put<std::int64_t>(buf, s.key);
      service::wire::put<std::int64_t>(buf, s.value);
      service::wire::put<std::int64_t>(buf, s.expect);
    }
    return buf;
  }

  struct Response {
    bool got = false;
    std::uint64_t id = 0;
    SvcStatus status = SvcStatus::kPending;
    bool ok = false;
    std::int64_t value = 0;  // v1 only
  };

  /// Reads one response frame; `v2` states the expected framing (the v2
  /// version byte can collide with a small v1 id's low byte).
  Response read_response(bool v2) {
    Response r;
    std::uint8_t hdr[4];
    if (!read_exact(hdr, 4)) return r;
    const auto len = service::wire::get<std::uint32_t>(hdr);
    std::vector<std::uint8_t> body(len);
    if (!read_exact(body.data(), len)) return r;
    r.got = true;
    if (v2) {
      EXPECT_EQ(body[0], service::kNetWireV2);
      r.id = service::wire::get<std::uint64_t>(body.data() + 1);
      r.status = static_cast<SvcStatus>(body[9]);
      r.ok = body[10] != 0;
    } else {
      r.id = service::wire::get<std::uint64_t>(body.data());
      r.status = static_cast<SvcStatus>(body[8]);
      r.ok = body[9] != 0;
      r.value = service::wire::get<std::int64_t>(body.data() + 10);
    }
    return r;
  }

  /// True when the server closed the connection (orderly EOF) within the
  /// receive timeout — the required reaction to a malformed frame.
  bool closed_by_server() {
    std::uint8_t b;
    const ssize_t n = ::recv(fd_, &b, 1, 0);
    return n == 0;
  }

 private:
  bool read_exact(std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

class NetServerTest : public ::testing::Test {
 protected:
  Targets targets() { return Targets::standard(&map_); }

  ServiceConfig config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.batch_max = 4;
    cfg.queue_capacity = 256;
    cfg.metrics = &svc_sink_;
    return cfg;
  }

  NetServerConfig net_config(unsigned threads) {
    NetServerConfig cfg;
    cfg.net_threads = threads;
    cfg.metrics = &net_sink_;
    return cfg;
  }

  tx::OtbListMap map_;
  metrics::MetricsSink svc_sink_;
  metrics::MetricsSink net_sink_;
};

TEST_F(NetServerTest, MultiConnectionPipelinedRoundTrip) {
  Service svc(targets(), config());
  svc.start();
  NetServer server(svc, /*port=*/0, net_config(/*threads=*/2));
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });

  constexpr int kConns = 8;
  constexpr int kPerConn = 16;
  std::vector<std::thread> clients;
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([c, port = server.bound_port()] {
      RawClient cl(port);
      ASSERT_TRUE(cl.ok());
      // Pipeline every request up front, then read responses back; the
      // server guarantees per-connection FIFO response order.
      for (int i = 0; i < kPerConn; ++i) {
        const std::int64_t key = c * 1000 + i;
        cl.send_bytes(RawClient::v1_frame(static_cast<std::uint64_t>(i + 1),
                                          service::LegacyWireOp::kMapPut, key,
                                          key * 3));
      }
      for (int i = 0; i < kPerConn; ++i) {
        const RawClient::Response r = cl.read_response(/*v2=*/false);
        ASSERT_TRUE(r.got);
        EXPECT_EQ(r.id, static_cast<std::uint64_t>(i + 1));
        EXPECT_EQ(r.status, SvcStatus::kOk);
      }
      cl.send_bytes(RawClient::v1_frame(99, service::LegacyWireOp::kMapGet,
                                        c * 1000 + 7, 0));
      const RawClient::Response g = cl.read_response(/*v2=*/false);
      ASSERT_TRUE(g.got);
      EXPECT_TRUE(g.ok);
      EXPECT_EQ(g.value, (c * 1000 + 7) * 3);
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(counter(net_sink_, CounterId::kNetAccepts),
            static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(counter(net_sink_, CounterId::kNetFramesIn),
            static_cast<std::uint64_t>(kConns * (kPerConn + 1)));

  server.request_stop();
  serve.join();
  EXPECT_FALSE(svc.accepting());  // run() stops the service on exit
}

TEST_F(NetServerTest, NetThreadsCarryPosixNames) {
  Service svc(targets(), config());
  svc.start();
  NetServer server(svc, /*port=*/0, net_config(/*threads=*/3));
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });

  // The names appear once the threads reach their loop; poll briefly.
  int named = 0;
  for (int attempt = 0; attempt < 200 && named < 3; ++attempt) {
    named = 0;
    if (DIR* dir = ::opendir("/proc/self/task")) {
      while (dirent* e = ::readdir(dir)) {
        if (e->d_name[0] == '.') continue;
        const std::string path =
            std::string("/proc/self/task/") + e->d_name + "/comm";
        if (std::FILE* f = std::fopen(path.c_str(), "r")) {
          char comm[32] = {};
          if (std::fgets(comm, sizeof(comm), f) != nullptr &&
              std::strncmp(comm, "otb-net-", 8) == 0) {
            named += 1;
          }
          std::fclose(f);
        }
      }
      ::closedir(dir);
    }
    if (named < 3) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(named, 3);

  server.request_stop();
  serve.join();
}

TEST_F(NetServerTest, MalformedFramesCloseTheConnectionNotTheServer) {
  Service svc(targets(), config());
  svc.start();
  NetServer server(svc, /*port=*/0, net_config(/*threads=*/1));
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });
  const std::uint16_t port = server.bound_port();

  const auto expect_closed = [&](const std::vector<std::uint8_t>& bytes) {
    RawClient cl(port);
    ASSERT_TRUE(cl.ok());
    cl.send_bytes(bytes);
    EXPECT_TRUE(cl.closed_by_server());
  };

  // Length prefix matching neither wire version (cannot resync: close).
  {
    std::vector<std::uint8_t> b;
    service::wire::put<std::uint32_t>(b, 5);
    b.insert(b.end(), 5, 0xab);
    expect_closed(b);
  }
  // Oversized v2 length prefix: more steps than kNetMaxWireSteps.  Rejected
  // from the prefix alone — no body needed, nothing buffered.
  {
    std::vector<std::uint8_t> b;
    service::wire::put<std::uint32_t>(
        b, static_cast<std::uint32_t>(
               service::kNetWireV2HeaderLen +
               (service::kNetMaxWireSteps + 1) * service::kNetWireStepLen));
    expect_closed(b);
  }
  // Garbage length prefix in the gigabytes: same rejection, no allocation.
  {
    std::vector<std::uint8_t> b;
    service::wire::put<std::uint32_t>(b, 0xfffffff0u);
    expect_closed(b);
  }
  // v2-shaped length but wrong version byte.
  {
    Request req{service::map_put(1, 1)};
    std::vector<std::uint8_t> b = RawClient::v2_frame(1, req);
    b[4] = 7;  // version byte
    expect_closed(b);
  }
  // Version/step-count header disagreeing with the length prefix.
  {
    Request req{service::map_put(1, 1)};
    std::vector<std::uint8_t> b = RawClient::v2_frame(1, req);
    b[5] = 2;  // nsteps says 2, length prefix says 1
    expect_closed(b);
  }
  // Step with an out-of-range verb byte.
  {
    Request req{service::map_put(1, 1)};
    std::vector<std::uint8_t> b = RawClient::v2_frame(1, req);
    b[4 + service::kNetWireV2HeaderLen + 1] = 0xee;  // verb byte of step 0
    expect_closed(b);
  }
  // v1 frame with an unknown legacy opcode.
  {
    std::vector<std::uint8_t> b = RawClient::v1_frame(
        1, service::LegacyWireOp::kMapPut, 1, 1);
    b[4 + 8] = 0xee;  // op byte
    expect_closed(b);
  }
  // Truncated frame followed by client-side close: the server just reaps.
  {
    RawClient cl(port);
    ASSERT_TRUE(cl.ok());
    std::vector<std::uint8_t> b =
        RawClient::v1_frame(1, service::LegacyWireOp::kMapPut, 1, 1);
    b.resize(11);
    cl.send_bytes(b);
    // Destructor closes mid-frame; nothing to assert beyond "no crash".
  }

  // The server survived all of it: a fresh connection still round-trips.
  RawClient cl(port);
  ASSERT_TRUE(cl.ok());
  cl.send_bytes(RawClient::v1_frame(10, service::LegacyWireOp::kMapPut, 42,
                                    420));
  RawClient::Response r = cl.read_response(/*v2=*/false);
  ASSERT_TRUE(r.got);
  EXPECT_EQ(r.status, SvcStatus::kOk);
  cl.send_bytes(RawClient::v1_frame(11, service::LegacyWireOp::kMapGet, 42,
                                    0));
  r = cl.read_response(/*v2=*/false);
  ASSERT_TRUE(r.got);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 420);

  server.request_stop();
  serve.join();
}

TEST_F(NetServerTest, PartialIoUnderTinySocketBuffers) {
  Service svc(targets(), config());
  svc.start();
  NetServer server(svc, /*port=*/0, net_config(/*threads=*/1));
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });

  // 4 KB buffers: small enough that the server sees fragmented frames and
  // EAGAIN on writes, large enough to avoid degenerate zero-window TCP
  // states (sndbuf smaller than one loopback segment wedges retransmits).
  RawClient cl(server.bound_port(), /*bufsize=*/4096);
  ASSERT_TRUE(cl.ok());

  // Phase 1 — partial READS: dribble each v2 frame 3 bytes at a time so
  // the server reassembles across every possible split point, reading the
  // response back after each frame (an unread response backlog against a
  // small receive buffer would close the TCP window mid-dribble).
  constexpr int kPuts = 64;
  for (int i = 0; i < kPuts; ++i) {
    const auto f = RawClient::v2_frame(
        static_cast<std::uint64_t>(i + 1),
        Request{service::map_put(i, i * 11)});
    for (std::size_t at = 0; at < f.size(); at += 3) {
      const std::size_t n = std::min<std::size_t>(3, f.size() - at);
      ASSERT_EQ(::send(cl.fd(), f.data() + at, n, MSG_NOSIGNAL),
                static_cast<ssize_t>(n));
    }
    const RawClient::Response r = cl.read_response(/*v2=*/true);
    ASSERT_TRUE(r.got);
    EXPECT_EQ(r.id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(r.status, SvcStatus::kOk);
  }

  // Phase 2 — partial WRITES: pipeline hundreds of wide-range requests
  // (~1 KB response each, ~400 KB total) without reading; the ~4 KB client
  // window forces the server through its EAGAIN/buffered-flush path, then
  // everything must come back complete and in order as the client drains.
  constexpr int kRanges = 400;
  for (int i = 0; i < kRanges; ++i) {
    cl.send_bytes(RawClient::v2_frame(1000 + i,
                                      Request{service::map_range(0, 63)}));
  }
  for (int i = 0; i < kRanges; ++i) {
    std::uint8_t hdr[4];
    ASSERT_EQ(::recv(cl.fd(), hdr, 4, MSG_WAITALL), 4);
    const auto len = service::wire::get<std::uint32_t>(hdr);
    std::vector<std::uint8_t> body(len);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::recv(cl.fd(), body.data() + got, len - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(body[0], service::kNetWireV2);
    EXPECT_EQ(service::wire::get<std::uint64_t>(body.data() + 1),
              static_cast<std::uint64_t>(1000 + i));
    // Body: ver id status ok nsteps, one 10-byte step echo, then the u32
    // pair count — all 64 keys come back every time.
    const auto npairs = service::wire::get<std::uint32_t>(body.data() + 22);
    ASSERT_EQ(npairs, 64u);
  }

  server.request_stop();
  serve.join();
}

TEST_F(NetServerTest, BackpressurePausesReadsAndResumesAfterDrain) {
  // The service is constructed but NOT started: submissions park in its
  // queue, so the connection's in-flight count climbs until the server
  // pauses reading at the high-water mark.
  Service svc(targets(), config());
  NetServerConfig ncfg = net_config(/*threads=*/1);
  ncfg.conn_inflight_hw = 4;
  NetServer server(svc, /*port=*/0, ncfg);
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });

  RawClient cl(server.bound_port());
  ASSERT_TRUE(cl.ok());
  constexpr int kReqs = 32;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < kReqs; ++i) {
    const auto f = RawClient::v1_frame(static_cast<std::uint64_t>(i + 1),
                                       service::LegacyWireOp::kMapPut, i,
                                       i * 5);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  ASSERT_EQ(::send(cl.fd(), stream.data(), stream.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(stream.size()));

  // The server must hit the pause path (and count it) without any
  // completions happening.
  bool paused = false;
  for (int i = 0; i < 400 && !paused; ++i) {
    paused = counter(net_sink_, CounterId::kNetBackpressure) > 0;
    if (!paused) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(paused);
  // Paused means at most the high-water mark's worth was submitted.
  EXPECT_LE(counter(svc_sink_, CounterId::kSvcEnqueued), 5u);

  // Start the workers: completions drain, the connection resumes, and every
  // parked byte of the pipeline gets read and answered.
  svc.start();
  for (int i = 0; i < kReqs; ++i) {
    const RawClient::Response r = cl.read_response(/*v2=*/false);
    ASSERT_TRUE(r.got);
    EXPECT_EQ(r.id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(r.status, SvcStatus::kOk);
  }
  EXPECT_EQ(counter(net_sink_, CounterId::kNetFramesIn),
            static_cast<std::uint64_t>(kReqs));

  server.request_stop();
  serve.join();
}

}  // namespace
}  // namespace otb

#else  // !defined(__linux__)

TEST(NetServerTest, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif
