// Tests for the benchmark harness itself: the fixed-duration driver's
// phase protocol and aggregation, and environment-variable handling —
// deliverable (d) is only as trustworthy as this machinery.
#include <gtest/gtest.h>

#include <cstdlib>

#include "benchlib/driver.h"
#include "benchlib/table.h"

namespace otb::bench {
namespace {

TEST(BenchDriver, CountsOnlyMeasuredPhase) {
  const RunResult r = run_fixed_duration(
      2, /*warm_ms=*/20, /*run_ms=*/60,
      [](unsigned, const std::function<Phase()>& phase, ThreadResult& out) {
        bool saw_warmup = false;
        while (phase() != Phase::kDone) {
          if (phase() == Phase::kWarmup) saw_warmup = true;
          if (phase() == Phase::kMeasure) ++out.ops;
        }
        EXPECT_TRUE(saw_warmup);
      });
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.ops_per_sec, 0.0);
}

TEST(BenchDriver, AggregatesAcrossThreads) {
  const RunResult r = run_fixed_duration(
      4, 5, 30,
      [](unsigned tid, const std::function<Phase()>& phase, ThreadResult& out) {
        while (phase() != Phase::kDone) {
          if (phase() == Phase::kMeasure) {
            ++out.ops;
            out.aborts += tid;  // distinguishable per-thread contributions
          }
        }
        out.stats.commits = 7;
      });
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_EQ(r.stats.commits, 4u * 7u);
}

TEST(BenchDriver, EnvOverridesRespected) {
  setenv("OTB_BENCH_MS", "123", 1);
  EXPECT_EQ(measure_ms(), 123u);
  unsetenv("OTB_BENCH_MS");
  EXPECT_EQ(measure_ms(), 250u);

  setenv("OTB_BENCH_THREADS", "3 5", 1);
  const auto counts = thread_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 5u);
  unsetenv("OTB_BENCH_THREADS");
  EXPECT_EQ(thread_counts().size(), 4u);  // default "1 2 4 8"
}

TEST(BenchTable, PrintsAllRowsAndShape) {
  // Smoke test: printing must not crash and must handle ragged use.
  SeriesTable table("unit", "threads", {"1", "2"});
  table.add_row("A", {100.0, 200.0});
  table.add_row("B", {150.0, 120.0});
  table.print("ops");                 // winner at col 2 is A
  table.print_fractional("fraction");  // alternate format
}

}  // namespace
}  // namespace otb::bench
