// Tests for the adaptive stop-the-world runtime: mid-run algorithm
// switches must preserve every invariant, thread handles must survive
// switches, and the §5.4.1 policy must pick NOrec for traversal-dominated
// shapes and RTC for commit-bound shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/adaptive.h"

namespace otb::stm {
namespace {

TEST(Adaptive, PolicyMatchesPaperHeuristic) {
  AdaptiveRuntime rt(AlgoKind::kNOrec);
  // Linked-list shape: hundreds of reads, ~2 writes -> NOrec (§5.4.1).
  EXPECT_EQ(rt.recommend(250.0, 2.0), AlgoKind::kNOrec);
  // Read-only shape -> NOrec.
  EXPECT_EQ(rt.recommend(50.0, 0.0), AlgoKind::kNOrec);
  // Commit-bound shape (ssca2-like): few reads, many writes -> RTC.
  EXPECT_EQ(rt.recommend(16.0, 24.0), AlgoKind::kRTC);
}

TEST(Adaptive, ManualSwitchPreservesCounter) {
  AdaptiveRuntime rt(AlgoKind::kNOrec);
  TVar<std::int64_t> counter{0};
  constexpr int kThreads = 4, kIters = 400;
  std::atomic<bool> stop_switching{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      AdaptiveThread th(rt);
      for (int i = 0; i < kIters; ++i) {
        rt.atomically(th, [&](Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
      }
    });
  }
  // Cycle through algorithms (including the server-based ones) while the
  // workers hammer the counter.
  std::thread switcher([&] {
    const AlgoKind cycle[] = {AlgoKind::kTL2, AlgoKind::kRTC, AlgoKind::kNOrec,
                              AlgoKind::kRInval, AlgoKind::kTinySTM};
    unsigned i = 0;
    while (!stop_switching.load()) {
      rt.switch_to(cycle[i++ % 5]);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  stop_switching = true;
  switcher.join();
  EXPECT_EQ(counter.load_direct(), std::int64_t(kThreads) * kIters);
}

TEST(Adaptive, SwitchToSameKindIsNoOp) {
  AdaptiveRuntime rt(AlgoKind::kTL2);
  rt.switch_to(AlgoKind::kTL2);
  EXPECT_EQ(rt.kind(), AlgoKind::kTL2);
}

TEST(Adaptive, MaybeAdaptSwitchesOnObservedShape) {
  AdaptiveRuntime rt(AlgoKind::kRTC);
  AdaptiveThread th(rt);
  TArray<std::int64_t> chain(64, 1);
  // Traversal-heavy, write-light transactions.
  for (int i = 0; i < 20; ++i) {
    rt.atomically(th, [&](Tx& tx) {
      std::int64_t sum = 0;
      for (std::size_t w = 0; w < 64; ++w) sum += tx.read(chain[w]);
      tx.write(chain[0], sum % 7 + 1);
    });
  }
  EXPECT_TRUE(rt.maybe_adapt(th.stats()));
  EXPECT_EQ(rt.kind(), AlgoKind::kNOrec);
  // Adapting again with the same shape is a no-op.
  EXPECT_FALSE(rt.maybe_adapt(th.stats()));
}

TEST(Adaptive, StatsAccumulateAcrossGenerations) {
  AdaptiveRuntime rt(AlgoKind::kNOrec);
  AdaptiveThread th(rt);
  TVar<std::int64_t> x{0};
  for (int i = 0; i < 10; ++i) {
    rt.atomically(th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  rt.switch_to(AlgoKind::kTL2);
  for (int i = 0; i < 10; ++i) {
    rt.atomically(th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  EXPECT_EQ(th.stats().commits, 20u);
  EXPECT_EQ(x.load_direct(), 20);
}

TEST(Adaptive, BankInvariantAcrossSwitches) {
  AdaptiveRuntime rt(AlgoKind::kNOrec);
  constexpr std::size_t kAccounts = 16;
  TArray<std::int64_t> balance(kAccounts, 100);
  constexpr int kThreads = 3, kIters = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      AdaptiveThread th(rt);
      Xorshift rng{std::uint64_t(t) + 9};
      for (int i = 0; i < kIters; ++i) {
        const auto from = rng.next_bounded(kAccounts);
        const auto to = rng.next_bounded(kAccounts);
        rt.atomically(th, [&](Tx& tx) {
          tx.write(balance[from], tx.read(balance[from]) - 3);
          tx.write(balance[to], tx.read(balance[to]) + 3);
        });
        if (i % 50 == 25) rt.maybe_adapt(th.stats());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  for (std::size_t a = 0; a < kAccounts; ++a) total += balance[a].load_direct();
  EXPECT_EQ(total, std::int64_t(kAccounts) * 100);
}

}  // namespace
}  // namespace otb::stm
