// Tests for the pessimistic-boosting baselines: eager execution with
// semantic undo, abstract-lock two-phase locking, rollback correctness, and
// the deleted-holder machinery of the boosted priority queue.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "boosted/boosted_pq.h"
#include "boosted/boosted_runtime.h"
#include "boosted/boosted_set.h"
#include "cds/lazy_list_set.h"
#include "cds/lazy_skiplist_set.h"
#include "common/rng.h"

namespace otb {
namespace {

template <typename UnderT>
class BoostedSetTest : public ::testing::Test {};

using UnderTypes = ::testing::Types<cds::LazyListSet, cds::LazySkipListSet>;
TYPED_TEST_SUITE(BoostedSetTest, UnderTypes);

TYPED_TEST(BoostedSetTest, BasicTransactionalOps) {
  boosted::BoostedSet<TypeParam> set;
  bool r = false;
  boosted::atomically([&](boosted::BoostedTx& t) { r = set.add(t, 3); });
  EXPECT_TRUE(r);
  boosted::atomically([&](boosted::BoostedTx& t) { r = set.contains(t, 3); });
  EXPECT_TRUE(r);
  boosted::atomically([&](boosted::BoostedTx& t) { r = set.remove(t, 3); });
  EXPECT_TRUE(r);
  EXPECT_EQ(set.size_unsafe(), 0u);
}

TYPED_TEST(BoostedSetTest, EagerWritesAreVisibleBeforeCommit) {
  // The defining difference from OTB (§2.3): pessimistic boosting publishes
  // at encounter time.
  boosted::BoostedSet<TypeParam> set;
  boosted::atomically([&](boosted::BoostedTx& t) {
    set.add(t, 9);
    EXPECT_EQ(set.size_unsafe(), 1u);  // already in shared state
  });
}

TYPED_TEST(BoostedSetTest, AbortReplaysInverseOperations) {
  boosted::BoostedSet<TypeParam> set;
  boosted::atomically([&](boosted::BoostedTx& t) { set.add(t, 1); });
  int attempts = 0;
  boosted::atomically([&](boosted::BoostedTx& t) {
    EXPECT_TRUE(set.add(t, 2));
    EXPECT_TRUE(set.remove(t, 1));
    if (++attempts == 1) throw TxAbort{};
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_FALSE(set.underlying().contains(1));
  EXPECT_TRUE(set.underlying().contains(2));
  EXPECT_EQ(set.size_unsafe(), 1u);
}

TYPED_TEST(BoostedSetTest, ConcurrentNetCountConserved) {
  boosted::BoostedSet<TypeParam> set;
  constexpr int kThreads = 4, kIters = 1000, kRange = 64;
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng{std::uint64_t(t) * 131 + 3};
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = std::int64_t(rng.next_bounded(kRange));
        bool ok = false;
        if (rng.chance_pct(50)) {
          boosted::atomically([&](boosted::BoostedTx& tr) { ok = set.add(tr, key); });
          if (ok) ++local;
        } else {
          boosted::atomically(
              [&](boosted::BoostedTx& tr) { ok = set.remove(tr, key); });
          if (ok) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), std::size_t(net.load()));
}

TYPED_TEST(BoostedSetTest, AbstractLocksSerializeSameKey) {
  // Two transactions hammering the same key: the abstract lock must make
  // add/remove pairs atomic, so the key's presence flips cleanly.
  boosted::BoostedSet<TypeParam> set;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        boosted::atomically([&](boosted::BoostedTx& tr) {
          if (set.add(tr, 42)) {
            EXPECT_TRUE(set.remove(tr, 42));
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), 0u);
}

TEST(BoostedPQ, OrderedDrainAndUndo) {
  boosted::BoostedHeapPQ pq;
  boosted::atomically([&](boosted::BoostedTx& t) {
    for (std::int64_t k : {5, 1, 3}) pq.add(t, k);
  });
  int attempts = 0;
  boosted::atomically([&](boosted::BoostedTx& t) {
    std::int64_t v = -1;
    ASSERT_TRUE(pq.remove_min(t, &v));
    EXPECT_EQ(v, 1);
    pq.add(t, 0);
    if (++attempts == 1) throw TxAbort{};
  });
  EXPECT_EQ(attempts, 2);
  // After one rollback and one commit: {3, 5} plus the committed {0}.
  std::int64_t v = -1;
  boosted::atomically([&](boosted::BoostedTx& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 0);
  boosted::atomically([&](boosted::BoostedTx& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 3);
  boosted::atomically([&](boosted::BoostedTx& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 5);
  boosted::atomically([&](boosted::BoostedTx& t) { EXPECT_FALSE(pq.remove_min(t, &v)); });
}

TEST(BoostedPQ, RolledBackAddIsNeverPopped) {
  boosted::BoostedHeapPQ pq;
  pq.add_seq(10);
  int attempts = 0;
  boosted::atomically([&](boosted::BoostedTx& t) {
    pq.add(t, 1);
    if (++attempts == 1) throw TxAbort{};
  });
  std::int64_t v = -1;
  boosted::atomically([&](boosted::BoostedTx& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 1);  // the retried (committed) add
  boosted::atomically([&](boosted::BoostedTx& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 10);
  boosted::atomically([&](boosted::BoostedTx& t) { EXPECT_FALSE(pq.remove_min(t, &v)); });
}

TEST(BoostedPQ, ConcurrentProducersConsumersConserve) {
  boosted::BoostedHeapPQ pq;
  constexpr int kProducers = 2, kEach = 400;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) {
        boosted::atomically(
            [&](boosted::BoostedTx& t) { pq.add(t, p * kEach + i); });
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (consumed.load() < kProducers * kEach) {
        bool ok = false;
        std::int64_t v = -1;
        boosted::atomically(
            [&](boosted::BoostedTx& t) { ok = pq.remove_min(t, &v); });
        if (ok) consumed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& th : consumers) th.join();
  EXPECT_EQ(consumed.load(), kProducers * kEach);
  EXPECT_EQ(pq.size_unsafe(), 0u);
}

}  // namespace
}  // namespace otb
