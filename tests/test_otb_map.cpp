// Tests for the OTB map extension: insert-or-assign semantics, node
// replacement on overwrite, the local write-set state machine, oracle
// equivalence, and composition with memory transactions.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "integration/otb_stm.h"
#include "otb/otb_list_map.h"
#include "otb/runtime.h"

namespace otb {
namespace {

TEST(OtbMap, PutGetEraseBasics) {
  tx::OtbListMap map;
  bool fresh = false;
  tx::atomically([&](tx::Transaction& t) { fresh = map.put(t, 1, 10); });
  EXPECT_TRUE(fresh);
  tx::atomically([&](tx::Transaction& t) { fresh = map.put(t, 1, 20); });
  EXPECT_FALSE(fresh);  // overwrite
  std::int64_t v = 0;
  bool found = false;
  tx::atomically([&](tx::Transaction& t) { found = map.get(t, 1, &v); });
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 20);
  bool erased = false;
  tx::atomically([&](tx::Transaction& t) { erased = map.erase(t, 1); });
  EXPECT_TRUE(erased);
  tx::atomically([&](tx::Transaction& t) { erased = map.erase(t, 1); });
  EXPECT_FALSE(erased);
  EXPECT_EQ(map.size_unsafe(), 0u);
}

TEST(OtbMap, LocalStateMachineWithinOneTransaction) {
  tx::OtbListMap map;
  map.put_seq(5, 50);
  tx::atomically([&](tx::Transaction& t) {
    std::int64_t v = 0;
    // put on shared key -> pending replace, visible locally.
    EXPECT_FALSE(map.put(t, 5, 55));
    ASSERT_TRUE(map.get(t, 5, &v));
    EXPECT_EQ(v, 55);
    // erase on Replace -> Erase.
    EXPECT_TRUE(map.erase(t, 5));
    EXPECT_FALSE(map.get(t, 5, &v));
    // put on Erase -> Replace again.
    EXPECT_TRUE(map.put(t, 5, 56));
    ASSERT_TRUE(map.get(t, 5, &v));
    EXPECT_EQ(v, 56);
    // fresh key: insert then eliminate.
    EXPECT_TRUE(map.put(t, 9, 90));
    EXPECT_TRUE(map.erase(t, 9));
    EXPECT_FALSE(map.contains(t, 9));
  });
  auto snap = map.snapshot_unsafe();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0], (std::pair<std::int64_t, std::int64_t>{5, 56}));
}

TEST(OtbMap, MatchesStdMapOracle) {
  tx::OtbListMap map;
  std::map<std::int64_t, std::int64_t> oracle;
  Xorshift rng{77};
  for (int round = 0; round < 400; ++round) {
    const unsigned ops = 1 + rng.next_bounded(4);
    std::vector<std::tuple<unsigned, std::int64_t, std::int64_t>> program;
    for (unsigned i = 0; i < ops; ++i) {
      program.emplace_back(rng.next_bounded(3),
                           std::int64_t(rng.next_bounded(40)),
                           std::int64_t(rng.next_bounded(1000)));
    }
    std::vector<std::int64_t> tx_results;
    tx::atomically([&](tx::Transaction& t) {
      tx_results.clear();
      for (auto [op, k, v] : program) {
        switch (op) {
          case 0:
            tx_results.push_back(map.put(t, k, v));
            break;
          case 1:
            tx_results.push_back(map.erase(t, k));
            break;
          default: {
            std::int64_t out = -1;
            tx_results.push_back(map.get(t, k, &out) ? out : -1);
            break;
          }
        }
      }
    });
    std::vector<std::int64_t> oracle_results;
    for (auto [op, k, v] : program) {
      switch (op) {
        case 0:
          oracle_results.push_back(oracle.insert_or_assign(k, v).second);
          break;
        case 1:
          oracle_results.push_back(oracle.erase(k) == 1);
          break;
        default: {
          const auto it = oracle.find(k);
          oracle_results.push_back(it != oracle.end() ? it->second : -1);
          break;
        }
      }
    }
    ASSERT_EQ(tx_results, oracle_results) << "round " << round;
  }
  const auto snap = map.snapshot_unsafe();
  ASSERT_EQ(snap.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(snap[i].first, k);
    EXPECT_EQ(snap[i].second, v);
    ++i;
  }
}

TEST(OtbMap, ConcurrentTransfersConserveSum) {
  // Balances in the map; transfers move amounts between keys atomically.
  tx::OtbListMap map;
  constexpr std::int64_t kAccounts = 16, kInitial = 100;
  for (std::int64_t a = 0; a < kAccounts; ++a) map.put_seq(a, kInitial);
  constexpr int kThreads = 4, kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng{std::uint64_t(t) * 101 + 7};
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t from = std::int64_t(rng.next_bounded(kAccounts));
        const std::int64_t to = std::int64_t(rng.next_bounded(kAccounts));
        tx::atomically([&](tx::Transaction& tr) {
          std::int64_t fv = 0, tv = 0;
          ASSERT_TRUE(map.get(tr, from, &fv));
          ASSERT_TRUE(map.get(tr, to, &tv));
          if (from != to) {
            map.put(tr, from, fv - 1);
            map.put(tr, to, tv + 1);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  for (const auto& [k, v] : map.snapshot_unsafe()) total += v;
  EXPECT_EQ(total, kAccounts * kInitial);
  EXPECT_EQ(map.size_unsafe(), std::size_t(kAccounts));
}

TEST(OtbMap, WorksInsideIntegratedStmTransactions) {
  integration::Runtime rt(integration::HostAlgo::kOtbNOrec);
  tx::OtbListMap map;
  stm::TVar<std::int64_t> writes{0};
  auto ctx = rt.make_tx();
  for (int i = 0; i < 50; ++i) {
    rt.atomically(*ctx, [&](integration::OtbTx& tx) {
      map.put(tx, i % 10, i);
      tx.write(writes, tx.read(writes) + 1);
    });
  }
  EXPECT_EQ(writes.load_direct(), 50);
  EXPECT_EQ(map.size_unsafe(), 10u);
}

}  // namespace
}  // namespace otb
