// Per-app mini-STAMP smoke binary: `ministamp_smoke <app> [threads]` runs
// one workload at its tiny default scale under NOrec and checks the app's
// final-state invariant, exiting nonzero on violation.  One tier-1 ctest
// per app (see tests/CMakeLists.txt) keeps each workload individually
// green — the gtest suite (test_ministamp) sweeps algorithms and thread
// counts, but a broken app there is one EXPECT among hundreds; here it is
// a named red test in the tier-1 summary.
//
// Invariants:
//   deterministic apps — concurrent checksum equals the 1-thread oracle
//     run in-process (STAMP's "execution is equivalent to sequential");
//   labyrinth — every route either lands or fails: routed + failed
//     equals the grid's route count (96 * OTB_STAMP_SCALE).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ministamp/ministamp.h"

int main(int argc, char** argv) {
  using namespace otb::ministamp;
  if (argc < 2) {
    std::fprintf(stderr, "usage: ministamp_smoke <app> [threads]\n");
    return 2;
  }
  const char* want = argv[1];
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  const auto apps = make_all_apps();
  for (const auto& app : apps) {
    if (std::strcmp(app->name(), want) != 0) continue;

    otb::stm::Config cfg;
    cfg.max_threads = threads > 1 ? threads : 2;
    otb::stm::Runtime rt(otb::stm::AlgoKind::kNOrec, cfg);
    const AppResult got = app->run(rt, threads);
    if (got.stats.commits == 0) {
      std::fprintf(stderr, "FAIL %s: no transaction committed\n", want);
      return 1;
    }

    if (app->deterministic()) {
      otb::stm::Runtime oracle_rt(otb::stm::AlgoKind::kNOrec);
      const AppResult oracle = app->run(oracle_rt, 1);
      if (got.checksum != oracle.checksum) {
        std::fprintf(stderr,
                     "FAIL %s: checksum %llu != sequential oracle %llu\n",
                     want, static_cast<unsigned long long>(got.checksum),
                     static_cast<unsigned long long>(oracle.checksum));
        return 1;
      }
    } else {
      // labyrinth: checksum = routed * 1000 + failed.
      const std::uint64_t routed = got.checksum / 1000;
      const std::uint64_t failed = got.checksum % 1000;
      const std::uint64_t total = 96ull * stamp_scale();
      if (routed + failed != total || routed == 0) {
        std::fprintf(stderr,
                     "FAIL %s: routed %llu + failed %llu != %llu routes\n",
                     want, static_cast<unsigned long long>(routed),
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(total));
        return 1;
      }
    }
    std::printf("OK %s threads=%u checksum=%llu commits=%llu\n", want,
                threads, static_cast<unsigned long long>(got.checksum),
                static_cast<unsigned long long>(got.stats.commits));
    return 0;
  }
  std::fprintf(stderr, "unknown app: %s\n", want);
  return 2;
}
