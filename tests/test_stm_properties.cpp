// Property-based STM tests, parameterized over every algorithm:
//   * single-threaded random programs must be bit-equivalent to a plain
//     sequential interpreter;
//   * concurrent random programs must be *serializable*: a global invariant
//     function of the state is preserved by construction of the ops;
//   * user-thrown aborts at random points must leave no trace (lazy algos);
//   * snapshot consistency: a reader never observes a mix of two commits.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/stm.h"

namespace otb::stm {
namespace {

class StmPropertyTest : public ::testing::TestWithParam<AlgoKind> {};

INSTANTIATE_TEST_SUITE_P(AllAlgos, StmPropertyTest,
                         ::testing::Values(AlgoKind::kNOrec, AlgoKind::kTML,
                                           AlgoKind::kTL2, AlgoKind::kRingSW,
                                           AlgoKind::kInvalSTM, AlgoKind::kRTC,
                                           AlgoKind::kRInval, AlgoKind::kCGL,
                                           AlgoKind::kTinySTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(StmPropertyTest, RandomProgramsMatchSequentialInterpreter) {
  Runtime rt(GetParam());
  constexpr std::size_t kWords = 24;
  TArray<std::int64_t> mem(kWords, 0);
  std::vector<std::int64_t> model(kWords, 0);
  TxThread th(rt);
  Xorshift rng{GetParam() == AlgoKind::kTML ? 11u : 13u};
  for (int round = 0; round < 300; ++round) {
    // Random straight-line program: mixture of copies, sums, constants.
    struct Step {
      unsigned op, a, b, c;
      std::int64_t imm;
    };
    std::vector<Step> prog;
    const unsigned len = 1 + rng.next_bounded(6);
    for (unsigned i = 0; i < len; ++i) {
      prog.push_back({unsigned(rng.next_bounded(3)),
                      unsigned(rng.next_bounded(kWords)),
                      unsigned(rng.next_bounded(kWords)),
                      unsigned(rng.next_bounded(kWords)),
                      std::int64_t(rng.next_bounded(100))});
    }
    rt.atomically(th, [&](Tx& tx) {
      for (const Step& s : prog) {
        switch (s.op) {
          case 0:
            tx.write(mem[s.a], s.imm);
            break;
          case 1:
            tx.write(mem[s.a], tx.read(mem[s.b]));
            break;
          default:
            tx.write(mem[s.a], tx.read(mem[s.b]) + tx.read(mem[s.c]));
            break;
        }
      }
    });
    for (const Step& s : prog) {
      switch (s.op) {
        case 0:
          model[s.a] = s.imm;
          break;
        case 1:
          model[s.a] = model[s.b];
          break;
        default:
          model[s.a] = model[s.b] + model[s.c];
          break;
      }
    }
    for (std::size_t w = 0; w < kWords; ++w) {
      ASSERT_EQ(mem[w].load_direct(), model[w]) << "round " << round;
    }
  }
}

TEST_P(StmPropertyTest, UserAbortLeavesNoTrace) {
  if (GetParam() == AlgoKind::kTML || GetParam() == AlgoKind::kCGL) {
    GTEST_SKIP() << "irrevocable writers by design";
  }
  Runtime rt(GetParam());
  TArray<std::int64_t> mem(8, 7);
  TxThread th(rt);
  Xorshift rng{3};
  for (int round = 0; round < 200; ++round) {
    int attempts = 0;
    rt.atomically(th, [&](Tx& tx) {
      Xorshift inner = rng;
      for (int w = 0; w < 4; ++w) {
        const auto slot = inner.next_bounded(8);
        tx.write(mem[slot], tx.read(mem[slot]) + 1000);
      }
      if (++attempts == 1) throw TxAbort{};  // first attempt always aborts
      // Second attempt: undo the +1000s so the quiescent state is stable.
      Xorshift redo = rng;
      for (int w = 0; w < 4; ++w) {
        const auto slot = redo.next_bounded(8);
        tx.write(mem[slot], tx.read(mem[slot]) - 1000);
      }
    });
    rng.next();
    for (std::size_t i = 0; i < 8; ++i) {
      ASSERT_EQ(mem[i].load_direct(), 7) << "round " << round;
    }
  }
}

TEST_P(StmPropertyTest, ReadersNeverObserveHalfACommit) {
  Runtime rt(GetParam());
  constexpr std::size_t kWords = 16;
  TArray<std::int64_t> mem(kWords, 0);
  std::atomic<bool> stop{false};
  // Writer publishes generation g to every word in one transaction.
  std::thread writer([&] {
    TxThread th(rt);
    for (std::int64_t g = 1; g <= 250; ++g) {
      rt.atomically(th, [&](Tx& tx) {
        for (std::size_t w = 0; w < kWords; ++w) tx.write(mem[w], g);
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    TxThread th(rt);
    while (!stop.load()) {
      std::int64_t first = -1;
      bool uniform = true;
      rt.atomically(th, [&](Tx& tx) {
        first = tx.read(mem[0]);
        uniform = true;
        for (std::size_t w = 1; w < kWords; ++w) {
          if (tx.read(mem[w]) != first) uniform = false;
        }
      });
      EXPECT_TRUE(uniform) << "torn snapshot at generation " << first;
    }
  });
  writer.join();
  reader.join();
}

TEST_P(StmPropertyTest, ConcurrentRandomTransfersPreserveInvariant) {
  Runtime rt(GetParam());
  constexpr std::size_t kWords = 12;
  constexpr std::int64_t kEach = 50;
  TArray<std::int64_t> mem(kWords, kEach);
  constexpr int kThreads = 3, kIters = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxThread th(rt);
      Xorshift rng{std::uint64_t(t) * 7 + 1};
      for (int i = 0; i < kIters; ++i) {
        // Rotate a random amount around a random 3-cycle: sum invariant.
        const auto a = rng.next_bounded(kWords);
        const auto b = rng.next_bounded(kWords);
        const auto c = rng.next_bounded(kWords);
        const auto amt = std::int64_t(rng.next_bounded(5));
        rt.atomically(th, [&](Tx& tx) {
          tx.write(mem[a], tx.read(mem[a]) - amt);
          tx.write(mem[b], tx.read(mem[b]) + amt);
          tx.write(mem[b], tx.read(mem[b]) - amt / 2);
          tx.write(mem[c], tx.read(mem[c]) + amt / 2);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  for (std::size_t w = 0; w < kWords; ++w) total += mem[w].load_direct();
  EXPECT_EQ(total, std::int64_t(kWords) * kEach);
}

TEST_P(StmPropertyTest, WriteSetOverwritesInsideOneTransaction) {
  Runtime rt(GetParam());
  TVar<std::int64_t> x{0};
  TxThread th(rt);
  rt.atomically(th, [&](Tx& tx) {
    for (std::int64_t i = 1; i <= 50; ++i) tx.write(x, i);
    EXPECT_EQ(tx.read(x), 50);
  });
  EXPECT_EQ(x.load_direct(), 50);
}

}  // namespace
}  // namespace otb::stm
