// Unit suite for the otb::metrics subsystem: sharded counter correctness
// under contention, histogram bucket boundaries, abort-reason attribution
// for forced STM aborts (validation and lock-fail), attempt reports from
// the redesigned atomically(), registry stability, and the JSON round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "otb/runtime.h"
#include "stm/stm.h"

namespace otb::metrics {
namespace {

TEST(Counter, ShardedAddsSumExactlyUnderThreads) {
  Counter c;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.total(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Histogram, Log2BucketBoundaries) {
  Histogram h;
  h.record(0);  // bit_width(0) == 0 -> bucket 0
  h.record(1);  // -> bucket 1
  h.record(2);  // -> bucket 2
  h.record(3);  // -> bucket 2
  h.record(4);  // -> bucket 3
  h.record(std::numeric_limits<std::uint64_t>::max());  // clamps to last
  const auto b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
  EXPECT_EQ(b[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.count(), 6u);
  std::uint64_t sum = 0;
  for (const auto v : b) sum += v;
  EXPECT_EQ(sum, h.count());
}

TEST(Tally, DeltaSinceIsFieldwise) {
  TxTally a;
  a.reads = 10;
  a.writes = 4;
  a.validations = 2;
  a.ns_total = 1000;
  TxTally b = a;
  b.reads = 17;
  b.ns_total = 1600;
  const TxTally d = b.delta_since(a);
  EXPECT_EQ(d.reads, 7u);
  EXPECT_EQ(d.writes, 0u);
  EXPECT_EQ(d.ns_total, 600u);
}

TEST(Sink, RecordAttemptFlushesDeltaAndAttributesAbort) {
  MetricsSink sink;
  TxTally d;
  d.reads = 3;
  d.writes = 1;
  d.lock_cas_failures = 2;
  d.ns_total = 500;
  sink.record_attempt(d, /*committed=*/false, AbortReason::kLockFail);
  EXPECT_EQ(sink.counter(CounterId::kAttempts), 1u);
  EXPECT_EQ(sink.counter(CounterId::kCommits), 0u);
  EXPECT_EQ(sink.counter(CounterId::kReads), 3u);
  EXPECT_EQ(sink.counter(CounterId::kLockCasFailures), 2u);
  EXPECT_EQ(sink.aborts(AbortReason::kLockFail), 1u);
  EXPECT_EQ(sink.aborts_total(), 1u);
  const SinkSnapshot s = sink.snapshot();
  EXPECT_EQ(s.phase(Phase::kAttempt).count, 1u);
  EXPECT_EQ(s.phase(Phase::kAttempt).total_ns, 500u);
  EXPECT_EQ(s.phase(Phase::kValidation).count, 0u);  // zero delta skipped
}

TEST(Registry, SinkAddressStableAndSnapshotNamesDomain) {
  MetricsSink& a = Registry::global().sink("test.metrics.stable");
  a.add(CounterId::kCommits, 3);
  MetricsSink& b = Registry::global().sink("test.metrics.stable");
  EXPECT_EQ(&a, &b);
  const Snapshot snap = Registry::global().snapshot();
  const SinkSnapshot* s = snap.find("test.metrics.stable");
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->counter(CounterId::kCommits), 3u);
}

Snapshot sample_snapshot() {
  Snapshot snap;
  SinkSnapshot s;
  for (std::size_t i = 0; i < kCounterCount; ++i) s.counters[i] = 100 + i;
  for (std::size_t i = 0; i < kAbortReasonCount; ++i) s.aborts[i] = i * 2;
  s.aborts[0] = 0;  // kNone is never emitted, so it must round-trip as zero
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    s.phases[p].count = 7 + p;
    s.phases[p].total_ns = 900 + p;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      s.phases[p].log2_buckets[b] = (p + 1) * b;
  }
  snap.domains.emplace_back("stm.NOrec", s);
  SinkSnapshot empty;
  snap.domains.emplace_back("otb.tx", empty);
  return snap;
}

TEST(Json, SnapshotRoundTrips) {
  const Snapshot snap = sample_snapshot();
  const std::string body = to_json(snap);
  const auto back = from_json(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, snap);
}

TEST(Json, StrictParserRejectsCorruptedDumps) {
  const std::string body = to_json(sample_snapshot());
  EXPECT_FALSE(from_json("").has_value());
  EXPECT_FALSE(from_json(body + "x").has_value());  // trailing garbage
  std::string renamed = body;
  renamed.replace(renamed.find("\"commits\""), 9, "\"commitz\"");
  EXPECT_FALSE(from_json(renamed).has_value());  // unknown + missing key
  std::string truncated = body.substr(0, body.size() / 2);
  EXPECT_FALSE(from_json(truncated).has_value());
}

}  // namespace
}  // namespace otb::metrics

namespace otb::stm {
namespace {

TEST(AbortAttribution, NOrecValidationFailure) {
  metrics::MetricsSink fake;
  Config cfg;
  cfg.max_threads = 8;
  cfg.metrics = &fake;
  Runtime rt(AlgoKind::kNOrec, cfg);
  TVar<std::int64_t> x{1};
  TVar<std::int64_t> y{1};
  TxThread th(rt);
  bool conflicted = false;
  const metrics::AttemptReport report = rt.atomically(th, [&](Tx& tx) {
    tx.read(x);
    if (!conflicted) {
      conflicted = true;
      std::thread([&rt, &x] {
        TxThread helper(rt);
        rt.atomically(helper, [&](Tx& htx) { htx.write(x, htx.read(x) + 1); });
      }).join();
    }
    tx.read(y);  // clock moved -> value-based validation -> x mismatch
  });
  EXPECT_EQ(report.commits, 1u);
  EXPECT_EQ(report.aborts, 1u);
  EXPECT_EQ(report.last_reason, metrics::AbortReason::kValidation);
  EXPECT_EQ(fake.counter(metrics::CounterId::kAttempts), 3u);  // helper too
  EXPECT_EQ(fake.counter(metrics::CounterId::kCommits), 2u);
  EXPECT_EQ(fake.aborts(metrics::AbortReason::kValidation), 1u);
  EXPECT_EQ(fake.aborts_total(), 1u);
}

TEST(AbortAttribution, TmlLockFailure) {
  metrics::MetricsSink fake;
  Config cfg;
  cfg.max_threads = 8;
  cfg.metrics = &fake;
  Runtime rt(AlgoKind::kTML, cfg);
  TVar<std::int64_t> x{1};
  TxThread th(rt);
  bool conflicted = false;
  const metrics::AttemptReport report = rt.atomically(th, [&](Tx& tx) {
    const std::int64_t v = tx.read(x);
    if (!conflicted) {
      conflicted = true;
      std::thread([&rt, &x] {
        TxThread helper(rt);
        rt.atomically(helper, [&](Tx& htx) { htx.write(x, htx.read(x) + 1); });
      }).join();
    }
    tx.write(x, v + 1);  // stale snapshot -> try_acquire fails
  });
  EXPECT_EQ(report.commits, 1u);
  EXPECT_GE(report.aborts, 1u);
  EXPECT_EQ(report.last_reason, metrics::AbortReason::kLockFail);
  EXPECT_GE(fake.aborts(metrics::AbortReason::kLockFail), 1u);
  EXPECT_GE(fake.counter(metrics::CounterId::kLockCasFailures), 1u);
}

TEST(StatsView, CompatViewIsReadOnlyValueCopy) {
  Runtime rt(AlgoKind::kNOrec, Config{});
  TVar<std::int64_t> x{0};
  TxThread th(rt);
  rt.atomically(th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  const TxStats view = th.tx().stats();
  EXPECT_EQ(view.commits, 1u);
  EXPECT_EQ(view.reads, 1u);
  EXPECT_EQ(view.writes, 1u);
  EXPECT_EQ(rt.metrics().counter(metrics::CounterId::kCommits), 1u);
}

}  // namespace
}  // namespace otb::stm

namespace otb::tx {
namespace {

TEST(OtbAtomically, AttemptReportAndExplicitAbortReason) {
  metrics::MetricsSink fake;
  set_metrics_sink(&fake);
  bool aborted_once = false;
  const metrics::AttemptReport report = atomically([&](Transaction&) {
    if (!aborted_once) {
      aborted_once = true;
      throw TxAbort{};  // bare user abort -> kExplicit
    }
  });
  set_metrics_sink(nullptr);  // restore registry default
  EXPECT_EQ(report.commits, 1u);
  EXPECT_EQ(report.aborts, 1u);
  EXPECT_EQ(report.attempts(), 2u);
  EXPECT_EQ(report.last_reason, metrics::AbortReason::kExplicit);
  EXPECT_EQ(fake.counter(metrics::CounterId::kAttempts), 2u);
  EXPECT_EQ(fake.counter(metrics::CounterId::kCommits), 1u);
  EXPECT_EQ(fake.aborts(metrics::AbortReason::kExplicit), 1u);
}

TEST(OtbAtomically, TimingPopulatesPhaseHistograms) {
  metrics::MetricsSink fake;
  set_metrics_sink(&fake);
  set_collect_timing(true);
  atomically([](Transaction&) {});
  set_collect_timing(false);
  set_metrics_sink(nullptr);
  const metrics::SinkSnapshot s = fake.snapshot();
  EXPECT_EQ(s.phase(metrics::Phase::kAttempt).count, 1u);
  std::uint64_t sum = 0;
  for (const auto b : s.phase(metrics::Phase::kAttempt).log2_buckets) sum += b;
  EXPECT_EQ(sum, 1u);
}

}  // namespace
}  // namespace otb::tx
