// Tier-2 crash-injection harness for the durability layer (ROADMAP item 3).
//
// Each round forks a child that runs a durable service (group-commit WAL)
// under concurrent client load.  Every client journals each operation to
// plain O_APPEND files: a `submitted` line before submit() and an `acked`
// line only after the future resolves kOk.  The parent SIGKILLs the child
// at a random point mid-load, recovers the WAL directory into fresh
// structures, and checks crash consistency:
//
//   - acked => durable: every acknowledged operation's effect is present
//     (group commit fsyncs the shard log before any kOk completes);
//   - in-flight ops (submitted, never acked) may have landed or not —
//     each is enumerated as {absent, applied-ok, applied-failed} and the
//     per-key history must linearize (Wing–Gong, MapKeySpec) under at
//     least one choice, with synthetic final reads of the recovered state
//     pinning what actually survived;
//   - whole-object PQ conservation: acked pushes minus acked pops must
//     survive (modulo in-flight pops), and the recovered queue can hold
//     nothing that was never submitted;
//   - the log keeps working after a crash: Service::recover() + start()
//     on the recovered state accepts new writes, and a final recovery
//     sees them.
//
// Scale: OTB_STRESS_SCALE multiplies the number of crash rounds.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/platform.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "service/recovery.h"
#include "service/service.h"
#include "verify/lin_check.h"
#include "verify/spec.h"
#include "verify/stress.h"

namespace otb {
namespace {

using service::RecoveryReport;
using service::RecoveryStatus;
using service::Request;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using service::Targets;
using service::WalFsync;
using verify::Event;
using verify::History;
using verify::LinResult;
using verify::LinStatus;
using verify::MapKeySpec;
using verify::OpKind;

constexpr unsigned kMapClients = 3;
constexpr unsigned kPqClients = 1;
constexpr std::int64_t kSharedKeys = 8;     // keys [0,8) contended by all
constexpr std::int64_t kOwnKeys = 16;       // per-thread private range
constexpr std::int64_t kOwnBase = 64;       // thread t owns [64*(t+1), +16)
constexpr std::int64_t kSeedBase = 900;     // baseline rows, value == key
constexpr std::int64_t kSeedCount = 8;

void seed_baseline(tx::OtbListMap& map) {
  for (std::int64_t k = kSeedBase; k < kSeedBase + kSeedCount; ++k) {
    map.put_seq(k, k);
  }
}

// ---------------------------------------------------------------------------
// Op journal: one `submitted` and one `acked` file shared by all client
// threads, one write() per line (atomic under O_APPEND).  A SIGKILL can at
// worst tear the final line of each file; the parser drops an unterminated
// tail and rejects any other damage.

struct Journal {
  int submitted = -1;
  int acked = -1;
};

void journal_line(int fd, const std::string& line) {
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    std::fprintf(stderr, "stress_recovery child: journal write failed\n");
    ::_exit(40);
  }
}

struct SubmittedOp {
  std::uint64_t id = 0;
  char op = '?';  // 'P' map put, 'E' map erase, 'Q' pq push, 'O' pq pop
  std::int64_t key = 0;
  std::int64_t value = 0;
  std::uint64_t invoke_ns = 0;
};

struct AckedOp {
  std::uint64_t id = 0;
  char st = '?';  // 'k' completed kOk, 'x' cancelled (rejected at admission)
  bool ok = false;
  std::int64_t value = 0;
  std::uint64_t response_ns = 0;
};

// ---------------------------------------------------------------------------
// Child: durable service + client threads, runs until SIGKILLed.

[[noreturn]] void run_child(const std::string& wal_dir,
                            const std::string& log_dir) {
  Journal j;
  j.submitted = ::open((log_dir + "/submitted").c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
  j.acked = ::open((log_dir + "/acked").c_str(),
                   O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (j.submitted < 0 || j.acked < 0) ::_exit(41);

  static tx::OtbListMap map;
  static tx::OtbHeapPQ heap;
  seed_baseline(map);

  metrics::MetricsSink sink;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 4;
  cfg.queue_capacity = 4096;
  cfg.metrics = &sink;
  cfg.wal_dir = wal_dir;
  cfg.wal_fsync = WalFsync::kGroup;
  Service svc(Targets::standard(&map, nullptr, &heap), cfg);
  svc.start();

  auto client = [&](unsigned tid, bool pq) {
    std::mt19937_64 rng(0xc4a5'0000u + tid);
    for (std::uint64_t seq = 0;; ++seq) {
      const std::uint64_t id = tid * 1'000'000ull + seq;
      SubmittedOp op;
      op.id = id;
      if (pq) {
        // Mostly pushes of globally-unique keys, occasional pops.
        if (rng() % 8 == 0) {
          op.op = 'O';
        } else {
          op.op = 'Q';
          op.key = static_cast<std::int64_t>(id) + 1'000'000;
        }
      } else if (rng() % 4 == 0) {
        // Contended shared key: real cross-thread concurrency per key.
        // Gets are in the mix because an acknowledged read is a durability
        // obligation too — the value it returned must exist in the
        // recovered state's history (group commit syncs all shards before
        // acking reads for exactly this reason).
        const std::uint64_t pick = rng() % 6;
        op.op = pick < 3 ? 'P' : (pick < 4 ? 'E' : 'G');
        op.key = static_cast<std::int64_t>(rng() % kSharedKeys);
        op.value = static_cast<std::int64_t>(id);
      } else {
        const std::uint64_t pick = rng() % 10;
        op.op = pick < 6 ? 'P' : (pick < 8 ? 'E' : 'G');
        op.key = kOwnBase * (tid + 1) + static_cast<std::int64_t>(rng() % kOwnKeys);
        op.value = static_cast<std::int64_t>(id);
      }
      op.invoke_ns = now_ns();
      journal_line(j.submitted,
                   "s " + std::to_string(op.id) + " " + op.op + " " +
                       std::to_string(op.key) + " " + std::to_string(op.value) +
                       " " + std::to_string(op.invoke_ns) + "\n");
      Request req;
      switch (op.op) {
        case 'P': req = Request(service::map_put(op.key, op.value)); break;
        case 'E': req = Request(service::map_erase(op.key)); break;
        case 'G': req = Request(service::map_get(op.key)); break;
        case 'Q': req = Request(service::heap_push(op.key)); break;
        case 'O': req = Request(service::heap_pop_min()); break;
      }
      service::ResponseFuture fut = svc.submit(req);
      const SvcStatus st = fut.wait();
      if (st == SvcStatus::kOverloaded) {
        // Never executed; journal the cancellation so the op is not
        // mistaken for in-flight (in-flight must be <= 1 per thread).
        journal_line(j.acked, "a " + std::to_string(id) + " x 0 0 0\n");
        continue;
      }
      if (st != SvcStatus::kOk) ::_exit(42);
      journal_line(j.acked, "a " + std::to_string(id) + " k " +
                                std::to_string(fut.ok() ? 1 : 0) + " " +
                                std::to_string(fut.value()) + " " +
                                std::to_string(now_ns()) + "\n");
    }
  };

  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kMapClients; ++t) {
    clients.emplace_back(client, t, false);
  }
  for (unsigned t = 0; t < kPqClients; ++t) {
    clients.emplace_back(client, kMapClients + t, true);
  }
  for (auto& c : clients) c.join();  // unreachable: SIGKILL ends the child
  ::_exit(43);
}

// ---------------------------------------------------------------------------
// Parent-side journal parsing.

std::vector<std::string> read_lines(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(service::recovery_detail::read_file(path, &bytes));
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') {
      lines.push_back(bytes.substr(start, i - start));
      start = i + 1;
    }
  }
  // An unterminated tail is the one legal torn write (SIGKILL mid-line).
  return lines;
}

bool parse_submitted(const std::string& line, SubmittedOp* out) {
  unsigned long long id = 0, invoke = 0;
  long long key = 0, value = 0;
  char op = '?', trail = '\0';
  if (std::sscanf(line.c_str(), "s %llu %c %lld %lld %llu%c", &id, &op, &key,
                  &value, &invoke, &trail) != 5) {
    return false;
  }
  *out = SubmittedOp{id, op, key, value, invoke};
  return true;
}

bool parse_acked(const std::string& line, AckedOp* out) {
  unsigned long long id = 0, response = 0;
  int ok = 0;
  long long value = 0;
  char st = '?', trail = '\0';
  if (std::sscanf(line.c_str(), "a %llu %c %d %lld %llu%c", &id, &st, &ok,
                  &value, &response, &trail) != 5) {
    return false;
  }
  *out = AckedOp{id, st, ok != 0, value, response};
  return true;
}

OpKind map_kind(char op) { return op == 'P' ? OpKind::kPut : OpKind::kErase; }

// ---------------------------------------------------------------------------
// Per-key Wing–Gong check with in-flight enumeration.  Keys are checked
// independently (MapKeySpec is per-key decomposable); every in-flight op on
// the key is tried as {absent, applied-ok, applied-not-ok}, and at least
// one assignment must linearize against the acked events + a final read of
// the recovered state.

bool key_history_consistent(History base, std::vector<Event> inflight,
                            const MapKeySpec::State& init, std::string* why) {
  const std::size_t n = inflight.size();
  if (n > 6) {  // window-1 clients: can't happen
    *why = "too many in-flight ops (" + std::to_string(n) + ")";
    return false;
  }
  std::string last_detail;
  for (std::uint64_t mask = 0; mask < (1ull << (2 * n)); ++mask) {
    History h = base;
    bool skip = false;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned choice = (mask >> (2 * i)) & 3u;  // 0 absent, 1 ok, 2 !ok
      if (choice == 3u) { skip = true; break; }
      if (choice == 0u) continue;
      Event e = inflight[i];
      e.ok = choice == 1u;
      h.push_back(e);
    }
    if (skip) continue;
    verify::WingGongChecker<MapKeySpec> checker(MapKeySpec{});
    const LinResult r = checker.check_from(h, init);
    if (r.status == LinStatus::kLinearizable) return true;
    last_detail = r.detail;
  }
  *why = last_detail.empty() ? "no linearization" : last_detail;
  return false;
}

// ---------------------------------------------------------------------------

class RecoveryStress : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/otb_stress_recovery_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ASSERT_EQ(::mkdir((dir_ + "/logs").c_str(), 0755), 0);
  }

  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string dir_;
};

void run_crash_round(const std::string& wal_dir, const std::string& log_dir,
                     std::uint64_t seed) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) run_child(wal_dir, log_dir);  // never returns

  // Let the child ack real work, then kill it at a jittered point so each
  // round tears the log somewhere new.
  struct stat st{};
  const std::uint64_t deadline = now_ns() + 10'000'000'000ull;
  while (::stat((log_dir + "/acked").c_str(), &st) != 0 || st.st_size < 2048) {
    if (now_ns() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::mt19937_64 rng(seed);
  std::this_thread::sleep_for(std::chrono::milliseconds(50 + rng() % 250));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited on its own with status " << status;

  // Parse the journals (torn final lines are legal, nothing else is).
  std::map<std::uint64_t, SubmittedOp> submitted;
  std::map<std::uint64_t, AckedOp> acked;
  for (const std::string& line : read_lines(log_dir + "/submitted")) {
    SubmittedOp op;
    ASSERT_TRUE(parse_submitted(line, &op)) << line;
    submitted[op.id] = op;
  }
  for (const std::string& line : read_lines(log_dir + "/acked")) {
    AckedOp a;
    ASSERT_TRUE(parse_acked(line, &a)) << line;
    ASSERT_TRUE(submitted.count(a.id)) << "ack without submit: " << a.id;
    acked[a.id] = a;
  }
  ASSERT_GT(acked.size(), 0u) << "child never acknowledged any operation";

  // Window-1 clients: per thread, only the last submitted op may lack an
  // ack.  (An op acked by the service but killed before the journal write
  // is indistinguishable from in-flight — the enumeration below covers it.)
  std::map<std::uint64_t, std::uint64_t> last_unacked_per_thread;
  for (const auto& [id, op] : submitted) {
    if (acked.count(id)) continue;
    const std::uint64_t tid = id / 1'000'000ull;
    ASSERT_EQ(last_unacked_per_thread.count(tid), 0u)
        << "thread " << tid << " has >1 in-flight op";
    last_unacked_per_thread[tid] = id;
    for (const auto& [id2, op2] : submitted) {
      if (id2 / 1'000'000ull == tid) {
        ASSERT_LE(id2, id) << "unacked op " << id << " is not thread-final";
      }
    }
  }

  // Recover into fresh structures with the identical baseline closure.
  tx::OtbListMap map;
  tx::OtbHeapPQ heap;
  Targets targets = Targets::standard(&map, nullptr, &heap);
  const RecoveryReport report =
      service::recover_into(wal_dir, targets, [&map] { seed_baseline(map); });
  ASSERT_EQ(report.status, RecoveryStatus::kOk) << report.detail;
  EXPECT_GT(report.records_replayed, 0u);

  std::map<std::int64_t, std::int64_t> recovered;
  for (const auto& [k, v] : map.snapshot_unsafe()) recovered[k] = v;

  // --- Map: per-key Wing–Gong over acked + enumerated in-flight + final
  // read of the recovered value.
  std::uint64_t t_end = 0;
  for (const auto& [id, a] : acked) t_end = std::max(t_end, a.response_ns);
  for (const auto& [id, op] : submitted) t_end = std::max(t_end, op.invoke_ns);
  t_end += 1;

  std::map<std::int64_t, History> by_key;
  std::map<std::int64_t, std::vector<Event>> inflight_by_key;
  for (const auto& [id, op] : submitted) {
    if (op.op != 'P' && op.op != 'E' && op.op != 'G') continue;
    Event e;
    e.op = op.op == 'G' ? OpKind::kGet : map_kind(op.op);
    e.key = op.key;
    e.value = op.value;
    e.invoke_ns = op.invoke_ns;
    const auto it = acked.find(id);
    if (it == acked.end()) {
      // An in-flight get imposes nothing (no result reached the client);
      // in-flight mutations may have landed and are enumerated.
      if (op.op == 'G') continue;
      e.response_ns = t_end;  // may have landed any time before the crash
      inflight_by_key[op.key].push_back(e);
    } else if (it->second.st == 'k') {
      e.ok = it->second.ok;
      if (op.op == 'G') e.value = it->second.value;  // the observed value
      e.response_ns = it->second.response_ns;
      by_key[op.key].push_back(e);
    }  // 'x' = rejected at admission: never executed, not part of history
  }
  std::set<std::int64_t> keys;
  for (const auto& [k, h] : by_key) keys.insert(k);
  for (const auto& [k, h] : inflight_by_key) keys.insert(k);
  for (const auto& [k, v] : recovered) keys.insert(k);
  for (std::int64_t k = kSeedBase; k < kSeedBase + kSeedCount; ++k) {
    keys.insert(k);
  }

  for (const std::int64_t key : keys) {
    if (key >= 1'000'000) continue;  // PQ key space
    History h = by_key[key];
    Event fin;
    fin.op = OpKind::kGet;
    fin.key = key;
    const auto rec = recovered.find(key);
    fin.ok = rec != recovered.end();
    fin.value = fin.ok ? rec->second : 0;
    fin.invoke_ns = t_end + 1;
    fin.response_ns = t_end + 2;
    h.push_back(fin);
    MapKeySpec::State init;
    if (key >= kSeedBase && key < kSeedBase + kSeedCount) {
      init.present = true;
      init.value = key;
    }
    std::string why;
    EXPECT_TRUE(key_history_consistent(h, inflight_by_key[key], init, &why))
        << "key " << key << " not prefix-consistent after crash: " << why;
  }

  // --- PQ: whole-object conservation.  acked pushes minus acked pops must
  // survive modulo in-flight pops; nothing unsubmitted may appear.
  std::set<std::int64_t> pushed_acked, pushed_any, popped;
  std::size_t inflight_pops = 0, inflight_pushes = 0;
  for (const auto& [id, op] : submitted) {
    if (op.op == 'Q') {
      pushed_any.insert(op.key);
      const auto it = acked.find(id);
      if (it != acked.end() && it->second.st == 'k') pushed_acked.insert(op.key);
      if (it == acked.end()) ++inflight_pushes;
    } else if (op.op == 'O') {
      const auto it = acked.find(id);
      if (it == acked.end()) {
        ++inflight_pops;
      } else if (it->second.st == 'k' && it->second.ok) {
        popped.insert(it->second.value);
      }
    }
  }
  std::set<std::int64_t> surviving;
  for (const std::int64_t k : heap.snapshot_unsafe()) {
    EXPECT_TRUE(pushed_any.count(k)) << "recovered PQ holds unsubmitted " << k;
    surviving.insert(k);
  }
  for (const std::int64_t k : popped) {
    EXPECT_TRUE(pushed_any.count(k)) << "popped key never pushed: " << k;
    EXPECT_FALSE(surviving.count(k)) << "acked-popped key survived: " << k;
  }
  std::size_t lost = 0;
  for (const std::int64_t k : pushed_acked) {
    if (!surviving.count(k) && !popped.count(k)) ++lost;
  }
  EXPECT_LE(lost, inflight_pops)
      << lost << " acked pushes vanished with only " << inflight_pops
      << " in-flight pops";

  // --- Continuation: the recovered state serves and stays durable.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.wal_dir = wal_dir;
  {
    tx::OtbListMap map2;
    tx::OtbHeapPQ heap2;
    Service svc(Targets::standard(&map2, nullptr, &heap2), cfg);
    ASSERT_TRUE(
        svc.recover([&map2] { seed_baseline(map2); }).ok());
    svc.start();
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(svc.submit(Request(service::map_put(5000 + i, i))).wait(),
                SvcStatus::kOk);
    }
    svc.stop();
  }
  tx::OtbListMap map3;
  tx::OtbHeapPQ heap3;
  Targets t3 = Targets::standard(&map3, nullptr, &heap3);
  ASSERT_TRUE(
      service::recover_into(wal_dir, t3, [&map3] { seed_baseline(map3); }).ok());
  std::map<std::int64_t, std::int64_t> final_map;
  for (const auto& [k, v] : map3.snapshot_unsafe()) final_map[k] = v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(final_map.count(5000 + i));
    EXPECT_EQ(final_map[5000 + i], i);
  }
}

TEST_F(RecoveryStress, AckedHistorySurvivesSigkill) {
  const std::uint64_t rounds = 2 * verify::stress_scale();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    const std::string wal = dir_ + "/wal" + std::to_string(r);
    const std::string logs = dir_ + "/logs/r" + std::to_string(r);
    ASSERT_EQ(::mkdir(wal.c_str(), 0755), 0);
    ASSERT_EQ(::mkdir(logs.c_str(), 0755), 0);
    run_crash_round(wal, logs, verify::stress_seed(0xdead'0000u + r));
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace otb
