// Tier-2 stress: the pessimistic-boosting baselines — BoostedSet over the
// lazy list and lazy skip list, and the boosted heap PQ.  These execute
// eagerly with semantic undo-logs, so the abort-injection cases are the
// interesting ones: a rolled-back transaction must leave no trace in the
// recorded history or the final structure.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapters.h"
#include "cds/lazy_list_set.h"
#include "cds/lazy_skiplist_set.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using verify::Event;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

template <typename UnderlyingT>
class BoostedSetStress : public ::testing::Test {};

using Underlyings = ::testing::Types<cds::LazyListSet, cds::LazySkipListSet>;
TYPED_TEST_SUITE(BoostedSetStress, Underlyings);

TYPED_TEST(BoostedSetStress, HistoriesAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned abort_pct;
  };
  for (const Case c : {Case{2, 0}, Case{4, 0}, Case{4, 25}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct));
    boosted::BoostedSet<TypeParam> set;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 120 * scale;
    opt.key_range = 24;
    opt.seed = verify::stress_seed(0xb0057u + c.threads * 71 + c.abort_pct);

    std::vector<std::int64_t> seeded;
    for (std::int64_t k = 1; k < opt.key_range; k += 2) {
      set.underlying().add(k);
      seeded.push_back(k);
    }

    const verify::History h = verify::run_stress(opt, [&](unsigned tid) {
      return stress::make_boosted_set_worker(set, c.abort_pct,
                                             opt.seed * 31 + tid);
    });

    const LinResult lin =
        verify::check_keyed_history(h, verify::SetKeySpec{}, seeded);
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }

    // The lazy structures expose no snapshot; sweep membership
    // single-threaded (quiescent, so exact).
    std::vector<std::int64_t> snapshot;
    for (std::int64_t k = 0; k < opt.key_range; ++k) {
      if (set.underlying().contains(k)) snapshot.push_back(k);
    }
    const verify::AuditResult audit = verify::audit_set(h, snapshot, seeded);
    EXPECT_TRUE(audit.ok) << audit.detail;
  }
}

TEST(BoostedPqStress, HistoriesAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned abort_pct;
  };
  for (const Case c : {Case{2, 0}, Case{3, 15}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct));
    boosted::BoostedHeapPQ pq;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 50 * scale;
    opt.key_range = 48;
    opt.seed = verify::stress_seed(0xb00b5u + c.threads + c.abort_pct);
    opt.mix = {{OpKind::kPqAdd, 50},
               {OpKind::kPqRemoveMin, 35},
               {OpKind::kPqMin, 15}};

    std::vector<std::int64_t> seeded;
    for (std::int64_t k = 2; k < opt.key_range; k += 5) {
      pq.add_seq(k);
      seeded.push_back(k);
    }

    verify::History h = verify::run_stress(opt, [&](unsigned tid) {
      return stress::make_boosted_pq_worker(pq, c.abort_pct,
                                            opt.seed * 31 + tid);
    });

    // Drain sequentially, appending to the history so the final state is
    // pinned by the linearizability check; the balance audit compares the
    // concurrent phase alone against the drained contents.
    const verify::History concurrent = h;
    std::vector<std::int64_t> drained;
    for (;;) {
      Event e;
      e.tid = 0;
      e.op = OpKind::kPqRemoveMin;
      e.invoke_ns = now_ns();
      std::int64_t out = 0;
      bool got = false;
      boosted::atomically(
          [&](boosted::BoostedTx& t) { got = pq.remove_min(t, &out); });
      e.response_ns = now_ns();
      e.ok = got;
      e.value = out;
      h.push_back(e);
      if (!got) break;
      drained.push_back(out);
    }

    const verify::AuditResult audit =
        verify::audit_pq(concurrent, drained, seeded);
    EXPECT_TRUE(audit.ok) << audit.detail;

    const verify::PqSpec spec{/*unique_keys=*/false};
    const LinResult lin =
        verify::check_history(h, spec, spec.initial_with(seeded));
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }
  }
}

}  // namespace
}  // namespace otb
