// Tier-2 stress: the order-book scenario (service/scenarios.h).  Makers
// rest asks/bids with guarded push+put scripts; matchers read both tops and
// submit the four-step expect-guarded match script, which commits only
// against the exact pair observed.  The whole history — three structures,
// every mutation a multi-step script — is checked against OrderBookSpec's
// joint (asks, bids) state: a half-matched book (one side popped, the other
// not; a queue pop whose book entry survived) has no linearization.
//
// Harness keys are spec keys; the driver offsets implementation prices by
// +1 so bids (stored negated) never collide with price 0.  The final book
// is pinned with synthetic full-universe lookups, and audited structurally:
// the order map must be exactly the union of the two drained queues.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "adapters.h"
#include "service/scenarios.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using verify::Event;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

ResponseFuture submit_admitted(Service& svc, Request req) {
  for (;;) {
    ResponseFuture fut = svc.submit(req);
    if (fut.status() != SvcStatus::kOverloaded ||
        fut.wait() != SvcStatus::kOverloaded) {
      return fut;
    }
  }
}

/// A failed script must be a clean prefix: nothing after the first failed
/// step may have executed.
void expect_prefix_semantics(const ResponseFuture& fut) {
  bool failed = false;
  for (std::size_t i = 0; i < fut.step_count(); ++i) {
    if (failed) {
      EXPECT_FALSE(fut.step(i).ran) << "step " << i << " ran after a guard";
    }
    if (fut.step(i).ran && !fut.step(i).ok) failed = true;
  }
}

TEST(ScenarioOrderBookStress, GuardedMatchScriptsAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned workers;
    unsigned batch_max;
  };
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
  for (const unsigned mv_k : {4u, 0u}) {
    stress::MvVersionsOverride mv_knob(mv_k);
  for (const bool fusion : {true, false}) {
    stress::FusionOverride fusion_knob(fusion);
  for (const Case c : {Case{2, 1, 4}, Case{3, 2, 8}}) {
    SCOPED_TRACE("clients=" + std::to_string(c.threads) +
                 " workers=" + std::to_string(c.workers) +
                 " batch_max=" + std::to_string(c.batch_max) +
                 std::string(" fast_path=") + (fast ? "on" : "off") +
                 std::string(" fusion=") + (fusion ? "on" : "off") +
                 " mv_versions=" + std::to_string(mv_k));
    service::scenarios::OrderBook book;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 40 * scale;
    opt.key_range = 16;
    opt.seed = verify::stress_seed(0x0b00c4u + c.threads * 311 + c.batch_max);
    opt.mix = {{OpKind::kAdd, 30},          // place_ask
               {OpKind::kPut, 30},          // place_bid
               {OpKind::kPqRemoveMin, 25},  // match attempt
               {OpKind::kContains, 15}};    // order lookup (ask side)

    ServiceConfig cfg;
    cfg.workers = c.workers;
    cfg.batch_max = c.batch_max;
    cfg.queue_capacity = 1024;
    Service svc(book.targets(), cfg);
    svc.start();

    verify::History h = verify::run_stress(opt, [&](unsigned) {
      return [&svc, &book](OpKind op, std::int64_t key, std::int64_t& value) {
        switch (op) {
          case OpKind::kAdd: {  // place_ask at impl price key+1
            ResponseFuture fut =
                submit_admitted(svc, book.place_ask(key + 1, /*qty=*/1));
            EXPECT_EQ(fut.wait(), SvcStatus::kOk);
            expect_prefix_semantics(fut);
            return fut.ok();
          }
          case OpKind::kPut: {  // place_bid at impl price key+1
            ResponseFuture fut =
                submit_admitted(svc, book.place_bid(key + 1, /*qty=*/1));
            EXPECT_EQ(fut.wait(), SvcStatus::kOk);
            expect_prefix_semantics(fut);
            return fut.ok();
          }
          case OpKind::kPqRemoveMin: {  // read tops, then guarded match
            ResponseFuture a = submit_admitted(svc, book.best_ask());
            ResponseFuture b = submit_admitted(svc, book.best_bid());
            EXPECT_EQ(a.wait(), SvcStatus::kOk);
            EXPECT_EQ(b.wait(), SvcStatus::kOk);
            if (!a.ok() || !b.ok()) return false;  // a side is empty
            const std::int64_t ask = a.value();
            const std::int64_t bid = -b.value();  // bids stored negated
            ResponseFuture fut = submit_admitted(svc, book.match(ask, bid));
            EXPECT_EQ(fut.wait(), SvcStatus::kOk);
            expect_prefix_semantics(fut);
            if (!fut.ok()) return false;  // expects drifted: atomic no-op
            value = ask - 1;              // matched ask, in spec keys
            return true;
          }
          default: {  // kContains: is an ask resting at this price?
            ResponseFuture fut = submit_admitted(
                svc, Request{service::map_contains(key + 1, book.order_id())});
            EXPECT_EQ(fut.wait(), SvcStatus::kOk);
            return fut.ok();
          }
        }
      };
    });
    svc.stop();

    // Structural audit: the order map is exactly the union of the queues.
    const auto asks_left = service::scenarios::drain_pq_unsafe(book.asks());
    const auto bids_left = service::scenarios::drain_pq_unsafe(book.bids());
    std::vector<std::int64_t> queues;
    queues.insert(queues.end(), asks_left.begin(), asks_left.end());
    queues.insert(queues.end(), bids_left.begin(), bids_left.end());
    std::sort(queues.begin(), queues.end());
    std::vector<std::int64_t> orders;
    for (const auto& [k, v] : book.orders().snapshot_unsafe()) {
      orders.push_back(k);
    }
    std::sort(orders.begin(), orders.end());
    EXPECT_EQ(queues, orders);

    // Pin the final book into the history: one synthetic lookup per spec
    // key and side (bid spec-key 0 is unaddressable by a signed lookup and
    // is skipped; the structural audit above covers it).
    for (std::int64_t k = 0; k < opt.key_range; ++k) {
      Event e;
      e.tid = 0;
      e.op = OpKind::kContains;
      e.invoke_ns = now_ns();
      e.response_ns = now_ns();
      e.key = k;
      e.ok = std::find(asks_left.begin(), asks_left.end(), k + 1) !=
             asks_left.end();
      h.push_back(e);
    }
    for (std::int64_t k = 1; k < opt.key_range; ++k) {
      Event e;
      e.tid = 0;
      e.op = OpKind::kContains;
      e.invoke_ns = now_ns();
      e.response_ns = now_ns();
      e.key = -k;  // bid side: spec stores bids negated
      e.ok = std::find(bids_left.begin(), bids_left.end(), -(k + 1)) !=
             bids_left.end();
      h.push_back(e);
    }

    const verify::OrderBookSpec spec;
    const LinResult lin = verify::check_history(h, spec);
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }
  }
  }
  }
  }
}

}  // namespace
}  // namespace otb
