// Worker adapters binding the verify:: stress driver to every transactional
// structure under test.  Each factory returns a per-thread callable
//   bool worker(verify::OpKind, std::int64_t key, std::int64_t& value)
// that executes exactly one committed transaction per call and reports the
// committed attempt's result.
//
// Abort injection: with `abort_pct` non-zero, a call's *first* attempt may
// throw TxAbort{kExplicit} after performing its operation, forcing the
// runtime through its rollback path before the retry commits — the
// history then validates that aborted attempts leave no trace.
#pragma once

#include <cstdint>
#include <memory>

#include "boosted/boosted_pq.h"
#include "boosted/boosted_runtime.h"
#include "boosted/boosted_set.h"
#include "common/rng.h"
#include "common/tx_abort.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/runtime.h"
#include "service/fusion.h"
#include "stm/runtime.h"
#include "verify/history.h"

namespace otb::stress {

/// RAII override of the commit-sequence validation fast path: the lin
/// checker must pass with the O(1) gate forced on AND off (the gated and
/// ungated validation paths are both load-bearing).  Restores the
/// environment-selected default on destruction.
class FastPathOverride {
 public:
  explicit FastPathOverride(bool on)
      : previous_(tx::validation_fast_path_enabled()) {
    tx::set_validation_fast_path(on);
  }
  ~FastPathOverride() { tx::set_validation_fast_path(previous_); }
  FastPathOverride(const FastPathOverride&) = delete;
  FastPathOverride& operator=(const FastPathOverride&) = delete;

 private:
  bool previous_;
};

/// RAII override of the traversal-hint layer, same contract as
/// FastPathOverride: histories must linearize with hint seeding forced on
/// AND off (the hinted and head-start traversal paths are both load-bearing).
class TraversalHintsOverride {
 public:
  explicit TraversalHintsOverride(bool on)
      : previous_(tx::traversal_hints_enabled()) {
    tx::set_traversal_hints(on);
  }
  ~TraversalHintsOverride() { tx::set_traversal_hints(previous_); }
  TraversalHintsOverride(const TraversalHintsOverride&) = delete;
  TraversalHintsOverride& operator=(const TraversalHintsOverride&) = delete;

 private:
  bool previous_;
};

/// RAII override of the multi-version chain capacity (OTB_MV_VERSIONS),
/// same contract as the overrides above: histories and ledger identities
/// must hold with the snapshot route forced on AND off.  Note the knob is
/// consulted at NODE CREATION (new nodes grow chains of the then-current
/// capacity), so structures built under one override keep those chains.
class MvVersionsOverride {
 public:
  explicit MvVersionsOverride(unsigned k) : previous_(tx::mv_versions()) {
    tx::set_mv_versions(k);
  }
  ~MvVersionsOverride() { tx::set_mv_versions(previous_); }
  MvVersionsOverride(const MvVersionsOverride&) = delete;
  MvVersionsOverride& operator=(const MvVersionsOverride&) = delete;

 private:
  unsigned previous_;
};

/// RAII override of the transaction-fusion contention manager (OTB_FUSION,
/// src/service/fusion.h), same contract as the overrides above: service
/// histories and ledger identities must hold with budget-exhausted batches
/// fusing AND with the pre-fusion split-only worker loop.
class FusionOverride {
 public:
  explicit FusionOverride(bool on) : previous_(service::fusion_enabled()) {
    service::set_fusion(on);
  }
  ~FusionOverride() { service::set_fusion(previous_); }
  FusionOverride(const FusionOverride&) = delete;
  FusionOverride& operator=(const FusionOverride&) = delete;

 private:
  bool previous_;
};

/// Seeded per-worker decision source for explicit-abort injection.
class AbortInjector {
 public:
  AbortInjector(unsigned pct, std::uint64_t seed) : pct_(pct), rng_(seed) {}

  /// Decide once per logical operation whether its first attempt aborts.
  bool arm() { return pct_ != 0 && rng_.chance_pct(pct_); }

 private:
  unsigned pct_;
  Xorshift rng_;
};

// ---- standalone OTB runtime -------------------------------------------------

/// OTB sets (OtbListSet / OtbSkipListSet): add/remove/contains.
template <typename SetT>
auto make_otb_set_worker(SetT& set, unsigned abort_pct, std::uint64_t seed) {
  return [&set, inj = AbortInjector(abort_pct, seed)](
             verify::OpKind op, std::int64_t key, std::int64_t&) mutable {
    bool result = false;
    bool pending_abort = inj.arm();
    tx::atomically([&](tx::Transaction& t) {
      switch (op) {
        case verify::OpKind::kAdd:
          result = set.add(t, key);
          break;
        case verify::OpKind::kRemove:
          result = set.remove(t, key);
          break;
        default:
          result = set.contains(t, key);
          break;
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  };
}

/// OtbListMap: put/erase/get (get reports the observed value through
/// `value`; put takes its argument from it).
inline auto make_otb_map_worker(tx::OtbListMap& map, unsigned abort_pct,
                                std::uint64_t seed) {
  return [&map, inj = AbortInjector(abort_pct, seed)](
             verify::OpKind op, std::int64_t key, std::int64_t& value) mutable {
    bool result = false;
    bool pending_abort = inj.arm();
    tx::atomically([&](tx::Transaction& t) {
      switch (op) {
        case verify::OpKind::kPut:
          result = map.put(t, key, value);
          break;
        case verify::OpKind::kErase:
          result = map.erase(t, key);
          break;
        default: {
          std::int64_t out = 0;
          result = map.get(t, key, &out);
          value = out;
          break;
        }
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  };
}

/// OTB skip-list PQ (unique keys; add reports presence).
inline auto make_otb_slpq_worker(tx::OtbSkipListPQ& pq, unsigned abort_pct,
                                 std::uint64_t seed) {
  return [&pq, inj = AbortInjector(abort_pct, seed)](
             verify::OpKind op, std::int64_t key, std::int64_t& value) mutable {
    bool result = false;
    bool pending_abort = inj.arm();
    tx::atomically([&](tx::Transaction& t) {
      switch (op) {
        case verify::OpKind::kPqAdd:
          result = pq.add(t, key);
          break;
        case verify::OpKind::kPqRemoveMin: {
          std::int64_t out = 0;
          result = pq.remove_min(t, &out);
          value = out;
          break;
        }
        default: {
          std::int64_t out = 0;
          result = pq.min(t, &out);
          value = out;
          break;
        }
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  };
}

/// OTB heap PQ (semi-optimistic; duplicates allowed, add always succeeds).
inline auto make_otb_heap_pq_worker(tx::OtbHeapPQ& pq, unsigned abort_pct,
                                    std::uint64_t seed) {
  return [&pq, inj = AbortInjector(abort_pct, seed)](
             verify::OpKind op, std::int64_t key, std::int64_t& value) mutable {
    bool result = false;
    bool pending_abort = inj.arm();
    tx::atomically([&](tx::Transaction& t) {
      switch (op) {
        case verify::OpKind::kPqAdd:
          pq.add(t, key);
          result = true;
          break;
        case verify::OpKind::kPqRemoveMin: {
          std::int64_t out = 0;
          result = pq.remove_min(t, &out);
          value = out;
          break;
        }
        default: {
          std::int64_t out = 0;
          result = pq.min(t, &out);
          value = out;
          break;
        }
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  };
}

// ---- pessimistic-boosting baselines ----------------------------------------

/// Boosted set over a lazy list / lazy skip list.
template <typename Underlying>
auto make_boosted_set_worker(boosted::BoostedSet<Underlying>& set,
                             unsigned abort_pct, std::uint64_t seed) {
  return [&set, inj = AbortInjector(abort_pct, seed)](
             verify::OpKind op, std::int64_t key, std::int64_t&) mutable {
    bool result = false;
    bool pending_abort = inj.arm();
    boosted::atomically([&](boosted::BoostedTx& t) {
      switch (op) {
        case verify::OpKind::kAdd:
          result = set.add(t, key);
          break;
        case verify::OpKind::kRemove:
          result = set.remove(t, key);
          break;
        default:
          result = set.contains(t, key);
          break;
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  };
}

/// Boosted heap PQ (duplicates allowed).
inline auto make_boosted_pq_worker(boosted::BoostedHeapPQ& pq,
                                   unsigned abort_pct, std::uint64_t seed) {
  return [&pq, inj = AbortInjector(abort_pct, seed)](
             verify::OpKind op, std::int64_t key, std::int64_t& value) mutable {
    bool result = false;
    bool pending_abort = inj.arm();
    boosted::atomically([&](boosted::BoostedTx& t) {
      switch (op) {
        case verify::OpKind::kPqAdd:
          pq.add(t, key);
          result = true;
          break;
        case verify::OpKind::kPqRemoveMin: {
          std::int64_t out = 0;
          result = pq.remove_min(t, &out);
          value = out;
          break;
        }
        default: {
          std::int64_t out = 0;
          result = pq.min(t, &out);
          value = out;
          break;
        }
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  };
}

// ---- pure-STM data structures ----------------------------------------------

/// STM set worker: owns the thread's TxThread registration, so it must be
/// constructed by the stress driver's factory on the worker thread itself.
template <typename SetT>
class StmSetWorker {
 public:
  StmSetWorker(stm::Runtime& rt, SetT& set, unsigned abort_pct,
               std::uint64_t seed)
      : rt_(rt), set_(set), thread_(std::make_unique<stm::TxThread>(rt)),
        inj_(abort_pct, seed) {}

  bool operator()(verify::OpKind op, std::int64_t key, std::int64_t&) {
    bool result = false;
    bool pending_abort = inj_.arm();
    rt_.atomically(*thread_, [&](stm::Tx& tx) {
      switch (op) {
        case verify::OpKind::kAdd:
          result = set_.add(tx, key);
          break;
        case verify::OpKind::kRemove:
          result = set_.remove(tx, key);
          break;
        default:
          result = set_.contains(tx, key);
          break;
      }
      if (pending_abort) {
        pending_abort = false;
        throw TxAbort{metrics::AbortReason::kExplicit};
      }
    });
    return result;
  }

 private:
  stm::Runtime& rt_;
  SetT& set_;
  std::unique_ptr<stm::TxThread> thread_;
  AbortInjector inj_;
};

template <typename SetT>
StmSetWorker<SetT> make_stm_set_worker(stm::Runtime& rt, SetT& set,
                                       unsigned abort_pct, std::uint64_t seed) {
  return StmSetWorker<SetT>(rt, set, abort_pct, seed);
}

}  // namespace otb::stress
