// Tier-2 stress: OTB sets (lazy linked list + lazy skip list) hammered by
// N seeded threads across several op mixes, with and without explicit-abort
// injection.  Every run's recorded history must be linearizable against the
// sequential set spec and pass the structural/conservation audit; a
// multi-structure transfer workload additionally checks that composed
// transactions never lose or duplicate keys.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapters.h"
#include "metrics/sink.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using stress::make_otb_set_worker;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

struct MixCase {
  const char* name;
  std::vector<std::pair<OpKind, unsigned>> mix;
  unsigned abort_pct;
};

const MixCase kMixes[] = {
    {"balanced", {{OpKind::kAdd, 30}, {OpKind::kRemove, 30}, {OpKind::kContains, 40}}, 0},
    {"write_heavy", {{OpKind::kAdd, 45}, {OpKind::kRemove, 45}, {OpKind::kContains, 10}}, 0},
    {"read_heavy", {{OpKind::kAdd, 15}, {OpKind::kRemove, 15}, {OpKind::kContains, 70}}, 0},
    {"abort_injected", {{OpKind::kAdd, 35}, {OpKind::kRemove, 35}, {OpKind::kContains, 30}}, 20},
};

template <typename SetT>
class OtbSetStress : public ::testing::Test {};

using SetTypes = ::testing::Types<tx::OtbListSet, tx::OtbSkipListSet>;
TYPED_TEST_SUITE(OtbSetStress, SetTypes);

TYPED_TEST(OtbSetStress, HistoriesAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  // Both validation paths must produce linearizable histories — the O(1)
  // commit-sequence gate (default) and the unconditional full scan — and
  // both traversal modes: hint-seeded and head-start.
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
    for (const bool hints : {true, false}) {
    stress::TraversalHintsOverride hint_knob(hints);
    for (const unsigned threads : {2u, 4u, 7u}) {
    for (const MixCase& mc : kMixes) {
      SCOPED_TRACE(std::string(mc.name) + " threads=" + std::to_string(threads) +
                   " fast_path=" + (fast ? "on" : "off") +
                   " hints=" + (hints ? "on" : "off"));
      TypeParam set;
      StressOptions opt;
      opt.threads = threads;
      opt.ops_per_thread = 120 * scale;
      opt.key_range = 24;
      opt.seed = verify::stress_seed(0xbee5u + threads * 131 + mc.abort_pct);
      opt.mix = mc.mix;

      std::vector<std::int64_t> seeded;
      for (std::int64_t k = 0; k < opt.key_range; k += 2) {
        set.add_seq(k);
        seeded.push_back(k);
      }

      const verify::History h =
          verify::run_stress(opt, [&](unsigned tid) {
            return make_otb_set_worker(set, mc.abort_pct,
                                       opt.seed * 31 + tid);
          });

      const LinResult lin =
          verify::check_keyed_history(h, verify::SetKeySpec{}, seeded);
      EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
      if (lin.status == LinStatus::kBudgetExhausted) {
        GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
      }

      const verify::AuditResult audit =
          verify::audit_set(h, set.snapshot_unsafe(), seeded);
      EXPECT_TRUE(audit.ok) << audit.detail;
    }
    }
    }
  }
}

TYPED_TEST(OtbSetStress, AbortInjectionIsAccountedInMetrics) {
  // The injected explicit aborts must surface through the abort taxonomy —
  // proving the stress driver really exercises the rollback path.
  metrics::MetricsSink sink;
  tx::set_metrics_sink(&sink);
  TypeParam set;
  StressOptions opt;
  opt.threads = 3;
  opt.ops_per_thread = 100;
  opt.key_range = 16;
  opt.seed = verify::stress_seed(0xabba);
  const verify::History h = verify::run_stress(opt, [&](unsigned tid) {
    return make_otb_set_worker(set, /*abort_pct=*/30, opt.seed * 17 + tid);
  });
  tx::set_metrics_sink(nullptr);

  const metrics::SinkSnapshot snap = sink.snapshot();
  EXPECT_GT(snap.aborts[static_cast<std::size_t>(
                metrics::AbortReason::kExplicit)],
            0u)
      << "abort injection never reached the metrics taxonomy";
  const LinResult lin = verify::check_keyed_history(h, verify::SetKeySpec{});
  EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
}

TYPED_TEST(OtbSetStress, TransactionalTransferConservesKeys) {
  // Composite transactions move keys between two sets; whatever the
  // interleaving (including injected aborts mid-transfer), the union of the
  // final snapshots must be exactly the seeded keys.
  const std::uint64_t scale = verify::stress_scale();
  TypeParam from, to;
  std::vector<std::int64_t> seeded;
  for (std::int64_t k = 0; k < 32; ++k) {
    from.add_seq(k);
    seeded.push_back(k);
  }

  StressOptions opt;
  opt.threads = 4;
  opt.ops_per_thread = 150 * scale;
  opt.key_range = 32;
  opt.seed = verify::stress_seed(0x7a05);
  // kAdd encodes "transfer from->to", kRemove the reverse direction.
  opt.mix = {{OpKind::kAdd, 50}, {OpKind::kRemove, 50}};

  verify::run_stress(opt, [&](unsigned tid) {
    return [&from, &to,
            inj = stress::AbortInjector(15, opt.seed * 13 + tid)](
               OpKind op, std::int64_t key, std::int64_t&) mutable {
      TypeParam& src = op == OpKind::kAdd ? from : to;
      TypeParam& dst = op == OpKind::kAdd ? to : from;
      bool moved = false;
      bool pending_abort = inj.arm();
      tx::atomically([&](tx::Transaction& t) {
        moved = false;
        if (src.remove(t, key)) {
          // The add must succeed: the key cannot already be in dst if it
          // was still in src (they partition the seeded keys).
          if (!dst.add(t, key)) throw TxAbort{};
          moved = true;
        }
        if (pending_abort) {
          pending_abort = false;
          throw TxAbort{metrics::AbortReason::kExplicit};
        }
      });
      return moved;
    };
  });

  const std::vector<std::int64_t> snap_from = from.snapshot_unsafe();
  const std::vector<std::int64_t> snap_to = to.snapshot_unsafe();
  const verify::AuditResult cons =
      verify::audit_conservation({snap_from, snap_to}, seeded);
  EXPECT_TRUE(cons.ok) << cons.detail;
  for (const auto* snap : {&snap_from, &snap_to}) {
    for (std::size_t i = 1; i < snap->size(); ++i) {
      EXPECT_LT((*snap)[i - 1], (*snap)[i]) << "snapshot order broken";
    }
  }
}

}  // namespace
}  // namespace otb
