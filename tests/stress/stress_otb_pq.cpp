// Tier-2 stress: OTB priority queues — the fully-optimistic skip-list PQ
// (unique keys, wait-free min) and the semi-optimistic heap PQ (global
// lock, duplicates allowed).  PQ histories are not per-key decomposable,
// so whole-history Wing–Gong checking runs on deliberately compact runs;
// after the concurrent phase the queue is drained sequentially and the
// drain is appended to the history, which makes the final state part of
// what must linearize (and checks the heap property via audit_pq).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapters.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_skiplist_pq.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using verify::Event;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

/// Drain `pq` sequentially via single-op transactions, appending the drain
/// operations to `h` (time-stamped after the concurrent phase, so they pin
/// the final state in the linearizability check).
template <typename PqT>
std::vector<std::int64_t> drain_and_record(PqT& pq, verify::History& h) {
  std::vector<std::int64_t> drained;
  for (;;) {
    Event e;
    e.tid = 0;
    e.op = OpKind::kPqRemoveMin;
    e.invoke_ns = now_ns();
    std::int64_t out = 0;
    bool got = false;
    tx::atomically([&](tx::Transaction& t) { got = pq.remove_min(t, &out); });
    e.response_ns = now_ns();
    e.ok = got;
    e.value = out;
    h.push_back(e);
    if (!got) break;
    drained.push_back(out);
  }
  return drained;
}

TEST(OtbSkipListPqStress, HistoriesAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned abort_pct;
  };
  // Both validation paths must produce linearizable histories: the O(1)
  // commit-sequence gate (default) and the unconditional full scan.
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
  for (const bool hints : {true, false}) {
    stress::TraversalHintsOverride hint_knob(hints);
  for (const Case c : {Case{2, 0}, Case{3, 0}, Case{3, 20}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct) +
                 " fast_path=" + (fast ? "on" : "off") +
                 " hints=" + (hints ? "on" : "off"));
    tx::OtbSkipListPQ pq;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 50 * scale;
    opt.key_range = 64;
    opt.seed = verify::stress_seed(0x5eedu + c.threads * 57 + c.abort_pct);
    opt.mix = {{OpKind::kPqAdd, 50},
               {OpKind::kPqRemoveMin, 35},
               {OpKind::kPqMin, 15}};

    std::vector<std::int64_t> seeded;
    for (std::int64_t k = 3; k < opt.key_range; k += 9) {
      pq.add_seq(k);
      seeded.push_back(k);
    }

    verify::History h = verify::run_stress(opt, [&](unsigned tid) {
      return stress::make_otb_slpq_worker(pq, c.abort_pct,
                                          opt.seed * 31 + tid);
    });

    // Audit balances the concurrent phase against the final contents, so it
    // takes the pre-drain history; the lin check gets the drain appended.
    const verify::History concurrent = h;
    const std::vector<std::int64_t> drained = drain_and_record(pq, h);

    const verify::AuditResult audit =
        verify::audit_pq(concurrent, drained, seeded);
    EXPECT_TRUE(audit.ok) << audit.detail;

    const verify::PqSpec spec{/*unique_keys=*/true};
    const LinResult lin =
        verify::check_history(h, spec, spec.initial_with(seeded));
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }
  }
  }
  }
}

TEST(OtbHeapPqStress, HistoriesAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned abort_pct;
  };
  for (const Case c : {Case{2, 0}, Case{3, 0}, Case{3, 25}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct));
    tx::OtbHeapPQ pq;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 50 * scale;
    opt.key_range = 48;
    opt.seed = verify::stress_seed(0x9e4fu + c.threads * 23 + c.abort_pct);
    opt.mix = {{OpKind::kPqAdd, 50},
               {OpKind::kPqRemoveMin, 35},
               {OpKind::kPqMin, 15}};

    std::vector<std::int64_t> seeded;
    for (std::int64_t k = 1; k < opt.key_range; k += 7) {
      pq.add_seq(k);
      seeded.push_back(k);
    }

    verify::History h = verify::run_stress(opt, [&](unsigned tid) {
      return stress::make_otb_heap_pq_worker(pq, c.abort_pct,
                                             opt.seed * 31 + tid);
    });

    const verify::History concurrent = h;
    const std::vector<std::int64_t> drained = drain_and_record(pq, h);

    const verify::AuditResult audit =
        verify::audit_pq(concurrent, drained, seeded);
    EXPECT_TRUE(audit.ok) << audit.detail;

    const verify::PqSpec spec{/*unique_keys=*/false};
    const LinResult lin =
        verify::check_history(h, spec, spec.initial_with(seeded));
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }
  }
}

TEST(OtbPqStress, MixedStructureTransactionsBalance) {
  // Transactions move the PQ minimum into a second "done" PQ — a composed
  // two-structure commit.  Nothing may be lost or duplicated.
  const std::uint64_t scale = verify::stress_scale();
  tx::OtbSkipListPQ work, done;
  std::vector<std::int64_t> seeded;
  for (std::int64_t k = 0; k < 64; ++k) {
    work.add_seq(k);
    seeded.push_back(k);
  }

  StressOptions opt;
  opt.threads = 3;
  opt.ops_per_thread = 30 * scale;
  opt.key_range = 64;
  opt.seed = verify::stress_seed(0x0fa1);
  opt.mix = {{OpKind::kPqRemoveMin, 100}};

  verify::run_stress(opt, [&](unsigned tid) {
    return [&work, &done,
            inj = stress::AbortInjector(15, opt.seed * 11 + tid)](
               OpKind, std::int64_t, std::int64_t& value) mutable {
      bool moved = false;
      bool pending_abort = inj.arm();
      tx::atomically([&](tx::Transaction& t) {
        moved = false;
        std::int64_t k = 0;
        if (work.remove_min(t, &k)) {
          if (!done.add(t, k)) throw TxAbort{};
          value = k;
          moved = true;
        }
        if (pending_abort) {
          pending_abort = false;
          throw TxAbort{metrics::AbortReason::kExplicit};
        }
      });
      return moved;
    };
  });

  verify::History empty;
  std::vector<std::int64_t> drained_work = drain_and_record(work, empty);
  std::vector<std::int64_t> drained_done = drain_and_record(done, empty);
  const verify::AuditResult cons = verify::audit_conservation(
      {drained_work, drained_done}, seeded);
  EXPECT_TRUE(cons.ok) << cons.detail;
}

}  // namespace
}  // namespace otb
