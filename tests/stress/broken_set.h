// A deliberately broken concurrent "set" used to prove the linearizability
// checker rejects real atomicity bugs (not just hand-written histories).
//
// The container itself is mutex-protected — there is no data race for TSan
// to trip on — but add() is check-then-act: it decides on a snapshot taken
// under the lock, releases the lock, and publishes the decision later.
// Two concurrent add(k) calls can therefore both observe "absent" and both
// report a successful insert: the classic lost update.  The
// `between_check_and_insert` hook lets a test force that interleaving
// deterministically (e.g. with a std::latch both threads must reach).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace otb::stress {

class BrokenSet {
 public:
  using Key = std::int64_t;

  /// Test hook run by add() between its membership check and its insert —
  /// the race window.  Must be set before threads start.
  std::function<void()> between_check_and_insert;

  bool add(Key key) {
    bool present;
    {
      std::lock_guard<std::mutex> lk(mu_);
      present = contains_locked(key);
    }
    if (between_check_and_insert) between_check_and_insert();
    if (present) return false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      keys_.push_back(key);  // blind insert: duplicates possible
    }
    return true;
  }

  bool remove(Key key) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find(keys_.begin(), keys_.end(), key);
    if (it == keys_.end()) return false;
    keys_.erase(it);
    return true;
  }

  bool contains(Key key) const {
    std::lock_guard<std::mutex> lk(mu_);
    return contains_locked(key);
  }

  std::vector<Key> snapshot_sorted() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<Key> out = keys_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  bool contains_locked(Key key) const {
    return std::find(keys_.begin(), keys_.end(), key) != keys_.end();
  }

  mutable std::mutex mu_;
  std::vector<Key> keys_;
};

}  // namespace otb::stress
