// Unit tests for the linearizability checker itself: hand-written
// known-linearizable and known-non-linearizable histories for every spec,
// plus a live reproduction of a lost update on a deliberately broken set
// (broken_set.h) that the checker must reject.
#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

#include "broken_set.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/spec.h"

namespace otb::verify {
namespace {

Event ev(std::uint32_t tid, OpKind op, std::int64_t key, bool ok,
         std::uint64_t inv, std::uint64_t res, std::int64_t value = 0) {
  Event e;
  e.tid = tid;
  e.op = op;
  e.key = key;
  e.value = value;
  e.ok = ok;
  e.invoke_ns = inv;
  e.response_ns = res;
  return e;
}

// ---- set histories ---------------------------------------------------------

TEST(LinChecker, AcceptsSequentialSetHistory) {
  History h = {
      ev(0, OpKind::kAdd, 5, true, 0, 10),
      ev(0, OpKind::kContains, 5, true, 20, 30),
      ev(0, OpKind::kRemove, 5, true, 40, 50),
      ev(0, OpKind::kContains, 5, false, 60, 70),
      ev(0, OpKind::kAdd, 5, true, 80, 90),
  };
  const LinResult r = check_keyed_history(h, SetKeySpec{});
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(LinChecker, AcceptsConcurrentHistoryNeedingReordering) {
  // contains(5)=F overlaps add(5)=T and must linearize first even though
  // the add was invoked earlier — the checker has to search, not replay
  // invocation order.
  History h = {
      ev(0, OpKind::kAdd, 5, true, 0, 100),
      ev(1, OpKind::kContains, 5, false, 10, 20),
      ev(1, OpKind::kContains, 5, true, 110, 120),
  };
  const LinResult r = check_keyed_history(h, SetKeySpec{});
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(LinChecker, AcceptsIndependentKeysInterleaved) {
  History h = {
      ev(0, OpKind::kAdd, 1, true, 0, 50),
      ev(1, OpKind::kAdd, 2, true, 10, 40),
      ev(0, OpKind::kRemove, 2, true, 60, 70),
      ev(1, OpKind::kContains, 1, true, 60, 80),
  };
  const LinResult r = check_keyed_history(h, SetKeySpec{});
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(LinChecker, RespectsSeededInitialState) {
  History h = {
      ev(0, OpKind::kContains, 7, true, 0, 10),
      ev(0, OpKind::kRemove, 7, true, 20, 30),
      ev(0, OpKind::kAdd, 7, true, 40, 50),
  };
  EXPECT_TRUE(check_keyed_history(h, SetKeySpec{}, {7}).ok());
  // Without the seed the leading contains(7)=T is impossible.
  EXPECT_EQ(check_keyed_history(h, SetKeySpec{}).status,
            LinStatus::kNonLinearizable);
}

TEST(LinChecker, RejectsDoubleSuccessfulAdd) {
  // Two overlapping add(5) both reporting success: the lost update.
  History h = {
      ev(0, OpKind::kAdd, 5, true, 0, 100),
      ev(1, OpKind::kAdd, 5, true, 10, 90),
  };
  const LinResult r = check_keyed_history(h, SetKeySpec{});
  EXPECT_EQ(r.status, LinStatus::kNonLinearizable);
  EXPECT_NE(r.detail.find("key 5"), std::string::npos) << r.detail;
}

TEST(LinChecker, RejectsStaleReadAfterCompletedAdd) {
  // add(5)=T finished before contains(5)=F began: real-time order forbids
  // reordering, so the F read is stale.
  History h = {
      ev(0, OpKind::kAdd, 5, true, 0, 10),
      ev(1, OpKind::kContains, 5, false, 20, 30),
  };
  EXPECT_EQ(check_keyed_history(h, SetKeySpec{}).status,
            LinStatus::kNonLinearizable);
}

TEST(LinChecker, RejectsContainsOfNeverInsertedKey) {
  History h = {
      ev(0, OpKind::kContains, 9, true, 0, 10),
  };
  EXPECT_EQ(check_keyed_history(h, SetKeySpec{}).status,
            LinStatus::kNonLinearizable);
}

TEST(LinChecker, RejectsSuccessfulRemoveWithoutAdd) {
  History h = {
      ev(0, OpKind::kAdd, 3, true, 0, 10),
      ev(0, OpKind::kRemove, 3, true, 20, 30),
      ev(1, OpKind::kRemove, 3, true, 25, 40),
  };
  EXPECT_EQ(check_keyed_history(h, SetKeySpec{}).status,
            LinStatus::kNonLinearizable);
}

// ---- map histories ---------------------------------------------------------

TEST(LinChecker, AcceptsMapPutGetErase) {
  History h = {
      ev(0, OpKind::kPut, 1, true, 0, 10, 42),
      ev(1, OpKind::kGet, 1, true, 20, 30, 42),
      ev(1, OpKind::kPut, 1, false, 40, 50, 43),  // overwrite: not new
      ev(0, OpKind::kGet, 1, true, 60, 70, 43),
      ev(0, OpKind::kErase, 1, true, 80, 90),
      ev(1, OpKind::kGet, 1, false, 100, 110),
  };
  const LinResult r = check_keyed_history(h, MapKeySpec{});
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(LinChecker, RejectsMapGetOfStaleValue) {
  // get must observe 43 (the overwrite completed before it began).
  History h = {
      ev(0, OpKind::kPut, 1, true, 0, 10, 42),
      ev(0, OpKind::kPut, 1, false, 20, 30, 43),
      ev(1, OpKind::kGet, 1, true, 40, 50, 42),
  };
  EXPECT_EQ(check_keyed_history(h, MapKeySpec{}).status,
            LinStatus::kNonLinearizable);
}

TEST(LinChecker, AcceptsConcurrentPutsWithDistinguishingGet) {
  // Two overlapping puts; the later get pins which one linearized second.
  History h = {
      ev(0, OpKind::kPut, 1, true, 0, 100, 7),
      ev(1, OpKind::kPut, 1, false, 10, 90, 8),
      ev(0, OpKind::kGet, 1, true, 110, 120, 8),
  };
  const LinResult r = check_keyed_history(h, MapKeySpec{});
  EXPECT_TRUE(r.ok()) << r.detail;
}

// ---- priority-queue histories ----------------------------------------------

TEST(LinChecker, AcceptsPqHistory) {
  History h = {
      ev(0, OpKind::kPqAdd, 5, true, 0, 10),
      ev(1, OpKind::kPqAdd, 3, true, 5, 20),
      ev(0, OpKind::kPqMin, 0, true, 30, 40, 3),
      ev(1, OpKind::kPqRemoveMin, 0, true, 50, 60, 3),
      ev(0, OpKind::kPqRemoveMin, 0, true, 70, 80, 5),
      ev(1, OpKind::kPqRemoveMin, 0, false, 90, 100),
  };
  const LinResult r = check_history(h, PqSpec{/*unique_keys=*/true});
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(LinChecker, AcceptsPqRemoveOverlappingAdds) {
  // removeMin overlapping both adds may return either key — 5 is legal
  // only if it linearizes between add(5) and add(3).
  History h = {
      ev(0, OpKind::kPqAdd, 5, true, 0, 10),
      ev(1, OpKind::kPqAdd, 3, true, 15, 60),
      ev(2, OpKind::kPqRemoveMin, 0, true, 20, 50, 5),
      ev(2, OpKind::kPqRemoveMin, 0, true, 70, 80, 3),
  };
  const LinResult r = check_history(h, PqSpec{true});
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(LinChecker, RejectsPqRemoveMinReturningNonMinimum) {
  History h = {
      ev(0, OpKind::kPqAdd, 3, true, 0, 10),
      ev(0, OpKind::kPqAdd, 5, true, 20, 30),
      ev(1, OpKind::kPqRemoveMin, 0, true, 40, 50, 5),  // 3 is the min
  };
  EXPECT_EQ(check_history(h, PqSpec{true}).status,
            LinStatus::kNonLinearizable);
}

TEST(LinChecker, RejectsPqLostElement) {
  // Empty-queue removeMin while an unremoved element must still be there.
  History h = {
      ev(0, OpKind::kPqAdd, 3, true, 0, 10),
      ev(1, OpKind::kPqRemoveMin, 0, false, 20, 30),
  };
  EXPECT_EQ(check_history(h, PqSpec{true}).status,
            LinStatus::kNonLinearizable);
}

TEST(LinChecker, PqSeededInitialState) {
  PqSpec spec{true};
  History h = {
      ev(0, OpKind::kPqRemoveMin, 0, true, 0, 10, 1),
      ev(0, OpKind::kPqRemoveMin, 0, true, 20, 30, 4),
      ev(0, OpKind::kPqRemoveMin, 0, false, 40, 50),
  };
  EXPECT_TRUE(check_history(h, spec, spec.initial_with({4, 1})).ok());
  EXPECT_EQ(check_history(h, spec).status, LinStatus::kNonLinearizable);
}

// ---- invariant audits ------------------------------------------------------

TEST(InvariantAudit, SetConservationCatchesLostUpdate) {
  History h = {
      ev(0, OpKind::kAdd, 5, true, 0, 100),
      ev(1, OpKind::kAdd, 5, true, 10, 90),  // duplicated success
  };
  const AuditResult r = audit_set(h, /*final_snapshot=*/{5});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("key 5"), std::string::npos) << r.detail;
}

TEST(InvariantAudit, SetSnapshotMustBeSorted) {
  EXPECT_FALSE(audit_set({}, {3, 2}).ok);
  EXPECT_FALSE(audit_set({}, {2, 2}).ok);  // duplicate
  EXPECT_TRUE(audit_set({ev(0, OpKind::kAdd, 2, true, 0, 1),
                         ev(0, OpKind::kAdd, 3, true, 2, 3)},
                        {2, 3})
                  .ok);
}

TEST(InvariantAudit, PqBalanceCatchesDuplicates) {
  History h = {
      ev(0, OpKind::kPqAdd, 7, true, 0, 10),
      ev(0, OpKind::kPqRemoveMin, 0, true, 20, 30, 7),
  };
  EXPECT_TRUE(audit_pq(h, {}).ok);
  EXPECT_FALSE(audit_pq(h, {7}).ok);              // removed yet still present
  EXPECT_FALSE(audit_pq(h, {}, {9}).ok);          // seeded 9 vanished
  EXPECT_FALSE(audit_pq({}, {3, 1}).ok);          // drain order broken
}

TEST(InvariantAudit, ConservationAcrossStructures) {
  EXPECT_TRUE(audit_conservation({{1, 3}, {2}}, {1, 2, 3}).ok);
  EXPECT_FALSE(audit_conservation({{1}, {2}}, {1, 2, 3}).ok);     // lost 3
  EXPECT_FALSE(audit_conservation({{1, 3}, {2, 3}}, {1, 2, 3}).ok);  // dup 3
}

// ---- live lost-update reproduction on the broken set -----------------------

TEST(LinChecker, RejectsLostUpdateFromDeliberatelyBrokenSet) {
  stress::BrokenSet set;
  std::latch window(2);
  // Both threads must pass add()'s membership check before either inserts —
  // the lost update is forced, not left to scheduling luck.
  set.between_check_and_insert = [&window] { window.arrive_and_wait(); };

  HistoryRecorder recorder(2);
  std::thread t0([&] {
    recorder.timed_op(0, OpKind::kAdd, 42,
                      [&](std::int64_t&) { return set.add(42); });
  });
  std::thread t1([&] {
    recorder.timed_op(1, OpKind::kAdd, 42,
                      [&](std::int64_t&) { return set.add(42); });
  });
  t0.join();
  t1.join();

  const History h = recorder.merge();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(h[0].ok);
  EXPECT_TRUE(h[1].ok);  // the bug: both adds claimed success

  const LinResult lin = check_keyed_history(h, SetKeySpec{});
  EXPECT_EQ(lin.status, LinStatus::kNonLinearizable) << "checker missed the "
                                                        "lost update";
  const AuditResult audit = audit_set(h, set.snapshot_sorted());
  EXPECT_FALSE(audit.ok) << "invariant audit missed the duplicated element";
}

}  // namespace
}  // namespace otb::verify
