// Tier-2 stress: OTB list map (put/erase/get) under concurrent seeded
// load.  Histories are checked per-key against the sequential map spec
// (get must observe the latest committed value) plus the set-style
// conservation audit over the final snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapters.h"
#include "otb/otb_list_map.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

TEST(OtbMapStress, HistoriesAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned abort_pct;
  };
  // Both validation paths must produce linearizable histories: the O(1)
  // commit-sequence gate (default) and the unconditional full scan.
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
  for (const bool hints : {true, false}) {
    stress::TraversalHintsOverride hint_knob(hints);
  for (const Case c : {Case{2, 0}, Case{4, 0}, Case{4, 20}, Case{6, 10}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct) +
                 " fast_path=" + (fast ? "on" : "off") +
                 " hints=" + (hints ? "on" : "off"));
    tx::OtbListMap map;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 120 * scale;
    opt.key_range = 20;
    opt.seed = verify::stress_seed(0xcafeu + c.threads * 977 + c.abort_pct);
    opt.mix = {{OpKind::kPut, 30}, {OpKind::kErase, 25}, {OpKind::kGet, 45}};

    // Harness convention: seeded map entries carry value == key.
    std::vector<std::int64_t> seeded;
    for (std::int64_t k = 0; k < opt.key_range; k += 2) {
      map.put_seq(k, k);
      seeded.push_back(k);
    }

    const verify::History h = verify::run_stress(opt, [&](unsigned tid) {
      return stress::make_otb_map_worker(map, c.abort_pct,
                                         opt.seed * 31 + tid);
    });

    const LinResult lin =
        verify::check_keyed_history(h, verify::MapKeySpec{}, seeded);
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }

    std::vector<std::int64_t> final_keys;
    for (const auto& [key, value] : map.snapshot_unsafe()) {
      final_keys.push_back(key);
    }
    const verify::AuditResult audit = verify::audit_set(h, final_keys, seeded);
    EXPECT_TRUE(audit.ok) << audit.detail;
  }
  }
  }
}

TEST(OtbMapStress, ReadModifyWriteTransactionsStayAtomic) {
  // Each transaction reads a key and writes value+1 back (or seeds 0):
  // a lost update would show as final value != number of successful
  // increments.  This is the classic counter-increment atomicity test.
  const std::uint64_t scale = verify::stress_scale();
  tx::OtbListMap map;
  constexpr std::int64_t kCounters = 4;
  for (std::int64_t k = 0; k < kCounters; ++k) map.put_seq(k, 0);

  StressOptions opt;
  opt.threads = 4;
  opt.ops_per_thread = 60 * scale;
  opt.key_range = kCounters;
  opt.seed = verify::stress_seed(0xf00du);
  opt.mix = {{OpKind::kPut, 100}};

  const verify::History h = verify::run_stress(opt, [&](unsigned tid) {
    return [&map, inj = stress::AbortInjector(10, opt.seed * 7 + tid)](
               OpKind, std::int64_t key, std::int64_t&) mutable {
      bool pending_abort = inj.arm();
      tx::atomically([&](tx::Transaction& t) {
        std::int64_t v = 0;
        map.get(t, key, &v);
        map.put(t, key, v + 1);
        if (pending_abort) {
          pending_abort = false;
          throw TxAbort{metrics::AbortReason::kExplicit};
        }
      });
      return true;
    };
  });

  std::vector<std::int64_t> increments(kCounters, 0);
  for (const verify::Event& e : h) increments[e.key] += 1;
  for (const auto& [key, value] : map.snapshot_unsafe()) {
    ASSERT_LT(key, kCounters);
    EXPECT_EQ(value, increments[key])
        << "lost increment on counter " << key;
  }
}

}  // namespace
}  // namespace otb
