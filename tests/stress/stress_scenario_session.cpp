// Tier-2 stress: the session-store scenario (service/scenarios.h).  With
// expiry rank == sid (one bucket), create() and expire() keep the session
// map and the TTL index in bijection, and every operation on logical key k
// touches exactly the pair (sessions[k], ttl[k]) — so the SESSION map's
// history is per-key checkable with MapKeySpec while the scripts exercise
// the two-map atomic writes underneath.  The cross-map contract is asserted
// per script (step results must agree: both maps present, or both absent,
// and a failed guard stops the script before the second erase), and the
// final bijection is audited structurally.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adapters.h"
#include "service/scenarios.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

ResponseFuture submit_admitted(Service& svc, Request req) {
  for (;;) {
    ResponseFuture fut = svc.submit(req);
    if (fut.status() != SvcStatus::kOverloaded ||
        fut.wait() != SvcStatus::kOverloaded) {
      return fut;
    }
  }
}

TEST(ScenarioSessionStress, TwoMapScriptsKeepTheBijectionAndLinearize) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned workers;
    unsigned batch_max;
  };
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
  for (const unsigned mv_k : {4u, 0u}) {
    stress::MvVersionsOverride mv_knob(mv_k);
  for (const bool fusion : {true, false}) {
    stress::FusionOverride fusion_knob(fusion);
  for (const Case c : {Case{4, 1, 8}, Case{4, 2, 4}}) {
    SCOPED_TRACE("clients=" + std::to_string(c.threads) +
                 " workers=" + std::to_string(c.workers) +
                 " batch_max=" + std::to_string(c.batch_max) +
                 std::string(" fast_path=") + (fast ? "on" : "off") +
                 std::string(" fusion=") + (fusion ? "on" : "off") +
                 " mv_versions=" + std::to_string(mv_k));
    service::scenarios::SessionStore store;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 120 * scale;
    opt.key_range = 16;
    opt.seed = verify::stress_seed(0x5e5510u + c.threads * 17 + c.batch_max);
    opt.mix = {{OpKind::kPut, 35},     // create
               {OpKind::kErase, 35},   // expire
               {OpKind::kGet, 30}};    // lookup

    // Harness convention: seeded entries carry value == key.  Seeding both
    // maps identically (rank == sid) starts inside the invariant.
    std::vector<std::int64_t> seeded;
    for (std::int64_t sid = 0; sid < opt.key_range; sid += 2) {
      store.sessions().put_seq(sid, sid);
      store.ttl_index().put_seq(sid, sid);
      seeded.push_back(sid);
    }

    ServiceConfig cfg;
    cfg.workers = c.workers;
    cfg.batch_max = c.batch_max;
    cfg.queue_capacity = 1024;
    Service svc(store.targets(), cfg);
    svc.start();

    const verify::History h = verify::run_stress(opt, [&](unsigned) {
      return [&svc, &store](OpKind op, std::int64_t key, std::int64_t& value) {
        Request req;
        switch (op) {
          case OpKind::kPut:
            req = store.create(key, value, /*expiry_rank=*/key);
            break;
          case OpKind::kErase:
            req = store.expire(/*rank=*/key, key);
            break;
          default:
            req = store.lookup(key);
            break;
        }
        ResponseFuture fut = submit_admitted(svc, req);
        const SvcStatus s = fut.wait();
        EXPECT_EQ(s, SvcStatus::kOk) << to_string(s);
        if (op == OpKind::kPut) {
          // Bijection, observed from inside the transaction: the session
          // put and the TTL put must both have found present or both
          // absent.
          EXPECT_EQ(fut.step(0).ok, fut.step(1).ok);
        } else if (op == OpKind::kErase) {
          // The TTL erase is the guard.  If it won, the session erase ran
          // in the same transaction and found the session; if it lost, the
          // script stopped before ever touching the session map.
          if (fut.ok()) {
            EXPECT_TRUE(fut.step(1).ran && fut.step(1).ok);
          } else {
            EXPECT_FALSE(fut.step(1).ran);
          }
        } else if (fut.ok()) {
          value = fut.value();
        }
        return fut.ok();
      };
    });
    svc.stop();

    // Per-key check of the session map's history: sound and complete here
    // because rank == sid makes every script single-logical-key.
    const LinResult lin =
        verify::check_keyed_history(h, verify::MapKeySpec{}, seeded);
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }

    // Structural bijection at quiescence: same keys in both maps, and the
    // TTL index still maps every rank back to its sid.
    const auto sessions = store.sessions().snapshot_unsafe();
    const auto ttl = store.ttl_index().snapshot_unsafe();
    ASSERT_EQ(sessions.size(), ttl.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      EXPECT_EQ(sessions[i].first, ttl[i].first);   // same key set (sorted)
      EXPECT_EQ(ttl[i].second, ttl[i].first);       // rank -> sid, rank == sid
    }
  }
  }
  }
  }
}

}  // namespace
}  // namespace otb
