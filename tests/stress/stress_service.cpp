// Tier-2 stress: map histories driven THROUGH the service plane.  Each
// logical operation is a submit + future wait, so what gets linearizability-
// checked is the full pipeline — admission, sharded queueing, batch
// coalescing into one boosted transaction, and split-retry — not just the
// structure underneath.  Runs with the validation fast path, traversal
// hints, and multi-version snapshot reads (OTB_MV_VERSIONS) forced both on
// and off — with MV on the gets route through the inline snapshot path, so
// the checked history interleaves abort-free snapshot reads with batched
// writes — and once with periodic injected batch aborts so split-retry is
// on the checked path.  The transaction-fusion contention manager
// (OTB_FUSION, src/service/fusion.h) is likewise forced both on and off:
// with fusion on the injected cases exercise batch donation/adoption under
// the lin checker, and the fused/union/fallback ledger identities must hold.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "adapters.h"
#include "otb/otb_list_map.h"
#include "service/service.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

/// One logical map operation through the service.  Overload rejections are
/// retried (a rejected request never executed, so it must not enter the
/// history); everything else is terminal.
service::ResponseFuture submit_admitted(Service& svc, Request req) {
  for (;;) {
    ResponseFuture fut = svc.submit(req);
    if (fut.status() != SvcStatus::kOverloaded || fut.wait() != SvcStatus::kOverloaded) {
      return fut;
    }
  }
}

auto make_service_map_worker(Service& svc) {
  return [&svc](OpKind op, std::int64_t key, std::int64_t& value) {
    Request req;
    switch (op) {
      case OpKind::kPut:
        req = Request{service::map_put(key, value)};
        break;
      case OpKind::kErase:
        req = Request{service::map_erase(key)};
        break;
      default:
        req = Request{service::map_get(key)};
        break;
    }
    ResponseFuture fut = submit_admitted(svc, req);
    const SvcStatus s = fut.wait();
    EXPECT_EQ(s, SvcStatus::kOk) << to_string(s);
    if (op == OpKind::kGet) value = fut.value();
    return fut.ok();
  };
}

struct Case {
  unsigned threads;
  unsigned workers;
  unsigned batch_max;
  bool inject;
};

TEST(ServiceStress, HistoriesThroughServiceAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
  for (const bool hints : {true, false}) {
    stress::TraversalHintsOverride hint_knob(hints);
  for (const unsigned mv_k : {4u, 0u}) {
    stress::MvVersionsOverride mv_knob(mv_k);
  for (const bool fusion : {true, false}) {
    stress::FusionOverride fusion_knob(fusion);
  for (const Case c : {Case{4, 1, 8, false}, Case{4, 2, 4, false},
                       Case{6, 2, 8, true}}) {
    SCOPED_TRACE("clients=" + std::to_string(c.threads) +
                 " workers=" + std::to_string(c.workers) +
                 " batch_max=" + std::to_string(c.batch_max) +
                 std::string(" inject=") + (c.inject ? "yes" : "no") +
                 std::string(" fast_path=") + (fast ? "on" : "off") +
                 std::string(" hints=") + (hints ? "on" : "off") +
                 std::string(" fusion=") + (fusion ? "on" : "off") +
                 " mv_versions=" + std::to_string(mv_k));
    tx::OtbListMap map;
    service::Targets targets = service::Targets::standard(&map);
    metrics::MetricsSink case_sink;  // per-case ledger, not the global sink
    ServiceConfig cfg;
    cfg.metrics = &case_sink;
    cfg.workers = c.workers;
    cfg.batch_max = c.batch_max;
    cfg.queue_capacity = 1024;
    cfg.batch_attempts = 2;
    std::atomic<std::uint64_t> hook_calls{0};
    if (c.inject) {
      // Deterministic turbulence: two consecutive aborts every 16 hook
      // calls.  Bursts (not isolated aborts) are what exhaust the
      // 2-attempt budget, putting split-retry on the checked path.
      cfg.batch_fault_hook = [&hook_calls](std::size_t) {
        if (hook_calls.fetch_add(1, std::memory_order_relaxed) % 16 < 2) {
          throw TxAbort{};
        }
      };
    }
    Service svc(targets, cfg);
    svc.start();

    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 100 * scale;
    opt.key_range = 16;
    opt.seed = verify::stress_seed(0x5e41ceu + c.threads * 131 +
                                   c.batch_max * 7 + (c.inject ? 1 : 0));
    opt.mix = {{OpKind::kPut, 30}, {OpKind::kErase, 25}, {OpKind::kGet, 45}};

    // Harness convention: seeded map entries carry value == key.
    std::vector<std::int64_t> seeded;
    for (std::int64_t k = 0; k < opt.key_range; k += 2) {
      map.put_seq(k, k);
      seeded.push_back(k);
    }

    const verify::History h = verify::run_stress(
        opt, [&](unsigned) { return make_service_map_worker(svc); });
    svc.stop();

    const LinResult lin =
        verify::check_keyed_history(h, verify::MapKeySpec{}, seeded);
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }

    std::vector<std::int64_t> final_keys;
    for (const auto& [key, value] : map.snapshot_unsafe()) {
      final_keys.push_back(key);
    }
    const verify::AuditResult audit = verify::audit_set(h, final_keys, seeded);
    EXPECT_TRUE(audit.ok) << audit.detail;

    // The service ledger must balance: every admitted request completed ok
    // (no deadlines here, map target registered, rejects were retried).
    const metrics::SinkSnapshot s = svc.metrics_sink().snapshot();
    EXPECT_EQ(s.counter(metrics::CounterId::kSvcExpired), 0u);
    EXPECT_EQ(s.counter(metrics::CounterId::kSvcFailed), 0u);
    if (c.inject) {
      EXPECT_GT(s.counter(metrics::CounterId::kSvcBatchSplits), 0u);
    }
    // Snapshot-route ledger: with MV on the gets ran inline (every one a
    // snapshot read or a counted miss-with-fallback, never enqueued); with
    // MV off the route must be fully cold.
    EXPECT_EQ(s.counter(metrics::CounterId::kSvcReadOnly),
              s.counter(metrics::CounterId::kMvSnapshotReads) +
                  s.counter(metrics::CounterId::kMvVersionMisses));
    if (mv_k > 0) {
      EXPECT_GT(s.counter(metrics::CounterId::kSvcReadOnly), 0u);
    } else {
      EXPECT_EQ(s.counter(metrics::CounterId::kSvcReadOnly), 0u);
    }
    // Fusion ledger: every union logged one fused-set-size sample, fused
    // requests imply unions, and split-retries never exceed exhaustions.
    EXPECT_EQ(s.counter(metrics::CounterId::kFusionUnions),
              s.fused_set_size.count);
    EXPECT_GE(s.counter(metrics::CounterId::kSvcFused),
              s.counter(metrics::CounterId::kFusionUnions));
    EXPECT_LE(s.counter(metrics::CounterId::kSvcSplitRetries),
              s.counter(metrics::CounterId::kSvcBatchSplits));
    if (fusion) {
      // Every budget exhaustion fuses or falls back before splitting.
      if (s.counter(metrics::CounterId::kSvcBatchSplits) > 0 &&
          cfg.workers > 1) {
        EXPECT_GT(s.counter(metrics::CounterId::kFusionUnions) +
                      s.counter(metrics::CounterId::kFusionFallbacks),
                  0u);
      }
    } else {
      EXPECT_EQ(s.counter(metrics::CounterId::kSvcFused), 0u);
      EXPECT_EQ(s.counter(metrics::CounterId::kFusionUnions), 0u);
      EXPECT_EQ(s.counter(metrics::CounterId::kFusionFallbacks), 0u);
    }
  }
  }
  }
  }
  }
}

}  // namespace
}  // namespace otb
