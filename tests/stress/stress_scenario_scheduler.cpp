// Tier-2 stress: the job-scheduler scenario (service/scenarios.h) under the
// Wing–Gong checker.  Claim and release are two-step scripts that MOVE a
// job between a skip-list PQ and a lease map, so checking the recorded
// history against SchedulerSpec's joint (free, leased) state is precisely
// the cross-structure atomicity check the ISSUE asks for: a torn script —
// popped but never leased, released but still leased — admits no
// linearization and the search reports it.  After the concurrent phase the
// free queue is drained through the service (more claim scripts, appended
// to the history) and the final lease table is pinned with synthetic
// lookup events, so the end state must linearize too; a conservation audit
// closes the loop (no job lost or duplicated).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "adapters.h"
#include "service/scenarios.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using verify::Event;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

ResponseFuture submit_admitted(Service& svc, Request req) {
  for (;;) {
    ResponseFuture fut = svc.submit(req);
    if (fut.status() != SvcStatus::kOverloaded ||
        fut.wait() != SvcStatus::kOverloaded) {
      return fut;
    }
  }
}

TEST(ScenarioSchedulerStress, CrossStructureScriptsAreLinearizable) {
  const std::uint64_t scale = verify::stress_scale();
  struct Case {
    unsigned threads;
    unsigned workers;
    unsigned batch_max;
  };
  for (const bool fast : {true, false}) {
    stress::FastPathOverride knob(fast);
  for (const unsigned mv_k : {4u, 0u}) {
    stress::MvVersionsOverride mv_knob(mv_k);
  for (const bool fusion : {true, false}) {
    stress::FusionOverride fusion_knob(fusion);
  for (const Case c : {Case{2, 1, 4}, Case{3, 2, 8}}) {
    SCOPED_TRACE("clients=" + std::to_string(c.threads) +
                 " workers=" + std::to_string(c.workers) +
                 " batch_max=" + std::to_string(c.batch_max) +
                 std::string(" fast_path=") + (fast ? "on" : "off") +
                 std::string(" fusion=") + (fusion ? "on" : "off") +
                 " mv_versions=" + std::to_string(mv_k));
    service::scenarios::JobScheduler sched;
    StressOptions opt;
    opt.threads = c.threads;
    opt.ops_per_thread = 40 * scale;
    opt.key_range = 24;
    opt.seed = verify::stress_seed(0x5c4edu + c.threads * 131 + c.batch_max);
    opt.mix = {{OpKind::kPqRemoveMin, 40},   // claim
               {OpKind::kRemove, 35},        // release
               {OpKind::kContains, 25}};     // lease lookup

    std::vector<std::int64_t> seeded;
    for (std::int64_t j = 0; j < opt.key_range; j += 2) {
      sched.seed_job(j);
      seeded.push_back(j);
    }

    ServiceConfig cfg;
    cfg.workers = c.workers;
    cfg.batch_max = c.batch_max;
    cfg.queue_capacity = 1024;
    Service svc(sched.targets(), cfg);
    svc.start();

    verify::History h = verify::run_stress(opt, [&](unsigned) {
      return [&svc, &sched](OpKind op, std::int64_t key, std::int64_t& value) {
        Request req;
        switch (op) {
          case OpKind::kPqRemoveMin:
            req = sched.claim(/*worker=*/key);
            break;
          case OpKind::kRemove:
            req = sched.release(key);
            break;
          default:
            req = sched.holder(key);
            break;
        }
        ResponseFuture fut = submit_admitted(svc, req);
        const SvcStatus s = fut.wait();
        EXPECT_EQ(s, SvcStatus::kOk) << to_string(s);
        if (op != OpKind::kContains) {
          // The script-atomicity contract, step by step: the second step
          // runs iff the guard passed, and when it runs it succeeds (a
          // claimed job can never already be leased; a released job can
          // never already be free).
          EXPECT_EQ(fut.ok(), fut.step(1).ran && fut.step(1).ok);
          if (op == OpKind::kPqRemoveMin && fut.ok()) {
            value = fut.step(0).value;  // the claimed job id
          }
        }
        return fut.ok();
      };
    });

    // Drain the free queue through MORE claim scripts, appended to the
    // history so the lin check covers the final hand-off too.
    for (;;) {
      Event e;
      e.tid = 0;
      e.op = OpKind::kPqRemoveMin;
      e.invoke_ns = now_ns();
      ResponseFuture fut = submit_admitted(svc, sched.claim(0));
      ASSERT_EQ(fut.wait(), SvcStatus::kOk);
      e.response_ns = now_ns();
      e.ok = fut.ok();
      if (fut.ok()) e.value = fut.step(0).value;
      h.push_back(e);
      if (!fut.ok()) break;
    }
    svc.stop();

    // Every surviving job is now leased; pin the lease table's exact
    // contents with synthetic lookups (present and absent alike).
    std::vector<std::int64_t> leased;
    for (const auto& [job, worker] : sched.leases().snapshot_unsafe()) {
      leased.push_back(job);
    }
    for (std::int64_t j = 0; j < opt.key_range; ++j) {
      Event e;
      e.tid = 0;
      e.op = OpKind::kContains;
      e.invoke_ns = now_ns();
      e.response_ns = now_ns();
      e.key = j;
      e.ok = std::find(leased.begin(), leased.end(), j) != leased.end();
      h.push_back(e);
    }

    // Conservation: claim/release only MOVE jobs, so the final lease table
    // must hold exactly the seeded set.
    const verify::AuditResult cons =
        verify::audit_conservation({leased}, seeded);
    EXPECT_TRUE(cons.ok) << cons.detail;

    const verify::SchedulerSpec spec;
    const LinResult lin =
        verify::check_history(h, spec, spec.initial_with(seeded));
    EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
    if (lin.status == LinStatus::kBudgetExhausted) {
      GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
    }
  }
  }
  }
  }
}

}  // namespace
}  // namespace otb
