// Tier-2 stress: the pure-STM set structures (word-based read/write
// barriers) under NOrec and TL2.  Exercises the STM retry loop, rollback
// path and (for TL2) the orec table under real contention; the recorded
// histories must linearize against the sequential set spec.
//
// The STM structures expose no non-transactional snapshot, so after the
// concurrent phase a single-threaded transactional sweep of the key range
// is appended to the history — pinning the final state for both the
// linearizability check and the conservation audit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adapters.h"
#include "stm/stm.h"
#include "stmds/stm_list.h"
#include "stmds/stm_skiplist.h"
#include "verify/invariants.h"
#include "verify/lin_check.h"
#include "verify/stress.h"

namespace otb {
namespace {

using verify::Event;
using verify::LinResult;
using verify::LinStatus;
using verify::OpKind;
using verify::StressOptions;

/// Sweep [0, key_range) with contains-transactions on the calling thread,
/// appending each probe to `h`; returns the keys found present.
template <typename SetT>
std::vector<std::int64_t> sweep_and_record(stm::Runtime& rt, SetT& set,
                                           std::int64_t key_range,
                                           verify::History& h) {
  stm::TxThread thread(rt);
  std::vector<std::int64_t> present;
  for (std::int64_t k = 0; k < key_range; ++k) {
    Event e;
    e.tid = 0;
    e.op = OpKind::kContains;
    e.key = k;
    e.invoke_ns = now_ns();
    bool found = false;
    rt.atomically(thread, [&](stm::Tx& tx) { found = set.contains(tx, k); });
    e.response_ns = now_ns();
    e.ok = found;
    h.push_back(e);
    if (found) present.push_back(k);
  }
  return present;
}

template <typename SetT>
void run_stm_set_stress(stm::AlgoKind algo, unsigned threads,
                        unsigned abort_pct) {
  const std::uint64_t scale = verify::stress_scale();
  stm::Runtime rt(algo);
  SetT set;

  StressOptions opt;
  opt.threads = threads;
  opt.ops_per_thread = 100 * scale;
  opt.key_range = 20;
  opt.seed = verify::stress_seed(0x57a7u + threads * 211 + abort_pct +
                                 static_cast<unsigned>(algo) * 17);

  std::vector<std::int64_t> seeded;
  for (std::int64_t k = 0; k < opt.key_range; k += 2) {
    set.add_seq(k);
    seeded.push_back(k);
  }

  // The worker owns a TxThread, which must be constructed on the worker
  // thread itself — the factory runs there by contract.
  verify::History h = verify::run_stress(opt, [&](unsigned tid) {
    return stress::make_stm_set_worker(rt, set, abort_pct,
                                       opt.seed * 31 + tid);
  });

  const std::vector<std::int64_t> snapshot =
      sweep_and_record(rt, set, opt.key_range, h);

  const LinResult lin =
      verify::check_keyed_history(h, verify::SetKeySpec{}, seeded);
  EXPECT_NE(lin.status, LinStatus::kNonLinearizable) << lin.detail;
  if (lin.status == LinStatus::kBudgetExhausted) {
    GTEST_LOG_(WARNING) << "lin check inconclusive: " << lin.detail;
  }

  const verify::AuditResult audit = verify::audit_set(h, snapshot, seeded);
  EXPECT_TRUE(audit.ok) << audit.detail;
}

struct StmCase {
  stm::AlgoKind algo;
  unsigned threads;
  unsigned abort_pct;
};

const StmCase kStmCases[] = {
    {stm::AlgoKind::kNOrec, 2, 0},
    {stm::AlgoKind::kNOrec, 4, 20},
    {stm::AlgoKind::kTL2, 2, 0},
    {stm::AlgoKind::kTL2, 4, 20},
};

TEST(StmListStress, HistoriesAreLinearizable) {
  for (const StmCase& c : kStmCases) {
    SCOPED_TRACE(std::string(stm::to_string(c.algo)) +
                 " threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct));
    run_stm_set_stress<stmds::StmList>(c.algo, c.threads, c.abort_pct);
  }
}

TEST(StmSkipListStress, HistoriesAreLinearizable) {
  for (const StmCase& c : kStmCases) {
    SCOPED_TRACE(std::string(stm::to_string(c.algo)) +
                 " threads=" + std::to_string(c.threads) +
                 " abort_pct=" + std::to_string(c.abort_pct));
    run_stm_set_stress<stmds::StmSkipList>(c.algo, c.threads, c.abort_pct);
  }
}

}  // namespace
}  // namespace otb
