// Tests for the commit-sequence gated validation fast path and the
// zero-allocation retry machinery: the O(1) path must fire on quiescent
// reads, full validation must resume (and the snapshot re-extend) after a
// concurrent commit, the OTB_VALIDATION_FAST_PATH knob must force the full
// path when disabled, and non-TxAbort exceptions escaping an atomic block
// must release all held state (the catch-all regression).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "metrics/sink.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"

namespace otb {
namespace {

using metrics::CounterId;

struct Counts {
  std::uint64_t fast = 0;
  std::uint64_t full = 0;
};

Counts counts(const metrics::MetricsSink& sink) {
  const metrics::SinkSnapshot s = sink.snapshot();
  return {s.counters[static_cast<std::size_t>(CounterId::kValidationsFast)],
          s.counters[static_cast<std::size_t>(CounterId::kValidationsFull)]};
}

/// RAII sink injection + knob restore so a failing assertion cannot leak
/// test-local metrics state into later tests.
class FastPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tx::set_validation_fast_path(true);
    tx::set_metrics_sink(&sink_);
  }
  void TearDown() override {
    tx::set_metrics_sink(nullptr);
    tx::set_validation_fast_path(true);
  }

  Counts delta() {
    const Counts now = counts(sink_);
    const Counts d{now.fast - last_.fast, now.full - last_.full};
    last_ = now;
    return d;
  }

  metrics::MetricsSink sink_;
  Counts last_;
};

TEST_F(FastPathTest, QuiescentReadsHitFastPathAfterFirstValidation) {
  tx::OtbListSet set;
  for (std::int64_t k = 1; k <= 8; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 1; k <= 8; ++k) EXPECT_TRUE(set.contains(t, k));
  });

  // First post-validation is full (no snapshot yet) and extends the
  // snapshot; with no concurrent publication the remaining 7 are O(1).
  const Counts d = delta();
  EXPECT_EQ(d.full, 1u);
  EXPECT_EQ(d.fast, 7u);
}

TEST_F(FastPathTest, FullValidationResumesAfterConcurrentCommit) {
  tx::OtbListSet set;
  for (std::int64_t k = 1; k <= 8; ++k) set.add_seq(k);
  delta();

  // Long-running reader held open across another transaction's commit.  A
  // manual Transaction flushes its tally only through atomically(), so we
  // read the counters off the tally directly.
  tx::Transaction reader;
  EXPECT_TRUE(set.contains(reader, 1));  // full (no snapshot yet)
  EXPECT_TRUE(set.contains(reader, 2));  // fast
  EXPECT_EQ(reader.tally().validations_full, 1u);
  EXPECT_EQ(reader.tally().validations_fast, 1u);

  // A committed writer moves the structure's commit sequence.  Key 100 is
  // past every key the reader has read, so the reader's snapshot survives
  // the full re-validation and can be extended again.
  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.add(t, 100)); });
  const Counts d = delta();  // the writer's own post-validation (fresh desc)
  EXPECT_EQ(d.full, 1u);
  EXPECT_EQ(d.fast, 0u);

  EXPECT_TRUE(set.contains(reader, 3));  // sequence moved: full again
  EXPECT_TRUE(set.contains(reader, 4));  // re-extended snapshot: fast again
  EXPECT_EQ(reader.tally().validations_full, 2u);
  EXPECT_EQ(reader.tally().validations_fast, 2u);

  reader.commit();  // read-only; releases nothing but closes cleanly
}

TEST_F(FastPathTest, KnobOffForcesFullValidation) {
  tx::set_validation_fast_path(false);
  tx::OtbListSet set;
  for (std::int64_t k = 1; k <= 8; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 1; k <= 8; ++k) EXPECT_TRUE(set.contains(t, k));
  });

  const Counts d = delta();
  EXPECT_EQ(d.fast, 0u);
  EXPECT_EQ(d.full, 8u);
}

TEST_F(FastPathTest, SkipListSetGatesValidationToo) {
  tx::OtbSkipListSet set;
  for (std::int64_t k = 1; k <= 8; ++k) set.add_seq(k);
  delta();

  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k = 1; k <= 8; ++k) EXPECT_TRUE(set.contains(t, k));
  });

  const Counts d = delta();
  EXPECT_EQ(d.full, 1u);
  EXPECT_EQ(d.fast, 7u);
}

TEST_F(FastPathTest, WriterCommitInvalidatesOtherThreadSnapshotObservably) {
  // The gate must never let a stale snapshot satisfy validation: a reader
  // whose read-set is actually broken by a concurrent commit still aborts.
  tx::OtbListSet set;
  for (std::int64_t k = 1; k <= 4; ++k) set.add_seq(k);

  tx::Transaction reader;
  EXPECT_TRUE(set.contains(reader, 2));
  // Remove the node the reader's snapshot depends on.
  tx::atomically([&](tx::Transaction& t) { EXPECT_TRUE(set.remove(t, 2)); });
  // Next operation's post-validation must take the full path (sequence
  // moved) and fail.
  EXPECT_THROW(set.contains(reader, 3), TxAbort);
  reader.abandon();
}

// ---- catch-all abandon regression (non-TxAbort exceptions) ------------------

TEST_F(FastPathTest, UserExceptionReleasesHeapPqLock) {
  // The heap PQ takes its global lock eagerly on remove_min; before the
  // catch-all, a user exception escaped tx::atomically without on_abort,
  // leaving the lock held and the eager effects applied forever.
  tx::OtbHeapPQ pq;
  pq.add_seq(5);
  pq.add_seq(9);

  EXPECT_THROW(tx::atomically([&](tx::Transaction& t) {
                 pq.add(t, 1);
                 std::int64_t out = 0;
                 EXPECT_TRUE(pq.remove_min(t, &out));  // forces the lock
                 EXPECT_EQ(out, 1);
                 throw std::runtime_error("user bug");
               }),
               std::runtime_error);

  // Lock released and eager effects rolled back: the queue still works and
  // holds exactly the seeded keys.
  std::int64_t out = 0;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(pq.remove_min(t, &out));
  });
  EXPECT_EQ(out, 5);
  EXPECT_EQ(pq.size_unsafe(), 1u);

  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_GT(
      s.aborts[static_cast<std::size_t>(metrics::AbortReason::kExplicit)], 0u);
}

TEST_F(FastPathTest, UserExceptionLeavesSetUnpublished) {
  tx::OtbListSet set;
  set.add_seq(1);
  EXPECT_THROW(tx::atomically([&](tx::Transaction& t) {
                 EXPECT_TRUE(set.add(t, 2));
                 throw std::runtime_error("user bug");
               }),
               std::runtime_error);
  EXPECT_EQ(set.size_unsafe(), 1u);
  bool present = true;
  tx::atomically([&](tx::Transaction& t) { present = set.contains(t, 2); });
  EXPECT_FALSE(present);
}

TEST_F(FastPathTest, RetriesReuseDescriptorsAndCommitCorrectly) {
  // An attempt that aborts recycles its descriptors; the retry must start
  // from genuinely reset state (no stale write-set or snapshot) and the
  // final commit must publish exactly once.
  tx::OtbListSet set;
  set.add_seq(1);
  int attempts = 0;
  tx::atomically([&](tx::Transaction& t) {
    ++attempts;
    EXPECT_TRUE(set.add(t, 42));
    EXPECT_TRUE(set.contains(t, 42));
    if (attempts < 3) throw TxAbort{metrics::AbortReason::kExplicit};
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(set.size_unsafe(), 2u);
  bool present = false;
  tx::atomically([&](tx::Transaction& t) { present = set.contains(t, 42); });
  EXPECT_TRUE(present);
}

}  // namespace
}  // namespace otb
