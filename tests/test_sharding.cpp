// Tier-1 tests of key-space sharding (src/service/sharding.h): hash
// stability and spread, single-shard passthrough, owner-shard landing
// verified against the shards' actual map contents, the fail-closed router
// (cross-shard keys, runtime-bound keys, keyless and range verbs) with its
// svc_cross_shard accounting, the per-shard + aggregate ledger identities,
// and per-shard WAL recovery out of the shard-<i> directory layout.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "metrics/sink.h"
#include "otb/otb_list_map.h"
#include "service/service.h"
#include "service/sharding.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::Request;
using service::ResponseFuture;
using service::ServiceConfig;
using service::ShardedService;
using service::shard_of_key;
using service::Step;
using service::SvcStatus;
using service::Targets;

using service::map_erase;
using service::map_get;
using service::map_put;
using service::map_range;
using service::sl_pop_min;

/// Fixture owning one map per shard (shards share no structures) and the
/// global-registry snapshots needed to assert counter DELTAS — the global
/// domains accumulate across tests in this binary.
class ShardingTest : public ::testing::Test {
 protected:
  std::vector<Targets> make_targets(unsigned shards) {
    maps_.clear();
    std::vector<Targets> t;
    for (unsigned i = 0; i < shards; ++i) {
      maps_.push_back(std::make_unique<tx::OtbListMap>());
      t.push_back(Targets::standard(maps_.back().get()));
    }
    return t;
  }

  static ServiceConfig config() {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.batch_max = 4;
    cfg.queue_capacity = 256;
    return cfg;
  }

  static metrics::SinkSnapshot domain(const std::string& name) {
    return metrics::Registry::global().sink(name).snapshot();
  }

  /// Two keys guaranteed to live on different shards (exists for any
  /// shards >= 2 within the first few integers).
  static std::pair<std::int64_t, std::int64_t> cross_pair(unsigned shards) {
    for (std::int64_t a = 0; a < 64; ++a) {
      for (std::int64_t b = a + 1; b < 64; ++b) {
        if (shard_of_key(a, shards) != shard_of_key(b, shards)) return {a, b};
      }
    }
    ADD_FAILURE() << "no cross-shard pair in [0, 64)";
    return {0, 0};
  }

  std::vector<std::unique_ptr<tx::OtbListMap>> maps_;
};

TEST_F(ShardingTest, ShardOfKeyIsStableAndSpreads) {
  for (std::int64_t k = -100; k < 100; ++k) {
    EXPECT_EQ(shard_of_key(k, 8), shard_of_key(k, 8));  // pure function
    EXPECT_EQ(shard_of_key(k, 1), 0u);
    EXPECT_LT(shard_of_key(k, 8), 8u);
  }
  // The splitmix64 finalizer spreads a contiguous key range about evenly:
  // with 8000 keys over 8 shards, each shard gets 1000 ± a wide margin.
  std::vector<int> hits(8, 0);
  for (std::int64_t k = 0; k < 8000; ++k) hits[shard_of_key(k, 8)] += 1;
  for (int h : hits) {
    EXPECT_GT(h, 700);
    EXPECT_LT(h, 1300);
  }
}

TEST_F(ShardingTest, SingleShardPassesEverythingThrough) {
  const auto before = domain("otb.service.router");
  ShardedService svc(make_targets(1), config());
  svc.start();
  // Everything the service supports — ranges and runtime bindings included
  // — is single-shard by definition with one plane.
  EXPECT_EQ(svc.submit(map_put(1, 10)).wait(), SvcStatus::kOk);
  EXPECT_EQ(svc.submit(map_put(2, 20)).wait(), SvcStatus::kOk);
  ResponseFuture range = svc.submit(map_range(0, 10));
  EXPECT_EQ(range.wait(), SvcStatus::kOk);
  EXPECT_EQ(range.range().size(), 2u);
  EXPECT_EQ(
      svc.submit(Request{map_get(1), map_get(2).key_from_step(0)}).wait(),
      SvcStatus::kOk);
  svc.stop();
  const auto after = domain("otb.service.router");
  EXPECT_EQ(after.counter(CounterId::kSvcCrossShard),
            before.counter(CounterId::kSvcCrossShard));
}

TEST_F(ShardingTest, ScriptsLandOnTheOwnerShard) {
  constexpr unsigned kShards = 4;
  ShardedService svc(make_targets(kShards), config());
  svc.start();
  for (std::int64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(svc.submit(map_put(k, k * 3)).wait(), SvcStatus::kOk);
  }
  // Ask each shard DIRECTLY: only the hash owner holds the key.
  for (std::int64_t k = 0; k < 64; ++k) {
    const unsigned owner = shard_of_key(k, kShards);
    for (unsigned s = 0; s < kShards; ++s) {
      ResponseFuture fut = svc.shard(s).submit(map_get(k));
      ASSERT_EQ(fut.wait(), SvcStatus::kOk);
      EXPECT_EQ(fut.ok(), s == owner) << "key " << k << " shard " << s;
      if (s == owner) EXPECT_EQ(fut.value(), k * 3);
    }
  }
  // A multi-step script whose keys share one owner routes there whole.
  std::int64_t a = -1, b = -1;
  for (std::int64_t k = 0; k < 64 && b < 0; ++k) {
    if (shard_of_key(k, kShards) != shard_of_key(0, kShards)) continue;
    if (a < 0) {
      a = k;
    } else if (k != a) {
      b = k;
    }
  }
  ASSERT_GE(b, 0);
  ResponseFuture script = svc.submit(Request{map_get(a), map_get(b)});
  EXPECT_EQ(script.wait(), SvcStatus::kOk);
  EXPECT_TRUE(script.ok());
  svc.stop();
}

TEST_F(ShardingTest, CrossShardScriptsFailClosed) {
  constexpr unsigned kShards = 4;
  const auto router0 = domain("otb.service.router");
  std::vector<metrics::SinkSnapshot> shard0;
  for (unsigned s = 0; s < kShards; ++s) {
    shard0.push_back(domain("otb.service.s" + std::to_string(s)));
  }
  ShardedService svc(make_targets(kShards), config());
  svc.start();
  const auto [a, b] = cross_pair(kShards);

  // Literal keys spanning shards.
  EXPECT_EQ(svc.submit(Request{map_put(a, 1), map_put(b, 2)}).wait(),
            SvcStatus::kFailed);
  // Runtime-bound key: the owner is unknowable at submit time.
  EXPECT_EQ(
      svc.submit(Request{map_get(a), map_get(a).key_from_step(0)}).wait(),
      SvcStatus::kFailed);
  // Range scans span the key space by construction.
  EXPECT_EQ(svc.submit(map_range(0, 100)).wait(), SvcStatus::kFailed);
  // Keyless verbs: the minimum lives wherever it lives.
  EXPECT_EQ(svc.submit(sl_pop_min()).wait(), SvcStatus::kFailed);

  svc.stop();
  const auto router1 = domain("otb.service.router");
  EXPECT_EQ(router1.counter(CounterId::kSvcCrossShard) -
                router0.counter(CounterId::kSvcCrossShard),
            4u);
  // Router rejections never touch a shard's ledger: no shard saw a submit,
  // a failure, or an enqueue from any of the four.
  for (unsigned s = 0; s < kShards; ++s) {
    const auto now = domain("otb.service.s" + std::to_string(s));
    EXPECT_EQ(now.counter(CounterId::kSvcFailed),
              shard0[s].counter(CounterId::kSvcFailed));
    EXPECT_EQ(now.counter(CounterId::kSvcRejected),
              shard0[s].counter(CounterId::kSvcRejected));
    EXPECT_EQ(now.counter(CounterId::kSvcEnqueued),
              shard0[s].counter(CounterId::kSvcEnqueued));
  }
}

TEST_F(ShardingTest, PerShardAndAggregateLedgersHold) {
  constexpr unsigned kShards = 3;
  std::vector<metrics::SinkSnapshot> before;
  for (unsigned s = 0; s < kShards; ++s) {
    before.push_back(domain("otb.service.s" + std::to_string(s)));
  }
  ShardedService svc(make_targets(kShards), config());
  svc.start();
  std::vector<ResponseFuture> futs;
  for (std::int64_t k = 0; k < 200; ++k) {
    futs.push_back(svc.submit(map_put(k, k)));
    futs.push_back(svc.submit(map_get(k)));  // inline read-only route
  }
  for (auto& f : futs) f.wait();
  svc.stop();

  std::uint64_t agg_enq = 0, agg_batch = 0, agg_exp = 0;
  std::uint64_t agg_ro = 0, agg_snap = 0, agg_miss = 0;
  for (unsigned s = 0; s < kShards; ++s) {
    const auto now = domain("otb.service.s" + std::to_string(s));
    const auto d = [&](CounterId id) {
      return now.counter(id) - before[s].counter(id);
    };
    const std::uint64_t batch_total =
        now.batch_size.total - before[s].batch_size.total;
    // Every admitted request lands in exactly one batch or expires.
    EXPECT_EQ(d(CounterId::kSvcEnqueued),
              batch_total + d(CounterId::kSvcExpired))
        << "shard " << s;
    // Every read-only request resolves via snapshot or falls back.
    EXPECT_EQ(d(CounterId::kSvcReadOnly),
              d(CounterId::kMvSnapshotReads) + d(CounterId::kMvVersionMisses))
        << "shard " << s;
    EXPECT_GT(d(CounterId::kSvcEnqueued), 0u) << "shard " << s;
    agg_enq += d(CounterId::kSvcEnqueued);
    agg_batch += batch_total;
    agg_exp += d(CounterId::kSvcExpired);
    agg_ro += d(CounterId::kSvcReadOnly);
    agg_snap += d(CounterId::kMvSnapshotReads);
    agg_miss += d(CounterId::kMvVersionMisses);
  }
  // The identities are linear, so the per-shard sums satisfy them too —
  // this is what metrics_check --validate asserts for the aggregate.
  EXPECT_EQ(agg_enq, agg_batch + agg_exp);
  EXPECT_EQ(agg_ro, agg_snap + agg_miss);
  EXPECT_EQ(agg_enq, 200u);  // every put routed somewhere, none rejected
  EXPECT_EQ(agg_ro, 200u);
}

TEST_F(ShardingTest, RecoversEachShardFromItsOwnWalDirectory) {
  constexpr unsigned kShards = 3;
  char tmpl[] = "/tmp/otb_shard_wal_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ServiceConfig cfg = config();
  cfg.wal_dir = dir;

  {
    ShardedService svc(make_targets(kShards), cfg);
    svc.start();
    for (std::int64_t k = 0; k < 30; ++k) {
      ASSERT_EQ(svc.submit(map_put(k, k * 7)).wait(), SvcStatus::kOk);
    }
    svc.stop();
  }
  for (unsigned s = 0; s < kShards; ++s) {
    struct stat st{};
    EXPECT_EQ(::stat((dir + "/shard-" + std::to_string(s)).c_str(), &st), 0)
        << "missing per-shard WAL dir " << s;
  }

  // Fresh structures, same directories: replay restores each shard.
  ShardedService svc(make_targets(kShards), cfg);
  const auto reports = svc.recover();
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(kShards));
  for (const auto& r : reports) EXPECT_TRUE(r.ok()) << r.detail;
  svc.start();
  for (std::int64_t k = 0; k < 30; ++k) {
    ResponseFuture fut = svc.submit(map_get(k));
    ASSERT_EQ(fut.wait(), SvcStatus::kOk);
    EXPECT_TRUE(fut.ok()) << "key " << k;
    EXPECT_EQ(fut.value(), k * 7);
  }
  svc.stop();

  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

}  // namespace
}  // namespace otb
