// Contention-manager tests (§7.1.3): the polite policy must (a) never
// break safety, (b) actually defer committers that would doom a crowd, and
// (c) leave behaviour identical when disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/stm.h"

namespace otb::stm {
namespace {

class CmTest : public ::testing::TestWithParam<AlgoKind> {};

INSTANTIATE_TEST_SUITE_P(InvalAlgos, CmTest,
                         ::testing::Values(AlgoKind::kInvalSTM, AlgoKind::kRInval),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(CmTest, PoliteCommitterEventuallyWinsAndConserves) {
  Config cfg;
  cfg.max_threads = 8;
  cfg.inval_cm_max_doomed = 2;  // defer commits that would doom > 2 readers
  Runtime rt(GetParam(), cfg);
  constexpr std::size_t kWords = 16;
  TArray<std::int64_t> mem(kWords, 10);
  constexpr int kThreads = 4, kIters = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxThread th(rt);
      Xorshift rng{std::uint64_t(t) * 11 + 3};
      for (int i = 0; i < kIters; ++i) {
        const auto a = rng.next_bounded(kWords);
        const auto b = rng.next_bounded(kWords);
        rt.atomically(th, [&](Tx& tx) {
          tx.write(mem[a], tx.read(mem[a]) - 1);
          tx.write(mem[b], tx.read(mem[b]) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  for (std::size_t w = 0; w < kWords; ++w) total += mem[w].load_direct();
  EXPECT_EQ(total, std::int64_t(kWords) * 10);
}

TEST_P(CmTest, PoliteCommitterAbortsMoreThanAggressiveOne) {
  // Many persistent readers + one writer over one hot word: the polite
  // writer must record extra aborts relative to the requester-wins policy.
  auto run_with = [&](unsigned max_doomed) -> std::uint64_t {
    Config cfg;
    cfg.max_threads = 8;
    cfg.inval_cm_max_doomed = max_doomed;
    Runtime rt(GetParam(), cfg);
    TVar<std::int64_t> hot{0};
    std::atomic<bool> stop{false};
    std::atomic<int> readers_up{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&] {
        TxThread th(rt);
        while (!stop.load()) {
          rt.atomically(th, [&](Tx& tx) { (void)tx.read(hot); });
          readers_up.store(1);
        }
      });
    }
    while (readers_up.load() == 0) std::this_thread::yield();
    std::uint64_t writer_aborts = 0;
    {
      TxThread th(rt);
      for (int i = 0; i < 100; ++i) {
        writer_aborts +=
            rt.atomically(th, [&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); })
                .aborts;
      }
    }
    stop = true;
    for (auto& r : readers) r.join();
    EXPECT_EQ(hot.load_direct(), 100);
    return writer_aborts;
  };
  const std::uint64_t aggressive = run_with(0);
  const std::uint64_t polite = run_with(1);
  // The polite policy cannot abort the writer *less* than requester-wins in
  // this construction (every commit window has up to 2 conflicting readers).
  EXPECT_GE(polite, aggressive);
}

TEST_P(CmTest, DisabledCmMatchesDefaultBehaviour) {
  Config cfg;
  cfg.max_threads = 8;
  cfg.inval_cm_max_doomed = 0;
  Runtime rt(GetParam(), cfg);
  TVar<std::int64_t> x{0};
  TxThread th(rt);
  for (int i = 0; i < 100; ++i) {
    rt.atomically(th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  EXPECT_EQ(x.load_direct(), 100);
}

}  // namespace
}  // namespace otb::stm
