// Tier-1 tests of the durability layer (service/wal.h + recovery.h):
// record encode/decode round-trips, torn-tail truncation vs mid-log
// corruption (fail closed), checkpoint + manifest compaction, commit-clock
// stamp merging across shards, and recover-then-serve equivalence — a
// recovered service is indistinguishable from one that never crashed.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metrics/sink.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "service/recovery.h"
#include "service/service.h"
#include "service/wal.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::CheckpointSlot;
using service::RecoveryReport;
using service::RecoveryStatus;
using service::Request;
using service::Service;
using service::ServiceConfig;
using service::Targets;
using service::Verb;
using service::Wal;
using service::WalFsync;
using service::WalOp;
using service::WalOptions;
using service::WalRecord;
using service::WalScan;

using service::heap_push;
using service::map_erase;
using service::map_put;
using service::set_add;
using service::sl_push;

/// Fresh temp directory per test; removed with its contents on teardown.
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/otb_wal_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string read_file(const std::string& name) {
    std::string out;
    EXPECT_TRUE(service::recovery_detail::read_file(dir_ + "/" + name, &out));
    return out;
  }

  void write_file(const std::string& name, const std::string& data) {
    std::FILE* f = std::fopen((dir_ + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
  }

  bool exists(const std::string& name) {
    struct stat st{};
    return ::stat((dir_ + "/" + name).c_str(), &st) == 0;
  }

  std::string dir_;
};

std::vector<WalOp> sample_ops() {
  return {WalOp{0, Verb::kPut, 7, 70}, WalOp{1, Verb::kAdd, 8, 0},
          WalOp{2, Verb::kPush, 9, 0}, WalOp{0, Verb::kErase, -3, 0},
          WalOp{3, Verb::kPopMin, 5, 0}};
}

TEST_F(WalTest, EncodeDecodeRoundTrip) {
  std::string buf;
  const std::vector<WalOp> ops = sample_ops();
  service::encode_record(42, ops.data(), ops.size(), &buf);
  service::encode_record(43, ops.data(), 1, &buf);
  service::encode_record(44, nullptr, 0, &buf);  // read-only record is legal

  const WalScan scan = service::scan_wal_buffer(buf);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.tail_offset, buf.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].seq, 42u);
  EXPECT_EQ(scan.records[0].ops, ops);
  EXPECT_EQ(scan.records[1].seq, 43u);
  ASSERT_EQ(scan.records[1].ops.size(), 1u);
  EXPECT_EQ(scan.records[1].ops[0], ops[0]);
  EXPECT_TRUE(scan.records[2].ops.empty());
}

TEST_F(WalTest, ScanEmptyBufferIsClean) {
  const WalScan scan = service::scan_wal_buffer("");
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(WalTest, TornTailStopsAtLastValidBoundary) {
  std::string buf;
  const std::vector<WalOp> ops = sample_ops();
  service::encode_record(1, ops.data(), ops.size(), &buf);
  const std::size_t boundary = buf.size();
  service::encode_record(2, ops.data(), ops.size(), &buf);
  buf.resize(boundary + 11);  // record 2 torn mid-frame

  const WalScan scan = service::scan_wal_buffer(buf);
  EXPECT_FALSE(scan.clean);
  EXPECT_FALSE(scan.valid_after_damage);
  EXPECT_EQ(scan.tail_offset, boundary);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
}

TEST_F(WalTest, BitFlipIsDamageAndLaterValidRecordIsDetected) {
  std::string buf;
  const std::vector<WalOp> ops = sample_ops();
  service::encode_record(1, ops.data(), ops.size(), &buf);
  const std::size_t boundary = buf.size();
  service::encode_record(2, ops.data(), ops.size(), &buf);
  buf[boundary / 2] ^= 0x40;  // flip a bit inside record 1's payload

  const WalScan scan = service::scan_wal_buffer(buf);
  EXPECT_FALSE(scan.clean);
  EXPECT_TRUE(scan.valid_after_damage);  // record 2 still parses => corrupt
  EXPECT_EQ(scan.tail_offset, 0u);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(WalTest, AppendReadBackWithCountersAndRotation) {
  metrics::MetricsSink sink;
  Wal wal(WalOptions{dir_, WalFsync::kAlways, 2, &sink});
  std::string err;
  ASSERT_TRUE(wal.open_for_append(&err)) << err;
  const std::vector<WalOp> ops = sample_ops();
  wal.append(0, 1, ops.data(), ops.size());
  wal.append(1, 2, ops.data(), 2);
  ASSERT_TRUE(wal.rotate_all(&err)) << err;
  wal.append(0, 3, ops.data(), 1);
  wal.close_all();

  const WalScan s00 =
      service::scan_wal_buffer(read_file(service::wal_segment_name(0, 0)));
  const WalScan s01 =
      service::scan_wal_buffer(read_file(service::wal_segment_name(0, 1)));
  const WalScan s10 =
      service::scan_wal_buffer(read_file(service::wal_segment_name(1, 0)));
  ASSERT_TRUE(s00.clean && s01.clean && s10.clean);
  ASSERT_EQ(s00.records.size(), 1u);
  EXPECT_EQ(s00.records[0].ops, ops);
  ASSERT_EQ(s01.records.size(), 1u);
  EXPECT_EQ(s01.records[0].seq, 3u);
  ASSERT_EQ(s10.records.size(), 1u);

  const auto snap = sink.snapshot();
  EXPECT_EQ(snap.counter(CounterId::kWalAppends), 3u);
  EXPECT_GE(snap.counter(CounterId::kWalFsyncs), 3u);  // always-mode: per append
  EXPECT_GT(snap.counter(CounterId::kWalBytes), 0u);
  EXPECT_EQ(snap.phase(metrics::Phase::kWalFsync).count,
            snap.counter(CounterId::kWalFsyncs));
}

TEST_F(WalTest, RecoverNoStateOnMissingOrEmptyDir) {
  tx::OtbListMap map;
  Targets t = Targets::standard(&map);
  RecoveryReport r = service::recover_into(dir_ + "/nonexistent", t);
  EXPECT_EQ(r.status, RecoveryStatus::kNoState);
  r = service::recover_into(dir_, t);
  EXPECT_EQ(r.status, RecoveryStatus::kNoState);
  EXPECT_TRUE(r.ok());
}

/// Drive a deterministic script mix through a durable service, stop it,
/// and return the WAL dir's contents for recovery tests.
struct DurableRun {
  std::vector<std::pair<std::int64_t, std::int64_t>> map_state;
  std::vector<std::int64_t> set_state, heap_state, slpq_state;
  std::uint64_t clock = 0;
};

DurableRun run_durable_workload(const std::string& dir, WalFsync mode,
                                metrics::MetricsSink* sink,
                                bool checkpoint_midway = false) {
  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 4;
  cfg.metrics = sink;
  cfg.wal_dir = dir;
  cfg.wal_fsync = mode;
  Service svc(Targets::standard(&map, &set, &heap, &slpq), cfg);
  svc.start();
  std::vector<service::ResponseFuture> futs;
  for (int i = 0; i < 40; ++i) {
    futs.push_back(svc.submit(Request(map_put(i % 16, i * 10))));
    futs.push_back(svc.submit(Request(set_add(i % 8))));
    futs.push_back(svc.submit(Request(heap_push(100 - i))));
    futs.push_back(svc.submit(Request(sl_push(200 + i))));
    if (i % 5 == 0) futs.push_back(svc.submit(Request(map_erase(i % 16))));
    if (checkpoint_midway && i == 20) {
      for (auto& f : futs) f.wait();
      EXPECT_TRUE(svc.checkpoint_now());
    }
  }
  for (auto& f : futs) EXPECT_EQ(f.wait(), service::SvcStatus::kOk);
  DurableRun out;
  out.clock = svc.wal()->clock().load();
  svc.stop();
  out.map_state = map.snapshot_unsafe();
  out.set_state = set.snapshot_unsafe();
  out.heap_state = heap.snapshot_unsafe();
  std::sort(out.heap_state.begin(), out.heap_state.end());
  out.slpq_state = slpq.snapshot_unsafe();
  return out;
}

void expect_recovered_equal(const DurableRun& ran, const Targets& t) {
  EXPECT_EQ(service::Targets(t).map(0)->snapshot_unsafe(), ran.map_state);
  EXPECT_EQ(service::Targets(t).set(1)->snapshot_unsafe(), ran.set_state);
  auto heap = service::Targets(t).heap_pq(2)->snapshot_unsafe();
  std::sort(heap.begin(), heap.end());
  EXPECT_EQ(heap, ran.heap_state);
  EXPECT_EQ(service::Targets(t).sl_pq(3)->snapshot_unsafe(), ran.slpq_state);
}

TEST_F(WalTest, RecoverReplaysLogIntoEmptyStructures) {
  metrics::MetricsSink sink;
  const DurableRun ran = run_durable_workload(dir_, WalFsync::kGroup, &sink);
  EXPECT_GT(sink.snapshot().counter(CounterId::kWalAppends), 0u);

  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  Targets t = Targets::standard(&map, &set, &heap, &slpq);
  const RecoveryReport r = service::recover_into(dir_, t);
  ASSERT_EQ(r.status, RecoveryStatus::kOk) << r.detail;
  EXPECT_EQ(r.last_seq, ran.clock);
  EXPECT_GT(r.records_replayed, 0u);
  EXPECT_EQ(r.checkpoint_seq, 0u);  // no checkpoint ran
  expect_recovered_equal(ran, t);
}

TEST_F(WalTest, RecoverTruncatesTornTailAndContinues) {
  metrics::MetricsSink sink;
  const DurableRun ran = run_durable_workload(dir_, WalFsync::kAlways, &sink);
  // Tear the end of shard 0's segment: append half a record.
  std::string torn;
  const std::vector<WalOp> ops = sample_ops();
  service::encode_record(9999, ops.data(), ops.size(), &torn);
  torn.resize(torn.size() / 2);
  const std::string seg0 = service::wal_segment_name(0, 0);
  write_file(seg0, read_file(seg0) + torn);

  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  Targets t = Targets::standard(&map, &set, &heap, &slpq);
  const RecoveryReport r = service::recover_into(dir_, t);
  ASSERT_EQ(r.status, RecoveryStatus::kOk) << r.detail;
  EXPECT_TRUE(r.truncated_tail);
  expect_recovered_equal(ran, t);
  // The torn bytes are physically gone: a second recovery is clean.
  tx::OtbListMap map2;
  tx::OtbListSet set2;
  tx::OtbHeapPQ heap2;
  tx::OtbSkipListPQ slpq2;
  Targets t2 = Targets::standard(&map2, &set2, &heap2, &slpq2);
  const RecoveryReport r2 = service::recover_into(dir_, t2);
  ASSERT_EQ(r2.status, RecoveryStatus::kOk) << r2.detail;
  EXPECT_FALSE(r2.truncated_tail);
}

TEST_F(WalTest, RecoverFailsClosedOnMidLogBitFlip) {
  metrics::MetricsSink sink;
  run_durable_workload(dir_, WalFsync::kAlways, &sink);
  const std::string seg0 = service::wal_segment_name(0, 0);
  std::string bytes = read_file(seg0);
  ASSERT_GT(bytes.size(), 64u);
  bytes[20] ^= 0x01;  // damage the first record; later records stay valid
  write_file(seg0, bytes);

  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  Targets t = Targets::standard(&map, &set, &heap, &slpq);
  const RecoveryReport r = service::recover_into(dir_, t);
  EXPECT_EQ(r.status, RecoveryStatus::kCorruptLog);
}

TEST_F(WalTest, RecoverFailsClosedOnDuplicateStamp) {
  std::string buf;
  const std::vector<WalOp> op{WalOp{0, Verb::kPut, 1, 1}};
  service::encode_record(1, op.data(), 1, &buf);
  write_file(service::wal_segment_name(0, 0), buf);
  write_file(service::wal_segment_name(1, 0), buf);  // same stamp, other shard

  tx::OtbListMap map;
  Targets t = Targets::standard(&map);
  const RecoveryReport r = service::recover_into(dir_, t);
  EXPECT_EQ(r.status, RecoveryStatus::kCorruptLog);
}

TEST_F(WalTest, CheckpointCompactsAndRecoverUsesIt) {
  metrics::MetricsSink sink;
  const DurableRun ran =
      run_durable_workload(dir_, WalFsync::kGroup, &sink,
                           /*checkpoint_midway=*/true);
  EXPECT_TRUE(exists("last_checkpoint"));
  // Compaction: pre-rotation segments are gone.
  EXPECT_FALSE(exists(service::wal_segment_name(0, 0)));
  EXPECT_FALSE(exists(service::wal_segment_name(1, 0)));

  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  Targets t = Targets::standard(&map, &set, &heap, &slpq);
  const RecoveryReport r = service::recover_into(dir_, t);
  ASSERT_EQ(r.status, RecoveryStatus::kOk) << r.detail;
  EXPECT_GT(r.checkpoint_seq, 0u);
  EXPECT_EQ(r.last_seq, ran.clock);
  expect_recovered_equal(ran, t);
}

TEST_F(WalTest, CorruptManifestFailsClosed) {
  metrics::MetricsSink sink;
  run_durable_workload(dir_, WalFsync::kGroup, &sink,
                       /*checkpoint_midway=*/true);
  std::string manifest = read_file("last_checkpoint");
  manifest[manifest.size() / 2] ^= 0x10;
  write_file("last_checkpoint", manifest);

  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  Targets t = Targets::standard(&map, &set, &heap, &slpq);
  const RecoveryReport r = service::recover_into(dir_, t);
  EXPECT_EQ(r.status, RecoveryStatus::kCorruptCheckpoint);
}

TEST_F(WalTest, CheckpointSlotMismatchFailsClosed) {
  metrics::MetricsSink sink;
  run_durable_workload(dir_, WalFsync::kGroup, &sink,
                       /*checkpoint_midway=*/true);
  // Recover into a registry whose slot 1 is a map, not a set.
  tx::OtbListMap map, not_a_set;
  Targets t;
  t.add_map(&map);
  t.add_map(&not_a_set);
  const RecoveryReport r = service::recover_into(dir_, t);
  EXPECT_EQ(r.status, RecoveryStatus::kSlotMismatch);
}

/// Deterministic phase-1 script: one request at a time, so two services
/// given this history always reach the same state (the racy mixed workload
/// in run_durable_workload linearizes differently run to run).
void run_phase1(Service& svc) {
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(svc.submit(Request(map_put(i % 16, i * 10))).wait(),
              service::SvcStatus::kOk);
    svc.submit(Request(set_add(i % 8))).wait();
    svc.submit(Request(heap_push(100 - i))).wait();
    svc.submit(Request(sl_push(200 + i))).wait();
    if (i % 5 == 0) svc.submit(Request(map_erase(i % 16))).wait();
  }
}

TEST_F(WalTest, RecoverThenServeEquivalence) {
  // Phase 1 on service A (durable), phase 2 on recovered service B; the
  // final state must equal running both phases on one never-crashed
  // service C.
  metrics::MetricsSink sink;
  {
    tx::OtbListMap map_a;
    tx::OtbListSet set_a;
    tx::OtbHeapPQ heap_a;
    tx::OtbSkipListPQ slpq_a;
    ServiceConfig cfg_a;
    cfg_a.workers = 2;
    cfg_a.batch_max = 4;
    cfg_a.metrics = &sink;
    cfg_a.wal_dir = dir_;
    Service a(Targets::standard(&map_a, &set_a, &heap_a, &slpq_a), cfg_a);
    a.start();
    run_phase1(a);
    a.stop();
  }

  tx::OtbListMap map_b;
  tx::OtbListSet set_b;
  tx::OtbHeapPQ heap_b;
  tx::OtbSkipListPQ slpq_b;
  ServiceConfig cfg_b;
  cfg_b.workers = 1;
  cfg_b.metrics = &sink;
  cfg_b.wal_dir = dir_;
  Service b(Targets::standard(&map_b, &set_b, &heap_b, &slpq_b), cfg_b);
  ASSERT_TRUE(b.recover().ok());
  b.start();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b.submit(Request(map_put(1000 + i, i))).wait(),
              service::SvcStatus::kOk);
    EXPECT_EQ(b.submit(Request(map_erase(i))).wait(), service::SvcStatus::kOk);
  }
  b.stop();

  // Reference: both phases against one in-memory service.
  tx::OtbListMap map_c;
  tx::OtbListSet set_c;
  tx::OtbHeapPQ heap_c;
  tx::OtbSkipListPQ slpq_c;
  ServiceConfig cfg_c;
  cfg_c.workers = 2;
  cfg_c.batch_max = 4;
  cfg_c.metrics = &sink;
  Service c(Targets::standard(&map_c, &set_c, &heap_c, &slpq_c), cfg_c);
  c.start();
  run_phase1(c);
  for (int i = 0; i < 10; ++i) {
    c.submit(Request(map_put(1000 + i, i))).wait();
    c.submit(Request(map_erase(i))).wait();
  }
  c.stop();

  EXPECT_EQ(map_b.snapshot_unsafe(), map_c.snapshot_unsafe());
  EXPECT_EQ(set_b.snapshot_unsafe(), set_c.snapshot_unsafe());
  auto hb = heap_b.snapshot_unsafe();
  auto hc = heap_c.snapshot_unsafe();
  std::sort(hb.begin(), hb.end());
  std::sort(hc.begin(), hc.end());
  EXPECT_EQ(hb, hc);
  EXPECT_EQ(slpq_b.snapshot_unsafe(), slpq_c.snapshot_unsafe());
}

TEST_F(WalTest, CommitClockContinuesAfterRecovery) {
  metrics::MetricsSink sink;
  const DurableRun ran = run_durable_workload(dir_, WalFsync::kGroup, &sink);

  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::OtbHeapPQ heap;
  tx::OtbSkipListPQ slpq;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.metrics = &sink;
  cfg.wal_dir = dir_;
  Service svc(Targets::standard(&map, &set, &heap, &slpq), cfg);
  ASSERT_TRUE(svc.recover().ok());
  EXPECT_EQ(svc.wal()->clock().load(), ran.clock);
  svc.start();
  EXPECT_EQ(svc.submit(Request(map_put(1, 2))).wait(), service::SvcStatus::kOk);
  EXPECT_GT(svc.wal()->clock().load(), ran.clock);
  svc.stop();
  // And the continued log still recovers in one piece.
  tx::OtbListMap map2;
  tx::OtbListSet set2;
  tx::OtbHeapPQ heap2;
  tx::OtbSkipListPQ slpq2;
  Targets t2 = Targets::standard(&map2, &set2, &heap2, &slpq2);
  ASSERT_TRUE(service::recover_into(dir_, t2).ok());
  std::int64_t v = 0;
  tx::atomically([&](tx::Transaction& t) {
    EXPECT_TRUE(map2.get(t, 1, &v));
  });
  EXPECT_EQ(v, 2);
}

TEST_F(WalTest, SeedBaselineReplaysOnTop) {
  // A run whose structures were pre-seeded before start(): the seed is not
  // in the log, so recovery must re-seed through the baseline closure.
  {
    tx::OtbListMap map;
    map.put_seq(500, 5000);
    map.put_seq(501, 5001);
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.wal_dir = dir_;
    Service svc(Targets::standard(&map), cfg);
    svc.start();
    EXPECT_EQ(svc.submit(Request(map_erase(500))).wait(),
              service::SvcStatus::kOk);
    EXPECT_EQ(svc.submit(Request(map_put(502, 5002))).wait(),
              service::SvcStatus::kOk);
    svc.stop();
  }
  tx::OtbListMap map;
  Targets t = Targets::standard(&map);
  const RecoveryReport r = service::recover_into(dir_, t, [&map] {
    map.put_seq(500, 5000);
    map.put_seq(501, 5001);
  });
  ASSERT_EQ(r.status, RecoveryStatus::kOk) << r.detail;
  using Pairs = std::vector<std::pair<std::int64_t, std::int64_t>>;
  EXPECT_EQ(map.snapshot_unsafe(), (Pairs{{501, 5001}, {502, 5002}}));
}

TEST_F(WalTest, FsyncModeParsingAndNames) {
  WalFsync m = WalFsync::kGroup;
  EXPECT_TRUE(service::parse_wal_fsync("always", &m));
  EXPECT_EQ(m, WalFsync::kAlways);
  EXPECT_TRUE(service::parse_wal_fsync("off", &m));
  EXPECT_EQ(m, WalFsync::kOff);
  EXPECT_TRUE(service::parse_wal_fsync("group", &m));
  EXPECT_EQ(m, WalFsync::kGroup);
  EXPECT_FALSE(service::parse_wal_fsync("sometimes", &m));
  EXPECT_EQ(service::to_string(WalFsync::kGroup), "group");
  unsigned shard = 0;
  std::uint64_t seg = 0;
  EXPECT_TRUE(service::parse_wal_segment_name(
      service::wal_segment_name(3, 17), &shard, &seg));
  EXPECT_EQ(shard, 3u);
  EXPECT_EQ(seg, 17u);
  EXPECT_FALSE(service::parse_wal_segment_name("last_checkpoint", &shard, &seg));
  EXPECT_FALSE(service::parse_wal_segment_name("ckpt-1.snap", &shard, &seg));
}

TEST_F(WalTest, DirectoryLockExcludesConcurrentOwners) {
  // The <dir>/lock flock makes the directory single-owner: a second
  // service, or a recovery run racing a live writer, is refused loudly
  // instead of reading segments mid-append and mis-diagnosing the moving
  // state as corruption.  flock conflicts across open-file descriptions,
  // so the single-process test exercises the same kernel check a second
  // process would hit.
  Wal wal(WalOptions{dir_, WalFsync::kOff, 1, nullptr});
  std::string err;
  ASSERT_TRUE(wal.open_for_append(&err)) << err;

  Wal intruder(WalOptions{dir_, WalFsync::kOff, 1, nullptr});
  EXPECT_FALSE(intruder.open_for_append(&err));
  EXPECT_NE(err.find("locked"), std::string::npos) << err;

  tx::OtbListMap map;
  Targets targets = Targets::standard(&map);
  RecoveryReport r = service::recover_into(dir_, targets);
  EXPECT_EQ(r.status, RecoveryStatus::kIoError);
  EXPECT_NE(r.detail.find("locked"), std::string::npos) << r.detail;

  // Releasing the lock (what stop() and process death both do) clears the
  // way: the same directory now recovers (empty log => fresh start).
  wal.close_all();
  EXPECT_TRUE(service::recover_into(dir_, targets).ok());
}

TEST_F(WalTest, RecoveryStatusExitCodesAreDistinct) {
  using service::recovery_exit_code;
  EXPECT_EQ(recovery_exit_code(RecoveryStatus::kOk), 0);
  EXPECT_EQ(recovery_exit_code(RecoveryStatus::kNoState), 0);
  std::vector<int> codes = {
      recovery_exit_code(RecoveryStatus::kCorruptLog),
      recovery_exit_code(RecoveryStatus::kCorruptCheckpoint),
      recovery_exit_code(RecoveryStatus::kSlotMismatch),
      recovery_exit_code(RecoveryStatus::kIoError)};
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::unique(codes.begin(), codes.end()), codes.end());
  for (int c : codes) EXPECT_GT(c, 2);  // clear of usage/load-error exits
}

}  // namespace
}  // namespace otb
