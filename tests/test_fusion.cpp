// Tier-1 tests of the contention-manager subsystem (ISSUE 10): the
// lock-free union-find arbitration core (src/otb/contention.h) including
// its bounded-walk robustness against recycled-node cycles, the TxHost
// descriptor-pool handoff that lets a donated batch re-attach its
// structures without allocating, the FusionPlane donation protocol
// (offer / adopt / cap fallback / withdrawal), and the service-level
// contract: fused requests complete with sound per-constituent verdicts,
// the ledger identities hold, and OTB_FUSION=off restores the pre-fusion
// worker loop (zero fusion counters, identical results).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/tx_abort.h"
#include "metrics/sink.h"
#include "otb/contention.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/runtime.h"
#include "service/fusion.h"
#include "service/service.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::FusionPlane;
using service::OfferOutcome;
using service::Pending;
using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using service::Targets;

using service::map_get;
using service::map_put;
using service::set_add;
using service::sl_pop_min;
using service::sl_push;

std::uint64_t counter(const metrics::MetricsSink& sink, CounterId id) {
  return sink.snapshot().counters[static_cast<std::size_t>(id)];
}

/// RAII restore of the fusion knobs (tests flip both).
struct FusionKnobGuard {
  bool on = service::fusion_enabled();
  std::size_t cap = service::fusion_max_set();
  ~FusionKnobGuard() {
    service::set_fusion(on);
    service::set_fusion_max_set(cap);
  }
};

// ---- union-find -------------------------------------------------------------

TEST(UnionFind, SequentialBasicsAndTransitivity) {
  tx::UfNode n[4];
  for (auto& node : n) EXPECT_EQ(tx::uf_find(&node), &node);
  EXPECT_FALSE(tx::uf_same_set(&n[0], &n[1]));

  tx::UfNode* r01 = tx::uf_unite(&n[0], &n[1]);
  EXPECT_TRUE(r01 == &n[0] || r01 == &n[1]);
  EXPECT_TRUE(tx::uf_same_set(&n[0], &n[1]));
  // Re-uniting an already-merged pair is idempotent.
  EXPECT_EQ(tx::uf_unite(&n[1], &n[0]), tx::uf_find(&n[0]));

  tx::uf_unite(&n[2], &n[3]);
  tx::uf_unite(&n[0], &n[3]);
  tx::UfNode* root = tx::uf_find(&n[0]);
  for (auto& node : n) EXPECT_EQ(tx::uf_find(&node), root);
  EXPECT_TRUE(tx::uf_same_set(&n[1], &n[2]));
}

TEST(UnionFind, RankGrowsOnTieAndWinnerIsStable) {
  tx::UfNode a, b;
  tx::UfNode* winner = tx::uf_unite(&a, &b);
  // Equal ranks tie-break on address; the winner's rank bumps to 1, so a
  // fresh rank-0 node always loses to the merged set's root.
  EXPECT_EQ(winner->rank.load(), 1u);
  tx::UfNode c;
  EXPECT_EQ(tx::uf_unite(&c, &a), winner);
  EXPECT_EQ(tx::uf_find(&c), winner);
}

TEST(UnionFind, ConcurrentUnionsConvergeToOneRoot) {
  constexpr int kNodes = 64;
  constexpr int kThreads = 8;
  std::vector<tx::UfNode> nodes(kNodes);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&nodes, t] {
      // Each thread stitches its stripe to its neighbours and to node 0;
      // heavy overlap forces CAS races in unite and path halving in find.
      for (int i = t; i < kNodes; i += kThreads) {
        tx::uf_unite(&nodes[i], &nodes[0]);
        tx::uf_unite(&nodes[i], &nodes[(i + 1) % kNodes]);
        (void)tx::uf_find(&nodes[i]);
      }
    });
  }
  for (auto& th : threads) th.join();
  tx::UfNode* root = tx::uf_find(&nodes[0]);
  for (auto& n : nodes) {
    EXPECT_EQ(tx::uf_find(&n), root);
    EXPECT_TRUE(tx::uf_same_set(&n, root));
  }
}

TEST(UnionFind, BoundedWalkSurvivesManufacturedCycle) {
  // A recycled node can transiently stitch a cycle (contention.h contract).
  // Manufacture the worst case directly: a <-> b.  Every entry point must
  // return (advisory answers), never hang.
  tx::UfNode a, b, c;
  a.parent.store(&b, std::memory_order_relaxed);
  b.parent.store(&a, std::memory_order_relaxed);
  tx::UfNode* fa = tx::uf_find(&a);
  EXPECT_TRUE(fa == &a || fa == &b);
  (void)tx::uf_unite(&a, &c);
  (void)tx::uf_same_set(&a, &c);
  // Break the cycle the way the fusion plane does: recycle for a new
  // episode.  The forest is sane again afterwards.
  a.reset();
  b.reset();
  EXPECT_EQ(tx::uf_find(&a), &a);
  EXPECT_EQ(tx::uf_find(&b), &b);
}

// ---- descriptor-pool handoff ------------------------------------------------

TEST(DescriptorPoolHandoff, TakeShipsParkedDescriptors) {
  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::Transaction donor;
  donor.begin_attempt();
  map.put(donor, 1, 10);
  set.add(donor, 5);
  donor.abandon();  // recycles both attached descriptors into the pool
  EXPECT_EQ(donor.descriptor_pool_size(), 2u);
  tx::DescriptorPool shipped = donor.take_descriptor_pool();
  EXPECT_EQ(shipped.size(), 2u);
  EXPECT_EQ(donor.descriptor_pool_size(), 0u);
}

TEST(DescriptorPoolHandoff, AdoptDedupsPerStructure) {
  tx::OtbListMap map;
  tx::OtbListSet set;
  tx::DescriptorPool shipped;
  {
    tx::Transaction donor;
    donor.begin_attempt();
    map.put(donor, 1, 10);
    set.add(donor, 5);
    donor.abandon();
    shipped = donor.take_descriptor_pool();
  }
  ASSERT_EQ(shipped.size(), 2u);

  // The adopter already holds a LIVE descriptor for the map (attached, not
  // pooled): the donated map descriptor is a duplicate and must be dropped,
  // while the set descriptor is adopted.
  tx::Transaction adopter;
  adopter.begin_attempt();
  map.put(adopter, 2, 20);
  adopter.adopt_descriptor_pool(std::move(shipped));
  EXPECT_EQ(adopter.descriptor_pool_size(), 1u);
  adopter.abandon();
  // Post-abandon the adopter's own map descriptor joins the pool too.
  EXPECT_EQ(adopter.descriptor_pool_size(), 2u);
}

// ---- the fusion plane -------------------------------------------------------

TEST(FusionPlaneTest, OfferAdoptTransfersBatchAndPool) {
  metrics::MetricsSink sink;
  FusionPlane plane(2, &sink);
  plane.begin_episode(0);
  plane.begin_episode(1);

  Pending a, b, c;
  std::vector<Pending*> donor_batch{&a, &b};
  std::vector<Pending*> adopter_batch{&c};
  tx::DescriptorPool donor_pool, adopter_pool;
  tx::OtbListMap map;
  {
    tx::Transaction t;
    t.begin_attempt();
    map.put(t, 1, 1);
    t.abandon();
    donor_pool = t.take_descriptor_pool();
  }
  ASSERT_EQ(donor_pool.size(), 1u);

  OfferOutcome out = OfferOutcome::kWithdrawn;
  std::atomic<bool> donor_done{false};
  std::thread donor([&] {
    out = plane.offer_and_wait(0, donor_batch, &donor_pool,
                               /*spin_limit=*/~0u);
    donor_done.store(true);
  });
  std::size_t adopted = 0;
  while (adopted == 0 && !donor_done.load())
    adopted = plane.try_adopt(1, adopter_batch, &adopter_pool);
  donor.join();

  EXPECT_EQ(out, OfferOutcome::kAdopted);
  EXPECT_EQ(adopted, 2u);
  // Donor surrendered everything; adopter holds the merged commit unit.
  EXPECT_TRUE(donor_batch.empty());
  EXPECT_TRUE(donor_pool.empty());
  ASSERT_EQ(adopter_batch.size(), 3u);
  EXPECT_EQ(adopter_batch[0], &c);
  EXPECT_EQ(adopter_batch[1], &a);
  EXPECT_EQ(adopter_batch[2], &b);
  EXPECT_EQ(adopter_pool.size(), 1u);

  const metrics::SinkSnapshot s = sink.snapshot();
  EXPECT_EQ(s.counter(CounterId::kFusionUnions), 1u);
  EXPECT_EQ(s.counter(CounterId::kSvcFused), 2u);
  EXPECT_EQ(s.counter(CounterId::kFusionFallbacks), 0u);
  EXPECT_EQ(s.fused_set_size.count, 1u);
  EXPECT_EQ(s.fused_set_size.total, 3u);  // adopter's post-merge batch size
}

TEST(FusionPlaneTest, DonorWithdrawsWhenNobodyAdopts) {
  metrics::MetricsSink sink;
  FusionPlane plane(2, &sink);
  plane.begin_episode(0);
  Pending a;
  std::vector<Pending*> batch{&a};
  tx::DescriptorPool pool;
  OfferOutcome out = plane.offer_and_wait(0, batch, &pool, /*spin_limit=*/64);
  EXPECT_EQ(out, OfferOutcome::kWithdrawn);
  // Withdrawal keeps ownership: the batch is intact for split-retry.
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], &a);
  EXPECT_EQ(counter(sink, CounterId::kFusionFallbacks), 1u);
  EXPECT_EQ(counter(sink, CounterId::kFusionUnions), 0u);
}

TEST(FusionPlaneTest, CapExceededLeavesOfferUpAndFallsBack) {
  FusionKnobGuard restore;
  service::set_fusion_max_set(2);
  metrics::MetricsSink sink;
  FusionPlane plane(2, &sink);
  plane.begin_episode(0);
  plane.begin_episode(1);

  Pending a, b, c;
  std::vector<Pending*> donor_batch{&a, &b};
  std::vector<Pending*> adopter_batch{&c};
  tx::DescriptorPool donor_pool, adopter_pool;

  OfferOutcome out = OfferOutcome::kAdopted;
  std::atomic<bool> donor_done{false};
  std::thread donor([&] {
    out = plane.offer_and_wait(0, donor_batch, &donor_pool,
                               /*spin_limit=*/1u << 14);
    donor_done.store(true);
  });
  // 1 + 2 > cap(2): every adoption attempt must refuse and republish the
  // offer, and the donor must eventually withdraw.
  std::size_t adopted = 0;
  while (!donor_done.load()) adopted += plane.try_adopt(1, adopter_batch,
                                                        &adopter_pool);
  donor.join();

  EXPECT_EQ(adopted, 0u);
  EXPECT_EQ(out, OfferOutcome::kWithdrawn);
  ASSERT_EQ(donor_batch.size(), 2u);
  EXPECT_EQ(adopter_batch.size(), 1u);
  EXPECT_EQ(counter(sink, CounterId::kFusionUnions), 0u);
  EXPECT_EQ(counter(sink, CounterId::kFusionFallbacks), 1u);
}

// ---- service-level contract -------------------------------------------------

/// Everything-registered fixture (mirrors test_service.cpp).
class FusionServiceTest : public ::testing::Test {
 protected:
  Targets targets() {
    return Targets::standard(&map_, &set_, &heap_, &slpq_);
  }

  ServiceConfig config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.batch_max = 8;
    cfg.queue_capacity = 256;
    cfg.metrics = &sink_;
    return cfg;
  }

  tx::OtbListMap map_;
  tx::OtbListSet set_;
  tx::OtbHeapPQ heap_;
  tx::OtbSkipListPQ slpq_;
  metrics::MetricsSink sink_;
};

TEST_F(FusionServiceTest, FusedRequestsCompleteAndLedgerHolds) {
  FusionKnobGuard restore;
  service::set_fusion(true);
  ServiceConfig cfg = config();
  cfg.batch_attempts = 2;
  // Fail every multi-request attempt: batches exhaust their budgets, so
  // both workers hit the fusion path (adopt, donate, or arbitrate) before
  // anything splits down to committable singletons.
  cfg.batch_fault_hook = [](std::size_t batch_size) {
    if (batch_size > 1) throw TxAbort{};
  };
  Service svc(targets(), cfg);
  std::vector<ResponseFuture> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(svc.submit(map_put(i, i * 10)));
  svc.start();
  for (auto& f : futs) {
    ASSERT_EQ(f.wait(), SvcStatus::kOk);
    EXPECT_TRUE(f.ok());
  }
  svc.stop();

  const metrics::SinkSnapshot s = sink_.snapshot();
  // Every budget exhaustion either fused (union counted by the adopter) or
  // fell back (withdrawal counted by the donor) before splitting.
  EXPECT_GT(s.counter(CounterId::kSvcBatchSplits), 0u);
  EXPECT_GT(s.counter(CounterId::kFusionUnions) +
                s.counter(CounterId::kFusionFallbacks),
            0u);
  // Ledger identities (bench/metrics_check.cpp enforces the same).
  EXPECT_EQ(s.batch_size.total + s.counter(CounterId::kSvcExpired),
            s.counter(CounterId::kSvcEnqueued));
  EXPECT_EQ(s.counter(CounterId::kFusionUnions), s.fused_set_size.count);
  EXPECT_GE(s.counter(CounterId::kSvcFused),
            s.counter(CounterId::kFusionUnions));
  EXPECT_LE(s.counter(CounterId::kSvcSplitRetries),
            s.counter(CounterId::kSvcBatchSplits));

  // Every write landed.
  metrics::MetricsSink probe;
  ServiceConfig cfg2 = config();
  cfg2.metrics = &probe;
  Service svc2(targets(), cfg2);
  svc2.start();
  for (int i = 0; i < 32; ++i) {
    ResponseFuture g = svc2.submit(map_get(i));
    ASSERT_EQ(g.wait(), SvcStatus::kOk);
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.value(), i * 10);
  }
  svc2.stop();
}

TEST_F(FusionServiceTest, GuardVerdictsStaySoundUnderFusion) {
  FusionKnobGuard restore;
  service::set_fusion(true);
  ServiceConfig cfg = config();
  cfg.batch_attempts = 2;
  cfg.batch_fault_hook = [](std::size_t batch_size) {
    if (batch_size > 1) throw TxAbort{};
  };
  Service svc(targets(), cfg);
  svc.start();
  // One PQ element, committed first (the pops land on a different shard, so
  // ordering must be established before they are submitted).  Then two
  // required pops racing for it plus filler to force multi-request batches
  // through the fusion path.  Whatever gets fused with what, exactly one
  // pop may win and both verdicts must be sound (the solo guard re-run
  // never participates in fusion).
  ResponseFuture push = svc.submit(sl_push(1));
  ASSERT_EQ(push.wait(), SvcStatus::kOk);
  ASSERT_TRUE(push.ok());
  std::vector<ResponseFuture> futs;
  futs.push_back(svc.submit(Request{sl_pop_min().require(), set_add(100)}));
  futs.push_back(svc.submit(Request{sl_pop_min().require(), set_add(200)}));
  for (int i = 0; i < 12; ++i) futs.push_back(svc.submit(map_put(i, i)));
  for (auto& f : futs) ASSERT_EQ(f.wait(), SvcStatus::kOk);
  const int winners = (futs[0].ok() ? 1 : 0) + (futs[1].ok() ? 1 : 0);
  EXPECT_EQ(winners, 1);
  for (std::size_t i = 2; i < futs.size(); ++i) EXPECT_TRUE(futs[i].ok());
  svc.stop();
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_EQ(s.batch_size.total + s.counter(CounterId::kSvcExpired),
            s.counter(CounterId::kSvcEnqueued));
  EXPECT_EQ(s.counter(CounterId::kFusionUnions), s.fused_set_size.count);
}

TEST_F(FusionServiceTest, FusionOffRestoresSplitOnlyLoopWithZeroCounters) {
  FusionKnobGuard restore;
  service::set_fusion(false);
  ServiceConfig cfg = config();
  cfg.batch_attempts = 2;
  cfg.batch_fault_hook = [](std::size_t batch_size) {
    if (batch_size > 1) throw TxAbort{};
  };
  Service svc(targets(), cfg);
  std::vector<ResponseFuture> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(svc.submit(map_put(i, i)));
  svc.start();
  for (auto& f : futs) {
    ASSERT_EQ(f.wait(), SvcStatus::kOk);
    EXPECT_TRUE(f.ok());
  }
  svc.stop();
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_GT(s.counter(CounterId::kSvcBatchSplits), 0u);
  // The subsystem is inert: no unions, no fused requests, no fallbacks, no
  // series samples — and split-retries are now taxonomised separately.
  EXPECT_EQ(s.counter(CounterId::kSvcFused), 0u);
  EXPECT_EQ(s.counter(CounterId::kFusionUnions), 0u);
  EXPECT_EQ(s.counter(CounterId::kFusionFallbacks), 0u);
  EXPECT_EQ(s.fused_set_size.count, 0u);
  EXPECT_GT(s.counter(CounterId::kSvcSplitRetries), 0u);
  EXPECT_LE(s.counter(CounterId::kSvcSplitRetries),
            s.counter(CounterId::kSvcBatchSplits));
}

TEST_F(FusionServiceTest, OnAndOffProduceIdenticalSequentialResults) {
  // A deterministic sequential workload must be byte-for-byte identical
  // with fusion on and off (a lone in-flight request never fuses).
  auto run = [](bool fusion_on) {
    FusionKnobGuard restore;
    service::set_fusion(fusion_on);
    tx::OtbListMap map;
    tx::OtbListSet set;
    tx::OtbHeapPQ heap;
    tx::OtbSkipListPQ slpq;
    metrics::MetricsSink sink;
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.batch_max = 8;
    cfg.metrics = &sink;
    Service svc(Targets::standard(&map, &set, &heap, &slpq), cfg);
    svc.start();
    std::vector<std::pair<bool, std::int64_t>> results;
    for (int i = 0; i < 24; ++i) {
      ResponseFuture f = svc.submit(map_put(i % 8, i));
      EXPECT_EQ(f.wait(), SvcStatus::kOk);
      results.emplace_back(f.ok(), f.value());
      ResponseFuture g = svc.submit(map_get(i % 8));
      EXPECT_EQ(g.wait(), SvcStatus::kOk);
      results.emplace_back(g.ok(), g.value());
    }
    svc.stop();
    EXPECT_EQ(counter(sink, CounterId::kFusionUnions), 0u);
    return results;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace otb
