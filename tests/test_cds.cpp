// Tests for the concurrent (non-transactional) substrate: lazy linked-list
// set, lazy skip-list set, and the skip-list priority queue.  Includes
// multi-threaded stress checks of the structural invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cds/lazy_list_set.h"
#include "cds/lazy_skiplist_set.h"
#include "cds/skiplist_pq.h"
#include "common/rng.h"

namespace otb {
namespace {

// ---- sequential semantics, parameterized over both set types --------------

template <typename SetT>
class CdsSetTest : public ::testing::Test {};

using SetTypes = ::testing::Types<cds::LazyListSet, cds::LazySkipListSet>;
TYPED_TEST_SUITE(CdsSetTest, SetTypes);

TYPED_TEST(CdsSetTest, AddRemoveContainsBasics) {
  TypeParam set;
  EXPECT_FALSE(set.contains(10));
  EXPECT_TRUE(set.add(10));
  EXPECT_FALSE(set.add(10));  // no duplicates
  EXPECT_TRUE(set.contains(10));
  EXPECT_TRUE(set.remove(10));
  EXPECT_FALSE(set.remove(10));
  EXPECT_FALSE(set.contains(10));
}

TYPED_TEST(CdsSetTest, MatchesStdSetOracle) {
  TypeParam set;
  std::set<std::int64_t> oracle;
  Xorshift rng{42};
  for (int i = 0; i < 4000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next_bounded(200));
    switch (rng.next_bounded(3)) {
      case 0:
        EXPECT_EQ(set.add(key), oracle.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(set.remove(key), oracle.erase(key) == 1);
        break;
      default:
        EXPECT_EQ(set.contains(key), oracle.count(key) == 1);
        break;
    }
  }
  EXPECT_EQ(set.size_unsafe(), oracle.size());
}

TYPED_TEST(CdsSetTest, ConcurrentDisjointInsertsAllLand) {
  TypeParam set;
  constexpr int kThreads = 4, kEach = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, t] {
      for (int i = 0; i < kEach; ++i) {
        EXPECT_TRUE(set.add(t * kEach + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), std::size_t(kThreads) * kEach);
  for (int k = 0; k < kThreads * kEach; ++k) EXPECT_TRUE(set.contains(k));
}

TYPED_TEST(CdsSetTest, ConcurrentMixedWorkloadPreservesCount) {
  // Each thread alternates add(k)/remove(k) on its own key block an even
  // number of times; the set must come back to its seeded state.
  TypeParam set;
  constexpr int kThreads = 4, kKeys = 64, kIters = 500;
  for (int k = 0; k < kThreads * kKeys; ++k) ASSERT_TRUE(set.add(k));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, t] {
      Xorshift rng{std::uint64_t(t) + 1};
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = t * kKeys + std::int64_t(rng.next_bounded(kKeys));
        if (set.remove(key)) {
          EXPECT_TRUE(set.add(key));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), std::size_t(kThreads) * kKeys);
}

TYPED_TEST(CdsSetTest, ContendedSameKeyAddRemoveStaysConsistent) {
  TypeParam set;
  constexpr int kThreads = 4, kIters = 2000;
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Xorshift rng{std::uint64_t(&set) ^ std::uint64_t(t * 977 + 1)};
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = std::int64_t(rng.next_bounded(8));
        if (rng.chance_pct(50)) {
          if (set.add(key)) ++local;
        } else {
          if (set.remove(key)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size_unsafe(), std::size_t(net.load()));
}

// ---- skip-list priority queue ---------------------------------------------

TEST(SkipListPQTest, PopsInOrder) {
  cds::SkipListPQ pq;
  for (std::int64_t k : {5, 1, 9, 3, 7}) EXPECT_TRUE(pq.add(k));
  std::int64_t v = 0;
  for (std::int64_t expected : {1, 3, 5, 7, 9}) {
    ASSERT_TRUE(pq.min(&v));
    EXPECT_EQ(v, expected);
    ASSERT_TRUE(pq.remove_min(&v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_FALSE(pq.remove_min(&v));
  EXPECT_FALSE(pq.min(&v));
}

TEST(SkipListPQTest, ConcurrentProducersConsumersDrainExactly) {
  cds::SkipListPQ pq;
  constexpr int kProducers = 2, kConsumers = 2, kEach = 2000;
  std::atomic<int> consumed{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> threads;
  std::array<std::atomic<int>, kProducers * kEach> seen{};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&pq, p] {
      for (int i = 0; i < kEach; ++i) ASSERT_TRUE(pq.add(p * kEach + i));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::int64_t v = 0;
      for (;;) {
        if (pq.remove_min(&v)) {
          seen[static_cast<std::size_t>(v)].fetch_add(1);
          consumed.fetch_add(1);
        } else if (done_producing.load() && consumed.load() >= kProducers * kEach) {
          return;
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done_producing = true;
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  EXPECT_EQ(consumed.load(), kProducers * kEach);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);  // each key popped exactly once
}

}  // namespace
}  // namespace otb
