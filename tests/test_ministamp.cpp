// Mini-STAMP correctness: every deterministic app must produce the same
// checksum single-threaded and multi-threaded, across STM algorithms —
// i.e., the transactional execution is equivalent to the sequential one.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ministamp/ministamp.h"

namespace otb::ministamp {
namespace {

using stm::AlgoKind;

class MiniStampTest : public ::testing::TestWithParam<AlgoKind> {};

INSTANTIATE_TEST_SUITE_P(Algos, MiniStampTest,
                         ::testing::Values(AlgoKind::kNOrec, AlgoKind::kTL2,
                                           AlgoKind::kRTC, AlgoKind::kRInval),
                         [](const auto& info) {
                           return std::string(stm::to_string(info.param));
                         });

std::uint64_t reference_checksum(const App& app) {
  // Sequential oracle: one thread under the simplest algorithm.
  static std::map<std::string, std::uint64_t> cache;
  const auto it = cache.find(app.name());
  if (it != cache.end()) return it->second;
  stm::Runtime rt(AlgoKind::kNOrec);
  const AppResult r = app.run(rt, 1);
  cache[app.name()] = r.checksum;
  return r.checksum;
}

TEST_P(MiniStampTest, DeterministicAppsMatchSequentialOracle) {
  stm::Config cfg;
  cfg.max_threads = 8;
  for (const auto& app : make_all_apps()) {
    if (!app->deterministic()) continue;
    const std::uint64_t expected = reference_checksum(*app);
    stm::Runtime rt(GetParam(), cfg);
    const AppResult got = app->run(rt, 4);
    EXPECT_EQ(got.checksum, expected) << app->name();
    EXPECT_GT(got.stats.commits, 0u) << app->name();
  }
}

TEST_P(MiniStampTest, LabyrinthRoutesAccountedFor) {
  stm::Config cfg;
  cfg.max_threads = 8;
  LabyrinthApp app;
  stm::Runtime rt(GetParam(), cfg);
  const AppResult r = app.run(rt, 4);
  // checksum = routed * 1000 + failed; every route either lands or fails.
  const std::uint64_t routed = r.checksum / 1000;
  const std::uint64_t failed = r.checksum % 1000;
  EXPECT_EQ(routed + failed, 96u * stamp_scale());
  EXPECT_GT(routed, 0u);
}

TEST(MiniStamp, AllAppsReportStats) {
  stm::Runtime rt(AlgoKind::kNOrec);
  for (const auto& app : make_all_apps()) {
    const AppResult r = app->run(rt, 2);
    EXPECT_GT(r.stats.commits, 0u) << app->name();
    EXPECT_GT(r.exec_ms, 0.0) << app->name();
  }
}

}  // namespace
}  // namespace otb::ministamp
