// Tier-1 tests of the transactional service plane: request round-trips
// over every registered structure (including transactional range), the
// failure edges ISSUE'd for the subsystem — queue-full rejection, deadline
// expiry while queued, batch split-retry under injected aborts, and
// stop()-while-loaded drain with no lost completions — plus service
// metrics accounting and a loopback smoke of the binary TCP adapter.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/tx_abort.h"
#include "metrics/sink.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "service/net.h"
#include "service/service.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::Op;
using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::SvcStatus;
using service::Targets;

std::uint64_t counter(const metrics::MetricsSink& sink, CounterId id) {
  return sink.snapshot().counters[static_cast<std::size_t>(id)];
}

/// Everything-registered fixture with a test-local metrics sink.
class ServiceTest : public ::testing::Test {
 protected:
  Targets targets() {
    Targets t;
    t.map = &map_;
    t.set = &set_;
    t.heap_pq = &heap_;
    t.sl_pq = &slpq_;
    return t;
  }

  ServiceConfig config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.batch_max = 4;
    cfg.queue_capacity = 64;
    cfg.metrics = &sink_;
    return cfg;
  }

  tx::OtbListMap map_;
  tx::OtbListSet set_;
  tx::OtbHeapPQ heap_;
  tx::OtbSkipListPQ slpq_;
  metrics::MetricsSink sink_;
};

TEST_F(ServiceTest, RoundTripsEveryOp) {
  Service svc(targets(), config());
  svc.start();

  EXPECT_TRUE(svc.submit({Op::kMapPut, 10, 100}).wait() == SvcStatus::kOk);
  EXPECT_TRUE(svc.submit({Op::kMapPut, 20, 200}).wait() == SvcStatus::kOk);
  ResponseFuture get = svc.submit({Op::kMapGet, 10});
  EXPECT_EQ(get.wait(), SvcStatus::kOk);
  EXPECT_TRUE(get.ok());
  EXPECT_EQ(get.value(), 100);

  ResponseFuture erase = svc.submit({Op::kMapErase, 10});
  EXPECT_EQ(erase.wait(), SvcStatus::kOk);
  EXPECT_TRUE(erase.ok());
  ResponseFuture miss = svc.submit({Op::kMapGet, 10});
  EXPECT_EQ(miss.wait(), SvcStatus::kOk);
  EXPECT_FALSE(miss.ok());

  ResponseFuture add = svc.submit({Op::kSetAdd, 7});
  EXPECT_EQ(add.wait(), SvcStatus::kOk);
  EXPECT_TRUE(add.ok());
  ResponseFuture has = svc.submit({Op::kSetContains, 7});
  EXPECT_EQ(has.wait(), SvcStatus::kOk);
  EXPECT_TRUE(has.ok());
  ResponseFuture rm = svc.submit({Op::kSetRemove, 7});
  EXPECT_EQ(rm.wait(), SvcStatus::kOk);
  EXPECT_TRUE(rm.ok());

  EXPECT_EQ(svc.submit({Op::kHeapPush, 5}).wait(), SvcStatus::kOk);
  EXPECT_EQ(svc.submit({Op::kHeapPush, 3}).wait(), SvcStatus::kOk);
  ResponseFuture pop = svc.submit({Op::kHeapPopMin, 0});
  EXPECT_EQ(pop.wait(), SvcStatus::kOk);
  EXPECT_TRUE(pop.ok());
  EXPECT_EQ(pop.value(), 3);

  EXPECT_EQ(svc.submit({Op::kSlPush, 9}).wait(), SvcStatus::kOk);
  ResponseFuture spop = svc.submit({Op::kSlPopMin, 0});
  EXPECT_EQ(spop.wait(), SvcStatus::kOk);
  EXPECT_TRUE(spop.ok());
  EXPECT_EQ(spop.value(), 9);

  svc.stop();
  EXPECT_GT(counter(sink_, CounterId::kSvcEnqueued), 0u);
  EXPECT_GT(counter(sink_, CounterId::kSvcBatches), 0u);
}

TEST_F(ServiceTest, RangeReturnsSortedWindowWithOverlay) {
  Service svc(targets(), config());
  svc.start();
  for (std::int64_t k = 0; k < 20; k += 2) {
    ASSERT_EQ(svc.submit({Op::kMapPut, k, k * 10}).wait(), SvcStatus::kOk);
  }
  // key = lo, value = hi (inclusive).
  ResponseFuture r = svc.submit({Op::kMapRange, 4, 11});
  ASSERT_EQ(r.wait(), SvcStatus::kOk);
  const auto& pairs = r.range();
  ASSERT_EQ(pairs.size(), 4u);  // 4, 6, 8, 10
  EXPECT_EQ(r.value(), 4);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, static_cast<std::int64_t>(4 + 2 * i));
    EXPECT_EQ(pairs[i].second, pairs[i].first * 10);
  }
  svc.stop();
}

TEST_F(ServiceTest, UnregisteredTargetFails) {
  Targets only_map;
  only_map.map = &map_;
  ServiceConfig cfg = config();
  Service svc(only_map, cfg);
  svc.start();
  ResponseFuture f = svc.submit({Op::kHeapPush, 1});
  EXPECT_EQ(f.wait(), SvcStatus::kFailed);
  svc.stop();
  EXPECT_EQ(counter(sink_, CounterId::kSvcFailed), 1u);
}

TEST_F(ServiceTest, QueueFullRejectsWithOverloaded) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.high_water = 4;
  Service svc(targets(), cfg);
  // No start(): the queue only fills.  Beyond high_water the service must
  // reject instantly instead of blocking the producer.
  std::vector<ResponseFuture> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(svc.submit({Op::kMapPut, i, i}));
    EXPECT_EQ(admitted.back().status(), SvcStatus::kPending);
  }
  ResponseFuture rejected = svc.submit({Op::kMapPut, 99, 99});
  EXPECT_EQ(rejected.status(), SvcStatus::kOverloaded);
  EXPECT_EQ(counter(sink_, CounterId::kSvcRejected), 1u);
  EXPECT_EQ(counter(sink_, CounterId::kSvcEnqueued), 4u);
  // Starting late must still complete the queued work.
  svc.start();
  for (auto& f : admitted) EXPECT_EQ(f.wait(), SvcStatus::kOk);
  svc.stop();
}

TEST_F(ServiceTest, DeadlineExpiresWhileQueued) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  Service svc(targets(), cfg);
  // Queue with no worker running, let the deadline lapse, then start: the
  // worker must expire the stale request without running its transaction.
  Request doomed{Op::kMapPut, 1, 1};
  doomed.deadline_ns = now_ns() + 1'000'000;  // 1ms
  ResponseFuture f = svc.submit(doomed);
  ResponseFuture healthy = svc.submit({Op::kMapPut, 2, 2});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc.start();
  EXPECT_EQ(f.wait(), SvcStatus::kExpired);
  EXPECT_EQ(healthy.wait(), SvcStatus::kOk);
  svc.stop();
  EXPECT_EQ(counter(sink_, CounterId::kSvcExpired), 1u);
  // The expired request must not have reached the map.
  ResponseFuture probe = svc.submit({Op::kMapGet, 1});
  EXPECT_EQ(probe.status(), SvcStatus::kOverloaded);  // stopped service
}

TEST_F(ServiceTest, InjectedAbortsSplitBatchesAndStillComplete) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  cfg.batch_max = 8;
  cfg.batch_attempts = 2;
  // Fail every attempt of every multi-request batch: batches keep halving
  // until singletons, which commit (hook passes size 1).
  cfg.batch_fault_hook = [](std::size_t batch_size) {
    if (batch_size > 1) throw TxAbort{};
  };
  Service svc(targets(), cfg);
  // Queue before start so the worker wakes to one full batch.
  std::vector<ResponseFuture> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(svc.submit({Op::kMapPut, i, i}));
  svc.start();
  for (auto& f : futs) EXPECT_EQ(f.wait(), SvcStatus::kOk);
  svc.stop();
  EXPECT_GT(counter(sink_, CounterId::kSvcBatchSplits), 0u);
  // All eight landed despite the turbulence.
  metrics::MetricsSink probe;
  ServiceConfig cfg2 = config();
  cfg2.metrics = &probe;
  Service svc2(targets(), cfg2);
  svc2.start();
  for (int i = 0; i < 8; ++i) {
    ResponseFuture g = svc2.submit({Op::kMapGet, i});
    ASSERT_EQ(g.wait(), SvcStatus::kOk);
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.value(), i);
  }
  svc2.stop();
}

TEST_F(ServiceTest, StopWhileLoadedDrainsEveryRequest) {
  ServiceConfig cfg = config();
  cfg.workers = 2;
  cfg.queue_capacity = 4096;
  Service svc(targets(), cfg);
  svc.start();
  // Producers race stop(): every future must still reach a terminal
  // status — admitted requests complete (kOk), late ones reject.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::vector<ResponseFuture>> futs(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        futs[t].push_back(
            svc.submit({Op::kMapPut, t * kPerProducer + i, i}));
      }
    });
  }
  svc.stop();
  for (auto& p : producers) p.join();
  std::uint64_t ok = 0, overloaded = 0;
  for (auto& lane : futs) {
    for (auto& f : lane) {
      const SvcStatus s = f.wait();  // must not hang
      ASSERT_TRUE(s == SvcStatus::kOk || s == SvcStatus::kOverloaded)
          << to_string(s);
      (s == SvcStatus::kOk ? ok : overloaded) += 1;
    }
  }
  EXPECT_EQ(ok + overloaded,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  // Metrics must agree: every admitted request completed.
  EXPECT_EQ(counter(sink_, CounterId::kSvcEnqueued), ok);
  EXPECT_EQ(counter(sink_, CounterId::kSvcRejected), overloaded);
}

TEST_F(ServiceTest, ServiceMetricsSeriesArePopulated) {
  Service svc(targets(), config());
  svc.start();
  std::vector<ResponseFuture> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(svc.submit({Op::kMapPut, i, i}));
  for (auto& f : futs) ASSERT_EQ(f.wait(), SvcStatus::kOk);
  svc.stop();
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_GT(s.batch_size.count, 0u);
  EXPECT_EQ(s.batch_size.total, 32u);  // every admitted request in a batch
  EXPECT_GT(s.queue_depth.count, 0u);
  const metrics::PhaseSnapshot& ph = s.phase(metrics::Phase::kService);
  EXPECT_EQ(ph.count, 32u);
  EXPECT_GT(ph.total_ns, 0u);
}

TEST_F(ServiceTest, FireAndForgetFuturesDoNotLeakOrCrash) {
  Service svc(targets(), config());
  svc.start();
  for (int i = 0; i < 64; ++i) {
    svc.submit({Op::kMapPut, i, i});  // future dropped immediately
  }
  svc.stop();  // drain touches every Pending exactly once
  ResponseFuture probe = svc.submit({Op::kMapGet, 0});
  EXPECT_EQ(probe.status(), SvcStatus::kOverloaded);
}

#if defined(__linux__)

// Minimal blocking client for the loopback smoke test.
class NetClient {
 public:
  explicit NetClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~NetClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_request(std::uint64_t id, Op op, std::int64_t key,
                    std::int64_t value, std::uint32_t deadline_ms = 0) {
    std::vector<std::uint8_t> buf;
    service::wire::put<std::uint32_t>(buf, service::kNetRequestFrameLen);
    service::wire::put<std::uint64_t>(buf, id);
    service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(op));
    service::wire::put<std::int64_t>(buf, key);
    service::wire::put<std::int64_t>(buf, value);
    service::wire::put<std::uint32_t>(buf, deadline_ms);
    ASSERT_EQ(::send(fd_, buf.data(), buf.size(), 0),
              static_cast<ssize_t>(buf.size()));
  }

  struct Response {
    std::uint64_t id = 0;
    SvcStatus status = SvcStatus::kPending;
    bool ok = false;
    std::int64_t value = 0;
    std::vector<std::pair<std::int64_t, std::int64_t>> range;
  };

  Response read_response() {
    Response r;
    std::uint8_t hdr[4];
    if (!read_exact(hdr, 4)) return r;
    const auto len = service::wire::get<std::uint32_t>(hdr);
    std::vector<std::uint8_t> body(len);
    if (!read_exact(body.data(), len)) return r;
    r.id = service::wire::get<std::uint64_t>(body.data());
    r.status = static_cast<SvcStatus>(body[8]);
    r.ok = body[9] != 0;
    r.value = service::wire::get<std::int64_t>(body.data() + 10);
    const auto n = service::wire::get<std::uint32_t>(body.data() + 18);
    for (std::uint32_t i = 0; i < n; ++i) {
      r.range.emplace_back(
          service::wire::get<std::int64_t>(body.data() + 22 + i * 16),
          service::wire::get<std::int64_t>(body.data() + 30 + i * 16));
    }
    return r;
  }

 private:
  bool read_exact(std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

TEST_F(ServiceTest, NetAdapterLoopbackRoundTrip) {
  Service svc(targets(), config());
  svc.start();
  service::NetServer server(svc, /*port=*/0);
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });
  NetClient client(server.bound_port());
  ASSERT_TRUE(client.ok());

  client.send_request(1, Op::kMapPut, 5, 50);
  NetClient::Response r1 = client.read_response();
  EXPECT_EQ(r1.id, 1u);
  EXPECT_EQ(r1.status, SvcStatus::kOk);

  client.send_request(2, Op::kMapGet, 5, 0);
  NetClient::Response r2 = client.read_response();
  EXPECT_EQ(r2.id, 2u);
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(r2.value, 50);

  client.send_request(3, Op::kMapPut, 6, 60);
  (void)client.read_response();
  client.send_request(4, Op::kMapRange, 5, 6);
  NetClient::Response r4 = client.read_response();
  EXPECT_EQ(r4.id, 4u);
  ASSERT_EQ(r4.range.size(), 2u);
  EXPECT_EQ(r4.range[0].second, 50);
  EXPECT_EQ(r4.range[1].second, 60);

  server.request_stop();
  serve.join();
  // run() stops the service as its SIGTERM-path contract.
  EXPECT_FALSE(svc.accepting());
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace otb
