// Tier-1 tests of the transactional service plane: script round-trips over
// every registered structure (including transactional range), multi-op
// atomic scripts with result bindings and guards, admission-time script
// validation, the failure edges ISSUE'd for the subsystem — queue-full
// rejection, deadline expiry while queued, batch split-retry under
// injected aborts, and stop()-while-loaded drain with no lost completions
// — plus service metrics accounting, enum vocabulary exhaustiveness, and a
// loopback smoke of the binary TCP adapter in both wire versions.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/tx_abort.h"
#include "metrics/sink.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "service/net.h"
#include "service/service.h"

namespace otb {
namespace {

using metrics::CounterId;
using service::Request;
using service::ResponseFuture;
using service::Service;
using service::ServiceConfig;
using service::Step;
using service::StructureKind;
using service::SvcStatus;
using service::Targets;
using service::Verb;

using service::heap_pop_min;
using service::heap_push;
using service::map_contains;
using service::map_erase;
using service::map_get;
using service::map_put;
using service::map_range;
using service::set_add;
using service::set_contains;
using service::set_remove;
using service::sl_pop_min;
using service::sl_push;

std::uint64_t counter(const metrics::MetricsSink& sink, CounterId id) {
  return sink.snapshot().counters[static_cast<std::size_t>(id)];
}

/// Everything-registered fixture with a test-local metrics sink.
class ServiceTest : public ::testing::Test {
 protected:
  Targets targets() {
    return Targets::standard(&map_, &set_, &heap_, &slpq_);
  }

  ServiceConfig config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.batch_max = 4;
    cfg.queue_capacity = 64;
    cfg.metrics = &sink_;
    return cfg;
  }

  tx::OtbListMap map_;
  tx::OtbListSet set_;
  tx::OtbHeapPQ heap_;
  tx::OtbSkipListPQ slpq_;
  metrics::MetricsSink sink_;
};

TEST_F(ServiceTest, RoundTripsEveryOp) {
  Service svc(targets(), config());
  svc.start();

  EXPECT_TRUE(svc.submit(map_put(10, 100)).wait() == SvcStatus::kOk);
  EXPECT_TRUE(svc.submit(map_put(20, 200)).wait() == SvcStatus::kOk);
  ResponseFuture get = svc.submit(map_get(10));
  EXPECT_EQ(get.wait(), SvcStatus::kOk);
  EXPECT_TRUE(get.ok());
  EXPECT_EQ(get.value(), 100);

  ResponseFuture erase = svc.submit(map_erase(10));
  EXPECT_EQ(erase.wait(), SvcStatus::kOk);
  EXPECT_TRUE(erase.ok());
  ResponseFuture miss = svc.submit(map_get(10));
  EXPECT_EQ(miss.wait(), SvcStatus::kOk);
  EXPECT_FALSE(miss.ok());

  ResponseFuture add = svc.submit(set_add(7));
  EXPECT_EQ(add.wait(), SvcStatus::kOk);
  EXPECT_TRUE(add.ok());
  ResponseFuture has = svc.submit(set_contains(7));
  EXPECT_EQ(has.wait(), SvcStatus::kOk);
  EXPECT_TRUE(has.ok());
  ResponseFuture rm = svc.submit(set_remove(7));
  EXPECT_EQ(rm.wait(), SvcStatus::kOk);
  EXPECT_TRUE(rm.ok());

  EXPECT_EQ(svc.submit(heap_push(5)).wait(), SvcStatus::kOk);
  EXPECT_EQ(svc.submit(heap_push(3)).wait(), SvcStatus::kOk);
  ResponseFuture pop = svc.submit(heap_pop_min());
  EXPECT_EQ(pop.wait(), SvcStatus::kOk);
  EXPECT_TRUE(pop.ok());
  EXPECT_EQ(pop.value(), 3);

  EXPECT_EQ(svc.submit(sl_push(9)).wait(), SvcStatus::kOk);
  ResponseFuture spop = svc.submit(sl_pop_min());
  EXPECT_EQ(spop.wait(), SvcStatus::kOk);
  EXPECT_TRUE(spop.ok());
  EXPECT_EQ(spop.value(), 9);

  svc.stop();
  EXPECT_GT(counter(sink_, CounterId::kSvcEnqueued), 0u);
  EXPECT_GT(counter(sink_, CounterId::kSvcBatches), 0u);
}

// ---- multi-op scripts ------------------------------------------------------

TEST_F(ServiceTest, ScriptSpansHeterogeneousStructuresAtomically) {
  Service svc(targets(), config());
  svc.start();
  // Seed the skip-list PQ, then atomically pop its minimum and record it in
  // the map under the popped key (result binding) while tagging the set.
  ASSERT_EQ(svc.submit(sl_push(42)).wait(), SvcStatus::kOk);
  ASSERT_EQ(svc.submit(sl_push(17)).wait(), SvcStatus::kOk);
  ResponseFuture fut = svc.submit(
      Request{sl_pop_min().require(),
              map_put(0, 999).key_from_step(0),
              set_add(7)});
  ASSERT_EQ(fut.wait(), SvcStatus::kOk);
  EXPECT_TRUE(fut.ok());
  ASSERT_EQ(fut.step_count(), 3u);
  EXPECT_EQ(fut.step(0).value, 17);  // popped the minimum
  EXPECT_TRUE(fut.step(1).ok);
  EXPECT_TRUE(fut.step(2).ok);
  // The put landed under the POPPED key, not the literal 0.
  ResponseFuture probe = svc.submit(map_get(17));
  ASSERT_EQ(probe.wait(), SvcStatus::kOk);
  EXPECT_TRUE(probe.ok());
  EXPECT_EQ(probe.value(), 999);
  ResponseFuture probe0 = svc.submit(map_get(0));
  ASSERT_EQ(probe0.wait(), SvcStatus::kOk);
  EXPECT_FALSE(probe0.ok());
  svc.stop();
}

TEST_F(ServiceTest, GuardAbortRollsBackWholeScript) {
  Service svc(targets(), config());
  svc.start();
  // The PQ is empty: the required pop fails, so the puts after it must not
  // reach the map — atomically nothing happened.
  ResponseFuture fut = svc.submit(
      Request{map_put(1, 11), sl_pop_min().require(), map_put(2, 22)});
  ASSERT_EQ(fut.wait(), SvcStatus::kOk);
  EXPECT_FALSE(fut.ok());
  ASSERT_EQ(fut.step_count(), 3u);
  EXPECT_TRUE(fut.step(0).ran);
  EXPECT_TRUE(fut.step(0).ok);     // the attempt's put "succeeded"...
  EXPECT_TRUE(fut.step(1).ran);
  EXPECT_FALSE(fut.step(1).ok);    // ...but the guard failed here
  EXPECT_FALSE(fut.step(2).ran);   // and nothing after it executed
  // ...and none of it committed.
  ResponseFuture p1 = svc.submit(map_get(1));
  ASSERT_EQ(p1.wait(), SvcStatus::kOk);
  EXPECT_FALSE(p1.ok());
  svc.stop();
  EXPECT_EQ(counter(sink_, CounterId::kSvcGuardAborts), 1u);
}

TEST_F(ServiceTest, ExpectGuardIsCompareAndPop) {
  Service svc(targets(), config());
  svc.start();
  ASSERT_EQ(svc.submit(sl_push(5)).wait(), SvcStatus::kOk);
  // Wrong expectation: pops would return 5, caller insists on 4 — abort.
  ResponseFuture miss =
      svc.submit(Request{sl_pop_min().expecting(4), map_erase(5)});
  ASSERT_EQ(miss.wait(), SvcStatus::kOk);
  EXPECT_FALSE(miss.ok());
  // The 5 must still be there (the pop rolled back)...
  ResponseFuture hit =
      svc.submit(Request{sl_pop_min().expecting(5)});
  ASSERT_EQ(hit.wait(), SvcStatus::kOk);
  EXPECT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), 5);
  // ...and now it is gone.
  ResponseFuture empty = svc.submit(sl_pop_min());
  ASSERT_EQ(empty.wait(), SvcStatus::kOk);
  EXPECT_FALSE(empty.ok());
  svc.stop();
}

TEST_F(ServiceTest, GuardAbortInsideCoalescedBatchGetsSoloVerdict) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  cfg.batch_max = 8;
  Service svc(targets(), cfg);
  // Pre-load one batch before start(): one PQ element, then two scripts
  // competing for it, plus filler.  Coalesced into one transaction, one
  // script's required pop fails against the other's — the victim must be
  // deferred and re-run solo, where exactly one wins and one gets a clean
  // guard failure (never a completion from inside an aborted batch).
  std::vector<ResponseFuture> futs;
  futs.push_back(svc.submit(sl_push(1)));
  futs.push_back(svc.submit(Request{sl_pop_min().require(), set_add(100)}));
  futs.push_back(svc.submit(Request{sl_pop_min().require(), set_add(200)}));
  for (int i = 0; i < 4; ++i) futs.push_back(svc.submit(map_put(i, i)));
  svc.start();
  for (auto& f : futs) {
    ASSERT_EQ(f.wait(), SvcStatus::kOk);
  }
  const int winners = (futs[1].ok() ? 1 : 0) + (futs[2].ok() ? 1 : 0);
  EXPECT_EQ(winners, 1);
  EXPECT_TRUE(futs[0].ok());
  for (std::size_t i = 3; i < futs.size(); ++i) EXPECT_TRUE(futs[i].ok());
  svc.stop();
  // Ledger: every admitted request is accounted to exactly one batch.
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_EQ(s.batch_size.total + s.counter(CounterId::kSvcExpired),
            s.counter(CounterId::kSvcEnqueued));
}

// ---- admission-time validation ---------------------------------------------

TEST_F(ServiceTest, MalformedScriptsFailAtSubmit) {
  Service svc(targets(), config());
  svc.start();
  // Empty script.
  EXPECT_EQ(svc.submit(Request{}).wait(), SvcStatus::kFailed);
  // Verb incompatible with the slot's kind (map slot, PQ verb).
  Step bad = map_get(1);
  bad.verb = Verb::kPopMin;
  EXPECT_EQ(svc.submit(Request{bad}).wait(), SvcStatus::kFailed);
  // Unknown slot.
  Step out_of_range = map_get(1, /*sid=*/9);
  EXPECT_EQ(svc.submit(Request{out_of_range}).wait(), SvcStatus::kFailed);
  // Forward binding (step 0 cannot bind to itself or later).
  EXPECT_EQ(svc.submit(Request{map_get(1).key_from_step(0)}).wait(),
            SvcStatus::kFailed);
  EXPECT_EQ(
      svc.submit(Request{map_put(1, 1), map_get(2).key_from_step(5)}).wait(),
      SvcStatus::kFailed);
  // Over the script-length cap.
  ServiceConfig tight = config();
  tight.max_steps = 2;
  Service svc2(targets(), tight);
  svc2.start();
  EXPECT_EQ(
      svc2.submit(Request{map_get(1), map_get(2), map_get(3)}).wait(),
      SvcStatus::kFailed);
  EXPECT_EQ(svc2.submit(Request{map_get(1), map_get(2)}).wait(),
            SvcStatus::kOk);
  svc2.stop();
  svc.stop();
  EXPECT_EQ(counter(sink_, CounterId::kSvcFailed), 6u);
  // Failed-at-submit requests never enter the enqueue ledger.
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_EQ(s.batch_size.total + s.counter(CounterId::kSvcExpired),
            s.counter(CounterId::kSvcEnqueued));
}

TEST_F(ServiceTest, UnregisteredTargetFails) {
  Targets only_map = Targets::standard(&map_);
  ServiceConfig cfg = config();
  Service svc(only_map, cfg);
  svc.start();
  ResponseFuture f = svc.submit(heap_push(1));
  EXPECT_EQ(f.wait(), SvcStatus::kFailed);
  svc.stop();
  EXPECT_EQ(counter(sink_, CounterId::kSvcFailed), 1u);
}

// ---- range overlay edge cases through the service API ----------------------

TEST_F(ServiceTest, RangeReturnsSortedWindowWithOverlay) {
  Service svc(targets(), config());
  svc.start();
  for (std::int64_t k = 0; k < 20; k += 2) {
    ASSERT_EQ(svc.submit(map_put(k, k * 10)).wait(), SvcStatus::kOk);
  }
  ResponseFuture r = svc.submit(map_range(4, 11));
  ASSERT_EQ(r.wait(), SvcStatus::kOk);
  const auto& pairs = r.range();
  ASSERT_EQ(pairs.size(), 4u);  // 4, 6, 8, 10
  EXPECT_EQ(r.value(), 4);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, static_cast<std::int64_t>(4 + 2 * i));
    EXPECT_EQ(pairs[i].second, pairs[i].first * 10);
  }
  svc.stop();
}

TEST_F(ServiceTest, RangeSeesSameScriptEraseAndPut) {
  Service svc(targets(), config());
  svc.start();
  for (std::int64_t k = 0; k < 10; ++k) {
    ASSERT_EQ(svc.submit(map_put(k, k * 10)).wait(), SvcStatus::kOk);
  }
  // One script: erase 4, overwrite 6, insert 15, then range over [3, 16].
  // The range must observe THIS script's own write-set overlay: no 4, new
  // value at 6, and the fresh 15.
  ResponseFuture fut = svc.submit(Request{map_erase(4).require(),
                                          map_put(6, 606),
                                          map_put(15, 150),
                                          map_range(3, 16)});
  ASSERT_EQ(fut.wait(), SvcStatus::kOk);
  // Top-level ok() is the AND of step oks and the overwrite-put reports
  // ok == false (key 6 was present), so check the steps individually.
  ASSERT_EQ(fut.step_count(), 4u);
  EXPECT_TRUE(fut.step(0).ok);   // erase found 4
  EXPECT_FALSE(fut.step(1).ok);  // put 6 overwrote
  EXPECT_TRUE(fut.step(2).ok);   // put 15 inserted
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(fut.step(i).ran);
  const auto& pairs = fut.range();
  EXPECT_EQ(fut.step(3).value, static_cast<std::int64_t>(pairs.size()));
  std::set<std::int64_t> keys;
  for (const auto& [k, v] : pairs) keys.insert(k);
  EXPECT_EQ(keys.count(4), 0u);   // erased-in-same-tx key is invisible
  EXPECT_EQ(keys.count(15), 1u);  // put-then-range sees the new key
  for (const auto& [k, v] : pairs) {
    if (k == 6) EXPECT_EQ(v, 606);  // overwritten value, not the old one
  }
  // keys 3..16 present: 3,5,6,7,8,9,15 (0..9 seeded minus 4, plus 15).
  EXPECT_EQ(pairs.size(), 7u);
  svc.stop();
}

TEST_F(ServiceTest, EmptyRangeBoundsReturnNothing) {
  Service svc(targets(), config());
  svc.start();
  ASSERT_EQ(svc.submit(map_put(5, 50)).wait(), SvcStatus::kOk);
  // lo > hi is a valid, empty window — not an error.
  ResponseFuture fut = svc.submit(map_range(9, 3));
  ASSERT_EQ(fut.wait(), SvcStatus::kOk);
  EXPECT_TRUE(fut.ok());
  EXPECT_EQ(fut.value(), 0);
  EXPECT_TRUE(fut.range().empty());
  // Two ranges in one script segment range_out by each step's pair count.
  ResponseFuture two =
      svc.submit(Request{map_range(9, 3), map_range(0, 10)});
  ASSERT_EQ(two.wait(), SvcStatus::kOk);
  EXPECT_EQ(two.step(0).value, 0);
  EXPECT_EQ(two.step(1).value, 1);
  ASSERT_EQ(two.range().size(), 1u);
  EXPECT_EQ(two.range()[0].first, 5);
  svc.stop();
}

// ---- robustness edges (unchanged semantics from PR 5) ----------------------

TEST_F(ServiceTest, QueueFullRejectsWithOverloaded) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.high_water = 4;
  Service svc(targets(), cfg);
  // No start(): the queue only fills.  Beyond high_water the service must
  // reject instantly instead of blocking the producer.
  std::vector<ResponseFuture> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(svc.submit(map_put(i, i)));
    EXPECT_EQ(admitted.back().status(), SvcStatus::kPending);
  }
  ResponseFuture rejected = svc.submit(map_put(99, 99));
  EXPECT_EQ(rejected.status(), SvcStatus::kOverloaded);
  EXPECT_EQ(counter(sink_, CounterId::kSvcRejected), 1u);
  EXPECT_EQ(counter(sink_, CounterId::kSvcEnqueued), 4u);
  // Starting late must still complete the queued work.
  svc.start();
  for (auto& f : admitted) EXPECT_EQ(f.wait(), SvcStatus::kOk);
  svc.stop();
}

TEST_F(ServiceTest, DeadlineExpiresWhileQueued) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  Service svc(targets(), cfg);
  // Queue with no worker running, let the deadline lapse, then start: the
  // worker must expire the stale request without running its transaction.
  Request doomed = map_put(1, 1);
  doomed.deadline_ns = now_ns() + 1'000'000;  // 1ms
  ResponseFuture f = svc.submit(doomed);
  ResponseFuture healthy = svc.submit(map_put(2, 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc.start();
  EXPECT_EQ(f.wait(), SvcStatus::kExpired);
  EXPECT_EQ(healthy.wait(), SvcStatus::kOk);
  svc.stop();
  EXPECT_EQ(counter(sink_, CounterId::kSvcExpired), 1u);
  // The expired request must not have reached the map.
  ResponseFuture probe = svc.submit(map_get(1));
  EXPECT_EQ(probe.status(), SvcStatus::kOverloaded);  // stopped service
}

TEST_F(ServiceTest, InjectedAbortsSplitBatchesAndStillComplete) {
  ServiceConfig cfg = config();
  cfg.workers = 1;
  cfg.batch_max = 8;
  cfg.batch_attempts = 2;
  // Fail every attempt of every multi-request batch: batches keep halving
  // until singletons, which commit (hook passes size 1).
  cfg.batch_fault_hook = [](std::size_t batch_size) {
    if (batch_size > 1) throw TxAbort{};
  };
  Service svc(targets(), cfg);
  // Queue before start so the worker wakes to one full batch.
  std::vector<ResponseFuture> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(map_put(i, i)));
  svc.start();
  for (auto& f : futs) EXPECT_EQ(f.wait(), SvcStatus::kOk);
  svc.stop();
  EXPECT_GT(counter(sink_, CounterId::kSvcBatchSplits), 0u);
  // All eight landed despite the turbulence.
  metrics::MetricsSink probe;
  ServiceConfig cfg2 = config();
  cfg2.metrics = &probe;
  Service svc2(targets(), cfg2);
  svc2.start();
  for (int i = 0; i < 8; ++i) {
    ResponseFuture g = svc2.submit(map_get(i));
    ASSERT_EQ(g.wait(), SvcStatus::kOk);
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.value(), i);
  }
  svc2.stop();
}

TEST_F(ServiceTest, StopWhileLoadedDrainsEveryRequest) {
  ServiceConfig cfg = config();
  cfg.workers = 2;
  cfg.queue_capacity = 4096;
  Service svc(targets(), cfg);
  svc.start();
  // Producers race stop(): every future must still reach a terminal
  // status — admitted requests complete (kOk), late ones reject.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::vector<ResponseFuture>> futs(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        futs[t].push_back(svc.submit(map_put(t * kPerProducer + i, i)));
      }
    });
  }
  svc.stop();
  for (auto& p : producers) p.join();
  std::uint64_t ok = 0, overloaded = 0;
  for (auto& lane : futs) {
    for (auto& f : lane) {
      const SvcStatus s = f.wait();  // must not hang
      ASSERT_TRUE(s == SvcStatus::kOk || s == SvcStatus::kOverloaded)
          << to_string(s);
      (s == SvcStatus::kOk ? ok : overloaded) += 1;
    }
  }
  EXPECT_EQ(ok + overloaded,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  // Metrics must agree: every admitted request completed.
  EXPECT_EQ(counter(sink_, CounterId::kSvcEnqueued), ok);
  EXPECT_EQ(counter(sink_, CounterId::kSvcRejected), overloaded);
}

TEST_F(ServiceTest, ServiceMetricsSeriesArePopulated) {
  Service svc(targets(), config());
  svc.start();
  std::vector<ResponseFuture> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(svc.submit(map_put(i, i)));
  // Two multi-step scripts feed the script counters.
  futs.push_back(svc.submit(Request{map_put(100, 1), set_add(100)}));
  futs.push_back(svc.submit(Request{map_put(101, 1), set_add(101), sl_push(101)}));
  for (auto& f : futs) ASSERT_EQ(f.wait(), SvcStatus::kOk);
  svc.stop();
  const metrics::SinkSnapshot s = sink_.snapshot();
  EXPECT_GT(s.batch_size.count, 0u);
  EXPECT_EQ(s.batch_size.total, 34u);  // every admitted request in a batch
  EXPECT_GT(s.queue_depth.count, 0u);
  const metrics::PhaseSnapshot& ph = s.phase(metrics::Phase::kService);
  EXPECT_EQ(ph.count, 34u);
  EXPECT_GT(ph.total_ns, 0u);
  EXPECT_EQ(s.counter(CounterId::kSvcScripts), 2u);
  EXPECT_EQ(s.counter(CounterId::kSvcScriptSteps), 32u + 2u + 3u);
}

TEST_F(ServiceTest, FireAndForgetFuturesDoNotLeakOrCrash) {
  Service svc(targets(), config());
  svc.start();
  for (int i = 0; i < 64; ++i) {
    svc.submit(map_put(i, i));  // future dropped immediately
  }
  svc.stop();  // drain touches every Pending exactly once
  ResponseFuture probe = svc.submit(map_get(0));
  EXPECT_EQ(probe.status(), SvcStatus::kOverloaded);
}

// ---- vocabulary exhaustiveness ---------------------------------------------

// The switches in to_string(Verb) / to_string(StructureKind) /
// to_string(SvcStatus) have no default case, so -Werror=switch (OTB_WERROR)
// already fails the BUILD when an enumerator is added without a name.
// These tests close the runtime half: every enumerator in [0, kCount) must
// produce a distinct, non-"?" name — a reordered or duplicated case shows
// up here.
TEST(ServiceVocabulary, VerbNamesAreExhaustiveAndDistinct) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < service::kVerbCount; ++i) {
    const char* name = to_string(static_cast<Verb>(i));
    EXPECT_STRNE(name, "?") << "Verb " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate Verb name " << name;
  }
  EXPECT_STREQ(to_string(static_cast<Verb>(service::kVerbCount)), "?");
}

TEST(ServiceVocabulary, StructureKindNamesAreExhaustiveAndDistinct) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < service::kStructureKindCount; ++i) {
    const char* name = to_string(static_cast<StructureKind>(i));
    EXPECT_STRNE(name, "?") << "StructureKind " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate StructureKind name " << name;
  }
  EXPECT_STREQ(
      to_string(static_cast<StructureKind>(service::kStructureKindCount)),
      "?");
}

TEST(ServiceVocabulary, SvcStatusNamesAreExhaustiveAndDistinct) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < service::kSvcStatusCount; ++i) {
    const char* name = to_string(static_cast<SvcStatus>(i));
    EXPECT_STRNE(name, "?") << "SvcStatus " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate SvcStatus name " << name;
  }
  EXPECT_STREQ(to_string(static_cast<SvcStatus>(service::kSvcStatusCount)),
               "?");
}

#if defined(__linux__)

// Minimal blocking client for the loopback smoke test; speaks both frame
// versions.
class NetClient {
 public:
  explicit NetClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~NetClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_request_v1(std::uint64_t id, service::LegacyWireOp op,
                       std::int64_t key, std::int64_t value,
                       std::uint32_t deadline_ms = 0) {
    std::vector<std::uint8_t> buf;
    service::wire::put<std::uint32_t>(buf, service::kNetRequestFrameLen);
    service::wire::put<std::uint64_t>(buf, id);
    service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(op));
    service::wire::put<std::int64_t>(buf, key);
    service::wire::put<std::int64_t>(buf, value);
    service::wire::put<std::uint32_t>(buf, deadline_ms);
    ASSERT_EQ(::send(fd_, buf.data(), buf.size(), 0),
              static_cast<ssize_t>(buf.size()));
  }

  void send_request_v2(std::uint64_t id, const Request& req,
                       std::uint32_t deadline_ms = 0) {
    std::vector<std::uint8_t> buf;
    const std::size_t n = req.steps.size();
    service::wire::put<std::uint32_t>(
        buf, static_cast<std::uint32_t>(service::kNetWireV2HeaderLen +
                                        n * service::kNetWireStepLen));
    service::wire::put<std::uint8_t>(buf, service::kNetWireV2);
    service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(n));
    service::wire::put<std::uint32_t>(buf, deadline_ms);
    service::wire::put<std::uint64_t>(buf, id);
    for (const Step& s : req.steps) {
      service::wire::put<std::uint8_t>(buf, s.structure);
      service::wire::put<std::uint8_t>(buf, static_cast<std::uint8_t>(s.verb));
      service::wire::put<std::uint8_t>(
          buf, static_cast<std::uint8_t>((s.required ? 1 : 0) |
                                         (s.has_expect ? 2 : 0)));
      service::wire::put<std::uint8_t>(buf,
                                       static_cast<std::uint8_t>(s.key_from));
      service::wire::put<std::uint8_t>(
          buf, static_cast<std::uint8_t>(s.value_from));
      service::wire::put<std::int64_t>(buf, s.key);
      service::wire::put<std::int64_t>(buf, s.value);
      service::wire::put<std::int64_t>(buf, s.expect);
    }
    ASSERT_EQ(::send(fd_, buf.data(), buf.size(), 0),
              static_cast<ssize_t>(buf.size()));
  }

  struct StepEcho {
    bool ran = false;
    bool ok = false;
    std::int64_t value = 0;
  };

  struct Response {
    std::uint64_t id = 0;
    SvcStatus status = SvcStatus::kPending;
    bool ok = false;
    bool v2 = false;
    std::int64_t value = 0;
    std::vector<StepEcho> steps;
    std::vector<std::pair<std::int64_t, std::int64_t>> range;
  };

  Response read_response() {
    Response r;
    std::uint8_t hdr[4];
    if (!read_exact(hdr, 4)) return r;
    const auto len = service::wire::get<std::uint32_t>(hdr);
    std::vector<std::uint8_t> body(len);
    if (!read_exact(body.data(), len)) return r;
    std::size_t at = 0;
    // A v1 response body starts with the id's low bytes; a v2 body starts
    // with the version byte, which can collide with a small v1 id — so the
    // test states which framing it expects instead of sniffing.
    if (expect_v2_) {
      EXPECT_EQ(body[0], service::kNetWireV2);
      r.v2 = true;
      at = 1;
      r.id = service::wire::get<std::uint64_t>(body.data() + at);
      at += 8;
      r.status = static_cast<SvcStatus>(body[at++]);
      r.ok = body[at++] != 0;
      const std::uint8_t nsteps = body[at++];
      for (std::uint8_t i = 0; i < nsteps; ++i) {
        StepEcho e;
        e.ran = body[at++] != 0;
        e.ok = body[at++] != 0;
        e.value = service::wire::get<std::int64_t>(body.data() + at);
        at += 8;
        r.steps.push_back(e);
      }
    } else {
      r.id = service::wire::get<std::uint64_t>(body.data());
      r.status = static_cast<SvcStatus>(body[8]);
      r.ok = body[9] != 0;
      r.value = service::wire::get<std::int64_t>(body.data() + 10);
      at = 18;
    }
    const auto n = service::wire::get<std::uint32_t>(body.data() + at);
    at += 4;
    for (std::uint32_t i = 0; i < n; ++i) {
      r.range.emplace_back(
          service::wire::get<std::int64_t>(body.data() + at),
          service::wire::get<std::int64_t>(body.data() + at + 8));
      at += 16;
    }
    return r;
  }

  /// Tell read_response whether the next frame should be v2 (the version
  /// byte of a v2 frame can collide with a v1 id's low byte, so the test
  /// states its expectation instead of guessing).
  void expect_v2(bool v) { expect_v2_ = v; }

 private:
  bool read_exact(std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
  bool expect_v2_ = false;
};

TEST_F(ServiceTest, NetAdapterLoopbackRoundTrip) {
  Service svc(targets(), config());
  svc.start();
  service::NetServer server(svc, /*port=*/0);
  if (!server.listening()) {
    GTEST_SKIP() << "loopback sockets unavailable in this sandbox";
  }
  std::thread serve([&server] { server.run(); });
  NetClient client(server.bound_port());
  ASSERT_TRUE(client.ok());

  // Legacy v1 clients keep working bit-for-bit.
  client.send_request_v1(1, service::LegacyWireOp::kMapPut, 5, 50);
  NetClient::Response r1 = client.read_response();
  EXPECT_EQ(r1.id, 1u);
  EXPECT_EQ(r1.status, SvcStatus::kOk);

  client.send_request_v1(2, service::LegacyWireOp::kMapGet, 5, 0);
  NetClient::Response r2 = client.read_response();
  EXPECT_EQ(r2.id, 2u);
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(r2.value, 50);

  client.send_request_v1(3, service::LegacyWireOp::kMapPut, 6, 60);
  (void)client.read_response();
  client.send_request_v1(4, service::LegacyWireOp::kMapRange, 5, 6);
  NetClient::Response r4 = client.read_response();
  EXPECT_EQ(r4.id, 4u);
  ASSERT_EQ(r4.range.size(), 2u);
  EXPECT_EQ(r4.range[0].second, 50);
  EXPECT_EQ(r4.range[1].second, 60);

  // v2 on the SAME connection: a multi-op script with a binding — pop the
  // PQ minimum, record it in the map — and per-step results echoed back.
  client.send_request_v1(5, service::LegacyWireOp::kSlPush, 30, 0);
  (void)client.read_response();
  client.expect_v2(true);
  client.send_request_v2(
      6, Request{sl_pop_min().require(), map_put(0, 777).key_from_step(0)});
  NetClient::Response r6 = client.read_response();
  EXPECT_TRUE(r6.v2);
  EXPECT_EQ(r6.id, 6u);
  EXPECT_EQ(r6.status, SvcStatus::kOk);
  EXPECT_TRUE(r6.ok);
  ASSERT_EQ(r6.steps.size(), 2u);
  EXPECT_TRUE(r6.steps[0].ran);
  EXPECT_EQ(r6.steps[0].value, 30);
  EXPECT_TRUE(r6.steps[1].ok);

  // A malformed v2 script is a SEMANTIC failure: kFailed response, the
  // connection survives.
  Step bad = map_get(1, /*sid=*/9);
  client.send_request_v2(7, Request{bad});
  NetClient::Response r7 = client.read_response();
  EXPECT_TRUE(r7.v2);
  EXPECT_EQ(r7.id, 7u);
  EXPECT_EQ(r7.status, SvcStatus::kFailed);
  EXPECT_TRUE(r7.steps.empty());

  client.expect_v2(false);
  client.send_request_v1(8, service::LegacyWireOp::kMapGet, 30, 0);
  NetClient::Response r8 = client.read_response();
  EXPECT_EQ(r8.id, 8u);
  EXPECT_TRUE(r8.ok);
  EXPECT_EQ(r8.value, 777);

  server.request_stop();
  serve.join();
  // run() stops the service as its SIGTERM-path contract.
  EXPECT_FALSE(svc.accepting());
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace otb
