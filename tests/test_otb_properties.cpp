// Property-based and failure-injection tests for the OTB layer:
//   * random multi-structure transactions with randomly injected user
//     aborts must behave exactly like programs that skip aborted attempts;
//   * cross-structure invariants hold under concurrency;
//   * priority-queue elements are conserved through random abort storms.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"

namespace otb {
namespace {

TEST(OtbProperty, RandomAbortInjectionLeavesOracleState) {
  tx::OtbListSet set;
  tx::OtbListMap map;
  std::set<std::int64_t> set_oracle;
  std::map<std::int64_t, std::int64_t> map_oracle;
  Xorshift rng{2222};
  for (int round = 0; round < 500; ++round) {
    // Build a random program touching both structures.
    struct Step {
      unsigned op;
      std::int64_t key, val;
    };
    std::vector<Step> prog;
    const unsigned len = 1 + rng.next_bounded(4);
    for (unsigned i = 0; i < len; ++i) {
      prog.push_back({unsigned(rng.next_bounded(4)),
                      std::int64_t(rng.next_bounded(30)),
                      std::int64_t(rng.next_bounded(100))});
    }
    const bool inject_abort = rng.chance_pct(30);
    int attempts = 0;
    tx::atomically([&](tx::Transaction& t) {
      ++attempts;
      for (const Step& s : prog) {
        switch (s.op) {
          case 0:
            set.add(t, s.key);
            break;
          case 1:
            set.remove(t, s.key);
            break;
          case 2:
            map.put(t, s.key, s.val);
            break;
          default:
            map.erase(t, s.key);
            break;
        }
      }
      if (inject_abort && attempts == 1) throw TxAbort{};
    });
    // The committed attempt is equivalent to applying the program once.
    for (const Step& s : prog) {
      switch (s.op) {
        case 0:
          set_oracle.insert(s.key);
          break;
        case 1:
          set_oracle.erase(s.key);
          break;
        case 2:
          map_oracle[s.key] = s.val;
          break;
        default:
          map_oracle.erase(s.key);
          break;
      }
    }
    ASSERT_EQ(set.size_unsafe(), set_oracle.size()) << "round " << round;
    ASSERT_EQ(map.size_unsafe(), map_oracle.size()) << "round " << round;
  }
  // Full content equality at the end.
  auto set_snap = set.snapshot_unsafe();
  EXPECT_TRUE(std::equal(set_snap.begin(), set_snap.end(), set_oracle.begin(),
                         set_oracle.end()));
  for (const auto& [k, v] : map.snapshot_unsafe()) {
    ASSERT_TRUE(map_oracle.count(k));
    EXPECT_EQ(map_oracle[k], v);
  }
}

TEST(OtbProperty, CrossStructureInvariantUnderConcurrency) {
  // Every key lives in exactly one of three skip-list sets; threads move
  // keys between random pairs of sets.
  tx::OtbSkipListSet sets[3];
  constexpr std::int64_t kKeys = 32;
  for (std::int64_t k = 0; k < kKeys; ++k) sets[k % 3].add_seq(k);
  constexpr int kThreads = 4, kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng{std::uint64_t(t) * 5 + 3};
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t key = std::int64_t(rng.next_bounded(kKeys));
        const unsigned from = unsigned(rng.next_bounded(3));
        const unsigned to = unsigned(rng.next_bounded(3));
        tx::atomically([&](tx::Transaction& tr) {
          if (from != to && sets[from].remove(tr, key)) {
            ASSERT_TRUE(sets[to].add(tr, key));
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sets[0].size_unsafe() + sets[1].size_unsafe() + sets[2].size_unsafe(),
            std::size_t(kKeys));
  for (std::int64_t k = 0; k < kKeys; ++k) {
    int homes = 0;
    for (auto& s : sets) {
      const auto snap = s.snapshot_unsafe();
      homes += std::count(snap.begin(), snap.end(), k);
    }
    EXPECT_EQ(homes, 1) << "key " << k;
  }
}

TEST(OtbProperty, PriorityQueueConservationUnderAbortStorm) {
  tx::OtbSkipListPQ pq;
  constexpr std::int64_t kKeys = 200;
  for (std::int64_t k = 0; k < kKeys; ++k) pq.add_seq(k * 2);
  std::atomic<int> popped{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng{std::uint64_t(t) + 400};
      while (popped.load() < kKeys) {
        bool got = false;
        std::int64_t v = -1;
        int attempts = 0;
        tx::atomically([&](tx::Transaction& tr) {
          got = pq.remove_min(tr, &v);
          // Inject an abort on ~25% of first attempts.
          if (++attempts == 1 && rng.chance_pct(25)) throw TxAbort{};
        });
        if (got) popped.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(popped.load(), kKeys);
  EXPECT_EQ(pq.size_unsafe(), 0u);
}

TEST(OtbProperty, EliminationNeverLeaksSharedWrites) {
  // Transactions that only add+remove the same key must never modify the
  // shared list at all — verified via the structure's version churn proxy:
  // the node count stays identical and the keys stay identical.
  tx::OtbListSet set;
  for (std::int64_t k = 0; k < 10; ++k) set.add_seq(k * 10);
  const auto before = set.snapshot_unsafe();
  for (int i = 0; i < 100; ++i) {
    tx::atomically([&](tx::Transaction& t) {
      EXPECT_TRUE(set.add(t, 5));
      EXPECT_TRUE(set.remove(t, 5));
      EXPECT_TRUE(set.add(t, 7));
      EXPECT_TRUE(set.remove(t, 7));
    });
  }
  EXPECT_EQ(set.snapshot_unsafe(), before);
}

TEST(OtbProperty, LongTransactionsAcrossManyKeysCommitAtomically) {
  tx::OtbSkipListSet set;
  constexpr int kBatch = 25;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 0; round < 60; ++round) {
      const std::int64_t base = round * kBatch;
      tx::atomically([&](tx::Transaction& t) {
        for (std::int64_t k = 0; k < kBatch; ++k) {
          ASSERT_TRUE(set.add(t, base + k));
        }
      });
      tx::atomically([&](tx::Transaction& t) {
        for (std::int64_t k = 0; k < kBatch; ++k) {
          ASSERT_TRUE(set.remove(t, base + k));
        }
      });
    }
    stop = true;
  });
  std::thread observer([&] {
    while (!stop.load()) {
      // Batches land and vanish wholesale: size is always a multiple of the
      // batch size.
      std::size_t n = 0;
      tx::atomically([&](tx::Transaction& t) {
        n = 0;
        for (std::int64_t k = 0; k < 60 * kBatch; ++k) {
          if (set.contains(t, k)) ++n;
        }
      });
      EXPECT_EQ(n % kBatch, 0u) << "partial batch visible";
    }
  });
  writer.join();
  observer.join();
  EXPECT_EQ(set.size_unsafe(), 0u);
}

}  // namespace
}  // namespace otb
