// Tests for the OTB priority queues (semi-optimistic heap, optimistic
// skip-list): ordering semantics, read-after-write minima, deferred
// publication, rollback, and concurrent drain exactness.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/runtime.h"

namespace otb {
namespace {

template <typename PqT>
class OtbPqTest : public ::testing::Test {};

using PqTypes = ::testing::Types<tx::OtbHeapPQ, tx::OtbSkipListPQ>;
TYPED_TEST_SUITE(OtbPqTest, PqTypes);

template <typename PqT>
void pq_add(PqT& pq, tx::Transaction& t, std::int64_t k) {
  if constexpr (std::is_same_v<PqT, tx::OtbHeapPQ>) {
    pq.add(t, k);
  } else {
    ASSERT_TRUE(pq.add(t, k));
  }
}

TYPED_TEST(OtbPqTest, OrderedDrain) {
  TypeParam pq;
  tx::atomically([&](tx::Transaction& t) {
    for (std::int64_t k : {5, 1, 9, 3, 7}) pq_add(pq, t, k);
  });
  for (std::int64_t expected : {1, 3, 5, 7, 9}) {
    std::int64_t got_min = -1, got_removed = -1;
    tx::atomically([&](tx::Transaction& t) {
      ASSERT_TRUE(pq.min(t, &got_min));
      ASSERT_TRUE(pq.remove_min(t, &got_removed));
    });
    EXPECT_EQ(got_min, expected);
    EXPECT_EQ(got_removed, expected);
  }
  bool empty_pop = true;
  tx::atomically([&](tx::Transaction& t) {
    std::int64_t v;
    empty_pop = !pq.remove_min(t, &v);
  });
  EXPECT_TRUE(empty_pop);
}

TYPED_TEST(OtbPqTest, LocalMinimumWinsBeforePublication) {
  // A transaction that adds a key smaller than the shared minimum must see
  // its own key from removeMin, and that key must never hit shared state.
  TypeParam pq;
  pq.add_seq(100);
  tx::atomically([&](tx::Transaction& t) {
    pq_add(pq, t, 10);
    std::int64_t v = -1;
    ASSERT_TRUE(pq.remove_min(t, &v));
    EXPECT_EQ(v, 10);
  });
  EXPECT_EQ(pq.size_unsafe(), 1u);  // only 100 remains
  std::int64_t v = -1;
  tx::atomically([&](tx::Transaction& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 100);
}

TYPED_TEST(OtbPqTest, SharedMinimumWinsOverLargerLocalAdd) {
  TypeParam pq;
  pq.add_seq(10);
  tx::atomically([&](tx::Transaction& t) {
    pq_add(pq, t, 100);
    std::int64_t v = -1;
    ASSERT_TRUE(pq.remove_min(t, &v));
    EXPECT_EQ(v, 10);
  });
  EXPECT_EQ(pq.size_unsafe(), 1u);
  std::int64_t v = -1;
  tx::atomically([&](tx::Transaction& t) { ASSERT_TRUE(pq.remove_min(t, &v)); });
  EXPECT_EQ(v, 100);
}

TYPED_TEST(OtbPqTest, RepeatedRemoveMinWalksSuccessiveMinima) {
  TypeParam pq;
  for (std::int64_t k : {2, 4, 6, 8}) pq.add_seq(k);
  std::vector<std::int64_t> got;
  tx::atomically([&](tx::Transaction& t) {
    got.clear();
    std::int64_t v;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(pq.remove_min(t, &v));
      got.push_back(v);
    }
  });
  EXPECT_TRUE((got == std::vector<std::int64_t>{2, 4, 6}));
  EXPECT_EQ(pq.size_unsafe(), 1u);
}

TYPED_TEST(OtbPqTest, AbortLeavesQueueUntouched) {
  TypeParam pq;
  for (std::int64_t k : {1, 2, 3}) pq.add_seq(k);
  int attempts = 0;
  tx::atomically([&](tx::Transaction& t) {
    std::int64_t v;
    ASSERT_TRUE(pq.remove_min(t, &v));
    pq_add(pq, t, 50);
    if (++attempts == 1) throw TxAbort{};
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(pq.size_unsafe(), 3u);  // -1 removed, +50 added
  std::int64_t v = -1;
  tx::atomically([&](tx::Transaction& t) { ASSERT_TRUE(pq.min(t, &v)); });
  EXPECT_EQ(v, 2);
}

TYPED_TEST(OtbPqTest, ConcurrentProducerConsumerConserves) {
  TypeParam pq;
  constexpr int kProducers = 2, kEach = 300;
  std::atomic<int> produced{0}, consumed{0};
  std::vector<std::thread> threads;
  std::vector<std::atomic<int>> seen(kProducers * kEach);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) {
        tx::atomically([&](tx::Transaction& t) { pq_add(pq, t, p * kEach + i); });
        produced.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (consumed.load() < kProducers * kEach) {
        std::int64_t v = -1;
        bool ok = false;
        tx::atomically([&](tx::Transaction& t) { ok = pq.remove_min(t, &v); });
        if (ok) {
          seen[static_cast<std::size_t>(v)].fetch_add(1);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& th : consumers) th.join();
  EXPECT_EQ(consumed.load(), kProducers * kEach);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_EQ(pq.size_unsafe(), 0u);
}

TEST(OtbSkipListPQ, MinIsReadOnlyAndValidated) {
  tx::OtbSkipListPQ pq;
  pq.add_seq(5);
  // Read-only transaction observing the minimum leaves no footprint.
  std::int64_t v = -1;
  tx::atomically([&](tx::Transaction& t) { ASSERT_TRUE(pq.min(t, &v)); });
  EXPECT_EQ(v, 5);
  EXPECT_EQ(pq.size_unsafe(), 1u);
}

TEST(OtbHeapPQ, AddOnlyTransactionsDeferUntilCommit) {
  tx::OtbHeapPQ pq;
  tx::atomically([&](tx::Transaction& t) {
    pq.add(t, 3);
    // The shared heap must not see the add before commit.
    EXPECT_EQ(pq.size_unsafe(), 0u);
  });
  EXPECT_EQ(pq.size_unsafe(), 1u);
}

}  // namespace
}  // namespace otb
