// Unit tests for the platform substrate: hashing, RNG, locks, bloom
// filters, the binary heap, and epoch-based reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cds/binary_heap.h"
#include "common/bloom_filter.h"
#include "common/epoch.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/spinlock.h"

namespace otb {
namespace {

TEST(Hash, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(1), mix64(2));
  // Consecutive inputs should differ in many bits (avalanche smoke check).
  const std::uint64_t d = mix64(100) ^ mix64(101);
  EXPECT_GE(std::popcount(d), 16);
}

TEST(Rng, DeterministicPerSeed) {
  Xorshift a{7}, b{7}, c{8};
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundedStaysInRange) {
  Xorshift rng{123};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
}

TEST(Rng, ChancePctRoughlyCalibrated) {
  Xorshift rng{99};
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance_pct(30) ? 1 : 0;
  EXPECT_NEAR(hits / double(kTrials), 0.30, 0.03);
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> lk(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, long(kThreads) * kIters);
}

TEST(SeqLockTest, AcquireReleaseParity) {
  SeqLock sl;
  EXPECT_EQ(sl.load(), 0u);
  EXPECT_TRUE(sl.try_acquire(0));
  EXPECT_EQ(sl.load(), 1u);  // odd = writer inside
  EXPECT_FALSE(sl.try_acquire(0));
  sl.release();
  EXPECT_EQ(sl.load(), 2u);
  EXPECT_EQ(sl.wait_even(), 2u);
}

TEST(VersionedLockTest, LockCycleBumpsVersion) {
  VersionedLock vl;
  const std::uint64_t v0 = VersionedLock::version_of(vl.load());
  ASSERT_TRUE(vl.try_lock());
  EXPECT_TRUE(VersionedLock::is_locked(vl.load()));
  EXPECT_FALSE(vl.try_lock());
  vl.unlock_new_version();
  EXPECT_FALSE(VersionedLock::is_locked(vl.load()));
  EXPECT_EQ(VersionedLock::version_of(vl.load()), v0 + 1);
  ASSERT_TRUE(vl.try_lock());
  vl.unlock_same_version();
  EXPECT_EQ(VersionedLock::version_of(vl.load()), v0 + 1);
}

TEST(VersionedLockTest, TryLockFromStaleSnapshotFails) {
  VersionedLock vl;
  const std::uint64_t snap = vl.load();
  ASSERT_TRUE(vl.try_lock());
  vl.unlock_new_version();
  EXPECT_FALSE(vl.try_lock_from(snap));  // version moved on
}

TEST(Bloom, NoFalseNegatives) {
  TxFilter f;
  std::vector<int> cells(100);
  for (int i = 0; i < 100; i += 3) f.add(&cells[i]);
  for (int i = 0; i < 100; i += 3) EXPECT_TRUE(f.may_contain(&cells[i]));
}

TEST(Bloom, IntersectionDetectsSharedAddress) {
  TxFilter a, b, c;
  int x = 0, y = 0, z = 0;
  a.add(&x);
  a.add(&y);
  b.add(&y);
  c.add(&z);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c) && b.intersects(c) && c.may_contain(&x));
}

TEST(Bloom, ClearEmpties) {
  TxFilter f;
  int x = 0;
  EXPECT_TRUE(f.empty());
  f.add(&x);
  EXPECT_FALSE(f.empty());
  f.clear();
  EXPECT_TRUE(f.empty());
}

TEST(Bloom, UnionContainsBoth) {
  TxFilter a, b;
  int x = 0, y = 0;
  a.add(&x);
  b.add(&y);
  a.union_with(b);
  EXPECT_TRUE(a.may_contain(&x));
  EXPECT_TRUE(a.may_contain(&y));
}

TEST(BinaryHeapTest, SortsArbitraryInput) {
  cds::BinaryHeap heap;
  Xorshift rng{5};
  std::multiset<std::int64_t> oracle;
  for (int i = 0; i < 500; ++i) {
    const auto k = static_cast<std::int64_t>(rng.next_bounded(100));
    heap.add(k);
    oracle.insert(k);
  }
  for (auto expected : oracle) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.min(), expected);
    EXPECT_EQ(heap.remove_min(), expected);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(CoarseHeapPQTest, ConcurrentAddsAllDrain) {
  cds::CoarseHeapPQ pq;
  constexpr int kThreads = 4, kEach = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pq, t] {
      for (int i = 0; i < kEach; ++i) pq.add(t * kEach + i);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(pq.size(), std::size_t(kThreads) * kEach);
  std::int64_t prev = -1, v = 0;
  std::size_t popped = 0;
  while (pq.remove_min(&v)) {
    EXPECT_LE(prev, v);
    prev = v;
    ++popped;
  }
  EXPECT_EQ(popped, std::size_t(kThreads) * kEach);
}

TEST(Epoch, RetiredNodesAreEventuallyFreed) {
  static std::atomic<int> live{0};
  struct Tracked {
    Tracked() { live.fetch_add(1); }
    ~Tracked() { live.fetch_sub(1); }
  };
  live = 0;
  {
    for (int i = 0; i < 50; ++i) ebr::retire(new Tracked);
    EXPECT_EQ(live.load(), 50);
    ebr::collect();
    ebr::collect();
    ebr::collect();
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Epoch, GuardBlocksReclamation) {
  static std::atomic<int> live{0};
  struct Tracked {
    Tracked() { live.fetch_add(1); }
    ~Tracked() { live.fetch_sub(1); }
  };
  live = 0;
  std::atomic<bool> reader_in{false}, release{false};
  std::thread reader([&] {
    ebr::Guard g;
    reader_in = true;
    while (!release) std::this_thread::yield();
  });
  while (!reader_in) std::this_thread::yield();
  std::thread writer([&] {
    ebr::retire(new Tracked);
    for (int i = 0; i < 5; ++i) ebr::collect();
    // The reader's guard pins its entry epoch: the node must still be live.
    EXPECT_EQ(live.load(), 1);
  });
  writer.join();
  release = true;
  reader.join();
  std::thread cleaner([] {
    for (int i = 0; i < 5; ++i) ebr::collect();
  });
  cleaner.join();
  EXPECT_EQ(live.load(), 0);
}

TEST(Epoch, SlotChurnBeyondCapacityRecyclesCleanly) {
  // More sequential short-lived threads than announcement slots: each one
  // must claim a recycled slot, and its retirements must be freed (by later
  // threads' collections or the orphan drain) rather than leaked.
  static std::atomic<int> live{0};
  struct Tracked {
    Tracked() { live.fetch_add(1); }
    ~Tracked() { live.fetch_sub(1); }
  };
  live = 0;
  constexpr int kChurn = static_cast<int>(ebr::kMaxSlots) * 2 + 44;  // 300
  for (int i = 0; i < kChurn; ++i) {
    std::thread t([] {
      ebr::Guard g;
      ebr::retire(new Tracked);
    });
    t.join();
  }
  std::thread cleaner([] {
    for (int i = 0; i < 5; ++i) ebr::collect();
  });
  cleaner.join();
  EXPECT_EQ(live.load(), 0);
}

TEST(Epoch, SimultaneousOversubscriptionThrowsAndRecovers) {
  // Hold every slot with parked threads; the next claimant must get the
  // diagnosable SlotsExhausted, and once holders exit their recycled slots
  // must serve new threads again.
  std::atomic<unsigned> registered{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> holders;
  holders.reserve(ebr::kMaxSlots);
  std::atomic<unsigned> holder_ok{0}, holder_exhausted{0};
  for (unsigned i = 0; i < ebr::kMaxSlots; ++i) {
    holders.emplace_back([&] {
      try {
        ebr::Guard g;
        holder_ok.fetch_add(1);
        registered.fetch_add(1);
        while (!release) std::this_thread::yield();
      } catch (const ebr::SlotsExhausted&) {
        // The gtest main thread (and helpers from earlier tests that are
        // still winding down) may pin a few slots; treat those as holders.
        holder_exhausted.fetch_add(1);
        registered.fetch_add(1);
      }
    });
  }
  while (registered.load() < ebr::kMaxSlots) std::this_thread::yield();

  std::atomic<bool> threw{false};
  std::thread extra([&] {
    try {
      ebr::Guard g;
      // Possible only if some pre-existing slot was free; fine either way —
      // the point is the *diagnosable* failure mode below.
    } catch (const ebr::SlotsExhausted& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("reclamation slots"),
                std::string::npos);
    }
  });
  extra.join();
  // With every slot pinned by holders the extra thread must have thrown,
  // unless the process had spare slots because some holders themselves hit
  // exhaustion (already-registered main/helper threads).
  EXPECT_TRUE(threw.load() || holder_exhausted.load() > 0);

  release = true;
  for (auto& t : holders) t.join();

  // Recovery: slots were recycled on exit, a fresh thread registers fine.
  std::atomic<bool> recovered{false};
  std::thread after([&] {
    ebr::Guard g;
    recovered = true;
  });
  after.join();
  EXPECT_TRUE(recovered.load());
}

}  // namespace
}  // namespace otb
