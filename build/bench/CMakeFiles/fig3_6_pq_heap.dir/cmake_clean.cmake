file(REMOVE_RECURSE
  "CMakeFiles/fig3_6_pq_heap.dir/fig3_6_pq_heap.cpp.o"
  "CMakeFiles/fig3_6_pq_heap.dir/fig3_6_pq_heap.cpp.o.d"
  "fig3_6_pq_heap"
  "fig3_6_pq_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_6_pq_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
