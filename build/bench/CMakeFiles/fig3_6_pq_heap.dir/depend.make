# Empty dependencies file for fig3_6_pq_heap.
# This may be replaced when dependencies are built.
