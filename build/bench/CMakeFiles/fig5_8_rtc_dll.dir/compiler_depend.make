# Empty compiler generated dependencies file for fig5_8_rtc_dll.
# This may be replaced when dependencies are built.
