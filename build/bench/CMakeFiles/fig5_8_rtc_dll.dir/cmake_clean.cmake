file(REMOVE_RECURSE
  "CMakeFiles/fig5_8_rtc_dll.dir/fig5_8_rtc_dll.cpp.o"
  "CMakeFiles/fig5_8_rtc_dll.dir/fig5_8_rtc_dll.cpp.o.d"
  "fig5_8_rtc_dll"
  "fig5_8_rtc_dll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_8_rtc_dll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
