# Empty compiler generated dependencies file for fig5_11_rtc_servers.
# This may be replaced when dependencies are built.
