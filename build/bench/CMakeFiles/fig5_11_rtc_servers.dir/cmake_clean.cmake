file(REMOVE_RECURSE
  "CMakeFiles/fig5_11_rtc_servers.dir/fig5_11_rtc_servers.cpp.o"
  "CMakeFiles/fig5_11_rtc_servers.dir/fig5_11_rtc_servers.cpp.o.d"
  "fig5_11_rtc_servers"
  "fig5_11_rtc_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_11_rtc_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
