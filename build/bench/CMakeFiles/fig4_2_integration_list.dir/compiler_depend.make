# Empty compiler generated dependencies file for fig4_2_integration_list.
# This may be replaced when dependencies are built.
