file(REMOVE_RECURSE
  "CMakeFiles/fig4_2_integration_list.dir/fig4_2_integration_list.cpp.o"
  "CMakeFiles/fig4_2_integration_list.dir/fig4_2_integration_list.cpp.o.d"
  "fig4_2_integration_list"
  "fig4_2_integration_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_2_integration_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
