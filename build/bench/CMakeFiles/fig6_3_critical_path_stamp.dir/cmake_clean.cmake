file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_critical_path_stamp.dir/fig6_3_critical_path_stamp.cpp.o"
  "CMakeFiles/fig6_3_critical_path_stamp.dir/fig6_3_critical_path_stamp.cpp.o.d"
  "fig6_3_critical_path_stamp"
  "fig6_3_critical_path_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_critical_path_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
