# Empty dependencies file for fig6_3_critical_path_stamp.
# This may be replaced when dependencies are built.
