file(REMOVE_RECURSE
  "CMakeFiles/fig6_2_critical_path_rbtree.dir/fig6_2_critical_path_rbtree.cpp.o"
  "CMakeFiles/fig6_2_critical_path_rbtree.dir/fig6_2_critical_path_rbtree.cpp.o.d"
  "fig6_2_critical_path_rbtree"
  "fig6_2_critical_path_rbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2_critical_path_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
