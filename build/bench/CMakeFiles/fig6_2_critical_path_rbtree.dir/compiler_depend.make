# Empty compiler generated dependencies file for fig6_2_critical_path_rbtree.
# This may be replaced when dependencies are built.
