file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_rtc_contention_proxy.dir/fig5_6_rtc_contention_proxy.cpp.o"
  "CMakeFiles/fig5_6_rtc_contention_proxy.dir/fig5_6_rtc_contention_proxy.cpp.o.d"
  "fig5_6_rtc_contention_proxy"
  "fig5_6_rtc_contention_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_rtc_contention_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
