# Empty dependencies file for fig5_6_rtc_contention_proxy.
# This may be replaced when dependencies are built.
