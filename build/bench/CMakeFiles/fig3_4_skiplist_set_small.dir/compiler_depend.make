# Empty compiler generated dependencies file for fig3_4_skiplist_set_small.
# This may be replaced when dependencies are built.
