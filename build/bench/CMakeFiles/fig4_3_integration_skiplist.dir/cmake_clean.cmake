file(REMOVE_RECURSE
  "CMakeFiles/fig4_3_integration_skiplist.dir/fig4_3_integration_skiplist.cpp.o"
  "CMakeFiles/fig4_3_integration_skiplist.dir/fig4_3_integration_skiplist.cpp.o.d"
  "fig4_3_integration_skiplist"
  "fig4_3_integration_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_3_integration_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
