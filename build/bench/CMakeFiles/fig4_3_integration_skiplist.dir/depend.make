# Empty dependencies file for fig4_3_integration_skiplist.
# This may be replaced when dependencies are built.
