file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_rinval_rbtree.dir/fig6_7_rinval_rbtree.cpp.o"
  "CMakeFiles/fig6_7_rinval_rbtree.dir/fig6_7_rinval_rbtree.cpp.o.d"
  "fig6_7_rinval_rbtree"
  "fig6_7_rinval_rbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_rinval_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
