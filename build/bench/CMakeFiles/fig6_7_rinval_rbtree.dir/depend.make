# Empty dependencies file for fig6_7_rinval_rbtree.
# This may be replaced when dependencies are built.
