file(REMOVE_RECURSE
  "CMakeFiles/fig6_8_rinval_stamp.dir/fig6_8_rinval_stamp.cpp.o"
  "CMakeFiles/fig6_8_rinval_stamp.dir/fig6_8_rinval_stamp.cpp.o.d"
  "fig6_8_rinval_stamp"
  "fig6_8_rinval_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_8_rinval_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
