# Empty compiler generated dependencies file for fig6_8_rinval_stamp.
# This may be replaced when dependencies are built.
