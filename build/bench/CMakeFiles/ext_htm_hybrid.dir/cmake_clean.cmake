file(REMOVE_RECURSE
  "CMakeFiles/ext_htm_hybrid.dir/ext_htm_hybrid.cpp.o"
  "CMakeFiles/ext_htm_hybrid.dir/ext_htm_hybrid.cpp.o.d"
  "ext_htm_hybrid"
  "ext_htm_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_htm_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
