# Empty dependencies file for ext_htm_hybrid.
# This may be replaced when dependencies are built.
