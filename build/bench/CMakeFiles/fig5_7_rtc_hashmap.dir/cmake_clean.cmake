file(REMOVE_RECURSE
  "CMakeFiles/fig5_7_rtc_hashmap.dir/fig5_7_rtc_hashmap.cpp.o"
  "CMakeFiles/fig5_7_rtc_hashmap.dir/fig5_7_rtc_hashmap.cpp.o.d"
  "fig5_7_rtc_hashmap"
  "fig5_7_rtc_hashmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_7_rtc_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
