# Empty dependencies file for fig5_7_rtc_hashmap.
# This may be replaced when dependencies are built.
