# Empty compiler generated dependencies file for fig3_7_pq_skiplist.
# This may be replaced when dependencies are built.
