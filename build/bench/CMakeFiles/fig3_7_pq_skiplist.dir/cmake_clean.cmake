file(REMOVE_RECURSE
  "CMakeFiles/fig3_7_pq_skiplist.dir/fig3_7_pq_skiplist.cpp.o"
  "CMakeFiles/fig3_7_pq_skiplist.dir/fig3_7_pq_skiplist.cpp.o.d"
  "fig3_7_pq_skiplist"
  "fig3_7_pq_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_7_pq_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
