# Empty compiler generated dependencies file for fig5_5_rtc_rbtree.
# This may be replaced when dependencies are built.
