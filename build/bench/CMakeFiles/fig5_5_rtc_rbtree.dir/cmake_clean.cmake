file(REMOVE_RECURSE
  "CMakeFiles/fig5_5_rtc_rbtree.dir/fig5_5_rtc_rbtree.cpp.o"
  "CMakeFiles/fig5_5_rtc_rbtree.dir/fig5_5_rtc_rbtree.cpp.o.d"
  "fig5_5_rtc_rbtree"
  "fig5_5_rtc_rbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_5_rtc_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
