# Empty dependencies file for table5_1_commit_ratio.
# This may be replaced when dependencies are built.
