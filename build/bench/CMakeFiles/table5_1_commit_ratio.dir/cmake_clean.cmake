file(REMOVE_RECURSE
  "CMakeFiles/table5_1_commit_ratio.dir/table5_1_commit_ratio.cpp.o"
  "CMakeFiles/table5_1_commit_ratio.dir/table5_1_commit_ratio.cpp.o.d"
  "table5_1_commit_ratio"
  "table5_1_commit_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_1_commit_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
