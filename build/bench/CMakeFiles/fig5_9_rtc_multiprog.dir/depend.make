# Empty dependencies file for fig5_9_rtc_multiprog.
# This may be replaced when dependencies are built.
