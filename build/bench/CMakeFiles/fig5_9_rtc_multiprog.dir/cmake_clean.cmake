file(REMOVE_RECURSE
  "CMakeFiles/fig5_9_rtc_multiprog.dir/fig5_9_rtc_multiprog.cpp.o"
  "CMakeFiles/fig5_9_rtc_multiprog.dir/fig5_9_rtc_multiprog.cpp.o.d"
  "fig5_9_rtc_multiprog"
  "fig5_9_rtc_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_9_rtc_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
