file(REMOVE_RECURSE
  "CMakeFiles/fig5_10_rtc_stamp.dir/fig5_10_rtc_stamp.cpp.o"
  "CMakeFiles/fig5_10_rtc_stamp.dir/fig5_10_rtc_stamp.cpp.o.d"
  "fig5_10_rtc_stamp"
  "fig5_10_rtc_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_10_rtc_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
