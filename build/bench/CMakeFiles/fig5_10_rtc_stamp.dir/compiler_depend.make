# Empty compiler generated dependencies file for fig5_10_rtc_stamp.
# This may be replaced when dependencies are built.
