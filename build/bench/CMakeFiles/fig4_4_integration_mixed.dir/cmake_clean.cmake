file(REMOVE_RECURSE
  "CMakeFiles/fig4_4_integration_mixed.dir/fig4_4_integration_mixed.cpp.o"
  "CMakeFiles/fig4_4_integration_mixed.dir/fig4_4_integration_mixed.cpp.o.d"
  "fig4_4_integration_mixed"
  "fig4_4_integration_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_4_integration_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
