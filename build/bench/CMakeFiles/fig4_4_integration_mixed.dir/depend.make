# Empty dependencies file for fig4_4_integration_mixed.
# This may be replaced when dependencies are built.
