file(REMOVE_RECURSE
  "CMakeFiles/fig3_3_list_set.dir/fig3_3_list_set.cpp.o"
  "CMakeFiles/fig3_3_list_set.dir/fig3_3_list_set.cpp.o.d"
  "fig3_3_list_set"
  "fig3_3_list_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_3_list_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
