# Empty dependencies file for fig3_3_list_set.
# This may be replaced when dependencies are built.
