file(REMOVE_RECURSE
  "CMakeFiles/fig3_5_skiplist_set_large.dir/fig3_5_skiplist_set_large.cpp.o"
  "CMakeFiles/fig3_5_skiplist_set_large.dir/fig3_5_skiplist_set_large.cpp.o.d"
  "fig3_5_skiplist_set_large"
  "fig3_5_skiplist_set_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_5_skiplist_set_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
