# Empty dependencies file for fig3_5_skiplist_set_large.
# This may be replaced when dependencies are built.
