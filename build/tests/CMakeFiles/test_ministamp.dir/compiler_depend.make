# Empty compiler generated dependencies file for test_ministamp.
# This may be replaced when dependencies are built.
