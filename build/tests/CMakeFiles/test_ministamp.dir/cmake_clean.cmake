file(REMOVE_RECURSE
  "CMakeFiles/test_ministamp.dir/test_ministamp.cpp.o"
  "CMakeFiles/test_ministamp.dir/test_ministamp.cpp.o.d"
  "test_ministamp"
  "test_ministamp.pdb"
  "test_ministamp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ministamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
