file(REMOVE_RECURSE
  "CMakeFiles/test_boosted.dir/test_boosted.cpp.o"
  "CMakeFiles/test_boosted.dir/test_boosted.cpp.o.d"
  "test_boosted"
  "test_boosted.pdb"
  "test_boosted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boosted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
