# Empty dependencies file for test_boosted.
# This may be replaced when dependencies are built.
