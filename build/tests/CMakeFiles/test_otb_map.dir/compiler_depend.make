# Empty compiler generated dependencies file for test_otb_map.
# This may be replaced when dependencies are built.
