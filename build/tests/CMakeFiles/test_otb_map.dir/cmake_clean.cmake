file(REMOVE_RECURSE
  "CMakeFiles/test_otb_map.dir/test_otb_map.cpp.o"
  "CMakeFiles/test_otb_map.dir/test_otb_map.cpp.o.d"
  "test_otb_map"
  "test_otb_map.pdb"
  "test_otb_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otb_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
