# Empty compiler generated dependencies file for test_cds.
# This may be replaced when dependencies are built.
