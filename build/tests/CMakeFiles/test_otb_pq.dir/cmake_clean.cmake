file(REMOVE_RECURSE
  "CMakeFiles/test_otb_pq.dir/test_otb_pq.cpp.o"
  "CMakeFiles/test_otb_pq.dir/test_otb_pq.cpp.o.d"
  "test_otb_pq"
  "test_otb_pq.pdb"
  "test_otb_pq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otb_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
