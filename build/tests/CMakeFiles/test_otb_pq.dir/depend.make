# Empty dependencies file for test_otb_pq.
# This may be replaced when dependencies are built.
