file(REMOVE_RECURSE
  "CMakeFiles/test_stm_properties.dir/test_stm_properties.cpp.o"
  "CMakeFiles/test_stm_properties.dir/test_stm_properties.cpp.o.d"
  "test_stm_properties"
  "test_stm_properties.pdb"
  "test_stm_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
