# Empty compiler generated dependencies file for test_stm_properties.
# This may be replaced when dependencies are built.
