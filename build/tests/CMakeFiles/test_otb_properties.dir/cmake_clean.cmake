file(REMOVE_RECURSE
  "CMakeFiles/test_otb_properties.dir/test_otb_properties.cpp.o"
  "CMakeFiles/test_otb_properties.dir/test_otb_properties.cpp.o.d"
  "test_otb_properties"
  "test_otb_properties.pdb"
  "test_otb_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otb_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
