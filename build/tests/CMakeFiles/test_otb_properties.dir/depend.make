# Empty dependencies file for test_otb_properties.
# This may be replaced when dependencies are built.
