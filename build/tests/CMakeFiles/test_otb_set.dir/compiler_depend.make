# Empty compiler generated dependencies file for test_otb_set.
# This may be replaced when dependencies are built.
