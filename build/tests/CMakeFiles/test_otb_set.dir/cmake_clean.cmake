file(REMOVE_RECURSE
  "CMakeFiles/test_otb_set.dir/test_otb_set.cpp.o"
  "CMakeFiles/test_otb_set.dir/test_otb_set.cpp.o.d"
  "test_otb_set"
  "test_otb_set.pdb"
  "test_otb_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otb_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
