file(REMOVE_RECURSE
  "CMakeFiles/test_stmds.dir/test_stmds.cpp.o"
  "CMakeFiles/test_stmds.dir/test_stmds.cpp.o.d"
  "test_stmds"
  "test_stmds.pdb"
  "test_stmds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stmds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
