# Empty dependencies file for test_stmds.
# This may be replaced when dependencies are built.
