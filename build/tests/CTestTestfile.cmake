# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cds[1]_include.cmake")
include("/root/repo/build/tests/test_otb_set[1]_include.cmake")
include("/root/repo/build/tests/test_otb_pq[1]_include.cmake")
include("/root/repo/build/tests/test_boosted[1]_include.cmake")
include("/root/repo/build/tests/test_stm[1]_include.cmake")
include("/root/repo/build/tests/test_stmds[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ministamp[1]_include.cmake")
include("/root/repo/build/tests/test_otb_map[1]_include.cmake")
include("/root/repo/build/tests/test_stm_properties[1]_include.cmake")
include("/root/repo/build/tests/test_otb_properties[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_htm[1]_include.cmake")
include("/root/repo/build/tests/test_contention[1]_include.cmake")
include("/root/repo/build/tests/test_benchlib[1]_include.cmake")
