// Order-book scenario: optimistic cross-matching with expect guards.
//
// Three structures under one service: an ask queue, a bid queue (prices
// negated so the queue minimum is the best bid) and an order map holding
// every resting order's quantity.  Makers rest orders with guarded
// push+put scripts; matchers read both tops, then submit the four-step
// match script (scenarios.h): pop both minima with `expect` guards and
// erase both book entries.  If the book moved between the read and the
// match — the other matcher got there first, a better price arrived — the
// expects abort the whole script and nothing is half-matched: the
// CAS-retry shape of a real matching engine, with the retry loop in the
// client and atomicity in the service.  Final audit: matched pairs all
// crossed (bid >= ask), and the order map is exactly the union of the
// remaining queues.
//
// Supports --metrics-json=PATH (validated by metrics_check --validate in
// CI's scenario-smoke step).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "benchlib/driver.h"
#include "service/scenarios.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  using namespace otb::service;

  constexpr std::int64_t kOrders = 200;  // asks and bids placed, each
  constexpr int kMatchers = 2;

  scenarios::OrderBook book;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 8;
  Service svc(book.targets(), cfg);
  svc.start();

  std::atomic<std::int64_t> matched{0};
  std::atomic<bool> makers_done{false};
  std::atomic<bool> mismatch{false};
  std::mutex fills_mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> fills;  // (ask, bid)

  // Every bid dominates every ask (bids 1100.., asks 100..), so the book
  // fully crosses: exactly kOrders matches drain both sides.  Interleaved
  // placement makes the matchers race the makers on a moving top of book.
  std::thread ask_maker([&] {
    for (std::int64_t i = 0; i < kOrders; ++i) {
      ResponseFuture fut = svc.submit(book.place_ask(100 + i, /*qty=*/10));
      if (fut.wait() != SvcStatus::kOk || !fut.ok()) mismatch.store(true);
    }
  });
  std::thread bid_maker([&] {
    for (std::int64_t i = 0; i < kOrders; ++i) {
      ResponseFuture fut = svc.submit(book.place_bid(1100 + i, /*qty=*/10));
      if (fut.wait() != SvcStatus::kOk || !fut.ok()) mismatch.store(true);
    }
  });

  std::vector<std::thread> matchers;
  for (int m = 0; m < kMatchers; ++m) {
    matchers.emplace_back([&] {
      while (matched.load(std::memory_order_relaxed) < kOrders) {
        ResponseFuture a = svc.submit(book.best_ask());
        ResponseFuture b = svc.submit(book.best_bid());
        if (a.wait() != SvcStatus::kOk || b.wait() != SvcStatus::kOk) continue;
        if (!a.ok() || !b.ok()) {  // a side is empty
          if (makers_done.load(std::memory_order_relaxed) &&
              matched.load(std::memory_order_relaxed) >= kOrders) {
            break;
          }
          continue;
        }
        const std::int64_t ask = a.value();
        const std::int64_t bid = -b.value();  // bids are stored negated
        if (bid < ask) continue;  // top of book does not cross (yet)
        ResponseFuture fut = svc.submit(book.match(ask, bid));
        if (fut.wait() != SvcStatus::kOk) continue;
        if (!fut.ok()) continue;  // expects drifted: benign, retry
        matched.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(fills_mu);
        fills.emplace_back(ask, bid);
      }
    });
  }

  ask_maker.join();
  bid_maker.join();
  makers_done.store(true);
  for (auto& t : matchers) t.join();
  svc.stop();

  // Audit 1: every fill crossed.
  for (const auto& [ask, bid] : fills) {
    if (bid < ask) mismatch.store(true);
  }
  // Audit 2: the order map is exactly the remaining queues' union.
  auto asks_left = scenarios::drain_pq_unsafe(book.asks());
  auto bids_left = scenarios::drain_pq_unsafe(book.bids());
  std::vector<std::int64_t> queues;
  queues.insert(queues.end(), asks_left.begin(), asks_left.end());
  queues.insert(queues.end(), bids_left.begin(), bids_left.end());
  std::sort(queues.begin(), queues.end());
  std::vector<std::int64_t> orders_left;
  for (const auto& [k, v] : book.orders().snapshot_unsafe()) {
    orders_left.push_back(k);
  }
  std::sort(orders_left.begin(), orders_left.end());
  if (queues != orders_left) mismatch.store(true);

  std::printf(
      "scenario_order_book: matched=%lld asks_left=%zu bids_left=%zu "
      "orders_left=%zu (expected %lld/0/0/0)\n",
      static_cast<long long>(matched.load()), asks_left.size(),
      bids_left.size(), orders_left.size(), static_cast<long long>(kOrders));
  const bool pass = matched.load() == kOrders && asks_left.empty() &&
                    bids_left.empty() && orders_left.empty() &&
                    !mismatch.load();
  return pass ? 0 : 1;
}
