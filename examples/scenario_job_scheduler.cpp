// Job-scheduler scenario: the multi-op script API end to end.
//
// A skip-list priority queue holds ready jobs; a lease map records which
// worker owns each claimed job.  Workers drive everything through the
// service plane with two-step atomic scripts (scenarios.h):
//   claim    = [pop_min(free).require(), put(lease, <popped>, worker)]
//   requeue  = [erase(lease, job).require(), push(free, job)]
//   complete = [erase(lease, job).require()]
// The pop→put binding and the guards make the cross-structure invariant —
// a job is never in both the free queue and the lease map, and never lost —
// hold by construction; the final audit checks exactly that.
//
// Supports --metrics-json=PATH (validated by metrics_check --validate in
// CI's scenario-smoke step).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "benchlib/driver.h"
#include "service/scenarios.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  using namespace otb::service;

  constexpr std::int64_t kJobs = 400;
  constexpr int kWorkers = 3;

  scenarios::JobScheduler sched;
  for (std::int64_t j = 1; j <= kJobs; ++j) sched.seed_job(j);

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 8;
  Service svc(sched.targets(), cfg);
  svc.start();

  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> claims_ok{0};
  std::atomic<bool> mismatch{false};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t rng = 0x9e3779b9u + static_cast<std::uint64_t>(w);
      while (completed.load(std::memory_order_relaxed) < kJobs) {
        ResponseFuture fut = svc.submit(sched.claim(w));
        if (fut.wait() != SvcStatus::kOk) continue;
        if (!fut.ok()) continue;  // guard abort: queue momentarily empty
        claims_ok.fetch_add(1, std::memory_order_relaxed);
        // The binding contract: step 0 popped the job the lease now names.
        const std::int64_t job = fut.step(0).value;
        if (!fut.step(1).ran) mismatch.store(true);
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        if ((rng & 3) == 0) {
          // Requeue: back to the free queue, atomically un-leased.
          ResponseFuture rq = svc.submit(sched.release(job));
          if (rq.wait() != SvcStatus::kOk || !rq.ok()) mismatch.store(true);
        } else {
          // Complete: retire the lease; the job leaves the system.
          ResponseFuture done =
              svc.submit(Request{map_erase(job, sched.lease_id()).require()});
          if (done.wait() != SvcStatus::kOk || !done.ok()) mismatch.store(true);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  svc.stop();

  // Audit: every job completed exactly once, nothing stranded in either
  // structure, nothing duplicated into both.
  const auto free_left = scenarios::drain_pq_unsafe(sched.free_queue());
  const std::size_t leased_left = sched.leases().size_unsafe();
  std::printf(
      "scenario_job_scheduler: completed=%lld claims=%lld free_left=%zu "
      "leased_left=%zu (expected %lld/_/0/0)\n",
      static_cast<long long>(completed.load()),
      static_cast<long long>(claims_ok.load()), free_left.size(), leased_left,
      static_cast<long long>(kJobs));
  const bool pass = completed.load() == kJobs && free_left.empty() &&
                    leased_left == 0 && !mismatch.load();
  return pass ? 0 : 1;
}
