// Durability walkthrough: write-ahead logging and crash recovery for the
// transactional service plane (docs/DURABILITY.md).
//
// Phase 1 starts a durable service (OTB_WAL_DIR equivalent via config),
// commits a mixed batch of map writes and priority-queue pushes, takes an
// explicit checkpoint, commits more on top, and stops WITHOUT any clean
// shutdown ceremony beyond stop() — the log and checkpoint on disk are the
// only carriers of state.  Phase 2 builds empty structures, replays the
// directory through Service::recover(), serves new traffic on top, and
// self-checks that the recovered+continued state matches the oracle.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/durable_service
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unistd.h>

#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "service/recovery.h"
#include "service/service.h"

using otb::service::Request;
using otb::service::Service;
using otb::service::ServiceConfig;
using otb::service::SvcStatus;
using otb::service::Targets;

namespace {

int fail(const char* what) {
  std::fprintf(stderr, "durable_service: FAILED: %s\n", what);
  return 1;
}

/// The pre-seeded baseline is NOT in the log (it predates start()), so the
/// same deterministic closure runs before a fresh start and before replay.
void seed(otb::tx::OtbListMap& map) {
  for (std::int64_t k = 0; k < 4; ++k) map.put_seq(k, k * 100);
}

}  // namespace

int main() {
  char tmpl[] = "/tmp/otb_durable_example_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) return fail("mkdtemp");
  const std::string wal_dir = tmpl;

  std::map<std::int64_t, std::int64_t> oracle;  // expected final map rows
  for (std::int64_t k = 0; k < 4; ++k) oracle[k] = k * 100;

  // ---- Phase 1: a durable service takes writes, checkpoints, crashes. --
  {
    otb::tx::OtbListMap map;
    otb::tx::OtbHeapPQ heap;
    seed(map);
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.wal_dir = wal_dir;  // knob: OTB_WAL_DIR
    // group = one fsync per drained batch, before any acknowledgement
    cfg.wal_fsync = otb::service::WalFsync::kGroup;  // knob: OTB_WAL_FSYNC
    Service svc(Targets::standard(&map, nullptr, &heap), cfg);
    svc.start();

    for (int i = 0; i < 50; ++i) {
      const std::int64_t k = 10 + i % 8;
      if (svc.submit(Request(otb::service::map_put(k, i))).wait() !=
          SvcStatus::kOk) {
        return fail("phase-1 put");
      }
      oracle[k] = i;
      svc.submit(Request(otb::service::heap_push(1000 + i))).wait();
    }
    // Snapshot + manifest + prefix truncation; recovery will start from
    // this checkpoint and replay only the records logged after it.
    if (!svc.checkpoint_now()) return fail("checkpoint_now");
    for (int i = 0; i < 10; ++i) {
      if (svc.submit(Request(otb::service::map_erase(i % 4))).wait() !=
          SvcStatus::kOk) {
        return fail("phase-1 erase");
      }
      oracle.erase(i % 4);
    }
    svc.stop();
    // The structures die with this scope: disk is all that remains.
  }

  // ---- Phase 2: empty structures + recover() + serve on top. ----------
  otb::tx::OtbListMap map;
  otb::tx::OtbHeapPQ heap;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.wal_dir = wal_dir;
  Service svc(Targets::standard(&map, nullptr, &heap), cfg);
  const otb::service::RecoveryReport report =
      svc.recover([&map] { seed(map); });
  if (!report.ok()) return fail(report.detail.c_str());
  std::printf(
      "recovered: checkpoint_seq=%llu last_seq=%llu records=%llu ops=%llu\n",
      static_cast<unsigned long long>(report.checkpoint_seq),
      static_cast<unsigned long long>(report.last_seq),
      static_cast<unsigned long long>(report.records_replayed),
      static_cast<unsigned long long>(report.ops_replayed));

  svc.start();  // new commits continue the recovered log
  if (svc.submit(Request(otb::service::map_put(99, 9900))).wait() !=
      SvcStatus::kOk) {
    return fail("phase-2 put");
  }
  oracle[99] = 9900;
  svc.stop();

  std::map<std::int64_t, std::int64_t> got;
  for (const auto& [k, v] : map.snapshot_unsafe()) got[k] = v;
  if (got != oracle) return fail("recovered map diverges from oracle");
  if (heap.snapshot_unsafe().size() != 50) {
    return fail("recovered heap lost pushes");
  }

  std::printf("durable_service: OK — %zu map rows and %zu queued keys "
              "survived the restart\n",
              got.size(), heap.snapshot_unsafe().size());
  std::system(("rm -rf '" + wal_dir + "'").c_str());
  return 0;
}
