// Task scheduler: a transactional priority queue driving worker threads.
//
// Producers submit prioritised jobs; workers atomically {pop the most
// urgent job, mark it in the "running" set, bump a counter} — a compound
// operation that is racy with a plain concurrent queue but trivially
// correct under OTB transactions.
#include <cstdio>
#include <thread>
#include <vector>

#include "otb/otb_skiplist_pq.h"
#include "otb/otb_skiplist_set.h"
#include "otb/runtime.h"

int main() {
  otb::tx::OtbSkipListPQ ready;     // pending jobs, ordered by deadline
  otb::tx::OtbSkipListSet claimed;  // jobs currently owned by a worker
  std::atomic<int> executed{0};
  constexpr int kJobs = 400;

  std::thread producer([&] {
    for (std::int64_t job = 1; job <= kJobs; ++job) {
      const std::int64_t deadline = (job * 37) % kJobs + job * kJobs;  // unique
      otb::tx::atomically(
          [&](otb::tx::Transaction& tx) { ready.add(tx, deadline); });
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      while (executed.load() < kJobs) {
        std::int64_t job = -1;
        bool got = false;
        otb::tx::atomically([&](otb::tx::Transaction& tx) {
          got = ready.remove_min(tx, &job);
          if (got) claimed.add(tx, job);  // pop + claim is atomic
        });
        if (!got) continue;
        // ... do the work (outside the transaction) ...
        otb::tx::atomically(
            [&](otb::tx::Transaction& tx) { claimed.remove(tx, job); });
        executed.fetch_add(1);
      }
    });
  }

  producer.join();
  for (auto& th : workers) th.join();
  std::printf("executed=%d ready_left=%zu claimed_left=%zu (expected %d/0/0)\n",
              executed.load(), ready.size_unsafe(), claimed.size_unsafe(),
              kJobs);
  return (executed.load() == kJobs && ready.size_unsafe() == 0 &&
          claimed.size_unsafe() == 0)
             ? 0
             : 1;
}
