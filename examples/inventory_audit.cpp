// Inventory with audited counters: the Chapter-4 programming model — one
// transaction mixes OTB set operations with plain transactional memory
// reads/writes (Algorithm 7), under the OTB-NOrec integrated context.
#include <cstdio>
#include <thread>
#include <vector>

#include "integration/otb_stm.h"
#include "otb/otb_skiplist_set.h"

int main() {
  otb::integration::Runtime rt(otb::integration::HostAlgo::kOtbNOrec);
  otb::tx::OtbSkipListSet in_stock;      // SKUs currently stocked
  otb::stm::TVar<std::int64_t> stocked{0};   // audited: must equal |in_stock|
  otb::stm::TVar<std::int64_t> shipments{0};

  std::vector<std::thread> clerks;
  for (int c = 0; c < 4; ++c) {
    clerks.emplace_back([&, c] {
      auto ctx = rt.make_tx();
      for (int i = 0; i < 400; ++i) {
        const std::int64_t sku = (c * 797 + i * 31) % 64;
        rt.atomically(*ctx, [&](otb::integration::OtbTx& tx) {
          if (in_stock.add(tx, sku)) {
            // New stock arrived: set membership and counter move together.
            tx.write(stocked, tx.read(stocked) + 1);
          } else if (in_stock.remove(tx, sku)) {
            tx.write(stocked, tx.read(stocked) - 1);
            tx.write(shipments, tx.read(shipments) + 1);
          }
        });
      }
    });
  }
  for (auto& th : clerks) th.join();

  const auto counted = stocked.load_direct();
  const auto actual = std::int64_t(in_stock.size_unsafe());
  std::printf("audited counter=%lld, set size=%lld, shipments=%lld — %s\n",
              (long long)counted, (long long)actual,
              (long long)shipments.load_direct(),
              counted == actual ? "CONSISTENT" : "BROKEN");
  return counted == actual ? 0 : 1;
}
