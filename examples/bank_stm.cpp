// Bank ledger on the raw STM API — demonstrates selecting an algorithm at
// runtime (including the server-based RTC and RInval) behind one unchanged
// application, and verifies the conservation invariant.
//   ./build/examples/bank_stm [norec|tml|tl2|ringsw|invalstm|rtc|rinval]
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/stm.h"

using namespace otb;

static stm::AlgoKind parse_algo(const char* s) {
  if (s == nullptr) return stm::AlgoKind::kNOrec;
  const std::pair<const char*, stm::AlgoKind> table[] = {
      {"norec", stm::AlgoKind::kNOrec},     {"tml", stm::AlgoKind::kTML},
      {"tl2", stm::AlgoKind::kTL2},         {"ringsw", stm::AlgoKind::kRingSW},
      {"invalstm", stm::AlgoKind::kInvalSTM}, {"rtc", stm::AlgoKind::kRTC},
      {"rinval", stm::AlgoKind::kRInval},
  };
  for (const auto& [name, kind] : table) {
    if (std::strcmp(s, name) == 0) return kind;
  }
  return stm::AlgoKind::kNOrec;
}

int main(int argc, char** argv) {
  const stm::AlgoKind kind = parse_algo(argc > 1 ? argv[1] : nullptr);
  std::printf("algorithm: %s\n", std::string(stm::to_string(kind)).c_str());

  stm::Runtime rt(kind);
  constexpr std::size_t kAccounts = 64;
  constexpr std::int64_t kInitial = 1000;
  stm::TArray<std::int64_t> balance(kAccounts, kInitial);

  std::vector<std::thread> tellers;
  for (int t = 0; t < 4; ++t) {
    tellers.emplace_back([&, t] {
      stm::TxThread th(rt);
      Xorshift rng{std::uint64_t(t) + 40};
      for (int i = 0; i < 1000; ++i) {
        const std::size_t from = rng.next_bounded(kAccounts);
        const std::size_t to = rng.next_bounded(kAccounts);
        const std::int64_t amount = 1 + std::int64_t(rng.next_bounded(20));
        rt.atomically(th, [&](stm::Tx& tx) {
          tx.write(balance[from], tx.read(balance[from]) - amount);
          tx.write(balance[to], tx.read(balance[to]) + amount);
        });
      }
      std::printf("teller %d: commits=%llu aborts=%llu\n", t,
                  (unsigned long long)th.tx().stats().commits,
                  (unsigned long long)th.tx().stats().aborts);
    });
  }
  for (auto& th : tellers) th.join();

  std::int64_t total = 0;
  for (std::size_t a = 0; a < kAccounts; ++a) total += balance[a].load_direct();
  std::printf("total=%lld (expected %lld) — %s\n", (long long)total,
              (long long)(kAccounts * kInitial),
              total == std::int64_t(kAccounts) * kInitial ? "CONSERVED"
                                                          : "LOST MONEY");
  return total == std::int64_t(kAccounts) * kInitial ? 0 : 1;
}
