// Session-store scenario: atomic create and TTL-sweep scripts.
//
// Two maps share one service: `sessions` (sid -> data) and a TTL index
// (expiry rank -> sid, rank = bucket * kSessions + sid so ranks are unique
// and time-ordered).  Creators install sessions with a two-put script;
// concurrent sweepers scan the TTL index with a range step and retire each
// expired entry with a guarded two-erase script (scenarios.h) — the TTL
// erase is the guard, so racing sweepers never double-expire and never
// touch a session the other sweeper already removed.  Invariant audited at
// the end: both maps empty (every created session expired exactly once),
// and within every expire script the step results agreed.
//
// Supports --metrics-json=PATH (validated by metrics_check --validate in
// CI's scenario-smoke step).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "benchlib/driver.h"
#include "service/scenarios.h"

int main(int argc, char** argv) {
  otb::bench::install_metrics_json_exporter(argc, argv);
  using namespace otb::service;

  constexpr std::int64_t kSessions = 256;  // sids [0, kSessions)
  constexpr std::int64_t kBuckets = 4;     // expiry buckets, created in order
  constexpr int kSweepers = 2;

  scenarios::SessionStore store;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 8;
  Service svc(store.targets(), cfg);
  svc.start();

  std::atomic<std::int64_t> expired{0};
  std::atomic<bool> mismatch{false};

  std::thread creator([&] {
    for (std::int64_t b = 0; b < kBuckets; ++b) {
      for (std::int64_t sid = 0; sid < kSessions; ++sid) {
        if (sid % kBuckets != b) continue;  // each sid lives in one bucket
        const std::int64_t rank = b * kSessions + sid;
        ResponseFuture fut = svc.submit(store.create(sid, sid * 7, rank));
        if (fut.wait() != SvcStatus::kOk || !fut.ok()) mismatch.store(true);
      }
    }
  });

  // Sweepers race over the whole rank space until every session is gone:
  // scan a bucket's rank window, then atomically expire each hit.  Guard
  // aborts (the other sweeper won the entry) are expected and benign.
  std::vector<std::thread> sweepers;
  for (int s = 0; s < kSweepers; ++s) {
    sweepers.emplace_back([&] {
      while (expired.load(std::memory_order_relaxed) < kSessions) {
        ResponseFuture scan =
            svc.submit(store.scan_ttl(0, kBuckets * kSessions));
        if (scan.wait() != SvcStatus::kOk) continue;
        for (const auto& [rank, sid] : scan.range()) {
          ResponseFuture fut = svc.submit(store.expire(rank, sid));
          if (fut.wait() != SvcStatus::kOk) continue;
          if (!fut.ok()) {
            // Guard abort: the TTL erase lost the race.  The session erase
            // must not have run — that is the atomicity contract.
            if (fut.step(1).ran) mismatch.store(true);
            continue;
          }
          // Won the TTL entry: the session erase ran in the same
          // transaction and must have found the session.
          if (!fut.step(1).ran || !fut.step(1).ok) mismatch.store(true);
          expired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  creator.join();
  for (auto& t : sweepers) t.join();
  svc.stop();

  const std::size_t sessions_left = store.sessions().size_unsafe();
  const std::size_t ttl_left = store.ttl_index().size_unsafe();
  std::printf(
      "scenario_session_store: expired=%lld sessions_left=%zu ttl_left=%zu "
      "(expected %lld/0/0)\n",
      static_cast<long long>(expired.load()), sessions_left, ttl_left,
      static_cast<long long>(kSessions));
  const bool pass = expired.load() == kSessions && sessions_left == 0 &&
                    ttl_left == 0 && !mismatch.load();
  return pass ? 0 : 1;
}
