// Quickstart: composable transactions over OTB data structures.
//
// Moves money between two "account index" sets atomically and shows the
// transactional semantics (read-own-writes, elimination, retry) in ~40
// lines of user code.  Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "otb/otb_list_set.h"
#include "otb/runtime.h"

int main() {
  otb::tx::OtbListSet checking, savings;
  for (std::int64_t acct = 0; acct < 10; ++acct) checking.add_seq(acct);

  // Concurrently shuttle accounts between the two sets.  Each transfer is
  // one transaction: an account is never in both sets or in neither.
  std::vector<std::thread> movers;
  for (int t = 0; t < 4; ++t) {
    movers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const std::int64_t acct = (t * 131 + i) % 10;
        otb::tx::atomically([&](otb::tx::Transaction& tx) {
          if (checking.remove(tx, acct)) {
            savings.add(tx, acct);
          } else if (savings.remove(tx, acct)) {
            checking.add(tx, acct);
          }
        });
      }
    });
  }
  for (auto& th : movers) th.join();

  const std::size_t total = checking.size_unsafe() + savings.size_unsafe();
  std::printf("accounts: checking=%zu savings=%zu total=%zu (expected 10)\n",
              checking.size_unsafe(), savings.size_unsafe(), total);

  // Read-own-writes inside one transaction.
  otb::tx::atomically([&](otb::tx::Transaction& tx) {
    checking.add(tx, 99);
    std::printf("inside tx:  contains(99) = %d (pending write visible)\n",
                checking.contains(tx, 99));
    checking.remove(tx, 99);  // eliminates the pending add — no shared write
  });
  std::printf("after tx:   contains(99) published? %d (eliminated)\n",
              int(checking.size_unsafe() > 10));

  const otb::metrics::SinkSnapshot stats = otb::tx::metrics_snapshot();
  std::printf("committed=%llu aborted=%llu\n",
              (unsigned long long)stats.counter(otb::metrics::CounterId::kCommits),
              (unsigned long long)stats.aborts_total());
  return total == 10 ? 0 : 1;
}
