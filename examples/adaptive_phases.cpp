// Phase-changing workload on the adaptive runtime (§5.4.1): the program
// alternates between a traversal-dominated phase (long read chains, tiny
// write-sets — NOrec territory) and a commit-bound phase (small
// transactions, fat write-sets — RTC territory), and lets the runtime's
// policy re-select the algorithm between phases.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stm/adaptive.h"

using namespace otb;

int main() {
  stm::AdaptiveRuntime rt(stm::AlgoKind::kNOrec);
  stm::TArray<std::int64_t> chain(256, 1);   // traversal phase data
  stm::TArray<std::int64_t> counters(64, 0);  // commit-bound phase data

  for (int phase = 0; phase < 4; ++phase) {
    const bool traversal = (phase % 2 == 0);
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> reads{0}, writes{0}, commits{0};
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&, w] {
        stm::AdaptiveThread th(rt);
        Xorshift rng{std::uint64_t(phase * 10 + w)};
        for (int i = 0; i < 300; ++i) {
          if (traversal) {
            rt.atomically(th, [&](stm::Tx& tx) {
              std::int64_t sum = 0;
              for (std::size_t c = 0; c < chain.size(); ++c) {
                sum += tx.read(chain[c]);
              }
              tx.write(chain[rng.next_bounded(chain.size())], sum % 5 + 1);
            });
          } else {
            rt.atomically(th, [&](stm::Tx& tx) {
              for (int k = 0; k < 12; ++k) {
                auto& c = counters[rng.next_bounded(counters.size())];
                tx.write(c, tx.read(c) + 1);
              }
            });
          }
        }
        reads += th.stats().reads;
        writes += th.stats().writes;
        commits += th.stats().commits;
      });
    }
    for (auto& t : workers) t.join();
    stm::TxStats observed{};
    observed.commits = commits;
    observed.reads = reads;
    observed.writes = writes;
    const bool switched = rt.maybe_adapt(observed);
    std::printf(
        "phase %d (%s): avg reads/tx=%.1f writes/tx=%.1f -> running %s%s\n",
        phase, traversal ? "traversal " : "commit-bound",
        double(reads) / double(commits), double(writes) / double(commits),
        std::string(stm::to_string(rt.kind())).c_str(),
        switched ? "  [switched]" : "");
  }
  return 0;
}
