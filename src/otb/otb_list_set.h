// OTB-Set over a lazy linked list — the paper's primary contribution
// (§3.2.1, Algorithms 1–3).
//
// Operations are split into the three OTB steps:
//   1. unmonitored traversal (identical to the lazy list, no logging of
//      traversed nodes — this is what removes STM false conflicts),
//   2. post-validation of the semantic read-set after every operation
//      (opacity), and
//   3. commit: semantic two-phase locking over only the involved nodes,
//      commit-time validation, then publication of the semantic write-set
//      in descending key order (§3.2.1's three commit guidelines, Fig 3.2).
//
// Structure-specific optimisations from the paper:
//   * contains() and unsuccessful add/remove acquire no locks, ever;
//   * successful contains / unsuccessful add validate only !curr.marked;
//   * add/remove pairs on the same key eliminate each other locally,
//     leaving their read-set entries behind (isolation is preserved);
//   * inserted nodes stay locked until the whole commit finishes.
//
// Step 1's traversal is additionally seeded by the two-level hint layer
// (traversal_hints.h): the walk may start from a previously validated
// predecessor instead of head_, but everything after the walk — the marked
// checks, read-set logging, and post-validation — is byte-for-byte the
// no-hint protocol, so hints cannot weaken opacity (DESIGN.md, "Traversal
// hints and opacity").
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/epoch.h"
#include "common/small_vec.h"
#include "common/spinlock.h"
#include "otb/mv.h"
#include "otb/otb_ds.h"
#include "otb/traversal_hints.h"

namespace otb::tx {

class OtbListSet final : public OtbDs {
 public:
  using Key = std::int64_t;

  OtbListSet() {
    head_ = new Node(std::numeric_limits<Key>::min());
    tail_ = new Node(std::numeric_limits<Key>::max());
    head_->next.store(tail_, std::memory_order_release);
    // Stamp-0 version so snapshot walks see the empty list from the start.
    std::uint64_t unused = 0;
    mv_push(head_->mv, tail_, 0, unused);
  }

  ~OtbListSet() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  OtbListSet(const OtbListSet&) = delete;
  OtbListSet& operator=(const OtbListSet&) = delete;

  // ---- transactional operations -----------------------------------------

  /// Transactional insert; false when the key is already present (which the
  /// paper treats as a read-only outcome — no semantic lock at commit).
  bool add(TxHost& tx, Key key) { return operation(tx, Op::kAdd, key); }

  /// Transactional remove; false when absent.
  bool remove(TxHost& tx, Key key) { return operation(tx, Op::kRemove, key); }

  /// Transactional membership test; never acquires locks.
  bool contains(TxHost& tx, Key key) { return operation(tx, Op::kContains, key); }

  // ---- snapshot (multi-version) reads ------------------------------------

  /// Membership as of the snapshot's stamp for this structure.  Walks the
  /// version chains exclusively: no read-set, no locks, no validation.
  /// Throws SnapshotMiss when a chain can no longer serve the stamp.
  bool contains_at(SnapshotTx& snap, Key key) const {
    const std::uint64_t t = snap.stamp_for(commit_seq());
    const Node* c = head_;
    for (;;) {
      const Node* nx = mv_next_at(snap, c, t);
      if (nx->key >= key) return nx->key == key;
      c = nx;
    }
  }

  bool supports_snapshot_reads() const override { return true; }

  // ---- non-transactional helpers (setup / verification) -----------------

  /// Sequential insert used to seed benchmarks; not thread-safe.
  bool add_seq(Key key) {
    auto [pred, curr] = locate(key);
    if (curr->key == key) return false;
    Node* node = new Node(key);
    node->next.store(curr, std::memory_order_relaxed);
    pred->next.store(node, std::memory_order_release);
    // Seed versions at the current (quiescent — seq paths are not
    // thread-safe) begin count so chain stamps stay monotone.
    const std::uint64_t ts = commit_seq().begin_count();
    std::uint64_t unused = 0;
    mv_push(node->mv, curr, ts, unused);
    mv_push(pred->mv, node, ts, unused);
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  std::vector<Key> snapshot_unsafe() const {
    std::vector<Key> out;
    for (const Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) out.push_back(c->key);
    }
    return out;
  }

  // ---- OTB-DS protocol (§4.1.2) ------------------------------------------

  std::unique_ptr<OtbDsDesc> make_desc() const override {
    return std::make_unique<Desc>();
  }

  bool validate(const OtbDsDesc& base, bool check_locks) const override {
    const Desc& desc = static_cast<const Desc&>(base);
    // Phase 1: snapshot the involved locks and require them free.  The
    // scratch lives in the descriptor so repeated validations of one
    // transaction reuse the same storage (zero-allocation hot path).
    SmallVec<std::uint64_t, 2 * Desc::kInline>& snaps = desc.snaps;
    snaps.clear();
    if (check_locks) {
      snaps.reserve(desc.reads.size() * 2);
      for (const ReadEntry& e : desc.reads) {
        const std::uint64_t p = e.pred->lock.load();
        const std::uint64_t c = e.curr->lock.load();
        if (VersionedLock::is_locked(p) || VersionedLock::is_locked(c)) return false;
        snaps.push_back(p);
        snaps.push_back(c);
      }
    }
    // Phase 2: semantic checks.
    for (const ReadEntry& e : desc.reads) {
      if (!validate_entry(e)) return false;
    }
    // Phase 3: lock versions unchanged while we validated.
    if (check_locks) {
      std::size_t i = 0;
      for (const ReadEntry& e : desc.reads) {
        if (e.pred->lock.load() != snaps[i++]) return false;
        if (e.curr->lock.load() != snaps[i++]) return false;
      }
    }
    return true;
  }

  bool pre_commit(OtbDsDesc& base, bool use_locks) override {
    Desc& desc = static_cast<Desc&>(base);
    if (desc.writes.empty()) return true;  // read-only: nothing to do
    // Guideline 2 (§3.2.1): publish in descending key order.
    std::sort(desc.writes.begin(), desc.writes.end(),
              [](const WriteEntry& a, const WriteEntry& b) { return a.key > b.key; });
    if (use_locks && !acquire_semantic_locks(desc)) return false;
    // Commit-time validation: lock versions need no re-check, the involved
    // nodes are locked by us.
    return validate(desc, /*check_locks=*/false);
  }

  void do_on_commit(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    ebr::Guard guard;
    for (const WriteEntry& e : desc.writes) {
      // Guideline 3: resume traversal from the saved pred; every node on the
      // resumed path is either the saved pred or a node this transaction
      // inserted (and holds locked), so the walk is race-free.
      Node* pred = e.pred;
      Node* curr = pred->next.load(std::memory_order_acquire);
      while (curr->key < e.key) {
        pred = curr;
        curr = pred->next.load(std::memory_order_acquire);
      }
      if (e.op == Op::kAdd) {
        Node* node = new Node(e.key);
        node->lock.try_lock();  // guideline 1: new nodes stay locked
        desc.locked.push_back(node);
        node->next.store(curr, std::memory_order_relaxed);
        pred->next.store(node, std::memory_order_release);
        // Version the insert: the new node's own chain gets its initial
        // successor (uniform resolve rule for nodes born at this stamp) and
        // pred's chain records the link change.
        mv_push(node->mv, curr, desc.mv_stamp, desc.mv_reclaimed);
        mv_push(pred->mv, node, desc.mv_stamp, desc.mv_reclaimed);
      } else {  // kRemove: curr is the victim (validation pinned it)
        Node* after = curr->next.load(std::memory_order_relaxed);
        curr->marked.store(true, std::memory_order_release);
        pred->next.store(after, std::memory_order_release);
        // Version the unlink: snapshots at stamps >= this one bypass curr.
        mv_push(pred->mv, after, desc.mv_stamp, desc.mv_reclaimed);
        ebr::retire(curr);
      }
    }
  }

  void do_post_commit(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    for (Node* n : desc.locked) n->lock.unlock_new_version();
    desc.locked.clear();
  }

  void do_on_abort(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    // Nothing was published (on_commit never fails); release what we locked
    // without disturbing versions.
    for (Node* n : desc.locked) n->lock.unlock_same_version();
    desc.locked.clear();
  }

  bool has_writes(const OtbDsDesc& base) const override {
    return !static_cast<const Desc&>(base).writes.empty();
  }

  std::size_t write_count(const OtbDsDesc& base) const override {
    return static_cast<const Desc&>(base).writes.size();
  }

 private:
  enum class Op : std::uint8_t { kAdd, kRemove, kContains };

  struct Node {
    explicit Node(Key k) : key(k) {}
    ~Node() { delete mv; }
    const Key key;
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    VersionedLock lock;
    /// Bounded version chain of this node's successive `next` values
    /// (nullptr when OTB_MV_VERSIONS was 0 at construction).
    MvChain* const mv = mv_make_chain();
  };

  struct ReadEntry {
    Node* pred;
    Node* curr;
    Op op;
    bool success = false;
  };

  struct WriteEntry {
    Node* pred;
    Node* curr;
    Op op;  // kAdd or kRemove only
    Key key;
  };

  struct Desc final : OtbDsDesc {
    /// Inline capacity: typical transactions run 1–5 operations (the
    /// paper's workloads); 8 keeps them heap-free with headroom.
    static constexpr std::size_t kInline = 8;
    SmallVec<ReadEntry, kInline> reads;
    SmallVec<WriteEntry, kInline> writes;
    // Up to two locks (pred + victim) per write, plus one per inserted node.
    SmallVec<Node*, 2 * kInline> locked;  // semantic locks held (commit phase only)
    /// Scratch for validate()'s lock snapshots (two words per read entry).
    mutable SmallVec<std::uint64_t, 2 * kInline> snaps;
    /// Level-1 traversal hints: key-ordered positions this transaction's own
    /// operations landed on.  Deliberately NOT cleared by reset() — a pooled
    /// descriptor hands them to the retry attempt, which inherits the
    /// already-proven positions; staleness is epoch-gated at consult time
    /// (hint::age_gate).
    SmallVec<LocalHint<Node>, 2 * kInline> hints;
    /// Oldest announce epoch any surviving hint was recorded under.
    std::uint64_t hint_epoch = 0;

    void reset() override {
      reads.clear();
      writes.clear();
      locked.clear();
      snaps.clear();
      OtbDsDesc::reset();
    }
  };

  /// Algorithm 1 (all three operations share its skeleton).
  bool operation(TxHost& tx, Op op, Key key) {
    Desc& desc = static_cast<Desc&>(tx.descriptor(*this));

    // Step 1: consult the local semantic write-set first.
    if (const WriteEntry* w = find_local(desc, key)) {
      if (w->op == Op::kAdd) {
        switch (op) {
          case Op::kAdd:
            return false;
          case Op::kContains:
            return true;
          case Op::kRemove:
            erase_local(desc, key);  // elimination; read-set entry remains
            return true;
        }
      } else {  // pending remove
        switch (op) {
          case Op::kRemove:
          case Op::kContains:
            return false;
          case Op::kAdd:
            erase_local(desc, key);  // elimination
            return true;
        }
      }
    }

    // Step 2: unmonitored traversal, seeded by the hint layer when enabled
    // (the entry point is advisory; everything after the walk is the
    // unchanged protocol).  Re-traverse when we land on a node mid-removal
    // so we never record an entry that is doomed to fail.
    metrics::TxTally& tally = tx.op_tally();
    const bool hints_on = traversal_hints_enabled();
    HintSource src = HintSource::kNone;
    Node* start =
        hints_on ? hint::pick_start(desc, key, hint_owner_id(), head_, src)
                 : head_;
    std::uint64_t steps = 0;
    Node* pred;
    Node* curr;
    for (;;) {
      std::tie(pred, curr) = locate_from(start, key, steps);
      if (!pred->marked.load(std::memory_order_acquire) &&
          !curr->marked.load(std::memory_order_acquire)) {
        break;
      }
      if (start != head_) {
        // Stale hint: no validation failed, so this is not a conflict —
        // just fall back to the full from-head traversal.
        start = head_;
        src = HintSource::kNone;
        continue;
      }
      tx.on_operation_validate();  // throws TxAbort when our snapshot broke
    }
    if (hints_on) {
      hint::count(tally, src);
      hint::remember(desc, hint_owner_id(), pred, curr, head_, tail_);
    }
    hint::sample_traversal(tally, steps);

    // Step 4 (decide + log); the host runs step 3 (post-validation) below.
    const bool found = curr->key == key;
    bool success = false;
    switch (op) {
      case Op::kAdd:
        success = !found;
        break;
      case Op::kRemove:
      case Op::kContains:
        success = found;
        break;
    }
    desc.reads.push_back({pred, curr, op, success});
    if (success && op != Op::kContains) {
      if (desc.writes.empty()) {
        // First write: pre-size the commit-path set so pre_commit/on_commit
        // (which run while semantic locks are held) never grow storage.
        // Both reserves are no-ops until a transaction exceeds the inline
        // capacity, i.e. for every typical workload.
        desc.writes.reserve(Desc::kInline);
        desc.locked.reserve(2 * Desc::kInline);
      }
      desc.writes.push_back({pred, curr, op, key});
    }

    // Step 3: post-validate everything the transaction has read so far.
    tx.on_operation_validate();
    return success;
  }

  bool validate_entry(const ReadEntry& e) const {
    const bool curr_live = !e.curr->marked.load(std::memory_order_acquire);
    if ((e.op == Op::kContains && e.success) || (e.op == Op::kAdd && !e.success)) {
      // Optimised rule: the found node just has to stay in the set; changes
      // to pred are not semantic conflicts (§3.2.1).
      return curr_live;
    }
    return curr_live && !e.pred->marked.load(std::memory_order_acquire) &&
           e.pred->next.load(std::memory_order_acquire) == e.curr;
  }

  /// Lock pred for adds, pred+curr for removes (the lazy-list rule), with
  /// pointer dedup.  CAS failure releases everything and reports false.
  bool acquire_semantic_locks(Desc& desc) {
    auto lock_one = [&](Node* n) -> bool {
      for (Node* held : desc.locked) {
        if (held == n) return true;
      }
      if (!n->lock.try_lock()) return false;
      desc.locked.push_back(n);
      return true;
    };
    for (const WriteEntry& e : desc.writes) {
      if (!lock_one(e.pred)) return false;
      if (e.op == Op::kRemove && !lock_one(e.curr)) return false;
    }
    return true;
  }

  /// Linear write-set lookup — deliberate: write-sets hold a handful of
  /// entries (≤ Desc::kInline in every paper workload), where a flat scan
  /// beats hashing.  Crossover guard: if transactions ever carry ~32+
  /// writes, replace with a small key-indexed table; do not "fix" this for
  /// typical sizes.
  const WriteEntry* find_local(const Desc& desc, Key key) const {
    for (const WriteEntry& w : desc.writes) {
      if (w.key == key) return &w;
    }
    return nullptr;
  }

  void erase_local(Desc& desc, Key key) {
    for (auto it = desc.writes.begin(); it != desc.writes.end(); ++it) {
      if (it->key == key) {
        desc.writes.erase(it);
        return;
      }
    }
  }

  /// Successor of `n` as of stamp `t` (snapshot walk step).  Misses when
  /// the node carries no chain or the ring overflowed past `t`.
  const Node* mv_next_at(SnapshotTx& snap, const Node* n, std::uint64_t t) const {
    if (n->mv == nullptr) throw SnapshotMiss{};
    const MvChain::Resolved r = n->mv->resolve_at(t);
    snap.sample_chain_depth(r.depth);
    if (!r.found) throw SnapshotMiss{};
    return static_cast<const Node*>(r.ptr);
  }

  std::pair<Node*, Node*> locate(Key key) const {
    std::uint64_t steps = 0;
    return locate_from(head_, key, steps);
  }

  std::pair<Node*, Node*> locate_from(Node* start, Key key,
                                      std::uint64_t& steps) const {
    Node* pred = start;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = pred->next.load(std::memory_order_acquire);
      ++steps;
    }
    return {pred, curr};
  }

  Node* head_;
  Node* tail_;
};

}  // namespace otb::tx
