// The OTB data-structure interface (DESIGN.md item #23's "OTB-DS").
//
// Every optimistically boosted structure exposes the five sub-routines the
// paper's framework extension defines (§4.1.2): validation with and without
// semantic-lock checks, and the preCommit / onCommit / postCommit commit
// protocol (plus onAbort).  A structure keeps **no** per-transaction state
// of its own; all semantic read/write sets live in a per-transaction
// descriptor owned by the hosting transaction (`TxHost`), which may be the
// standalone OTB runtime (§3) or an OTB-aware STM context (§4).
//
// Two hot-path mechanisms live at this layer (DESIGN.md "Commit-sequence
// fast path"):
//   * every structure carries a cache-line-aligned `CommitSeq`; the
//     non-virtual on_commit/post_commit wrappers bracket publication with
//     it, and `validate_gated()` lets hosts skip the O(read-set) semantic
//     re-scan entirely when no publication happened since the descriptor's
//     last successful full validation (snapshot extension preserves
//     opacity);
//   * descriptors are poolable: `OtbDsDesc::reset()` returns one to its
//     freshly-made state so `TxHost` can recycle it across retry attempts
//     instead of re-running `make_desc()` (zero-allocation retries).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/commit_seq.h"
#include "common/tx_abort.h"
#include "metrics/tally.h"
#include "otb/mv.h"

namespace otb::tx {

// ---- validation fast-path knob ---------------------------------------------

namespace detail {
inline std::atomic<bool>& fast_path_flag() {
  static std::atomic<bool> flag{[] {
    // Env knob for whole-binary forcing (stress/CI); the programmatic
    // setter below covers in-process toggling.
    const char* env = std::getenv("OTB_VALIDATION_FAST_PATH");
    return !(env != nullptr && (env[0] == '0' || env[0] == 'n' || env[0] == 'N' ||
                                env[0] == 'f' || env[0] == 'F'));
  }()};
  return flag;
}
}  // namespace detail

/// Whether `validate_gated` may skip the semantic re-scan when the commit
/// sequence is unchanged.  On by default; `OTB_VALIDATION_FAST_PATH=0`
/// disables it for a whole run.
inline bool validation_fast_path_enabled() {
  return detail::fast_path_flag().load(std::memory_order_relaxed);
}

/// Programmatic override (tests exercise both settings in one process).
inline void set_validation_fast_path(bool on) {
  detail::fast_path_flag().store(on, std::memory_order_relaxed);
}

// ---- descriptors ------------------------------------------------------------

/// Base class of per-transaction, per-structure descriptors (semantic
/// read-set + semantic write-set/redo-log).
struct OtbDsDesc {
  virtual ~OtbDsDesc() = default;

  /// Return the descriptor to its freshly-`make_desc()`'d state so the host
  /// can reuse it for the next attempt.  Overrides must call the base.
  virtual void reset() {
    seq_snapshot = CommitSeq::kNoSnapshot;
    publishing = false;
    mv_stamp = 0;
    mv_reclaimed = 0;
  }

  /// Commit-sequence begin-count at this descriptor's last successful full
  /// validation of the owning structure (while quiescent and stable).
  std::uint64_t seq_snapshot = CommitSeq::kNoSnapshot;

  /// Set between the owning structure's on_commit/post_commit wrappers while
  /// this transaction's publication window is open.
  bool publishing = false;

  /// Commit stamp of this transaction's publication into the owning
  /// structure (the publish_begin return value) — the timestamp do_on_commit
  /// pushes into version chains.  0 outside the publication window.
  std::uint64_t mv_stamp = 0;

  /// Ring evictions this publication caused (versions "reclaimed" out of
  /// chains); the host flushes it into kMvVersionsReclaimed.
  std::uint64_t mv_reclaimed = 0;
};

/// Result of a gated validation — hosts count kFast/kFull separately
/// (metrics `kValidationsFast` / `kValidationsFull`).
enum class ValidateOutcome : std::uint8_t { kFailed, kFast, kFull };

/// Interface every boosted data structure implements so a transaction host
/// can drive its validation/commit protocol generically.
class OtbDs {
 public:
  virtual ~OtbDs() = default;

  /// Fresh, empty descriptor for a new transaction.
  virtual std::unique_ptr<OtbDsDesc> make_desc() const = 0;

  /// Semantic validation of the descriptor's read-set.  With
  /// `check_locks` the semantic locks are snapshotted before and re-checked
  /// after (post-validation during execution); without, only values are
  /// checked (commit-time validation while the locks are held, or hosts
  /// whose global lock subsumes semantic locks — OTB-NOrec, §4.2.2).
  virtual bool validate(const OtbDsDesc& desc, bool check_locks) const = 0;

  /// Commit-sequence-gated validation: when no publication started since
  /// this descriptor's last successful full validation, the read-set is
  /// untouched and the scan is skipped (kFast — a single acquire load).
  /// Otherwise the full scan runs, and on success the snapshot is extended
  /// iff the structure was quiescent and stable across the scan — the
  /// TL2/NOrec revalidate-and-extend argument: a successful full validation
  /// over state frozen at begin-count B proves the whole transaction could
  /// have run against that state, so B is a sound new snapshot.
  ValidateOutcome validate_gated(OtbDsDesc& desc, bool check_locks) const {
    // end_ before begin_: begin == end then proves every publication that
    // had begun by the (later) begin_ load had already ended by the end_
    // load — i.e. the structure was quiescent at some point before the scan.
    const std::uint64_t end = seq_.end_count();
    const std::uint64_t begin = seq_.begin_count();
    if (begin == desc.seq_snapshot && validation_fast_path_enabled()) {
      return ValidateOutcome::kFast;
    }
    if (!validate(desc, check_locks)) return ValidateOutcome::kFailed;
    // Extend only if no publication was in flight before the scan and none
    // began during it; an unstable window just means "no extension", never
    // a spin — the next operation revalidates again.
    if (begin == end && seq_.begin_count() == begin) desc.seq_snapshot = begin;
    return ValidateOutcome::kFull;
  }

  /// Acquire semantic locks (when `use_locks`) and run commit-time
  /// validation.  Returns false on failure; the caller must then invoke
  /// on_abort() on every attached structure.
  virtual bool pre_commit(OtbDsDesc& desc, bool use_locks) = 0;

  /// Publish the semantic write-set to the shared structure.  Non-virtual:
  /// opens the commit-sequence publication window around the structure's
  /// `do_on_commit` when there is anything to publish.
  void on_commit(OtbDsDesc& desc) {
    if (has_writes(desc)) {
      desc.mv_stamp = seq_.publish_begin();
      desc.publishing = true;
    }
    do_on_commit(desc);
  }

  /// Release semantic locks acquired by pre_commit and close the
  /// publication window.
  void post_commit(OtbDsDesc& desc) {
    do_post_commit(desc);
    if (desc.publishing) {
      desc.publishing = false;
      seq_.publish_end();
    }
  }

  /// Release any locks still held after a failed pre_commit / host abort.
  /// Also closes the publication window defensively — no host currently
  /// aborts between on_commit and post_commit, but a leaked open window
  /// would wedge the fast path's quiescence test forever.
  void on_abort(OtbDsDesc& desc) {
    do_on_abort(desc);
    if (desc.publishing) {
      desc.publishing = false;
      seq_.publish_end();
    }
  }

  /// Whether the descriptor carries deferred writes — hosts use this to keep
  /// read-only transactions on their lock-free commit path.
  virtual bool has_writes(const OtbDsDesc& desc) const = 0;

  /// Number of deferred write operations (used by the simulated-HTM commit
  /// path to model capacity limits).
  virtual std::size_t write_count(const OtbDsDesc& desc) const {
    return has_writes(desc) ? 1 : 0;
  }

  /// Whether the structure offers the multi-version snapshot-read path
  /// (`*_at(SnapshotTx&, ...)` operations).  Structures with eager effects
  /// under a global lock (the array heap PQ) cannot, so read-only scripts
  /// touching them stay on the validated path.
  virtual bool supports_snapshot_reads() const { return false; }

  /// This structure's commit sequence (tests assert on its movement).
  const CommitSeq& commit_seq() const { return seq_; }

  /// Process-unique id keying this structure in the cross-transaction
  /// predecessor cache (`PredCache`).  Ids are never reused, so a cached
  /// entry can never alias a different structure reincarnated at the same
  /// address — destroying a structure implicitly orphans its cache entries.
  std::uint64_t hint_owner_id() const { return hint_id_; }

  /// The same id doubles as the structure's rank in the GLOBAL cross-
  /// structure lock-acquisition order: a host that pre-commits multiple
  /// structures does so in ascending structure_id(), and each structure's
  /// own pre_commit locks its keys in one fixed order (the list structures
  /// use descending key order — their on_commit publication walk requires
  /// higher keys first), so the combined (structure id, key-order) is total
  /// across the process (DESIGN.md "Cross-structure lock order").  Locks
  /// are try-acquired with abort-and-retry, so the order matters for
  /// livelock avoidance, not deadlock freedom.
  std::uint64_t structure_id() const { return hint_id_; }

 protected:
  virtual void do_on_commit(OtbDsDesc& desc) = 0;
  virtual void do_post_commit(OtbDsDesc& desc) = 0;
  virtual void do_on_abort(OtbDsDesc& desc) = 0;

 private:
  static std::uint64_t next_hint_owner_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  CommitSeq seq_;
  const std::uint64_t hint_id_ = next_hint_owner_id();
};

// ---- transaction host -------------------------------------------------------

/// A detached set of parked (reset) descriptors keyed by structure — the
/// unit of descriptor hand-off between commit units under transaction
/// fusion (src/service/fusion.h, TxHost::take/adopt_descriptor_pool).
using DescriptorPool = std::vector<std::pair<OtbDs*, std::unique_ptr<OtbDsDesc>>>;

/// A transaction host: owns the per-structure descriptors and decides how
/// operation post-validation composes with its own state (memory read-sets
/// for STM hosts, nothing extra for the standalone runtime).
class TxHost {
 public:
  virtual ~TxHost() = default;

  /// Descriptor for `ds`, attaching the structure on first use (§4.1.2
  /// "attachSet").  Aborted attempts park their descriptors in `pool_`
  /// (see recycle_attached), so a retry re-attaches without allocating.
  ///
  /// Both lookups are deliberate linear scans: transactions attach a
  /// handful of structures (the paper's workloads use one or two), and at
  /// those sizes a flat scan beats any map by a wide margin.  If a workload
  /// ever attaches tens of structures per transaction, the crossover is
  /// roughly at 16+ entries — switch `attached_` to a small open-addressed
  /// table keyed by the `OtbDs*` then, not before.
  OtbDsDesc& descriptor(OtbDs& ds) {
    for (auto& [attached, desc] : attached_) {
      if (attached == &ds) return *desc;
    }
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      if (it->first == &ds) {
        attached_.emplace_back(it->first, std::move(it->second));
        pool_.erase(it);
        return *attached_.back().second;
      }
    }
    attached_.emplace_back(&ds, ds.make_desc());
    return *attached_.back().second;
  }

  /// Post-validation hook run after every boosted operation (§4.1.2
  /// "onOperationValidate").  Throws TxAbort on failure.
  virtual void on_operation_validate() = 0;

  /// Tally structures account per-operation instrumentation into
  /// (traversal lengths, hint hits/misses).  Hosts bind their attempt tally
  /// via bind_op_tally(); an unbound host falls back to a thread-local
  /// scratch that is never flushed, so structure code can tick
  /// unconditionally.
  metrics::TxTally& op_tally() {
    if (op_tally_ != nullptr) return *op_tally_;
    thread_local metrics::TxTally scratch;
    return scratch;
  }

  const std::vector<std::pair<OtbDs*, std::unique_ptr<OtbDsDesc>>>& attached() const {
    return attached_;
  }

  /// Harvest the parked descriptor pool, leaving this host's pool empty.
  /// Every failed attempt ends in recycle_attached(), so after an exhausted
  /// retry loop the pool holds one reset descriptor per structure the
  /// transaction touched — exactly what a fusion donor ships to its
  /// adopter.  Callers own the structure-lifetime obligation: the pool must
  /// not outlive the structures it references.
  DescriptorPool take_descriptor_pool() {
    DescriptorPool out = std::move(pool_);
    pool_.clear();
    return out;
  }

  /// Merge a donated pool into this host's pool, keeping at most one parked
  /// descriptor per structure (duplicates against both `pool_` and the
  /// currently attached set are dropped).  Descriptors arrive reset — every
  /// park path resets first — but reset again defensively: a stale
  /// read/write set smuggled across commit units would corrupt validation.
  void adopt_descriptor_pool(DescriptorPool&& donated) {
    for (auto& [ds, desc] : donated) {
      if (desc == nullptr) continue;  // moved-from slot
      bool dup = false;
      for (const auto& [mine, unused] : pool_) {
        if (mine == ds) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        for (const auto& [mine, unused] : attached_) {
          if (mine == ds) {
            dup = true;
            break;
          }
        }
      }
      if (dup) continue;
      desc->reset();
      pool_.emplace_back(ds, std::move(desc));
    }
    donated.clear();
  }

  std::size_t descriptor_pool_size() const { return pool_.size(); }

 protected:
  void bind_op_tally(metrics::TxTally* tally) { op_tally_ = tally; }

  /// Validate every attached structure through the commit-sequence gate
  /// (helper for hosts).  `fast`/`full`, when given, accumulate per-
  /// structure fast-path hits and full scans for the host's tally.
  bool validate_attached(bool check_locks, std::uint64_t* fast = nullptr,
                         std::uint64_t* full = nullptr) {
    for (auto& [ds, desc] : attached_) {
      switch (ds->validate_gated(*desc, check_locks)) {
        case ValidateOutcome::kFailed:
          return false;
        case ValidateOutcome::kFast:
          if (fast != nullptr) ++*fast;
          break;
        case ValidateOutcome::kFull:
          if (full != nullptr) ++*full;
          break;
      }
    }
    return true;
  }

  /// pre_commit every structure; on failure, roll back the ones already
  /// locked and report false.
  ///
  /// Structures are visited in ascending structure_id() — combined with the
  /// per-structure ascending-key lock order inside each pre_commit, every
  /// transaction in the process acquires semantic locks along one total
  /// (structure id, key) order.  pre_commit lock grabs are try_lock
  /// (fail -> abort, never block), so this is not needed for deadlock
  /// freedom; it makes the failure point deterministic and keeps two
  /// multi-structure writers from repeatedly aborting each other from
  /// opposite ends (the same livelock argument as the PR 5 batch key sort,
  /// now lifted across heterogeneous structures — DESIGN.md
  /// "Cross-structure lock order").
  bool pre_commit_attached(bool use_locks) {
    if (attached_.size() > 1) {
      std::sort(attached_.begin(), attached_.end(),
                [](const auto& a, const auto& b) {
                  return a.first->structure_id() < b.first->structure_id();
                });
    }
    for (std::size_t i = 0; i < attached_.size(); ++i) {
      if (!attached_[i].first->pre_commit(*attached_[i].second, use_locks)) {
        for (std::size_t j = 0; j <= i; ++j) {
          attached_[j].first->on_abort(*attached_[j].second);
        }
        return false;
      }
    }
    return true;
  }

  void on_commit_attached() {
    for (auto& [ds, desc] : attached_) {
      ds->on_commit(*desc);
      if (desc->mv_reclaimed != 0) {
        op_tally().mv_versions_reclaimed += desc->mv_reclaimed;
        desc->mv_reclaimed = 0;
      }
    }
  }

  void post_commit_attached() {
    for (auto& [ds, desc] : attached_) ds->post_commit(*desc);
  }

  void on_abort_attached() {
    for (auto& [ds, desc] : attached_) ds->on_abort(*desc);
  }

  /// Drop the attached descriptors (commit path / defensive re-begin).
  void clear_attached() { attached_.clear(); }

  /// Reset the attached descriptors and park them for reuse by the next
  /// attempt of the *same* logical transaction — the zero-allocation retry
  /// path.  The pool must not outlive the retry loop (structure addresses
  /// could be reused across calls): commits end with drop_descriptor_pool().
  void recycle_attached() {
    for (auto& [ds, desc] : attached_) {
      desc->reset();
      pool_.emplace_back(ds, std::move(desc));
    }
    attached_.clear();
  }

  void drop_descriptor_pool() { pool_.clear(); }

  bool any_attached_writes() const {
    for (const auto& [ds, desc] : attached_) {
      if (ds->has_writes(*desc)) return true;
    }
    return false;
  }

  std::size_t attached_write_count() const {
    std::size_t n = 0;
    for (const auto& [ds, desc] : attached_) n += ds->write_count(*desc);
    return n;
  }

  std::vector<std::pair<OtbDs*, std::unique_ptr<OtbDsDesc>>> attached_;
  std::vector<std::pair<OtbDs*, std::unique_ptr<OtbDsDesc>>> pool_;

 private:
  metrics::TxTally* op_tally_ = nullptr;
};

}  // namespace otb::tx
