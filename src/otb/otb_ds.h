// The OTB data-structure interface (DESIGN.md item #23's "OTB-DS").
//
// Every optimistically boosted structure exposes the five sub-routines the
// paper's framework extension defines (§4.1.2): validation with and without
// semantic-lock checks, and the preCommit / onCommit / postCommit commit
// protocol (plus onAbort).  A structure keeps **no** per-transaction state
// of its own; all semantic read/write sets live in a per-transaction
// descriptor owned by the hosting transaction (`TxHost`), which may be the
// standalone OTB runtime (§3) or an OTB-aware STM context (§4).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/tx_abort.h"

namespace otb::tx {

/// Base class of per-transaction, per-structure descriptors (semantic
/// read-set + semantic write-set/redo-log).
struct OtbDsDesc {
  virtual ~OtbDsDesc() = default;
};

/// Interface every boosted data structure implements so a transaction host
/// can drive its validation/commit protocol generically.
class OtbDs {
 public:
  virtual ~OtbDs() = default;

  /// Fresh, empty descriptor for a new transaction.
  virtual std::unique_ptr<OtbDsDesc> make_desc() const = 0;

  /// Semantic validation of the descriptor's read-set.  With
  /// `check_locks` the semantic locks are snapshotted before and re-checked
  /// after (post-validation during execution); without, only values are
  /// checked (commit-time validation while the locks are held, or hosts
  /// whose global lock subsumes semantic locks — OTB-NOrec, §4.2.2).
  virtual bool validate(const OtbDsDesc& desc, bool check_locks) const = 0;

  /// Acquire semantic locks (when `use_locks`) and run commit-time
  /// validation.  Returns false on failure; the caller must then invoke
  /// on_abort() on every attached structure.
  virtual bool pre_commit(OtbDsDesc& desc, bool use_locks) = 0;

  /// Publish the semantic write-set to the shared structure.
  virtual void on_commit(OtbDsDesc& desc) = 0;

  /// Release semantic locks acquired by pre_commit.
  virtual void post_commit(OtbDsDesc& desc) = 0;

  /// Release any locks still held after a failed pre_commit / host abort.
  virtual void on_abort(OtbDsDesc& desc) = 0;

  /// Whether the descriptor carries deferred writes — hosts use this to keep
  /// read-only transactions on their lock-free commit path.
  virtual bool has_writes(const OtbDsDesc& desc) const = 0;

  /// Number of deferred write operations (used by the simulated-HTM commit
  /// path to model capacity limits).
  virtual std::size_t write_count(const OtbDsDesc& desc) const {
    return has_writes(desc) ? 1 : 0;
  }
};

/// A transaction host: owns the per-structure descriptors and decides how
/// operation post-validation composes with its own state (memory read-sets
/// for STM hosts, nothing extra for the standalone runtime).
class TxHost {
 public:
  virtual ~TxHost() = default;

  /// Descriptor for `ds`, attaching the structure on first use (§4.1.2
  /// "attachSet").
  OtbDsDesc& descriptor(OtbDs& ds) {
    for (auto& [attached, desc] : attached_) {
      if (attached == &ds) return *desc;
    }
    attached_.emplace_back(&ds, ds.make_desc());
    return *attached_.back().second;
  }

  /// Post-validation hook run after every boosted operation (§4.1.2
  /// "onOperationValidate").  Throws TxAbort on failure.
  virtual void on_operation_validate() = 0;

  const std::vector<std::pair<OtbDs*, std::unique_ptr<OtbDsDesc>>>& attached() const {
    return attached_;
  }

 protected:
  /// Validate every attached structure (helper for hosts).
  bool validate_attached(bool check_locks) const {
    for (const auto& [ds, desc] : attached_) {
      if (!ds->validate(*desc, check_locks)) return false;
    }
    return true;
  }

  /// pre_commit every structure; on failure, roll back the ones already
  /// locked and report false.
  bool pre_commit_attached(bool use_locks) {
    for (std::size_t i = 0; i < attached_.size(); ++i) {
      if (!attached_[i].first->pre_commit(*attached_[i].second, use_locks)) {
        for (std::size_t j = 0; j <= i; ++j) {
          attached_[j].first->on_abort(*attached_[j].second);
        }
        return false;
      }
    }
    return true;
  }

  void on_commit_attached() {
    for (auto& [ds, desc] : attached_) ds->on_commit(*desc);
  }

  void post_commit_attached() {
    for (auto& [ds, desc] : attached_) ds->post_commit(*desc);
  }

  void on_abort_attached() {
    for (auto& [ds, desc] : attached_) ds->on_abort(*desc);
  }

  void clear_attached() { attached_.clear(); }

  bool any_attached_writes() const {
    for (const auto& [ds, desc] : attached_) {
      if (ds->has_writes(*desc)) return true;
    }
    return false;
  }

  std::size_t attached_write_count() const {
    std::size_t n = 0;
    for (const auto& [ds, desc] : attached_) n += ds->write_count(*desc);
    return n;
  }

  std::vector<std::pair<OtbDs*, std::unique_ptr<OtbDsDesc>>> attached_;
};

}  // namespace otb::tx
