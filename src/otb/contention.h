// Lock-free union-find over transaction commit units — the arbitration core
// of the contention-manager subsystem (ISSUE 10, ROADMAP item 2).
//
// When two batched service transactions keep semantically conflicting, the
// fusion plane (src/service/fusion.h) merges them into ONE commit unit
// instead of letting both burn their attempt budgets.  The union-find here
// decides *who merges into whom*: every in-flight commit unit carries a
// UfNode, mutually-conflicting units are united, and the unique root is the
// worker that adopts everyone else's batch.  This is the OTM design point
// (open transactional memory merges conflicting transactions under a
// union-find with path compression and union by rank) transplanted onto
// OTB's batched service plane.
//
// Memory model & robustness contract:
//  * Nodes are plain structs of atomics.  All traversal loads are acquire,
//    all link installs are CAS with acq_rel; path compression is a benign
//    CAS race (losers simply keep the old — still correct — parent).
//  * Nodes are owned by a long-lived arena (the FusionPlane's per-worker
//    rings) and are RECYCLED, never freed, while any thread may still walk
//    them.  A recycled node can therefore appear mid-walk with a reset
//    parent, or a stale unite can stitch a transient cycle through it.
//    uf_find tolerates both: walks are bounded by kUfMaxHops and bail out
//    returning the current position.  Callers must treat find results as
//    advisory — and they do: ownership transfer is linearized by the fusion
//    plane's slot CAS, never by the union-find alone.
//  * rank is a heuristic (relaxed); losing a rank race costs balance, not
//    correctness.
#pragma once

#include <atomic>
#include <cstdint>

namespace otb::tx {

/// One commit unit's handle in the conflict forest.  parent == nullptr
/// means "I am a root".
struct UfNode {
  std::atomic<UfNode*> parent{nullptr};
  std::atomic<std::uint32_t> rank{0};

  /// Re-arm a recycled node for a fresh commit-unit episode.  Concurrent
  /// stale walkers may observe the reset mid-traversal; see the bounded-hop
  /// contract above.
  void reset() {
    parent.store(nullptr, std::memory_order_relaxed);
    rank.store(0, std::memory_order_relaxed);
  }
};

/// Walk budget: generous for any live forest (union by rank keeps depth
/// logarithmic) yet finite so a stale cycle through a recycled node cannot
/// hang a walker.
inline constexpr unsigned kUfMaxHops = 64;

/// Find the root of `n`'s set, compressing the path behind the walk.
/// Wait-free: bounded by kUfMaxHops regardless of concurrent mutation.
inline UfNode* uf_find(UfNode* n) {
  UfNode* cur = n;
  for (unsigned hop = 0; hop < kUfMaxHops; ++hop) {
    UfNode* p = cur->parent.load(std::memory_order_acquire);
    if (p == nullptr) return cur;
    UfNode* gp = p->parent.load(std::memory_order_acquire);
    if (gp != nullptr) {
      // Halving: splice cur past its parent.  A lost race means another
      // walker already improved (or recycled) the link — either is fine.
      cur->parent.compare_exchange_weak(p, gp, std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
      cur = gp;
    } else {
      cur = p;
    }
  }
  return cur;  // hop budget spent (stale cycle): advisory answer
}

/// Unite the sets of `a` and `b`; returns the observed root of the merged
/// set.  Ordering is (rank, address): the higher-ranked root wins, ties
/// break on address so two concurrent unites of the same pair agree on the
/// winner.  Lock-free: some thread's CAS succeeds every round; the hop cap
/// in uf_find plus a retry bound keep even the pathological recycled-node
/// case finite.
inline UfNode* uf_unite(UfNode* a, UfNode* b) {
  for (unsigned round = 0; round < kUfMaxHops; ++round) {
    UfNode* ra = uf_find(a);
    UfNode* rb = uf_find(b);
    if (ra == rb) return ra;
    const std::uint32_t ka = ra->rank.load(std::memory_order_relaxed);
    const std::uint32_t kb = rb->rank.load(std::memory_order_relaxed);
    UfNode* winner = ra;
    UfNode* loser = rb;
    if (ka < kb || (ka == kb && ra > rb)) {
      winner = rb;
      loser = ra;
    }
    UfNode* expected = nullptr;
    if (loser->parent.compare_exchange_strong(expected, winner,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      if (ka == kb) {
        winner->rank.fetch_add(1, std::memory_order_relaxed);
      }
      return winner;
    }
    // Someone linked `loser` first; re-find and retry.
  }
  return uf_find(a);  // advisory under pathological recycling
}

/// True when `a` and `b` are (observably) in the same set.  The classic
/// root-stability recheck: a positive answer is definite, a negative answer
/// can be stale the instant it is returned — acceptable for arbitration.
inline bool uf_same_set(UfNode* a, UfNode* b) {
  for (unsigned round = 0; round < kUfMaxHops; ++round) {
    UfNode* ra = uf_find(a);
    UfNode* rb = uf_find(b);
    if (ra == rb) return true;
    if (ra->parent.load(std::memory_order_acquire) == nullptr) return false;
    // ra got linked under someone between the two finds; retry.
  }
  return false;
}

}  // namespace otb::tx
