// Fully-optimistic OTB skip-list priority queue (§3.2.2, Algorithm 6).
//
// Wraps an internal OTB skip-list set: add/removeMin are deferred set
// operations, a per-transaction *local* sequential heap covers
// read-after-write (removing a minimum this transaction added), and the
// thread-local `last_removed` cursor walks the bottom level so repeated
// removeMin calls in one transaction pick successive shared minima without
// physically changing the list before commit.  No locks are taken until
// commit; min() is wait-free, unlike pessimistic boosting where it blocks
// on the global abstract write-lock.
//
// Traversal hints: add/removeMin route through the nested set's *_op entry
// points on the shared per-(tx, PQ) set descriptor, so the level-1/level-2
// hint layer (traversal_hints.h) applies here with no PQ-side code — the
// set descriptor carries the hints and the set's operation() consults them.
#pragma once

#include <cstdint>

#include "cds/binary_heap.h"
#include "otb/otb_ds.h"
#include "otb/otb_skiplist_set.h"

namespace otb::tx {

class OtbSkipListPQ final : public OtbDs {
 public:
  using Key = OtbSkipListSet::Key;

  // ---- transactional operations -----------------------------------------

  /// Insert a key (keys are unique, as in the paper's implementation);
  /// false when already present.
  bool add(TxHost& tx, Key key) {
    Desc& desc = this->desc(tx);
    if (!set_.add_op(tx, *desc.set, key)) return false;
    desc.local.add(key);
    return true;
  }

  /// Remove the minimum; false when the queue is observably empty.
  bool remove_min(TxHost& tx, Key* out) {
    Desc& desc = this->desc(tx);
    const auto shared = set_.next_ref(desc.last_removed);
    const bool shared_empty = set_.is_tail(shared);
    const Key shared_key = shared_empty ? 0 : set_.key_of(shared);

    if (!desc.local.empty() && (shared_empty || desc.local.min() < shared_key)) {
      // Local minimum wins.  Pin the shared minimum in the semantic read-set
      // so a concurrent smaller insert/remove aborts us at commit.
      if (!shared_empty) {
        if (!set_.contains_op(tx, *desc.set, shared_key)) throw TxAbort{metrics::AbortReason::kSemanticConflict};
        if (set_.next_ref(desc.last_removed) != shared) throw TxAbort{metrics::AbortReason::kSemanticConflict};
      }
      // Algorithm 6 pops the local heap; routing through the set eliminates
      // the pending add so commit publishes nothing for this key.
      const Key local_min = desc.local.min();
      if (!set_.remove_op(tx, *desc.set, local_min)) throw TxAbort{metrics::AbortReason::kSemanticConflict};
      desc.local.remove_min();
      *out = local_min;
      return true;
    }

    if (shared_empty) return false;
    if (!set_.remove_op(tx, *desc.set, shared_key)) throw TxAbort{metrics::AbortReason::kSemanticConflict};
    if (set_.next_ref(desc.last_removed) != shared) throw TxAbort{metrics::AbortReason::kSemanticConflict};
    desc.last_removed = shared;
    *out = shared_key;
    return true;
  }

  /// Read the minimum without removing it — wait-free, no locks (the key
  /// OTB advantage the paper highlights for getMin).
  bool min(TxHost& tx, Key* out) {
    Desc& desc = this->desc(tx);
    const auto shared = set_.next_ref(desc.last_removed);
    const bool shared_empty = set_.is_tail(shared);
    const Key shared_key = shared_empty ? 0 : set_.key_of(shared);

    if (!desc.local.empty() && (shared_empty || desc.local.min() < shared_key)) {
      if (!shared_empty) {
        if (!set_.contains_op(tx, *desc.set, shared_key)) throw TxAbort{metrics::AbortReason::kSemanticConflict};
        if (set_.next_ref(desc.last_removed) != shared) throw TxAbort{metrics::AbortReason::kSemanticConflict};
      }
      *out = desc.local.min();
      return true;
    }
    if (shared_empty) return false;
    if (!set_.contains_op(tx, *desc.set, shared_key)) throw TxAbort{metrics::AbortReason::kSemanticConflict};
    if (set_.next_ref(desc.last_removed) != shared) throw TxAbort{metrics::AbortReason::kSemanticConflict};
    *out = shared_key;
    return true;
  }

  // ---- snapshot (multi-version) reads -------------------------------------

  /// Minimum as of the snapshot's stamp — the abort-free counterpart of
  /// min().  Draws the stamp from *this* structure's clock (the one hosts
  /// bracket commits with) and reads the nested set's bottom level as of it.
  bool min_at(SnapshotTx& snap, Key* out) const {
    const std::uint64_t t = snap.stamp_for(commit_seq());
    return set_.first_at(snap, t, out);
  }

  bool supports_snapshot_reads() const override { return true; }

  bool add_seq(Key key) { return set_.add_seq(key); }
  std::size_t size_unsafe() const { return set_.size_unsafe(); }

  /// Quiescent-only ascending copy of the live keys (checkpoint path).
  std::vector<Key> snapshot_unsafe() const { return set_.snapshot_unsafe(); }

  // ---- OTB-DS protocol: delegate to the nested set descriptor -------------

  std::unique_ptr<OtbDsDesc> make_desc() const override {
    auto d = std::make_unique<Desc>();
    d->set = std::make_unique<OtbSkipListSet::Desc>();
    d->head = set_.head_ref();
    d->last_removed = d->head;
    return d;
  }

  bool validate(const OtbDsDesc& base, bool check_locks) const override {
    return set_.validate_desc(*static_cast<const Desc&>(base).set, check_locks);
  }
  bool pre_commit(OtbDsDesc& base, bool use_locks) override {
    return set_.pre_commit_desc(*static_cast<Desc&>(base).set, use_locks);
  }
  // The nested set is bracketed by *this* structure's commit sequence (the
  // PQ is the OtbDs hosts see), so delegation targets the set's unwrapped
  // `*_desc` protocol.
  void do_on_commit(OtbDsDesc& base) override {
    Desc& d = static_cast<Desc&>(base);
    // Forward the commit stamp (assigned on *this* structure's clock by the
    // on_commit wrapper) into the nested set desc so its version pushes are
    // stamped correctly, and roll the eviction tally back up.
    d.set->mv_stamp = d.mv_stamp;
    set_.on_commit_desc(*d.set);
    d.mv_reclaimed += d.set->mv_reclaimed;
    d.set->mv_reclaimed = 0;
  }
  void do_post_commit(OtbDsDesc& base) override {
    set_.post_commit_desc(*static_cast<Desc&>(base).set);
  }
  void do_on_abort(OtbDsDesc& base) override {
    set_.on_abort_desc(*static_cast<Desc&>(base).set);
  }
  bool has_writes(const OtbDsDesc& base) const override {
    return set_.has_writes(*static_cast<const Desc&>(base).set);
  }

 private:
  struct Desc final : OtbDsDesc {
    std::unique_ptr<OtbSkipListSet::Desc> set;
    cds::BinaryHeap local;  // read-after-write: minima this tx added
    OtbSkipListSet::NodeRef last_removed;
    OtbSkipListSet::NodeRef head;  // saved so reset() can rewind the cursor

    void reset() override {
      set->reset();
      local.clear();
      last_removed = head;
      OtbDsDesc::reset();
    }
  };

  Desc& desc(TxHost& tx) { return static_cast<Desc&>(tx.descriptor(*this)); }

  OtbSkipListSet set_;
};

}  // namespace otb::tx
