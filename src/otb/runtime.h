// Standalone OTB transaction runtime (Chapter 3).
//
// Drives transactions that touch only boosted data structures: a retry
// loop, per-attempt `Transaction` host, and the commit protocol
//   pre_commit (semantic 2PL + commit-time validation)
//   on_commit  (publish semantic write-sets)
//   post_commit(release locks)
// Aborts are signalled with TxAbort and retried with bounded, jittered
// backoff.  Accounting flows through otb::metrics: every attempt is flushed
// into the module's `MetricsSink` (domain "otb.tx" by default, injectable
// for tests), with per-reason abort attribution and — when
// `set_collect_timing(true)` — per-phase latency histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/epoch.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "metrics/registry.h"
#include "metrics/sink.h"
#include "otb/otb_ds.h"

namespace otb::tx {

// ---- metrics wiring --------------------------------------------------------

namespace detail {
inline metrics::MetricsSink*& sink_slot() {
  static metrics::MetricsSink* sink = &metrics::Registry::global().sink("otb.tx");
  return sink;
}
inline std::atomic<bool>& timing_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// The sink standalone OTB transactions report through ("otb.tx" in the
/// global registry unless overridden).
inline metrics::MetricsSink& metrics_sink() { return *detail::sink_slot(); }

/// Inject a sink (tests pass an in-memory instance); null restores the
/// registry default.
inline void set_metrics_sink(metrics::MetricsSink* sink) {
  detail::sink_slot() =
      sink != nullptr ? sink : &metrics::Registry::global().sink("otb.tx");
}

/// Snapshot of the standalone runtime's metrics — the redesigned stats
/// accessor (mirrors `stm::Runtime::metrics()`).
inline metrics::SinkSnapshot metrics_snapshot() { return metrics_sink().snapshot(); }

/// Opt into per-phase wall-clock collection (attempt/validation/commit
/// histograms).  Off by default: two clock reads per validation are not
/// free.
inline void set_collect_timing(bool on) {
  detail::timing_flag().store(on, std::memory_order_relaxed);
}
inline bool collect_timing() {
  return detail::timing_flag().load(std::memory_order_relaxed);
}

/// Deprecated commit/abort view kept for transition; reads the metrics
/// sink.  New code should use `metrics_snapshot()`.
struct RuntimeStatsView {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
};

[[deprecated("use otb::tx::metrics_snapshot()")]]
inline RuntimeStatsView runtime_stats() {
  const metrics::MetricsSink& sink = metrics_sink();
  return RuntimeStatsView{sink.counter(metrics::CounterId::kCommits),
                          sink.aborts_total()};
}

// ---- transaction host ------------------------------------------------------

/// One logical transaction over boosted structures only.  The retry loop
/// reuses a single instance across attempts: `abandon()` recycles the
/// descriptors (zero-allocation retries) and `begin_attempt()` re-arms the
/// per-attempt state.
class Transaction final : public TxHost {
 public:
  explicit Transaction(bool timed = collect_timing()) : timed_(timed) {
    bind_op_tally(&tally_);  // structures account hint/traversal stats here
    epoch_guard_.emplace();
  }

  /// Arm the next attempt: fresh per-attempt tally, re-pinned reclamation
  /// epoch (abandon() unpins so other threads can advance during backoff).
  void begin_attempt() {
    tally_ = metrics::TxTally{};
    if (!epoch_guard_.has_value()) epoch_guard_.emplace();
  }

  /// Post-validation after every boosted operation: every attached
  /// structure's semantic read-set must still hold, with lock checks
  /// (nothing is locked by us during execution).  The commit-sequence gate
  /// skips the scan for structures no one published into since our last
  /// full validation.
  void on_operation_validate() override {
    tally_.validations += 1;
    const std::uint64_t t0 = timed_ ? now_ns() : 0;
    const bool ok = validate_attached(/*check_locks=*/true,
                                      &tally_.validations_fast,
                                      &tally_.validations_full);
    if (timed_) tally_.ns_validation += now_ns() - t0;
    if (!ok) throw TxAbort{metrics::AbortReason::kSemanticConflict};
  }

  /// Two-phase commit across all attached structures.
  void commit() {
    const std::uint64_t t0 = timed_ ? now_ns() : 0;
    const bool ok = pre_commit_attached(/*use_locks=*/true);
    if (!ok) {
      if (timed_) tally_.ns_commit += now_ns() - t0;
      throw TxAbort{metrics::AbortReason::kSemanticConflict};
    }
    on_commit_attached();
    // Commit-clock stamp, taken while the semantic locks are still held:
    // a conflicting transaction cannot reach this point until our
    // post_commit released the locks it is waiting on, so two conflicting
    // commits always draw stamps in their serialization order.  Commuting
    // commits may interleave stamps freely — replaying them in stamp order
    // reaches the same state either way.  This is what lets the service
    // WAL merge per-shard logs into one totally ordered redo stream
    // (docs/DURABILITY.md).
    if (commit_clock_ != nullptr) {
      commit_stamp_ =
          commit_clock_->fetch_add(1, std::memory_order_relaxed) + 1;
    }
    // The commit hook also runs while the locks are held: the service WAL
    // appends the commit record here so that by the time a dependent
    // transaction can observe our writes (i.e. after post_commit below),
    // our record is already in the log stream — a group fsync taken before
    // acknowledging the dependent therefore always covers it.
    if (commit_hook_ != nullptr) commit_hook_(commit_hook_arg_, commit_stamp_);
    post_commit_attached();
    if (timed_) tally_.ns_commit += now_ns() - t0;
  }

  /// Failed attempt: every attached structure rolls back whatever it still
  /// holds (semantic locks, the heap PQ's global lock and eager effects);
  /// on_abort is idempotent, so double-notification after a failed
  /// pre_commit is harmless.  Descriptors are reset and parked for the next
  /// attempt instead of destroyed.
  void abandon() {
    on_abort_attached();
    recycle_attached();
    epoch_guard_.reset();
  }

  /// This attempt's accounting (begin_attempt() clears it, so the tally
  /// *is* the attempt delta the retry loop flushes).
  metrics::TxTally& tally() { return tally_; }

  /// Arm commit-stamp drawing from a shared monotone clock (null disables,
  /// the default).  The stamp is drawn inside commit() while semantic locks
  /// are held, so conflicting transactions observe stamps in serialization
  /// order; read it with commit_stamp() after a successful commit().
  void set_commit_clock(std::atomic<std::uint64_t>* clock) {
    commit_clock_ = clock;
  }
  std::uint64_t commit_stamp() const { return commit_stamp_; }

  /// Arm a callback invoked inside commit(), after the stamp is drawn and
  /// before post_commit releases the semantic locks.  Runs exactly once per
  /// successful commit; must not throw.  (Plain function pointer + context
  /// rather than std::function: this sits on the commit fast path.)
  void set_commit_hook(void (*fn)(void*, std::uint64_t), void* arg) {
    commit_hook_ = fn;
    commit_hook_arg_ = arg;
  }

 private:
  metrics::TxTally tally_;
  bool timed_;
  std::atomic<std::uint64_t>* commit_clock_ = nullptr;
  std::uint64_t commit_stamp_ = 0;
  void (*commit_hook_)(void*, std::uint64_t) = nullptr;
  void* commit_hook_arg_ = nullptr;
  // Pin the reclamation epoch for the attempt's lifetime: semantic read-set
  // entries hold raw node pointers that other transactions may retire.
  std::optional<ebr::Guard> epoch_guard_;
};

/// Run `fn(tx)` atomically, retrying on abort with capped, jittered
/// exponential backoff.  Returns the attempt report for this call; lifetime
/// totals (including the attempt count) flow into the metrics sink.
///
/// One Transaction serves every attempt: retries reuse the reset
/// descriptors instead of re-allocating them (the zero-allocation retry
/// path).  Exceptions other than TxAbort still abandon the attempt before
/// propagating — without that, a throwing `fn` (or an exception escaping a
/// structure operation) would leak semantic locks and the heap PQ's eager
/// effects.
template <typename Fn>
metrics::AttemptReport atomically(Fn&& fn) {
  metrics::MetricsSink& sink = metrics_sink();
  const bool timed = collect_timing();
  Backoff backoff(Backoff::kDefaultCap);
  metrics::AttemptReport report;
  Transaction tx(timed);
  for (;;) {
    tx.begin_attempt();
    const std::uint64_t t0 = timed ? now_ns() : 0;
    try {
      fn(tx);
      tx.commit();
      if (timed) tx.tally().ns_total = now_ns() - t0;
      sink.record_attempt(tx.tally(), /*committed=*/true,
                          metrics::AbortReason::kNone);
      report.commits = 1;
      return report;
    } catch (const TxAbort& abort) {
      tx.abandon();
      if (timed) tx.tally().ns_total = now_ns() - t0;
      sink.record_attempt(tx.tally(), /*committed=*/false, abort.reason);
      report.aborts += 1;
      report.last_reason = abort.reason;
      backoff.pause();
    } catch (...) {
      // User exception: roll back held state, account the attempt as an
      // explicit abort, and let the exception escape the atomic block.
      tx.abandon();
      if (timed) tx.tally().ns_total = now_ns() - t0;
      sink.record_attempt(tx.tally(), /*committed=*/false,
                          metrics::AbortReason::kExplicit);
      throw;
    }
  }
}

/// Run `fn(snap)` as an abort-free multi-version snapshot read (ISSUE 8).
///
/// The callback receives a SnapshotTx and must route every read through the
/// structures' `*_at` entry points (`contains_at`, `get_at`, `range_at`,
/// `min_at`).  There is no validation, no commit protocol, and no abort
/// channel: the snapshot is consistent by construction (stamps are drawn
/// only at quiescent clock instants, and version chains resolve each read
/// as of the drawn stamp — DESIGN.md "Multi-version snapshot reads").
///
/// Returns true on success (counted as kMvSnapshotReads, chain-depth
/// samples flushed into the sink's mv_chain_len series).  Returns false —
/// counted once as kMvVersionMisses — when a needed version has been
/// evicted from a bounded chain (SnapshotMiss, including the
/// OTB_MV_VERSIONS=0 case where nodes carry no chains) or when clock draws
/// kept failing under publication churn (SnapshotRetry, bounded attempts).
/// On false the caller should fall back to the validated path
/// (`atomically`); `fn` must therefore be repeatable and side-effect-free
/// until it returns.
template <typename Fn>
bool snapshot_read(metrics::MetricsSink& sink, Fn&& fn) {
  static constexpr int kAttempts = 8;
  if (mv_versions() != 0) {
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      try {
        SnapshotTx snap;
        fn(snap);
        sink.record_mv_chain_slice(snap.chain_depth_total(),
                                   snap.chain_depth_buckets());
        sink.add(metrics::CounterId::kMvSnapshotReads);
        return true;
      } catch (const SnapshotRetry&) {
        cpu_relax();
        continue;  // clock draw raced a publication window; redraw
      } catch (const SnapshotMiss&) {
        break;  // version evicted: only the validated path can serve this
      }
    }
  }
  sink.add(metrics::CounterId::kMvVersionMisses);
  return false;
}

/// Convenience overload against the runtime's injected sink ("otb.tx").
template <typename Fn>
bool snapshot_read(Fn&& fn) {
  return snapshot_read(metrics_sink(), static_cast<Fn&&>(fn));
}

}  // namespace otb::tx
