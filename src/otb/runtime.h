// Standalone OTB transaction runtime (Chapter 3).
//
// Drives transactions that touch only boosted data structures: a retry
// loop, per-attempt `Transaction` host, and the commit protocol
//   pre_commit (semantic 2PL + commit-time validation)
//   on_commit  (publish semantic write-sets)
//   post_commit(release locks)
// Aborts are signalled with TxAbort and retried with bounded backoff.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/epoch.h"
#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "otb/otb_ds.h"

namespace otb::tx {

/// Commit/abort counters, aggregated across threads.
struct RuntimeStats {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};
};

inline RuntimeStats& runtime_stats() {
  static RuntimeStats stats;
  return stats;
}

/// One transaction attempt over boosted structures only.
class Transaction final : public TxHost {
 public:
  /// Post-validation after every boosted operation: every attached
  /// structure's semantic read-set must still hold, with lock checks
  /// (nothing is locked by us during execution).
  void on_operation_validate() override {
    if (!validate_attached(/*check_locks=*/true)) throw TxAbort{};
  }

  /// Two-phase commit across all attached structures.
  void commit() {
    if (!pre_commit_attached(/*use_locks=*/true)) throw TxAbort{};
    on_commit_attached();
    post_commit_attached();
  }

  /// Failed attempt: every attached structure rolls back whatever it still
  /// holds (semantic locks, the heap PQ's global lock and eager effects);
  /// on_abort is idempotent, so double-notification after a failed
  /// pre_commit is harmless.
  void abandon() {
    on_abort_attached();
    clear_attached();
  }

 private:
  // Pin the reclamation epoch for the attempt's lifetime: semantic read-set
  // entries hold raw node pointers that other transactions may retire.
  ebr::Guard epoch_guard_;
};

/// Run `fn(tx)` atomically, retrying on abort.  Returns the number of
/// attempts that aborted before the commit succeeded.
template <typename Fn>
std::uint64_t atomically(Fn&& fn) {
  Backoff backoff;
  std::uint64_t aborts = 0;
  for (;;) {
    Transaction tx;
    try {
      fn(tx);
      tx.commit();
      runtime_stats().commits.fetch_add(1, std::memory_order_relaxed);
      return aborts;
    } catch (const TxAbort&) {
      tx.abandon();
      runtime_stats().aborts.fetch_add(1, std::memory_order_relaxed);
      ++aborts;
      backoff.pause();
    }
  }
}

}  // namespace otb::tx
