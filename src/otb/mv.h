// Multi-version read layer for OTB structures (DESIGN.md "Multi-version
// snapshot reads").
//
// Each node of a boosted structure carries a bounded ring (`MvChain`) of the
// successive values its successor link took, each stamped with the commit
// stamp of the publication that stored it (the per-structure `CommitSeq`
// begin count doubles as the version clock — `publish_begin()` returns the
// stamp).  A read-only transaction (`SnapshotTx`) draws a snapshot stamp T
// at a quiescent instant of the clock and then walks the structure entirely
// through `resolve_at(T)` — it touches no semantic read-set, takes no locks,
// and can never validate or abort.  When a chain no longer holds an entry
// <= T (ring overflowed, or the node predates the knob being enabled) the
// walk raises `SnapshotMiss` and the caller falls back to the validated
// optimistic path.
//
// Writer side: chains are only pushed while the pushing transaction holds
// the node's semantic lock (inside do_on_commit), so each chain has one
// writer at a time.  Readers run concurrently, so every ring slot is a tiny
// seqlock: the writer parks the slot's sequence word at `kWriting`, stores
// the payload, then publishes the slot's logical index; a reader re-checks
// the sequence word around its payload loads and treats any movement as the
// entry having been overwritten (=> miss).  All fields are atomics, so the
// race is benign at the machine level and invisible to TSan; the sequence
// check supplies the logical pairing of (ptr, ts).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>

#include "common/commit_seq.h"
#include "common/epoch.h"
#include "common/platform.h"
#include "common/small_vec.h"
#include "metrics/histogram.h"

namespace otb::tx {

// ---- OTB_MV_VERSIONS knob ---------------------------------------------------

/// Hard cap on the per-node ring size; the knob is clamped here so a typo
/// in the environment cannot make every node carry an unbounded ring.
inline constexpr unsigned kMvMaxVersions = 16;

namespace detail {
inline std::atomic<unsigned>& mv_versions_flag() {
  static std::atomic<unsigned> flag{[] {
    const char* env = std::getenv("OTB_MV_VERSIONS");
    if (env == nullptr) return 4u;  // default: short chains, cheap writers
    const unsigned long v = std::strtoul(env, nullptr, 10);
    return v > kMvMaxVersions ? kMvMaxVersions : static_cast<unsigned>(v);
  }()};
  return flag;
}
}  // namespace detail

/// Versions kept per node (K).  0 disables multi-versioning entirely: nodes
/// allocate no chains, and snapshot reads immediately miss to the validated
/// path — behaviour is bit-for-bit the single-version runtime.
inline unsigned mv_versions() {
  return detail::mv_versions_flag().load(std::memory_order_relaxed);
}

/// Programmatic override (stress drivers toggle it per case).  Applies to
/// nodes created *after* the call; existing nodes keep (or lack) their
/// chains, which is safe — a chainless node simply misses.
inline void set_mv_versions(unsigned k) {
  detail::mv_versions_flag().store(k > kMvMaxVersions ? kMvMaxVersions : k,
                                   std::memory_order_relaxed);
}

// ---- snapshot control-flow signals ------------------------------------------

/// The version chains cannot serve this snapshot (entry <= T evicted, or a
/// reachable node has no chain).  Caller re-runs on the validated path.
struct SnapshotMiss {};

/// The snapshot stamp could not be drawn (clock never quiescent within the
/// spin budget, or a lazily-added structure's clock moved since an earlier
/// draw).  Caller restarts the whole snapshot attempt; bounded retries, then
/// treated like a miss.
struct SnapshotRetry {};

// ---- bounded version chain --------------------------------------------------

/// Fixed-capacity ring of (successor pointer, commit stamp) versions with
/// per-slot seqlock publication.  Single writer (the semantic-lock holder),
/// many lock-free readers.
class MvChain {
 public:
  explicit MvChain(unsigned capacity)
      : cap_(capacity), slots_(new Slot[capacity]) {}

  MvChain(const MvChain&) = delete;
  MvChain& operator=(const MvChain&) = delete;

  struct Resolved {
    const void* ptr = nullptr;
    bool found = false;
    unsigned depth = 0;  // entries inspected (1 == newest matched)
  };

  /// Writer: record that the owning node's successor became `ptr` at commit
  /// stamp `ts`.  Caller holds the node's semantic lock.  Returns true when
  /// the ring evicted a previously published version (reclaim accounting).
  bool push(const void* ptr, std::uint64_t ts) noexcept {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    Slot& s = slots_[n % cap_];
    s.seq.store(kWriting, std::memory_order_relaxed);
    // Release fence pairing with the reader's acquire fence in resolve_at:
    // a reader that observes either payload store below must also observe
    // seq == kWriting (or later) at its second seq load, so a lapped slot
    // can never pass the seq check with a mixed (ptr, ts) pair on
    // weakly-ordered machines.
    std::atomic_thread_fence(std::memory_order_release);
    s.ptr.store(ptr, std::memory_order_relaxed);
    s.ts.store(ts, std::memory_order_relaxed);
    s.seq.store(n, std::memory_order_release);
    count_.store(n + 1, std::memory_order_release);
    return n >= cap_;
  }

  /// Reader: newest entry with stamp <= t.  `found == false` means the ring
  /// holds no such entry (overflowed past t, or a concurrent writer lapped
  /// the slot mid-read) — the caller must treat it as a SnapshotMiss.
  Resolved resolve_at(std::uint64_t t) const noexcept {
    Resolved r;
    const std::uint64_t n = count_.load(std::memory_order_acquire);
    const std::uint64_t lo = n > cap_ ? n - cap_ : 0;
    for (std::uint64_t i = n; i-- > lo;) {
      ++r.depth;
      const Slot& s = slots_[i % cap_];
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      const void* p = s.ptr.load(std::memory_order_relaxed);
      const std::uint64_t ts = s.ts.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t s2 = s.seq.load(std::memory_order_relaxed);
      if (s1 != i || s2 != i) return r;  // lapped by newer pushes
      if (ts <= t) {
        r.ptr = p;
        r.found = true;
        return r;
      }
    }
    return r;  // every surviving entry is newer than t
  }

 private:
  static constexpr std::uint64_t kWriting = ~std::uint64_t{0};

  struct Slot {
    std::atomic<std::uint64_t> seq{kWriting};
    std::atomic<const void*> ptr{nullptr};
    std::atomic<std::uint64_t> ts{0};
  };

  const unsigned cap_;
  std::atomic<std::uint64_t> count_{0};  // pushes ever; slot i at i % cap_
  std::unique_ptr<Slot[]> slots_;
};

/// Chain for a freshly constructed node: sized by the knob, absent when
/// multi-versioning is off.
inline MvChain* mv_make_chain() {
  const unsigned k = mv_versions();
  return k == 0 ? nullptr : new MvChain(k);
}

/// Writer-side push helper: tolerates chainless nodes (knob was off at
/// their creation) and accumulates ring evictions into `reclaimed` (flushed
/// to `kMvVersionsReclaimed` by the host).
inline void mv_push(MvChain* chain, const void* ptr, std::uint64_t ts,
                    std::uint64_t& reclaimed) noexcept {
  if (chain != nullptr && chain->push(ptr, ts)) ++reclaimed;
}

// ---- read-only snapshot transaction -----------------------------------------

/// The read-only transaction mode: draws one snapshot stamp per structure
/// (lazily, at a quiescent instant of that structure's CommitSeq) and pins
/// the epoch so retired nodes stay dereferenceable for the whole walk.
/// There is no read-set, no validation, and no commit protocol — a snapshot
/// read can raise SnapshotRetry/SnapshotMiss but can never abort.
///
/// Multi-structure consistency: stamps are drawn lazily, so a script that
/// touches structure A and then structure B draws B's stamp mid-walk.  The
/// combined snapshot is a single instant because every commit opens ALL its
/// publication windows (per-structure publish_begin) before closing ANY of
/// them: when B's stamp is drawn we re-check that every previously drawn
/// clock is still quiescent at its drawn stamp — if so, no multi-structure
/// commit can have published into an earlier structure without us seeing
/// its window still open (=> retry).  See DESIGN.md "Multi-version snapshot
/// reads" for the full argument.
class SnapshotTx {
 public:
  SnapshotTx() = default;
  SnapshotTx(const SnapshotTx&) = delete;
  SnapshotTx& operator=(const SnapshotTx&) = delete;

  /// Snapshot stamp for the structure owning `seq` (drawn on first use).
  std::uint64_t stamp_for(const CommitSeq& seq) {
    for (const ClockRef& c : clocks_) {
      if (c.seq == &seq) return c.stamp;
    }
    for (int spin = 0; spin < kDrawSpins; ++spin) {
      // end_ first: begin == end then proves a quiescent instant existed,
      // so every stamp <= begin is fully published (publish_end release
      // pairs with the end_count acquire).
      const std::uint64_t end = seq.end_count();
      const std::uint64_t begin = seq.begin_count();
      if (begin == end) {
        for (const ClockRef& c : clocks_) {
          if (c.seq->begin_count() != c.stamp ||
              c.seq->end_count() != c.stamp) {
            throw SnapshotRetry{};  // earlier clock moved: not one instant
          }
        }
        clocks_.push_back(ClockRef{&seq, begin});
        return begin;
      }
      cpu_relax();
    }
    throw SnapshotRetry{};  // writers kept the clock busy; restart
  }

  /// Per-resolve chain-depth sample (flushed as the `mv_chain_len` series).
  void sample_chain_depth(unsigned depth) noexcept {
    chain_total_ += depth;
    ++chain_buckets_[metrics::Histogram::bucket_of(depth)];
  }

  std::uint64_t chain_depth_total() const noexcept { return chain_total_; }
  const std::array<std::uint64_t, metrics::Histogram::kBuckets>&
  chain_depth_buckets() const noexcept {
    return chain_buckets_;
  }

 private:
  static constexpr int kDrawSpins = 128;

  struct ClockRef {
    const CommitSeq* seq;
    std::uint64_t stamp;
  };

  SmallVec<ClockRef, 4> clocks_;
  std::uint64_t chain_total_ = 0;
  std::array<std::uint64_t, metrics::Histogram::kBuckets> chain_buckets_{};
  ebr::Guard guard_;  // pins retired nodes (and their chains) for the walk
};

}  // namespace otb::tx
