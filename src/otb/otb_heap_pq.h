// Semi-optimistic OTB heap-based priority queue (§3.2.2, Algorithm 5).
//
// The paper's three optimisations over pessimistic boosting:
//   (i)  add operations are buffered in a local semantic redo-log and only
//        published once the transaction's first removeMin/min forces the
//        single global lock (or at commit when the transaction is add-only);
//   (ii) no semantic undo-log or inverse operations are needed for the
//        deferred adds — nothing touched shared state yet;
//   (iii) the underlying heap is the *sequential* binary heap: a thread only
//        reaches it while holding the global lock, so the queue needs no
//        thread-level synchronisation of its own.
//
// "Semi"-optimistic: removeMin/min still acquire the global lock eagerly,
// which is why the skip-list variant (otb_skiplist_pq.h) exists.  To stay
// composable with other boosted structures in one transaction we do keep a
// minimal undo-log for the operations executed *while the lock is held*;
// single-structure transactions never roll it back (the lock holder cannot
// be invalidated), matching the paper's claim.
//
// Traversal hints (traversal_hints.h) do not apply here: the heap has no
// pointer traversal to seed — every operation is O(log n) array sifting
// under the global lock, so there is no entry point a hint could improve.
#pragma once

#include <cstdint>
#include <vector>

#include "cds/binary_heap.h"
#include "common/small_vec.h"
#include "common/spinlock.h"
#include "otb/otb_ds.h"

namespace otb::tx {

class OtbHeapPQ final : public OtbDs {
 public:
  using Key = cds::BinaryHeap::Key;

  // ---- transactional operations -----------------------------------------

  void add(TxHost& tx, Key key) {
    Desc& desc = static_cast<Desc&>(tx.descriptor(*this));
    if (desc.holds_lock) {
      heap_.add(key);
      desc.eager_adds.push_back(key);
    } else {
      desc.redo_log.push_back(key);  // deferred until the lock is forced
    }
  }

  /// Remove the minimum; false when the queue is empty.
  bool remove_min(TxHost& tx, Key* out) {
    Desc& desc = static_cast<Desc&>(tx.descriptor(*this));
    force_lock(desc);
    if (heap_.empty()) return false;
    *out = heap_.remove_min();
    desc.eager_removes.push_back(*out);
    return true;
  }

  /// Read the minimum; false when empty.
  bool min(TxHost& tx, Key* out) {
    Desc& desc = static_cast<Desc&>(tx.descriptor(*this));
    force_lock(desc);
    if (heap_.empty()) return false;
    *out = heap_.min();
    return true;
  }

  std::size_t size_unsafe() const { return heap_.size(); }
  void add_seq(Key key) { heap_.add(key); }

  /// Quiescent-only copy of the heap contents (storage order, not sorted):
  /// the checkpoint path captures it while the service workers are paused.
  std::vector<Key> snapshot_unsafe() const { return heap_.contents(); }

  // ---- OTB-DS protocol ----------------------------------------------------

  std::unique_ptr<OtbDsDesc> make_desc() const override {
    return std::make_unique<Desc>();
  }

  /// The lock subsumes all conflicts; deferred adds are invisible — nothing
  /// can invalidate this structure's view.
  bool validate(const OtbDsDesc&, bool) const override { return true; }

  bool pre_commit(OtbDsDesc& base, bool) override {
    Desc& desc = static_cast<Desc&>(base);
    if (desc.redo_log.empty() && !desc.holds_lock) return true;  // read nothing
    if (!desc.holds_lock) {
      // Add-only transaction: take the lock just to publish (bounded, so a
      // multi-structure commit cannot deadlock through us).
      Backoff bo;
      for (int attempts = 0; !lock_.try_lock(); ++attempts) {
        if (attempts > kCommitLockAttempts) return false;
        bo.pause();
      }
      desc.holds_lock = true;
    }
    publish_redo(desc);
    return true;
  }

  void do_on_commit(OtbDsDesc&) override {}  // everything already applied

  void do_post_commit(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    if (desc.holds_lock) {
      lock_.unlock();
      desc.holds_lock = false;
    }
    desc.eager_adds.clear();
    desc.eager_removes.clear();
    desc.redo_log.clear();
  }

  void do_on_abort(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    if (desc.holds_lock) {
      // Roll back eager effects (only possible when another structure in the
      // same transaction failed its commit).
      for (const Key k : desc.eager_removes) heap_.add(k);
      for (const Key k : desc.eager_adds) remove_one(k);
      lock_.unlock();
      desc.holds_lock = false;
    }
    desc.eager_adds.clear();
    desc.eager_removes.clear();
    desc.redo_log.clear();
  }

  bool has_writes(const OtbDsDesc& base) const override {
    const Desc& desc = static_cast<const Desc&>(base);
    return desc.holds_lock || !desc.redo_log.empty();
  }

 private:
  static constexpr int kCommitLockAttempts = 1 << 16;

  struct Desc final : OtbDsDesc {
    static constexpr std::size_t kInline = 8;
    SmallVec<Key, kInline> redo_log;       // deferred adds (lock not yet held)
    SmallVec<Key, kInline> eager_adds;     // applied under the lock (for undo)
    SmallVec<Key, kInline> eager_removes;  // removed mins under the lock (undo)
    bool holds_lock = false;

    void reset() override {
      redo_log.clear();
      eager_adds.clear();
      eager_removes.clear();
      holds_lock = false;
      OtbDsDesc::reset();
    }
  };

  /// First removeMin/min: take the global lock and publish deferred adds.
  /// Blocking here is deadlock-free — a lock holder never waits on another
  /// in-flight transaction during its execution phase.
  void force_lock(Desc& desc) {
    if (desc.holds_lock) return;
    lock_.lock();
    desc.holds_lock = true;
    publish_redo(desc);
  }

  void publish_redo(Desc& desc) {
    for (const Key k : desc.redo_log) {
      heap_.add(k);
      desc.eager_adds.push_back(k);
    }
    desc.redo_log.clear();
  }

  /// O(n) removal of one instance of `k` (abort path only).
  void remove_one(Key k) {
    cds::BinaryHeap rebuilt;
    bool skipped = false;
    while (!heap_.empty()) {
      const Key v = heap_.remove_min();
      if (!skipped && v == k) {
        skipped = true;
        continue;
      }
      rebuilt.add(v);
    }
    heap_ = rebuilt;
  }

  SpinLock lock_;
  cds::BinaryHeap heap_;
};

}  // namespace otb::tx
