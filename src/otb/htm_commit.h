// OTB with a simulated-HTM commit phase (§7.1.1: "OTB can be significantly
// enhanced if the monitored commit part is executed inside HTM blocks
// instead of being executed using software lock-based mechanisms"; the
// traversal stays outside any speculation, as the paper requires).
//
// Simulation model (no TSX on this host — DESIGN.md substitution): the
// hardware commit is a *lock-elision* window on a global commit clock —
//   * the fast path takes the window, commit-validates the semantic
//     read-sets and publishes WITHOUT acquiring any per-node semantic lock
//     (that is the saving hardware transactions buy);
//   * capacity (total deferred writes) and simulated spurious aborts send
//     the transaction to the software fallback, which commits with the
//     ordinary fine-grained semantic 2PL — under the same window, so the
//     two paths compose;
//   * readers subscribe to the commit clock during post-validation, which
//     models hardware transactions being killed by a committer's cache-line
//     invalidations.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/epoch.h"
#include "common/rng.h"
#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "metrics/registry.h"
#include "metrics/sink.h"
#include "otb/otb_ds.h"

namespace otb::tx {

/// Fine-grained fast-path/fallback accounting specific to the HTM-commit
/// protocol (internal hardware retries are not attempt aborts, so they live
/// here rather than in the sink's abort taxonomy).
struct HtmCommitStats {
  std::atomic<std::uint64_t> htm_commits{0};
  std::atomic<std::uint64_t> fallback_commits{0};
  std::atomic<std::uint64_t> htm_aborts{0};
};

class HtmCommitRuntime {
 public:
  /// Maximum deferred writes the simulated hardware buffer holds.
  static constexpr std::size_t kWriteCapacity = 16;
  static constexpr unsigned kHtmRetries = 4;
  static constexpr std::uint64_t kSpuriousPeriod = 10000;

  class Transaction final : public TxHost {
   public:
    explicit Transaction(HtmCommitRuntime& rt) : rt_(rt) {
      bind_op_tally(&tally_);  // hint/traversal stats land here per attempt
      epoch_guard_.emplace();
    }

    /// Re-arm for the next attempt (the retry loop reuses one instance and
    /// recycles its descriptors across attempts).
    void begin_attempt() {
      if (!epoch_guard_.has_value()) epoch_guard_.emplace();
    }

    /// Post-validation subscribes to the commit clock: a fast-path commit
    /// takes no semantic locks, so the clock is the only way a reader can
    /// notice it (the cache-invalidation analogue).  The per-DS commit
    /// sequence gates the semantic scan the same way it does in the
    /// standalone runtime.
    void on_operation_validate() override {
      for (;;) {
        const std::uint64_t s = rt_.clock_.wait_even();
        if (!validate_attached(/*check_locks=*/true, &validations_fast_,
                               &validations_full_)) {
          throw TxAbort{metrics::AbortReason::kSemanticConflict};
        }
        if (rt_.clock_.load() == s) return;
      }
    }

    void commit() {
      if (!any_attached_writes()) return;  // read-only
      // --- hardware attempts -------------------------------------------
      if (attached_write_count() <= kWriteCapacity) {
        for (unsigned attempt = 0; attempt < kHtmRetries; ++attempt) {
          if (spurious_due()) {
            rt_.stats_.htm_aborts.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const std::uint64_t even = rt_.clock_.load();
          if ((even & 1) != 0 || !rt_.clock_.try_acquire(even)) {
            rt_.stats_.htm_aborts.fetch_add(1, std::memory_order_relaxed);
            continue;  // busy window = immediate conflict abort
          }
          // Inside the "hardware" window: no semantic locks (use_locks =
          // false).  Every committer — fast path or fallback — holds this
          // window, so commit-validation runs against quiescent state.
          // (Structures driven by this runtime must not simultaneously be
          // committed through the plain tx::atomically runtime.)
          if (!pre_commit_attached(/*use_locks=*/false)) {
            rt_.clock_.release();
            throw TxAbort{metrics::AbortReason::kSemanticConflict};
          }
          on_commit_attached();
          post_commit_attached();
          rt_.clock_.release();
          rt_.stats_.htm_commits.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      // --- software fallback: fine-grained semantic 2PL under the same
      // window (the paper's lock-based commit). ---------------------------
      std::uint64_t even = rt_.clock_.wait_even();
      while (!rt_.clock_.try_acquire(even)) even = rt_.clock_.wait_even();
      if (!pre_commit_attached(/*use_locks=*/true)) {
        rt_.clock_.release();
        throw TxAbort{metrics::AbortReason::kSemanticConflict};
      }
      on_commit_attached();
      post_commit_attached();
      rt_.clock_.release();
      rt_.stats_.fallback_commits.fetch_add(1, std::memory_order_relaxed);
    }

    void abandon() {
      on_abort_attached();
      recycle_attached();
      epoch_guard_.reset();
    }

    /// Flush the per-attempt gated-validation counters plus the hint /
    /// traversal tally into `sink` (this host runs outside the standard
    /// record_attempt flow, so it pushes its slice explicitly).
    void flush_validation_counters(metrics::MetricsSink& sink) {
      if (validations_fast_ != 0) {
        sink.add(metrics::CounterId::kValidationsFast, validations_fast_);
      }
      if (validations_full_ != 0) {
        sink.add(metrics::CounterId::kValidationsFull, validations_full_);
      }
      validations_fast_ = 0;
      validations_full_ = 0;
      sink.record_traversal_slice(tally_);
      tally_ = metrics::TxTally{};
    }

   private:
    bool spurious_due() {
      thread_local Xorshift rng{0xbeef ^ reinterpret_cast<std::uintptr_t>(this)};
      return rng.next_bounded(kSpuriousPeriod) == 0;
    }

    HtmCommitRuntime& rt_;
    std::uint64_t validations_fast_ = 0;
    std::uint64_t validations_full_ = 0;
    metrics::TxTally tally_;
    std::optional<ebr::Guard> epoch_guard_;
  };

  explicit HtmCommitRuntime(metrics::MetricsSink* sink = nullptr)
      : sink_(sink != nullptr
                  ? sink
                  : &metrics::Registry::global().sink("otb.htm_commit")) {}

  /// Run `fn(tx)` atomically with the HTM-commit protocol.  Returns the
  /// attempt report for this call; totals flow into the metrics sink.
  template <typename Fn>
  metrics::AttemptReport atomically(Fn&& fn) {
    Backoff backoff;
    metrics::AttemptReport report;
    Transaction tx(*this);
    for (;;) {
      tx.begin_attempt();
      try {
        fn(tx);
        tx.commit();
        sink_->add(metrics::CounterId::kAttempts);
        sink_->add(metrics::CounterId::kCommits);
        tx.flush_validation_counters(*sink_);
        report.commits = 1;
        return report;
      } catch (const TxAbort& abort) {
        tx.abandon();
        sink_->add(metrics::CounterId::kAttempts);
        sink_->record_abort(abort.reason);
        tx.flush_validation_counters(*sink_);
        report.aborts += 1;
        report.last_reason = abort.reason;
        backoff.pause();
      } catch (...) {
        // User exception: release held state before it escapes the block.
        tx.abandon();
        sink_->add(metrics::CounterId::kAttempts);
        sink_->record_abort(metrics::AbortReason::kExplicit);
        tx.flush_validation_counters(*sink_);
        throw;
      }
    }
  }

  const HtmCommitStats& stats() const { return stats_; }
  metrics::SinkSnapshot metrics() const { return sink_->snapshot(); }

 private:
  friend class Transaction;
  SeqLock clock_;
  HtmCommitStats stats_;
  metrics::MetricsSink* sink_;
};

}  // namespace otb::tx
