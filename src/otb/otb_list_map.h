// OTB-Map — one of the paper's proposed post-prelim extensions ("More OTB
// Data Structures", §7.1.2), built with the same three-step OTB protocol as
// the linked-list set.
//
// Nodes are immutable (key, value) pairs, so a `put` over an existing key
// is a *node replacement* at commit (unlink the old node, insert a fresh
// one).  That choice keeps the set's validation rules sound unchanged: a
// `get` pins only "this node is still unmarked", and any concurrent value
// change marks the node, invalidating the reader — no per-node version
// counters are needed.
//
// Local write-set state machine per key (at most one entry):
//     put  on Insert  -> Insert (new value)        returns false
//     put  on Replace -> Replace (new value)       returns false
//     put  on Erase   -> Replace                   returns true
//     erase on Insert -> entry eliminated          returns true
//     erase on Replace-> Erase                     returns true
//     erase on Erase  -> no-op                     returns false
// (`put` returns true iff the key was absent, insert-or-assign style.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/epoch.h"
#include "common/small_vec.h"
#include "common/spinlock.h"
#include "otb/mv.h"
#include "otb/otb_ds.h"
#include "otb/traversal_hints.h"

namespace otb::tx {

class OtbListMap final : public OtbDs {
 public:
  using Key = std::int64_t;
  using Value = std::int64_t;

  OtbListMap() {
    head_ = new Node(std::numeric_limits<Key>::min(), 0);
    tail_ = new Node(std::numeric_limits<Key>::max(), 0);
    head_->next.store(tail_, std::memory_order_release);
    // Stamp-0 version so snapshot walks see the empty map from the start.
    std::uint64_t unused = 0;
    mv_push(head_->mv, tail_, 0, unused);
  }

  ~OtbListMap() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  OtbListMap(const OtbListMap&) = delete;
  OtbListMap& operator=(const OtbListMap&) = delete;

  // ---- transactional operations -----------------------------------------

  /// Insert-or-assign; true iff the key was newly inserted.
  bool put(TxHost& tx, Key key, Value value) {
    Desc& desc = this->desc(tx);
    if (WriteEntry* w = find_local(desc, key)) {
      switch (w->op) {
        case Op::kInsert:
        case Op::kReplace:
          w->value = value;
          return false;
        case Op::kErase:
          w->op = Op::kReplace;
          w->value = value;
          return true;
      }
    }
    auto [pred, curr, found] = traverse(tx, desc, key);
    // Both outcomes modify links at commit, so both need the full
    // structural rule (pred -> curr intact), never the relaxed one.
    desc.reads.push_back({pred, curr, ReadKind::kStructural});
    desc.writes.push_back(
        {pred, curr, found ? Op::kReplace : Op::kInsert, key, value});
    tx.on_operation_validate();
    return !found;
  }

  /// Remove; false when absent.
  bool erase(TxHost& tx, Key key) {
    Desc& desc = this->desc(tx);
    if (WriteEntry* w = find_local(desc, key)) {
      switch (w->op) {
        case Op::kInsert:
          erase_local(desc, key);  // elimination; read entries stay
          return true;
        case Op::kReplace:
          w->op = Op::kErase;
          return true;
        case Op::kErase:
          return false;
      }
    }
    auto [pred, curr, found] = traverse(tx, desc, key);
    if (!found) {
      desc.reads.push_back({pred, curr, ReadKind::kStructural});
      tx.on_operation_validate();
      return false;
    }
    desc.reads.push_back({pred, curr, ReadKind::kStructural});
    desc.writes.push_back({pred, curr, Op::kErase, key, 0});
    tx.on_operation_validate();
    return true;
  }

  /// Lookup; false when absent.  Never acquires locks.
  bool get(TxHost& tx, Key key, Value* out) {
    Desc& desc = this->desc(tx);
    if (const WriteEntry* w = find_local(desc, key)) {
      if (w->op == Op::kErase) return false;
      *out = w->value;
      return true;
    }
    auto [pred, curr, found] = traverse(tx, desc, key);
    if (found) {
      desc.reads.push_back({pred, curr, ReadKind::kPresent});
      *out = curr->value;
    } else {
      desc.reads.push_back({pred, curr, ReadKind::kStructural});
    }
    tx.on_operation_validate();
    return found;
  }

  bool contains(TxHost& tx, Key key) {
    Value ignored;
    return get(tx, key, &ignored);
  }

  /// Collect every live (key, value) with lo <= key <= hi, in key order,
  /// merged with this transaction's pending writes (read-own-writes).
  /// Returns the number of pairs appended to `out`.
  ///
  /// On THIS validated path the whole segment is pinned structurally: one
  /// read entry per link from the predecessor of lo up to the first node
  /// beyond hi, so any concurrent insert/erase inside the range invalidates
  /// the reader — the same rule a single structural read uses, applied
  /// link-by-link.  That wording is the whole story only when
  /// `OTB_MV_VERSIONS=0`: with multi-versioning on, read-only range scans
  /// run through `range_at()` instead, which reads the segment as of a
  /// snapshot stamp via the version chains — concurrent inserts/erases
  /// publish *new* versions and no longer invalidate the reader (DESIGN.md
  /// "Multi-version snapshot reads").  The service plane's range requests
  /// are the consumer (DESIGN.md "Transactional service plane").
  std::size_t range(TxHost& tx, Key lo, Key hi,
                    std::vector<std::pair<Key, Value>>* out) {
    Desc& desc = this->desc(tx);
    const std::size_t before = out->size();
    if (lo > hi) {
      tx.on_operation_validate();
      return 0;
    }
    auto [pred, curr, found] = traverse(tx, desc, lo);
    (void)found;
    desc.reads.push_back({pred, curr, ReadKind::kStructural});
    Node* c = curr;
    while (c != tail_ && c->key <= hi) {
      out->emplace_back(c->key, c->value);
      Node* next = c->next.load(std::memory_order_acquire);
      desc.reads.push_back({c, next, ReadKind::kStructural});
      c = next;
    }
    tx.on_operation_validate();
    // Overlay the local write-set: pending inserts/replaces upsert, pending
    // erases drop.  The shared walk above saw none of them.
    for (const WriteEntry& w : desc.writes) {
      if (w.key < lo || w.key > hi) continue;
      auto it = out->begin() + static_cast<std::ptrdiff_t>(before);
      for (; it != out->end() && it->first < w.key; ++it) {
      }
      const bool present = it != out->end() && it->first == w.key;
      switch (w.op) {
        case Op::kInsert:
        case Op::kReplace:
          if (present) {
            it->second = w.value;
          } else {
            out->insert(it, {w.key, w.value});
          }
          break;
        case Op::kErase:
          if (present) out->erase(it);
          break;
      }
    }
    return out->size() - before;
  }

  // ---- snapshot (multi-version) reads ------------------------------------

  /// Lookup as of the snapshot's stamp for this structure — chain walk
  /// only, no read-set, no locks, no validation.  Throws SnapshotMiss when
  /// a chain can no longer serve the stamp.
  bool get_at(SnapshotTx& snap, Key key, Value* out) const {
    const std::uint64_t t = snap.stamp_for(commit_seq());
    const Node* c = head_;
    for (;;) {
      const Node* nx = mv_next_at(snap, c, t);
      if (nx->key >= key) {
        if (nx->key != key) return false;
        *out = nx->value;  // immutable once constructed: safe to read
        return true;
      }
      c = nx;
    }
  }

  bool contains_at(SnapshotTx& snap, Key key) const {
    Value ignored;
    return get_at(snap, key, &ignored);
  }

  /// Range scan as of the snapshot's stamp: every (key, value) with
  /// lo <= key <= hi that was live at the stamp, in key order.  Concurrent
  /// inserts/erases publish new versions; they cannot invalidate this walk.
  std::size_t range_at(SnapshotTx& snap, Key lo, Key hi,
                       std::vector<std::pair<Key, Value>>* out) const {
    if (lo > hi) return 0;
    const std::uint64_t t = snap.stamp_for(commit_seq());
    const std::size_t before = out->size();
    const Node* c = head_;
    // Find the first node with key >= lo as of t, then emit until > hi.
    for (;;) {
      const Node* nx = mv_next_at(snap, c, t);
      if (nx->key >= lo) {
        c = nx;
        break;
      }
      c = nx;
    }
    while (c != tail_ && c->key <= hi) {
      out->emplace_back(c->key, c->value);
      c = mv_next_at(snap, c, t);
    }
    return out->size() - before;
  }

  bool supports_snapshot_reads() const override { return true; }

  // ---- non-transactional helpers -----------------------------------------

  bool put_seq(Key key, Value value) {
    auto [pred, curr] = locate(key);
    const std::uint64_t ts = commit_seq().begin_count();
    std::uint64_t unused = 0;
    if (curr->key == key) {
      Node* node = new Node(key, value);
      node->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      curr->marked.store(true, std::memory_order_relaxed);
      pred->next.store(node, std::memory_order_release);
      mv_push(node->mv, node->next.load(std::memory_order_relaxed), ts, unused);
      mv_push(pred->mv, node, ts, unused);
      // Retire (not delete): the traversal-hint cache may still hold this
      // node from an earlier transactional phase on some thread, and the
      // epoch age-gate only protects EBR-reclaimed memory.
      ebr::retire(curr);
      return false;
    }
    Node* node = new Node(key, value);
    node->next.store(curr, std::memory_order_relaxed);
    pred->next.store(node, std::memory_order_release);
    mv_push(node->mv, curr, ts, unused);
    mv_push(pred->mv, node, ts, unused);
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  std::vector<std::pair<Key, Value>> snapshot_unsafe() const {
    std::vector<std::pair<Key, Value>> out;
    for (const Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) {
        out.emplace_back(c->key, c->value);
      }
    }
    return out;
  }

  // ---- OTB-DS protocol ----------------------------------------------------

  std::unique_ptr<OtbDsDesc> make_desc() const override {
    return std::make_unique<Desc>();
  }

  bool validate(const OtbDsDesc& base, bool check_locks) const override {
    const Desc& desc = static_cast<const Desc&>(base);
    auto& snaps = desc.snaps;  // descriptor-resident scratch, reused per call
    snaps.clear();
    if (check_locks) {
      snaps.reserve(desc.reads.size() * 2);
      for (const ReadEntry& e : desc.reads) {
        const std::uint64_t p = e.pred->lock.load();
        const std::uint64_t c = e.curr->lock.load();
        if (VersionedLock::is_locked(p) || VersionedLock::is_locked(c)) return false;
        snaps.push_back(p);
        snaps.push_back(c);
      }
    }
    for (const ReadEntry& e : desc.reads) {
      if (!validate_entry(e)) return false;
    }
    if (check_locks) {
      std::size_t i = 0;
      for (const ReadEntry& e : desc.reads) {
        if (e.pred->lock.load() != snaps[i++]) return false;
        if (e.curr->lock.load() != snaps[i++]) return false;
      }
    }
    return true;
  }

  bool pre_commit(OtbDsDesc& base, bool use_locks) override {
    Desc& desc = static_cast<Desc&>(base);
    if (desc.writes.empty()) return true;
    std::sort(desc.writes.begin(), desc.writes.end(),
              [](const WriteEntry& a, const WriteEntry& b) { return a.key > b.key; });
    if (use_locks) {
      auto lock_one = [&](Node* n) -> bool {
        for (Node* held : desc.locked) {
          if (held == n) return true;
        }
        if (!n->lock.try_lock()) return false;
        desc.locked.push_back(n);
        return true;
      };
      for (const WriteEntry& e : desc.writes) {
        if (!lock_one(e.pred)) return false;
        if (e.op != Op::kInsert && !lock_one(e.curr)) return false;
      }
    }
    return validate(desc, /*check_locks=*/false);
  }

  void do_on_commit(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    ebr::Guard guard;
    for (const WriteEntry& e : desc.writes) {
      Node* pred = e.pred;
      Node* curr = pred->next.load(std::memory_order_acquire);
      while (curr->key < e.key) {
        pred = curr;
        curr = pred->next.load(std::memory_order_acquire);
      }
      switch (e.op) {
        case Op::kInsert: {
          Node* node = new Node(e.key, e.value);
          node->lock.try_lock();
          desc.locked.push_back(node);
          node->next.store(curr, std::memory_order_relaxed);
          pred->next.store(node, std::memory_order_release);
          mv_push(node->mv, curr, desc.mv_stamp, desc.mv_reclaimed);
          mv_push(pred->mv, node, desc.mv_stamp, desc.mv_reclaimed);
          break;
        }
        case Op::kReplace: {
          Node* node = new Node(e.key, e.value);
          node->lock.try_lock();
          desc.locked.push_back(node);
          curr->marked.store(true, std::memory_order_release);
          Node* after = curr->next.load(std::memory_order_relaxed);
          node->next.store(after, std::memory_order_relaxed);
          pred->next.store(node, std::memory_order_release);
          // Snapshots at stamps >= this one route pred -> node -> after;
          // older stamps keep resolving to the retired curr (whose chain
          // and value stay readable under the epoch guard).
          mv_push(node->mv, after, desc.mv_stamp, desc.mv_reclaimed);
          mv_push(pred->mv, node, desc.mv_stamp, desc.mv_reclaimed);
          ebr::retire(curr);
          break;
        }
        case Op::kErase: {
          curr->marked.store(true, std::memory_order_release);
          Node* after = curr->next.load(std::memory_order_relaxed);
          pred->next.store(after, std::memory_order_release);
          mv_push(pred->mv, after, desc.mv_stamp, desc.mv_reclaimed);
          ebr::retire(curr);
          break;
        }
      }
    }
  }

  void do_post_commit(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    for (Node* n : desc.locked) n->lock.unlock_new_version();
    desc.locked.clear();
  }

  void do_on_abort(OtbDsDesc& base) override {
    Desc& desc = static_cast<Desc&>(base);
    for (Node* n : desc.locked) n->lock.unlock_same_version();
    desc.locked.clear();
  }

  bool has_writes(const OtbDsDesc& base) const override {
    return !static_cast<const Desc&>(base).writes.empty();
  }

  std::size_t write_count(const OtbDsDesc& base) const override {
    return static_cast<const Desc&>(base).writes.size();
  }

 private:
  enum class Op : std::uint8_t { kInsert, kReplace, kErase };

  /// kPresent: the found node must merely stay unmarked (optimised rule).
  /// kStructural: the (pred -> curr) link must be intact and both unmarked.
  enum class ReadKind : std::uint8_t { kPresent, kStructural };

  struct Node {
    Node(Key k, Value v) : key(k), value(v) {}
    ~Node() { delete mv; }
    const Key key;
    const Value value;
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    VersionedLock lock;
    /// Bounded version chain of this node's successive `next` values
    /// (nullptr when OTB_MV_VERSIONS was 0 at construction).
    MvChain* const mv = mv_make_chain();
  };

  struct ReadEntry {
    Node* pred;
    Node* curr;
    ReadKind kind;
  };

  struct WriteEntry {
    Node* pred;
    Node* curr;  // victim for kReplace / kErase
    Op op;
    Key key;
    Value value;
  };

  struct Desc final : OtbDsDesc {
    static constexpr std::size_t kInline = 8;
    SmallVec<ReadEntry, kInline> reads;
    SmallVec<WriteEntry, kInline> writes;
    SmallVec<Node*, 2 * kInline> locked;
    mutable SmallVec<std::uint64_t, 2 * kInline> snaps;
    /// Level-1 traversal hints; survive reset() on purpose (retry attempts
    /// inherit them, epoch-gated at consult time — see traversal_hints.h).
    SmallVec<LocalHint<Node>, 2 * kInline> hints;
    std::uint64_t hint_epoch = 0;

    void reset() override {
      reads.clear();
      writes.clear();
      locked.clear();
      snaps.clear();
      OtbDsDesc::reset();
    }
  };

  Desc& desc(TxHost& tx) { return static_cast<Desc&>(tx.descriptor(*this)); }

  bool validate_entry(const ReadEntry& e) const {
    const bool curr_live = !e.curr->marked.load(std::memory_order_acquire);
    if (e.kind == ReadKind::kPresent) return curr_live;
    return curr_live && !e.pred->marked.load(std::memory_order_acquire) &&
           e.pred->next.load(std::memory_order_acquire) == e.curr;
  }

  /// Unmonitored traversal with mid-removal re-runs (as in the set), seeded
  /// by the hint layer when enabled: the entry point is advisory only, so a
  /// stale hint falls back to a full from-head walk — never a conflict.
  std::tuple<Node*, Node*, bool> traverse(TxHost& tx, Desc& desc, Key key) {
    metrics::TxTally& tally = tx.op_tally();
    const bool hints_on = traversal_hints_enabled();
    HintSource src = HintSource::kNone;
    Node* start =
        hints_on ? hint::pick_start(desc, key, hint_owner_id(), head_, src)
                 : head_;
    std::uint64_t steps = 0;
    for (;;) {
      auto [pred, curr] = locate_from(start, key, steps);
      if (!pred->marked.load(std::memory_order_acquire) &&
          !curr->marked.load(std::memory_order_acquire)) {
        if (hints_on) {
          hint::count(tally, src);
          hint::remember(desc, hint_owner_id(), pred, curr, head_, tail_);
        }
        hint::sample_traversal(tally, steps);
        return {pred, curr, curr->key == key};
      }
      if (start != head_) {
        start = head_;
        src = HintSource::kNone;
        continue;
      }
      tx.on_operation_validate();
    }
  }

  WriteEntry* find_local(Desc& desc, Key key) {
    for (WriteEntry& w : desc.writes) {
      if (w.key == key) return &w;
    }
    return nullptr;
  }
  const WriteEntry* find_local(const Desc& desc, Key key) const {
    for (const WriteEntry& w : desc.writes) {
      if (w.key == key) return &w;
    }
    return nullptr;
  }

  void erase_local(Desc& desc, Key key) {
    for (auto it = desc.writes.begin(); it != desc.writes.end(); ++it) {
      if (it->key == key) {
        desc.writes.erase(it);
        return;
      }
    }
  }

  /// Successor of `n` as of stamp `t` (snapshot walk step); misses when the
  /// node carries no chain or the ring overflowed past `t`.
  const Node* mv_next_at(SnapshotTx& snap, const Node* n, std::uint64_t t) const {
    if (n->mv == nullptr) throw SnapshotMiss{};
    const MvChain::Resolved r = n->mv->resolve_at(t);
    snap.sample_chain_depth(r.depth);
    if (!r.found) throw SnapshotMiss{};
    return static_cast<const Node*>(r.ptr);
  }

  std::pair<Node*, Node*> locate(Key key) const {
    std::uint64_t steps = 0;
    return locate_from(head_, key, steps);
  }

  std::pair<Node*, Node*> locate_from(Node* start, Key key,
                                      std::uint64_t& steps) const {
    Node* pred = start;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = pred->next.load(std::memory_order_acquire);
      ++steps;
    }
    return {pred, curr};
  }

  Node* head_;
  Node* tail_;
};

}  // namespace otb::tx
