// Traversal-hint layer: start boosted traversals near the target instead of
// at the head (DESIGN.md, "Traversal hints and opacity").
//
// Two levels, both *advisory* — a hint only chooses the traversal entry
// point; the unchanged unmonitored-traversal + post-validation protocol
// certifies whatever position the walk lands on, so a stale hint costs a
// fallback re-traversal, never a safety violation:
//
//   * Level 1 — transaction-local reuse: each descriptor keeps a key-ordered
//     `SmallVec` of positions its own (post-validated) operations landed on;
//     later operations of the same transaction — including retry attempts
//     inheriting a pooled descriptor — resume from the closest predecessor
//     at or below the target key.
//   * Level 2 — cross-transaction predecessor cache (`PredCache` below): a
//     per-thread, per-structure direct-mapped table of recent (key, pred)
//     pairs seeding the first traversal of a brand-new transaction.
//
// Cached pointers outlive the epoch guard that validated them, so every
// entry carries the storing thread's announced epoch and is age-gated at
// lookup: a node observed unmarked under announce epoch E is retired at
// epoch >= E and freed only once min-active >= E + 2, hence any guard
// announced at <= E + 1 pins reclamation below the free threshold and may
// still dereference it.  Entries older than that are treated as misses
// before any dereference happens.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "common/epoch.h"
#include "common/hash.h"
#include "metrics/histogram.h"
#include "metrics/tally.h"

namespace otb::tx {

// ---- knob (mirrors OTB_VALIDATION_FAST_PATH) --------------------------------

namespace detail {
inline std::atomic<bool>& traversal_hints_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("OTB_TRAVERSAL_HINTS");
    return !(env != nullptr && (env[0] == '0' || env[0] == 'n' || env[0] == 'N' ||
                                env[0] == 'f' || env[0] == 'F'));
  }()};
  return flag;
}
}  // namespace detail

/// Whether boosted operations may seed traversals from hints.  On by
/// default; `OTB_TRAVERSAL_HINTS=0` disables it for a whole run, which
/// makes every operation walk from the head exactly as before this layer
/// existed (and tick none of the hint counters).
inline bool traversal_hints_enabled() {
  return detail::traversal_hints_flag().load(std::memory_order_relaxed);
}

/// Programmatic override (benches A/B both settings in one process).
inline void set_traversal_hints(bool on) {
  detail::traversal_hints_flag().store(on, std::memory_order_relaxed);
}

/// Where a traversal's entry point came from — maps 1:1 onto the
/// kHintHitLocal / kHintHitCached / kHintMiss counters.
enum class HintSource : std::uint8_t { kNone, kLocal, kCached };

// ---- level 2: cross-transaction predecessor cache ---------------------------

/// Per-thread direct-mapped cache of recent (key, predecessor) positions,
/// keyed by (structure owner id, key cluster).  Lock-free by construction:
/// the table is thread-local, only the node pointers inside entries are
/// shared state, and those are epoch-age-gated before any dereference.
class PredCache {
 public:
  struct Entry {
    std::uint64_t owner = 0;  // OtbDs::hint_owner_id(); 0 marks an empty slot
    std::int64_t key = 0;     // the node's (immutable) key at store time
    void* node = nullptr;
    std::uint64_t stamp = 0;  // storing thread's announced epoch
  };

  static constexpr std::size_t kEntries = 256;  // 8 KiB per thread
  static constexpr unsigned kClusterShift = 6;  // 64-key clusters per slot

  /// Remember that `node` (holding `key`) was a validated predecessor.
  /// Must be called inside an epoch guard — outside one the pointer has no
  /// reclamation protection and the store is dropped.
  static void store(std::uint64_t owner, std::int64_t key, void* node) {
    const std::uint64_t stamp = ebr::announced_epoch();
    if (stamp == 0) return;
    slot(owner, cluster_of(key)) = Entry{owner, key, node, stamp};
  }

  /// Best cached predecessor strictly below `target`, probing the target's
  /// cluster and the one just below it.  Returns nullptr (a miss) unless
  /// the entry belongs to `owner` and is young enough for the caller's
  /// current guard to dereference (see the age-gate rule in the header
  /// comment).  The caller still owes a marked-bit check before use.
  static const Entry* lookup(std::uint64_t owner, std::int64_t target) {
    const std::uint64_t announced = ebr::announced_epoch();
    if (announced == 0) return nullptr;
    const std::int64_t c = cluster_of(target);
    if (const Entry* e = probe(owner, c, target, announced)) return e;
    return probe(owner, c - 1, target, announced);
  }

  /// Empty the calling thread's table (tests make hint provenance
  /// deterministic with this).
  static void clear_this_thread() {
    for (Entry& e : table()) e = Entry{};
  }

 private:
  static std::int64_t cluster_of(std::int64_t key) {
    return key >> kClusterShift;  // arithmetic shift: clusters stay ordered
  }

  static std::array<Entry, kEntries>& table() {
    thread_local std::array<Entry, kEntries> t{};
    return t;
  }

  static Entry& slot(std::uint64_t owner, std::int64_t cluster) {
    const std::uint64_t h =
        mix64(owner ^ (static_cast<std::uint64_t>(cluster) * 0x9e3779b97f4a7c15ULL));
    return table()[h & (kEntries - 1)];
  }

  static const Entry* probe(std::uint64_t owner, std::int64_t cluster,
                            std::int64_t target, std::uint64_t announced) {
    const Entry& e = slot(owner, cluster);
    if (e.owner != owner || e.key >= target) return nullptr;
    if (announced > e.stamp + 1) return nullptr;  // too old to dereference
    return &e;
  }
};

// ---- shared structure-side helpers ------------------------------------------
//
// The three traversal-based structures (list set, list map, skip-list set)
// share the whole hint discipline; only the node type differs.  Each
// descriptor carries `SmallVec<LocalHint<Node>, ...> hints` (key-ordered)
// plus `std::uint64_t hint_epoch` (oldest announce epoch any surviving hint
// was recorded under), and the templates below do the rest.  Node types
// must expose an immutable `key` and an atomic `marked`.

/// One level-1 hint: a position this transaction's own operation validated.
template <typename Node>
struct LocalHint {
  std::int64_t key;
  Node* node;
};

namespace hint {

/// Drop a descriptor's level-1 hints once the current guard can no longer
/// safely dereference them (the age-gate rule in the header comment;
/// inherited hints of a retry attempt were recorded under an older guard).
template <typename Desc>
inline void age_gate(Desc& desc) {
  if (desc.hints.empty()) return;
  const std::uint64_t announced = ebr::announced_epoch();
  if (announced == 0 || announced > desc.hint_epoch + 1) {
    desc.hints.clear();
    desc.hint_epoch = 0;
  }
}

/// Best traversal entry point strictly below `key`: the closer of the
/// transaction's own validated positions (level 1) and the thread's cached
/// predecessor (level 2); `fallback` (the head sentinel) on a miss.  Marked
/// candidates are rejected up front as a cheap pre-filter — the structures'
/// post-traversal marked checks still govern correctness.
///
/// `max_gap` bounds how far below `key` a usable hint may sit.  Linked
/// lists leave it unlimited (any start below the target beats an O(n) head
/// walk); the skip list passes a small bound because its hinted walk is
/// bottom-level-only and loses to the O(log n) multi-level find once the
/// landing point is more than a few hops away.
template <typename Node, typename Desc>
inline Node* pick_start(Desc& desc, std::int64_t key, std::uint64_t owner,
                        Node* fallback, HintSource& src,
                        std::int64_t max_gap = INT64_MAX) {
  age_gate(desc);
  const std::int64_t floor_key = key > max_gap ? key - max_gap : INT64_MIN;
  Node* local = nullptr;
  std::int64_t local_key = 0;
  for (std::size_t i = desc.hints.size(); i-- > 0;) {
    if (desc.hints[i].key < key) {
      Node* n = desc.hints[i].node;
      if (desc.hints[i].key >= floor_key &&
          !n->marked.load(std::memory_order_acquire)) {
        local = n;
        local_key = desc.hints[i].key;
      }
      break;
    }
  }
  Node* cached = nullptr;
  std::int64_t cached_key = 0;
  if (const PredCache::Entry* e = PredCache::lookup(owner, key)) {
    if (e->key >= floor_key) {
      Node* n = static_cast<Node*>(e->node);
      if (!n->marked.load(std::memory_order_acquire)) {
        cached = n;
        cached_key = e->key;
      }
    }
  }
  if (local != nullptr && (cached == nullptr || local_key >= cached_key)) {
    src = HintSource::kLocal;
    return local;
  }
  if (cached != nullptr) {
    src = HintSource::kCached;
    return cached;
  }
  src = HintSource::kNone;
  return fallback;
}

/// Insert (key, node) into the key-ordered hint list, replacing on equal
/// key.  Linear memmove insertion — hint lists hold at most two entries per
/// operation of one transaction.
template <typename Node, typename Desc>
inline void local_insert(Desc& desc, std::int64_t key, Node* node) {
  auto& h = desc.hints;
  std::size_t lo = h.size();
  while (lo > 0 && h[lo - 1].key >= key) --lo;
  if (lo < h.size() && h[lo].key == key) {
    h[lo].node = node;
    return;
  }
  h.insert(h.begin() + lo, {key, node});
}

/// Record a validated (pred, curr) landing position for later operations of
/// this transaction (level 1) and later transactions on this thread
/// (level 2).  Outside an epoch guard nothing is recorded — there would be
/// no reclamation protection to inherit.
template <typename Node, typename Desc>
inline void remember(Desc& desc, std::uint64_t owner, Node* pred, Node* curr,
                     const Node* head, const Node* tail) {
  const std::uint64_t announced = ebr::announced_epoch();
  if (announced == 0) return;
  // The descriptor stamp keeps the OLDEST epoch of any surviving hint;
  // stamping new entries with an older value is only conservative (they age
  // out sooner than strictly necessary).
  if (desc.hints.empty()) desc.hint_epoch = announced;
  if (pred != head) {
    local_insert(desc, pred->key, pred);
    PredCache::store(owner, pred->key, pred);
  }
  if (curr != tail) local_insert(desc, curr->key, curr);
}

/// Tick the counter matching a traversal's entry-point provenance.
inline void count(metrics::TxTally& tally, HintSource src) {
  switch (src) {
    case HintSource::kLocal:
      tally.hint_hit_local += 1;
      break;
    case HintSource::kCached:
      tally.hint_hit_cached += 1;
      break;
    case HintSource::kNone:
      tally.hint_miss += 1;
      break;
  }
}

/// One traversal-length sample (node hops for one operation, summed across
/// its restarts).  Recorded whether or not hints are enabled — this is the
/// instrument the hint A/B benches read.
inline void sample_traversal(metrics::TxTally& tally, std::uint64_t steps) {
  tally.traversals += 1;
  tally.traversal_steps += steps;
  tally.traversal_log2[metrics::Histogram::bucket_of(steps)] += 1;
}

}  // namespace hint

}  // namespace otb::tx
