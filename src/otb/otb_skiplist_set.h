// OTB-Set over a lazy skip list (§3.2.1 "Skip List Implementation").
//
// Same three-step OTB protocol as the linked-list set, with the paper's
// skip-list-specific rules:
//   * read/write-set entries carry the whole pred/succ arrays, and commit
//     locks and validates pred (and victim) nodes at every relevant level;
//   * successful contains / unsuccessful add validate only that the bottom-
//     level curr is still unmarked; unsuccessful remove/contains validate
//     only the bottom-level (pred, curr) pair — every key appears at level 0;
//   * operations that meet a node whose `fully_linked` flag is still clear
//     wait for the concurrent committer to finish linking;
//   * at commit, per-level traversal resumes from the saved pred of each
//     level independently (the levels may diverge within one transaction).
//
// The class also exposes the raw bottom-level chain (head / next-pointer
// walking) consumed by the OTB skip-list priority queue (§3.2.2,
// Algorithm 6), and `*_op` entry points that operate on an externally held
// descriptor so the priority queue can nest a set descriptor inside its own.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/epoch.h"
#include "common/rng.h"
#include "common/small_vec.h"
#include "common/spinlock.h"
#include "otb/mv.h"
#include "otb/otb_ds.h"
#include "otb/traversal_hints.h"

namespace otb::tx {

class OtbSkipListSet final : public OtbDs {
 public:
  using Key = std::int64_t;
  static constexpr unsigned kMaxLevel = 20;

  OtbSkipListSet() {
    head_ = new Node(std::numeric_limits<Key>::min(), kMaxLevel - 1);
    tail_ = new Node(std::numeric_limits<Key>::max(), kMaxLevel - 1);
    for (unsigned l = 0; l < kMaxLevel; ++l) {
      head_->next[l].store(tail_, std::memory_order_release);
    }
    head_->fully_linked.store(true, std::memory_order_release);
    tail_->fully_linked.store(true, std::memory_order_release);
    // Stamp-0 bottom-level version so snapshots see the empty set.
    std::uint64_t unused = 0;
    mv_push(head_->mv, tail_, 0, unused);
  }

  ~OtbSkipListSet() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  OtbSkipListSet(const OtbSkipListSet&) = delete;
  OtbSkipListSet& operator=(const OtbSkipListSet&) = delete;

  struct Desc;  // defined below; public so the priority queue can nest it

  // ---- transactional operations -----------------------------------------

  bool add(TxHost& tx, Key key) {
    return add_op(tx, static_cast<Desc&>(tx.descriptor(*this)), key);
  }
  bool remove(TxHost& tx, Key key) {
    return remove_op(tx, static_cast<Desc&>(tx.descriptor(*this)), key);
  }
  bool contains(TxHost& tx, Key key) {
    return contains_op(tx, static_cast<Desc&>(tx.descriptor(*this)), key);
  }

  // ---- snapshot (multi-version) reads ------------------------------------

  /// Membership as of the snapshot's stamp.  The multilevel descent over
  /// current links is only an accelerator hint; the answer comes from an
  /// as-of-stamp chain walk along the bottom level, starting at the landing
  /// predecessor when it was alive at the stamp (else at head).  Throws
  /// SnapshotMiss when a chain can no longer serve the stamp.
  bool contains_at(SnapshotTx& snap, Key key) const {
    const std::uint64_t t = snap.stamp_for(commit_seq());
    const Node* c = descend_hint_at(key, t);
    for (;;) {
      const Node* nx = mv_next_at(snap, c, t);
      if (nx->key >= key) return nx->key == key;
      c = nx;
    }
  }

  /// Smallest key live at stamp `t` (the nested PQ's `min_at`, which draws
  /// `t` from the PQ's own clock).  False when empty at the stamp.
  bool first_at(SnapshotTx& snap, std::uint64_t t, Key* out) const {
    const Node* first = mv_next_at(snap, head_, t);
    if (first == tail_) return false;
    *out = first->key;
    return true;
  }

  bool supports_snapshot_reads() const override { return true; }

  // Descriptor-explicit entry points (used by OtbSkipListPQ).
  bool add_op(TxHost& tx, Desc& desc, Key key) {
    return operation(tx, desc, Op::kAdd, key);
  }
  bool remove_op(TxHost& tx, Desc& desc, Key key) {
    return operation(tx, desc, Op::kRemove, key);
  }
  bool contains_op(TxHost& tx, Desc& desc, Key key) {
    return operation(tx, desc, Op::kContains, key);
  }

  // ---- raw bottom-level access for the priority queue --------------------

  struct NodeRef {
    const void* ptr = nullptr;
    bool operator==(const NodeRef&) const = default;
  };

  NodeRef head_ref() const { return {head_}; }

  /// Bottom-level successor of `ref` (marked nodes included — the PQ's
  /// inline pointer checks detect movement, §3.2.2).
  NodeRef next_ref(NodeRef ref) const {
    const Node* n = static_cast<const Node*>(ref.ptr);
    return {n->next[0].load(std::memory_order_acquire)};
  }

  Key key_of(NodeRef ref) const { return static_cast<const Node*>(ref.ptr)->key; }
  bool is_tail(NodeRef ref) const { return ref.ptr == tail_; }
  bool is_marked(NodeRef ref) const {
    return static_cast<const Node*>(ref.ptr)->marked.load(std::memory_order_acquire);
  }

  // ---- non-transactional helpers -----------------------------------------

  bool add_seq(Key key) {
    std::array<Node*, kMaxLevel> preds, succs;
    if (find(key, preds, succs) != -1) return false;
    const unsigned top = random_level();
    Node* node = new Node(key, top);
    for (unsigned l = 0; l <= top; ++l) {
      node->next[l].store(succs[l], std::memory_order_relaxed);
    }
    for (unsigned l = 0; l <= top; ++l) {
      preds[l]->next[l].store(node, std::memory_order_release);
    }
    node->fully_linked.store(true, std::memory_order_release);
    // Seed bottom-level versions at the current (quiescent) begin count.
    const std::uint64_t ts = commit_seq().begin_count();
    std::uint64_t unused = 0;
    mv_push(node->mv, succs[0], ts, unused);
    mv_push(preds[0]->mv, node, ts, unused);
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next[0].load(std::memory_order_acquire); c != tail_;
         c = c->next[0].load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  std::vector<Key> snapshot_unsafe() const {
    std::vector<Key> out;
    for (const Node* c = head_->next[0].load(std::memory_order_acquire); c != tail_;
         c = c->next[0].load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) out.push_back(c->key);
    }
    return out;
  }

  // ---- OTB-DS protocol ----------------------------------------------------

  std::unique_ptr<OtbDsDesc> make_desc() const override {
    return std::make_unique<Desc>();
  }

  bool validate(const OtbDsDesc& base, bool check_locks) const override {
    return validate_desc(static_cast<const Desc&>(base), check_locks);
  }

  bool pre_commit(OtbDsDesc& base, bool use_locks) override {
    return pre_commit_desc(static_cast<Desc&>(base), use_locks);
  }

  void do_on_commit(OtbDsDesc& base) override {
    on_commit_desc(static_cast<Desc&>(base));
  }

  void do_post_commit(OtbDsDesc& base) override {
    post_commit_desc(static_cast<Desc&>(base));
  }

  void do_on_abort(OtbDsDesc& base) override {
    on_abort_desc(static_cast<Desc&>(base));
  }

  bool has_writes(const OtbDsDesc& base) const override {
    return !static_cast<const Desc&>(base).writes.empty();
  }

  std::size_t write_count(const OtbDsDesc& base) const override {
    return static_cast<const Desc&>(base).writes.size();
  }

  // Descriptor-explicit protocol (for the nesting priority queue — the
  // PQ's own commit sequence brackets these, so they bypass the wrappers).
  bool validate_desc(const Desc& desc, bool check_locks) const;
  bool pre_commit_desc(Desc& desc, bool use_locks);
  void on_commit_desc(Desc& desc);
  void post_commit_desc(Desc& desc) {
    for (Node* n : desc.locked) n->lock.unlock_new_version();
    desc.locked.clear();
  }
  void on_abort_desc(Desc& desc) {
    for (Node* n : desc.locked) n->lock.unlock_same_version();
    desc.locked.clear();
  }

 private:
  enum class Op : std::uint8_t { kAdd, kRemove, kContains };

  struct Node {
    Node(Key k, unsigned top) : key(k), top_level(top) {}
    ~Node() { delete mv; }
    const Key key;
    const unsigned top_level;
    std::array<std::atomic<Node*>, kMaxLevel> next{};
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    VersionedLock lock;
    /// Bounded version chain of this node's bottom-level `next` values
    /// (nullptr when OTB_MV_VERSIONS was 0 at construction).  Upper levels
    /// are unversioned: snapshot walks use them only as descent hints.
    MvChain* const mv = mv_make_chain();
    /// Lifetime stamps gating the descent hint's "alive at t" test.  0 =
    /// alive since before any snapshot (head/tail/seq-seeded); dead_ts max
    /// = still alive.
    std::atomic<std::uint64_t> born_ts{0};
    std::atomic<std::uint64_t> dead_ts{~std::uint64_t{0}};
  };

  struct ReadEntry {
    std::array<Node*, kMaxLevel> preds;
    std::array<Node*, kMaxLevel> succs;
    unsigned top;  // highest level the entry's rule must check
    Op op;
    bool success = false;
  };

  struct WriteEntry {
    std::array<Node*, kMaxLevel> preds;
    Node* victim;  // kRemove only
    unsigned top;  // node top level (victim's, or the new node's)
    Op op;
    Key key;
  };

 public:
  struct Desc final : OtbDsDesc {
    /// Entries are big (whole pred/succ arrays), but descriptors are
    /// heap-allocated and pooled, so inline storage is still the right
    /// trade: 8 covers every typical transaction.
    static constexpr std::size_t kInline = 8;
    SmallVec<ReadEntry, kInline> reads;
    SmallVec<WriteEntry, kInline> writes;
    SmallVec<Node*, 2 * kInline> locked;
    /// Scratch for validate_desc's lock snapshots (up to 2*(top+1) words
    /// per entry; levels are geometric, so 64 rarely spills).
    mutable SmallVec<std::uint64_t, 64> snaps;
    /// Level-1 traversal hints (bottom-level positions); survive reset() on
    /// purpose — retry attempts inherit them, epoch-gated at consult time
    /// (see traversal_hints.h).
    SmallVec<LocalHint<Node>, 2 * kInline> hints;
    std::uint64_t hint_epoch = 0;

    void reset() override {
      reads.clear();
      writes.clear();
      locked.clear();
      snaps.clear();
      OtbDsDesc::reset();
    }
  };

 private:
  bool operation(TxHost& tx, Desc& desc, Op op, Key key) {
    // Step 1: local write-set lookup (same rules as the linked list).
    if (const WriteEntry* w = find_local(desc, key)) {
      if (w->op == Op::kAdd) {
        switch (op) {
          case Op::kAdd:
            return false;
          case Op::kContains:
            return true;
          case Op::kRemove:
            erase_local(desc, key);
            return true;
        }
      } else {
        switch (op) {
          case Op::kRemove:
          case Op::kContains:
            return false;
          case Op::kAdd:
            erase_local(desc, key);
            return true;
        }
      }
    }

    // Step 2: unmonitored traversal; wait out half-linked nodes, re-run when
    // the landing pair is mid-removal.  With hints on, the walk may start as
    // a bottom-level-only scan from a validated predecessor near the key
    // (DESIGN.md, "Traversal hints and opacity"); that serves every outcome
    // whose validation rule reads only level 0 — contains (either result),
    // unsuccessful add, unsuccessful remove, and removal of a height-0 node.
    // Outcomes that link or unlink upper levels need the full pred/succ
    // arrays, so they fall back to a full find() and count as a hint miss.
    // A hinted walk is bottom-level-only, so it only beats the multi-level
    // find() when the hint lands within a few hops of the key; farther
    // hints are rejected up front (pick_start's max_gap) and the operation
    // takes the O(log n) path instead.
    static constexpr std::int64_t kMaxHintGap = 16;
    metrics::TxTally& tally = tx.op_tally();
    const bool hints_on = traversal_hints_enabled();
    HintSource src = HintSource::kNone;
    Node* start = hints_on ? hint::pick_start(desc, key, hint_owner_id(), head_,
                                              src, kMaxHintGap)
                           : head_;
    std::uint64_t steps = 0;
    std::array<Node*, kMaxLevel> preds{}, succs{};
    int found_level;
    for (;;) {
      if (start != head_) {
        Node* pred = start;
        Node* curr = pred->next[0].load(std::memory_order_acquire);
        while (curr->key < key) {
          pred = curr;
          curr = pred->next[0].load(std::memory_order_acquire);
          ++steps;
        }
        if (curr->key == key) {
          // §3.2.1: a node not yet fully linked belongs to a commit in
          // flight; wait for it rather than aborting.
          while (!curr->fully_linked.load(std::memory_order_acquire)) cpu_relax();
        }
        const bool bottom_sufficient =
            op == Op::kContains || (op == Op::kAdd && curr->key == key) ||
            (op == Op::kRemove && (curr->key != key || curr->top_level == 0));
        if (!bottom_sufficient || curr->marked.load(std::memory_order_acquire) ||
            pred->marked.load(std::memory_order_acquire)) {
          // Either the outcome needs the full arrays, or the hinted walk
          // landed on a pair mid-removal.  A stale hint is not a conflict:
          // restart from the head without consulting the validator.
          start = head_;
          src = HintSource::kNone;
          continue;
        }
        preds[0] = pred;
        succs[0] = curr;
        found_level = curr->key == key ? 0 : -1;
        break;
      }
      found_level = find(key, preds, succs, &steps);
      Node* curr = succs[0];
      if (found_level != -1) {
        Node* found = succs[static_cast<unsigned>(found_level)];
        // §3.2.1: a node that is not yet fully linked belongs to a commit in
        // flight; wait for it rather than aborting.
        while (!found->fully_linked.load(std::memory_order_acquire)) cpu_relax();
      }
      if (!curr->marked.load(std::memory_order_acquire) &&
          !preds[0]->marked.load(std::memory_order_acquire)) {
        break;
      }
      tx.on_operation_validate();
    }
    if (hints_on) {
      hint::count(tally, src);
      hint::remember(desc, hint_owner_id(), preds[0], succs[0], head_, tail_);
    }
    hint::sample_traversal(tally, steps);

    const bool found = succs[0]->key == key;
    bool success = false;
    switch (op) {
      case Op::kAdd:
        success = !found;
        break;
      case Op::kRemove:
      case Op::kContains:
        success = found;
        break;
    }

    ReadEntry entry{preds, succs, 0, op, success};
    if (op == Op::kAdd && success) {
      // The write decides its level now so that exactly the preds it will
      // link through get validated and locked.
      const unsigned top = random_level();
      entry.top = top;
      desc.reads.push_back(entry);
      desc.writes.push_back({preds, nullptr, top, Op::kAdd, key});
    } else if (op == Op::kRemove && success) {
      Node* victim = succs[0];
      entry.top = victim->top_level;
      desc.reads.push_back(entry);
      desc.writes.push_back({preds, victim, victim->top_level, Op::kRemove, key});
    } else {
      desc.reads.push_back(entry);  // read-only outcome, bottom-level rules
    }

    tx.on_operation_validate();
    return success;
  }

  bool validate_entry(const ReadEntry& e) const {
    Node* curr = e.succs[0];
    const bool curr_live = !curr->marked.load(std::memory_order_acquire);
    if ((e.op == Op::kContains && e.success) || (e.op == Op::kAdd && !e.success)) {
      return curr_live;  // the key must merely stay present (level 0 holds it)
    }
    if (!e.success) {
      // Unsuccessful remove/contains: absence is decided at level 0 alone —
      // any insert must appear there.
      return curr_live && !e.preds[0]->marked.load(std::memory_order_acquire) &&
             e.preds[0]->next[0].load(std::memory_order_acquire) == curr;
    }
    // Successful add/remove: every level the commit will touch must hold.
    for (unsigned l = 0; l <= e.top; ++l) {
      Node* pred = e.preds[l];
      Node* succ = e.succs[l];
      if (pred->marked.load(std::memory_order_acquire) ||
          succ->marked.load(std::memory_order_acquire) ||
          pred->next[l].load(std::memory_order_acquire) != succ) {
        return false;
      }
    }
    return true;
  }

  /// Nodes whose lock words an entry's validation must pin.
  template <typename Fn>
  void for_each_involved(const ReadEntry& e, Fn&& fn) const {
    if ((e.op == Op::kContains && e.success) || (e.op == Op::kAdd && !e.success)) {
      fn(e.succs[0]);
      return;
    }
    if (!e.success) {
      fn(e.preds[0]);
      fn(e.succs[0]);
      return;
    }
    for (unsigned l = 0; l <= e.top; ++l) {
      fn(e.preds[l]);
      fn(e.succs[l]);
    }
  }

  static unsigned random_level() {
    thread_local Xorshift rng{0xf00du ^ reinterpret_cast<std::uintptr_t>(&rng)};
    unsigned level = 0;
    while ((rng.next() & 1) != 0 && level < kMaxLevel - 1) ++level;
    return level;
  }

  int find(Key key, std::array<Node*, kMaxLevel>& preds,
           std::array<Node*, kMaxLevel>& succs,
           std::uint64_t* steps = nullptr) const {
    int found_level = -1;
    std::uint64_t hops = 0;
    Node* pred = head_;
    for (unsigned l = kMaxLevel; l-- > 0;) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = pred->next[l].load(std::memory_order_acquire);
        ++hops;
      }
      if (found_level == -1 && curr->key == key) found_level = static_cast<int>(l);
      preds[l] = pred;
      succs[l] = curr;
    }
    if (steps != nullptr) *steps += hops;
    return found_level;
  }

  /// Bottom-level successor of `n` as of stamp `t` (snapshot walk step);
  /// misses when the node carries no chain or the ring overflowed past `t`.
  const Node* mv_next_at(SnapshotTx& snap, const Node* n, std::uint64_t t) const {
    if (n->mv == nullptr) throw SnapshotMiss{};
    const MvChain::Resolved r = n->mv->resolve_at(t);
    snap.sample_chain_depth(r.depth);
    if (!r.found) throw SnapshotMiss{};
    return static_cast<const Node*>(r.ptr);
  }

  /// Multilevel descent over CURRENT links (levels >= 1) toward `key`,
  /// used purely as an O(log n) accelerator for snapshot walks.  The
  /// landing predecessor is trusted only if it was alive at `t` (born <= t
  /// < dead); otherwise the walk starts at head.  A wrong-but-alive hint is
  /// impossible: any alive-at-t node with key < `key` is a sound starting
  /// point for the as-of-t bottom walk, because the as-of-t list is sorted
  /// and the walk follows only as-of-t links from there.
  const Node* descend_hint_at(Key key, std::uint64_t t) const {
    const Node* pred = head_;
    for (unsigned l = kMaxLevel; l-- > 1;) {
      const Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = pred->next[l].load(std::memory_order_acquire);
      }
    }
    if (pred == head_) return head_;
    if (pred->born_ts.load(std::memory_order_acquire) <= t &&
        t < pred->dead_ts.load(std::memory_order_acquire)) {
      return pred;
    }
    return head_;
  }

  const WriteEntry* find_local(const Desc& desc, Key key) const {
    for (const WriteEntry& w : desc.writes) {
      if (w.key == key) return &w;
    }
    return nullptr;
  }

  void erase_local(Desc& desc, Key key) {
    for (auto it = desc.writes.begin(); it != desc.writes.end(); ++it) {
      if (it->key == key) {
        desc.writes.erase(it);
        return;
      }
    }
  }

  Node* head_;
  Node* tail_;
};

// ---- out-of-line protocol bodies ------------------------------------------

inline bool OtbSkipListSet::validate_desc(const Desc& desc, bool check_locks) const {
  auto& snaps = desc.snaps;  // descriptor-resident scratch, reused per call
  snaps.clear();
  if (check_locks) {
    for (const ReadEntry& e : desc.reads) {
      bool locked = false;
      for_each_involved(e, [&](Node* n) {
        const std::uint64_t w = n->lock.load();
        if (VersionedLock::is_locked(w)) locked = true;
        snaps.push_back(w);
      });
      if (locked) return false;
    }
  }
  for (const ReadEntry& e : desc.reads) {
    if (!validate_entry(e)) return false;
  }
  if (check_locks) {
    std::size_t i = 0;
    for (const ReadEntry& e : desc.reads) {
      bool changed = false;
      for_each_involved(e, [&](Node* n) {
        if (n->lock.load() != snaps[i++]) changed = true;
      });
      if (changed) return false;
    }
  }
  return true;
}

inline bool OtbSkipListSet::pre_commit_desc(Desc& desc, bool use_locks) {
  if (desc.writes.empty()) return true;
  std::sort(desc.writes.begin(), desc.writes.end(),
            [](const WriteEntry& a, const WriteEntry& b) { return a.key > b.key; });
  if (use_locks) {
    auto lock_one = [&](Node* n) -> bool {
      for (Node* held : desc.locked) {
        if (held == n) return true;
      }
      if (!n->lock.try_lock()) return false;
      desc.locked.push_back(n);
      return true;
    };
    for (const WriteEntry& e : desc.writes) {
      for (unsigned l = 0; l <= e.top; ++l) {
        if (!lock_one(e.preds[l])) return false;
      }
      if (e.op == Op::kRemove && !lock_one(e.victim)) return false;
    }
  }
  return validate_desc(desc, /*check_locks=*/false);
}

inline void OtbSkipListSet::on_commit_desc(Desc& desc) {
  ebr::Guard guard;
  for (const WriteEntry& e : desc.writes) {
    if (e.op == Op::kAdd) {
      Node* node = new Node(e.key, e.top);
      node->lock.try_lock();  // stays locked until post_commit
      desc.locked.push_back(node);
      // Per-level local re-traversal: levels may have diverged through this
      // transaction's own earlier (higher-key) commits.
      std::array<Node*, kMaxLevel> preds, succs;
      for (unsigned l = 0; l <= e.top; ++l) {
        Node* pred = e.preds[l];
        Node* curr = pred->next[l].load(std::memory_order_acquire);
        while (curr->key < e.key) {
          pred = curr;
          curr = pred->next[l].load(std::memory_order_acquire);
        }
        preds[l] = pred;
        succs[l] = curr;
      }
      node->born_ts.store(desc.mv_stamp, std::memory_order_release);
      for (unsigned l = 0; l <= e.top; ++l) {
        node->next[l].store(succs[l], std::memory_order_relaxed);
      }
      for (unsigned l = 0; l <= e.top; ++l) {
        preds[l]->next[l].store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      // Version the bottom-level link change (upper levels are descent
      // hints only and stay unversioned).
      mv_push(node->mv, succs[0], desc.mv_stamp, desc.mv_reclaimed);
      mv_push(preds[0]->mv, node, desc.mv_stamp, desc.mv_reclaimed);
    } else {
      Node* victim = e.victim;
      victim->marked.store(true, std::memory_order_release);
      victim->dead_ts.store(desc.mv_stamp, std::memory_order_release);
      for (unsigned l = e.top + 1; l-- > 0;) {
        Node* pred = e.preds[l];
        Node* curr = pred->next[l].load(std::memory_order_acquire);
        while (curr->key < e.key) {
          pred = curr;
          curr = pred->next[l].load(std::memory_order_acquire);
        }
        if (curr == victim) {
          Node* after = victim->next[l].load(std::memory_order_relaxed);
          pred->next[l].store(after, std::memory_order_release);
          if (l == 0) mv_push(pred->mv, after, desc.mv_stamp, desc.mv_reclaimed);
        }
      }
      ebr::retire(victim);
    }
  }
}

}  // namespace otb::tx
