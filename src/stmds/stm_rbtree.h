// Pure-STM red-black tree (CLRS formulation with a nil sentinel): the
// micro-benchmark substrate of Figs 5.5, 5.6, 5.9 and 6.7.  Every pointer
// and colour access runs through the transactional barrier; keys are
// immutable per node (deletion transplants nodes, not keys).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "stm/tx.h"

namespace otb::stmds {

class StmRbTree {
 public:
  using Key = std::int64_t;

  StmRbTree() {
    nil_ = alloc(0);
    nil_->red.store_direct(false);
    nil_->left.store_direct(nil_);
    nil_->right.store_direct(nil_);
    nil_->parent.store_direct(nil_);
    root_.store_direct(nil_);
  }

  bool contains(stm::Tx& tx, Key key) {
    Node* x = tx.read(root_);
    while (x != nil_) {
      if (key == x->key) return true;
      x = key < x->key ? tx.read(x->left) : tx.read(x->right);
    }
    return false;
  }

  bool add(stm::Tx& tx, Key key) {
    Node* y = nil_;
    Node* x = tx.read(root_);
    while (x != nil_) {
      y = x;
      if (key == x->key) return false;
      x = key < x->key ? tx.read(x->left) : tx.read(x->right);
    }
    Node* z = alloc(key);
    z->left.store_direct(nil_);
    z->right.store_direct(nil_);
    z->red.store_direct(true);
    tx.write(z->parent, y);
    if (y == nil_) {
      tx.write(root_, z);
    } else if (key < y->key) {
      tx.write(y->left, z);
    } else {
      tx.write(y->right, z);
    }
    insert_fixup(tx, z);
    return true;
  }

  bool remove(stm::Tx& tx, Key key) {
    Node* z = tx.read(root_);
    while (z != nil_ && z->key != key) {
      z = key < z->key ? tx.read(z->left) : tx.read(z->right);
    }
    if (z == nil_) return false;
    erase(tx, z);
    return true;
  }

  bool add_seq(Key key) { return seq_apply(key, /*insert=*/true); }
  bool remove_seq(Key key) { return seq_apply(key, /*insert=*/false); }

  std::size_t size_unsafe() const { return count(root_.load_direct()); }

  /// Structural invariant checks (tests): returns black height, -1 on
  /// violation (red-red edge or unequal black heights).
  int check_invariants() const {
    const Node* root = root_.load_direct();
    if (root != nil_ && root->red.load_direct()) return -1;  // root must be black
    return black_height(root);
  }

 private:
  struct Node {
    explicit Node(Key k) : key(k) {}
    const Key key;
    stm::TVar<bool> red{false};
    stm::TVar<Node*> left{nullptr};
    stm::TVar<Node*> right{nullptr};
    stm::TVar<Node*> parent{nullptr};
  };

  Node* alloc(Key key) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_.push_back(std::make_unique<Node>(key));
    return pool_.back().get();
  }

  // ---- transactional CLRS machinery ---------------------------------------

  void rotate_left(stm::Tx& tx, Node* x) {
    Node* y = tx.read(x->right);
    Node* yl = tx.read(y->left);
    tx.write(x->right, yl);
    if (yl != nil_) tx.write(yl->parent, x);
    Node* xp = tx.read(x->parent);
    tx.write(y->parent, xp);
    if (xp == nil_) {
      tx.write(root_, y);
    } else if (x == tx.read(xp->left)) {
      tx.write(xp->left, y);
    } else {
      tx.write(xp->right, y);
    }
    tx.write(y->left, x);
    tx.write(x->parent, y);
  }

  void rotate_right(stm::Tx& tx, Node* x) {
    Node* y = tx.read(x->left);
    Node* yr = tx.read(y->right);
    tx.write(x->left, yr);
    if (yr != nil_) tx.write(yr->parent, x);
    Node* xp = tx.read(x->parent);
    tx.write(y->parent, xp);
    if (xp == nil_) {
      tx.write(root_, y);
    } else if (x == tx.read(xp->right)) {
      tx.write(xp->right, y);
    } else {
      tx.write(xp->left, y);
    }
    tx.write(y->right, x);
    tx.write(x->parent, y);
  }

  void insert_fixup(stm::Tx& tx, Node* z) {
    while (true) {
      Node* zp = tx.read(z->parent);
      if (zp == nil_ || !tx.read(zp->red)) break;
      Node* zpp = tx.read(zp->parent);
      if (zp == tx.read(zpp->left)) {
        Node* uncle = tx.read(zpp->right);
        if (tx.read(uncle->red)) {
          tx.write(zp->red, false);
          tx.write(uncle->red, false);
          tx.write(zpp->red, true);
          z = zpp;
        } else {
          if (z == tx.read(zp->right)) {
            z = zp;
            rotate_left(tx, z);
            zp = tx.read(z->parent);
            zpp = tx.read(zp->parent);
          }
          tx.write(zp->red, false);
          tx.write(zpp->red, true);
          rotate_right(tx, zpp);
        }
      } else {
        Node* uncle = tx.read(zpp->left);
        if (tx.read(uncle->red)) {
          tx.write(zp->red, false);
          tx.write(uncle->red, false);
          tx.write(zpp->red, true);
          z = zpp;
        } else {
          if (z == tx.read(zp->left)) {
            z = zp;
            rotate_right(tx, z);
            zp = tx.read(z->parent);
            zpp = tx.read(zp->parent);
          }
          tx.write(zp->red, false);
          tx.write(zpp->red, true);
          rotate_left(tx, zpp);
        }
      }
    }
    Node* root = tx.read(root_);
    tx.write(root->red, false);
  }

  void transplant(stm::Tx& tx, Node* u, Node* v) {
    Node* up = tx.read(u->parent);
    if (up == nil_) {
      tx.write(root_, v);
    } else if (u == tx.read(up->left)) {
      tx.write(up->left, v);
    } else {
      tx.write(up->right, v);
    }
    tx.write(v->parent, up);
  }

  Node* minimum(stm::Tx& tx, Node* x) {
    for (Node* l = tx.read(x->left); l != nil_; l = tx.read(x->left)) x = l;
    return x;
  }

  void erase(stm::Tx& tx, Node* z) {
    Node* y = z;
    bool y_was_red = tx.read(y->red);
    Node* x;
    if (tx.read(z->left) == nil_) {
      x = tx.read(z->right);
      transplant(tx, z, x);
    } else if (tx.read(z->right) == nil_) {
      x = tx.read(z->left);
      transplant(tx, z, x);
    } else {
      y = minimum(tx, tx.read(z->right));
      y_was_red = tx.read(y->red);
      x = tx.read(y->right);
      if (tx.read(y->parent) == z) {
        tx.write(x->parent, y);  // may write the nil sentinel; harmless
      } else {
        transplant(tx, y, x);
        Node* zr = tx.read(z->right);
        tx.write(y->right, zr);
        tx.write(zr->parent, y);
      }
      transplant(tx, z, y);
      Node* zl = tx.read(z->left);
      tx.write(y->left, zl);
      tx.write(zl->parent, y);
      tx.write(y->red, tx.read(z->red));
    }
    if (!y_was_red) erase_fixup(tx, x);
  }

  void erase_fixup(stm::Tx& tx, Node* x) {
    while (x != tx.read(root_) && !tx.read(x->red)) {
      Node* xp = tx.read(x->parent);
      if (x == tx.read(xp->left)) {
        Node* w = tx.read(xp->right);
        if (tx.read(w->red)) {
          tx.write(w->red, false);
          tx.write(xp->red, true);
          rotate_left(tx, xp);
          w = tx.read(xp->right);
        }
        if (!tx.read(tx.read(w->left)->red) && !tx.read(tx.read(w->right)->red)) {
          tx.write(w->red, true);
          x = xp;
        } else {
          if (!tx.read(tx.read(w->right)->red)) {
            tx.write(tx.read(w->left)->red, false);
            tx.write(w->red, true);
            rotate_right(tx, w);
            w = tx.read(xp->right);
          }
          tx.write(w->red, tx.read(xp->red));
          tx.write(xp->red, false);
          tx.write(tx.read(w->right)->red, false);
          rotate_left(tx, xp);
          x = tx.read(root_);
        }
      } else {
        Node* w = tx.read(xp->left);
        if (tx.read(w->red)) {
          tx.write(w->red, false);
          tx.write(xp->red, true);
          rotate_right(tx, xp);
          w = tx.read(xp->left);
        }
        if (!tx.read(tx.read(w->right)->red) && !tx.read(tx.read(w->left)->red)) {
          tx.write(w->red, true);
          x = xp;
        } else {
          if (!tx.read(tx.read(w->left)->red)) {
            tx.write(tx.read(w->right)->red, false);
            tx.write(w->red, true);
            rotate_left(tx, w);
            w = tx.read(xp->left);
          }
          tx.write(w->red, tx.read(xp->red));
          tx.write(xp->red, false);
          tx.write(tx.read(w->left)->red, false);
          rotate_right(tx, xp);
          x = tx.read(root_);
        }
      }
    }
    tx.write(x->red, false);
  }

  // ---- sequential helpers ---------------------------------------------------

  /// Dummy context whose barriers are direct loads/stores (single-threaded
  /// seeding — far faster than running real transactions).
  class SeqTx final : public stm::Tx {
   public:
    void begin() override {}
    stm::Word read_word(const stm::TWord* addr) override {
      return addr->load(std::memory_order_relaxed);
    }
    void write_word(stm::TWord* addr, stm::Word v) override {
      addr->store(v, std::memory_order_relaxed);
    }
    void commit() override {}
    void rollback() override {}
  };

  bool seq_apply(Key key, bool insert) {
    SeqTx tx;
    return insert ? add(tx, key) : remove(tx, key);
  }

  std::size_t count(const Node* n) const {
    if (n == nil_) return 0;
    return 1 + count(n->left.load_direct()) + count(n->right.load_direct());
  }

  /// -1 on violation, else the black height of `n`.
  int black_height(const Node* n) const {
    if (n == nil_) return 1;
    const Node* l = n->left.load_direct();
    const Node* r = n->right.load_direct();
    if (n->red.load_direct() &&
        (l->red.load_direct() || r->red.load_direct())) {
      return -1;  // red-red edge
    }
    if (l != nil_ && l->key >= n->key) return -1;
    if (r != nil_ && r->key <= n->key) return -1;
    const int hl = black_height(l);
    const int hr = black_height(r);
    if (hl == -1 || hr == -1 || hl != hr) return -1;
    return hl + (n->red.load_direct() ? 0 : 1);
  }

  stm::TVar<Node*> root_;
  Node* nil_;
  std::mutex pool_mu_;
  std::deque<std::unique_ptr<Node>> pool_;
};

}  // namespace otb::stmds
