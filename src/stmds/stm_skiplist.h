// Pure-STM skip-list set: logarithmic traversal, but every hop is still an
// instrumented transactional read (the Fig 4.3 baseline).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "stm/tx.h"

namespace otb::stmds {

class StmSkipList {
 public:
  using Key = std::int64_t;
  static constexpr unsigned kMaxLevel = 20;

  StmSkipList() {
    head_ = alloc(std::numeric_limits<Key>::min(), kMaxLevel - 1);
    tail_ = alloc(std::numeric_limits<Key>::max(), kMaxLevel - 1);
    for (unsigned l = 0; l < kMaxLevel; ++l) head_->next[l].store_direct(tail_);
  }

  bool add(stm::Tx& tx, Key key) {
    std::array<Node*, kMaxLevel> preds, succs;
    if (locate(tx, key, preds, succs)) return false;
    const unsigned top = random_level();
    Node* node = alloc(key, top);
    for (unsigned l = 0; l <= top; ++l) node->next[l].store_direct(succs[l]);
    for (unsigned l = 0; l <= top; ++l) tx.write(preds[l]->next[l], node);
    return true;
  }

  bool remove(stm::Tx& tx, Key key) {
    std::array<Node*, kMaxLevel> preds, succs;
    if (!locate(tx, key, preds, succs)) return false;
    Node* victim = succs[0];
    for (unsigned l = 0; l <= victim->top_level; ++l) {
      if (tx.read(preds[l]->next[l]) == victim) {
        tx.write(preds[l]->next[l], tx.read(victim->next[l]));
      }
    }
    return true;
  }

  bool contains(stm::Tx& tx, Key key) {
    std::array<Node*, kMaxLevel> preds, succs;
    return locate(tx, key, preds, succs);
  }

  bool add_seq(Key key) {
    std::array<Node*, kMaxLevel> preds, succs;
    Node* pred = head_;
    for (unsigned l = kMaxLevel; l-- > 0;) {
      Node* curr = pred->next[l].load_direct();
      while (curr->key < key) {
        pred = curr;
        curr = pred->next[l].load_direct();
      }
      preds[l] = pred;
      succs[l] = curr;
    }
    if (succs[0]->key == key) return false;
    const unsigned top = random_level();
    Node* node = alloc(key, top);
    for (unsigned l = 0; l <= top; ++l) {
      node->next[l].store_direct(succs[l]);
      preds[l]->next[l].store_direct(node);
    }
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next[0].load_direct(); c != tail_;
         c = c->next[0].load_direct()) {
      ++n;
    }
    return n;
  }

 private:
  struct Node {
    Node(Key k, unsigned top) : key(k), top_level(top) {}
    const Key key;
    const unsigned top_level;
    std::array<stm::TVar<Node*>, kMaxLevel> next;
  };

  Node* alloc(Key key, unsigned top) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_.push_back(std::make_unique<Node>(key, top));
    return pool_.back().get();
  }

  /// Transactional search; fills preds/succs, returns whether key is present.
  bool locate(stm::Tx& tx, Key key, std::array<Node*, kMaxLevel>& preds,
              std::array<Node*, kMaxLevel>& succs) {
    Node* pred = head_;
    for (unsigned l = kMaxLevel; l-- > 0;) {
      Node* curr = tx.read(pred->next[l]);
      while (curr->key < key) {
        pred = curr;
        curr = tx.read(pred->next[l]);
      }
      preds[l] = pred;
      succs[l] = curr;
    }
    return succs[0]->key == key;
  }

  static unsigned random_level() {
    thread_local Xorshift rng{0xabcdu ^ reinterpret_cast<std::uintptr_t>(&rng)};
    unsigned level = 0;
    while ((rng.next() & 1) != 0 && level < kMaxLevel - 1) ++level;
    return level;
  }

  Node* head_;
  Node* tail_;
  std::mutex pool_mu_;
  std::deque<std::unique_ptr<Node>> pool_;
};

}  // namespace otb::stmds
