// Pure-STM chained hash map (key → value): the Fig 5.7 substrate.  Buckets
// are sorted transactional lists; short chains keep read-sets small, which
// is why hash maps stress commit cost rather than validation cost.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "stm/tx.h"

namespace otb::stmds {

class StmHashMap {
 public:
  using Key = std::int64_t;
  using Value = std::int64_t;

  explicit StmHashMap(std::size_t buckets = 256) : heads_(buckets) {
    for (auto& head : heads_) {
      Node* tail = alloc(std::numeric_limits<Key>::max(), 0);
      head.store_direct(tail);
    }
  }

  /// Insert or overwrite; returns true when the key was newly inserted.
  bool put(stm::Tx& tx, Key key, Value value) {
    auto [prev, curr] = locate(tx, key);
    if (curr->key == key) {
      tx.write(curr->value, value);
      return false;
    }
    Node* node = alloc(key, value);
    node->next.store_direct(curr);
    if (prev == nullptr) {
      tx.write(heads_[bucket(key)], node);
    } else {
      tx.write(prev->next, node);
    }
    return true;
  }

  /// Fetch into *out; false when absent.
  bool get(stm::Tx& tx, Key key, Value* out) {
    auto [prev, curr] = locate(tx, key);
    (void)prev;
    if (curr->key != key) return false;
    *out = tx.read(curr->value);
    return true;
  }

  bool erase(stm::Tx& tx, Key key) {
    auto [prev, curr] = locate(tx, key);
    if (curr->key != key) return false;
    Node* next = tx.read(curr->next);
    if (prev == nullptr) {
      tx.write(heads_[bucket(key)], next);
    } else {
      tx.write(prev->next, next);
    }
    return true;
  }

  bool put_seq(Key key, Value value) {
    Node* prev = nullptr;
    Node* curr = heads_[bucket(key)].load_direct();
    while (curr->key < key) {
      prev = curr;
      curr = curr->next.load_direct();
    }
    if (curr->key == key) {
      curr->value.store_direct(value);
      return false;
    }
    Node* node = alloc(key, value);
    node->next.store_direct(curr);
    if (prev == nullptr) {
      heads_[bucket(key)].store_direct(node);
    } else {
      prev->next.store_direct(node);
    }
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const auto& head : heads_) {
      for (const Node* c = head.load_direct();
           c->key != std::numeric_limits<Key>::max(); c = c->next.load_direct()) {
        ++n;
      }
    }
    return n;
  }

 private:
  struct Node {
    Node(Key k, Value v) : key(k), value(v) {}
    const Key key;
    stm::TVar<Value> value;
    stm::TVar<Node*> next{nullptr};
  };

  std::size_t bucket(Key key) const {
    return mix64(static_cast<std::uint64_t>(key)) % heads_.size();
  }

  Node* alloc(Key key, Value value) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_.push_back(std::make_unique<Node>(key, value));
    return pool_.back().get();
  }

  /// (prev, curr) inside the key's bucket; prev == nullptr when curr is the
  /// bucket head.
  std::pair<Node*, Node*> locate(stm::Tx& tx, Key key) {
    Node* prev = nullptr;
    Node* curr = tx.read(heads_[bucket(key)]);
    while (curr->key < key) {
      prev = curr;
      curr = tx.read(prev->next);
    }
    return {prev, curr};
  }

  std::vector<stm::TVar<Node*>> heads_;
  std::mutex pool_mu_;
  std::deque<std::unique_ptr<Node>> pool_;
};

}  // namespace otb::stmds
