// Pure-STM sorted linked-list set: every next-pointer on the traversal path
// goes through the transactional read barrier, so the read-set grows with
// the traversal — exactly the false-conflict behaviour Fig 1.1 illustrates
// and the OTB comparison benchmarks (Figs 4.2, 4.4) quantify.
//
// Removed nodes are returned to the structure's pool only at destruction:
// doomed transactions may still dereference stale pointers before their
// next validation, the standard STM benchmark discipline (see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>

#include "stm/tx.h"

namespace otb::stmds {

class StmList {
 public:
  using Key = std::int64_t;

  StmList() {
    head_ = alloc(std::numeric_limits<Key>::min());
    tail_ = alloc(std::numeric_limits<Key>::max());
    head_->next.store_direct(tail_);
  }

  bool add(stm::Tx& tx, Key key) {
    auto [pred, curr] = locate(tx, key);
    if (curr->key == key) return false;
    Node* node = alloc(key);
    node->next.store_direct(curr);
    tx.write(pred->next, node);
    return true;
  }

  bool remove(stm::Tx& tx, Key key) {
    auto [pred, curr] = locate(tx, key);
    if (curr->key != key) return false;
    tx.write(pred->next, tx.read(curr->next));
    return true;
  }

  bool contains(stm::Tx& tx, Key key) {
    auto [pred, curr] = locate(tx, key);
    (void)pred;
    return curr->key == key;
  }

  /// Non-transactional seeding.
  bool add_seq(Key key) {
    Node* pred = head_;
    Node* curr = pred->next.load_direct();
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load_direct();
    }
    if (curr->key == key) return false;
    Node* node = alloc(key);
    node->next.store_direct(curr);
    pred->next.store_direct(node);
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next.load_direct(); c != tail_;
         c = c->next.load_direct()) {
      ++n;
    }
    return n;
  }

 private:
  struct Node {
    explicit Node(Key k) : key(k) {}
    const Key key;
    stm::TVar<Node*> next{nullptr};
  };

  Node* alloc(Key key) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_.push_back(std::make_unique<Node>(key));
    return pool_.back().get();
  }

  std::pair<Node*, Node*> locate(stm::Tx& tx, Key key) {
    Node* pred = head_;
    Node* curr = tx.read(pred->next);
    while (curr->key < key) {
      pred = curr;
      curr = tx.read(pred->next);
    }
    return {pred, curr};
  }

  Node* head_;
  Node* tail_;
  std::mutex pool_mu_;
  std::deque<std::unique_ptr<Node>> pool_;
};

}  // namespace otb::stmds
