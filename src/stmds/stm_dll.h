// Pure-STM sorted doubly linked list: the paper's worst case for RTC
// (Fig 5.8) — hundreds of instrumented reads per traversal, two writes per
// update, i.e. a commit-time ratio below 1% (§5.4.1).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>

#include "stm/tx.h"

namespace otb::stmds {

class StmDll {
 public:
  using Key = std::int64_t;

  StmDll() {
    head_ = alloc(std::numeric_limits<Key>::min());
    tail_ = alloc(std::numeric_limits<Key>::max());
    head_->next.store_direct(tail_);
    tail_->prev.store_direct(head_);
  }

  bool add(stm::Tx& tx, Key key) {
    auto [pred, curr] = locate(tx, key);
    if (curr->key == key) return false;
    Node* node = alloc(key);
    node->next.store_direct(curr);
    node->prev.store_direct(pred);
    tx.write(pred->next, node);
    tx.write(curr->prev, node);
    return true;
  }

  bool remove(stm::Tx& tx, Key key) {
    auto [pred, curr] = locate(tx, key);
    if (curr->key != key) return false;
    Node* next = tx.read(curr->next);
    tx.write(pred->next, next);
    tx.write(next->prev, pred);
    return true;
  }

  bool contains(stm::Tx& tx, Key key) {
    auto [pred, curr] = locate(tx, key);
    (void)pred;
    return curr->key == key;
  }

  bool add_seq(Key key) {
    Node* pred = head_;
    Node* curr = pred->next.load_direct();
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load_direct();
    }
    if (curr->key == key) return false;
    Node* node = alloc(key);
    node->next.store_direct(curr);
    node->prev.store_direct(pred);
    pred->next.store_direct(node);
    curr->prev.store_direct(node);
    return true;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next.load_direct(); c != tail_;
         c = c->next.load_direct()) {
      ++n;
    }
    return n;
  }

  /// Test hook: forward chain and backward chain must mirror each other.
  bool links_consistent_unsafe() const {
    const Node* prev = head_;
    for (const Node* c = head_->next.load_direct(); ; c = c->next.load_direct()) {
      if (c->prev.load_direct() != prev) return false;
      if (c == tail_) return true;
      prev = c;
    }
  }

 private:
  struct Node {
    explicit Node(Key k) : key(k) {}
    const Key key;
    stm::TVar<Node*> next{nullptr};
    stm::TVar<Node*> prev{nullptr};
  };

  Node* alloc(Key key) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_.push_back(std::make_unique<Node>(key));
    return pool_.back().get();
  }

  std::pair<Node*, Node*> locate(stm::Tx& tx, Key key) {
    Node* pred = head_;
    Node* curr = tx.read(pred->next);
    while (curr->key < key) {
      pred = curr;
      curr = tx.read(pred->next);
    }
    return {pred, curr};
  }

  Node* head_;
  Node* tail_;
  std::mutex pool_mu_;
  std::deque<std::unique_ptr<Node>> pool_;
};

}  // namespace otb::stmds
