// Lazy concurrent skip-list set (Herlihy, Lev, Luchangco, Shavit —
// "A Simple Optimistic Skiplist Algorithm").
//
// Substrate #5 of DESIGN.md: the "Lazy" baseline of Figs 3.4–3.5 and the
// structural template for the OTB skip-list set.  Nodes carry a `marked`
// flag (logical deletion) and a `fully_linked` flag (insertion is visible
// only after all levels are linked); contains() is wait-free.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/epoch.h"
#include "common/rng.h"
#include "common/spinlock.h"

namespace otb::cds {

inline constexpr unsigned kSkipListMaxLevel = 20;

class LazySkipListSet {
 public:
  using Key = std::int64_t;
  static constexpr unsigned kMaxLevel = kSkipListMaxLevel;

  LazySkipListSet() {
    head_ = new Node(std::numeric_limits<Key>::min(), kMaxLevel - 1);
    tail_ = new Node(std::numeric_limits<Key>::max(), kMaxLevel - 1);
    for (unsigned l = 0; l < kMaxLevel; ++l) {
      head_->next[l].store(tail_, std::memory_order_release);
    }
    head_->fully_linked.store(true, std::memory_order_release);
    tail_->fully_linked.store(true, std::memory_order_release);
  }

  ~LazySkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  LazySkipListSet(const LazySkipListSet&) = delete;
  LazySkipListSet& operator=(const LazySkipListSet&) = delete;

  bool add(Key key) {
    ebr::Guard guard;
    const unsigned top = random_level();
    std::array<Node*, kMaxLevel> preds, succs;
    for (;;) {
      const int found_level = find(key, preds, succs);
      if (found_level != -1) {
        Node* found = succs[static_cast<unsigned>(found_level)];
        if (!found->marked.load(std::memory_order_acquire)) {
          // Spin until a concurrent inserter finishes linking, then report
          // the key as already present.
          while (!found->fully_linked.load(std::memory_order_acquire)) cpu_relax();
          return false;
        }
        continue;  // marked: retry, the remover will unlink it
      }
      LevelLockSet locks;
      bool valid = true;
      for (unsigned l = 0; valid && l <= top; ++l) {
        Node* pred = preds[l];
        Node* succ = succs[l];
        locks.acquire(pred);
        valid = !pred->marked.load(std::memory_order_acquire) &&
                !succ->marked.load(std::memory_order_acquire) &&
                pred->next[l].load(std::memory_order_acquire) == succ;
      }
      if (!valid) continue;
      Node* node = new Node(key, top);
      for (unsigned l = 0; l <= top; ++l) {
        node->next[l].store(succs[l], std::memory_order_relaxed);
      }
      for (unsigned l = 0; l <= top; ++l) {
        preds[l]->next[l].store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      return true;
    }
  }

  bool remove(Key key) {
    ebr::Guard guard;
    std::array<Node*, kMaxLevel> preds, succs;
    const int found_level = find(key, preds, succs);
    if (found_level == -1) return false;
    Node* victim = succs[static_cast<unsigned>(found_level)];
    if (victim->top_level != static_cast<unsigned>(found_level) ||
        !victim->fully_linked.load(std::memory_order_acquire) ||
        victim->marked.load(std::memory_order_acquire)) {
      return false;
    }
    victim->lock.lock();
    if (victim->marked.load(std::memory_order_acquire)) {
      victim->lock.unlock();
      return false;
    }
    victim->marked.store(true, std::memory_order_release);  // logical delete
    unlink_locked_victim(victim);
    victim->lock.unlock();
    ebr::retire(victim);
    return true;
  }

  /// Remove and return the current minimum (Lotan–Shavit style: CAS-free
  /// logical delete under the node lock, then physical unlink).  Used by the
  /// concurrent skip-list priority queue.  Returns false when empty.
  bool pop_min(Key* out) {
    ebr::Guard guard;
    for (Node* curr = head_->next[0].load(std::memory_order_acquire); curr != tail_;
         curr = curr->next[0].load(std::memory_order_acquire)) {
      if (!curr->fully_linked.load(std::memory_order_acquire) ||
          curr->marked.load(std::memory_order_acquire)) {
        continue;
      }
      curr->lock.lock();
      if (curr->marked.load(std::memory_order_acquire) ||
          !curr->fully_linked.load(std::memory_order_acquire)) {
        curr->lock.unlock();
        continue;
      }
      curr->marked.store(true, std::memory_order_release);
      const Key key = curr->key;
      unlink_locked_victim(curr);
      curr->lock.unlock();
      ebr::retire(curr);
      *out = key;
      return true;
    }
    return false;
  }

  /// Read the current minimum without removing it; false when empty.
  bool min(Key* out) const {
    ebr::Guard guard;
    for (const Node* curr = head_->next[0].load(std::memory_order_acquire);
         curr != tail_; curr = curr->next[0].load(std::memory_order_acquire)) {
      if (curr->fully_linked.load(std::memory_order_acquire) &&
          !curr->marked.load(std::memory_order_acquire)) {
        *out = curr->key;
        return true;
      }
    }
    return false;
  }

  /// Wait-free membership test.
  bool contains(Key key) const {
    ebr::Guard guard;
    std::array<Node*, kMaxLevel> preds, succs;
    const int found_level = find(key, preds, succs);
    if (found_level == -1) return false;
    const Node* found = succs[static_cast<unsigned>(found_level)];
    return found->fully_linked.load(std::memory_order_acquire) &&
           !found->marked.load(std::memory_order_acquire);
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next[0].load(std::memory_order_acquire); c != tail_;
         c = c->next[0].load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

 private:
  struct Node {
    Node(Key k, unsigned top) : key(k), top_level(top) {}
    const Key key;
    const unsigned top_level;
    std::array<std::atomic<Node*>, kMaxLevel> next{};
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    SpinLock lock;
  };

  /// RAII set of per-level pred locks; each distinct node is locked once.
  class LevelLockSet {
   public:
    void acquire(Node* n) {
      for (unsigned i = 0; i < count_; ++i) {
        if (locked_[i] == n) return;
      }
      n->lock.lock();
      locked_[count_++] = n;
    }
    ~LevelLockSet() {
      for (unsigned i = count_; i-- > 0;) locked_[i]->lock.unlock();
    }

   private:
    std::array<Node*, kMaxLevel> locked_{};
    unsigned count_ = 0;
  };

  /// Physically unlink a victim that the caller has already marked and whose
  /// node lock the caller holds.  Retries until the pred set validates.
  void unlink_locked_victim(Node* victim) {
    const unsigned top = victim->top_level;
    std::array<Node*, kMaxLevel> preds, succs;
    for (;;) {
      find(victim->key, preds, succs);
      LevelLockSet locks;
      bool valid = true;
      for (unsigned l = 0; valid && l <= top; ++l) {
        Node* pred = preds[l];
        locks.acquire(pred);
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[l].load(std::memory_order_acquire) == victim;
      }
      if (!valid) continue;
      for (unsigned l = top + 1; l-- > 0;) {
        preds[l]->next[l].store(victim->next[l].load(std::memory_order_relaxed),
                                std::memory_order_release);
      }
      return;
    }
  }

  /// Fill preds/succs at every level; return the highest level at which the
  /// key was found, or -1.
  int find(Key key, std::array<Node*, kMaxLevel>& preds,
           std::array<Node*, kMaxLevel>& succs) const {
    int found_level = -1;
    Node* pred = head_;
    for (unsigned l = kMaxLevel; l-- > 0;) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = pred->next[l].load(std::memory_order_acquire);
      }
      if (found_level == -1 && curr->key == key) {
        found_level = static_cast<int>(l);
      }
      preds[l] = pred;
      succs[l] = curr;
    }
    return found_level;
  }

  static unsigned random_level() {
    thread_local Xorshift rng{0x5eedu ^ reinterpret_cast<std::uintptr_t>(&rng)};
    unsigned level = 0;
    while ((rng.next() & 1) != 0 && level < kMaxLevel - 1) ++level;
    return level;
  }

  Node* head_;
  Node* tail_;
};

}  // namespace otb::cds
