// Lazy concurrent linked-list set (Heller, Herlihy, Luchangco, Moir,
// Scherer, Shavit — "A Lazy Concurrent List-Based Set Algorithm").
//
// This is substrate #4 of DESIGN.md: the paper's optimal non-transactional
// baseline ("Lazy" curves in Figs 3.3–3.5) and the structural template the
// OTB set is derived from.  Nodes carry a spin lock and a `marked` flag;
// removal is split into logical (mark) and physical (unlink) steps, and
// contains() is wait-free.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>

#include "common/epoch.h"
#include "common/spinlock.h"

namespace otb::cds {

class LazyListSet {
 public:
  using Key = std::int64_t;

  LazyListSet() {
    head_ = new Node(std::numeric_limits<Key>::min());
    tail_ = new Node(std::numeric_limits<Key>::max());
    head_->next.store(tail_, std::memory_order_release);
  }

  ~LazyListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  LazyListSet(const LazyListSet&) = delete;
  LazyListSet& operator=(const LazyListSet&) = delete;

  /// Insert `key`; returns false if already present.
  bool add(Key key) {
    ebr::Guard guard;
    for (;;) {
      auto [pred, curr] = locate(key);
      std::lock_guard<SpinLock> lp(pred->lock);
      if (!validate(pred, curr)) continue;
      if (curr->key == key) return false;
      Node* node = new Node(key);
      node->next.store(curr, std::memory_order_relaxed);
      pred->next.store(node, std::memory_order_release);
      return true;
    }
  }

  /// Remove `key`; returns false if absent.
  bool remove(Key key) {
    ebr::Guard guard;
    for (;;) {
      auto [pred, curr] = locate(key);
      std::lock_guard<SpinLock> lp(pred->lock);
      std::lock_guard<SpinLock> lc(curr->lock);
      if (!validate(pred, curr)) continue;
      if (curr->key != key) return false;
      curr->marked.store(true, std::memory_order_release);  // logical delete
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);          // physical unlink
      ebr::retire(curr);
      return true;
    }
  }

  /// Wait-free membership test.
  bool contains(Key key) const {
    ebr::Guard guard;
    const Node* curr = head_;
    while (curr->key < key) curr = curr->next.load(std::memory_order_acquire);
    return curr->key == key && !curr->marked.load(std::memory_order_acquire);
  }

  /// Non-concurrent size (test/diagnostic use only).
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

 private:
  struct Node {
    explicit Node(Key k) : key(k) {}
    const Key key;
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    SpinLock lock;
  };

  static bool validate(const Node* pred, const Node* curr) {
    return !pred->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  /// Unmonitored traversal: find (pred, curr) with pred.key < key <= curr.key.
  std::pair<Node*, Node*> locate(Key key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }

  Node* head_;
  Node* tail_;
};

}  // namespace otb::cds
