// Concurrent skip-list priority queue (Lotan–Shavit flavour), built on the
// lazy skip-list set.  Keys are unique, matching the paper's skip-list
// priority-queue implementation (§3.2.2: "can be used even if items are not
// unique, like our implementation").
#pragma once

#include "cds/lazy_skiplist_set.h"

namespace otb::cds {

class SkipListPQ {
 public:
  using Key = LazySkipListSet::Key;

  /// Insert a key; false if already present.
  bool add(Key key) { return set_.add(key); }

  /// Remove the minimum into *out; false when empty.
  bool remove_min(Key* out) { return set_.pop_min(out); }

  /// Read the minimum into *out; false when empty.
  bool min(Key* out) const { return set_.min(out); }

  std::size_t size_unsafe() const { return set_.size_unsafe(); }

 private:
  LazySkipListSet set_;
};

}  // namespace otb::cds
