// Sequential binary min-heap plus a coarse-locked concurrent wrapper.
//
// Substrate #6 of DESIGN.md.  The coarse-locked heap plays the role of the
// "concurrent priority queue used as a black box" in Herlihy–Koskinen
// pessimistic boosting (§3.2.2); the sequential heap is used directly by the
// OTB semi-optimistic priority queue, which needs no thread-level
// synchronisation (§3.2.2 optimisation iii).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/spinlock.h"

namespace otb::cds {

/// Sequential binary min-heap over 64-bit keys (duplicates allowed).
class BinaryHeap {
 public:
  using Key = std::int64_t;

  void add(Key key) {
    data_.push_back(key);
    sift_up(data_.size() - 1);
  }

  bool empty() const noexcept { return data_.empty(); }
  std::size_t size() const noexcept { return data_.size(); }

  /// Smallest key; heap must be non-empty.
  Key min() const { return data_.front(); }

  /// Remove and return the smallest key; heap must be non-empty.
  Key remove_min() {
    const Key top = data_.front();
    data_.front() = data_.back();
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return top;
  }

  void clear() noexcept { data_.clear(); }

  /// The heap array in storage order (a valid heap, not sorted).
  const std::vector<Key>& contents() const noexcept { return data_; }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (data_[parent] <= data_[i]) break;
      std::swap(data_[parent], data_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && data_[l] < data_[smallest]) smallest = l;
      if (r < n && data_[r] < data_[smallest]) smallest = r;
      if (smallest == i) return;
      std::swap(data_[i], data_[smallest]);
      i = smallest;
    }
  }

  std::vector<Key> data_;
};

/// Coarse-locked concurrent min-heap: the linearizable concurrent priority
/// queue that pessimistic boosting treats as a black box.
class CoarseHeapPQ {
 public:
  using Key = BinaryHeap::Key;

  void add(Key key) {
    std::lock_guard<SpinLock> lk(lock_);
    heap_.add(key);
  }

  /// Remove the minimum into *out; false when empty.
  bool remove_min(Key* out) {
    std::lock_guard<SpinLock> lk(lock_);
    if (heap_.empty()) return false;
    *out = heap_.remove_min();
    return true;
  }

  /// Read the minimum into *out; false when empty.
  bool min(Key* out) const {
    std::lock_guard<SpinLock> lk(lock_);
    if (heap_.empty()) return false;
    *out = heap_.min();
    return true;
  }

  std::size_t size() const {
    std::lock_guard<SpinLock> lk(lock_);
    return heap_.size();
  }

 private:
  mutable SpinLock lock_;
  BinaryHeap heap_;
};

}  // namespace otb::cds
