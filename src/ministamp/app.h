// Mini-STAMP: scaled-down re-creations of the six STAMP workloads the
// paper evaluates RTC/RInval on (Table 5.1, Figs 5.10, 6.3, 6.8).  Each app
// preserves the *transaction shape* of its namesake — read/write-set sizes,
// commit-time ratio, contention pattern — while completing in milliseconds
// (see DESIGN.md's substitution table).
//
// Every app runs a fixed amount of work split across threads (STAMP
// measures execution time, not throughput) and produces a checksum; for
// deterministic apps the checksum is independent of the thread count, so
// tests can equate the concurrent result with the sequential oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/platform.h"
#include "stm/stm.h"

namespace otb::ministamp {

struct AppResult {
  double exec_ms = 0;
  std::uint64_t checksum = 0;
  stm::TxStats stats{};
};

class App {
 public:
  virtual ~App() = default;
  virtual const char* name() const = 0;

  /// Run the full workload on `threads` threads over runtime `rt`.
  virtual AppResult run(stm::Runtime& rt, unsigned threads) const = 0;

  /// Whether the checksum is order-independent (labyrinth is not: route
  /// claiming is a race by design).
  virtual bool deterministic() const { return true; }
};

/// Work scale multiplier (env OTB_STAMP_SCALE, default 1).
inline unsigned stamp_scale() {
  const char* v = std::getenv("OTB_STAMP_SCALE");
  const unsigned s = v != nullptr ? static_cast<unsigned>(std::atoi(v)) : 1;
  return s == 0 ? 1 : s;
}

/// Shared driver: splits tasks [0, ntasks) across threads through a global
/// cursor, times the whole run, and aggregates per-thread STM stats.
/// `body(th, task)` executes one task transactionally.
template <typename Body>
AppResult run_tasks(stm::Runtime& rt, unsigned threads, std::uint64_t ntasks,
                    const Body& body) {
  std::atomic<std::uint64_t> cursor{0};
  std::vector<stm::TxStats> stats(threads);
  const std::uint64_t t0 = now_ns();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      stm::TxThread th(rt);
      for (;;) {
        const std::uint64_t task = cursor.fetch_add(1, std::memory_order_relaxed);
        if (task >= ntasks) break;
        body(th, task);
      }
      stats[t] = th.tx().stats();
    });
  }
  for (auto& th : pool) th.join();
  AppResult out;
  out.exec_ms = double(now_ns() - t0) * 1e-6;
  for (const auto& s : stats) out.stats += s;
  return out;
}

}  // namespace otb::ministamp
