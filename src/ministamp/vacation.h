// mini-vacation: travel reservations against three resource tables held in
// transactional red-black trees — mid-size transactions with low commit
// ratio at few threads that grows with contention, as in Table 5.1.
#pragma once

#include "common/rng.h"
#include "ministamp/app.h"
#include "stmds/stm_rbtree.h"

namespace otb::ministamp {

class VacationApp final : public App {
 public:
  const char* name() const override { return "vacation"; }

  AppResult run(stm::Runtime& rt, unsigned threads) const override {
    const unsigned scale = stamp_scale();
    const std::size_t nresources = 256 * scale;
    const std::size_t ntasks = 2048 * scale;

    // Three relation trees (cars/flights/rooms) and per-resource capacity.
    stmds::StmRbTree tables[3];
    stm::TArray<std::int64_t> capacity(nresources * 3, 8 * std::int64_t(ntasks));
    for (unsigned r = 0; r < 3; ++r) {
      for (std::size_t i = 0; i < nresources; ++i) {
        tables[r].add_seq(std::int64_t(i));
      }
    }
    stm::TVar<std::int64_t> booked{0};

    AppResult result =
        run_tasks(rt, threads, ntasks, [&](stm::TxThread& th, std::uint64_t task) {
          rt.atomically(th, [&](stm::Tx& tx) {
            // Seeded inside the transaction body: retries replay the exact
            // same reservation request.
            Xorshift pick{task * 2654435761u + 99};
            std::int64_t reserved = 0;
            const unsigned kinds = 1 + unsigned(pick.next_bounded(3));
            for (unsigned k = 0; k < kinds; ++k) {
              const unsigned kind = unsigned(pick.next_bounded(3));
              const std::size_t res = std::size_t(pick.next_bounded(nresources));
              // Query the relation tree (read traversal), then decrement the
              // resource capacity (write).
              if (tables[kind].contains(tx, std::int64_t(res))) {
                auto& cap = capacity[kind * nresources + res];
                const std::int64_t c = tx.read(cap);
                if (c > 0) {
                  tx.write(cap, c - 1);
                  ++reserved;
                }
              }
            }
            if (reserved > 0) {
              tx.write(booked, tx.read(booked) + reserved);
            }
          });
        });

    std::uint64_t cap_sum = 0;
    for (std::size_t i = 0; i < nresources * 3; ++i) {
      cap_sum += std::uint64_t(capacity[i].load_direct());
    }
    result.checksum = cap_sum * 31 + std::uint64_t(booked.load_direct());
    return result;
  }
};

}  // namespace otb::ministamp
