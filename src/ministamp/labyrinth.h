// mini-labyrinth: route claiming on a shared grid — very long transactions
// (tens of reads and writes each) but few of them, so the commit-time share
// of total execution is ~0 and algorithms tie (Fig 5.10 labyrinth panel).
//
// Route success depends on interleaving, so the checksum is NOT
// deterministic; tests verify structural invariants instead (every claimed
// route fully owns its cells).
#pragma once

#include "common/rng.h"
#include "ministamp/app.h"

namespace otb::ministamp {

class LabyrinthApp final : public App {
 public:
  const char* name() const override { return "labyrinth"; }
  bool deterministic() const override { return false; }

  static constexpr std::size_t kGrid = 48;

  AppResult run(stm::Runtime& rt, unsigned threads) const override {
    const unsigned scale = stamp_scale();
    const std::size_t nroutes = 96 * scale;

    stm::TArray<std::int64_t> grid(kGrid * kGrid, 0);
    stm::TVar<std::int64_t> routed{0}, failed{0};

    AppResult result =
        run_tasks(rt, threads, nroutes, [&](stm::TxThread& th, std::uint64_t id) {
          Xorshift rng{id * 40503 + 17};
          const std::size_t sx = rng.next_bounded(kGrid);
          const std::size_t sy = rng.next_bounded(kGrid);
          const std::size_t dx = rng.next_bounded(kGrid);
          const std::size_t dy = rng.next_bounded(kGrid);
          rt.atomically(th, [&](stm::Tx& tx) {
            // L-shaped route: walk x first, then y.  Read every cell; claim
            // only if the whole path is free (grid-router transaction shape).
            std::vector<std::size_t> path;
            for (std::size_t x = std::min(sx, dx); x <= std::max(sx, dx); ++x) {
              path.push_back(sy * kGrid + x);
            }
            for (std::size_t y = std::min(sy, dy); y <= std::max(sy, dy); ++y) {
              path.push_back(y * kGrid + dx);
            }
            bool free = true;
            for (const std::size_t cell : path) {
              if (tx.read(grid[cell]) != 0) {
                free = false;
                break;
              }
            }
            if (free) {
              for (const std::size_t cell : path) {
                tx.write(grid[cell], std::int64_t(id + 1));
              }
              tx.write(routed, tx.read(routed) + 1);
            } else {
              tx.write(failed, tx.read(failed) + 1);
            }
          });
        });

    result.checksum = std::uint64_t(routed.load_direct()) * 1000 +
                      std::uint64_t(failed.load_direct());
    return result;
  }
};

}  // namespace otb::ministamp
