// mini-genome: segment deduplication into a transactional hash map followed
// by overlap chaining — a mixed read/write workload with a ~50% commit
// ratio, matching genome's Table 5.1 profile.
#pragma once

#include "common/rng.h"
#include "ministamp/app.h"
#include "stmds/stm_hashmap.h"

namespace otb::ministamp {

class GenomeApp final : public App {
 public:
  const char* name() const override { return "genome"; }

  AppResult run(stm::Runtime& rt, unsigned threads) const override {
    const unsigned scale = stamp_scale();
    const std::size_t nsegments = 4096 * scale;
    const std::size_t distinct = 1024 * scale;

    std::vector<std::int64_t> segments(nsegments);
    Xorshift rng{1234};
    for (auto& s : segments) s = std::int64_t(rng.next_bounded(distinct));

    stmds::StmHashMap table(512);
    stm::TVar<std::int64_t> unique{0};

    // Phase 1: deduplicate segments.
    AppResult phase1 =
        run_tasks(rt, threads, nsegments, [&](stm::TxThread& th, std::uint64_t i) {
          rt.atomically(th, [&](stm::Tx& tx) {
            if (table.put(tx, segments[i], 1)) {
              tx.write(unique, tx.read(unique) + 1);
            }
          });
        });

    // Phase 2: chain segments whose successor value also occurs (the
    // overlap-matching step, read-mostly).
    stm::TVar<std::int64_t> chains{0};
    AppResult phase2 =
        run_tasks(rt, threads, distinct, [&](stm::TxThread& th, std::uint64_t v) {
          rt.atomically(th, [&](stm::Tx& tx) {
            std::int64_t dummy;
            if (table.get(tx, std::int64_t(v), &dummy) &&
                table.get(tx, std::int64_t((v + 1) % distinct), &dummy)) {
              tx.write(chains, tx.read(chains) + 1);
            }
          });
        });

    AppResult out;
    out.exec_ms = phase1.exec_ms + phase2.exec_ms;
    out.stats = phase1.stats;
    out.stats += phase2.stats;
    out.checksum = std::uint64_t(unique.load_direct()) * 1000003 +
                   std::uint64_t(chains.load_direct());
    return out;
  }
};

}  // namespace otb::ministamp
