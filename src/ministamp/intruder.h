// mini-intruder: network-packet flow reassembly — fragments of each flow
// arrive interleaved; transactions update per-flow progress in a shared map
// and flag "attack" flows once fully reassembled.  Short, conflict-prone
// transactions, matching intruder's bursty Table 5.1 profile.
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "ministamp/app.h"
#include "stmds/stm_hashmap.h"
#include "stmds/stm_list.h"

namespace otb::ministamp {

class IntruderApp final : public App {
 public:
  const char* name() const override { return "intruder"; }

  AppResult run(stm::Runtime& rt, unsigned threads) const override {
    const unsigned scale = stamp_scale();
    const std::size_t nflows = 512 * scale;
    constexpr unsigned kFragments = 4;
    const std::size_t npackets = nflows * kFragments;

    // Deterministically shuffled fragment arrival order.
    std::vector<std::uint32_t> packet_flow(npackets);
    for (std::size_t i = 0; i < npackets; ++i) {
      packet_flow[i] = std::uint32_t(i % nflows);
    }
    Xorshift rng{2025};
    for (std::size_t i = npackets; i-- > 1;) {
      std::swap(packet_flow[i], packet_flow[rng.next_bounded(i + 1)]);
    }

    stmds::StmHashMap progress(512);
    stmds::StmList detected;  // flows flagged as attacks
    stm::TVar<std::int64_t> completed{0};

    AppResult result =
        run_tasks(rt, threads, npackets, [&](stm::TxThread& th, std::uint64_t i) {
          const std::int64_t flow = packet_flow[i];
          rt.atomically(th, [&](stm::Tx& tx) {
            std::int64_t seen = 0;
            progress.get(tx, flow, &seen);
            ++seen;
            progress.put(tx, flow, seen);
            if (seen == kFragments) {
              tx.write(completed, tx.read(completed) + 1);
              if (flow % 7 == 0) {
                detected.add(tx, flow);  // attack signature match
              }
            }
          });
        });

    result.checksum = std::uint64_t(completed.load_direct()) * 100003 +
                      detected.size_unsafe();
    return result;
  }
};

}  // namespace otb::ministamp
