// mini-kmeans: iterative clustering with transactional accumulator updates —
// short transactions, high commit-time ratio (Table 5.1 lists kmeans among
// the most commit-bound STAMP apps).
#pragma once

#include "common/rng.h"
#include "ministamp/app.h"

namespace otb::ministamp {

class KMeansApp final : public App {
 public:
  const char* name() const override { return "kmeans"; }

  AppResult run(stm::Runtime& rt, unsigned threads) const override {
    const unsigned scale = stamp_scale();
    const std::size_t npoints = 1024 * scale;
    constexpr std::size_t kClusters = 8;
    constexpr unsigned kPasses = 3;
    constexpr std::size_t kChunk = 4;

    // Deterministic point cloud.
    std::vector<std::int64_t> px(npoints), py(npoints);
    Xorshift rng{42};
    for (std::size_t i = 0; i < npoints; ++i) {
      px[i] = std::int64_t(rng.next_bounded(1000));
      py[i] = std::int64_t(rng.next_bounded(1000));
    }

    stm::TArray<std::int64_t> cx(kClusters), cy(kClusters);
    stm::TArray<std::int64_t> sum_x(kClusters, 0), sum_y(kClusters, 0),
        count(kClusters, 0);
    for (std::size_t c = 0; c < kClusters; ++c) {
      cx[c].store_direct(std::int64_t(c * 1000 / kClusters));
      cy[c].store_direct(std::int64_t(c * 1000 / kClusters));
    }

    AppResult total;
    const std::uint64_t t0 = now_ns();
    const std::uint64_t chunks = (npoints + kChunk - 1) / kChunk;
    for (unsigned pass = 0; pass < kPasses; ++pass) {
      AppResult phase = run_tasks(rt, threads, chunks, [&](stm::TxThread& th,
                                                           std::uint64_t task) {
        const std::size_t begin = std::size_t(task) * kChunk;
        const std::size_t end = std::min(begin + kChunk, npoints);
        rt.atomically(th, [&](stm::Tx& tx) {
          std::array<std::int64_t, kClusters> lx{}, ly{}, lc{};
          std::array<std::int64_t, kClusters> ccx, ccy;
          for (std::size_t c = 0; c < kClusters; ++c) {
            ccx[c] = tx.read(cx[c]);
            ccy[c] = tx.read(cy[c]);
          }
          for (std::size_t i = begin; i < end; ++i) {
            std::size_t best = 0;
            std::int64_t best_d = -1;
            for (std::size_t c = 0; c < kClusters; ++c) {
              const std::int64_t dx = px[i] - ccx[c];
              const std::int64_t dy = py[i] - ccy[c];
              const std::int64_t d = dx * dx + dy * dy;
              if (best_d < 0 || d < best_d) {
                best_d = d;
                best = c;
              }
            }
            lx[best] += px[i];
            ly[best] += py[i];
            lc[best] += 1;
          }
          for (std::size_t c = 0; c < kClusters; ++c) {
            if (lc[c] == 0) continue;
            tx.write(sum_x[c], tx.read(sum_x[c]) + lx[c]);
            tx.write(sum_y[c], tx.read(sum_y[c]) + ly[c]);
            tx.write(count[c], tx.read(count[c]) + lc[c]);
          }
        });
      });
      total.stats += phase.stats;
      // Single transaction: fold the accumulators into the next centroids.
      stm::TxThread th(rt);
      rt.atomically(th, [&](stm::Tx& tx) {
        for (std::size_t c = 0; c < kClusters; ++c) {
          const std::int64_t n = tx.read(count[c]);
          if (n > 0) {
            tx.write(cx[c], tx.read(sum_x[c]) / n);
            tx.write(cy[c], tx.read(sum_y[c]) / n);
          }
          tx.write(sum_x[c], std::int64_t{0});
          tx.write(sum_y[c], std::int64_t{0});
          tx.write(count[c], std::int64_t{0});
        }
      });
      total.stats += th.tx().stats();
    }
    total.exec_ms = double(now_ns() - t0) * 1e-6;
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kClusters; ++c) {
      sum = sum * 31 + std::uint64_t(cx[c].load_direct()) * 7 +
            std::uint64_t(cy[c].load_direct());
    }
    total.checksum = sum;
    return total;
  }
};

}  // namespace otb::ministamp
