// Registry of the mini-STAMP applications.
#pragma once

#include <memory>
#include <vector>

#include "ministamp/genome.h"
#include "ministamp/intruder.h"
#include "ministamp/kmeans.h"
#include "ministamp/labyrinth.h"
#include "ministamp/ssca2.h"
#include "ministamp/vacation.h"

namespace otb::ministamp {

inline std::vector<std::unique_ptr<App>> make_all_apps() {
  std::vector<std::unique_ptr<App>> apps;
  apps.push_back(std::make_unique<GenomeApp>());
  apps.push_back(std::make_unique<IntruderApp>());
  apps.push_back(std::make_unique<KMeansApp>());
  apps.push_back(std::make_unique<LabyrinthApp>());
  apps.push_back(std::make_unique<Ssca2App>());
  apps.push_back(std::make_unique<VacationApp>());
  return apps;
}

}  // namespace otb::ministamp
