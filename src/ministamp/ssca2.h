// mini-ssca2: graph kernel building adjacency structure with tiny write-only
// transactions — the highest commit-time ratio in Table 5.1 (83–95%), which
// is where RTC/RInval shine.
#pragma once

#include "common/rng.h"
#include "ministamp/app.h"

namespace otb::ministamp {

class Ssca2App final : public App {
 public:
  const char* name() const override { return "ssca2"; }

  AppResult run(stm::Runtime& rt, unsigned threads) const override {
    const unsigned scale = stamp_scale();
    const std::size_t nnodes = 2048 * scale;
    const std::size_t nedges = nnodes * 4;
    constexpr std::size_t kBatch = 2;

    // Deterministic edge list.
    std::vector<std::uint32_t> from(nedges), to(nedges);
    Xorshift rng{7};
    for (std::size_t e = 0; e < nedges; ++e) {
      from[e] = std::uint32_t(rng.next_bounded(nnodes));
      to[e] = std::uint32_t(rng.next_bounded(nnodes));
    }

    stm::TArray<std::int64_t> degree(nnodes, 0);
    stm::TArray<std::int64_t> weight(nnodes, 0);

    const std::uint64_t batches = (nedges + kBatch - 1) / kBatch;
    AppResult result = run_tasks(rt, threads, batches, [&](stm::TxThread& th,
                                                           std::uint64_t task) {
      const std::size_t begin = std::size_t(task) * kBatch;
      const std::size_t end = std::min(begin + kBatch, nedges);
      rt.atomically(th, [&](stm::Tx& tx) {
        for (std::size_t e = begin; e < end; ++e) {
          tx.write(degree[from[e]], tx.read(degree[from[e]]) + 1);
          tx.write(degree[to[e]], tx.read(degree[to[e]]) + 1);
          tx.write(weight[from[e]],
                   tx.read(weight[from[e]]) + std::int64_t(e % 17));
        }
      });
    });

    std::uint64_t sum = 0;
    for (std::size_t n = 0; n < nnodes; ++n) {
      sum += std::uint64_t(degree[n].load_direct()) * (n + 1) +
             std::uint64_t(weight[n].load_direct());
    }
    result.checksum = sum;
    return result;
  }
};

}  // namespace otb::ministamp
