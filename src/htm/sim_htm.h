// Simulated best-effort hardware transactional memory (§7.1.1 substrate).
//
// The paper's post-preliminary work runs OTB commit phases and STM
// fall-backs under Intel TSX.  This container has no TSX, so — per
// DESIGN.md's substitution rule — we simulate a *best-effort* HTM with the
// properties the paper's discussion relies on:
//
//   * bounded capacity: the transactional footprint must fit a small
//     read/write buffer (models the L1-resident read/write sets; exceeding
//     it raises a CAPACITY abort, §1.1.2);
//   * eager conflict detection: any concurrent commit while a hardware
//     transaction is live aborts it immediately (requester-loses, like a
//     cache-line invalidation killing the speculative state);
//   * spurious aborts: a small deterministic rate of SPURIOUS aborts models
//     interrupts/page faults — the reason best-effort HTM guarantees
//     nothing and always needs a software fallback;
//   * no escape actions: writes are buffered and invisible until commit.
//
// Conflict detection rides the host's global commit clock (a SeqLock): a
// hardware transaction starts at an even clock and dies the moment the
// clock moves, and its commit bumps the same clock — so simulated-HTM and
// NOrec-style software transactions compose soundly (the Hybrid NOrec of
// hybrid_norec.h).
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "common/spinlock.h"
#include "stm/tvar.h"

namespace otb::htm {

enum class AbortReason : std::uint8_t {
  kNone = 0,
  kConflict,   // another commit moved the clock while we were live
  kCapacity,   // footprint exceeded the simulated buffer
  kSpurious,   // interrupt/fault simulation
  kBusy,       // could not acquire the commit window
};

struct HtmStats {
  std::uint64_t commits = 0;
  std::uint64_t conflict_aborts = 0;
  std::uint64_t capacity_aborts = 0;
  std::uint64_t spurious_aborts = 0;
  std::uint64_t busy_aborts = 0;

  void count(AbortReason r) {
    switch (r) {
      case AbortReason::kConflict:
        ++conflict_aborts;
        break;
      case AbortReason::kCapacity:
        ++capacity_aborts;
        break;
      case AbortReason::kSpurious:
        ++spurious_aborts;
        break;
      case AbortReason::kBusy:
        ++busy_aborts;
        break;
      case AbortReason::kNone:
        break;
    }
  }
};

/// One simulated hardware transaction.  Word-based, like the STM layer.
class HtmTx {
 public:
  static constexpr std::size_t kReadCapacity = 64;
  static constexpr std::size_t kWriteCapacity = 32;
  /// One spurious abort every ~kSpuriousPeriod begins (deterministic).
  static constexpr std::uint64_t kSpuriousPeriod = 10000;

  explicit HtmTx(SeqLock& clock) : clock_(clock) {}

  /// Begin; false when the clock is odd (a committer is live — immediate
  /// conflict, like starting a transaction into contended lines).
  bool begin() {
    reason_ = AbortReason::kNone;
    nreads_ = 0;
    nwrites_ = 0;
    if (spurious_due()) {
      reason_ = AbortReason::kSpurious;
      return false;
    }
    snapshot_ = clock_.load();
    if ((snapshot_ & 1) != 0) {
      reason_ = AbortReason::kConflict;
      return false;
    }
    return true;
  }

  /// Transactional read; false => aborted (reason()).
  bool read(const stm::TWord* addr, stm::Word* out) {
    for (std::size_t i = 0; i < nwrites_; ++i) {
      if (writes_[i].addr == addr) {
        *out = writes_[i].value;
        return true;
      }
    }
    if (nreads_ == kReadCapacity) {
      reason_ = AbortReason::kCapacity;
      return false;
    }
    const stm::Word value = addr->load(std::memory_order_acquire);
    if (clock_.load() != snapshot_) {  // eager conflict detection
      reason_ = AbortReason::kConflict;
      return false;
    }
    reads_[nreads_++] = {addr, value};
    *out = value;
    return true;
  }

  /// Buffered transactional write; false => capacity abort.
  bool write(stm::TWord* addr, stm::Word value) {
    for (std::size_t i = 0; i < nwrites_; ++i) {
      if (writes_[i].addr == addr) {
        writes_[i].value = value;
        return true;
      }
    }
    if (nwrites_ == kWriteCapacity) {
      reason_ = AbortReason::kCapacity;
      return false;
    }
    writes_[nwrites_++] = {addr, value};
    return true;
  }

  /// Attempt to commit; on success the buffered writes are published
  /// atomically with respect to every clock subscriber.
  bool commit() {
    if (nwrites_ == 0) {
      // Read-only: reads were continuously validated against the clock.
      return clock_.load() == snapshot_ ||
             (reason_ = AbortReason::kConflict, false);
    }
    if (!clock_.try_acquire(snapshot_)) {
      reason_ = AbortReason::kConflict;
      return false;
    }
    for (std::size_t i = 0; i < nwrites_; ++i) {
      writes_[i].addr->store(writes_[i].value, std::memory_order_release);
    }
    clock_.release();
    return true;
  }

  AbortReason reason() const { return reason_; }
  std::size_t read_footprint() const { return nreads_; }
  std::size_t write_footprint() const { return nwrites_; }

 private:
  struct Entry {
    const stm::TWord* addr;
    stm::Word value;
  };
  struct WEntry {
    stm::TWord* addr;
    stm::Word value;
  };

  bool spurious_due() {
    thread_local std::uint64_t counter = 0;
    thread_local Xorshift rng{0xd15ea5e ^ reinterpret_cast<std::uintptr_t>(&counter)};
    ++counter;
    return rng.next_bounded(kSpuriousPeriod) == 0;
  }

  SeqLock& clock_;
  std::uint64_t snapshot_ = 0;
  std::array<Entry, kReadCapacity> reads_;
  std::array<WEntry, kWriteCapacity> writes_;
  std::size_t nreads_ = 0;
  std::size_t nwrites_ = 0;
  AbortReason reason_ = AbortReason::kNone;
};

}  // namespace otb::htm
