// Hybrid NOrec over the simulated HTM (§7.1.1's first proposal: best-effort
// hardware transactions with an STM fallback, in the Hybrid-NOrec style the
// paper cites as the natural fit for a single-global-lock STM).
//
// Fast path: run the whole transaction body inside a simulated hardware
// transaction.  The HTM subscribes to the NOrec clock, so a software commit
// aborts every live hardware transaction and vice versa — exactly the
// coupling that makes Hybrid NOrec sound.  After `htm_retries` failed
// hardware attempts (or a capacity abort, which retrying cannot fix), the
// transaction falls back to the plain NOrec context.
#pragma once

#include "common/tx_abort.h"
#include "htm/sim_htm.h"
#include "stm/algs/norec.h"

namespace otb::htm {

/// Thrown inside the fast path to unwind the user lambda when the hardware
/// transaction dies mid-body (the simulation's analogue of the implicit
/// jump to the abort handler).
struct HtmAborted {};

/// Tx facade whose barriers go through a simulated hardware transaction.
class HtmFastPathTx final : public stm::Tx {
 public:
  explicit HtmFastPathTx(SeqLock& clock) : htm_(clock) {}

  void begin() override {
    if (!htm_.begin()) throw HtmAborted{};
  }

  stm::Word read_word(const stm::TWord* addr) override {
    stats_.reads += 1;
    stm::Word value;
    if (!htm_.read(addr, &value)) throw HtmAborted{};
    return value;
  }

  void write_word(stm::TWord* addr, stm::Word value) override {
    stats_.writes += 1;
    if (!htm_.write(addr, value)) throw HtmAborted{};
  }

  void commit() override {
    if (!htm_.commit()) throw HtmAborted{};
  }

  void rollback() override {}

  AbortReason reason() const { return htm_.reason(); }

 private:
  HtmTx htm_;
};

class HybridNOrecRuntime {
 public:
  explicit HybridNOrecRuntime(stm::Config cfg = {}, unsigned htm_retries = 4)
      : global_(cfg), htm_retries_(htm_retries) {}

  /// Per-thread context pair (hardware facade + software fallback).
  struct Thread {
    explicit Thread(HybridNOrecRuntime& rt)
        : hw(rt.global_.clock), sw(rt.global_) {}
    HtmFastPathTx hw;
    stm::NOrecTx sw;
    HtmStats htm_stats;
  };

  std::unique_ptr<Thread> make_thread() { return std::make_unique<Thread>(*this); }

  /// Execute atomically: HTM attempts first, NOrec fallback after.
  template <typename Fn>
  void atomically(Thread& th, Fn&& fn) {
    for (unsigned attempt = 0; attempt < htm_retries_; ++attempt) {
      try {
        th.hw.begin();
        fn(static_cast<stm::Tx&>(th.hw));
        th.hw.commit();
        th.htm_stats.commits += 1;
        return;
      } catch (const HtmAborted&) {
        th.htm_stats.count(th.hw.reason());
        if (th.hw.reason() == AbortReason::kCapacity) break;  // hopeless
      }
    }
    // Software fallback: plain NOrec on the same clock — mutual abort with
    // concurrent hardware transactions is automatic.
    Backoff backoff;
    for (;;) {
      th.sw.begin();
      try {
        fn(static_cast<stm::Tx&>(th.sw));
        th.sw.commit();
        th.sw.stats().commits += 1;
        return;
      } catch (const TxAbort&) {
        th.sw.rollback();
        th.sw.stats().aborts += 1;
        backoff.pause();
      }
    }
  }

  SeqLock& clock() { return global_.clock; }

 private:
  stm::NOrecGlobal global_;
  unsigned htm_retries_;
};

}  // namespace otb::htm
