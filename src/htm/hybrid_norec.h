// Hybrid NOrec over the simulated HTM (§7.1.1's first proposal: best-effort
// hardware transactions with an STM fallback, in the Hybrid-NOrec style the
// paper cites as the natural fit for a single-global-lock STM).
//
// Fast path: run the whole transaction body inside a simulated hardware
// transaction.  The HTM subscribes to the NOrec clock, so a software commit
// aborts every live hardware transaction and vice versa — exactly the
// coupling that makes Hybrid NOrec sound.  After `htm_retries` failed
// hardware attempts (or a capacity abort, which retrying cannot fix), the
// transaction falls back to the plain NOrec context.
#pragma once

#include "common/tx_abort.h"
#include "htm/sim_htm.h"
#include "metrics/registry.h"
#include "metrics/sink.h"
#include "stm/algs/norec.h"

namespace otb::htm {

/// Map the simulator's abort codes onto the shared metrics taxonomy.
constexpr metrics::AbortReason to_metrics_reason(AbortReason r) {
  switch (r) {
    case AbortReason::kCapacity:
      return metrics::AbortReason::kHtmCapacity;
    case AbortReason::kSpurious:
      return metrics::AbortReason::kHtmSpurious;
    case AbortReason::kBusy:
      return metrics::AbortReason::kHtmBusy;
    case AbortReason::kConflict:
    case AbortReason::kNone:
      break;
  }
  return metrics::AbortReason::kHtmConflict;
}

/// Thrown inside the fast path to unwind the user lambda when the hardware
/// transaction dies mid-body (the simulation's analogue of the implicit
/// jump to the abort handler).
struct HtmAborted {};

/// Tx facade whose barriers go through a simulated hardware transaction.
class HtmFastPathTx final : public stm::Tx {
 public:
  explicit HtmFastPathTx(SeqLock& clock) : htm_(clock) {}

  void begin() override {
    if (!htm_.begin()) throw HtmAborted{};
  }

  stm::Word read_word(const stm::TWord* addr) override {
    stats_.reads += 1;
    stm::Word value;
    if (!htm_.read(addr, &value)) throw HtmAborted{};
    return value;
  }

  void write_word(stm::TWord* addr, stm::Word value) override {
    stats_.writes += 1;
    if (!htm_.write(addr, value)) throw HtmAborted{};
  }

  void commit() override {
    if (!htm_.commit()) throw HtmAborted{};
  }

  void rollback() override {}

  AbortReason reason() const { return htm_.reason(); }

 private:
  HtmTx htm_;
};

class HybridNOrecRuntime {
 public:
  explicit HybridNOrecRuntime(stm::Config cfg = {}, unsigned htm_retries = 4)
      : global_(cfg),
        htm_retries_(htm_retries),
        sink_(cfg.metrics != nullptr
                  ? cfg.metrics
                  : &metrics::Registry::global().sink("htm.HybridNOrec")) {}

  /// Per-thread context pair (hardware facade + software fallback).
  struct Thread {
    explicit Thread(HybridNOrecRuntime& rt)
        : hw(rt.global_.clock), sw(rt.global_) {
      sw.bind_metrics(rt.sink_);
    }
    HtmFastPathTx hw;
    stm::NOrecTx sw;
    HtmStats htm_stats;
  };

  std::unique_ptr<Thread> make_thread() { return std::make_unique<Thread>(*this); }

  /// The sink both paths report through (fast-path attempts directly, the
  /// software fallback via its NOrec context).
  metrics::MetricsSink& metrics_sink() const { return *sink_; }
  metrics::SinkSnapshot metrics() const { return sink_->snapshot(); }

  /// Execute atomically: HTM attempts first, NOrec fallback after.  Returns
  /// the attempt report (hardware and software attempts combined).
  template <typename Fn>
  metrics::AttemptReport atomically(Thread& th, Fn&& fn) {
    metrics::AttemptReport report;
    for (unsigned attempt = 0; attempt < htm_retries_; ++attempt) {
      try {
        th.hw.begin();
        fn(static_cast<stm::Tx&>(th.hw));
        th.hw.commit();
        th.htm_stats.commits += 1;
        sink_->add(metrics::CounterId::kAttempts);
        sink_->add(metrics::CounterId::kCommits);
        report.commits = 1;
        return report;
      } catch (const HtmAborted&) {
        th.htm_stats.count(th.hw.reason());
        const metrics::AbortReason r = to_metrics_reason(th.hw.reason());
        sink_->add(metrics::CounterId::kAttempts);
        sink_->record_abort(r);
        report.aborts += 1;
        report.last_reason = r;
        if (th.hw.reason() == AbortReason::kCapacity) break;  // hopeless
      }
    }
    // Software fallback: plain NOrec on the same clock — mutual abort with
    // concurrent hardware transactions is automatic.
    Backoff backoff;
    for (;;) {
      th.sw.begin();
      try {
        fn(static_cast<stm::Tx&>(th.sw));
        th.sw.commit();
        th.sw.note_commit();
        report.commits = 1;
        return report;
      } catch (const TxAbort& abort) {
        th.sw.rollback();
        th.sw.note_abort(abort.reason);
        report.aborts += 1;
        report.last_reason = abort.reason;
        backoff.pause();
      }
    }
  }

  SeqLock& clock() { return global_.clock; }

 private:
  stm::NOrecGlobal global_;
  unsigned htm_retries_;
  metrics::MetricsSink* sink_;
};

}  // namespace otb::htm
