// Abstract per-thread transaction context — the C++ analogue of the DEUCE
// "STM context" layer (§4.1.2): each algorithm implements begin / read /
// write / commit / rollback, and the runtime drives the retry loop.
//
// Accounting: algorithms bump the plain per-context `stats_` tally on the
// hot path (no atomics); the retry loop calls `note_commit` /
// `note_abort(reason)` at each attempt boundary, which flushes the
// attempt's tally *delta* into the bound `metrics::MetricsSink` — commit
// and abort-by-reason counters, operation counters, and per-phase latency
// histograms when timing is collected.
#pragma once

#include "common/tx_abort.h"
#include "metrics/sink.h"
#include "metrics/tally.h"
#include "stm/stats.h"
#include "stm/tvar.h"

namespace otb::stm {

class Tx {
 public:
  virtual ~Tx() = default;

  /// Start (or restart) a transaction attempt.
  virtual void begin() = 0;

  /// Transactional word read; throws TxAbort on conflict.
  virtual Word read_word(const TWord* addr) = 0;

  /// Transactional (buffered or eager, per algorithm) word write.
  virtual void write_word(TWord* addr, Word value) = 0;

  /// Attempt to commit; throws TxAbort on failure.
  virtual void commit() = 0;

  /// Clean up after an abort (release anything held, clear logs).
  virtual void rollback() = 0;

  // ---- typed sugar --------------------------------------------------------

  template <WordSized T>
  T read(const TVar<T>& var) {
    return from_word<T>(read_word(&var.word()));
  }

  template <WordSized T>
  void write(TVar<T>& var, T value) {
    write_word(&var.word(), to_word(value));
  }

  /// Read-modify-write helper.
  template <WordSized T, typename Fn>
  void update(TVar<T>& var, Fn&& fn) {
    write(var, fn(read(var)));
  }

  // ---- accounting ---------------------------------------------------------

  /// Lifetime totals as the legacy value view.  Deliberately const and
  /// by-value: the old `tx.stats().field += n` mutation pattern no longer
  /// compiles — contexts report through `note_commit`/`note_abort` instead.
  const TxStats stats() const { return TxStats::from(stats_); }

  /// Lifetime totals including per-reason abort attribution.
  const metrics::TxTally& tally() const { return stats_; }

  /// Bind the sink this context flushes into (null = keep tallying only).
  /// Called once at construction by the owning runtime.
  void bind_metrics(metrics::MetricsSink* sink) { sink_ = sink; }
  metrics::MetricsSink* metrics_sink() const { return sink_; }

  /// Attempt boundary: the retry loop reports the committed attempt.
  void note_commit() {
    stats_.commits += 1;
    stats_.attempts += 1;
    flush_attempt(true, metrics::AbortReason::kNone);
  }

  /// Attempt boundary: the retry loop reports an aborted attempt.
  void note_abort(metrics::AbortReason r) {
    stats_.aborts += 1;
    stats_.attempts += 1;
    stats_.aborts_by[metrics::index(r)] += 1;
    stats_.last_reason = r;
    flush_attempt(false, r);
  }

 protected:
  metrics::TxTally stats_;

 private:
  void flush_attempt(bool committed, metrics::AbortReason r) {
    if (sink_ == nullptr) return;
    sink_->record_attempt(stats_.delta_since(flushed_), committed, r);
    flushed_ = stats_;
  }

  metrics::MetricsSink* sink_ = nullptr;
  metrics::TxTally flushed_;
};

}  // namespace otb::stm
