// Abstract per-thread transaction context — the C++ analogue of the DEUCE
// "STM context" layer (§4.1.2): each algorithm implements begin / read /
// write / commit / rollback, and the runtime drives the retry loop.
#pragma once

#include "common/tx_abort.h"
#include "stm/stats.h"
#include "stm/tvar.h"

namespace otb::stm {

class Tx {
 public:
  virtual ~Tx() = default;

  /// Start (or restart) a transaction attempt.
  virtual void begin() = 0;

  /// Transactional word read; throws TxAbort on conflict.
  virtual Word read_word(const TWord* addr) = 0;

  /// Transactional (buffered or eager, per algorithm) word write.
  virtual void write_word(TWord* addr, Word value) = 0;

  /// Attempt to commit; throws TxAbort on failure.
  virtual void commit() = 0;

  /// Clean up after an abort (release anything held, clear logs).
  virtual void rollback() = 0;

  // ---- typed sugar --------------------------------------------------------

  template <WordSized T>
  T read(const TVar<T>& var) {
    return from_word<T>(read_word(&var.word()));
  }

  template <WordSized T>
  void write(TVar<T>& var, T value) {
    write_word(&var.word(), to_word(value));
  }

  /// Read-modify-write helper.
  template <WordSized T, typename Fn>
  void update(TVar<T>& var, Fn&& fn) {
    write(var, fn(read(var)));
  }

  TxStats& stats() { return stats_; }
  const TxStats& stats() const { return stats_; }

 protected:
  TxStats stats_;
};

}  // namespace otb::stm
