// Runtime configuration: which algorithm, how many thread slots, and the
// RTC/RInval server knobs the paper sweeps.
#pragma once

#include <cstddef>
#include <string_view>

namespace otb::metrics {
class MetricsSink;
}

namespace otb::stm {

enum class AlgoKind {
  kNOrec,     // §2.1.1 — value-based validation, one global seqlock
  kTML,       // eager single-writer global seqlock (TML [66])
  kTL2,       // §4.2.3 — orec table + global version clock
  kRingSW,    // §2.1.3 — ring of commit bloom filters
  kInvalSTM,  // §2.1.2 — commit-time invalidation
  kRTC,       // Chapter 5 — remote transaction commit
  kRInval,    // Chapter 6 — remote invalidation
  kCGL,       // coarse global lock (RSTM's sequential baseline, §2.1.3)
  kTinySTM,   // eager orec algorithm (encounter-time locking, undo log)
};

constexpr std::string_view to_string(AlgoKind k) {
  switch (k) {
    case AlgoKind::kNOrec:
      return "NOrec";
    case AlgoKind::kTML:
      return "TML";
    case AlgoKind::kTL2:
      return "TL2";
    case AlgoKind::kRingSW:
      return "RingSW";
    case AlgoKind::kInvalSTM:
      return "InvalSTM";
    case AlgoKind::kRTC:
      return "RTC";
    case AlgoKind::kRInval:
      return "RInval";
    case AlgoKind::kCGL:
      return "CGL";
    case AlgoKind::kTinySTM:
      return "TinySTM";
  }
  return "?";
}

struct Config {
  /// Upper bound on concurrently registered transactional threads.
  unsigned max_threads = 64;

  /// RTC: number of secondary (dependency-detector) servers (Fig 5.11).
  unsigned rtc_secondary_servers = 1;

  /// RTC: write-set size at which dependency detection is enabled (§5.1.1).
  std::size_t rtc_dd_threshold = 8;

  /// RInval: run invalidation in a separate server, concurrently with the
  /// commit server's write-back (V2); false = the commit server also
  /// invalidates (V1).
  bool rinval_parallel_invalidation = true;

  /// Contention manager for the invalidation-based algorithms (§7.1.3 /
  /// §2.1.2): when > 0, a committer that would doom more than this many
  /// in-flight readers aborts itself instead (the "polite" policy the
  /// InvalSTM paper sketches).  0 disables the CM (always requester-wins).
  unsigned inval_cm_max_doomed = 0;

  /// Collect per-phase wall-clock times (Figs 6.2–6.3, Table 5.1).  Off by
  /// default: two clock reads per validation are not free.
  bool collect_timing = false;

  /// Best-effort pinning of server threads to dedicated CPUs.
  bool pin_servers = true;

  /// Metrics sink every context of this runtime reports through.  Null
  /// (the default) registers a domain named "stm.<algo>" in
  /// `metrics::Registry::global()`; tests inject an in-memory instance.
  metrics::MetricsSink* metrics = nullptr;
};

}  // namespace otb::stm
