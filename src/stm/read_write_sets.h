// Transaction-local logs shared by the STM algorithms:
//   * ValueReadSet — (address, observed value) pairs for the value-based
//     validation of NOrec/RTC (§2.1.1);
//   * RedoWriteSet — address→value redo log with an open-addressing index
//     so read-after-write lookups stay O(1) as write-sets grow.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "stm/tvar.h"

namespace otb::stm {

class ValueReadSet {
 public:
  struct Entry {
    const TWord* addr;
    Word value;
  };

  void record(const TWord* addr, Word value) { entries_.push_back({addr, value}); }

  /// True when every logged read still matches memory.
  bool values_match() const {
    for (const Entry& e : entries_) {
      if (e.addr->load(std::memory_order_acquire) != e.value) return false;
    }
    return true;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

class RedoWriteSet {
 public:
  struct Entry {
    TWord* addr;
    Word value;
  };

  void put(TWord* addr, Word value) {
    if (index_.size() < entries_.size() * 2 + 2) rehash();
    const std::size_t slot = probe(addr);
    if (index_[slot] != kEmpty) {
      entries_[index_[slot]].value = value;  // overwrite earlier write
      return;
    }
    index_[slot] = entries_.size();
    entries_.push_back({addr, value});
  }

  /// Read-after-write lookup.
  bool lookup(const TWord* addr, Word* out) const {
    if (entries_.empty()) return false;
    const std::size_t slot = probe(addr);
    if (index_[slot] == kEmpty) return false;
    *out = entries_[index_[slot]].value;
    return true;
  }

  /// Publish every buffered write to shared memory.
  void publish() const {
    for (const Entry& e : entries_) {
      e.addr->store(e.value, std::memory_order_release);
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void clear() {
    entries_.clear();
    index_.assign(index_.size(), kEmpty);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::size_t probe(const TWord* addr) const {
    const std::size_t mask = index_.size() - 1;
    std::size_t slot = hash_addr(addr) & mask;
    while (index_[slot] != kEmpty && entries_[index_[slot]].addr != addr) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void rehash() {
    std::size_t cap = index_.empty() ? 16 : index_.size() * 2;
    index_.assign(cap, kEmpty);
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      index_[probe(entries_[i].addr)] = i;
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> index_;
};

}  // namespace otb::stm
