// Umbrella header: include this to get the full STM framework (runtime,
// typed TVars, every algorithm).  Defines the Runtime constructor, which
// must see every AlgoGlobal.
#pragma once

#include "stm/algs/cgl.h"
#include "stm/algs/invalstm.h"
#include "stm/algs/norec.h"
#include "stm/algs/rinval.h"
#include "stm/algs/ringsw.h"
#include "stm/algs/rtc.h"
#include "stm/algs/tinystm.h"
#include "stm/algs/tl2.h"
#include "stm/algs/tml.h"
#include "metrics/registry.h"
#include "stm/runtime.h"

#include <string>

namespace otb::stm {

inline Runtime::Runtime(AlgoKind kind, Config config)
    : kind_(kind), config_(config), slot_used_(config.max_threads, false) {
  sink_ = config.metrics != nullptr
              ? config.metrics
              : &metrics::Registry::global().sink(std::string("stm.") +
                                                  std::string(to_string(kind)));
  switch (kind) {
    case AlgoKind::kNOrec:
      global_ = std::make_unique<NOrecGlobal>(config);
      break;
    case AlgoKind::kTML:
      global_ = std::make_unique<TmlGlobal>(config);
      break;
    case AlgoKind::kTL2:
      global_ = std::make_unique<Tl2Global>(config);
      break;
    case AlgoKind::kRingSW:
      global_ = std::make_unique<RingSwGlobal>(config);
      break;
    case AlgoKind::kInvalSTM:
      global_ = std::make_unique<InvalStmGlobal>(config);
      break;
    case AlgoKind::kRTC:
      global_ = std::make_unique<RtcGlobal>(config);
      break;
    case AlgoKind::kRInval:
      global_ = std::make_unique<RInvalGlobal>(config);
      break;
    case AlgoKind::kCGL:
      global_ = std::make_unique<CglGlobal>(config);
      break;
    case AlgoKind::kTinySTM:
      global_ = std::make_unique<TinyStmGlobal>(config);
      break;
  }
}

}  // namespace otb::stm
