// Compatibility view over the otb::metrics tally.
//
// `TxStats` used to be the primary accounting struct that contexts mutated
// directly; the source of truth is now `metrics::TxTally` (per context)
// flushed into a `metrics::MetricsSink` (per domain).  This struct remains
// as a *read-only value view* for code that summarises per-thread results
// (benches, ministamp) — it is generated on demand and mutating a returned
// copy affects nothing.  New code should use `Runtime::metrics()` /
// `metrics::Snapshot` instead; see docs/METRICS.md for the field -> counter
// mapping.
//
// The fields remain the paper's *software proxies* for hardware counters
// (DESIGN.md substitutions): shared-lock CAS failures and spin iterations
// stand in for coherence-miss measurements (Fig 5.6), and the validation /
// commit nanosecond accumulators drive the critical-path breakdowns
// (Figs 6.2–6.3, Table 5.1).
#pragma once

#include <cstdint>

#include "metrics/tally.h"

namespace otb::stm {

struct TxStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t validations = 0;
  std::uint64_t lock_cas_failures = 0;  // failed CAS on shared locks
  std::uint64_t lock_acquisitions = 0;  // successful CAS on shared locks
  std::uint64_t lock_spins = 0;         // spin iterations on shared state
  std::uint64_t ns_validation = 0;      // time inside validation
  std::uint64_t ns_commit = 0;          // time inside the commit routine
  std::uint64_t ns_total = 0;           // time inside transactions overall

  static TxStats from(const metrics::TxTally& t) {
    TxStats s;
    s.commits = t.commits;
    s.aborts = t.aborts;
    s.reads = t.reads;
    s.writes = t.writes;
    s.validations = t.validations;
    s.lock_cas_failures = t.lock_cas_failures;
    s.lock_acquisitions = t.lock_acquisitions;
    s.lock_spins = t.lock_spins;
    s.ns_validation = t.ns_validation;
    s.ns_commit = t.ns_commit;
    s.ns_total = t.ns_total;
    return s;
  }

  TxStats& operator+=(const TxStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    reads += o.reads;
    writes += o.writes;
    validations += o.validations;
    lock_cas_failures += o.lock_cas_failures;
    lock_acquisitions += o.lock_acquisitions;
    lock_spins += o.lock_spins;
    ns_validation += o.ns_validation;
    ns_commit += o.ns_commit;
    ns_total += o.ns_total;
    return *this;
  }
};

}  // namespace otb::stm
