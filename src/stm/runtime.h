// STM runtime facade: owns the algorithm's global state (clocks, orec
// tables, server threads), hands out per-thread transaction contexts, and
// drives the retry loop.  This is the C++ analogue of the DEUCE agent.
#pragma once

#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "metrics/sink.h"
#include "stm/config.h"
#include "stm/tx.h"

namespace otb::stm {

/// Algorithm-global state + context factory.  One instance per Runtime.
class AlgoGlobal {
 public:
  virtual ~AlgoGlobal() = default;
  virtual std::unique_ptr<Tx> make_tx(unsigned slot) = 0;
};

class Runtime;

/// RAII registration of the calling thread with a runtime: reserves a slot
/// (used by invalidation records / RTC request entries) and owns the
/// thread's transaction context.
class TxThread {
 public:
  explicit TxThread(Runtime& rt);
  ~TxThread();
  TxThread(const TxThread&) = delete;
  TxThread& operator=(const TxThread&) = delete;

  Tx& tx() { return *tx_; }
  unsigned slot() const { return slot_; }

 private:
  Runtime& rt_;
  unsigned slot_;
  std::unique_ptr<Tx> tx_;
};

class Runtime {
 public:
  Runtime(AlgoKind kind, Config config = {});
  ~Runtime() = default;

  AlgoKind kind() const { return kind_; }
  const Config& config() const { return config_; }

  /// The sink every context of this runtime reports through (injected via
  /// `Config::metrics`, else the registry domain "stm.<algo>").
  metrics::MetricsSink& metrics_sink() const { return *sink_; }

  /// Snapshot of this runtime's accumulated metrics — the redesigned stats
  /// accessor (replaces summing raw `TxStats` fields by hand).
  metrics::SinkSnapshot metrics() const { return sink_->snapshot(); }

  /// Execute `fn(tx)` atomically with retry-on-abort.  Returns the attempt
  /// report for this call; lifetime totals flow into the metrics sink.
  template <typename Fn>
  metrics::AttemptReport atomically(TxThread& thread, Fn&& fn) {
    Tx& tx = thread.tx();
    Backoff backoff;
    metrics::AttemptReport report;
    for (;;) {
      tx.begin();
      try {
        fn(tx);
        tx.commit();
        tx.note_commit();
        report.commits = 1;
        return report;
      } catch (const TxAbort& abort) {
        tx.rollback();
        tx.note_abort(abort.reason);
        report.aborts += 1;
        report.last_reason = abort.reason;
        backoff.pause();
      }
    }
  }

 private:
  friend class TxThread;

  unsigned acquire_slot() {
    std::lock_guard<std::mutex> lk(slots_mu_);
    for (unsigned i = 0; i < slot_used_.size(); ++i) {
      if (!slot_used_[i]) {
        slot_used_[i] = true;
        return i;
      }
    }
    assert(false && "more threads than Config::max_threads");
    return 0;
  }

  void release_slot(unsigned slot) {
    std::lock_guard<std::mutex> lk(slots_mu_);
    slot_used_[slot] = false;
  }

  AlgoKind kind_;
  Config config_;
  metrics::MetricsSink* sink_ = nullptr;  // resolved in the constructor
  std::unique_ptr<AlgoGlobal> global_;
  std::mutex slots_mu_;
  std::vector<bool> slot_used_;
};

inline TxThread::TxThread(Runtime& rt) : rt_(rt), slot_(rt.acquire_slot()) {
  tx_ = rt.global_->make_tx(slot_);
  tx_->bind_metrics(rt.sink_);
}

inline TxThread::~TxThread() {
  tx_.reset();  // the context must deregister before the slot can be reused
  rt_.release_slot(slot_);
}

}  // namespace otb::stm
