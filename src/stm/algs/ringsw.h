// RingSTM, single-writer variant (Spear et al.) — §2.1.3.
//
// Committed writers append their write bloom filter to a fixed ring stamped
// with a commit timestamp.  Readers validate by intersecting their read
// filter with every ring entry newer than their start time; writers
// serialize on a global commit lock (the "SW" flavour), re-validate, then
// publish both their writes and their ring entry.  A reader that falls so
// far behind that the ring has wrapped over its start position aborts.
#pragma once

#include <array>

#include "common/bloom_filter.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "stm/read_write_sets.h"
#include "stm/runtime.h"

namespace otb::stm {

struct RingSwGlobal final : AlgoGlobal {
  static constexpr std::size_t kRingSize = 1024;

  struct alignas(kCacheLine) RingEntry {
    std::atomic<std::uint64_t> timestamp{0};  // 0 = never used
    TxFilter filter;
  };

  /// Newest committed timestamp; entry i lives at ring[i % kRingSize].
  std::atomic<std::uint64_t> ring_index{0};
  /// Serializes writers (single-writer ring).
  SpinLock commit_lock;
  std::array<RingEntry, kRingSize> ring;

  explicit RingSwGlobal(const Config&) {}

  std::unique_ptr<Tx> make_tx(unsigned) override;
};

class RingSwTx final : public Tx {
 public:
  explicit RingSwTx(RingSwGlobal& global) : global_(global) {}

  void begin() override {
    read_filter_.clear();
    writes_.clear();
    write_filter_.clear();
    start_ = global_.ring_index.load(std::memory_order_acquire);
  }

  Word read_word(const TWord* addr) override {
    stats_.reads += 1;
    Word buffered;
    if (writes_.lookup(addr, &buffered)) return buffered;
    const Word value = addr->load(std::memory_order_acquire);
    read_filter_.add(addr);
    check_ring_suffix();
    return value;
  }

  void write_word(TWord* addr, Word value) override {
    stats_.writes += 1;
    writes_.put(addr, value);
    write_filter_.add(addr);
  }

  void commit() override {
    if (writes_.empty()) return;
    std::lock_guard<SpinLock> lk(global_.commit_lock);
    check_ring_suffix();  // final validation against writers we missed
    const std::uint64_t ts = global_.ring_index.load(std::memory_order_acquire) + 1;
    auto& entry = global_.ring[ts % RingSwGlobal::kRingSize];
    entry.filter = write_filter_;
    entry.timestamp.store(ts, std::memory_order_release);
    // Publish the ring entry *before* the write-back: a reader that observes
    // any of our new values is then guaranteed to also observe the entry and
    // abort on filter intersection (bloom filters have no false negatives).
    global_.ring_index.store(ts, std::memory_order_release);
    writes_.publish();
  }

  void rollback() override {}

 private:
  /// Intersect our read filter with every ring entry committed after we
  /// started; advance `start_` past validated entries.
  void check_ring_suffix() {
    const std::uint64_t newest = global_.ring_index.load(std::memory_order_acquire);
    if (newest == start_) return;
    stats_.validations += 1;
    if (newest - start_ >= RingSwGlobal::kRingSize) {
      throw TxAbort{metrics::AbortReason::kRingWrap};  // wrapped
    }
    for (std::uint64_t i = start_ + 1; i <= newest; ++i) {
      const auto& entry = global_.ring[i % RingSwGlobal::kRingSize];
      if (entry.timestamp.load(std::memory_order_acquire) != i) {
        // The entry was overwritten under us — equivalent to a wrap.
        throw TxAbort{metrics::AbortReason::kRingWrap};
      }
      if (entry.filter.intersects(read_filter_)) {
        throw TxAbort{metrics::AbortReason::kValidation};
      }
    }
    start_ = newest;
  }

  RingSwGlobal& global_;
  TxFilter read_filter_;
  TxFilter write_filter_;
  RedoWriteSet writes_;
  std::uint64_t start_ = 0;
};

inline std::unique_ptr<Tx> RingSwGlobal::make_tx(unsigned) {
  return std::make_unique<RingSwTx>(*this);
}

}  // namespace otb::stm
