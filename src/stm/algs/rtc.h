// RTC — Remote Transaction Commit (Chapter 5).
//
// Clients execute NOrec-style transactions (value-based validation, lazy
// redo logs) but never touch the global lock themselves: at commit they
// post a request into a cache-aligned request array and spin on their own
// entry.  A dedicated *main server* thread scans the array, validates and
// publishes write-sets on the clients' behalf (it is the only writer of the
// global timestamp, so it needs no CAS), and — when the write-set is large
// enough to enable dependency detection (§5.1.1) — *secondary servers*
// concurrently commit requests whose read/write bloom filter is disjoint
// from the write filter of the in-flight main commit (§5.2.3, Fig 5.4).
//
// The servers and the `servers_lock` handshake implement exactly the
// Algorithm 10/11 protocol, including the "secondary is an extension of the
// main commit" rule: the main server cannot move the timestamp back to even
// while a secondary holds the lock, and a secondary commits at most one
// request per main-commit window.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bloom_filter.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "stm/algs/norec.h"
#include "stm/runtime.h"

namespace otb::stm {

class RtcClientTx;

struct RtcGlobal final : AlgoGlobal {
  enum ReqState : int { kReady = 0, kPending = 1, kAborted = 2 };

  struct alignas(kCacheLine) Request {
    std::atomic<int> state{kReady};
    RtcClientTx* tx = nullptr;
    // Spin-then-block handoff: after a short spin the client sleeps here so
    // the servers get the CPU on oversubscribed hosts (DESIGN.md).
    std::mutex mu;
    std::condition_variable cv;

    void complete(int final_state) {
      {
        std::lock_guard<std::mutex> lk(mu);
        state.store(final_state, std::memory_order_release);
      }
      cv.notify_one();
    }

    int await_completion() {
      int s;
      for (int spin = 0; spin < kClientSpins; ++spin) {
        s = state.load(std::memory_order_acquire);
        if (s != kPending) return s;
        cpu_relax();
      }
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] {
        return (s = state.load(std::memory_order_acquire)) != kPending;
      });
      return s;
    }
  };

  static constexpr int kClientSpins = 512;

  NOrecGlobal norec;  // shared timestamp + timing flag for the client side
  Config cfg;
  std::unique_ptr<Request[]> requests;
  unsigned nslots;

  std::atomic<bool> stop{false};
  std::atomic<bool> dd_enabled{false};
  std::atomic<Request*> main_request{nullptr};
  SpinLock servers_lock;
  std::vector<std::thread> servers;

  explicit RtcGlobal(const Config& config)
      : norec(config),
        cfg(config),
        requests(std::make_unique<Request[]>(config.max_threads)),
        nslots(config.max_threads) {
    servers.emplace_back([this] { main_server_loop(); });
    for (unsigned s = 0; s < cfg.rtc_secondary_servers; ++s) {
      servers.emplace_back([this, s] { secondary_server_loop(s); });
    }
  }

  ~RtcGlobal() override {
    stop.store(true, std::memory_order_release);
    for (auto& t : servers) t.join();
    drain_pending();  // nobody should be left, but never strand a client
  }

  std::unique_ptr<Tx> make_tx(unsigned slot) override;

 private:
  void main_server_loop();
  void secondary_server_loop(unsigned id);
  void drain_pending();
};

class RtcClientTx final : public NOrecTx {
 public:
  RtcClientTx(RtcGlobal& rtc, unsigned slot)
      : NOrecTx(rtc.norec), rtc_(rtc), slot_(slot) {
    track_filters_ = true;
    rtc_.requests[slot_].tx = this;
  }

  ~RtcClientTx() override { rtc_.requests[slot_].tx = nullptr; }

  void commit() override {
    const std::uint64_t t0 = rtc_.norec.collect_timing ? now_ns() : 0;
    if (!writes_.empty()) {
      validate();  // pre-flight client validation (Algorithm 9); may abort
      auto& req = rtc_.requests[slot_];
      req.state.store(RtcGlobal::kPending, std::memory_order_release);
      const int state = req.await_completion();
      if (state == RtcGlobal::kAborted) {
        req.state.store(RtcGlobal::kReady, std::memory_order_release);
        finish_attempt(t0);
        // The server refused the request after value-based re-validation.
        throw TxAbort{metrics::AbortReason::kValidation};
      }
      req.state.store(RtcGlobal::kReady, std::memory_order_release);
    }
    finish_attempt(t0);
  }

  // Server-side accessors.
  bool server_validate() const { return reads_.values_match(); }
  void server_publish() const { writes_.publish(); }
  std::size_t write_set_size() const { return writes_.size(); }
  const TxFilter& rw_filter() const { return read_filter_; }
  const TxFilter& w_filter() const { return write_filter_; }

 private:
  RtcGlobal& rtc_;
  unsigned slot_;
};

inline std::unique_ptr<Tx> RtcGlobal::make_tx(unsigned slot) {
  return std::make_unique<RtcClientTx>(*this, slot);
}

// ---- server loops ----------------------------------------------------------

inline void RtcGlobal::main_server_loop() {
  if (cfg.pin_servers) pin_this_thread(0);
  const bool has_secondary = cfg.rtc_secondary_servers > 0;
  while (!stop.load(std::memory_order_acquire)) {
    bool worked = false;
    for (unsigned i = 0; i < nslots; ++i) {
      Request& req = requests[i];
      if (req.state.load(std::memory_order_acquire) != kPending) continue;
      RtcClientTx* tx = req.tx;
      if (tx == nullptr) continue;
      worked = true;
      // Only this thread moves the timestamp, so it is even here and the
      // validation below runs against quiescent shared memory.
      if (!tx->server_validate()) {
        req.complete(kAborted);
        continue;
      }
      if (!has_secondary || tx->write_set_size() < cfg.rtc_dd_threshold) {
        // Fast path: dependency detection disabled (Algorithm 10, left).
        norec.clock.server_increment();  // odd
        tx->server_publish();
        norec.clock.server_increment();  // even
        req.complete(kReady);
      } else {
        // DD path (Algorithm 10, right): let secondaries piggy-back.
        main_request.store(&req, std::memory_order_release);
        dd_enabled.store(true, std::memory_order_release);
        norec.clock.server_increment();  // odd
        tx->server_publish();
        // The window closes only when no secondary is mid-commit.
        servers_lock.lock();
        norec.clock.server_increment();  // even
        servers_lock.unlock();
        dd_enabled.store(false, std::memory_order_release);
        main_request.store(nullptr, std::memory_order_release);
        req.complete(kReady);
      }
    }
    if (!worked) std::this_thread::yield();  // oversubscribed hosts
  }
}

inline void RtcGlobal::secondary_server_loop(unsigned id) {
  if (cfg.pin_servers) pin_this_thread(1 + id);
  while (!stop.load(std::memory_order_acquire)) {
    if (!dd_enabled.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      continue;
    }
    for (unsigned i = 0; i < nslots && !stop.load(std::memory_order_relaxed); ++i) {
      if (!dd_enabled.load(std::memory_order_acquire)) continue;
      const std::uint64_t s = norec.clock.load();
      if ((s & 1) == 0) continue;  // main server not inside a commit window
      Request& req = requests[i];
      Request* main_req = main_request.load(std::memory_order_acquire);
      if (&req == main_req || main_req == nullptr) continue;
      if (req.state.load(std::memory_order_acquire) != kPending) continue;
      RtcClientTx* tx = req.tx;
      RtcClientTx* main_tx = main_req->tx;
      if (tx == nullptr || main_tx == nullptr) continue;
      // Independence test (§5.1.1): rwf(candidate) ∩ wf(main) must be empty.
      if (tx->rw_filter().intersects(main_tx->w_filter())) continue;
      if (!servers_lock.try_lock()) continue;
      if (norec.clock.load() != s) {  // main finished while we decided
        servers_lock.unlock();
        continue;
      }
      // Validate under the lock: main's writes cannot touch our read-set
      // (independence), and any earlier secondary commit of this window is
      // fully published, so value-based validation is exact.
      if (!tx->server_validate()) {
        req.complete(kAborted);
        servers_lock.unlock();
        continue;
      }
      tx->server_publish();
      req.complete(kReady);
      servers_lock.unlock();
      // One request per commit window: wait until the main server closes it.
      SpinWait waiter;
      while (norec.clock.load() == s && !stop.load(std::memory_order_acquire)) {
        waiter.spin();
      }
    }
  }
}

inline void RtcGlobal::drain_pending() {
  for (unsigned i = 0; i < nslots; ++i) {
    int expected = kPending;
    if (requests[i].state.compare_exchange_strong(expected, kAborted,
                                                  std::memory_order_acq_rel)) {
      requests[i].cv.notify_one();
    }
  }
}

}  // namespace otb::stm
