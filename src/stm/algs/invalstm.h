// InvalSTM (Gottschlich, Vachharajani, Siek) — commit-time invalidation,
// §2.1.2.
//
// Validation is replaced by invalidation: the committing transaction, while
// holding the single global commit lock, compares its write bloom filter
// with the read filters of every in-flight transaction and sets the losers'
// `invalidated` flag.  A read therefore costs O(1): re-read the timestamp,
// check the own flag.  The trade-offs the paper calls out — the commit
// routine carries the whole invalidation scan, and commits fully serialize —
// are exactly what RInval later attacks with server threads.
#pragma once

#include <memory>

#include "common/bloom_filter.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "stm/read_write_sets.h"
#include "stm/runtime.h"

namespace otb::stm {

/// Shared per-thread record the committer scans.  One per runtime slot.
struct alignas(kCacheLine) InvalRecord {
  std::atomic<bool> active{false};
  std::atomic<bool> invalidated{false};
  /// Guards `read_filter` against a concurrent committer scan.
  SpinLock filter_lock;
  TxFilter read_filter;
};

struct InvalStmGlobal final : AlgoGlobal {
  SeqLock clock;
  unsigned nslots;
  unsigned cm_max_doomed;  // §7.1.3 contention manager; 0 = requester wins
  std::unique_ptr<InvalRecord[]> records;

  explicit InvalStmGlobal(const Config& cfg)
      : nslots(cfg.max_threads),
        cm_max_doomed(cfg.inval_cm_max_doomed),
        records(std::make_unique<InvalRecord[]>(cfg.max_threads)) {}

  /// How many active transactions a write filter would doom (CM input).
  unsigned count_conflicting(const TxFilter& write_filter,
                             const InvalRecord* self) {
    unsigned doomed = 0;
    for (unsigned i = 0; i < nslots; ++i) {
      InvalRecord& other = records[i];
      if (&other == self || !other.active.load(std::memory_order_acquire)) {
        continue;
      }
      std::lock_guard<SpinLock> lk(other.filter_lock);
      if (other.read_filter.intersects(write_filter)) ++doomed;
    }
    return doomed;
  }

  std::unique_ptr<Tx> make_tx(unsigned slot) override;
};

class InvalStmTx final : public Tx {
 public:
  InvalStmTx(InvalStmGlobal& global, unsigned slot)
      : global_(global), rec_(global.records[slot]) {}

  ~InvalStmTx() override { rec_.active.store(false, std::memory_order_release); }

  void begin() override {
    writes_.clear();
    write_filter_.clear();
    {
      std::lock_guard<SpinLock> lk(rec_.filter_lock);
      rec_.read_filter.clear();
    }
    rec_.invalidated.store(false, std::memory_order_release);
    rec_.active.store(true, std::memory_order_release);
    snapshot_ = global_.clock.wait_even();
  }

  Word read_word(const TWord* addr) override {
    stats_.reads += 1;
    Word buffered;
    if (writes_.lookup(addr, &buffered)) return buffered;
    for (;;) {
      const std::uint64_t s1 = global_.clock.wait_even();
      const Word value = addr->load(std::memory_order_acquire);
      {
        // Announce the read before confirming the timestamp: any committer
        // that publishes after our confirmation is then guaranteed to see
        // this filter bit during its invalidation scan.
        std::lock_guard<SpinLock> lk(rec_.filter_lock);
        rec_.read_filter.add(addr);
      }
      if (global_.clock.load() != s1) {
        stats_.lock_spins += 1;
        continue;  // a commit raced our read; take a fresh snapshot
      }
      if (rec_.invalidated.load(std::memory_order_acquire)) {
        throw TxAbort{metrics::AbortReason::kInvalidated};
      }
      snapshot_ = s1;
      return value;
    }
  }

  void write_word(TWord* addr, Word value) override {
    stats_.writes += 1;
    writes_.put(addr, value);
    write_filter_.add(addr);
  }

  void commit() override {
    if (writes_.empty()) {
      // Reads were continuously guarded by the invalidation flag.
      if (rec_.invalidated.load(std::memory_order_acquire)) {
        throw TxAbort{metrics::AbortReason::kInvalidated};
      }
      rec_.active.store(false, std::memory_order_release);
      return;
    }
    // Acquire the global commit lock.
    for (;;) {
      const std::uint64_t even = global_.clock.wait_even();
      if (rec_.invalidated.load(std::memory_order_acquire)) {
        throw TxAbort{metrics::AbortReason::kInvalidated};
      }
      if (global_.clock.try_acquire(even)) break;
      stats_.lock_cas_failures += 1;
    }
    stats_.lock_acquisitions += 1;
    if (rec_.invalidated.load(std::memory_order_acquire)) {
      global_.clock.release();
      throw TxAbort{metrics::AbortReason::kInvalidated};
    }
    // Contention manager (§2.1.2's "more complex implementation"): a
    // committer about to doom a large crowd yields and retries instead.
    if (global_.cm_max_doomed > 0 &&
        global_.count_conflicting(write_filter_, &rec_) > global_.cm_max_doomed) {
      global_.clock.release();
      throw TxAbort{metrics::AbortReason::kContentionManager};
    }
    writes_.publish();
    invalidate_conflicting();
    rec_.active.store(false, std::memory_order_release);
    global_.clock.release();
  }

  void rollback() override { rec_.active.store(false, std::memory_order_release); }

 private:
  void invalidate_conflicting() {
    stats_.validations += 1;
    for (unsigned i = 0; i < global_.nslots; ++i) {
      InvalRecord& other = global_.records[i];
      if (&other == &rec_ || !other.active.load(std::memory_order_acquire)) continue;
      std::lock_guard<SpinLock> lk(other.filter_lock);
      if (other.read_filter.intersects(write_filter_)) {
        other.invalidated.store(true, std::memory_order_release);
      }
    }
  }

  InvalStmGlobal& global_;
  InvalRecord& rec_;
  RedoWriteSet writes_;
  TxFilter write_filter_;
  std::uint64_t snapshot_ = 0;
};

inline std::unique_ptr<Tx> InvalStmGlobal::make_tx(unsigned slot) {
  return std::make_unique<InvalStmTx>(*this, slot);
}

}  // namespace otb::stm
