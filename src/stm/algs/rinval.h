// RInval — Remote Invalidation (Chapter 6).
//
// Combines the two ideas the paper builds on:
//   * like InvalSTM, validation is replaced by commit-time invalidation, so
//     a read costs O(1) (snapshot the clock, check the own `invalidated`
//     flag) and total validation work is linear in the read-set instead of
//     NOrec's quadratic incremental scheme (§6.2);
//   * like RTC, the commit routine runs in a dedicated *commit server*
//     reached through a cache-aligned request array, removing all client
//     CAS/spinning on shared locks (§6.2.1, "V1").
//
// With Config::rinval_parallel_invalidation (the paper's V2), the
// invalidation scan runs in a second *invalidation server* concurrently with
// the commit server's write-back of the same transaction; the commit window
// (odd clock) closes only after both finish, which preserves InvalSTM's
// opacity argument while overlapping the two halves of the commit.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bloom_filter.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "stm/algs/invalstm.h"
#include "stm/runtime.h"

namespace otb::stm {

class RInvalClientTx;

struct RInvalGlobal final : AlgoGlobal {
  enum ReqState : int { kReady = 0, kPending = 1, kAborted = 2 };

  struct alignas(kCacheLine) Request {
    std::atomic<int> state{kReady};
    RInvalClientTx* tx = nullptr;
    // Spin-then-block handoff (see RTC): clients sleep after a short spin so
    // the servers get CPU time on oversubscribed hosts.
    std::mutex mu;
    std::condition_variable cv;

    void complete(int final_state) {
      {
        std::lock_guard<std::mutex> lk(mu);
        state.store(final_state, std::memory_order_release);
      }
      cv.notify_one();
    }

    int await_completion() {
      int s;
      for (int spin = 0; spin < 512; ++spin) {
        s = state.load(std::memory_order_acquire);
        if (s != kPending) return s;
        cpu_relax();
      }
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] {
        return (s = state.load(std::memory_order_acquire)) != kPending;
      });
      return s;
    }
  };

  SeqLock clock;
  Config cfg;
  unsigned nslots;
  std::unique_ptr<InvalRecord[]> records;
  std::unique_ptr<Request[]> requests;

  std::atomic<bool> stop{false};
  std::vector<std::thread> servers;

  // Commit→invalidation server handoff (V2).
  std::atomic<std::uint64_t> inval_job{0};   // sequence of the issued job
  std::atomic<std::uint64_t> inval_done{0};  // sequence of the finished job
  const TxFilter* inval_filter = nullptr;    // write filter of the job
  unsigned inval_requester = 0;              // slot to skip

  explicit RInvalGlobal(const Config& config)
      : cfg(config),
        nslots(config.max_threads),
        records(std::make_unique<InvalRecord[]>(config.max_threads)),
        requests(std::make_unique<Request[]>(config.max_threads)) {
    servers.emplace_back([this] { commit_server_loop(); });
    if (cfg.rinval_parallel_invalidation) {
      servers.emplace_back([this] { invalidation_server_loop(); });
    }
  }

  ~RInvalGlobal() override {
    stop.store(true, std::memory_order_release);
    for (auto& t : servers) t.join();
    for (unsigned i = 0; i < nslots; ++i) {
      int expected = kPending;
      if (requests[i].state.compare_exchange_strong(expected, kAborted,
                                                    std::memory_order_acq_rel)) {
        requests[i].cv.notify_one();
      }
    }
  }

  std::unique_ptr<Tx> make_tx(unsigned slot) override;

  /// Spins the commit server grants the invalidation server before helping
  /// with the scan itself (matters only when servers share a core).
  static constexpr int kHelpThreshold = 256;

  /// CM input: how many active transactions `write_filter` would doom.
  unsigned count_conflicting(const TxFilter& write_filter, unsigned requester) {
    unsigned doomed = 0;
    for (unsigned i = 0; i < nslots; ++i) {
      if (i == requester) continue;
      InvalRecord& other = records[i];
      if (!other.active.load(std::memory_order_acquire)) continue;
      std::lock_guard<SpinLock> lk(other.filter_lock);
      if (other.read_filter.intersects(write_filter)) ++doomed;
    }
    return doomed;
  }

  /// InvalSTM-style scan: doom every active transaction whose read filter
  /// intersects `write_filter`, except the committing slot.
  void invalidate_conflicting(const TxFilter& write_filter, unsigned requester) {
    for (unsigned i = 0; i < nslots; ++i) {
      if (i == requester) continue;
      InvalRecord& other = records[i];
      if (!other.active.load(std::memory_order_acquire)) continue;
      std::lock_guard<SpinLock> lk(other.filter_lock);
      if (other.read_filter.intersects(write_filter)) {
        other.invalidated.store(true, std::memory_order_release);
      }
    }
  }

 private:
  void commit_server_loop();
  void invalidation_server_loop();
};

class RInvalClientTx final : public Tx {
 public:
  RInvalClientTx(RInvalGlobal& global, unsigned slot)
      : global_(global), rec_(global.records[slot]), slot_(slot) {
    global_.requests[slot_].tx = this;
  }

  ~RInvalClientTx() override {
    rec_.active.store(false, std::memory_order_release);
    global_.requests[slot_].tx = nullptr;
  }

  void begin() override {
    writes_.clear();
    write_filter_.clear();
    {
      std::lock_guard<SpinLock> lk(rec_.filter_lock);
      rec_.read_filter.clear();
    }
    rec_.invalidated.store(false, std::memory_order_release);
    rec_.active.store(true, std::memory_order_release);
    if (global_.cfg.collect_timing) begin_ns_ = now_ns();
  }

  Word read_word(const TWord* addr) override {
    stats_.reads += 1;
    Word buffered;
    if (writes_.lookup(addr, &buffered)) return buffered;
    for (;;) {
      const std::uint64_t s1 = global_.clock.wait_even();
      const Word value = addr->load(std::memory_order_acquire);
      {
        std::lock_guard<SpinLock> lk(rec_.filter_lock);
        rec_.read_filter.add(addr);
      }
      if (global_.clock.load() != s1) {
        stats_.lock_spins += 1;
        continue;
      }
      if (rec_.invalidated.load(std::memory_order_acquire)) {
        throw TxAbort{metrics::AbortReason::kInvalidated};
      }
      return value;
    }
  }

  void write_word(TWord* addr, Word value) override {
    stats_.writes += 1;
    writes_.put(addr, value);
    write_filter_.add(addr);
  }

  void commit() override {
    const std::uint64_t t0 = global_.cfg.collect_timing ? now_ns() : 0;
    if (writes_.empty()) {
      if (rec_.invalidated.load(std::memory_order_acquire)) {
        throw TxAbort{metrics::AbortReason::kInvalidated};
      }
      rec_.active.store(false, std::memory_order_release);
      finish_attempt(t0);
      return;
    }
    auto& req = global_.requests[slot_];
    req.state.store(RInvalGlobal::kPending, std::memory_order_release);
    const int state = req.await_completion();
    req.state.store(RInvalGlobal::kReady, std::memory_order_release);
    rec_.active.store(false, std::memory_order_release);
    finish_attempt(t0);
    if (state == RInvalGlobal::kAborted) {
      // The server either saw us doomed or the CM refused the commit; both
      // trace back to an invalidation-scan decision.
      throw TxAbort{metrics::AbortReason::kInvalidated};
    }
  }

  void rollback() override {
    rec_.active.store(false, std::memory_order_release);
    if (global_.cfg.collect_timing && begin_ns_ != 0) {
      stats_.ns_total += now_ns() - begin_ns_;
      begin_ns_ = 0;
    }
  }

  // Server-side accessors.
  bool doomed() const { return rec_.invalidated.load(std::memory_order_acquire); }
  void server_publish() const { writes_.publish(); }
  const TxFilter& w_filter() const { return write_filter_; }

 private:
  void finish_attempt(std::uint64_t t0) {
    if (global_.cfg.collect_timing) {
      const std::uint64_t now = now_ns();
      stats_.ns_commit += now - t0;
      if (begin_ns_ != 0) {
        stats_.ns_total += now - begin_ns_;
        begin_ns_ = 0;
      }
    }
  }

  RInvalGlobal& global_;
  InvalRecord& rec_;
  unsigned slot_;
  RedoWriteSet writes_;
  TxFilter write_filter_;
  std::uint64_t begin_ns_ = 0;
};

inline std::unique_ptr<Tx> RInvalGlobal::make_tx(unsigned slot) {
  return std::make_unique<RInvalClientTx>(*this, slot);
}

// ---- servers ---------------------------------------------------------------

inline void RInvalGlobal::commit_server_loop() {
  if (cfg.pin_servers) pin_this_thread(0);
  while (!stop.load(std::memory_order_acquire)) {
    bool worked = false;
    for (unsigned i = 0; i < nslots; ++i) {
      Request& req = requests[i];
      if (req.state.load(std::memory_order_acquire) != kPending) continue;
      RInvalClientTx* tx = req.tx;
      if (tx == nullptr) continue;
      worked = true;
      if (tx->doomed()) {
        req.complete(kAborted);
        continue;
      }
      // Contention manager (§7.1.3): the server, which can see every
      // in-flight transaction, aborts the requester when its commit would
      // doom more readers than the policy allows.
      if (cfg.inval_cm_max_doomed > 0 &&
          count_conflicting(tx->w_filter(), i) > cfg.inval_cm_max_doomed) {
        req.complete(kAborted);
        continue;
      }
      clock.server_increment();  // odd: readers and committers are held off
      if (cfg.rinval_parallel_invalidation) {
        // V2: hand the scan to the invalidation server and write back
        // concurrently; the window closes when both are done.
        inval_filter = &tx->w_filter();
        inval_requester = i;
        inval_job.fetch_add(1, std::memory_order_release);
        tx->server_publish();
        const std::uint64_t job = inval_job.load(std::memory_order_acquire);
        int spins = 0;
        while (inval_done.load(std::memory_order_acquire) < job &&
               !stop.load(std::memory_order_acquire)) {
          if (++spins > kHelpThreshold) {
            // Help-first fallback: when the invalidation server is not
            // being scheduled (oversubscribed hosts), do the scan here.
            // Double invalidation is idempotent and only ever conservative,
            // so racing the server on the same job is safe.
            invalidate_conflicting(tx->w_filter(), i);
            break;
          }
          cpu_relax();
        }
      } else {
        // V1: this server does both halves sequentially.
        tx->server_publish();
        invalidate_conflicting(tx->w_filter(), i);
      }
      clock.server_increment();  // even
      req.complete(kReady);
    }
    if (!worked) std::this_thread::yield();  // oversubscribed hosts
  }
}

inline void RInvalGlobal::invalidation_server_loop() {
  if (cfg.pin_servers) pin_this_thread(1);
  std::uint64_t done = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const std::uint64_t job = inval_job.load(std::memory_order_acquire);
    if (job == done) {
      std::this_thread::yield();
      continue;
    }
    invalidate_conflicting(*inval_filter, inval_requester);
    done = job;
    inval_done.store(done, std::memory_order_release);
  }
}

}  // namespace otb::stm
