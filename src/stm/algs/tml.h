// TML (Transactional Mutex Lock, Dalessandro et al. [66]) — the minimal
// global-seqlock STM the paper repeatedly references as the coarse extreme
// of the locking-granularity spectrum.  Readers validate the timestamp
// after every read; the first write CASes the lock and the transaction
// becomes the irrevocable single writer (eager in-place stores, no logs).
#pragma once

#include "common/spinlock.h"
#include "stm/runtime.h"

namespace otb::stm {

struct TmlGlobal final : AlgoGlobal {
  SeqLock clock;

  explicit TmlGlobal(const Config&) {}

  std::unique_ptr<Tx> make_tx(unsigned) override;
};

class TmlTx final : public Tx {
 public:
  explicit TmlTx(TmlGlobal& global) : global_(global) {}

  void begin() override {
    writer_ = false;
    snapshot_ = global_.clock.wait_even();
  }

  Word read_word(const TWord* addr) override {
    stats_.reads += 1;
    const Word value = addr->load(std::memory_order_acquire);
    if (!writer_ && global_.clock.load() != snapshot_) {
      throw TxAbort{metrics::AbortReason::kValidation};
    }
    return value;
  }

  void write_word(TWord* addr, Word value) override {
    stats_.writes += 1;
    if (!writer_) {
      if (!global_.clock.try_acquire(snapshot_)) {
        stats_.lock_cas_failures += 1;
        throw TxAbort{metrics::AbortReason::kLockFail};
      }
      stats_.lock_acquisitions += 1;
      writer_ = true;  // irrevocable from here on
    }
    addr->store(value, std::memory_order_release);
  }

  void commit() override {
    if (writer_) {
      global_.clock.release();
      writer_ = false;
    }
  }

  void rollback() override {
    // A TML writer never aborts through the algorithm (writes are eager and
    // unlogged); releasing here only covers user-thrown aborts, whose eager
    // writes TML by design cannot undo.
    if (writer_) {
      global_.clock.release();
      writer_ = false;
    }
  }

 private:
  TmlGlobal& global_;
  std::uint64_t snapshot_ = 0;
  bool writer_ = false;
};

inline std::unique_ptr<Tx> TmlGlobal::make_tx(unsigned) {
  return std::make_unique<TmlTx>(*this);
}

}  // namespace otb::stm
