// TL2 (Dice, Shalev, Shavit) — §4.2.3's fine-grained baseline.
//
// A global version clock plus a hashed table of ownership records
// (versioned locks).  Reads sample the covering orec before and after the
// load; commit locks the write orecs, takes a write version, re-validates
// the read orecs, publishes, and releases the orecs stamped with the write
// version.  Mixin over its base class for the same reason as NOrec (the
// OTB-TL2 integration context).
#pragma once

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "stm/read_write_sets.h"
#include "stm/runtime.h"

namespace otb::stm {

struct Tl2Global final : AlgoGlobal {
  static constexpr std::size_t kOrecCount = 1 << 20;

  std::atomic<std::uint64_t> clock{0};
  std::unique_ptr<VersionedLock[]> orecs =
      std::make_unique<VersionedLock[]>(kOrecCount);
  bool collect_timing = false;

  explicit Tl2Global(const Config& cfg) : collect_timing(cfg.collect_timing) {}

  VersionedLock& orec_for(const TWord* addr) {
    return orecs[hash_addr(addr) & (kOrecCount - 1)];
  }

  std::unique_ptr<Tx> make_tx(unsigned) override;
};

template <typename Base = Tx>
class Tl2TxT : public Base {
 public:
  explicit Tl2TxT(Tl2Global& global) : global_(global) {}

  void begin() override {
    reads_.clear();
    writes_.clear();
    rv_ = global_.clock.load(std::memory_order_acquire);
    if (global_.collect_timing) begin_ns_ = now_ns();
  }

  Word read_word(const TWord* addr) override {
    this->stats_.reads += 1;
    Word buffered;
    if (writes_.lookup(addr, &buffered)) return buffered;
    VersionedLock& orec = global_.orec_for(addr);
    const std::uint64_t pre = orec.load();
    const Word value = addr->load(std::memory_order_acquire);
    const std::uint64_t post = orec.load();
    if (VersionedLock::is_locked(pre) || pre != post ||
        VersionedLock::version_of(pre) > rv_) {
      throw TxAbort{metrics::AbortReason::kValidation};
    }
    reads_.push_back(&orec);
    return value;
  }

  void write_word(TWord* addr, Word value) override {
    this->stats_.writes += 1;
    writes_.put(addr, value);
  }

  void commit() override {
    const std::uint64_t t0 = global_.collect_timing ? now_ns() : 0;
    if (writes_.empty()) {  // read-only: per-read validation suffices
      finish_attempt(t0);
      return;
    }
    lock_write_orecs();
    this->stats_.lock_acquisitions += locked_.size();
    const std::uint64_t wv = global_.clock.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (wv != rv_ + 1 && !validate_reads()) {
      release_locked(/*stamp=*/false, 0);
      throw TxAbort{metrics::AbortReason::kValidation};
    }
    writes_.publish();
    release_locked(/*stamp=*/true, wv);
    finish_attempt(t0);
  }

  void rollback() override {
    release_locked(/*stamp=*/false, 0);
    if (global_.collect_timing && begin_ns_ != 0) {
      this->stats_.ns_total += now_ns() - begin_ns_;
      begin_ns_ = 0;
    }
  }

 protected:
  void lock_write_orecs() {
    for (const auto& e : writes_.entries()) {
      VersionedLock& orec = global_.orec_for(e.addr);
      if (holds(&orec)) continue;
      const std::uint64_t w = orec.load();
      if (VersionedLock::is_locked(w) || VersionedLock::version_of(w) > rv_ ||
          !orec.try_lock_from(w)) {
        this->stats_.lock_cas_failures += 1;
        release_locked(/*stamp=*/false, 0);
        throw TxAbort{metrics::AbortReason::kLockFail};
      }
      locked_.push_back(&orec);
    }
  }

  bool validate_reads() {
    this->stats_.validations += 1;
    const std::uint64_t t0 = global_.collect_timing ? now_ns() : 0;
    bool ok = true;
    for (VersionedLock* orec : reads_) {
      const std::uint64_t w = orec->load();
      if (VersionedLock::version_of(w) > rv_ ||
          (VersionedLock::is_locked(w) && !holds(orec))) {
        ok = false;
        break;
      }
    }
    if (global_.collect_timing) this->stats_.ns_validation += now_ns() - t0;
    return ok;
  }

  void finish_attempt(std::uint64_t commit_t0) {
    if (global_.collect_timing) {
      const std::uint64_t now = now_ns();
      this->stats_.ns_commit += now - commit_t0;
      if (begin_ns_ != 0) {
        this->stats_.ns_total += now - begin_ns_;
        begin_ns_ = 0;
      }
    }
  }

  bool holds(const VersionedLock* orec) const {
    return std::find(locked_.begin(), locked_.end(), orec) != locked_.end();
  }

  void release_locked(bool stamp, std::uint64_t wv) {
    for (VersionedLock* orec : locked_) {
      if (stamp) {
        orec->unlock_with_version(wv);
      } else {
        orec->unlock_same_version();
      }
    }
    locked_.clear();
  }

  Tl2Global& global_;
  std::vector<VersionedLock*> reads_;
  RedoWriteSet writes_;
  std::vector<VersionedLock*> locked_;
  std::uint64_t rv_ = 0;
  std::uint64_t begin_ns_ = 0;
};

using Tl2Tx = Tl2TxT<Tx>;

inline std::unique_ptr<Tx> Tl2Global::make_tx(unsigned) {
  return std::make_unique<Tl2Tx>(*this);
}

}  // namespace otb::stm
