// TinySTM-style eager orec algorithm (Felber, Fetzer, Riegel —
// write-through variant): encounter-time locking on a hashed orec table, an
// undo log for in-place writes, and time-based read validation against a
// global version clock with snapshot extension.
//
// §1.1.1 places it on the design spectrum the dissertation analyses
// ("fine-grained using ownership records as in TL2 and TinySTM"); it is the
// eager counterpart to our lazy TL2 and completes the framework's coverage
// of that axis.
#pragma once

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/spinlock.h"
#include "stm/runtime.h"

namespace otb::stm {

struct TinyStmGlobal final : AlgoGlobal {
  static constexpr std::size_t kOrecCount = 1 << 20;

  std::atomic<std::uint64_t> clock{0};
  std::unique_ptr<VersionedLock[]> orecs =
      std::make_unique<VersionedLock[]>(kOrecCount);

  explicit TinyStmGlobal(const Config&) {}

  VersionedLock& orec_for(const TWord* addr) {
    return orecs[hash_addr(addr) & (kOrecCount - 1)];
  }

  std::unique_ptr<Tx> make_tx(unsigned) override;
};

class TinyStmTx final : public Tx {
 public:
  explicit TinyStmTx(TinyStmGlobal& global) : global_(global) {}

  void begin() override {
    reads_.clear();
    undo_.clear();
    locked_.clear();
    start_ = global_.clock.load(std::memory_order_acquire);
  }

  Word read_word(const TWord* addr) override {
    stats_.reads += 1;
    VersionedLock& orec = global_.orec_for(addr);
    for (;;) {
      const std::uint64_t pre = orec.load();
      if (VersionedLock::is_locked(pre)) {
        if (holds(&orec)) return addr->load(std::memory_order_relaxed);
        throw TxAbort{metrics::AbortReason::kLockFail};  // owned by another writer
      }
      const Word value = addr->load(std::memory_order_acquire);
      if (orec.load() != pre) continue;  // raced a writer; resample
      if (VersionedLock::version_of(pre) > start_ && !extend()) {
        throw TxAbort{metrics::AbortReason::kValidation};
      }
      reads_.push_back(&orec);
      return value;
    }
  }

  void write_word(TWord* addr, Word value) override {
    stats_.writes += 1;
    VersionedLock& orec = global_.orec_for(addr);
    if (!holds(&orec)) {
      const std::uint64_t w = orec.load();
      if (VersionedLock::is_locked(w) ||
          VersionedLock::version_of(w) > start_ || !orec.try_lock_from(w)) {
        stats_.lock_cas_failures += 1;
        throw TxAbort{metrics::AbortReason::kLockFail};
      }
      stats_.lock_acquisitions += 1;
      locked_.push_back(&orec);
    }
    // Eager write-through with undo logging.
    undo_.push_back({addr, addr->load(std::memory_order_relaxed)});
    addr->store(value, std::memory_order_release);
  }

  void commit() override {
    if (locked_.empty()) return;  // read-only
    const std::uint64_t wv =
        global_.clock.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (wv != start_ + 1 && !validate_reads()) {
      undo_writes();
      release_locked(/*stamp=*/false, 0);
      throw TxAbort{metrics::AbortReason::kValidation};
    }
    undo_.clear();
    release_locked(/*stamp=*/true, wv);
  }

  void rollback() override {
    undo_writes();
    release_locked(/*stamp=*/false, 0);
  }

 private:
  struct UndoEntry {
    TWord* addr;
    Word old_value;
  };

  /// Snapshot extension: move `start_` forward when every read orec is
  /// still clean at the current clock.
  bool extend() {
    const std::uint64_t now = global_.clock.load(std::memory_order_acquire);
    if (!validate_reads()) return false;
    start_ = now;
    return true;
  }

  bool validate_reads() {
    stats_.validations += 1;
    for (VersionedLock* orec : reads_) {
      const std::uint64_t w = orec->load();
      if (VersionedLock::is_locked(w) && !holds(orec)) return false;
      if (!VersionedLock::is_locked(w) && VersionedLock::version_of(w) > start_) {
        return false;
      }
    }
    return true;
  }

  void undo_writes() {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      it->addr->store(it->old_value, std::memory_order_release);
    }
    undo_.clear();
  }

  bool holds(const VersionedLock* orec) const {
    return std::find(locked_.begin(), locked_.end(), orec) != locked_.end();
  }

  void release_locked(bool stamp, std::uint64_t wv) {
    for (VersionedLock* orec : locked_) {
      if (stamp) {
        orec->unlock_with_version(wv);
      } else {
        orec->unlock_same_version();
      }
    }
    locked_.clear();
  }

  TinyStmGlobal& global_;
  std::vector<VersionedLock*> reads_;
  std::vector<UndoEntry> undo_;
  std::vector<VersionedLock*> locked_;
  std::uint64_t start_ = 0;
};

inline std::unique_ptr<Tx> TinyStmGlobal::make_tx(unsigned) {
  return std::make_unique<TinyStmTx>(*this);
}

}  // namespace otb::stm
