// NOrec (Dalessandro, Spear, Scott) — §2.1.1.
//
// One global timestamped lock; lazy redo-log writes; *value-based*
// incremental validation: after any read that observes a moved timestamp,
// the whole read-set is re-checked against memory, making validation cost
// quadratic in the read-set size in the worst case (the overhead RInval
// attacks).  Commit CASes the timestamp odd, publishes, then bumps it even.
//
// The context is a mixin over its base class so that the Chapter-4
// integration layer can instantiate it over a joint (stm::Tx + OTB TxHost)
// base; `NOrecTx` is the plain instantiation.  The contexts also maintain
// read/write bloom filters when requested — RTC reuses this context family
// for its clients' dependency signatures.
#pragma once

#include "common/bloom_filter.h"
#include "common/platform.h"
#include "common/spinlock.h"
#include "stm/read_write_sets.h"
#include "stm/runtime.h"

namespace otb::stm {

struct NOrecGlobal final : AlgoGlobal {
  SeqLock clock;
  bool collect_timing = false;

  explicit NOrecGlobal(const Config& cfg) : collect_timing(cfg.collect_timing) {}

  std::unique_ptr<Tx> make_tx(unsigned slot) override;
};

template <typename Base = Tx>
class NOrecTxT : public Base {
 public:
  explicit NOrecTxT(NOrecGlobal& global) : global_(global) {}

  void begin() override {
    reads_.clear();
    writes_.clear();
    read_filter_.clear();
    write_filter_.clear();
    snapshot_ = global_.clock.wait_even();
    if (global_.collect_timing) begin_ns_ = now_ns();
  }

  Word read_word(const TWord* addr) override {
    this->stats_.reads += 1;
    Word buffered;
    if (writes_.lookup(addr, &buffered)) return buffered;
    Word value = addr->load(std::memory_order_acquire);
    // Re-validate until the value provably belongs to our snapshot.
    while (global_.clock.load() != snapshot_) {
      snapshot_ = validate();
      value = addr->load(std::memory_order_acquire);
    }
    reads_.record(addr, value);
    if (track_filters_) read_filter_.add(addr);
    return value;
  }

  void write_word(TWord* addr, Word value) override {
    this->stats_.writes += 1;
    writes_.put(addr, value);
    if (track_filters_) {
      write_filter_.add(addr);
      read_filter_.add(addr);  // read_filter_ doubles as the RW filter (§5.1.1)
    }
  }

  void commit() override {
    const std::uint64_t t0 = global_.collect_timing ? now_ns() : 0;
    if (!writes_.empty()) {
      while (!global_.clock.try_acquire(snapshot_)) {
        this->stats_.lock_cas_failures += 1;
        snapshot_ = validate();
      }
      this->stats_.lock_acquisitions += 1;
      writes_.publish();
      global_.clock.release();
    }
    finish_attempt(t0);
  }

  void rollback() override {
    if (global_.collect_timing && begin_ns_ != 0) {
      this->stats_.ns_total += now_ns() - begin_ns_;
      begin_ns_ = 0;
    }
  }

  const ValueReadSet& read_set() const { return reads_; }
  const RedoWriteSet& write_set() const { return writes_; }

 protected:
  /// NOrec validation: spin to an even timestamp, compare every logged value
  /// with memory, re-check the timestamp.  Returns the validated snapshot.
  /// Virtual so the OTB-NOrec context can fold semantic validation in.
  virtual std::uint64_t validate() {
    this->stats_.validations += 1;
    const std::uint64_t t0 = global_.collect_timing ? now_ns() : 0;
    Backoff backoff;
    for (;;) {
      const std::uint64_t t = global_.clock.load();
      if ((t & 1) != 0) {
        this->stats_.lock_spins += 1;
        backoff.pause();
        continue;
      }
      if (!reads_.values_match()) {
        if (global_.collect_timing) this->stats_.ns_validation += now_ns() - t0;
        throw TxAbort{metrics::AbortReason::kValidation};
      }
      if (global_.clock.load() == t) {
        if (global_.collect_timing) this->stats_.ns_validation += now_ns() - t0;
        return t;
      }
    }
  }

  void finish_attempt(std::uint64_t commit_t0) {
    if (global_.collect_timing) {
      const std::uint64_t now = now_ns();
      this->stats_.ns_commit += now - commit_t0;
      if (begin_ns_ != 0) {
        this->stats_.ns_total += now - begin_ns_;
        begin_ns_ = 0;
      }
    }
  }

  NOrecGlobal& global_;
  ValueReadSet reads_;
  RedoWriteSet writes_;
  TxFilter read_filter_;
  TxFilter write_filter_;
  std::uint64_t snapshot_ = 0;
  std::uint64_t begin_ns_ = 0;
  bool track_filters_ = false;  // enabled by the RTC client subclass
};

using NOrecTx = NOrecTxT<Tx>;

inline std::unique_ptr<Tx> NOrecGlobal::make_tx(unsigned) {
  return std::make_unique<NOrecTx>(*this);
}

}  // namespace otb::stm
