// CGL — coarse-grained global locking "STM": every transaction runs under
// one mutex.  §2.1.3: "STM runtimes like RSTM use such a solution to
// calculate the single-thread overhead of other algorithms, and to be used
// in special cases or in adaptive STM systems."  It is the floor baseline
// of the micro-benches and the irrevocable fallback of the adaptive
// runtime.
#pragma once

#include "common/spinlock.h"
#include "stm/runtime.h"

namespace otb::stm {

struct CglGlobal final : AlgoGlobal {
  SpinLock lock;

  explicit CglGlobal(const Config&) {}

  std::unique_ptr<Tx> make_tx(unsigned) override;
};

class CglTx final : public Tx {
 public:
  explicit CglTx(CglGlobal& global) : global_(global) {}

  void begin() override {
    global_.lock.lock();
    held_ = true;
  }

  Word read_word(const TWord* addr) override {
    stats_.reads += 1;
    return addr->load(std::memory_order_relaxed);  // we own the world
  }

  void write_word(TWord* addr, Word value) override {
    stats_.writes += 1;
    addr->store(value, std::memory_order_relaxed);
  }

  void commit() override { release(); }

  /// CGL transactions are irrevocable; rollback only releases the lock
  /// after a user-thrown abort (eager writes stay, as with any mutex).
  void rollback() override { release(); }

 private:
  void release() {
    if (held_) {
      global_.lock.unlock();
      held_ = false;
    }
  }

  CglGlobal& global_;
  bool held_ = false;
};

inline std::unique_ptr<Tx> CglGlobal::make_tx(unsigned) {
  return std::make_unique<CglTx>(*this);
}

}  // namespace otb::stm
