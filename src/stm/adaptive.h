// Adaptive STM runtime — the §5.4.1 integration story: "an STM runtime can
// heuristically detect these cases of RTC degradation by comparing the
// sizes of read-sets and write-sets, and switching at run-time from/to
// another appropriate algorithm … in a 'stop-the-world' manner, in which
// new transactions are blocked from starting until the current in-flight
// transactions commit and then the switch takes place."
//
// Implementation: a reader/writer gate.  Every transaction holds the gate
// shared for its whole retry loop; switch_to() takes it exclusively, so it
// observes a quiescent moment, tears down the old algorithm's global state
// (including RTC/RInval server threads) and installs the new one.  Thread
// contexts are generation-stamped and lazily rebuilt after a switch.
//
// The built-in policy mirrors the paper's heuristic: long traversals with
// tiny write-sets (linked-list-like, commit share ≈ 0) favour NOrec; short
// transactions with meaningful write-sets (commit-bound) favour RTC.
#pragma once

#include <memory>
#include <shared_mutex>

#include "stm/stm.h"

namespace otb::stm {

class AdaptiveThread;

class AdaptiveRuntime {
 public:
  explicit AdaptiveRuntime(AlgoKind initial, Config config = {})
      : config_(config),
        runtime_(std::make_shared<Runtime>(initial, config)) {}

  AlgoKind kind() const {
    std::shared_lock lk(gate_);
    return runtime_->kind();
  }

  /// Stop-the-world switch.  No-op when already running `kind`.
  void switch_to(AlgoKind kind) {
    std::unique_lock lk(gate_);
    if (runtime_->kind() == kind) return;
    // The exclusive gate guarantees quiescence (no in-flight transaction).
    // The old runtime is kept alive by the threads still holding handles to
    // it and dies when the last of them refreshes.
    runtime_ = std::make_shared<Runtime>(kind, config_);
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// §5.4.1 heuristic, fed with a thread's observed averages.  Returns the
  /// algorithm the workload shape calls for.
  AlgoKind recommend(double avg_reads, double avg_writes) const {
    // Commit work scales with the write-set; traversal work with the
    // read-set.  A tiny write share means remote commit cannot pay for the
    // request round-trip (the paper's linked-list case).
    if (avg_writes < 1.0 || avg_reads > 32.0 * avg_writes) {
      return AlgoKind::kNOrec;
    }
    return AlgoKind::kRTC;
  }

  /// Re-evaluate the policy against a thread's statistics and switch if the
  /// recommendation differs.  Returns true when a switch happened.
  bool maybe_adapt(const TxStats& stats) {
    if (stats.commits == 0) return false;
    const double reads = double(stats.reads) / double(stats.commits);
    const double writes = double(stats.writes) / double(stats.commits);
    const AlgoKind want = recommend(reads, writes);
    if (want == kind()) return false;
    switch_to(want);
    return true;
  }

  template <typename Fn>
  metrics::AttemptReport atomically(AdaptiveThread& thread, Fn&& fn);

 private:
  friend class AdaptiveThread;

  Config config_;
  mutable std::shared_mutex gate_;
  std::shared_ptr<Runtime> runtime_;
  std::atomic<std::uint64_t> generation_{0};
};

/// Per-thread handle; rebuilds its underlying TxThread after each switch.
class AdaptiveThread {
 public:
  explicit AdaptiveThread(AdaptiveRuntime& rt) : rt_(rt) {}

  /// Cumulative statistics across generations.
  const TxStats& stats() const { return accumulated_; }

 private:
  friend class AdaptiveRuntime;

  /// Called under the shared gate.
  TxThread& refresh() {
    const std::uint64_t gen = rt_.generation_.load(std::memory_order_acquire);
    if (inner_ == nullptr || gen != generation_) {
      inner_.reset();  // release the slot on the runtime it belongs to
      bound_ = rt_.runtime_;  // pin the current runtime's lifetime
      inner_ = std::make_unique<TxThread>(*bound_);
      generation_ = gen;
      last_snapshot_ = TxStats{};
    }
    return *inner_;
  }

  void harvest() {
    // Fold the delta since the last harvest into the running total.
    const TxStats now = inner_->tx().stats();
    TxStats delta = now;
    delta.commits -= last_snapshot_.commits;
    delta.aborts -= last_snapshot_.aborts;
    delta.reads -= last_snapshot_.reads;
    delta.writes -= last_snapshot_.writes;
    delta.validations -= last_snapshot_.validations;
    delta.lock_cas_failures -= last_snapshot_.lock_cas_failures;
    delta.lock_acquisitions -= last_snapshot_.lock_acquisitions;
    delta.lock_spins -= last_snapshot_.lock_spins;
    delta.ns_validation -= last_snapshot_.ns_validation;
    delta.ns_commit -= last_snapshot_.ns_commit;
    delta.ns_total -= last_snapshot_.ns_total;
    accumulated_ += delta;
    last_snapshot_ = now;
  }

  AdaptiveRuntime& rt_;
  std::shared_ptr<Runtime> bound_;     // keeps the owning runtime alive
  std::unique_ptr<TxThread> inner_;    // destroyed before bound_
  std::uint64_t generation_ = ~0ull;
  TxStats last_snapshot_{};
  TxStats accumulated_{};
};

template <typename Fn>
metrics::AttemptReport AdaptiveRuntime::atomically(AdaptiveThread& thread, Fn&& fn) {
  std::shared_lock lk(gate_);
  TxThread& th = thread.refresh();
  const metrics::AttemptReport report =
      runtime_->atomically(th, std::forward<Fn>(fn));
  thread.harvest();
  return report;
}

}  // namespace otb::stm
