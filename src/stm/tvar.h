// Transactional memory words.
//
// Every STM algorithm in this framework is word-based: it speculates over
// 64-bit `TWord`s.  `TVar<T>` is the typed veneer (T must fit a word and be
// trivially copyable) used by application code; `TArray<T>` is a fixed-size
// vector of TVars for bulk data (mini-STAMP, STM data structures).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace otb::stm {

using Word = std::uint64_t;
using TWord = std::atomic<Word>;

template <typename T>
concept WordSized =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word);

template <typename T>
Word to_word(T value) {
  Word w = 0;
  __builtin_memcpy(&w, &value, sizeof(T));
  return w;
}

template <typename T>
T from_word(Word w) {
  T value;
  __builtin_memcpy(&value, &w, sizeof(T));
  return value;
}

/// A transactionally managed variable.  Direct (non-transactional) access is
/// provided for initialisation and quiescent verification only.
template <WordSized T>
class TVar {
 public:
  TVar() = default;
  explicit TVar(T initial) : word_(to_word(initial)) {}

  TWord& word() { return word_; }
  const TWord& word() const { return word_; }

  /// Non-transactional load (setup / quiescent checks).
  T load_direct() const { return from_word<T>(word_.load(std::memory_order_acquire)); }

  /// Non-transactional store (setup only).
  void store_direct(T value) {
    word_.store(to_word(value), std::memory_order_release);
  }

 private:
  TWord word_{0};
};

/// Fixed-size array of transactional words.
template <WordSized T>
class TArray {
 public:
  explicit TArray(std::size_t n, T initial = T{}) : vars_(n) {
    for (auto& v : vars_) v.store_direct(initial);
  }

  TVar<T>& operator[](std::size_t i) { return vars_[i]; }
  const TVar<T>& operator[](std::size_t i) const { return vars_[i]; }
  std::size_t size() const { return vars_.size(); }

 private:
  std::vector<TVar<T>> vars_;
};

}  // namespace otb::stm
