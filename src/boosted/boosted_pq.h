// Pessimistically boosted priority queue (§3.2.2, Algorithm 4): the
// baseline for Figs 3.6–3.7.
//
// A global abstract readers/writer lock sits on top of a concurrent heap of
// *holder* cells: add() takes the read lock (adds commute with adds),
// min()/removeMin() take the write lock (they commute with nothing).  The
// inverse of add is not supported natively by a priority queue, so — as in
// the paper — a rolled-back add marks its holder `deleted` and removeMin
// polls past deleted holders, "adding greater overhead to the boosted
// priority queue".
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "boosted/boosted_runtime.h"
#include "common/spinlock.h"

namespace otb::boosted {

/// Abstract readers/writer lock with bounded upgrade (a reader that needs to
/// write aborts if it cannot become the sole owner — preempts the classic
/// double-upgrade deadlock).
class AbstractRwLock {
 public:
  bool acquire_read() {
    Backoff bo;
    for (int attempts = 0; attempts < kAttempts; ++attempts) {
      if (!writer_.load(std::memory_order_acquire)) {
        readers_.fetch_add(1, std::memory_order_acq_rel);
        if (!writer_.load(std::memory_order_acquire)) return true;
        readers_.fetch_sub(1, std::memory_order_acq_rel);
      }
      bo.pause();
    }
    return false;
  }

  void release_read() { readers_.fetch_sub(1, std::memory_order_acq_rel); }

  /// `held_readers` = how many read acquisitions this transaction already
  /// holds (they stay counted; the writer just waits for the others).
  bool acquire_write(unsigned held_readers) {
    bool expected = false;
    Backoff bo;
    int attempts = 0;
    while (!writer_.compare_exchange_weak(expected, true, std::memory_order_acq_rel)) {
      expected = false;
      if (++attempts > kAttempts) return false;
      bo.pause();
    }
    attempts = 0;
    while (readers_.load(std::memory_order_acquire) > held_readers) {
      if (++attempts > kAttempts) {
        writer_.store(false, std::memory_order_release);
        return false;
      }
      bo.pause();
    }
    return true;
  }

  void release_write() { writer_.store(false, std::memory_order_release); }

 private:
  static constexpr int kAttempts = 1 << 14;
  std::atomic<unsigned> readers_{0};
  std::atomic<bool> writer_{false};
};

class BoostedHeapPQ {
 public:
  using Key = std::int64_t;

  void add(BoostedTx& tx, Key key) {
    acquire_read(tx);
    Holder* holder = new Holder{key, {false}};
    {
      std::lock_guard<SpinLock> lk(heap_lock_);
      heap_add(holder);
    }
    tx.log_undo([holder] {
      holder->deleted.store(true, std::memory_order_release);
    });
  }

  bool remove_min(BoostedTx& tx, Key* out) {
    acquire_write(tx);
    std::lock_guard<SpinLock> lk(heap_lock_);
    // Poll past holders whose add was rolled back (Algorithm 4 lines 8–10).
    while (!heap_.empty()) {
      Holder* top = heap_pop();
      if (top->deleted.load(std::memory_order_acquire)) {
        delete top;
        continue;
      }
      const Key key = top->key;
      delete top;
      *out = key;
      tx.log_undo([this, key] {
        std::lock_guard<SpinLock> relk(heap_lock_);
        heap_add(new Holder{key, {false}});
      });
      return true;
    }
    return false;
  }

  bool min(BoostedTx& tx, Key* out) {
    acquire_write(tx);  // min does not commute with removeMin either
    std::lock_guard<SpinLock> lk(heap_lock_);
    while (!heap_.empty()) {
      Holder* top = heap_.front();
      if (top->deleted.load(std::memory_order_acquire)) {
        heap_pop();
        delete top;
        continue;
      }
      *out = top->key;
      return true;
    }
    return false;
  }

  void add_seq(Key key) { heap_add(new Holder{key, {false}}); }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const Holder* h : heap_) {
      if (!h->deleted.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  ~BoostedHeapPQ() {
    for (Holder* h : heap_) delete h;
  }

 private:
  struct Holder {
    Key key;
    std::atomic<bool> deleted;
  };

  /// Per-transaction lock bookkeeping: one thread runs one transaction at a
  /// time, so thread-local state keyed by queue instance suffices (the
  /// counters always return to zero when the transaction ends).
  struct TxLockState {
    unsigned reads_held = 0;
    bool write_held = false;
  };

  TxLockState& state() const {
    thread_local std::unordered_map<const BoostedHeapPQ*, TxLockState> per_queue;
    return per_queue[this];
  }

  void acquire_read(BoostedTx& tx) {
    TxLockState& s = state();
    if (s.write_held) return;  // write lock dominates
    if (!rw_.acquire_read()) throw TxAbort{metrics::AbortReason::kLockFail};
    ++s.reads_held;
    tx.log_release([this] {
      TxLockState& st = state();
      if (st.reads_held > 0) {
        rw_.release_read();
        --st.reads_held;
      }
    });
  }

  void acquire_write(BoostedTx& tx) {
    TxLockState& s = state();
    if (s.write_held) return;
    if (!rw_.acquire_write(s.reads_held)) throw TxAbort{metrics::AbortReason::kLockFail};
    s.write_held = true;
    tx.log_release([this] {
      TxLockState& st = state();
      if (st.write_held) {
        rw_.release_write();
        st.write_held = false;
      }
    });
  }

  void heap_add(Holder* h) {
    heap_.push_back(h);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent]->key <= heap_[i]->key) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  Holder* heap_pop() {
    Holder* top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l]->key < heap_[smallest]->key) smallest = l;
      if (r < n && heap_[r]->key < heap_[smallest]->key) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
    return top;
  }

  AbstractRwLock rw_;
  mutable SpinLock heap_lock_;
  std::vector<Holder*> heap_;
};

}  // namespace otb::boosted
