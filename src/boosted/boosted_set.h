// Pessimistically boosted set (Herlihy & Koskinen, §2.3 / §3.2.1): the
// baseline OTB is evaluated against in Figs 3.3–3.5.
//
// The underlying concurrent set (lazy list or lazy skip list) is used as a
// **black box**.  A striped table of reentrant abstract locks keyed by the
// operation's key provides semantic two-phase locking — commutative
// operations (different keys, or same-key queries) proceed in parallel,
// non-commutative ones serialize.  Writes execute eagerly and push their
// inverse onto the transaction's semantic undo-log.  Note the paper's
// criticism reproduced faithfully: even contains() must take the abstract
// lock, making reads blocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "boosted/boosted_runtime.h"
#include "common/hash.h"
#include "common/platform.h"
#include "common/spinlock.h"

namespace otb::boosted {

/// Reentrant owner-recording abstract lock (one stripe of the lock table).
class AbstractLock {
 public:
  /// Bounded acquisition; false on timeout (caller aborts).  `owner` is any
  /// non-zero id stable for the transaction attempt.
  bool acquire(std::uint64_t owner) {
    if (owner_.load(std::memory_order_acquire) == owner) {
      ++depth_;
      return true;
    }
    Backoff bo;
    for (int attempts = 0; attempts < kAttempts; ++attempts) {
      std::uint64_t expected = 0;
      if (owner_.compare_exchange_weak(expected, owner, std::memory_order_acq_rel)) {
        depth_ = 1;
        return true;
      }
      bo.pause();
    }
    return false;
  }

  void release(std::uint64_t owner) {
    if (owner_.load(std::memory_order_acquire) != owner) return;
    if (--depth_ == 0) owner_.store(0, std::memory_order_release);
  }

 private:
  static constexpr int kAttempts = 1 << 10;
  std::atomic<std::uint64_t> owner_{0};
  unsigned depth_ = 0;  // only the owner touches it
};

/// Unique non-zero id for the current thread (abstract-lock ownership).
inline std::uint64_t self_id() {
  thread_local const int anchor = 0;
  return reinterpret_cast<std::uintptr_t>(&anchor);
}

/// Boosted set over any concurrent set exposing add/remove/contains(Key).
template <typename Underlying>
class BoostedSet {
 public:
  using Key = std::int64_t;
  static constexpr std::size_t kStripes = 1 << 14;

  bool add(BoostedTx& tx, Key key) {
    lock_key(tx, key);
    const bool ok = under_.add(key);
    if (ok) {
      tx.log_undo([this, key] { under_.remove(key); });
    }
    return ok;
  }

  bool remove(BoostedTx& tx, Key key) {
    lock_key(tx, key);
    const bool ok = under_.remove(key);
    if (ok) {
      tx.log_undo([this, key] { under_.add(key); });
    }
    return ok;
  }

  bool contains(BoostedTx& tx, Key key) {
    lock_key(tx, key);  // pessimistic boosting locks even for queries
    return under_.contains(key);
  }

  Underlying& underlying() { return under_; }
  std::size_t size_unsafe() const { return under_.size_unsafe(); }

 private:
  void lock_key(BoostedTx& tx, Key key) {
    AbstractLock& lock = stripes_[mix64(static_cast<std::uint64_t>(key)) % kStripes];
    const std::uint64_t me = self_id();
    if (!lock.acquire(me)) throw TxAbort{metrics::AbortReason::kLockFail};
    tx.log_release([&lock, me] { lock.release(me); });
  }

  Underlying under_;
  std::unique_ptr<AbstractLock[]> stripes_ = std::make_unique<AbstractLock[]>(kStripes);
};

}  // namespace otb::boosted
