// Minimal transaction runtime for Herlihy–Koskinen *pessimistic* boosting
// (§2.3): eager execution on an underlying linearizable object, abstract
// locks held in two-phase style until commit, and a semantic undo-log
// replayed in reverse on abort.
//
// Aborts only ever come from failed abstract-lock acquisition (bounded
// try-lock to preempt deadlock), exactly as the paper notes when comparing
// abort sources against OTB.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/spinlock.h"
#include "common/tx_abort.h"

namespace otb::boosted {

/// One pessimistic-boosting transaction attempt: the undo log plus the
/// release actions for every abstract lock acquired so far.
class BoostedTx {
 public:
  using Action = std::function<void()>;

  /// Register the inverse of an operation that just executed eagerly.
  void log_undo(Action inverse) { undo_.push_back(std::move(inverse)); }

  /// Register how to release an abstract lock at transaction end.
  void log_release(Action release) { releases_.push_back(std::move(release)); }

  void commit() { release_all(); }

  void abort_rollback() {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) (*it)();
    undo_.clear();
    release_all();
  }

 private:
  void release_all() {
    for (auto it = releases_.rbegin(); it != releases_.rend(); ++it) (*it)();
    releases_.clear();
  }

  std::vector<Action> undo_;
  std::vector<Action> releases_;
};

/// Run `fn(tx)` under pessimistic boosting, retrying on abort.  Returns the
/// number of aborted attempts.
template <typename Fn>
std::uint64_t atomically(Fn&& fn) {
  Backoff backoff;
  std::uint64_t aborts = 0;
  for (;;) {
    BoostedTx tx;
    try {
      fn(tx);
      tx.commit();
      return aborts;
    } catch (const TxAbort&) {
      tx.abort_rollback();
      ++aborts;
      backoff.pause();
    }
  }
}

}  // namespace otb::boosted
