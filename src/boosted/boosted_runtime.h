// Minimal transaction runtime for Herlihy–Koskinen *pessimistic* boosting
// (§2.3): eager execution on an underlying linearizable object, abstract
// locks held in two-phase style until commit, and a semantic undo-log
// replayed in reverse on abort.
//
// Aborts only ever come from failed abstract-lock acquisition (bounded
// try-lock to preempt deadlock), exactly as the paper notes when comparing
// abort sources against OTB.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "metrics/registry.h"
#include "metrics/sink.h"

namespace otb::boosted {

/// The sink pessimistic-boosting transactions report through (domain
/// "boosted" in the global registry unless overridden).
namespace detail {
inline metrics::MetricsSink*& sink_slot() {
  static metrics::MetricsSink* sink =
      &metrics::Registry::global().sink("boosted");
  return sink;
}
}  // namespace detail

inline metrics::MetricsSink& metrics_sink() { return *detail::sink_slot(); }

inline void set_metrics_sink(metrics::MetricsSink* sink) {
  detail::sink_slot() =
      sink != nullptr ? sink : &metrics::Registry::global().sink("boosted");
}

inline metrics::SinkSnapshot metrics_snapshot() { return metrics_sink().snapshot(); }

/// One pessimistic-boosting transaction attempt: the undo log plus the
/// release actions for every abstract lock acquired so far.
class BoostedTx {
 public:
  using Action = std::function<void()>;

  /// Register the inverse of an operation that just executed eagerly.
  void log_undo(Action inverse) { undo_.push_back(std::move(inverse)); }

  /// Register how to release an abstract lock at transaction end.
  void log_release(Action release) { releases_.push_back(std::move(release)); }

  void commit() { release_all(); }

  void abort_rollback() {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) (*it)();
    undo_.clear();
    release_all();
  }

 private:
  void release_all() {
    for (auto it = releases_.rbegin(); it != releases_.rend(); ++it) (*it)();
    releases_.clear();
  }

  std::vector<Action> undo_;
  std::vector<Action> releases_;
};

/// Run `fn(tx)` under pessimistic boosting, retrying on abort.  Returns the
/// attempt report for this call; lifetime totals flow into the metrics sink.
template <typename Fn>
metrics::AttemptReport atomically(Fn&& fn) {
  metrics::MetricsSink& sink = metrics_sink();
  Backoff backoff;
  metrics::AttemptReport report;
  for (;;) {
    BoostedTx tx;
    try {
      fn(tx);
      tx.commit();
      sink.add(metrics::CounterId::kAttempts);
      sink.add(metrics::CounterId::kCommits);
      report.commits = 1;
      return report;
    } catch (const TxAbort& abort) {
      tx.abort_rollback();
      sink.add(metrics::CounterId::kAttempts);
      sink.record_abort(abort.reason);
      report.aborts += 1;
      report.last_reason = abort.reason;
      backoff.pause();
    }
  }
}

}  // namespace otb::boosted
