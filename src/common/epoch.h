// Epoch-based memory reclamation (EBR) for the lazy data structures.
//
// Readers wrap traversals in an `ebr::Guard`; writers `retire()` unlinked
// nodes instead of deleting them.  A retired node is freed only after every
// thread that might still hold a reference has left its critical region —
// the classic three-epoch scheme (Fraser).  This keeps the lazy list /
// skip-list traversals safe without per-node reference counting.
//
// Slot discipline: each thread claims one of `kMaxSlots` announcement slots
// on first use and releases it (in_use = false) when the thread exits, so
// any number of *sequential* short-lived threads run in the table.  Only
// when more than `kMaxSlots` threads are inside the EBR machinery
// *simultaneously* does slot acquisition fail — with a `SlotsExhausted`
// exception naming the limit, never by silently leaking retirements.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/platform.h"

namespace otb::ebr {

/// Maximum number of threads simultaneously registered with the reclamation
/// scheme.  Slots are recycled when threads exit, so total thread churn is
/// unbounded — this caps concurrency, not lifetime thread count.
inline constexpr unsigned kMaxSlots = 128;

/// Thrown when a thread cannot claim an announcement slot because
/// `kMaxSlots` threads are already registered.  The failed thread holds no
/// EBR state, so catching this and retrying after other threads exit is
/// safe.
class SlotsExhausted : public std::runtime_error {
 public:
  SlotsExhausted()
      : std::runtime_error(
            "otb::ebr: all " + std::to_string(kMaxSlots) +
            " reclamation slots are claimed by live threads; reduce thread "
            "concurrency or raise otb::ebr::kMaxSlots") {}
};

namespace detail {

inline constexpr unsigned kMaxThreads = kMaxSlots;
inline constexpr std::uint64_t kIdle = 0;  // local epoch 0 == not in a region
inline constexpr std::size_t kScanThreshold = 256;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
  std::uint64_t epoch;
};

struct alignas(kCacheLine) Slot {
  std::atomic<std::uint64_t> local{kIdle};
  std::atomic<bool> in_use{false};
};

struct Global {
  std::atomic<std::uint64_t> epoch{1};
  Slot slots[kMaxThreads];
  std::mutex orphan_mu;
  std::vector<Retired> orphans;  // limbo of exited threads

  // Static destruction runs after every ThreadState has drained its limbo
  // here (thread_local dtors precede static dtors), so whatever is left is
  // unreachable and safe to free — without this, retirements that never
  // became collectable leak at process exit.
  ~Global() {
    for (const Retired& r : orphans) r.deleter(r.ptr);
  }

  static Global& instance() {
    static Global g;
    return g;
  }
};

/// Smallest epoch any active thread is still inside (or current epoch when
/// every thread is idle).
inline std::uint64_t min_active_epoch(Global& g) {
  std::uint64_t min = g.epoch.load(std::memory_order_acquire);
  for (auto& s : g.slots) {
    const std::uint64_t e = s.local.load(std::memory_order_acquire);
    if (e != kIdle && e < min) min = e;
  }
  return min;
}

class ThreadState {
 public:
  ThreadState() {
    Global& g = Global::instance();
    // acq_rel: acquire pairs with the releasing `in_use` store of the
    // exiting thread that freed the slot, so its final kIdle store to
    // `local` is visible before we republish the slot.
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (g.slots[i].in_use.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        index_ = i;
        return;
      }
    }
    // Over-subscribed.  Failing loudly here is the only safe option: a
    // slotless thread cannot announce an epoch, so any Guard it took would
    // not delay reclamation and any node it retired could never be proven
    // unreachable.  (The throw aborts thread_local construction; the next
    // EBR use on this thread retries the scan, so a thread that merely
    // raced a slot release recovers.)
    throw SlotsExhausted{};
  }

  ~ThreadState() {
    Global& g = Global::instance();
    if (!limbo_.empty()) {
      std::lock_guard<std::mutex> lk(g.orphan_mu);
      g.orphans.insert(g.orphans.end(), limbo_.begin(), limbo_.end());
    }
    g.slots[index_].local.store(kIdle, std::memory_order_release);
    g.slots[index_].in_use.store(false, std::memory_order_release);
  }

  void enter() {
    if (++depth_ > 1) return;
    Global& g = Global::instance();
    // Announce via a seq_cst RMW: the announcement must be ordered before
    // every subsequent shared read (StoreLoad), and an RMW — unlike
    // atomic_thread_fence — is a barrier ThreadSanitizer models.
    const std::uint64_t e = g.epoch.load(std::memory_order_seq_cst);
    g.slots[index_].local.exchange(e, std::memory_order_seq_cst);
    announced_ = e;
  }

  void exit() {
    if (--depth_ > 0) return;
    Global& g = Global::instance();
    g.slots[index_].local.store(kIdle, std::memory_order_release);
    announced_ = kIdle;
  }

  void retire(void* p, void (*deleter)(void*)) {
    Global& g = Global::instance();
    limbo_.push_back({p, deleter, g.epoch.load(std::memory_order_acquire)});
    if (limbo_.size() >= kScanThreshold) collect();
  }

  /// Advance the global epoch if possible and free every retired node whose
  /// epoch is at least two behind the minimum active epoch.
  void collect() {
    Global& g = Global::instance();
    g.epoch.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t safe = min_active_epoch(g);
    free_older_than(limbo_, safe);
    if (g.orphan_mu.try_lock()) {
      free_older_than(g.orphans, safe);
      g.orphan_mu.unlock();
    }
  }

  /// Epoch this thread announced for its current (outermost) guard; kIdle
  /// when the thread is not inside a critical region.
  std::uint64_t announced() const { return announced_; }

 private:
  static void free_older_than(std::vector<Retired>& v, std::uint64_t safe) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      // Nodes retired in epoch e are unreachable once every thread has
      // observed an epoch > e, i.e. when min-active >= e + 2.
      if (v[i].epoch + 2 <= safe) {
        v[i].deleter(v[i].ptr);
      } else {
        v[keep++] = v[i];
      }
    }
    v.resize(keep);
  }

  unsigned index_ = 0;
  unsigned depth_ = 0;
  std::uint64_t announced_ = kIdle;
  std::vector<Retired> limbo_;
};

inline ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

}  // namespace detail

/// RAII critical-region guard.  Re-entrant.  Throws `SlotsExhausted` if
/// this thread cannot claim an announcement slot.
class Guard {
 public:
  Guard() { detail::thread_state().enter(); }
  ~Guard() { detail::thread_state().exit(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

/// Defer deletion of `p` until no thread can still reach it.
template <typename T>
void retire(T* p) {
  detail::thread_state().retire(
      p, +[](void* q) { delete static_cast<T*>(q); });
}

/// Force a collection attempt (used by tests and shutdown paths).
inline void collect() { detail::thread_state().collect(); }

/// Epoch announced by the calling thread's active guard, or 0 (idle) when
/// the thread is outside every critical region.  The traversal-hint cache
/// uses this to age-gate cached node pointers (see DESIGN.md, "Traversal
/// hints and opacity"): a pointer validated unreachable-from-free under
/// announce epoch E stays dereferenceable for any guard announced at
/// most E + 1.
inline std::uint64_t announced_epoch() {
  return detail::thread_state().announced();
}

}  // namespace otb::ebr
