// Epoch-based memory reclamation (EBR) for the lazy data structures.
//
// Readers wrap traversals in an `ebr::Guard`; writers `retire()` unlinked
// nodes instead of deleting them.  A retired node is freed only after every
// thread that might still hold a reference has left its critical region —
// the classic three-epoch scheme (Fraser).  This keeps the lazy list /
// skip-list traversals safe without per-node reference counting.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/platform.h"

namespace otb::ebr {

namespace detail {

inline constexpr unsigned kMaxThreads = 128;
inline constexpr std::uint64_t kIdle = 0;  // local epoch 0 == not in a region
inline constexpr std::size_t kScanThreshold = 256;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
  std::uint64_t epoch;
};

struct alignas(kCacheLine) Slot {
  std::atomic<std::uint64_t> local{kIdle};
  std::atomic<bool> in_use{false};
};

struct Global {
  std::atomic<std::uint64_t> epoch{1};
  Slot slots[kMaxThreads];
  std::mutex orphan_mu;
  std::vector<Retired> orphans;  // limbo of exited threads

  // Static destruction runs after every ThreadState has drained its limbo
  // here (thread_local dtors precede static dtors), so whatever is left is
  // unreachable and safe to free — without this, retirements that never
  // became collectable leak at process exit.
  ~Global() {
    for (const Retired& r : orphans) r.deleter(r.ptr);
  }

  static Global& instance() {
    static Global g;
    return g;
  }
};

/// Smallest epoch any active thread is still inside (or current epoch when
/// every thread is idle).
inline std::uint64_t min_active_epoch(Global& g) {
  std::uint64_t min = g.epoch.load(std::memory_order_acquire);
  for (auto& s : g.slots) {
    const std::uint64_t e = s.local.load(std::memory_order_acquire);
    if (e != kIdle && e < min) min = e;
  }
  return min;
}

class ThreadState {
 public:
  ThreadState() {
    Global& g = Global::instance();
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (g.slots[i].in_use.compare_exchange_strong(expected, true)) {
        index_ = i;
        return;
      }
    }
    index_ = kMaxThreads;  // over-subscribed: fall back to leaking retirement
  }

  ~ThreadState() {
    Global& g = Global::instance();
    if (!limbo_.empty()) {
      std::lock_guard<std::mutex> lk(g.orphan_mu);
      g.orphans.insert(g.orphans.end(), limbo_.begin(), limbo_.end());
    }
    if (index_ < kMaxThreads) {
      g.slots[index_].local.store(kIdle, std::memory_order_release);
      g.slots[index_].in_use.store(false, std::memory_order_release);
    }
  }

  void enter() {
    if (++depth_ > 1) return;
    Global& g = Global::instance();
    if (index_ < kMaxThreads) {
      // Announce via a seq_cst RMW: the announcement must be ordered before
      // every subsequent shared read (StoreLoad), and an RMW — unlike
      // atomic_thread_fence — is a barrier ThreadSanitizer models.
      g.slots[index_].local.exchange(
          g.epoch.load(std::memory_order_seq_cst), std::memory_order_seq_cst);
    }
  }

  void exit() {
    if (--depth_ > 0) return;
    Global& g = Global::instance();
    if (index_ < kMaxThreads) {
      g.slots[index_].local.store(kIdle, std::memory_order_release);
    }
  }

  void retire(void* p, void (*deleter)(void*)) {
    Global& g = Global::instance();
    limbo_.push_back({p, deleter, g.epoch.load(std::memory_order_acquire)});
    if (limbo_.size() >= kScanThreshold) collect();
  }

  /// Advance the global epoch if possible and free every retired node whose
  /// epoch is at least two behind the minimum active epoch.
  void collect() {
    Global& g = Global::instance();
    g.epoch.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t safe = min_active_epoch(g);
    free_older_than(limbo_, safe);
    if (g.orphan_mu.try_lock()) {
      free_older_than(g.orphans, safe);
      g.orphan_mu.unlock();
    }
  }

 private:
  static void free_older_than(std::vector<Retired>& v, std::uint64_t safe) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      // Nodes retired in epoch e are unreachable once every thread has
      // observed an epoch > e, i.e. when min-active >= e + 2.
      if (v[i].epoch + 2 <= safe) {
        v[i].deleter(v[i].ptr);
      } else {
        v[keep++] = v[i];
      }
    }
    v.resize(keep);
  }

  unsigned index_ = kMaxThreads;
  unsigned depth_ = 0;
  std::vector<Retired> limbo_;
};

inline ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

}  // namespace detail

/// RAII critical-region guard.  Re-entrant.
class Guard {
 public:
  Guard() { detail::thread_state().enter(); }
  ~Guard() { detail::thread_state().exit(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

/// Defer deletion of `p` until no thread can still reach it.
template <typename T>
void retire(T* p) {
  detail::thread_state().retire(
      p, +[](void* q) { delete static_cast<T*>(q); });
}

/// Force a collection attempt (used by tests and shutdown paths).
inline void collect() { detail::thread_state().collect(); }

}  // namespace otb::ebr
