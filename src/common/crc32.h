// Software CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/PNG variant),
// table-driven, one byte per step.  Used by the service write-ahead log to
// detect torn and corrupted records (docs/DURABILITY.md); throughput is not
// critical there — a WAL record is a few dozen bytes and the append path is
// dominated by write(2)/fsync(2).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace otb {

namespace detail {
inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC-32 of `len` bytes at `data`; `seed` chains incremental updates
/// (pass a previous result to continue it).
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace otb
