// Per-thread deterministic PRNGs for workload generation and property tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace otb {

/// xoshiro-style 64-bit generator seeded through splitmix64.  Deterministic
/// per seed, cheap enough to call on every benchmark operation.
class Xorshift {
 public:
  explicit constexpr Xorshift(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : state_(mix64(seed | 1)) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform value in [0, bound).  bound must be non-zero.
  constexpr std::uint64_t next_bounded(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Bernoulli trial with probability pct/100.
  constexpr bool chance_pct(unsigned pct) noexcept {
    return next_bounded(100) < pct;
  }

 private:
  std::uint64_t state_;
};

/// Bounded Zipf(s) sampler over [0, n) via a precomputed inverse CDF.
/// Construction is O(n) (done once per benchmark setup); sampling is a
/// binary search.  s = 0.99 matches the YCSB default skew.
class Zipf {
 public:
  explicit Zipf(std::size_t n, double s = 0.99) {
    cdf_.reserve(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(acc);
    }
  }

  std::uint64_t sample(Xorshift& rng) const {
    // 53 uniform mantissa bits -> u in [0, total).
    const double u =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53 * cdf_.back();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace otb
