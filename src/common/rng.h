// Per-thread deterministic PRNGs for workload generation and property tests.
#pragma once

#include <cstdint>

#include "common/hash.h"

namespace otb {

/// xoshiro-style 64-bit generator seeded through splitmix64.  Deterministic
/// per seed, cheap enough to call on every benchmark operation.
class Xorshift {
 public:
  explicit constexpr Xorshift(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : state_(mix64(seed | 1)) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform value in [0, bound).  bound must be non-zero.
  constexpr std::uint64_t next_bounded(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Bernoulli trial with probability pct/100.
  constexpr bool chance_pct(unsigned pct) noexcept {
    return next_bounded(100) < pct;
  }

 private:
  std::uint64_t state_;
};

}  // namespace otb
