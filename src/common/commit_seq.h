// CommitSeq: per-structure commit-sequence word pair for the O(1)
// post-validation fast path (DESIGN.md "Commit-sequence fast path").
//
// Writers bracket every *publication* (the on_commit → post_commit window,
// the only phase that mutates the shared structure) with
// `publish_begin()` / `publish_end()`.  Unlike a SeqLock there can be
// several concurrent publishers (semantic locks are per-node, so disjoint
// write-sets commit in parallel), so instead of one even/odd word we keep
// two monotone counters:
//
//   begin_  — publications started
//   end_    — publications finished        (begin_ >= end_ always)
//
// A reader that previously full-validated at begin-count B knows the
// structure is untouched iff the begin count is still B: no publication has
// started since, and B was recorded only while the structure was quiescent
// (begin == end) and stable across the full validation.  That single
// acquire load replaces the O(read-set) semantic re-scan.
//
// Memory-model argument: publication stores are release and traversal loads
// acquire; `publish_begin` is an acq_rel RMW sequenced before the first
// publication store.  If a reader's traversal observed any published node,
// the writer's begin bump happens-before the reader's subsequent loads, so
// the reader's next `begin_count()` must observe the bump and the fast path
// correctly misses.  Writers that merely *hold* semantic locks without
// having published yet do not invalidate the fast path — holding a lock
// mutates nothing a past validation depended on.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/platform.h"

namespace otb {

class alignas(kCacheLine) CommitSeq {
 public:
  /// Sentinel "no snapshot recorded" value — never equals a live begin
  /// count, so a fresh descriptor always takes the full-validation path.
  static constexpr std::uint64_t kNoSnapshot = ~std::uint64_t{0};

  /// Publications started so far (acquire: pairs with publish_end's release
  /// so a quiescence check that reads end_ then begin_ is conservative).
  std::uint64_t begin_count() const noexcept {
    return begin_.load(std::memory_order_acquire);
  }

  /// Publications finished so far.
  std::uint64_t end_count() const noexcept {
    return end_.load(std::memory_order_acquire);
  }

  /// Called by a committer immediately before its first publication store.
  /// Returns the publication's *commit stamp* — the post-increment begin
  /// count — which doubles as the multi-version timestamp for version
  /// chains (src/otb/mv.h): any snapshot drawn at a quiescent instant T
  /// sees exactly the versions with stamp <= T.
  std::uint64_t publish_begin() noexcept {
    return begin_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Called by a committer after its last publication store (and after its
  /// semantic locks are released — the structure is fully at rest again).
  void publish_end() noexcept { end_.fetch_add(1, std::memory_order_release); }

 private:
  // Same cache line on purpose: committers write both, readers read both;
  // the class-level alignment keeps unrelated structures off this line.
  std::atomic<std::uint64_t> begin_{0};
  std::atomic<std::uint64_t> end_{0};
};

}  // namespace otb
