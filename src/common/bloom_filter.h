// Fixed-size bit-set bloom filter used for transaction read/write
// signatures (RTC dependency detection, InvalSTM/RInval invalidation,
// RingSW commit records).  The default 1024-bit size matches RSTM's
// configuration cited by the paper (§5.1.1).
#pragma once

#include <array>
#include <cstdint>

#include "common/hash.h"

namespace otb {

template <std::size_t Bits = 1024>
class BloomFilter {
  static_assert(Bits % 64 == 0, "filter size must be a multiple of 64 bits");

 public:
  static constexpr std::size_t kWords = Bits / 64;

  void clear() noexcept { words_.fill(0); }

  /// Insert an address.  Two probes derived from one 64-bit hash keep the
  /// false-positive rate low without extra hashing cost.
  void add(const void* addr) noexcept {
    const std::uint64_t h = hash_addr(addr);
    set_bit(h);
    set_bit(h >> 32);
  }

  /// Membership test (may report false positives, never false negatives).
  bool may_contain(const void* addr) const noexcept {
    const std::uint64_t h = hash_addr(addr);
    return test_bit(h) && test_bit(h >> 32);
  }

  /// True when the two filters share at least one set bit — the conservative
  /// "transactions may conflict" test.
  bool intersects(const BloomFilter& other) const noexcept {
    for (std::size_t i = 0; i < kWords; ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  bool empty() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  void union_with(const BloomFilter& other) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) words_[i] |= other.words_[i];
  }

 private:
  void set_bit(std::uint64_t h) noexcept {
    const std::uint64_t bit = h % Bits;
    words_[bit / 64] |= (1ULL << (bit % 64));
  }
  bool test_bit(std::uint64_t h) const noexcept {
    const std::uint64_t bit = h % Bits;
    return (words_[bit / 64] >> (bit % 64)) & 1ULL;
  }

  std::array<std::uint64_t, kWords> words_{};
};

using TxFilter = BloomFilter<1024>;

}  // namespace otb
