// SmallVec: a minimal inline-storage vector for the transaction hot path.
//
// Semantic read/write/locked sets of a typical OTB transaction hold a
// handful of entries (the paper's workloads run 1–5 operations per
// transaction), so per-attempt std::vector heap churn is pure overhead.
// SmallVec keeps the first N elements in the object itself and only spills
// to the heap past that; `clear()` keeps whatever capacity was reached, so
// a pooled descriptor's sets stay allocation-free across retries.
//
// Restricted to trivially copyable element types (node pointers, plain
// entry structs, lock-word snapshots) — growth and erase are memcpy/memmove
// and destruction is a no-op, which is exactly what the hot path wants.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

namespace otb {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable types");
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  ~SmallVec() {
    if (heap_ != nullptr) ::operator delete(heap_, std::align_val_t{alignof(T)});
  }

  // Copy/move keep the inline-first representation: small payloads are a
  // memcpy, only spilled ones transfer (move) or reallocate (copy) the heap
  // block.  The service plane's multi-op `Request` rides on this — a request
  // carries its step list by value through submit() into the Pending cell.
  SmallVec(const SmallVec& o) { assign(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;
      assign(o);
    }
    return *this;
  }
  SmallVec(SmallVec&& o) noexcept { steal(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      if (heap_ != nullptr) ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
      cap_ = N;
      steal(o);
    }
    return *this;
  }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  T& back() noexcept { return data()[size_ - 1]; }
  const T& back() const noexcept { return data()[size_ - 1]; }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cap_; }
  bool empty() const noexcept { return size_ == 0; }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  /// Insert `v` before `pos` (an iterator into this vector), shifting the
  /// tail right — used by the key-ordered traversal-hint lists.
  void insert(T* pos, const T& v) {
    const std::size_t at = static_cast<std::size_t>(pos - data());
    if (size_ == cap_) grow(cap_ * 2);  // may invalidate pos; `at` survives
    T* base = data();
    std::memmove(base + at + 1, base + at, (size_ - at) * sizeof(T));
    base[at] = v;
    ++size_;
  }

  /// Remove the element at `pos` (an iterator into this vector), shifting
  /// the tail left — the only erase shape descriptor code needs.
  void erase(T* pos) {
    std::memmove(pos, pos + 1,
                 static_cast<std::size_t>(end() - pos - 1) * sizeof(T));
    --size_;
  }

  /// Drops the elements but keeps the reached capacity: a recycled
  /// descriptor's next attempt re-fills storage that is already sized.
  void clear() noexcept { size_ = 0; }

 private:
  T* data() noexcept {
    return heap_ != nullptr ? heap_ : reinterpret_cast<T*>(inline_);
  }
  const T* data() const noexcept {
    return heap_ != nullptr ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  void assign(const SmallVec& o) {
    reserve(o.size_);
    std::memcpy(data(), o.data(), o.size_ * sizeof(T));
    size_ = o.size_;
  }

  void steal(SmallVec& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  void grow(std::size_t new_cap) {
    if (new_cap < size_ + 1) new_cap = size_ + 1;
    T* fresh = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_ != nullptr) ::operator delete(heap_, std::align_val_t{alignof(T)});
    heap_ = fresh;
    cap_ = new_cap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace otb
