// Platform-level primitives shared by every module: cache-line geometry,
// CPU pause hints, thread pinning, and monotonic timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace otb {

/// Cache-line size used for alignment of contended fields.  64 bytes is
/// correct for every x86-64 and most AArch64 parts; over-aligning is safe.
inline constexpr std::size_t kCacheLine = 64;

/// Hint to the CPU that we are in a spin-wait loop (x86 PAUSE).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Best-effort pinning of the calling thread to a CPU.  Returns false when
/// pinning is unavailable (e.g. single-core containers); callers must treat
/// pinning as an optimisation only.
inline bool pin_this_thread(unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

/// Spin helper that degrades to yielding: essential when threads outnumber
/// cores (multiprogramming, Fig 5.9) — a pure PAUSE loop would burn the
/// whole timeslice of the thread we are waiting for.
class SpinWait {
 public:
  void spin() noexcept {
    if (++count_ < kSpinLimit) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  void reset() noexcept { count_ = 0; }

 private:
  static constexpr int kSpinLimit = 128;
  int count_ = 0;
};

/// Best-effort POSIX name for the calling thread, so TSan/ASan reports and
/// gdb identify roles ("svc/w3", "stress/1") instead of raw TIDs.  Linux
/// truncates to 15 chars + NUL; longer names are clipped, never an error.
inline void set_this_thread_name(const char* name) noexcept {
#if defined(__linux__)
  char clipped[16];
  std::size_t i = 0;
  for (; i < 15 && name[i] != '\0'; ++i) clipped[i] = name[i];
  clipped[i] = '\0';
  pthread_setname_np(pthread_self(), clipped);
#else
  (void)name;
#endif
}

/// Monotonic nanosecond timestamp.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace otb
