// Locking primitives used throughout the library:
//   * Backoff          — bounded exponential backoff for spin loops.
//   * SpinLock         — test-and-test-and-set mutual exclusion.
//   * SeqLock          — sequence lock (even = free, odd = writer inside),
//                        the global synchronisation word of NOrec/TML/RTC.
//   * VersionedLock    — per-node sequence lock used by OTB semantic locks
//                        and the TL2 orec table (LSB = locked, rest = version).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/platform.h"

namespace otb {

/// Bounded exponential backoff for contended spin loops.  The window is
/// hard-capped (doubling stops at `cap`, configurable per loop) and each
/// pause spins a jittered count in [limit/2, limit) — identical retry loops
/// otherwise re-collide in lockstep after every abort, turning one conflict
/// into a convoy.
class Backoff {
 public:
  static constexpr unsigned kDefaultCap = 1024;

  constexpr Backoff() noexcept = default;
  constexpr explicit Backoff(unsigned cap) noexcept
      : cap_(cap < 2 ? 2 : cap) {}

  void pause() noexcept {
    if (limit_ >= cap_) {
      // Saturated: the thread we are waiting for may need our core
      // (oversubscribed hosts) — give it up instead of burning the slice.
      std::this_thread::yield();
      return;
    }
    const unsigned spins = limit_ / 2 + next_jitter() % (limit_ / 2 + 1);
    for (unsigned i = 0; i < spins; ++i) cpu_relax();
    limit_ <<= 1;
  }
  void reset() noexcept { limit_ = 1; }

 private:
  // Cheap thread-local xorshift; quality is irrelevant, decorrelation is
  // the point.
  static unsigned next_jitter() noexcept {
    thread_local std::uint32_t state =
        0x9e3779b9u ^ static_cast<std::uint32_t>(
                          reinterpret_cast<std::uintptr_t>(&state));
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  }

  unsigned cap_ = kDefaultCap;
  unsigned limit_ = 1;
};

/// Minimal test-and-test-and-set spinlock.  Satisfies Lockable.
class SpinLock {
 public:
  void lock() noexcept {
    Backoff bo;
    for (;;) {
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
    }
  }
  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// Global sequence lock.  The counter is even when no writer holds the lock
/// and odd while a commit is being published — exactly the NOrec timestamp.
class alignas(kCacheLine) SeqLock {
 public:
  /// Current value (even or odd).
  std::uint64_t load(std::memory_order mo = std::memory_order_acquire) const noexcept {
    return seq_.load(mo);
  }

  /// Spin until the value is even, then return it.
  std::uint64_t wait_even() const noexcept {
    Backoff bo;
    for (;;) {
      const std::uint64_t s = seq_.load(std::memory_order_acquire);
      if ((s & 1) == 0) return s;
      bo.pause();
    }
  }

  /// Attempt to move from the even snapshot `expected` to `expected + 1`
  /// (writer acquisition).  Returns true on success.
  bool try_acquire(std::uint64_t expected) noexcept {
    return seq_.compare_exchange_strong(expected, expected + 1,
                                        std::memory_order_acq_rel);
  }

  /// Release after acquisition: odd -> next even.
  void release() noexcept { seq_.fetch_add(1, std::memory_order_release); }

  /// Privileged increment used by single-writer owners (the RTC servers);
  /// no CAS needed because only one thread ever increments.
  void server_increment() noexcept { seq_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::uint64_t> seq_{0};
};

/// Per-node versioned lock: bit 0 = locked, bits 63..1 = version.
/// Used for OTB semantic locks and TL2 ownership records.
class VersionedLock {
 public:
  static constexpr std::uint64_t kLockedBit = 1;

  std::uint64_t load(std::memory_order mo = std::memory_order_acquire) const noexcept {
    return word_.load(mo);
  }

  static constexpr bool is_locked(std::uint64_t w) noexcept { return (w & kLockedBit) != 0; }
  static constexpr std::uint64_t version_of(std::uint64_t w) noexcept { return w >> 1; }

  /// Try to lock given an unlocked snapshot; fails if the word changed.
  bool try_lock_from(std::uint64_t snapshot) noexcept {
    if (is_locked(snapshot)) return false;
    return word_.compare_exchange_strong(snapshot, snapshot | kLockedBit,
                                         std::memory_order_acq_rel);
  }

  /// Try to lock from the current value.
  bool try_lock() noexcept { return try_lock_from(word_.load(std::memory_order_acquire)); }

  /// Unlock without bumping the version (used when nothing was modified).
  void unlock_same_version() noexcept {
    word_.fetch_and(~kLockedBit, std::memory_order_release);
  }

  /// Unlock and advance the version (modification happened).
  void unlock_new_version() noexcept {
    word_.fetch_add(kLockedBit, std::memory_order_release);  // odd + 1 = next even
  }

  /// Store an explicit version (TL2 commit publishes the write version).
  void unlock_with_version(std::uint64_t version) noexcept {
    word_.store(version << 1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> word_{0};
};

}  // namespace otb
