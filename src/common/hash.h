// Small non-cryptographic hash utilities used by the bloom filters, the
// orec table (TL2), and the striped abstract-lock tables.
#pragma once

#include <cstdint>

namespace otb {

/// Finalizer from splitmix64 — a strong 64-bit bit mixer.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash a pointer-sized address; drops the low alignment bits first so that
/// adjacent words do not collide into identical filter bits.
inline std::uint64_t hash_addr(const void* p) noexcept {
  return mix64(reinterpret_cast<std::uintptr_t>(p) >> 3);
}

}  // namespace otb
