// The abort signal shared by every transactional runtime in this library
// (standalone OTB transactions, the STM framework, and the integration
// layer).  Thrown when validation or lock acquisition fails; caught by the
// retry loop, never by user code.
#pragma once

namespace otb {

struct TxAbort {};

}  // namespace otb
