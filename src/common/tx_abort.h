// The abort signal shared by every transactional runtime in this library
// (standalone OTB transactions, the STM framework, and the integration
// layer).  Thrown when validation or lock acquisition fails; caught by the
// retry loop, never by user code.
#pragma once

#include "metrics/abort_reason.h"

namespace otb {

/// Carries the abort's attribution so the retry loop can account it under
/// the right `metrics::AbortReason`.  A bare `TxAbort{}` (user code
/// requesting a retry) defaults to kExplicit; internal throw sites always
/// name their reason.
struct TxAbort {
  metrics::AbortReason reason = metrics::AbortReason::kExplicit;

  constexpr TxAbort() = default;
  constexpr explicit TxAbort(metrics::AbortReason r) : reason(r) {}
};

}  // namespace otb
