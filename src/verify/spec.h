// Sequential specifications the linearizability checker replays histories
// against.
//
// A Spec models one ADT instance as a copyable `State` plus a `step`
// function that applies an observed Event to the state and reports whether
// the event's recorded result is the one the sequential object would have
// produced.  `encode` serialises a state for the checker's memoisation
// table (states that encode equally are interchangeable).
//
// Sets and maps additionally satisfy *per-key decomposability*: every
// operation touches exactly one key and its result depends only on that
// key's sub-state, so a history is linearizable iff each per-key projection
// is (the checker exploits this in `check_keyed_history`).  Priority queues
// are not decomposable and are replayed against the whole-queue state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/history.h"

namespace otb::verify {

/// Per-key projection of a set: the sub-state is a single presence bit.
/// Covers kAdd (ok == was absent), kRemove (ok == was present) and
/// kContains (ok == present).
struct SetKeySpec {
  struct State {
    bool present = false;
  };

  State initial() const { return {}; }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kAdd:
        if (e.ok == s.present) return false;  // ok iff it was absent
        if (e.ok) s.present = true;
        return true;
      case OpKind::kRemove:
        if (e.ok != s.present) return false;  // ok iff it was present
        if (e.ok) s.present = false;
        return true;
      case OpKind::kContains:
        return e.ok == s.present;
      default:
        return false;  // foreign op in a set history
    }
  }

  std::string encode(const State& s) const { return s.present ? "1" : "0"; }
};

/// Per-key projection of a map: presence plus the current value.
/// kPut is insert-or-assign (ok == key was absent), kErase ok == was
/// present, kGet ok == present and the observed value must match.
struct MapKeySpec {
  struct State {
    bool present = false;
    std::int64_t value = 0;
  };

  State initial() const { return {}; }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kPut:
        if (e.ok == s.present) return false;
        s.present = true;
        s.value = e.value;
        return true;
      case OpKind::kErase:
        if (e.ok != s.present) return false;
        if (e.ok) s.present = false;
        return true;
      case OpKind::kGet:
        if (e.ok != s.present) return false;
        return !e.ok || e.value == s.value;
      default:
        return false;
    }
  }

  std::string encode(const State& s) const {
    return s.present ? "1:" + std::to_string(s.value) : "0";
  }
};

/// Whole-queue priority-queue spec over a sorted multiset of keys (kept as
/// a sorted vector: states are tiny and copied on every branch).
///
/// `unique_keys` models the OTB skip-list PQ, whose add() refuses
/// duplicates; with it false, add always succeeds (binary-heap PQs).
/// kPqRemoveMin/kPqMin with ok must have observed the current minimum
/// (`e.value`); with !ok the queue must have been empty.
struct PqSpec {
  bool unique_keys = true;

  struct State {
    std::vector<std::int64_t> keys;  // sorted ascending
  };

  State initial() const { return {}; }

  /// Spec state seeded with the structure's pre-stress contents.
  State initial_with(std::vector<std::int64_t> seeded) const {
    State s;
    s.keys = std::move(seeded);
    std::sort(s.keys.begin(), s.keys.end());
    return s;
  }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kPqAdd: {
        const auto it = std::lower_bound(s.keys.begin(), s.keys.end(), e.key);
        const bool present = it != s.keys.end() && *it == e.key;
        if (unique_keys) {
          if (e.ok == present) return false;
          if (e.ok) s.keys.insert(it, e.key);
        } else {
          if (!e.ok) return false;  // unbounded heap add cannot fail
          s.keys.insert(it, e.key);
        }
        return true;
      }
      case OpKind::kPqRemoveMin:
        if (!e.ok) return s.keys.empty();
        if (s.keys.empty() || s.keys.front() != e.value) return false;
        s.keys.erase(s.keys.begin());
        return true;
      case OpKind::kPqMin:
        if (!e.ok) return s.keys.empty();
        return !s.keys.empty() && s.keys.front() == e.value;
      default:
        return false;
    }
  }

  std::string encode(const State& s) const {
    std::string out;
    out.reserve(s.keys.size() * 4);
    for (const std::int64_t k : s.keys) {
      out += std::to_string(k);
      out += ',';
    }
    return out;
  }
};

}  // namespace otb::verify
