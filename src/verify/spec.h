// Sequential specifications the linearizability checker replays histories
// against.
//
// A Spec models one ADT instance as a copyable `State` plus a `step`
// function that applies an observed Event to the state and reports whether
// the event's recorded result is the one the sequential object would have
// produced.  `encode` serialises a state for the checker's memoisation
// table (states that encode equally are interchangeable).
//
// Sets and maps additionally satisfy *per-key decomposability*: every
// operation touches exactly one key and its result depends only on that
// key's sub-state, so a history is linearizable iff each per-key projection
// is (the checker exploits this in `check_keyed_history`).  Priority queues
// are not decomposable and are replayed against the whole-queue state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/history.h"

namespace otb::verify {

/// Per-key projection of a set: the sub-state is a single presence bit.
/// Covers kAdd (ok == was absent), kRemove (ok == was present) and
/// kContains (ok == present).
struct SetKeySpec {
  struct State {
    bool present = false;
  };

  State initial() const { return {}; }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kAdd:
        if (e.ok == s.present) return false;  // ok iff it was absent
        if (e.ok) s.present = true;
        return true;
      case OpKind::kRemove:
        if (e.ok != s.present) return false;  // ok iff it was present
        if (e.ok) s.present = false;
        return true;
      case OpKind::kContains:
        return e.ok == s.present;
      default:
        return false;  // foreign op in a set history
    }
  }

  std::string encode(const State& s) const { return s.present ? "1" : "0"; }
};

/// Per-key projection of a map: presence plus the current value.
/// kPut is insert-or-assign (ok == key was absent), kErase ok == was
/// present, kGet ok == present and the observed value must match.
struct MapKeySpec {
  struct State {
    bool present = false;
    std::int64_t value = 0;
  };

  State initial() const { return {}; }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kPut:
        if (e.ok == s.present) return false;
        s.present = true;
        s.value = e.value;
        return true;
      case OpKind::kErase:
        if (e.ok != s.present) return false;
        if (e.ok) s.present = false;
        return true;
      case OpKind::kGet:
        if (e.ok != s.present) return false;
        return !e.ok || e.value == s.value;
      default:
        return false;
    }
  }

  std::string encode(const State& s) const {
    return s.present ? "1:" + std::to_string(s.value) : "0";
  }
};

/// Whole-queue priority-queue spec over a sorted multiset of keys (kept as
/// a sorted vector: states are tiny and copied on every branch).
///
/// `unique_keys` models the OTB skip-list PQ, whose add() refuses
/// duplicates; with it false, add always succeeds (binary-heap PQs).
/// kPqRemoveMin/kPqMin with ok must have observed the current minimum
/// (`e.value`); with !ok the queue must have been empty.
struct PqSpec {
  bool unique_keys = true;

  struct State {
    std::vector<std::int64_t> keys;  // sorted ascending
  };

  State initial() const { return {}; }

  /// Spec state seeded with the structure's pre-stress contents.
  State initial_with(std::vector<std::int64_t> seeded) const {
    State s;
    s.keys = std::move(seeded);
    std::sort(s.keys.begin(), s.keys.end());
    return s;
  }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kPqAdd: {
        const auto it = std::lower_bound(s.keys.begin(), s.keys.end(), e.key);
        const bool present = it != s.keys.end() && *it == e.key;
        if (unique_keys) {
          if (e.ok == present) return false;
          if (e.ok) s.keys.insert(it, e.key);
        } else {
          if (!e.ok) return false;  // unbounded heap add cannot fail
          s.keys.insert(it, e.key);
        }
        return true;
      }
      case OpKind::kPqRemoveMin:
        if (!e.ok) return s.keys.empty();
        if (s.keys.empty() || s.keys.front() != e.value) return false;
        s.keys.erase(s.keys.begin());
        return true;
      case OpKind::kPqMin:
        if (!e.ok) return s.keys.empty();
        return !s.keys.empty() && s.keys.front() == e.value;
      default:
        return false;
    }
  }

  std::string encode(const State& s) const {
    std::string out;
    out.reserve(s.keys.size() * 4);
    for (const std::int64_t k : s.keys) {
      out += std::to_string(k);
      out += ',';
    }
    return out;
  }
};

/// Whole-object spec of the job-scheduler scenario (scenarios.h): a free
/// priority queue plus a lease map, mutated only by the two atomic
/// cross-structure scripts.  Event mapping:
///   kPqRemoveMin — claim: ok must have popped the free minimum (e.value)
///                  and moved it, atomically, into the leased set;
///   kRemove      — release(e.key): ok iff the job was leased; moves it
///                  back to free;
///   kContains    — lease lookup: ok iff e.key is currently leased.
/// Because both scripts MOVE a key between the structures, replaying them
/// against this joint state is precisely the cross-structure atomicity
/// check: a half-applied claim (popped but not leased, or vice versa) has
/// no linearization and the search fails.
struct SchedulerSpec {
  struct State {
    std::vector<std::int64_t> free;    // sorted ascending
    std::vector<std::int64_t> leased;  // sorted ascending
  };

  State initial() const { return {}; }

  State initial_with(std::vector<std::int64_t> seeded_free) const {
    State s;
    s.free = std::move(seeded_free);
    std::sort(s.free.begin(), s.free.end());
    return s;
  }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kPqRemoveMin: {  // claim
        if (!e.ok) return s.free.empty();
        if (s.free.empty() || s.free.front() != e.value) return false;
        s.free.erase(s.free.begin());
        s.leased.insert(
            std::lower_bound(s.leased.begin(), s.leased.end(), e.value),
            e.value);
        return true;
      }
      case OpKind::kRemove: {  // release
        const auto it =
            std::lower_bound(s.leased.begin(), s.leased.end(), e.key);
        const bool leased = it != s.leased.end() && *it == e.key;
        if (e.ok != leased) return false;
        if (e.ok) {
          s.leased.erase(it);
          s.free.insert(std::lower_bound(s.free.begin(), s.free.end(), e.key),
                        e.key);
        }
        return true;
      }
      case OpKind::kContains: {  // lease lookup
        const auto it =
            std::lower_bound(s.leased.begin(), s.leased.end(), e.key);
        return e.ok == (it != s.leased.end() && *it == e.key);
      }
      default:
        return false;
    }
  }

  std::string encode(const State& s) const {
    std::string out = "F";
    for (const std::int64_t k : s.free) {
      out += std::to_string(k);
      out += ',';
    }
    out += "|L";
    for (const std::int64_t k : s.leased) {
      out += std::to_string(k);
      out += ',';
    }
    return out;
  }
};

/// Whole-object spec of the order-book scenario (scenarios.h): an ask queue
/// and a bid queue (bid prices stored negated, so front() is the best bid).
/// The order map is not modelled separately — every script writes it in
/// lockstep with the queues, so it is definitionally asks ∪ bids here and
/// the final-state conservation audit covers any divergence.  Event
/// mapping:
///   kAdd — place_ask(e.key):  ok iff absent (unique prices);
///   kPut — place_bid(e.key):  stored as -e.key, ok iff absent;
///   kPqRemoveMin — match: ok means the script popped BOTH minima under
///                  `expect` guards, with e.value the matched ask; the
///                  matched bid is, by the guard, whatever the bid front
///                  was at the same instant, so the replay removes both
///                  fronts.  !ok is a guard abort (the observed pair
///                  drifted) — a semantic no-op that always linearises;
///   kContains — order-map lookup of e.key (signed): present iff resting.
struct OrderBookSpec {
  struct State {
    std::vector<std::int64_t> asks;  // sorted ascending
    std::vector<std::int64_t> bids;  // negated prices, sorted ascending
  };

  State initial() const { return {}; }

  bool step(State& s, const Event& e) const {
    switch (e.op) {
      case OpKind::kAdd: {  // place_ask
        const auto it = std::lower_bound(s.asks.begin(), s.asks.end(), e.key);
        const bool present = it != s.asks.end() && *it == e.key;
        if (e.ok == present) return false;
        if (e.ok) s.asks.insert(it, e.key);
        return true;
      }
      case OpKind::kPut: {  // place_bid (stored negated)
        const std::int64_t k = -e.key;
        const auto it = std::lower_bound(s.bids.begin(), s.bids.end(), k);
        const bool present = it != s.bids.end() && *it == k;
        if (e.ok == present) return false;
        if (e.ok) s.bids.insert(it, k);
        return true;
      }
      case OpKind::kPqRemoveMin:  // match
        if (!e.ok) return true;   // guard abort: atomic no-op
        if (s.asks.empty() || s.bids.empty()) return false;
        if (s.asks.front() != e.value) return false;
        s.asks.erase(s.asks.begin());
        s.bids.erase(s.bids.begin());
        return true;
      case OpKind::kContains: {  // order-map lookup (signed key)
        const auto& side = e.key < 0 ? s.bids : s.asks;
        const auto it = std::lower_bound(side.begin(), side.end(), e.key);
        return e.ok == (it != side.end() && *it == e.key);
      }
      default:
        return false;
    }
  }

  std::string encode(const State& s) const {
    std::string out = "A";
    for (const std::int64_t k : s.asks) {
      out += std::to_string(k);
      out += ',';
    }
    out += "|B";
    for (const std::int64_t k : s.bids) {
      out += std::to_string(k);
      out += ',';
    }
    return out;
  }
};

}  // namespace otb::verify
