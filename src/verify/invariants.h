// Cheap always-on structural invariants, complementary to the
// linearizability checker: these run in O(history + structure) and catch
// gross atomicity failures (lost updates, duplicated elements, broken
// ordering) even at history sizes where full linearizability checking
// would be intractable.
//
//   * sets/maps: final snapshot sorted strictly ascending (no duplicates),
//     and per-key conservation — successful adds minus successful removes
//     over the whole history must land exactly on the key's final presence;
//   * priority queues: the drained final contents must be sorted (heap
//     property) and the multiset equation
//         seeded + successful adds == removed minima + final contents
//     must balance (no lost or duplicated elements).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "verify/history.h"

namespace otb::verify {

struct AuditResult {
  bool ok = true;
  std::string detail;
};

inline AuditResult audit_fail(std::string what) { return {false, std::move(what)}; }

/// Set/map audit.  `final_snapshot` is the structure's post-run key
/// snapshot in traversal order; `initially_present` the seeded keys.
/// Successful kPut events count as add when the key was newly inserted
/// (ok), successful kErase as remove — so the same audit serves OtbListMap.
inline AuditResult audit_set(const History& history,
                             const std::vector<std::int64_t>& final_snapshot,
                             const std::vector<std::int64_t>& initially_present = {}) {
  // Structural: traversal order must be strictly ascending (sorted, no dups).
  for (std::size_t i = 1; i < final_snapshot.size(); ++i) {
    if (final_snapshot[i - 1] >= final_snapshot[i]) {
      return audit_fail("snapshot not strictly sorted at index " +
                        std::to_string(i) + ": " +
                        std::to_string(final_snapshot[i - 1]) + " >= " +
                        std::to_string(final_snapshot[i]));
    }
  }

  // Conservation: per key, net successful mutations == final presence.
  std::map<std::int64_t, std::int64_t> net;
  for (const std::int64_t k : initially_present) net[k] += 1;
  for (const Event& e : history) {
    if (!e.ok) continue;
    switch (e.op) {
      case OpKind::kAdd:
      case OpKind::kPut:
        net[e.key] += 1;
        break;
      case OpKind::kRemove:
      case OpKind::kErase:
        net[e.key] -= 1;
        break;
      default:
        break;
    }
  }
  std::map<std::int64_t, std::int64_t> present;
  for (const std::int64_t k : final_snapshot) present[k] += 1;
  for (const auto& [key, n] : net) {
    if (n < 0 || n > 1) {
      return audit_fail("key " + std::to_string(key) + ": net change " +
                        std::to_string(n) +
                        " outside {0,1} (lost or duplicated update)");
    }
    if (present[key] != n) {
      return audit_fail("key " + std::to_string(key) + ": final presence " +
                        std::to_string(present[key]) + " != net " +
                        std::to_string(n));
    }
  }
  for (const auto& [key, n] : present) {
    if (n != 0 && net.find(key) == net.end()) {
      return audit_fail("key " + std::to_string(key) +
                        " present in snapshot but never successfully added");
    }
  }
  return {};
}

/// Priority-queue audit.  `drained` is the final contents in removal order
/// (the harness drains the queue after the run — for heaps this checks the
/// heap property, for the skip-list PQ bottom-level order).
inline AuditResult audit_pq(const History& history,
                            const std::vector<std::int64_t>& drained,
                            const std::vector<std::int64_t>& seeded = {}) {
  for (std::size_t i = 1; i < drained.size(); ++i) {
    if (drained[i - 1] > drained[i]) {
      return audit_fail("drain order violates heap property at index " +
                        std::to_string(i) + ": " +
                        std::to_string(drained[i - 1]) + " > " +
                        std::to_string(drained[i]));
    }
  }

  std::map<std::int64_t, std::int64_t> balance;  // added - removed - final
  for (const std::int64_t k : seeded) balance[k] += 1;
  for (const Event& e : history) {
    if (!e.ok) continue;
    if (e.op == OpKind::kPqAdd) balance[e.key] += 1;
    if (e.op == OpKind::kPqRemoveMin) balance[e.value] -= 1;
  }
  for (const std::int64_t k : drained) balance[k] -= 1;
  for (const auto& [key, n] : balance) {
    if (n != 0) {
      return audit_fail("key " + std::to_string(key) + ": " +
                        (n > 0 ? std::to_string(n) + " lost element(s)"
                               : std::to_string(-n) + " duplicated element(s)"));
    }
  }
  return {};
}

/// Conservation across multiple structures (transfer workloads): the union
/// multiset of all final snapshots must equal the seeded multiset — a
/// transactional move may never lose or duplicate a key.
inline AuditResult audit_conservation(
    const std::vector<std::vector<std::int64_t>>& final_snapshots,
    const std::vector<std::int64_t>& seeded) {
  std::map<std::int64_t, std::int64_t> balance;
  for (const std::int64_t k : seeded) balance[k] += 1;
  for (const auto& snap : final_snapshots) {
    for (const std::int64_t k : snap) balance[k] -= 1;
  }
  for (const auto& [key, n] : balance) {
    if (n != 0) {
      return audit_fail("transfer conservation broken for key " +
                        std::to_string(key) + ": " +
                        (n > 0 ? std::to_string(n) + " lost"
                               : std::to_string(-n) + " duplicated"));
    }
  }
  return {};
}

}  // namespace otb::verify
