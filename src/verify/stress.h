// Seeded, schedule-perturbing stress driver for the linearizability
// harness.
//
// `run_stress` spins up N worker threads behind a start barrier, each
// executing a seeded pseudo-random stream of ADT operations through a
// caller-supplied worker (one worker object per thread, built by a
// factory so per-thread transactional contexts — stm::TxThread etc. —
// live on their own thread).  Every completed operation is timestamped
// and recorded into a HistoryRecorder lane; the merged history feeds
// lin_check.h / invariants.h.
//
// Determinism knobs:
//   * every stream derives from StressOptions::seed (split per thread);
//   * `yield_pct` injects random yields/short sleeps between operations to
//     perturb the schedule (essential on few-core hosts where threads
//     otherwise run in long uninterrupted slices);
//   * OTB_STRESS_SCALE environment variable scales operation counts for
//     nightly-sized runs without recompiling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "verify/history.h"

namespace otb::verify {

struct StressOptions {
  unsigned threads = 4;
  std::uint64_t ops_per_thread = 200;
  std::int64_t key_range = 32;      // keys drawn uniformly from [0, key_range)
  std::uint64_t seed = 1;
  unsigned yield_pct = 20;          // % of ops followed by a schedule perturbation
  // Operation mix as (op, weight) pairs; weights need not sum to 100.
  std::vector<std::pair<OpKind, unsigned>> mix = {
      {OpKind::kAdd, 30}, {OpKind::kRemove, 30}, {OpKind::kContains, 40}};
};

/// Nightly-scale multiplier: OTB_STRESS_SCALE (default 1) multiplies each
/// driver's ops_per_thread.  CI's nightly job sets it to run the same
/// binaries at 8–10x.
inline std::uint64_t stress_scale() {
  if (const char* v = std::getenv("OTB_STRESS_SCALE")) {
    const std::uint64_t s = std::strtoull(v, nullptr, 10);
    if (s > 0) return s;
  }
  return 1;
}

/// Override the base seed from the environment (OTB_STRESS_SEED) so a CI
/// failure's exact run reproduces locally.
inline std::uint64_t stress_seed(std::uint64_t fallback) {
  if (const char* v = std::getenv("OTB_STRESS_SEED")) {
    return std::strtoull(v, nullptr, 10);
  }
  return fallback;
}

namespace detail {
inline std::uint64_t split_seed(std::uint64_t base, unsigned tid) {
  // SplitMix64 step — decorrelates per-thread streams from a shared seed.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (tid + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return (z ^ (z >> 31)) | 1;
}
}  // namespace detail

/// Drive `opt.threads` workers and return the merged history.
///
/// WorkerFactory: `(unsigned tid) -> Worker` where Worker is callable as
///   `bool worker(OpKind op, std::int64_t key, std::int64_t& value)`
/// performing one complete (transactional) operation.  `value` carries the
/// put-value in (kPut) and the observed value/removed key out
/// (kGet / kPqRemoveMin / kPqMin).  The factory runs on the worker's own
/// thread, so it may construct per-thread transactional contexts.
template <typename WorkerFactory>
History run_stress(const StressOptions& opt, WorkerFactory&& make_worker) {
  HistoryRecorder recorder(opt.threads, opt.ops_per_thread);
  std::vector<std::thread> pool;
  pool.reserve(opt.threads);
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};

  unsigned total_weight = 0;
  for (const auto& [op, w] : opt.mix) total_weight += w;

  for (unsigned tid = 0; tid < opt.threads; ++tid) {
    pool.emplace_back([&, tid] {
      char name[16];
      std::snprintf(name, sizeof(name), "stress/%u", tid);
      set_this_thread_name(name);
      auto worker = make_worker(tid);
      Xorshift rng{detail::split_seed(opt.seed, tid)};
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

      for (std::uint64_t i = 0; i < opt.ops_per_thread; ++i) {
        // Pick the op by weight, then the key.
        unsigned pick = static_cast<unsigned>(rng.next_bounded(total_weight));
        OpKind op = opt.mix.front().first;
        for (const auto& [kind, w] : opt.mix) {
          if (pick < w) {
            op = kind;
            break;
          }
          pick -= w;
        }
        Event e;
        e.op = op;
        e.key = static_cast<std::int64_t>(rng.next_bounded(
            static_cast<std::uint64_t>(opt.key_range)));
        if (op == OpKind::kPut) {
          e.value = static_cast<std::int64_t>(rng.next_bounded(1u << 20));
        }
        e.invoke_ns = now_ns();
        e.ok = worker(op, e.key, e.value);
        e.response_ns = now_ns();
        recorder.record(tid, e);

        if (opt.yield_pct != 0 && rng.next_bounded(100) < opt.yield_pct) {
          // Perturb the schedule: mostly a bare yield, occasionally a real
          // sleep so another thread gets a long slice mid-history.
          if (rng.next_bounded(8) == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long>(rng.next_bounded(50))));
          } else {
            std::this_thread::yield();
          }
        }
      }
    });
  }

  while (ready.load(std::memory_order_acquire) < opt.threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  return recorder.merge();
}

}  // namespace otb::verify
