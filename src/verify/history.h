// Concurrent-history recording for the linearizability harness.
//
// Each worker thread records one `Event` per completed ADT operation:
// invocation and response timestamps from the shared monotonic clock
// (`otb::now_ns`), the operation kind/arguments, and the observed result.
// Recording is contention-free — every thread appends to its own
// pre-reserved lane — so the act of observing perturbs the schedule as
// little as possible.  After the run the lanes are merged into a single
// invocation-ordered history that the checkers in lin_check.h and
// invariants.h consume.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/platform.h"

namespace otb::verify {

/// Operation vocabulary shared by every ADT the harness drives.  Set-like
/// structures use kAdd/kRemove/kContains; maps use kPut/kErase/kGet; the
/// priority queues use kPqAdd/kPqRemoveMin/kPqMin.
enum class OpKind : std::uint8_t {
  kAdd,
  kRemove,
  kContains,
  kPut,
  kErase,
  kGet,
  kPqAdd,
  kPqRemoveMin,
  kPqMin,
};

inline const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return "add";
    case OpKind::kRemove: return "remove";
    case OpKind::kContains: return "contains";
    case OpKind::kPut: return "put";
    case OpKind::kErase: return "erase";
    case OpKind::kGet: return "get";
    case OpKind::kPqAdd: return "pq_add";
    case OpKind::kPqRemoveMin: return "pq_remove_min";
    case OpKind::kPqMin: return "pq_min";
  }
  return "?";
}

/// One completed operation.  `key` is the argument key (unused by
/// kPqRemoveMin/kPqMin); `value` is the put value, the value a get
/// observed, or the key a PQ removeMin/min returned; `ok` is the boolean
/// outcome.  The linearization point lies somewhere in
/// [invoke_ns, response_ns].
struct Event {
  std::uint32_t tid = 0;
  OpKind op = OpKind::kContains;
  std::int64_t key = 0;
  std::int64_t value = 0;
  bool ok = false;
  std::uint64_t invoke_ns = 0;
  std::uint64_t response_ns = 0;
};

inline std::string to_string(const Event& e) {
  std::string s = "t";
  s += std::to_string(e.tid);
  s += " ";
  s += to_string(e.op);
  s += "(";
  s += std::to_string(e.key);
  if (e.op == OpKind::kPut) {
    s += ",";
    s += std::to_string(e.value);
  }
  s += ")=";
  s += e.ok ? "T" : "F";
  if (e.op == OpKind::kGet || e.op == OpKind::kPqRemoveMin ||
      e.op == OpKind::kPqMin) {
    s += "/";
    s += std::to_string(e.value);
  }
  s += " [";
  s += std::to_string(e.invoke_ns);
  s += ",";
  s += std::to_string(e.response_ns);
  s += "]";
  return s;
}

/// A merged history, ordered by invocation time.
using History = std::vector<Event>;

/// Per-thread event lanes; merge() produces the invocation-ordered history.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(unsigned threads, std::size_t reserve_per_thread = 0)
      : lanes_(threads) {
    if (reserve_per_thread != 0) {
      for (auto& lane : lanes_) lane.reserve(reserve_per_thread);
    }
  }

  /// Record one completed operation on thread `tid`'s private lane.
  void record(unsigned tid, Event e) {
    e.tid = tid;
    lanes_[tid].push_back(e);
  }

  /// Convenience: timestamp and run `fn` (returning the op's bool result),
  /// then record the completed event.
  template <typename Fn>
  bool timed_op(unsigned tid, OpKind op, std::int64_t key, Fn&& fn) {
    Event e;
    e.op = op;
    e.key = key;
    e.invoke_ns = now_ns();
    e.ok = fn(e.value);
    e.response_ns = now_ns();
    record(tid, e);
    return e.ok;
  }

  unsigned threads() const { return static_cast<unsigned>(lanes_.size()); }

  /// Merge every lane into one history sorted by invocation time (stable on
  /// ties so same-thread program order is preserved — responses on a thread
  /// always precede its next invocation).
  History merge() const {
    History all;
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.size();
    all.reserve(n);
    for (const auto& lane : lanes_) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
      return a.invoke_ns < b.invoke_ns;
    });
    return all;
  }

 private:
  std::vector<std::vector<Event>> lanes_;
};

}  // namespace otb::verify
