// Wing–Gong-style linearizability checker (Wing & Gong, JPDC '93, with the
// state-memoisation pruning of Lowe's "Testing for linearizability").
//
// Input: a completed concurrent history (Events with [invoke, response]
// intervals) and a sequential Spec (spec.h).  The checker searches for a
// total order of the operations that (a) respects real time — if op A's
// response precedes op B's invocation, A comes first — and (b) replays
// legally through the sequential spec, each event's recorded result
// matching the spec's.  Search state is pruned by memoising
// (remaining-operation set, spec state) configurations: revisiting one
// cannot succeed where the first visit failed.
//
// For per-key-decomposable ADTs (sets, maps) use `check_keyed_history`,
// which partitions the history by key and checks each tiny projection
// independently — sound and complete for those specs, and exponentially
// cheaper.  Priority queues go through `check_history` whole.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "verify/history.h"
#include "verify/spec.h"

namespace otb::verify {

enum class LinStatus {
  kLinearizable,
  kNonLinearizable,
  kBudgetExhausted,  // search cut off before a verdict (treat as inconclusive)
};

struct LinResult {
  LinStatus status = LinStatus::kLinearizable;
  std::uint64_t explored = 0;  // search nodes visited
  std::string detail;          // offending (sub-)history on failure

  bool ok() const { return status == LinStatus::kLinearizable; }
};

/// Default cap on visited search nodes.  The stress tests size their
/// histories so this is never the verdict; it exists so a pathological
/// history degrades to "inconclusive" instead of hanging CI.
inline constexpr std::uint64_t kDefaultLinBudget = 4'000'000;

template <typename Spec>
class WingGongChecker {
 public:
  explicit WingGongChecker(Spec spec, std::uint64_t budget = kDefaultLinBudget)
      : spec_(std::move(spec)), budget_(budget) {}

  /// Check a history starting from the spec's empty initial state.
  LinResult check(const History& history) {
    return check_from(history, spec_.initial());
  }

  /// Check a history starting from an explicit initial state (pre-seeded
  /// structures).
  LinResult check_from(const History& history, typename Spec::State initial) {
    ops_ = history;
    std::stable_sort(ops_.begin(), ops_.end(),
                     [](const Event& a, const Event& b) {
                       return a.invoke_ns < b.invoke_ns;
                     });
    const std::size_t n = ops_.size();
    remaining_.assign(n, true);
    remaining_count_ = n;
    memo_.clear();
    explored_ = 0;
    exhausted_ = false;

    LinResult result;
    const bool found = dfs(initial);
    result.explored = explored_;
    if (found) {
      result.status = LinStatus::kLinearizable;
    } else if (exhausted_) {
      result.status = LinStatus::kBudgetExhausted;
      result.detail = "search budget exhausted after " +
                      std::to_string(explored_) + " nodes";
    } else {
      result.status = LinStatus::kNonLinearizable;
      result.detail = describe_failure();
    }
    return result;
  }

 private:
  bool dfs(const typename Spec::State& state) {
    if (remaining_count_ == 0) return true;
    if (++explored_ > budget_) {
      exhausted_ = true;
      return false;
    }
    if (!memo_.insert(memo_key(state)).second) return false;  // seen & failed

    // An operation may linearize next only if no unlinearized operation
    // finished before it started.
    std::uint64_t min_response = UINT64_MAX;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (remaining_[i] && ops_[i].response_ns < min_response) {
        min_response = ops_[i].response_ns;
      }
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!remaining_[i]) continue;
      if (ops_[i].invoke_ns > min_response) break;  // ops_ sorted by invoke
      typename Spec::State next = state;
      if (!spec_.step(next, ops_[i])) continue;
      remaining_[i] = false;
      --remaining_count_;
      if (dfs(next)) return true;
      remaining_[i] = true;
      ++remaining_count_;
      if (exhausted_) return false;
    }
    return false;
  }

  std::string memo_key(const typename Spec::State& state) const {
    std::string key;
    key.reserve(remaining_.size() + 16);
    // Run-length would be denser, but histories here are small.
    for (const bool r : remaining_) key += r ? '1' : '0';
    key += '|';
    key += spec_.encode(state);
    return key;
  }

  std::string describe_failure() const {
    std::string out = "no linearization for " + std::to_string(ops_.size()) +
                      " ops; history:\n";
    constexpr std::size_t kMaxDump = 48;
    for (std::size_t i = 0; i < ops_.size() && i < kMaxDump; ++i) {
      out += "  " + verify::to_string(ops_[i]) + "\n";
    }
    if (ops_.size() > kMaxDump) out += "  ... (truncated)\n";
    return out;
  }

  Spec spec_;
  std::uint64_t budget_;
  History ops_;
  std::vector<bool> remaining_;
  std::size_t remaining_count_ = 0;
  std::uint64_t explored_ = 0;
  bool exhausted_ = false;
  std::unordered_set<std::string> memo_;
};

/// Check a whole (non-decomposable) history, e.g. a priority queue's.
template <typename Spec>
LinResult check_history(const History& history, const Spec& spec,
                        typename Spec::State initial,
                        std::uint64_t budget = kDefaultLinBudget) {
  WingGongChecker<Spec> checker(spec, budget);
  return checker.check_from(history, std::move(initial));
}

template <typename Spec>
LinResult check_history(const History& history, const Spec& spec,
                        std::uint64_t budget = kDefaultLinBudget) {
  return check_history(history, spec, spec.initial(), budget);
}

/// Partition a history by key and check every per-key projection
/// independently.  Sound and complete for per-key-decomposable specs
/// (SetKeySpec, MapKeySpec): each operation touches exactly one key and its
/// result depends only on that key's sub-state.
///
/// `initially_present` lists keys seeded into the structure before the
/// recorded history began.
template <typename KeySpec>
LinResult check_keyed_history(
    const History& history, const KeySpec& spec,
    const std::vector<std::int64_t>& initially_present = {},
    std::uint64_t budget_per_key = kDefaultLinBudget) {
  std::map<std::int64_t, History> by_key;
  for (const Event& e : history) by_key[e.key].push_back(e);
  for (const std::int64_t k : initially_present) by_key[k];  // ensure entry

  LinResult aggregate;
  for (auto& [key, sub] : by_key) {
    typename KeySpec::State init = spec.initial();
    if (std::find(initially_present.begin(), initially_present.end(), key) !=
        initially_present.end()) {
      init.present = true;
      // Seeded maps follow the harness convention value == key.
      if constexpr (requires { init.value; }) init.value = key;
    }
    WingGongChecker<KeySpec> checker(spec, budget_per_key);
    LinResult r = checker.check_from(sub, init);
    aggregate.explored += r.explored;
    if (!r.ok()) {
      r.explored = aggregate.explored;
      r.detail = "key " + std::to_string(key) + ": " + r.detail;
      return r;
    }
  }
  return aggregate;
}

}  // namespace otb::verify
