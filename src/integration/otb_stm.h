// Chapter 4: integrating OTB data structures with an STM framework.
//
// `OtbTx` is the joint context type — simultaneously an STM transaction
// (memory reads/writes) and an OTB transaction host (semantic descriptors).
// `OtbNOrecTx` and `OtbTl2Tx` are the two case-study contexts of §4.2:
//
//   * OTB-NOrec (§4.2.2): the single global lock subsumes the semantic
//     locks, so boosted commits run with use_locks = false, and the NOrec
//     value-based incremental validation is extended to also run
//     validate-without-locks over every attached structure;
//   * OTB-TL2 (§4.2.3): fine-grained orecs mean the semantic locks must be
//     real — boosted operations validate-with-locks after every memory read
//     and every boosted operation, and commit interleaves preCommit /
//     onCommit / postCommit with the orec protocol.
//
// A transaction may freely mix `tx.read(var)` / `tx.write(var, v)` with
// `set.add(tx, k)` — the Algorithm 7 programming model.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/epoch.h"
#include "metrics/registry.h"
#include "otb/otb_ds.h"
#include "stm/algs/norec.h"
#include "stm/algs/tl2.h"

namespace otb::integration {

/// Joint base: an STM context that can also host boosted structures.
class OtbTx : public stm::Tx, public tx::TxHost {
 public:
  /// Boosted structures account hint/traversal stats on the STM tally, so
  /// the existing per-attempt flush carries them into the sink.
  OtbTx() { bind_op_tally(&this->stats_); }

  /// The descriptor retry pool must not escape an atomic block: contexts
  /// are long-lived (one per thread), and a structure destroyed between
  /// blocks could leave a pooled descriptor keyed to a reused address.
  /// The runtime calls this when an exception propagates out of the block.
  void abandon_descriptor_pool() { drop_descriptor_pool(); }

 protected:
  /// Pins the reclamation epoch for the attempt (semantic read-set entries
  /// hold raw node pointers other transactions may retire).
  std::optional<ebr::Guard> epoch_guard_;
};

// ---- OTB-NOrec --------------------------------------------------------------

class OtbNOrecTx final : public stm::NOrecTxT<OtbTx> {
 public:
  explicit OtbNOrecTx(stm::NOrecGlobal& global) : stm::NOrecTxT<OtbTx>(global) {}

  void begin() override {
    clear_attached();
    epoch_guard_.emplace();
    stm::NOrecTxT<OtbTx>::begin();
  }

  /// §4.2.2 onOperationValidate: same procedure as onReadAccess — if the
  /// global timestamp has not moved since our snapshot the whole snapshot
  /// is trivially still valid (NOrec's fast path, §2.1.1); otherwise run
  /// the extended value-based validation.
  ///
  /// Interaction with the per-DS commit sequence: NOrec's global seqlock
  /// *subsumes* it — every writer (memory or semantic) commits under the
  /// global lock, so an unchanged global clock already proves no structure
  /// was published into and this check never reaches the per-DS gate.  The
  /// gate still pays off on the slow path below: when the clock moved
  /// because of unrelated *memory* commits, `validate()`'s semantic half
  /// fast-paths per structure instead of rescanning the read-sets.
  void on_operation_validate() override {
    if (global_.clock.load() == snapshot_) return;
    snapshot_ = validate();
  }

  void commit() override {
    const std::uint64_t t0 = global_.collect_timing ? now_ns() : 0;
    if (writes_.empty() && !any_attached_writes()) {
      end_attempt(/*committed=*/true);
      finish_attempt(t0);
      return;  // fully read-only: lock-free commit
    }
    while (!global_.clock.try_acquire(snapshot_)) {
      this->stats_.lock_cas_failures += 1;
      snapshot_ = validate();
    }
    this->stats_.lock_acquisitions += 1;
    // Semantic locks are pointless under the global lock (§4.2.2): commit
    // with use_locks = false.  pre_commit re-runs commit-time validation.
    // The per-DS commit sequence is still bumped by on_commit/post_commit
    // below (under the global lock), keeping the gate coherent for readers
    // that consult it concurrently.
    if (!pre_commit_attached(/*use_locks=*/false)) {
      global_.clock.release();
      end_attempt(/*committed=*/false);
      finish_attempt(t0);
      throw TxAbort{metrics::AbortReason::kSemanticConflict};
    }
    writes_.publish();
    on_commit_attached();
    post_commit_attached();  // releases the locks on freshly inserted nodes
    global_.clock.release();
    end_attempt(/*committed=*/true);
    finish_attempt(t0);
  }

  void rollback() override {
    on_abort_attached();
    end_attempt(/*committed=*/false);
    stm::NOrecTxT<OtbTx>::rollback();
  }

 protected:
  /// Extended NOrec validation: memory values *and* semantic read-sets
  /// (validate-without-locks) under one even-timestamp window.
  std::uint64_t validate() override {
    this->stats_.validations += 1;
    Backoff backoff;
    for (;;) {
      const std::uint64_t t = global_.clock.load();
      if ((t & 1) != 0) {
        this->stats_.lock_spins += 1;
        backoff.pause();
        continue;
      }
      if (!reads_.values_match()) {
        throw TxAbort{metrics::AbortReason::kValidation};
      }
      if (!validate_attached(/*check_locks=*/false, &this->stats_.validations_fast,
                             &this->stats_.validations_full)) {
        throw TxAbort{metrics::AbortReason::kSemanticConflict};
      }
      if (global_.clock.load() == t) return t;
    }
  }

 private:
  /// Commits drop the descriptors (and the retry pool — structure addresses
  /// must not be trusted across atomic blocks); aborts recycle them for the
  /// next attempt's zero-allocation re-attach.
  void end_attempt(bool committed) {
    if (committed) {
      clear_attached();
      drop_descriptor_pool();
    } else {
      recycle_attached();
    }
    epoch_guard_.reset();
  }
};

// ---- OTB-TL2 ----------------------------------------------------------------

class OtbTl2Tx final : public stm::Tl2TxT<OtbTx> {
 public:
  explicit OtbTl2Tx(stm::Tl2Global& global) : stm::Tl2TxT<OtbTx>(global) {}

  void begin() override {
    clear_attached();
    epoch_guard_.emplace();
    stm::Tl2TxT<OtbTx>::begin();
  }

  /// §4.2.3 onOperationValidate: semantic validation with lock checks.  We
  /// additionally re-validate the TL2 orec read-set (a linear version
  /// check): the paper deems this unnecessary, but without it a transaction
  /// mixing memory reads (snapshotted at rv) with boosted reads (validated
  /// "now") can observe a memory/semantic state from two different points in
  /// time — see DESIGN.md, "correctness strengthening".
  void on_operation_validate() override {
    if (!validate_reads()) {
      throw TxAbort{metrics::AbortReason::kValidation};
    }
    // Unlike OTB-NOrec there is no global clock subsuming the per-DS commit
    // sequences here — TL2's orecs cover only memory — so the gate is what
    // turns these per-operation (and per-memory-read, below) semantic
    // re-scans into O(1) checks on the quiescent path.
    if (!validate_attached(/*check_locks=*/true, &this->stats_.validations_fast,
                           &this->stats_.validations_full)) {
      throw TxAbort{metrics::AbortReason::kSemanticConflict};
    }
  }

  /// §4.2.3 onReadAccess: ordinary TL2 read plus validate-with-locks over
  /// the attached structures.
  stm::Word read_word(const stm::TWord* addr) override {
    const stm::Word value = stm::Tl2TxT<OtbTx>::read_word(addr);
    if (!attached().empty() &&
        !validate_attached(/*check_locks=*/true, &this->stats_.validations_fast,
                           &this->stats_.validations_full)) {
      throw TxAbort{metrics::AbortReason::kSemanticConflict};
    }
    return value;
  }

  void commit() override {
    if (writes_.empty() && !any_attached_writes()) {
      end_attempt(/*committed=*/true);
      return;
    }
    lock_write_orecs();  // throws (after self-cleanup) on CAS failure
    // Acquire the semantic locks right after the memory locks (§4.2.3).
    if (!pre_commit_attached(/*use_locks=*/true)) {
      release_locked(/*stamp=*/false, 0);
      end_attempt(/*committed=*/false);
      throw TxAbort{metrics::AbortReason::kSemanticConflict};
    }
    const std::uint64_t wv =
        global_.clock.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Memory read-set: plain TL2 validation (semantic read-sets were already
    // commit-validated by pre_commit while their locks are held).
    if (wv != rv_ + 1 && !validate_reads()) {
      release_locked(/*stamp=*/false, 0);
      on_abort_attached();
      end_attempt(/*committed=*/false);
      throw TxAbort{metrics::AbortReason::kValidation};
    }
    writes_.publish();
    on_commit_attached();
    release_locked(/*stamp=*/true, wv);
    post_commit_attached();
    end_attempt(/*committed=*/true);
  }

  void rollback() override {
    on_abort_attached();
    end_attempt(/*committed=*/false);
    stm::Tl2TxT<OtbTx>::rollback();
  }

 private:
  /// Same policy as OTB-NOrec: commits drop descriptors + pool, aborts
  /// recycle for the next attempt.
  void end_attempt(bool committed) {
    if (committed) {
      clear_attached();
      drop_descriptor_pool();
    } else {
      recycle_attached();
    }
    epoch_guard_.reset();
  }
};

// ---- integration runtime ----------------------------------------------------

enum class HostAlgo { kOtbNOrec, kOtbTl2 };

constexpr std::string_view to_string(HostAlgo a) {
  return a == HostAlgo::kOtbNOrec ? "OTB-NOrec" : "OTB-TL2";
}

/// Owns the host algorithm's global state and runs the retry loop — the
/// "new DEUCE agent" of Fig 4.1.
class Runtime {
 public:
  explicit Runtime(HostAlgo algo, stm::Config cfg = {}) : algo_(algo) {
    sink_ = cfg.metrics != nullptr
                ? cfg.metrics
                : &metrics::Registry::global().sink(
                      std::string("integration.") + std::string(to_string(algo)));
    if (algo == HostAlgo::kOtbNOrec) {
      norec_ = std::make_unique<stm::NOrecGlobal>(cfg);
    } else {
      tl2_ = std::make_unique<stm::Tl2Global>(cfg);
    }
  }

  HostAlgo algo() const { return algo_; }

  /// The sink every context of this runtime reports through.
  metrics::MetricsSink& metrics_sink() const { return *sink_; }

  /// Snapshot of this runtime's accumulated metrics.
  metrics::SinkSnapshot metrics() const { return sink_->snapshot(); }

  /// One context per thread.
  std::unique_ptr<OtbTx> make_tx() {
    std::unique_ptr<OtbTx> tx;
    if (algo_ == HostAlgo::kOtbNOrec) {
      tx = std::make_unique<OtbNOrecTx>(*norec_);
    } else {
      tx = std::make_unique<OtbTl2Tx>(*tl2_);
    }
    tx->bind_metrics(sink_);
    return tx;
  }

  /// Run `fn(tx)` atomically.  Returns the attempt report for this call;
  /// lifetime totals flow into the metrics sink.
  template <typename Fn>
  metrics::AttemptReport atomically(OtbTx& tx, Fn&& fn) {
    Backoff backoff;
    metrics::AttemptReport report;
    for (;;) {
      tx.begin();
      try {
        fn(tx);
        tx.commit();
        tx.note_commit();
        report.commits = 1;
        return report;
      } catch (const TxAbort& abort) {
        tx.rollback();
        tx.note_abort(abort.reason);
        report.aborts += 1;
        report.last_reason = abort.reason;
        backoff.pause();
      } catch (...) {
        // User exception: roll back (releases orecs, semantic locks, and
        // the epoch pin) before letting it escape the atomic block.  The
        // pool goes too — the next block may see different structures.
        tx.rollback();
        tx.abandon_descriptor_pool();
        tx.note_abort(metrics::AbortReason::kExplicit);
        throw;
      }
    }
  }

 private:
  HostAlgo algo_;
  metrics::MetricsSink* sink_ = nullptr;
  std::unique_ptr<stm::NOrecGlobal> norec_;
  std::unique_ptr<stm::Tl2Global> tl2_;
};

}  // namespace otb::integration
